package gpushare_test

import (
	"bytes"
	"strings"
	"testing"

	"gpushare"
)

// TestFacadeEndToEnd drives the whole public API surface the way the
// quickstart does: device → workload → profile → interference → schedule →
// execute → metrics.
func TestFacadeEndToEnd(t *testing.T) {
	device, err := gpushare.LookupDevice("A100X")
	if err != nil {
		t.Fatal(err)
	}
	if device.PowerLimitW != 300 {
		t.Fatalf("device power limit %v", device.PowerLimitW)
	}
	if len(gpushare.DeviceModels()) < 4 {
		t.Fatalf("device models: %v", gpushare.DeviceModels())
	}
	if len(gpushare.WorkloadNames()) != 7 {
		t.Fatalf("workloads: %v", gpushare.WorkloadNames())
	}

	profiler := &gpushare.Profiler{Config: gpushare.SimConfig{Device: device, Seed: 1}}
	store := gpushare.NewProfileStore()
	for _, name := range []string{"AthenaPK", "Kripke"} {
		w, err := gpushare.GetWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		task, err := w.BuildTaskSpec("4x", device)
		if err != nil {
			t.Fatal(err)
		}
		p, err := profiler.ProfileTask(task)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Add(p); err != nil {
			t.Fatal(err)
		}
	}

	a, _ := store.Get("AthenaPK", "4x")
	k, _ := store.Get("Kripke", "4x")
	est := gpushare.PredictInterference(device, []*gpushare.TaskProfile{a, k})
	if est.Interferes {
		t.Fatalf("AthenaPK+Kripke should not interfere: %s", est)
	}

	queue, err := gpushare.NewWorkflowQueue(
		gpushare.WorkflowSpec{Name: "wf-a", Tasks: []gpushare.WorkflowTask{
			{Benchmark: "AthenaPK", Size: "4x", Iterations: 1}}},
		gpushare.WorkflowSpec{Name: "wf-k", Tasks: []gpushare.WorkflowTask{
			{Benchmark: "Kripke", Size: "4x", Iterations: 1}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := gpushare.NewScheduler(device, 1, store, gpushare.ThroughputPolicy())
	if err != nil {
		t.Fatal(err)
	}
	out, err := sched.ScheduleAndRun(queue, gpushare.SimConfig{Device: device, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Relative.Throughput <= 1.2 {
		t.Fatalf("collocated pair throughput %v", out.Relative.Throughput)
	}
	if v := gpushare.EqualProduct().Eval(out.Relative); v <= 1 {
		t.Fatalf("product %v", v)
	}
}

func TestFacadeStoreRoundTrip(t *testing.T) {
	device := gpushare.MustLookupDevice("A100X")
	profiler := &gpushare.Profiler{Config: gpushare.SimConfig{Device: device, Seed: 2}}
	w, _ := gpushare.GetWorkload("LAMMPS")
	task, _ := w.BuildTaskSpec("1x", device)
	p, err := profiler.ProfileTask(task)
	if err != nil {
		t.Fatal(err)
	}
	store := gpushare.NewProfileStore()
	if err := store.Add(p); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := gpushare.LoadProfileStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatal("round trip lost profile")
	}
}

func TestFacadeSimulationPaths(t *testing.T) {
	device := gpushare.MustLookupDevice("A100X")
	w, _ := gpushare.GetWorkload("Cholla-Gravity")
	task, _ := w.BuildTaskSpec("1x", device)

	solo, err := gpushare.RunSolo(gpushare.SimConfig{Device: device, Seed: 3}, task)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := gpushare.RunSequential(gpushare.SimConfig{Device: device, Seed: 3},
		[]*gpushare.TaskSpec{task, task})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := gpushare.RunClients(gpushare.SimConfig{Device: device, Seed: 3, Mode: gpushare.ShareMPS},
		[]gpushare.SimClient{
			{ID: "a", Tasks: []*gpushare.TaskSpec{task}},
			{ID: "b", Tasks: []*gpushare.TaskSpec{task}},
		})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := gpushare.CompareRuns(gpushare.SummarizeRun(seq), gpushare.SummarizeRun(cl))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Throughput <= 1 {
		t.Fatalf("shared pair not faster: %v", rel.Throughput)
	}

	samples, err := gpushare.SampleTrace(device, solo, gpushare.NVMLSampleInterval)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := gpushare.SummarizeSamples(samples, gpushare.NVMLSampleInterval)
	if err != nil {
		t.Fatal(err)
	}
	if sum.AvgPowerW <= 0 {
		t.Fatal("sample summary empty")
	}
}

func TestFacadeMPSAndSynthetic(t *testing.T) {
	daemon := gpushare.NewMPSControlDaemon(0)
	server := daemon.ServerFor("gpu0")
	c, err := server.Connect("x", 30)
	if err != nil {
		t.Fatal(err)
	}
	if c.Partition() != 0.3 {
		t.Fatalf("partition %v", c.Partition())
	}
	daemon.StopAll()

	w, err := gpushare.NewSyntheticWorkload(gpushare.SyntheticParams{
		Name: "facade-synth", DurationS: 3, MaxMemMiB: 256, AvgSMPct: 25, AvgBWPct: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	device := gpushare.MustLookupDevice("A100X")
	if _, err := w.BuildTaskSpec("1x", device); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(gpushare.AllExperiments()) != 14 {
		t.Fatalf("experiments: %d", len(gpushare.AllExperiments()))
	}
	e, err := gpushare.GetExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.Run(gpushare.ExperimentOptions{Seed: 1, Quick: true}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "WarpX") {
		t.Fatal("table1 output incomplete")
	}
}

func TestFacadeCombinations(t *testing.T) {
	combos := gpushare.Combinations()
	if len(combos) != 10 {
		t.Fatalf("combinations: %d", len(combos))
	}
	wfs, err := gpushare.UniformWorkflows("AthenaPK", "4x", 2, 3)
	if err != nil || len(wfs) != 3 {
		t.Fatalf("uniform: %v %v", len(wfs), err)
	}
}

func TestFacadeExtensions(t *testing.T) {
	device := gpushare.MustLookupDevice("A100X")
	profiler := &gpushare.Profiler{Config: gpushare.SimConfig{Device: device, Seed: 4}}
	store := gpushare.NewProfileStore()
	var tasks []*gpushare.TaskSpec
	for _, name := range []string{"AthenaPK", "Kripke"} {
		w, _ := gpushare.GetWorkload(name)
		task, err := w.BuildTaskSpec("1x", device)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
		p, err := profiler.ProfileTask(task)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Add(p); err != nil {
			t.Fatal(err)
		}
	}

	// Recommendation model.
	recs, err := gpushare.RecommendPairs(device, store.All(), gpushare.RecommendByThroughput, false)
	if err != nil || len(recs) == 0 {
		t.Fatalf("RecommendPairs: %d, %v", len(recs), err)
	}
	a, _ := store.Get("AthenaPK", "1x")
	k, _ := store.Get("Kripke", "1x")
	pred, err := gpushare.PredictPair(device, a, k)
	if err != nil || pred.Throughput <= 1 {
		t.Fatalf("PredictPair: %+v, %v", pred, err)
	}
	if s := gpushare.KernelSimilarity(a, k); s <= 0 || s > 1 {
		t.Fatalf("similarity %v", s)
	}
	clusters, err := gpushare.ClusterProfiles(store.All(), 0.99)
	if err != nil || len(clusters) == 0 {
		t.Fatalf("clusters: %v, %v", clusters, err)
	}

	// MIG.
	if len(gpushare.MIGProfiles()) != 5 {
		t.Fatalf("MIG profiles: %d", len(gpushare.MIGProfiles()))
	}
	part, tenants, err := gpushare.MIGBestFit(device, []gpushare.MIGTenant{
		{ID: "a", Tasks: []*gpushare.TaskSpec{tasks[0]}},
		{ID: "k", Tasks: []*gpushare.TaskSpec{tasks[1]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	migRes, err := gpushare.RunMIG(gpushare.SimConfig{Device: device, Seed: 4}, part, tenants)
	if err != nil || migRes.Tasks != 2 {
		t.Fatalf("RunMIG: %+v, %v", migRes, err)
	}
	if _, err := gpushare.NewMIGPartition(device, gpushare.MIGProfiles()[0]); err != nil {
		t.Fatal(err)
	}

	// Streams mode through the facade.
	res, err := gpushare.RunClients(gpushare.SimConfig{Device: device, Seed: 4, Mode: gpushare.ShareStreams},
		[]gpushare.SimClient{
			{ID: "s0", Tasks: []*gpushare.TaskSpec{tasks[0]}},
			{ID: "s1", Tasks: []*gpushare.TaskSpec{tasks[1]}},
		})
	if err != nil || res.TasksCompleted() != 2 {
		t.Fatalf("streams run: %v, %v", res.TasksCompleted(), err)
	}

	// DAG.
	dag := gpushare.NewWorkflowDAG()
	wfA := gpushare.WorkflowSpec{Name: "first", Tasks: []gpushare.WorkflowTask{
		{Benchmark: "Kripke", Size: "1x", Iterations: 1}}}
	wfB := gpushare.WorkflowSpec{Name: "second", Tasks: []gpushare.WorkflowTask{
		{Benchmark: "AthenaPK", Size: "1x", Iterations: 1}}}
	if err := dag.AddWorkflow(wfA); err != nil {
		t.Fatal(err)
	}
	if err := dag.AddWorkflow(wfB); err != nil {
		t.Fatal(err)
	}
	if err := dag.AddDependency("second", "first"); err != nil {
		t.Fatal(err)
	}
	sched, _ := gpushare.NewScheduler(device, 1, store, gpushare.EnergyPolicy())
	dagOut, err := sched.ScheduleDAG(dag, gpushare.SimConfig{Device: device, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(dagOut.LevelOutcomes) != 2 {
		t.Fatalf("DAG levels: %d", len(dagOut.LevelOutcomes))
	}

	// Online scheduling.
	onlineOut, err := sched.ScheduleOnline([]gpushare.WorkflowArrival{
		{Workflow: wfA}, {Workflow: wfB},
	}, gpushare.SimConfig{Device: device, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(onlineOut.Dispatches) != 2 {
		t.Fatalf("dispatches: %d", len(onlineOut.Dispatches))
	}
}
