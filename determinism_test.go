package gpushare_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"gpushare"
)

// TestEndToEndDeterminism runs the full pipeline — profile, plan,
// simulate under MPS, compare against sequential — twice from scratch
// with the same seed and asserts the JSON-serialized outcomes are
// identical byte for byte.
//
// This is the regression net under everything the static analyzers
// enforce: a single time.Now, unsorted map range or float drift anywhere
// in the pipeline shows up here as a byte diff. JSON is the comparison
// medium because it is also the artifact format experiments persist;
// encoding/json serializes maps in sorted key order, so any difference
// is real nondeterminism, not map-marshaling noise.
func TestEndToEndDeterminism(t *testing.T) {
	first := runPipelineJSON(t)
	second := runPipelineJSON(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("two identically seeded end-to-end runs produced different JSON:\nrun1 %d bytes, run2 %d bytes\nfirst divergence near byte %d",
			len(first), len(second), firstDiff(first, second))
	}
}

// runPipelineJSON executes one fully independent end-to-end schedule and
// returns the serialized outcome. Everything — store, queue, scheduler,
// engine — is rebuilt so no state leaks between the two runs.
func runPipelineJSON(t *testing.T) []byte {
	t.Helper()
	device := gpushare.MustLookupDevice("A100X")
	cfg := gpushare.SimConfig{Device: device, Seed: 42}

	// Offline profiling campaign over two benchmarks.
	profiler := &gpushare.Profiler{Config: cfg}
	store := gpushare.NewProfileStore()
	for _, name := range []string{"AthenaPK", "Kripke"} {
		w, err := gpushare.GetWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		task, err := w.BuildTaskSpec("4x", device)
		if err != nil {
			t.Fatal(err)
		}
		p, err := profiler.ProfileTask(task)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Add(p); err != nil {
			t.Fatal(err)
		}
	}

	// A small mixed queue: 2 AthenaPK and 2 Kripke workflows on a
	// 2-GPU pool.
	athena, err := gpushare.UniformWorkflows("AthenaPK", "4x", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	kripke, err := gpushare.UniformWorkflows("Kripke", "4x", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	q, err := gpushare.NewWorkflowQueue(append(athena, kripke...)...)
	if err != nil {
		t.Fatal(err)
	}

	sched, err := gpushare.NewScheduler(device, 2, store, gpushare.ThroughputPolicy())
	if err != nil {
		t.Fatal(err)
	}
	out, err := sched.ScheduleAndRun(q, cfg)
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestOOMDeterminism extends the determinism contract to the OOM path:
// a run where several identically-arriving clients blow the device's
// memory must (a) produce byte-identical JSON across repeats and (b)
// report OOMFailures in sorted order, independent of the event-firing
// order the failures were recorded in.
func TestOOMDeterminism(t *testing.T) {
	first, firstOOMs := runOOMJSON(t)
	second, secondOOMs := runOOMJSON(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("two identically seeded OOM runs produced different JSON:\nrun1 %d bytes, run2 %d bytes\nfirst divergence near byte %d",
			len(first), len(second), firstDiff(first, second))
	}
	if len(firstOOMs) == 0 {
		t.Fatal("config was expected to produce OOM failures but produced none")
	}
	if !sort.StringsAreSorted(firstOOMs) {
		t.Fatalf("OOMFailures not sorted: %v", firstOOMs)
	}
	if !sort.StringsAreSorted(secondOOMs) {
		t.Fatalf("OOMFailures not sorted on rerun: %v", secondOOMs)
	}
}

// runOOMJSON simulates clients whose IDs are deliberately not in sorted
// order and whose tasks exceed device memory, alongside one client that
// fits, and returns the serialized result plus the OOM failure list.
func runOOMJSON(t *testing.T) ([]byte, []string) {
	t.Helper()
	device := gpushare.MustLookupDevice("A100X")
	w, err := gpushare.GetWorkload("AthenaPK")
	if err != nil {
		t.Fatal(err)
	}
	fits, err := w.BuildTaskSpec("4x", device)
	if err != nil {
		t.Fatal(err)
	}
	huge := *fits
	huge.MaxMemMiB = device.MemoryMiB + 1 // can never be reserved

	cfg := gpushare.SimConfig{Device: device, Seed: 42}
	clients := []gpushare.SimClient{
		// IDs chosen so append order (arrival order) != sorted order.
		{ID: "zeta", Tasks: []*gpushare.TaskSpec{&huge}},
		{ID: "alpha", Tasks: []*gpushare.TaskSpec{&huge}},
		{ID: "mid", Tasks: []*gpushare.TaskSpec{fits}},
	}
	res, err := gpushare.RunClients(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data, res.OOMFailures
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
