// Interference matrix: profile the whole benchmark suite and print which
// pairs the paper's rules allow to share a GPU — the decision surface
// behind Table II and §IV-B. Also demonstrates scaling inference: 2x
// profiles are inferred from 1x/4x measurements, not measured.
package main

import (
	"fmt"
	"log"
	"os"

	"gpushare"
	"gpushare/internal/report"
)

func main() {
	device := gpushare.MustLookupDevice("A100X")
	profiler := &gpushare.Profiler{Config: gpushare.SimConfig{Device: device, Seed: 7}}

	store := gpushare.NewProfileStore()
	for _, name := range gpushare.WorkloadNames() {
		w, err := gpushare.GetWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, size := range w.Sizes() {
			task, err := w.BuildTaskSpec(size, device)
			if err != nil {
				continue
			}
			p, err := profiler.ProfileTask(task)
			if err != nil {
				log.Fatal(err)
			}
			if err := store.Add(p); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Scaling inference (§IV-A): predict 2x profiles from measurements.
	inferred, err := store.Lookup("Kripke", "2x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inferred Kripke/2x from 1x+4x: dur %.1fs  SM %.1f%%  mem %d MiB\n\n",
		inferred.DurationS, inferred.AvgSMUtilPct, inferred.MaxMemMiB)

	// Pairwise matrix over the 4x profiles (plus Epsilon 1x).
	var group []*gpushare.TaskProfile
	for _, name := range gpushare.WorkloadNames() {
		size := "4x"
		if name == "BerkeleyGW-Epsilon" {
			size = "1x"
		}
		if p, ok := store.Get(name, size); ok {
			group = append(group, p)
		}
	}
	m := gpushare.BuildInterferenceMatrix(device, group)

	t := report.NewTable("Pairwise collocation verdicts (ok / reason)", append([]string{""}, shorten(m.Labels)...)...)
	for i, row := range m.Estimates {
		cells := []string{shorten(m.Labels)[i]}
		for _, e := range row {
			switch {
			case !e.Interferes:
				cells = append(cells, "ok")
			case e.Has("memory-capacity"):
				cells = append(cells, "MEM")
			case e.Has("memory-bandwidth"):
				cells = append(cells, "BW")
			default:
				cells = append(cells, "SM")
			}
		}
		t.AddRow(cells...)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSM = combined SM util > 100%   BW = bandwidth > 100%   MEM = memory over capacity")
}

func shorten(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		if len(l) > 12 {
			l = l[:12]
		}
		out[i] = l
	}
	return out
}
