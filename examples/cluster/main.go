// Cluster scheduling: a mixed queue of Table III-style workflows packed
// onto a 4-GPU pool with interference-aware collocation and right-sized
// MPS partitions, compared against the naive FIFO co-scheduler and plain
// sequential scheduling.
package main

import (
	"fmt"
	"log"
	"strings"

	"gpushare"
	"gpushare/internal/report"
	"os"
)

func main() {
	device := gpushare.MustLookupDevice("A100X")
	const gpus = 4

	// A queue mixing low- and high-utilization workflows across the
	// suite (Epsilon omitted: its 56-minute solo run dominates any
	// small-pool demo).
	mk := func(name, bench, size string, iters int) gpushare.WorkflowSpec {
		return gpushare.WorkflowSpec{
			Name:  name,
			Tasks: []gpushare.WorkflowTask{{Benchmark: bench, Size: size, Iterations: iters}},
		}
	}
	specs := []gpushare.WorkflowSpec{
		mk("athena-a", "AthenaPK", "4x", 6),
		mk("athena-b", "AthenaPK", "4x", 6),
		mk("gravity-a", "Gravity", "4x", 2),
		mk("gravity-b", "Gravity", "1x", 40),
		mk("kripke-a", "Kripke", "4x", 3),
		mk("kripke-b", "Kripke", "2x", 12),
		mk("warpx-a", "WarpX", "1x", 8),
		mk("mhd-a", "MHD", "1x", 4),
		mk("lammps-a", "LAMMPS", "4x", 2),
		mk("lammps-b", "LAMMPS", "1x", 30),
	}

	// Profile every distinct task in the queue.
	profiler := &gpushare.Profiler{Config: gpushare.SimConfig{Device: device, Seed: 11}}
	store := gpushare.NewProfileStore()
	seen := map[string]bool{}
	for _, s := range specs {
		for _, t := range s.Tasks {
			w, err := gpushare.GetWorkload(t.Benchmark)
			if err != nil {
				log.Fatal(err)
			}
			key := w.Name + "/" + t.Size
			if seen[key] {
				continue
			}
			seen[key] = true
			task, err := w.BuildTaskSpec(t.Size, device)
			if err != nil {
				log.Fatal(err)
			}
			p, err := profiler.ProfileTask(task)
			if err != nil {
				log.Fatal(err)
			}
			if err := store.Add(p); err != nil {
				log.Fatal(err)
			}
		}
	}

	policy := gpushare.ProductPolicy(gpushare.EqualProduct())
	policy.RightSizePartitions = true
	sched, err := gpushare.NewScheduler(device, gpus, store, policy)
	if err != nil {
		log.Fatal(err)
	}

	queue, err := gpushare.NewWorkflowQueue(specs...)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sched.BuildPlan(queue)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(fmt.Sprintf("Plan on %d GPUs (product policy, right-sized partitions)", gpus),
		"GPU", "Wave", "Workflows", "Partitions")
	for g, waves := range plan.PerGPU {
		for wv, grp := range waves {
			parts := make([]string, len(grp.Partitions))
			for i, p := range grp.Partitions {
				parts[i] = fmt.Sprintf("%.0f%%", p*100)
			}
			t.AddRowf(g, wv, strings.Join(grp.Names(), " + "), strings.Join(parts, ","))
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	cfg := gpushare.SimConfig{Device: device, Seed: 11, Mode: gpushare.ShareMPS}
	outcome, err := sched.Execute(plan, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s makespan %8.1fs  energy %10.0f J  thpt %.2fx  eff %.2fx\n",
		"interference-aware", outcome.Sharing.MakespanS, outcome.Sharing.EnergyJ,
		outcome.Relative.Throughput, outcome.Relative.EnergyEfficiency)

	naiveQueue, _ := gpushare.NewWorkflowQueue(specs...)
	naivePlan, err := sched.NaiveFIFOPlan(naiveQueue, 4)
	if err != nil {
		log.Fatal(err)
	}
	naiveOut, err := sched.Execute(naivePlan, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s makespan %8.1fs  energy %10.0f J  thpt %.2fx  eff %.2fx\n",
		"naive FIFO", naiveOut.Sharing.MakespanS, naiveOut.Sharing.EnergyJ,
		naiveOut.Relative.Throughput, naiveOut.Relative.EnergyEfficiency)

	fmt.Printf("%-22s makespan %8.1fs  energy %10.0f J  (baseline)\n",
		"sequential", outcome.Sequential.MakespanS, outcome.Sequential.EnergyJ)
}
