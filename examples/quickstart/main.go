// Quickstart: profile two HPC workloads offline, predict whether they
// interfere, co-schedule them under MPS, and compare throughput and energy
// against sequential scheduling — the paper's §IV pipeline in ~60 lines.
package main

import (
	"fmt"
	"log"

	"gpushare"
)

func main() {
	device := gpushare.MustLookupDevice("A100X")

	// 1. Offline profiling (§IV-A): run each task alone and record its
	// utilization, memory, power and occupancy profile.
	profiler := &gpushare.Profiler{Config: gpushare.SimConfig{Device: device, Seed: 1}}
	store := gpushare.NewProfileStore()
	for _, name := range []string{"AthenaPK", "Kripke"} {
		w, err := gpushare.GetWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		task, err := w.BuildTaskSpec("4x", device)
		if err != nil {
			log.Fatal(err)
		}
		p, err := profiler.ProfileTask(task)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Add(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profiled %-10s SM %5.1f%%  BW %4.1f%%  mem %5d MiB  power %5.1f W\n",
			name, p.AvgSMUtilPct, p.AvgBWUtilPct, p.MaxMemMiB, p.AvgPowerW)
	}

	// 2. Interference prediction (§IV-B): combined SM > 100%, combined
	// bandwidth > 100%, or combined memory over capacity means the pair
	// should not share a GPU.
	a, _ := store.Get("AthenaPK", "4x")
	k, _ := store.Get("Kripke", "4x")
	est := gpushare.PredictInterference(device, []*gpushare.TaskProfile{a, k})
	fmt.Printf("\ninterference prediction: %s\n\n", est)

	// 3. Execute: two MPS clients vs the sequential baseline.
	athena, _ := gpushare.GetWorkload("AthenaPK")
	kripke, _ := gpushare.GetWorkload("Kripke")
	athenaTask, _ := athena.BuildTaskSpec("4x", device)
	kripkeTask, _ := kripke.BuildTaskSpec("4x", device)

	seqRes, err := gpushare.RunSequential(
		gpushare.SimConfig{Device: device, Seed: 1},
		[]*gpushare.TaskSpec{athenaTask, kripkeTask})
	if err != nil {
		log.Fatal(err)
	}
	mpsRes, err := gpushare.RunClients(
		gpushare.SimConfig{Device: device, Seed: 1, Mode: gpushare.ShareMPS},
		[]gpushare.SimClient{
			{ID: "athena", Tasks: []*gpushare.TaskSpec{athenaTask}},
			{ID: "kripke", Tasks: []*gpushare.TaskSpec{kripkeTask}},
		})
	if err != nil {
		log.Fatal(err)
	}

	rel, err := gpushare.CompareRuns(gpushare.SummarizeRun(seqRes), gpushare.SummarizeRun(mpsRes))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %6.1f s, %8.0f J\n", seqRes.Makespan.Seconds(), seqRes.EnergyJ)
	fmt.Printf("MPS shared: %6.1f s, %8.0f J\n", mpsRes.Makespan.Seconds(), mpsRes.EnergyJ)
	fmt.Printf("throughput %.2fx, energy efficiency %.2fx\n", rel.Throughput, rel.EnergyEfficiency)
}
