// Energy-aware scheduling: the same workflow queue scheduled under the
// paper's three metric priorities (throughput, energy efficiency, product)
// to show how the objective changes collocation cardinality and the
// resulting metrics — the trade-off of §IV-C and Figure 4.
package main

import (
	"fmt"
	"log"
	"strings"

	"gpushare"
)

func main() {
	device := gpushare.MustLookupDevice("A100X")

	// A queue of eight low-utilization AthenaPK workflows plus two
	// heavier Kripke workflows.
	var specs []gpushare.WorkflowSpec
	athena, err := gpushare.UniformWorkflows("AthenaPK", "4x", 2, 8)
	if err != nil {
		log.Fatal(err)
	}
	specs = append(specs, athena...)
	kripke, err := gpushare.UniformWorkflows("Kripke", "4x", 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	specs = append(specs, kripke...)

	queue, err := gpushare.NewWorkflowQueue(specs...)
	if err != nil {
		log.Fatal(err)
	}

	// Profile the two tasks the queue uses.
	profiler := &gpushare.Profiler{Config: gpushare.SimConfig{Device: device, Seed: 3}}
	store := gpushare.NewProfileStore()
	for _, name := range []string{"AthenaPK", "Kripke"} {
		w, _ := gpushare.GetWorkload(name)
		task, err := w.BuildTaskSpec("4x", device)
		if err != nil {
			log.Fatal(err)
		}
		p, err := profiler.ProfileTask(task)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Add(p); err != nil {
			log.Fatal(err)
		}
	}

	policies := []struct {
		name   string
		policy gpushare.Policy
	}{
		{"throughput (cap 2)", gpushare.ThroughputPolicy()},
		{"energy (cap 48)", gpushare.EnergyPolicy()},
		{"product TxE (cap 4)", gpushare.ProductPolicy(gpushare.EqualProduct())},
	}

	for _, pc := range policies {
		// A fresh queue per policy: scheduling consumes the queue view.
		q, err := gpushare.NewWorkflowQueue(specs...)
		if err != nil {
			log.Fatal(err)
		}
		_ = queue
		sched, err := gpushare.NewScheduler(device, 1, store, pc.policy)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := sched.BuildPlan(q)
		if err != nil {
			log.Fatal(err)
		}
		outcome, err := sched.Execute(plan, gpushare.SimConfig{Device: device, Seed: 3, Mode: gpushare.ShareMPS})
		if err != nil {
			log.Fatal(err)
		}

		var sizes []string
		for _, g := range plan.Groups() {
			sizes = append(sizes, fmt.Sprint(len(g.Members)))
		}
		fmt.Printf("%-20s group sizes [%s]\n", pc.name, strings.Join(sizes, ","))
		fmt.Printf("%-20s makespan %8.1fs  energy %9.0f J  thpt %.2fx  eff %.2fx  TxE %.2f\n\n",
			"", outcome.Sharing.MakespanS, outcome.Sharing.EnergyJ,
			outcome.Relative.Throughput, outcome.Relative.EnergyEfficiency,
			gpushare.EqualProduct().Eval(outcome.Relative))
	}
}
