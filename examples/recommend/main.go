// Recommendation model (the paper's §VI future work): profile the suite
// once, then rank collocation candidates analytically — no simulation of
// the pairs — and check the top pick against an actual run. Also shows
// kernel-similarity clustering shrinking the offline analysis campaign,
// and a MIG alternative for the top pair.
package main

import (
	"fmt"
	"log"

	"gpushare"
)

func main() {
	device := gpushare.MustLookupDevice("A100X")
	profiler := &gpushare.Profiler{Config: gpushare.SimConfig{Device: device, Seed: 21}}

	// Profile the suite at 4x (Epsilon at its only size).
	store := gpushare.NewProfileStore()
	for _, name := range gpushare.WorkloadNames() {
		w, err := gpushare.GetWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		size := "4x"
		if name == "BerkeleyGW-Epsilon" {
			size = "1x"
		}
		task, err := w.BuildTaskSpec(size, device)
		if err != nil {
			log.Fatal(err)
		}
		p, err := profiler.ProfileTask(task)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Add(p); err != nil {
			log.Fatal(err)
		}
	}

	// Rank pairs analytically.
	recs, err := gpushare.RecommendPairs(device, store.All(), gpushare.RecommendByProduct, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 recommended collocations (predicted, no simulation):")
	for i, r := range recs {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-50s thpt %.2fx  eff %.2fx  capped=%v\n",
			i+1, r.Key(), r.Throughput, r.EnergyEfficiency, r.PredictedCapped)
	}

	// Validate the top pick against an actual simulation.
	top := recs[0]
	wa, _ := gpushare.GetWorkload(top.A.Workload)
	wb, _ := gpushare.GetWorkload(top.B.Workload)
	ta, _ := wa.BuildTaskSpec(top.A.Size, device)
	tb, _ := wb.BuildTaskSpec(top.B.Size, device)
	seq, err := gpushare.RunSequential(gpushare.SimConfig{Device: device, Seed: 21},
		[]*gpushare.TaskSpec{ta, tb})
	if err != nil {
		log.Fatal(err)
	}
	mps, err := gpushare.RunClients(gpushare.SimConfig{Device: device, Seed: 21, Mode: gpushare.ShareMPS},
		[]gpushare.SimClient{
			{ID: "a", Tasks: []*gpushare.TaskSpec{ta}},
			{ID: "b", Tasks: []*gpushare.TaskSpec{tb}},
		})
	if err != nil {
		log.Fatal(err)
	}
	rel, err := gpushare.CompareRuns(gpushare.SummarizeRun(seq), gpushare.SummarizeRun(mps))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop pick simulated: thpt %.2fx (predicted %.2fx), eff %.2fx (predicted %.2fx)\n",
		rel.Throughput, top.Throughput, rel.EnergyEfficiency, top.EnergyEfficiency)

	// Kernel-similarity clustering (§VI): how much offline pairwise
	// analysis the similarity measure saves.
	clusters, err := gpushare.ClusterProfiles(store.All(), 0.97)
	if err != nil {
		log.Fatal(err)
	}
	n := store.Len()
	full := n * (n + 1) / 2
	reduced := len(clusters) * (len(clusters) + 1) / 2
	fmt.Printf("\nkernel similarity: %d profiles → %d clusters; pairwise analyses %d → %d\n",
		n, len(clusters), full, reduced)
	for _, c := range clusters {
		fmt.Printf("  cluster %-22s (%d members)\n", c.Representative.Key(), len(c.Members))
	}

	// MIG alternative for the top pair (isolation instead of sharing).
	part, tenants, err := gpushare.MIGBestFit(device, []gpushare.MIGTenant{
		{ID: "a", Tasks: []*gpushare.TaskSpec{ta}},
		{ID: "b", Tasks: []*gpushare.TaskSpec{tb}},
	})
	if err != nil {
		fmt.Printf("\nMIG placement infeasible for the top pair: %v\n", err)
		return
	}
	migRes, err := gpushare.RunMIG(gpushare.SimConfig{Device: device, Seed: 21}, part, tenants)
	if err != nil {
		log.Fatal(err)
	}
	migRel, err := gpushare.CompareRuns(gpushare.SummarizeRun(seq), migRes.Summary())
	if err != nil {
		log.Fatal(err)
	}
	labels := ""
	for i, in := range part.Instances {
		if i > 0 {
			labels += "+"
		}
		labels += in.Name
	}
	fmt.Printf("\nMIG alternative (%s): thpt %.2fx, eff %.2fx — isolation costs %s\n",
		labels, migRel.Throughput, migRel.EnergyEfficiency,
		map[bool]string{true: "little here", false: "throughput vs MPS"}[migRel.Throughput >= rel.Throughput])
}
