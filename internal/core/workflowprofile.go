package core

import (
	"fmt"

	"gpushare/internal/interference"
	"gpushare/internal/profile"
	"gpushare/internal/workflow"
	"gpushare/internal/workload"
)

// WorkflowProfile aggregates a workflow's task profiles to the granularity
// the scheduler packs at: scheduling happens "at the level of workflow
// tasks and not GPU kernel" (§IV-B), and a whole workflow occupies its MPS
// client for its full duration, so utilizations are duration-weighted
// averages and memory is the peak across tasks.
type WorkflowProfile struct {
	Workflow workflow.Workflow
	// AvgSMUtilPct is the duration-weighted average SM utilization.
	AvgSMUtilPct float64
	// AvgBWUtilPct is the duration-weighted average bandwidth
	// utilization.
	AvgBWUtilPct float64
	// MaxMemMiB is the maximum memory footprint across tasks (criterion
	// 3: "we take into account the maximum memory requirement for each
	// task").
	MaxMemMiB int64
	// TotalDurationS is the predicted solo duration of the workflow.
	TotalDurationS float64
	// EnergyJ is the predicted solo energy.
	EnergyJ float64
	// PeakActiveComputePct estimates the workflow's instantaneous
	// compute demand while kernels are resident (used for partition
	// right-sizing): max over tasks of SM% / duty.
	PeakActiveComputePct float64
	// PeakFillFraction estimates the warp-slot fill the workflow's
	// kernels sustain — achieved over theoretical occupancy, max across
	// tasks. Latency-bound kernels saturate at their fill, not their
	// compute demand, so right-sizing must cover both (Figure 1).
	PeakFillFraction float64
}

// avgPowerW is the workflow's duration-weighted average power, derived
// from its energy and duration (used by the opposing-power heuristic).
func (wp *WorkflowProfile) avgPowerW() float64 {
	if wp.TotalDurationS <= 0 {
		return 0
	}
	return wp.EnergyJ / wp.TotalDurationS
}

// profileView is the synthetic task profile handed to the interference
// predictor: a workflow behaves like one task with its aggregate profile.
func (wp *WorkflowProfile) profileView() *profile.TaskProfile {
	return &profile.TaskProfile{
		Workload:     wp.Workflow.Name,
		Size:         "wf",
		AvgSMUtilPct: wp.AvgSMUtilPct,
		AvgBWUtilPct: wp.AvgBWUtilPct,
		MaxMemMiB:    wp.MaxMemMiB,
	}
}

// load is the workflow's contribution to the additive interference
// rules — the same three quantities profileView exposes to Predict, so
// aggregate probes over loads are bit-identical to Predict over views.
func (wp *WorkflowProfile) load() interference.Load {
	return interference.Load{
		SMPct:  wp.AvgSMUtilPct,
		BWPct:  wp.AvgBWUtilPct,
		MemMiB: wp.MaxMemMiB,
	}
}

// BuildWorkflowProfile aggregates the store's task profiles over a
// workflow, inferring missing sizes by scaling.
func BuildWorkflowProfile(store *profile.Store, w workflow.Workflow) (*WorkflowProfile, error) {
	wp := &WorkflowProfile{}
	if err := buildWorkflowProfileInto(store, w, wp); err != nil {
		return nil, err
	}
	return wp, nil
}

// buildWorkflowProfileInto is BuildWorkflowProfile writing into
// caller-owned storage — the dispatcher hands in slab-allocated
// structs so fleet-scale planning does not pay one heap object per
// arrival. Every field is written unconditionally (the slab re-zeroes
// on reuse, and the folds below start from the zero value).
func buildWorkflowProfileInto(store *profile.Store, w workflow.Workflow, wp *WorkflowProfile) error {
	// Shape-only validation: planning resolves benchmarks through the
	// profile store, so store-only benchmarks (fleet archetypes) are
	// legal here; the store lookup below rejects anything it lacks.
	if err := w.ValidateShape(); err != nil {
		return err
	}
	if store == nil {
		return fmt.Errorf("core: nil profile store")
	}
	wp.Workflow = w
	for _, t := range w.Tasks {
		p, err := store.Lookup(canonicalName(t.Benchmark), t.Size)
		if err != nil {
			return fmt.Errorf("core: workflow %s: %w", w.Name, err)
		}
		dur := p.DurationS * float64(t.Iterations)
		wp.TotalDurationS += dur
		wp.EnergyJ += p.EnergyJ * float64(t.Iterations)
		wp.AvgSMUtilPct += p.AvgSMUtilPct * dur
		wp.AvgBWUtilPct += p.AvgBWUtilPct * dur
		if p.MaxMemMiB > wp.MaxMemMiB {
			wp.MaxMemMiB = p.MaxMemMiB
		}
		duty := 1 - p.GPUIdlePct/100
		if duty < 0.05 {
			duty = 0.05
		}
		if active := p.AvgSMUtilPct / duty; active > wp.PeakActiveComputePct {
			wp.PeakActiveComputePct = active
		}
		if p.TheoreticalOccPct > 0 {
			if fill := p.AchievedOccPct / p.TheoreticalOccPct; fill > wp.PeakFillFraction {
				wp.PeakFillFraction = fill
			}
		}
	}
	if wp.TotalDurationS <= 0 {
		return fmt.Errorf("core: workflow %s has zero predicted duration", w.Name)
	}
	wp.AvgSMUtilPct /= wp.TotalDurationS
	wp.AvgBWUtilPct /= wp.TotalDurationS
	return nil
}

// canonicalName resolves paper aliases ("MHD") to suite names so store
// keys are stable regardless of which alias a workflow used. Store-only
// benchmarks (fleet archetypes) miss the registry by design; the probe
// is allocation-free so the miss costs nothing on the per-arrival path.
func canonicalName(benchmark string) string {
	if w, ok := workload.Canonical(benchmark); ok {
		return w
	}
	return benchmark
}
