package core

import (
	"testing"

	"gpushare/internal/gpusim"
	"gpushare/internal/workflow"
)

func TestExecuteOutcome(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	plan, err := s.BuildPlan(queueOf(t,
		wfOne("a", "AthenaPK", "4x", 2),
		wfOne("b", "AthenaPK", "4x", 2),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Execute(plan, gpusim.Config{Seed: 5, Mode: gpusim.ShareMPS})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sharing.Tasks != 4 || out.Sequential.Tasks != 4 {
		t.Fatalf("task counts: sharing %d sequential %d", out.Sharing.Tasks, out.Sequential.Tasks)
	}
	// Collocating two low-util workflows must beat sequential on both
	// metrics.
	if out.Relative.Throughput < 1.5 {
		t.Errorf("throughput %v, want ≥1.5 for AthenaPK pair", out.Relative.Throughput)
	}
	if out.Relative.EnergyEfficiency < 1.2 {
		t.Errorf("efficiency %v, want ≥1.2", out.Relative.EnergyEfficiency)
	}
	if out.ProductValue <= 1 {
		t.Errorf("product %v", out.ProductValue)
	}
	if len(out.Groups) != len(plan.Groups()) {
		t.Fatalf("group results %d vs plan groups %d", len(out.Groups), len(plan.Groups()))
	}
}

func TestExecuteSequentialPlanIsParity(t *testing.T) {
	// Executing the sequential plan must produce ≈1.0 relative metrics
	// (it is its own baseline).
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, ThroughputPolicy())
	q := queueOf(t, wfOne("a", "Kripke", "4x", 1), wfOne("b", "Kripke", "4x", 1))
	plan, err := s.SequentialPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.Groups() {
		if len(g.Members) != 1 {
			t.Fatal("sequential plan has multi-member group")
		}
	}
	out, err := s.Execute(plan, gpusim.Config{Seed: 5, Mode: gpusim.ShareMPS})
	if err != nil {
		t.Fatal(err)
	}
	if out.Relative.Throughput < 0.98 || out.Relative.Throughput > 1.02 {
		t.Fatalf("sequential plan throughput %v, want ≈1.0", out.Relative.Throughput)
	}
}

func TestNaiveFIFOPlan(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	q := queueOf(t,
		wfOne("w1", "LAMMPS", "4x", 1),
		wfOne("w2", "LAMMPS", "4x", 1),
		wfOne("w3", "AthenaPK", "4x", 1),
		wfOne("w4", "AthenaPK", "4x", 1),
	)
	plan, err := s.NaiveFIFOPlan(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	groups := plan.Groups()
	if len(groups) != 2 {
		t.Fatalf("naive plan groups = %d, want 2", len(groups))
	}
	// FIFO order: the two LAMMPS workflows land together despite the SM
	// rule (that is the point of the baseline).
	first := groups[0].Names()
	if first[0] != "w1" || first[1] != "w2" {
		t.Fatalf("naive grouping not FIFO: %v", planNames(plan))
	}
	if !groups[0].Estimate.Interferes {
		t.Fatal("naive LAMMPS pair should be flagged as interfering")
	}
}

func TestNaiveFIFOPlanRespectsMemory(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	q := queueOf(t,
		wfOne("w1", "WarpX", "1x", 1),
		wfOne("w2", "WarpX", "1x", 1),
	)
	plan, err := s.NaiveFIFOPlan(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.Groups() {
		if len(g.Members) != 1 {
			t.Fatal("naive plan collocated tasks that cannot fit memory")
		}
	}
}

func TestInterferenceAwareVsNaive(t *testing.T) {
	// What interference-awareness guarantees (and the naive baseline
	// does not): every produced group satisfies the paper's rules, so no
	// collocation can degrade beyond the mild-oversubscription regime.
	// In the calibrated model mild oversubscription keeps small gains
	// (the paper's own LAMMPS pairs gained ~6%), so the naive plan is
	// not required to lose outright — but the aware plan must stay
	// competitive while giving the predictability guarantee.
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, ThroughputPolicy())
	mk := func() *workflow.Queue {
		return queueOf(t,
			wfOne("l1", "LAMMPS", "4x", 1),
			wfOne("l2", "LAMMPS", "4x", 1),
			wfOne("a1", "AthenaPK", "4x", 2),
			wfOne("a2", "AthenaPK", "4x", 2),
		)
	}
	cfg := gpusim.Config{Seed: 9, Mode: gpusim.ShareMPS}
	smart, err := s.BuildPlan(mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range smart.Groups() {
		if g.Estimate.Interferes {
			t.Fatalf("aware plan contains interfering group %v: %s", g.Names(), g.Estimate)
		}
	}
	smartOut, err := s.Execute(smart, cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := s.NaiveFIFOPlan(mk(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var naiveInterferes bool
	for _, g := range naive.Groups() {
		naiveInterferes = naiveInterferes || g.Estimate.Interferes
	}
	if !naiveInterferes {
		t.Fatal("naive plan unexpectedly rule-clean; test queue broken")
	}
	naiveOut, err := s.Execute(naive, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if smartOut.Relative.Throughput < 0.9*naiveOut.Relative.Throughput {
		t.Fatalf("aware plan %vx fell far below naive %vx",
			smartOut.Relative.Throughput, naiveOut.Relative.Throughput)
	}
	// Both must beat plain sequential scheduling.
	if smartOut.Relative.Throughput <= 1 || naiveOut.Relative.Throughput <= 1 {
		t.Fatalf("collocation below sequential: aware %v naive %v",
			smartOut.Relative.Throughput, naiveOut.Relative.Throughput)
	}
}

func TestExecuteTimeSlicedWorseThanMPS(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, ThroughputPolicy())
	mk := func() *workflow.Queue {
		return queueOf(t,
			wfOne("a", "AthenaPK", "4x", 1),
			wfOne("b", "Kripke", "4x", 1),
		)
	}
	plan, _ := s.BuildPlan(mk())
	mpsOut, err := s.Execute(plan, gpusim.Config{Seed: 2, Mode: gpusim.ShareMPS})
	if err != nil {
		t.Fatal(err)
	}
	plan2, _ := s.BuildPlan(mk())
	tsOut, err := s.ExecuteTimeSliced(plan2, gpusim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mpsOut.Relative.Throughput < tsOut.Relative.Throughput {
		t.Fatalf("MPS %vx below time-slicing %vx", mpsOut.Relative.Throughput, tsOut.Relative.Throughput)
	}
}

func TestExecuteMultiGPUEnergyAccountsIdleTails(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 2, store, ThroughputPolicy())
	// One long and one short workflow: the short GPU idles until the
	// long one finishes; pool energy must include that idle tail.
	plan, err := s.BuildPlan(queueOf(t,
		wfOne("long", "Kripke", "4x", 3),
		wfOne("short", "Kripke", "1x", 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Execute(plan, gpusim.Config{Seed: 2, Mode: gpusim.ShareMPS})
	if err != nil {
		t.Fatal(err)
	}
	var groupEnergy float64
	for _, g := range out.Groups {
		groupEnergy += g.Result.EnergyJ
	}
	if out.Sharing.EnergyJ <= groupEnergy {
		t.Fatalf("pool energy %v must exceed sum of group energies %v (idle tail)",
			out.Sharing.EnergyJ, groupEnergy)
	}
}

func TestExecuteEmptyPlan(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, ThroughputPolicy())
	if _, err := s.Execute(nil, gpusim.Config{}); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := s.Execute(&Plan{Device: a100x(), PerGPU: [][]*Group{nil}}, gpusim.Config{}); err == nil {
		t.Fatal("empty plan accepted")
	}
}

func TestScheduleAndRun(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	out, err := s.ScheduleAndRun(queueOf(t,
		wfOne("a", "Cholla-Gravity", "1x", 5),
		wfOne("b", "Cholla-Gravity", "1x", 5),
	), gpusim.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.Relative.Throughput <= 1 {
		t.Fatalf("gravity pair throughput %v", out.Relative.Throughput)
	}
}

func TestScheduleDAG(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())

	// Diamond: prepro → {athena, gravity} → postpro. The middle level's
	// two low-utilization workflows collocate; the barriers order the
	// levels.
	dag := workflow.NewDAG()
	for _, w := range []workflow.Workflow{
		wfOne("prepro", "Kripke", "1x", 2),
		wfOne("athena", "AthenaPK", "4x", 1),
		wfOne("gravity", "Cholla-Gravity", "4x", 1),
		wfOne("postpro", "Kripke", "1x", 2),
	} {
		if err := dag.AddWorkflow(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{
		{"athena", "prepro"}, {"gravity", "prepro"},
		{"postpro", "athena"}, {"postpro", "gravity"},
	} {
		if err := dag.AddDependency(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}

	out, err := s.ScheduleDAG(dag, gpusim.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.LevelOutcomes) != 3 {
		t.Fatalf("levels = %d", len(out.LevelOutcomes))
	}
	// The middle level collocates its two independent workflows.
	mid := out.LevelOutcomes[1]
	if len(mid.Plan.Groups()) != 1 || len(mid.Plan.Groups()[0].Members) != 2 {
		t.Fatalf("middle level not collocated: %v", planNames(mid.Plan))
	}
	if out.Sharing.Tasks != 6 || out.Sequential.Tasks != 6 {
		t.Fatalf("tasks %d/%d", out.Sharing.Tasks, out.Sequential.Tasks)
	}
	// Only the middle level overlaps, so the gain is modest but real.
	if out.Relative.Throughput <= 1 {
		t.Fatalf("DAG throughput %v", out.Relative.Throughput)
	}
	// Barrier semantics: total makespan is the sum of level makespans.
	var sum float64
	for _, lo := range out.LevelOutcomes {
		sum += lo.Sharing.MakespanS
	}
	if rel := (out.Sharing.MakespanS - sum) / sum; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("makespan %v != sum of levels %v", out.Sharing.MakespanS, sum)
	}
}

func TestScheduleDAGErrors(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	if _, err := s.ScheduleDAG(nil, gpusim.Config{}); err == nil {
		t.Fatal("nil DAG accepted")
	}
	dag := workflow.NewDAG()
	dag.AddWorkflow(wfOne("a", "Kripke", "1x", 1))
	dag.AddWorkflow(wfOne("b", "Kripke", "1x", 1))
	dag.AddDependency("a", "b")
	dag.AddDependency("b", "a")
	if _, err := s.ScheduleDAG(dag, gpusim.Config{}); err == nil {
		t.Fatal("cyclic DAG accepted")
	}
}
