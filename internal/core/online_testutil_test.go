package core

import (
	"gpushare/internal/gpu"
	"gpushare/internal/interference"
	"gpushare/internal/obs"
)

// testDispatcher builds a sharded dispatcher directly, bypassing the
// Scheduler, for tests that drive the admission kernel in isolation.
func testDispatcher(device gpu.DeviceSpec, gpus, shards int, stats *DispatchStats) *onlineDispatcher {
	if shards > gpus {
		shards = gpus
	}
	d := &onlineDispatcher{
		shards:    make([]onlineShard, shards),
		base:      gpus / shards,
		rem:       gpus % shards,
		clientCap: 8,
		stats:     stats,
		fl:        obs.Active().FlightRecorder(),
	}
	lo := 0
	for si := range d.shards {
		n := d.base
		if si < d.rem {
			n++
		}
		sh := &d.shards[si]
		sh.lo = lo
		sh.gpus = make([]onlineGPU, n)
		for g := range sh.gpus {
			sh.gpus[g].agg = interference.NewAggregate(device)
		}
		sh.waitHist = obs.NewLocalHistogram(queueWaitBoundsMs)
		sh.depthHist = obs.NewLocalHistogram(groupOccupancyBounds)
		sh.serviceHist = obs.NewLocalHistogram(serviceBoundsMs)
		lo += n
	}
	return d
}
