package core

import (
	"gpushare/internal/gpu"
	"gpushare/internal/interference"
	"gpushare/internal/obs"
	"gpushare/internal/parallel"
)

// testDispatcher builds a sharded dispatcher directly, bypassing the
// Scheduler, for tests that drive the admission kernel in isolation.
// It scans serially; testDispatcherWorkers arms the parallel pool.
func testDispatcher(device gpu.DeviceSpec, gpus, shards int, stats *DispatchStats) *onlineDispatcher {
	if shards > gpus {
		shards = gpus
	}
	d := &onlineDispatcher{
		shards:    make([]onlineShard, shards),
		base:      gpus / shards,
		rem:       gpus % shards,
		clientCap: 8,
		stats:     stats,
		fl:        obs.Active().FlightRecorder(),
	}
	lo := 0
	for si := range d.shards {
		n := d.base
		if si < d.rem {
			n++
		}
		sh := &d.shards[si]
		sh.lo = lo
		sh.gpus = make([]onlineGPU, n)
		for g := range sh.gpus {
			sh.gpus[g].agg = interference.NewAggregate(device)
		}
		sh.waitHist = obs.NewLocalHistogram(queueWaitBoundsMs)
		sh.depthHist = obs.NewLocalHistogram(groupOccupancyBounds)
		sh.serviceHist = obs.NewLocalHistogram(serviceBoundsMs)
		sh.scanGPU = -1
		lo += n
	}
	return d
}

// testDispatcherWorkers is testDispatcher with the parallel scan pool
// armed, mirroring newOnlineDispatcher's ProbeWorkers wiring. Callers
// must close() the dispatcher.
func testDispatcherWorkers(device gpu.DeviceSpec, gpus, shards, workers int, stats *DispatchStats) *onlineDispatcher {
	d := testDispatcher(device, gpus, shards, stats)
	if workers > 1 && len(d.shards) >= 2 {
		if workers > len(d.shards) {
			workers = len(d.shards)
		}
		d.pool = parallel.NewGang(workers)
		d.scanFn = func(si int) {
			d.shards[si].scan(d, si, d.scanLoad, d.scanFirst, d.scanSeq, d.scanNow)
		}
	}
	return d
}
