package core

import (
	"errors"
	"fmt"
	"sort"

	"gpushare/internal/eventq"
	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/interference"
	"gpushare/internal/metrics"
	"gpushare/internal/obs"
	"gpushare/internal/simtime"
	"gpushare/internal/workflow"
)

// ErrNoArrivals is the typed validation error for an empty arrival
// stream: there is nothing to plan, and downstream wait statistics
// (MeanWaitS over zero dispatches) would be undefined. Callers that want
// "empty in, empty out" check for it with errors.Is.
var ErrNoArrivals = errors.New("core: no arrivals")

// Online scheduling extends the paper's offline queue model (§IV-B
// assumes "an entire queue of workflow tasks ... is known before workflow
// execution") to workflows arriving over time — the direction §VI's
// "comprehensive scheduling framework" points at. Dispatch decisions use
// the same interference rules, applied incrementally against what is
// already running on each GPU.

// Arrival is one workflow submission.
type Arrival struct {
	// At is the submission instant.
	At simtime.Time
	// Workflow is the submitted workflow.
	Workflow workflow.Workflow
}

// DispatchEvent records one scheduling decision for the event log.
type DispatchEvent struct {
	// At is the dispatch instant.
	At simtime.Time
	// Workflow is the dispatched workflow's name.
	Workflow string
	// GPU is the target device index.
	GPU int
	// WaitedS is the queueing delay in seconds.
	WaitedS float64
	// RunningAlongside names the workflows predicted to still be running
	// on that GPU at dispatch time.
	RunningAlongside []string
}

// OnlineOutcome is the result of an online-scheduling emulation.
type OnlineOutcome struct {
	// Dispatches is the decision log in dispatch order.
	Dispatches []DispatchEvent
	// Sharing and Sequential summarize the simulated executions; both
	// respect the arrival times.
	Sharing    metrics.RunSummary
	Sequential metrics.RunSummary
	// Relative holds the paper's metrics for sharing vs sequential.
	Relative metrics.Relative
	// MeanWaitS and MaxWaitS summarize queueing delay under sharing.
	MeanWaitS float64
	MaxWaitS  float64
}

// onlineResident tracks a dispatched workflow during planning. The
// per-GPU resident slice stays in dispatch order, parallel to the GPU's
// interference aggregate, so aggregate member i is resident i. seq is
// the placement serial — the identity completion events retire by, so a
// completion can never remove a different resident that happens to share
// its (quantized) finish instant.
type onlineResident struct {
	name string
	end  simtime.Time
	seq  uint64
}

// onlineGPU is one device's admission state: the resident list, its
// running interference sums, and a dirty mark set when a retirement
// changes the resident set mid-wait (see dispatchArrivals).
type onlineGPU struct {
	agg   interference.Aggregate
	res   []onlineResident
	dirty bool
}

// queueWaitBoundsMs bucket online queueing delay in simulated
// milliseconds (the paper's workflows run seconds to minutes).
var queueWaitBoundsMs = []int64{0, 10, 100, 1_000, 10_000, 60_000, 600_000}

// OnlinePlan is the decision half of an online-scheduling emulation: the
// dispatch log plus the placement the simulator executes. PlanOnline
// produces it; ScheduleOnline executes it.
type OnlinePlan struct {
	// Dispatches is the decision log in dispatch order.
	Dispatches []DispatchEvent
	// Stats summarizes the work the admission path did.
	Stats DispatchStats

	arrivals []Arrival          // sorted by arrival time
	profiles []*WorkflowProfile // parallel to arrivals
	at       []simtime.Time     // dispatch instants, parallel to arrivals
	gpu      []int              // dispatch targets, parallel to arrivals
}

// DispatchStats counts the admission path's work. Probe counts are an
// implementation property (the incremental dispatcher skips probes a
// rescan would repeat), not part of the plan identity.
type DispatchStats struct {
	// Probes is the number of per-GPU admission checks evaluated.
	Probes int64
	// Waits is the number of predicted completions waited for.
	Waits int64
	// Completions is the number of resident retirements processed.
	Completions int64
}

// PlanOnline runs the online admission path alone: workflows are
// dispatched at or after their arrival, to the first GPU where the
// paper's rules admit them alongside the residents; otherwise they wait
// for a predicted completion. It is the per-arrival decision procedure a
// production dispatcher would run, so it is benchmarked (and sized) for
// fleet-scale streams; ScheduleOnline adds the simulated execution.
func (s *Scheduler) PlanOnline(arrivals []Arrival) (*OnlinePlan, error) {
	hub := obs.Active()
	defer hub.StartWall("scheduler", "PlanOnline").End()
	return s.planOnline(arrivals)
}

// planOnline sorts the arrivals, builds their profiles, and runs the
// admission loop.
func (s *Scheduler) planOnline(arrivals []Arrival) (*OnlinePlan, error) {
	if len(arrivals) == 0 {
		return nil, ErrNoArrivals
	}
	sorted := make([]Arrival, len(arrivals))
	copy(sorted, arrivals)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	profiles := make([]*WorkflowProfile, len(sorted))
	for i, a := range sorted {
		wp, err := BuildWorkflowProfile(s.Profiles, a.Workflow)
		if err != nil {
			return nil, err
		}
		profiles[i] = wp
	}

	plan := &OnlinePlan{
		arrivals: sorted,
		profiles: profiles,
		at:       make([]simtime.Time, len(sorted)),
		gpu:      make([]int, len(sorted)),
	}
	if err := s.dispatchArrivals(plan); err != nil {
		return nil, err
	}

	hub := obs.Active()
	hub.Counter("dispatch_probe_total").Add(plan.Stats.Probes)
	hub.Counter("dispatch_wait_events_total").Add(plan.Stats.Waits)
	hub.Counter("dispatch_completions_total").Add(plan.Stats.Completions)
	return plan, nil
}

// onlineDispatcher is the admission state dispatchArrivals drives: the
// per-GPU resident sets with their interference aggregates, the
// predicted-completion min-heap, and the dirty set for wait-round
// re-probing. The decision kernel (admit/retire) is the production
// dispatcher's per-arrival work and is held to the hot-path contract;
// dispatchArrivals keeps the per-dispatch record building and telemetry
// outside it.
type onlineDispatcher struct {
	gpus []onlineGPU
	// completions orders predicted retirements by (end, schedule seq);
	// payloads are pooled *completionKey values naming the exact resident
	// each event was scheduled for, so the steady state allocates nothing
	// (eventq freelist, pointer-in-interface payload) and retirement is
	// identity-based even when several residents on a GPU share a
	// quantized finish instant.
	completions eventq.Queue
	dirtied     []*onlineGPU // GPUs retired into during the current wait round

	keyFree []*completionKey // recycled completion payloads
	nextSeq uint64           // next resident placement serial

	clientCap        int
	allowInterfering bool
	stats            *DispatchStats
}

// completionKey is a completion event's payload: the GPU and the
// placement serial of the resident the event retires. Keys are pooled by
// the dispatcher (acquireKey/releaseKey) so scheduling stays
// allocation-free in steady state.
type completionKey struct {
	gpu *onlineGPU
	seq uint64
}

// acquireKey takes a completion payload from the freelist or allocates
// one.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (d *onlineDispatcher) acquireKey() *completionKey {
	if n := len(d.keyFree); n > 0 {
		k := d.keyFree[n-1]
		d.keyFree[n-1] = nil
		d.keyFree = d.keyFree[:n-1]
		return k
	}
	//repro:allow:hotpathalloc key-pool refill: cold path, amortized away once the steady state recycles keys
	return &completionKey{}
}

// releaseKey returns a retired payload to the freelist.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (d *onlineDispatcher) releaseKey(k *completionKey) {
	k.gpu = nil
	//repro:allow:hotpathalloc key-pool growth is amortized; capacity is retained for the run's lifetime
	d.keyFree = append(d.keyFree, k)
}

// admit runs the wait loop for one arrival: first-fit over GPUs in
// index order, waiting on predicted completions when no GPU admits. It
// returns the dispatch instant and target, or ok=false when no GPU can
// ever admit the load. Resident sets are only mutated by retirement;
// the caller commits the chosen placement with place. On retry rounds
// only dirty GPUs are probed: the rest rejected this same candidate
// against an unchanged resident set, and an unchanged group and the
// same candidate yield the same sums, hence the same rejection.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (d *onlineDispatcher) admit(load interference.Load, arrival simtime.Time) (at simtime.Time, gpu int, ok bool) {
	now := arrival
	first := true
	for {
		d.retire(now)
		placed := -1
		for g := range d.gpus {
			gd := &d.gpus[g]
			if !first && !gd.dirty {
				continue
			}
			if len(gd.res)+1 > d.clientCap {
				continue
			}
			d.stats.Probes++
			out := gd.agg.Admit(load)
			admit := !out.Interferes()
			if d.allowInterfering && !out.Capacity {
				admit = true
			}
			if admit {
				placed = g
				break
			}
		}
		for _, gd := range d.dirtied {
			gd.dirty = false
		}
		d.dirtied = d.dirtied[:0]
		if placed >= 0 {
			return now, placed, true
		}
		// Wait for the next predicted completion: the heap minimum
		// (every remaining resident ends after now).
		next, okNext := d.completions.PeekTime()
		if !okNext {
			return 0, -1, false
		}
		d.stats.Waits++
		now = next
		first = false
	}
}

// retire removes residents predicted to have finished by now, marking
// their GPUs dirty for the next probe round. Removal is identity-based:
// each completion event names the resident it was scheduled for (by
// placement serial), so colliding finish instants on one GPU can never
// retire the wrong resident — an index scan for "first end <= now" would
// pick whichever collided resident sits earliest in the list.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (d *onlineDispatcher) retire(now simtime.Time) {
	for {
		at, ok := d.completions.PeekTime()
		if !ok || at > now {
			return
		}
		ev, _ := d.completions.Pop()
		k := ev.Data.(*completionKey)
		gd := k.gpu
		d.completions.Free(ev)
		for j := range gd.res {
			if gd.res[j].seq == k.seq {
				copy(gd.res[j:], gd.res[j+1:])
				gd.res = gd.res[:len(gd.res)-1]
				gd.agg.RemoveAt(j)
				break
			}
		}
		d.releaseKey(k)
		d.stats.Completions++
		if !gd.dirty {
			gd.dirty = true
			//repro:allow:hotpathalloc dirty-set growth is bounded by the GPU count; capacity is retained
			d.dirtied = append(d.dirtied, gd)
		}
	}
}

// place commits an admitted load: the resident joins GPU g's set and
// fold, and its predicted completion is scheduled against the resident's
// placement serial.
func (d *onlineDispatcher) place(g int, load interference.Load, name string, end simtime.Time) {
	gd := &d.gpus[g]
	seq := d.nextSeq
	d.nextSeq++
	gd.res = append(gd.res, onlineResident{name: name, end: end, seq: seq})
	gd.agg.Add(load)
	k := d.acquireKey()
	k.gpu = gd
	k.seq = seq
	d.completions.Schedule(end, 0, k)
}

// dispatchArrivals is the admission loop over all arrivals. Its
// decisions are byte-identical to a full per-arrival rescan (pinned by
// the goldens in testdata/) but each probe is O(1) against the GPU's
// interference aggregate, retirements come off a completion-time
// min-heap instead of an every-iteration sweep, and wait-loop retries
// re-probe only GPUs whose resident set changed.
func (s *Scheduler) dispatchArrivals(plan *OnlinePlan) error {
	hub := obs.Active()
	d := &onlineDispatcher{
		gpus:             make([]onlineGPU, s.GPUs),
		clientCap:        s.Policy.clientCap(s.Device.MaxMPSClients),
		allowInterfering: s.Policy.AllowInterferingPairs,
		stats:            &plan.Stats,
	}
	for g := range d.gpus {
		d.gpus[g].agg = interference.NewAggregate(s.Device)
	}

	// Telemetry handles hoisted out of the loop; counters folded at the
	// end (plain ints in the hot path). The decision loop is serial and
	// queue waits are sim-time durations, so all of this is deterministic.
	waitHist := hub.Histogram("dispatch_queue_wait_ms", queueWaitBoundsMs)
	occHist := hub.Histogram("dispatch_collocated_clients", groupOccupancyBounds)
	var waitedNS int64

	for i := range plan.arrivals {
		a := &plan.arrivals[i]
		wp := plan.profiles[i]
		load := wp.load()
		now, placed, ok := d.admit(load, a.At)
		if !ok {
			return fmt.Errorf("core: workflow %s cannot be admitted on any GPU (needs %d MiB)",
				wp.Workflow.Name, wp.MaxMemMiB)
		}
		gd := &d.gpus[placed]
		var alongside []string
		for j := range gd.res {
			alongside = append(alongside, gd.res[j].name)
		}
		end := now.Add(simtime.FromSeconds(wp.TotalDurationS))
		d.place(placed, load, wp.Workflow.Name, end)
		plan.at[i] = now
		plan.gpu[i] = placed
		plan.Dispatches = append(plan.Dispatches, DispatchEvent{
			At:               now,
			Workflow:         wp.Workflow.Name,
			GPU:              placed,
			WaitedS:          now.Sub(a.At).Seconds(),
			RunningAlongside: alongside,
		})
		waitedNS += int64(now.Sub(a.At))
		waitHist.Observe(int64(now.Sub(a.At) / simtime.Millisecond))
		occHist.Observe(int64(len(alongside) + 1))
	}
	hub.Counter("dispatch_total").Add(int64(len(plan.Dispatches)))
	hub.Counter("dispatch_waited_simns_total").Add(waitedNS)
	return nil
}

// ScheduleOnline emulates online operation: PlanOnline's dispatch
// decisions are executed faithfully by the simulator (one engine per GPU,
// clients at their dispatch instants), and compared against an
// arrival-respecting sequential baseline.
//
// Planning uses predicted (profile-derived) durations; execution reflects
// actual contention, so real completions can drift from the plan — as in
// a production scheduler.
func (s *Scheduler) ScheduleOnline(arrivals []Arrival, simCfg gpusim.Config) (*OnlineOutcome, error) {
	hub := obs.Active()
	defer hub.StartWall("scheduler", "ScheduleOnline").End()
	simCfg.Device = s.Device

	plan, err := s.planOnline(arrivals)
	if err != nil {
		return nil, err
	}
	out := &OnlineOutcome{Dispatches: plan.Dispatches}

	// Execute the plan: one engine per GPU, clients at dispatch times.
	sharing, err := s.runOnlinePlacement(plan.arrivals, plan.at, plan.gpu, simCfg)
	if err != nil {
		return nil, err
	}
	out.Sharing = sharing

	// Sequential baseline: same arrivals, one workflow at a time per
	// GPU, earliest-available GPU, FIFO.
	seq, err := s.runOnlineSequential(plan.arrivals, plan.profiles, simCfg)
	if err != nil {
		return nil, err
	}
	out.Sequential = seq

	rel, err := metrics.Compare(out.Sequential, out.Sharing)
	if err != nil {
		return nil, err
	}
	out.Relative = rel

	// Guard the division: planOnline rejects empty streams, but a zero
	// dispatch count must never turn the wait stats into NaN.
	if len(out.Dispatches) > 0 {
		for _, d := range out.Dispatches {
			out.MeanWaitS += d.WaitedS
			if d.WaitedS > out.MaxWaitS {
				out.MaxWaitS = d.WaitedS
			}
		}
		out.MeanWaitS /= float64(len(out.Dispatches))
	}
	return out, nil
}

// runOnlinePlacement executes the dispatch plan.
func (s *Scheduler) runOnlinePlacement(arrivals []Arrival, at []simtime.Time, gpuOf []int, simCfg gpusim.Config) (metrics.RunSummary, error) {
	engines := make([]*gpusim.Engine, s.GPUs)
	used := make([]bool, s.GPUs)
	for g := range engines {
		cfg := simCfg
		cfg.Seed = simCfg.Seed + uint64(g)*104729
		eng, err := gpusim.New(cfg)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		engines[g] = eng
	}
	for i, a := range arrivals {
		tasks, err := a.Workflow.BuildSpecs(s.Device)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		g := gpuOf[i]
		used[g] = true
		if err := engines[g].AddClient(gpusim.Client{
			ID:      fmt.Sprintf("online-%02d-%s", i, a.Workflow.Name),
			Arrival: at[i],
			Tasks:   tasks,
		}); err != nil {
			return metrics.RunSummary{}, err
		}
	}
	var makespans []float64
	var energy, cappedS float64
	tasks := 0
	for g, eng := range engines {
		if !used[g] {
			makespans = append(makespans, 0)
			continue
		}
		res, err := eng.Run()
		if err != nil {
			return metrics.RunSummary{}, err
		}
		makespans = append(makespans, res.Makespan.Seconds())
		energy += res.EnergyJ
		cappedS += res.CappedTime.Seconds()
		tasks += res.TasksCompleted()
	}
	return onlinePoolSummary(s.Device, makespans, energy, cappedS, tasks), nil
}

// runOnlineSequential executes the arrival-respecting no-collocation
// baseline: FIFO, one workflow at a time per GPU.
func (s *Scheduler) runOnlineSequential(arrivals []Arrival, profiles []*WorkflowProfile, simCfg gpusim.Config) (metrics.RunSummary, error) {
	free := make([]simtime.Time, s.GPUs)
	engines := make([]*gpusim.Engine, s.GPUs)
	used := make([]bool, s.GPUs)
	for g := range engines {
		cfg := simCfg
		cfg.Seed = simCfg.Seed + uint64(g)*7877 + 1
		eng, err := gpusim.New(cfg)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		engines[g] = eng
	}
	for i, a := range arrivals {
		best := 0
		for g := 1; g < s.GPUs; g++ {
			if free[g] < free[best] {
				best = g
			}
		}
		start := simtime.Max(a.At, free[best])
		free[best] = start.Add(simtime.FromSeconds(profiles[i].TotalDurationS))
		tasks, err := a.Workflow.BuildSpecs(s.Device)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		used[best] = true
		if err := engines[best].AddClient(gpusim.Client{
			ID:      fmt.Sprintf("seq-%02d-%s", i, a.Workflow.Name),
			Arrival: start,
			Tasks:   tasks,
		}); err != nil {
			return metrics.RunSummary{}, err
		}
	}
	var makespans []float64
	var energy, cappedS float64
	tasks := 0
	for g, eng := range engines {
		if !used[g] {
			makespans = append(makespans, 0)
			continue
		}
		res, err := eng.Run()
		if err != nil {
			return metrics.RunSummary{}, err
		}
		makespans = append(makespans, res.Makespan.Seconds())
		energy += res.EnergyJ
		cappedS += res.CappedTime.Seconds()
		tasks += res.TasksCompleted()
	}
	return onlinePoolSummary(s.Device, makespans, energy, cappedS, tasks), nil
}

// onlinePoolSummary mirrors poolSummary for engine-level makespans.
func onlinePoolSummary(device gpu.DeviceSpec, makespans []float64, energyJ, cappedS float64, tasks int) metrics.RunSummary {
	var makespan float64
	for _, m := range makespans {
		if m > makespan {
			makespan = m
		}
	}
	for _, m := range makespans {
		energyJ += device.IdlePowerW * (makespan - m)
	}
	capped, avgPower := 0.0, 0.0
	if makespan > 0 {
		capped = cappedS / (makespan * float64(len(makespans)))
		avgPower = energyJ / makespan / float64(len(makespans))
	}
	return metrics.RunSummary{
		MakespanS:      makespan,
		EnergyJ:        energyJ,
		Tasks:          tasks,
		CappedFraction: capped,
		AvgPowerW:      avgPower,
	}
}
