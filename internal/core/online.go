package core

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"gpushare/internal/arena"
	"gpushare/internal/eventq"
	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/interference"
	"gpushare/internal/metrics"
	"gpushare/internal/obs"
	"gpushare/internal/parallel"
	"gpushare/internal/profile"
	"gpushare/internal/simtime"
	"gpushare/internal/workflow"
)

// ErrNoArrivals is the typed validation error for an empty arrival
// stream: there is nothing to plan, and downstream wait statistics
// (MeanWaitS over zero dispatches) would be undefined. Callers that want
// "empty in, empty out" check for it with errors.Is.
var ErrNoArrivals = errors.New("core: no arrivals")

// Online scheduling extends the paper's offline queue model (§IV-B
// assumes "an entire queue of workflow tasks ... is known before workflow
// execution") to workflows arriving over time — the direction §VI's
// "comprehensive scheduling framework" points at. Dispatch decisions use
// the same interference rules, applied incrementally against what is
// already running on each GPU.

// Arrival is one workflow submission.
type Arrival struct {
	// At is the submission instant.
	At simtime.Time
	// Workflow is the submitted workflow.
	Workflow workflow.Workflow
}

// DispatchEvent records one scheduling decision for the event log.
type DispatchEvent struct {
	// At is the dispatch instant.
	At simtime.Time
	// Workflow is the dispatched workflow's name.
	Workflow string
	// GPU is the target device index.
	GPU int
	// WaitedS is the queueing delay in seconds.
	WaitedS float64
	// RunningAlongside names the workflows predicted to still be running
	// on that GPU at dispatch time.
	RunningAlongside []string
}

// OnlineOutcome is the result of an online-scheduling emulation.
type OnlineOutcome struct {
	// Dispatches is the decision log in dispatch order.
	Dispatches []DispatchEvent
	// Sharing and Sequential summarize the simulated executions; both
	// respect the arrival times.
	Sharing    metrics.RunSummary
	Sequential metrics.RunSummary
	// Relative holds the paper's metrics for sharing vs sequential.
	Relative metrics.Relative
	// MeanWaitS and MaxWaitS summarize queueing delay under sharing.
	MeanWaitS float64
	MaxWaitS  float64
}

// onlineResident tracks a dispatched workflow during planning. The
// per-GPU resident slice stays in dispatch order, parallel to the GPU's
// interference aggregate, so aggregate member i is resident i. seq is
// the placement serial — the identity completion events retire by, so a
// completion can never remove a different resident that happens to share
// its (quantized) finish instant.
type onlineResident struct {
	name string
	end  simtime.Time
	seq  uint64
}

// onlineGPU is one device's admission state: the resident list, its
// running interference sums, and a dirty mark set when a retirement
// changes the resident set mid-wait (see dispatchArrivals).
type onlineGPU struct {
	agg   interference.Aggregate
	res   []onlineResident
	dirty bool
}

// planArena backs the per-arrival allocations of one plan (or one
// streaming run): workflow profiles come from a slab, dispatch-event
// name lists from a slice arena. Everything handed out stays valid
// until the arena's owner resets it — OnlinePlan never resets (its
// Dispatches reference the name lists for the plan's lifetime), while
// the Streamer resets the name scratch after each event is framed
// (DESIGN.md §14).
type planArena struct {
	profiles arena.Slab[WorkflowProfile]
	names    arena.Slice[string]
}

// profileBuilder resolves arrivals to workflow profiles with a
// memoization layer: fleet streams draw millions of arrivals from a
// handful of archetypes, and a profile is a pure function of the task
// list and the store, so single-task workflows are cached by their
// task value (comparable struct key, allocation-free lookup). Cached
// profiles carry the *first* arrival's workflow name; everything
// name-dependent on the dispatch path therefore reads the arrival,
// never the profile.
type profileBuilder struct {
	store *profile.Store
	mem   *planArena
	cache map[workflow.Task]*WorkflowProfile
}

// profileCacheCap bounds the memo map so adversarial streams with
// unbounded distinct tasks cannot grow it without limit (the streaming
// path promises bounded steady-state memory).
const profileCacheCap = 4096

func newProfileBuilder(store *profile.Store, mem *planArena) *profileBuilder {
	return &profileBuilder{store: store, mem: mem, cache: make(map[workflow.Task]*WorkflowProfile)}
}

// build returns the arrival's profile, from cache when possible. Shape
// validation always runs against the submitted workflow — a cache hit
// must not let an ill-formed workflow ride on a well-formed twin's
// profile.
func (b *profileBuilder) build(w workflow.Workflow) (*WorkflowProfile, error) {
	if err := w.ValidateShape(); err != nil {
		return nil, err
	}
	single := len(w.Tasks) == 1
	if single {
		if wp, ok := b.cache[w.Tasks[0]]; ok {
			return wp, nil
		}
	}
	wp := b.mem.profiles.Get()
	if err := buildWorkflowProfileInto(b.store, w, wp); err != nil {
		return nil, err
	}
	if single && len(b.cache) < profileCacheCap {
		b.cache[w.Tasks[0]] = wp
	}
	return wp, nil
}

// putUncached recycles a profile the cache did not retain (multi-task
// workflow, or the cache hit its cap). The streaming path calls it once
// the arrival's event is framed, so the slab's live set tracks the
// cache, not the arrival count.
func (b *profileBuilder) putUncached(w workflow.Workflow, wp *WorkflowProfile) {
	if len(w.Tasks) == 1 && b.cache[w.Tasks[0]] == wp {
		return
	}
	b.mem.profiles.Put(wp)
}

// queueWaitBoundsMs bucket online queueing delay in simulated
// milliseconds (the paper's workflows run seconds to minutes).
var queueWaitBoundsMs = []int64{0, 10, 100, 1_000, 10_000, 60_000, 600_000}

// serviceBoundsMs bucket predicted service time (profile-derived
// workflow duration) in simulated milliseconds.
var serviceBoundsMs = []int64{1_000, 5_000, 15_000, 60_000, 300_000, 1_800_000}

// OnlinePlan is the decision half of an online-scheduling emulation: the
// dispatch log plus the placement the simulator executes. PlanOnline
// produces it; ScheduleOnline executes it.
type OnlinePlan struct {
	// Dispatches is the decision log in dispatch order.
	Dispatches []DispatchEvent
	// Stats summarizes the work the admission path did.
	Stats DispatchStats

	arrivals []Arrival          // sorted by arrival time
	profiles []*WorkflowProfile // parallel to arrivals, arena-backed
	at       []simtime.Time     // dispatch instants, parallel to arrivals
	gpu      []int              // dispatch targets, parallel to arrivals

	// mem owns every per-arrival allocation the plan references:
	// profiles and the Dispatches' RunningAlongside name lists point into
	// it. Tying the arena to the plan (never the scheduler) means the
	// data lives exactly as long as the plan and later runs cannot
	// corrupt it.
	mem *planArena
}

// DispatchStats counts the admission path's work. Probe counts are an
// implementation property (the incremental dispatcher skips probes a
// rescan would repeat), not part of the plan identity.
type DispatchStats struct {
	// Probes is the number of per-GPU admission checks evaluated.
	Probes int64
	// Waits is the number of predicted completions waited for.
	Waits int64
	// Completions is the number of resident retirements processed.
	Completions int64
}

// PlanOnline runs the online admission path alone: workflows are
// dispatched at or after their arrival, to the first GPU where the
// paper's rules admit them alongside the residents; otherwise they wait
// for a predicted completion. It is the per-arrival decision procedure a
// production dispatcher would run, so it is benchmarked (and sized) for
// fleet-scale streams; ScheduleOnline adds the simulated execution.
func (s *Scheduler) PlanOnline(arrivals []Arrival) (*OnlinePlan, error) {
	hub := obs.Active()
	defer hub.StartWall("scheduler", "PlanOnline").End()
	return s.planOnline(arrivals)
}

// planOnline sorts the arrivals, builds their profiles, and runs the
// admission loop.
func (s *Scheduler) planOnline(arrivals []Arrival) (*OnlinePlan, error) {
	if len(arrivals) == 0 {
		return nil, ErrNoArrivals
	}
	sorted := make([]Arrival, len(arrivals))
	copy(sorted, arrivals)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	mem := &planArena{}
	builder := newProfileBuilder(s.Profiles, mem)
	profiles := make([]*WorkflowProfile, len(sorted))
	for i, a := range sorted {
		wp, err := builder.build(a.Workflow)
		if err != nil {
			return nil, err
		}
		profiles[i] = wp
	}

	plan := &OnlinePlan{
		Dispatches: make([]DispatchEvent, 0, len(sorted)),
		arrivals:   sorted,
		profiles:   profiles,
		at:         make([]simtime.Time, len(sorted)),
		gpu:        make([]int, len(sorted)),
		mem:        mem,
	}
	if err := s.dispatchArrivals(plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// onlineShard owns a contiguous range of the fleet's GPUs and every
// admission structure scoped to them: resident sets with their
// interference aggregates, the predicted-completion min-heap, the
// pooled completion payloads, the dirty set for wait-round re-probing,
// and single-owner telemetry histograms. Sharding splits the
// dispatcher's state by GPU range so each shard's heap and dirty set
// stay small at fleet scale; decisions remain byte-identical to the
// flat dispatcher because shards are probed serially in index order
// (DESIGN.md §14).
type onlineShard struct {
	// lo is the global index of gpus[0]; the shard covers
	// [lo, lo+len(gpus)).
	lo   int
	gpus []onlineGPU
	// completions orders this shard's predicted retirements by (end,
	// schedule seq); payloads are pooled *completionKey values naming the
	// exact resident each event was scheduled for, so the steady state
	// allocates nothing (eventq freelist, pointer-in-interface payload)
	// and retirement is identity-based even when several residents on a
	// GPU share a quantized finish instant.
	completions eventq.Queue
	dirtied     []*onlineGPU     // shard GPUs retired into during the current wait round
	keyFree     []*completionKey // recycled completion payloads

	// Single-owner histograms: the decision loop is serial, so each
	// observation is an unsynchronized int bump; planOnline folds them
	// into the shared registry after the loop (sums are commutative, so
	// the merged metrics are byte-identical at any shard count).
	waitHist    *obs.LocalHistogram // admission latency, sim ms
	depthHist   *obs.LocalHistogram // collocated clients at dispatch
	serviceHist *obs.LocalHistogram // predicted service time, sim ms

	// Scan results: scan buffers its verdict here instead of touching
	// shared dispatcher state, so shards can scan concurrently (each
	// writes only its own slots) and the serial merge in probeRound
	// replays counters and flight records in shard index order —
	// byte-identical to the serial early-exit scan. Slots from a shard
	// the merge never reached are stale, never read: the merge stops at
	// the winning shard and the serial path stops scanning there too.
	scanGPU    int                // winning global GPU index, or -1
	scanProbes int64              // admission checks this scan evaluated
	trail      []obs.FlightRecord // buffered probe records (telemetry on)
}

// completionKey is a completion event's payload: the GPU and the
// placement serial of the resident the event retires. Keys are pooled by
// their shard (acquireKey/releaseKey) so scheduling stays
// allocation-free in steady state.
type completionKey struct {
	gpu *onlineGPU
	seq uint64
}

// acquireKey takes a completion payload from the shard's freelist or
// allocates one.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (sh *onlineShard) acquireKey() *completionKey {
	if n := len(sh.keyFree); n > 0 {
		k := sh.keyFree[n-1]
		sh.keyFree[n-1] = nil
		sh.keyFree = sh.keyFree[:n-1]
		return k
	}
	//repro:allow:hotpathalloc key-pool refill: cold path, amortized away once the steady state recycles keys
	return &completionKey{}
}

// releaseKey returns a retired payload to the shard's freelist.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (sh *onlineShard) releaseKey(k *completionKey) {
	k.gpu = nil
	//repro:allow:hotpathalloc key-pool growth is amortized; capacity is retained for the run's lifetime
	sh.keyFree = append(sh.keyFree, k)
}

// scan probes the shard's GPUs in index order for the first that admits
// the load, stopping there. On retry rounds (first false) only dirty
// GPUs are probed: the rest rejected this same candidate against an
// unchanged resident set, and an unchanged group and the same candidate
// yield the same sums, hence the same rejection.
//
// scan is read-only over shared dispatcher state — it reads aggregates,
// resident counts, and dirty marks (mutated only between rounds, by
// retirement) and writes nothing but the shard's own scan slots. That
// is what lets probeRound run all shards concurrently: the verdict
// (winning GPU), the probe count, and the flight trail are buffered per
// shard and merged serially afterward. Every evaluated GPU (including
// client-cap skips) leaves a trail record carrying the typed rule
// verdict; the stream is shard- and worker-count invariant because the
// dirty and skip sets are decision properties and the record names only
// the global GPU index — never the shard or the worker.
//
// In a parallel round, scan bounds its speculation through scanBest,
// the lowest shard index known to hold an admit: a shard above it
// abandons its scan (its slots go stale but the merge stops strictly
// before them), and a shard that finds an admit publishes its index
// with a CAS-min. Every shard at or below the final winner still
// completes in full, so the merged counters and trail cannot observe
// the abandonment — only the wall clock can.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (sh *onlineShard) scan(d *onlineDispatcher, si int, load interference.Load, first bool, seq int64, now simtime.Time) {
	sh.scanGPU = -1
	sh.scanProbes = 0
	record := d.fl != nil
	if record {
		sh.trail = sh.trail[:0]
	}
	par := d.pool != nil
	for g := range sh.gpus {
		if par && d.scanBest.Load() < int32(si) {
			return
		}
		gd := &sh.gpus[g]
		if !first && !gd.dirty {
			continue
		}
		if len(gd.res)+1 > d.clientCap {
			if record {
				//repro:allow:hotpathalloc trail growth is bounded by the shard's GPU count; capacity is retained
				sh.trail = append(sh.trail, obs.FlightRecord{
					Seq: seq, Kind: obs.FlightProbe, AtNS: int64(now),
					GPU: int32(sh.lo + g), Clients: int32(len(gd.res)),
					Rules: uint8(interference.MaskClientCap),
				})
			}
			continue
		}
		sh.scanProbes++
		out := gd.agg.Admit(load)
		admit := !out.Interferes()
		if d.allowInterfering && !out.Capacity {
			admit = true
		}
		if record {
			r := out.Reason()
			//repro:allow:hotpathalloc trail growth is bounded by the shard's GPU count; capacity is retained
			sh.trail = append(sh.trail, obs.FlightRecord{
				Seq: seq, Kind: obs.FlightProbe, AtNS: int64(now),
				GPU: int32(sh.lo + g), Clients: int32(len(gd.res)),
				Rules:         uint8(r.Rules),
				SMExcessMilli: r.SMExcessMilli,
				BWExcessMilli: r.BWExcessMilli,
				MemExcessMiB:  r.MemExcessMiB,
			})
		}
		if admit {
			sh.scanGPU = sh.lo + g
			if par {
				for {
					best := d.scanBest.Load()
					if best <= int32(si) || d.scanBest.CompareAndSwap(best, int32(si)) {
						break
					}
				}
			}
			return
		}
	}
}

// retire removes this shard's residents predicted to have finished by
// now, marking their GPUs dirty for the next probe round. Removal is
// identity-based: each completion event names the resident it was
// scheduled for (by placement serial), so colliding finish instants on
// one GPU can never retire the wrong resident — an index scan for
// "first end <= now" would pick whichever collided resident sits
// earliest in the list.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (sh *onlineShard) retire(now simtime.Time, stats *DispatchStats) {
	for {
		at, ok := sh.completions.PeekTime()
		if !ok || at > now {
			return
		}
		ev, _ := sh.completions.Pop()
		k := ev.Data.(*completionKey)
		gd := k.gpu
		sh.completions.Free(ev)
		for j := range gd.res {
			if gd.res[j].seq == k.seq {
				copy(gd.res[j:], gd.res[j+1:])
				gd.res = gd.res[:len(gd.res)-1]
				gd.agg.RemoveAt(j)
				break
			}
		}
		sh.releaseKey(k)
		stats.Completions++
		if !gd.dirty {
			gd.dirty = true
			//repro:allow:hotpathalloc dirty-set growth is bounded by the shard's GPU count; capacity is retained
			sh.dirtied = append(sh.dirtied, gd)
		}
	}
}

// onlineDispatcher is the admission state the decision loop drives: the
// GPU fleet split into contiguous shards, each owning its range's
// resident sets, completion heap, and telemetry. The decision kernel
// (admit/retire/probe) is the production dispatcher's per-arrival work
// and is held to the hot-path contract; dispatchOne keeps the
// per-dispatch record building outside it.
type onlineDispatcher struct {
	shards []onlineShard
	// base and rem describe the contiguous shard ranges: the first rem
	// shards own base+1 GPUs, the rest base (shardFor inverts this in
	// O(1)).
	base, rem int

	nextSeq uint64 // next resident placement serial, global across shards

	clientCap        int
	allowInterfering bool
	stats            *DispatchStats
	waitedNS         int64 // total queueing delay, sim ns

	// arrivalSeq numbers the arrivals in dispatch order — the key flight
	// records carry and `gpusched explain -seq` queries by. The streamer
	// restores it on resume so a resumed run's trail continues the
	// uninterrupted numbering.
	arrivalSeq int64
	// fl is the decision-provenance recorder, captured once at
	// construction (nil when telemetry is disabled — the hot path then
	// pays one predictable branch per probe and allocates nothing).
	fl *obs.Flight

	// pool fans shard scans over persistent workers when ProbeWorkers
	// asked for parallel probing (nil = serial scanning with cross-shard
	// early exit). scanFn is the prebuilt round closure — built once at
	// construction so the per-round handoff allocates nothing — and the
	// scan* fields are its arguments, written by probeRound before the
	// fork (Gang.Run's channel handoff orders the writes before every
	// worker read).
	pool      *parallel.Gang
	scanFn    func(int)
	scanLoad  interference.Load
	scanFirst bool
	scanSeq   int64
	scanNow   simtime.Time

	// scanBest is the cooperative early-exit for parallel rounds: the
	// lowest shard index holding an admit so far (CAS-min, reset to
	// len(shards) before each fork). Workers abandon shards above it —
	// safe because the merge stops strictly before those slots, and
	// every shard at or below the final winner always completes.
	scanBest atomic.Int32
}

// close releases the dispatcher's worker pool, if any. planOnline and
// the streamer call it on teardown; a dispatcher without a pool has
// nothing to release.
func (d *onlineDispatcher) close() {
	if d.pool != nil {
		d.pool.Close()
	}
}

// newOnlineDispatcher builds the sharded admission state. The shard
// count is clamped to [1, GPUs]; GPU g lives in the shard whose
// contiguous range contains it, so probing shards in index order visits
// GPUs in exactly the flat dispatcher's order.
//
// ProbeWorkers > 1 with at least two shards arms the parallel scan
// path: a persistent Gang (width clamped to the shard count) plus the
// prebuilt round closure. ProbeWorkers <= 1 — the default — keeps the
// serial scan, so small fleets never pay fork/join overhead.
func newOnlineDispatcher(s *Scheduler, stats *DispatchStats) *onlineDispatcher {
	shards := s.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > s.GPUs {
		// Covers the degenerate zero-GPU fleet too: no shards, every
		// probe round finds nothing, and admit reports the arrival
		// unadmittable instead of dividing by a zero shard count.
		shards = s.GPUs
	}
	d := &onlineDispatcher{
		shards:           make([]onlineShard, shards),
		clientCap:        s.Policy.clientCap(s.Device.MaxMPSClients),
		allowInterfering: s.Policy.AllowInterferingPairs,
		stats:            stats,
		fl:               obs.Active().FlightRecorder(),
	}
	if shards > 0 {
		d.base, d.rem = s.GPUs/shards, s.GPUs%shards
	}
	lo := 0
	for si := range d.shards {
		n := d.base
		if si < d.rem {
			n++
		}
		sh := &d.shards[si]
		sh.lo = lo
		sh.gpus = make([]onlineGPU, n)
		for g := range sh.gpus {
			sh.gpus[g].agg = interference.NewAggregate(s.Device)
		}
		sh.waitHist = obs.NewLocalHistogram(queueWaitBoundsMs)
		sh.depthHist = obs.NewLocalHistogram(groupOccupancyBounds)
		sh.serviceHist = obs.NewLocalHistogram(serviceBoundsMs)
		sh.scanGPU = -1
		lo += n
	}
	if workers := s.ProbeWorkers; workers > 1 && shards >= 2 {
		if workers > shards {
			workers = shards
		}
		d.pool = parallel.NewGang(workers)
		d.scanFn = func(si int) {
			d.shards[si].scan(d, si, d.scanLoad, d.scanFirst, d.scanSeq, d.scanNow)
		}
	}
	return d
}

// shardFor returns the shard owning global GPU index g.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (d *onlineDispatcher) shardFor(g int) *onlineShard {
	wide := d.rem * (d.base + 1)
	if g < wide {
		return &d.shards[g/(d.base+1)]
	}
	return &d.shards[d.rem+(g-wide)/d.base]
}

// retire drains every shard's completion heap up to now. Shards retire
// independently: a completion only touches its own GPU's resident set,
// so the cross-shard processing order cannot affect any admission sum.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (d *onlineDispatcher) retire(now simtime.Time) {
	for si := range d.shards {
		d.shards[si].retire(now, d.stats)
	}
}

// nextCompletion returns the earliest predicted completion across all
// shards: the minimum of the per-shard heap minima, exactly the global
// heap minimum of the flat dispatcher.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (d *onlineDispatcher) nextCompletion() (simtime.Time, bool) {
	var best simtime.Time
	found := false
	for si := range d.shards {
		if t, ok := d.shards[si].completions.PeekTime(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// probeRound runs one scan round over the shards and merges the
// verdicts, returning the winning global GPU index or -1.
//
// Serial mode scans shards in index order with cross-shard early exit.
// Parallel mode forks every shard's scan over the pool — speculative
// work past the eventual winner — then discards it in the merge. Both
// modes merge identically: walk the scanned shards in index order,
// fold each shard's probe count into the stats and replay its trail
// into the flight recorder, and stop at the first shard holding an
// admit. The merge order is the serial scan's visit order, so counters
// and trails are byte-identical at any worker count; shards past the
// winner contribute nothing, exactly as if they were never scanned.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (d *onlineDispatcher) probeRound(load interference.Load, first bool, seq int64, now simtime.Time) int {
	scanned := len(d.shards)
	if d.pool != nil {
		d.scanLoad, d.scanFirst, d.scanSeq, d.scanNow = load, first, seq, now
		d.scanBest.Store(int32(len(d.shards)))
		d.pool.Run(len(d.shards), d.scanFn)
	} else {
		for si := range d.shards {
			d.shards[si].scan(d, si, load, first, seq, now)
			if d.shards[si].scanGPU >= 0 {
				scanned = si + 1
				break
			}
		}
	}
	placed := -1
	for si := 0; si < scanned; si++ {
		sh := &d.shards[si]
		d.stats.Probes += sh.scanProbes
		if d.fl != nil {
			for i := range sh.trail {
				d.fl.Record(sh.trail[i])
			}
		}
		if sh.scanGPU >= 0 {
			placed = sh.scanGPU
			break
		}
	}
	return placed
}

// admit runs the wait loop for one arrival: first-fit over GPUs in
// global index order (shards scanned serially or concurrently — the
// merge keeps the outcome identical), waiting on predicted completions
// when no GPU admits. It returns the dispatch instant and target, or
// ok=false when no GPU can ever admit the load. Resident sets are only
// mutated by retirement; the caller commits the chosen placement with
// place.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (d *onlineDispatcher) admit(load interference.Load, arrival simtime.Time, seq int64) (at simtime.Time, gpu int, ok bool) {
	now := arrival
	first := true
	for {
		d.retire(now)
		placed := d.probeRound(load, first, seq, now)
		// Clear every shard's dirty set, including shards after an early
		// exit: the flat dispatcher cleared all marks after each round.
		for si := range d.shards {
			sh := &d.shards[si]
			for _, gd := range sh.dirtied {
				gd.dirty = false
			}
			sh.dirtied = sh.dirtied[:0]
		}
		if placed >= 0 {
			return now, placed, true
		}
		// Wait for the next predicted completion: the cross-shard heap
		// minimum (every remaining resident ends after now).
		next, okNext := d.nextCompletion()
		if !okNext {
			return 0, -1, false
		}
		d.stats.Waits++
		if d.fl != nil {
			// The waited-to instant is the global heap minimum — a decision
			// property, identical at any shard count.
			d.fl.Record(obs.FlightRecord{
				Seq: seq, Kind: obs.FlightWait, AtNS: int64(now),
				GPU: -1, WaitNS: int64(next - now),
			})
		}
		now = next
		first = false
	}
}

// place commits an admitted load: the resident joins GPU g's set and
// fold, and its predicted completion is scheduled on g's shard against
// the resident's placement serial.
//
//repro:hotpath pinned by TestDispatcherAdmitAllocs
func (d *onlineDispatcher) place(g int, load interference.Load, name string, end simtime.Time) {
	sh := d.shardFor(g)
	gd := &sh.gpus[g-sh.lo]
	seq := d.nextSeq
	d.nextSeq++
	//repro:allow:hotpathalloc resident-list growth is bounded by the client cap; capacity is retained
	gd.res = append(gd.res, onlineResident{name: name, end: end, seq: seq})
	gd.agg.Add(load)
	k := sh.acquireKey()
	k.gpu = gd
	k.seq = seq
	sh.completions.Schedule(end, 0, k)
}

// dispatchOne runs one arrival end to end: admit, record, place. The
// returned event's RunningAlongside is carved from names (nil when the
// GPU was empty, preserving the log's JSON shape) and stays valid until
// the arena's owner resets it. Everything name-dependent reads the
// arrival, not the profile — cached profiles carry another arrival's
// name.
func (d *onlineDispatcher) dispatchOne(a *Arrival, wp *WorkflowProfile, names *arena.Slice[string]) (DispatchEvent, error) {
	load := wp.load()
	seq := d.arrivalSeq
	d.arrivalSeq++
	if d.fl != nil {
		d.fl.Record(obs.FlightRecord{
			Seq: seq, Kind: obs.FlightArrival, AtNS: int64(a.At),
			Workflow: a.Workflow.Name, GPU: -1,
		})
	}
	now, placed, ok := d.admit(load, a.At, seq)
	if !ok {
		if d.fl != nil {
			d.fl.Record(obs.FlightRecord{
				Seq: seq, Kind: obs.FlightReject, AtNS: int64(a.At),
				Workflow: a.Workflow.Name, GPU: -1,
			})
		}
		return DispatchEvent{}, fmt.Errorf("core: workflow %s cannot be admitted on any GPU (needs %d MiB)",
			a.Workflow.Name, wp.MaxMemMiB)
	}
	sh := d.shardFor(placed)
	gd := &sh.gpus[placed-sh.lo]
	var alongside []string
	if n := len(gd.res); n > 0 {
		alongside = names.Make(n)
		for j := range gd.res {
			alongside[j] = gd.res[j].name
		}
	}
	end := now.Add(simtime.FromSeconds(wp.TotalDurationS))
	d.place(placed, load, a.Workflow.Name, end)
	waited := now.Sub(a.At)
	d.waitedNS += int64(waited)
	sh.waitHist.Observe(int64(waited / simtime.Millisecond))
	sh.depthHist.Observe(int64(len(alongside) + 1))
	sh.serviceHist.Observe(int64(wp.TotalDurationS * 1000))
	if d.fl != nil {
		d.fl.Record(obs.FlightRecord{
			Seq: seq, Kind: obs.FlightDispatch, AtNS: int64(now),
			Workflow: a.Workflow.Name, GPU: int32(placed),
			Clients: int32(len(alongside) + 1), WaitNS: int64(waited),
		})
	}
	return DispatchEvent{
		At:               now,
		Workflow:         a.Workflow.Name,
		GPU:              placed,
		WaitedS:          waited.Seconds(),
		RunningAlongside: alongside,
	}, nil
}

// mergeObs folds the dispatcher's single-owner telemetry into the
// shared registry: per-shard histograms merge bucket-wise (commutative
// sums, so totals are byte-identical at any shard count) and the
// accumulated counters land once instead of per arrival.
func (d *onlineDispatcher) mergeObs(hub *obs.Hub, dispatched int64) {
	waitHist := hub.Histogram("dispatch_queue_wait_ms", queueWaitBoundsMs)
	occHist := hub.Histogram("dispatch_collocated_clients", groupOccupancyBounds)
	svcHist := hub.Histogram("dispatch_service_ms", serviceBoundsMs)
	for si := range d.shards {
		d.shards[si].waitHist.MergeInto(waitHist)
		d.shards[si].depthHist.MergeInto(occHist)
		d.shards[si].serviceHist.MergeInto(svcHist)
	}
	hub.Counter("dispatch_total").Add(dispatched)
	hub.Counter("dispatch_waited_simns_total").Add(d.waitedNS)
	hub.Counter("dispatch_probe_total").Add(d.stats.Probes)
	hub.Counter("dispatch_wait_events_total").Add(d.stats.Waits)
	hub.Counter("dispatch_completions_total").Add(d.stats.Completions)
}

// dispatchArrivals is the admission loop over all arrivals. Its
// decisions are byte-identical to a full per-arrival rescan (pinned by
// the goldens in testdata/) and to the flat single-shard dispatcher at
// any shard count (pinned by TestShardCountIdentity), but each probe is
// O(1) against the GPU's interference aggregate, retirements come off
// per-shard completion-time min-heaps instead of an every-iteration
// sweep, and wait-loop retries re-probe only GPUs whose resident set
// changed.
func (s *Scheduler) dispatchArrivals(plan *OnlinePlan) error {
	d := newOnlineDispatcher(s, &plan.Stats)
	defer d.close()
	for i := range plan.arrivals {
		ev, err := d.dispatchOne(&plan.arrivals[i], plan.profiles[i], &plan.mem.names)
		if err != nil {
			return err
		}
		plan.at[i] = ev.At
		plan.gpu[i] = ev.GPU
		plan.Dispatches = append(plan.Dispatches, ev)
	}
	d.mergeObs(obs.Active(), int64(len(plan.Dispatches)))
	return nil
}

// ScheduleOnline emulates online operation: PlanOnline's dispatch
// decisions are executed faithfully by the simulator (one engine per GPU,
// clients at their dispatch instants), and compared against an
// arrival-respecting sequential baseline.
//
// Planning uses predicted (profile-derived) durations; execution reflects
// actual contention, so real completions can drift from the plan — as in
// a production scheduler.
func (s *Scheduler) ScheduleOnline(arrivals []Arrival, simCfg gpusim.Config) (*OnlineOutcome, error) {
	hub := obs.Active()
	defer hub.StartWall("scheduler", "ScheduleOnline").End()
	simCfg.Device = s.Device

	plan, err := s.planOnline(arrivals)
	if err != nil {
		return nil, err
	}
	out := &OnlineOutcome{Dispatches: plan.Dispatches}

	// Execute the plan: one engine per GPU, clients at dispatch times.
	sharing, err := s.runOnlinePlacement(plan.arrivals, plan.at, plan.gpu, simCfg)
	if err != nil {
		return nil, err
	}
	out.Sharing = sharing

	// Sequential baseline: same arrivals, one workflow at a time per
	// GPU, earliest-available GPU, FIFO.
	seq, err := s.runOnlineSequential(plan.arrivals, plan.profiles, simCfg)
	if err != nil {
		return nil, err
	}
	out.Sequential = seq

	rel, err := metrics.Compare(out.Sequential, out.Sharing)
	if err != nil {
		return nil, err
	}
	out.Relative = rel

	// Guard the division: planOnline rejects empty streams, but a zero
	// dispatch count must never turn the wait stats into NaN.
	if len(out.Dispatches) > 0 {
		for _, d := range out.Dispatches {
			out.MeanWaitS += d.WaitedS
			if d.WaitedS > out.MaxWaitS {
				out.MaxWaitS = d.WaitedS
			}
		}
		out.MeanWaitS /= float64(len(out.Dispatches))
	}
	return out, nil
}

// runOnlinePlacement executes the dispatch plan.
func (s *Scheduler) runOnlinePlacement(arrivals []Arrival, at []simtime.Time, gpuOf []int, simCfg gpusim.Config) (metrics.RunSummary, error) {
	engines := make([]*gpusim.Engine, s.GPUs)
	used := make([]bool, s.GPUs)
	for g := range engines {
		cfg := simCfg
		cfg.Seed = simCfg.Seed + uint64(g)*104729
		eng, err := gpusim.New(cfg)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		engines[g] = eng
	}
	for i, a := range arrivals {
		tasks, err := a.Workflow.BuildSpecs(s.Device)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		g := gpuOf[i]
		used[g] = true
		if err := engines[g].AddClient(gpusim.Client{
			ID:      fmt.Sprintf("online-%02d-%s", i, a.Workflow.Name),
			Arrival: at[i],
			Tasks:   tasks,
		}); err != nil {
			return metrics.RunSummary{}, err
		}
	}
	var makespans []float64
	var energy, cappedS float64
	tasks := 0
	for g, eng := range engines {
		if !used[g] {
			makespans = append(makespans, 0)
			continue
		}
		res, err := eng.Run()
		if err != nil {
			return metrics.RunSummary{}, err
		}
		makespans = append(makespans, res.Makespan.Seconds())
		energy += res.EnergyJ
		cappedS += res.CappedTime.Seconds()
		tasks += res.TasksCompleted()
	}
	return onlinePoolSummary(s.Device, makespans, energy, cappedS, tasks), nil
}

// runOnlineSequential executes the arrival-respecting no-collocation
// baseline: FIFO, one workflow at a time per GPU.
func (s *Scheduler) runOnlineSequential(arrivals []Arrival, profiles []*WorkflowProfile, simCfg gpusim.Config) (metrics.RunSummary, error) {
	free := make([]simtime.Time, s.GPUs)
	engines := make([]*gpusim.Engine, s.GPUs)
	used := make([]bool, s.GPUs)
	for g := range engines {
		cfg := simCfg
		cfg.Seed = simCfg.Seed + uint64(g)*7877 + 1
		eng, err := gpusim.New(cfg)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		engines[g] = eng
	}
	for i, a := range arrivals {
		best := 0
		for g := 1; g < s.GPUs; g++ {
			if free[g] < free[best] {
				best = g
			}
		}
		start := simtime.Max(a.At, free[best])
		free[best] = start.Add(simtime.FromSeconds(profiles[i].TotalDurationS))
		tasks, err := a.Workflow.BuildSpecs(s.Device)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		used[best] = true
		if err := engines[best].AddClient(gpusim.Client{
			ID:      fmt.Sprintf("seq-%02d-%s", i, a.Workflow.Name),
			Arrival: start,
			Tasks:   tasks,
		}); err != nil {
			return metrics.RunSummary{}, err
		}
	}
	var makespans []float64
	var energy, cappedS float64
	tasks := 0
	for g, eng := range engines {
		if !used[g] {
			makespans = append(makespans, 0)
			continue
		}
		res, err := eng.Run()
		if err != nil {
			return metrics.RunSummary{}, err
		}
		makespans = append(makespans, res.Makespan.Seconds())
		energy += res.EnergyJ
		cappedS += res.CappedTime.Seconds()
		tasks += res.TasksCompleted()
	}
	return onlinePoolSummary(s.Device, makespans, energy, cappedS, tasks), nil
}

// onlinePoolSummary mirrors poolSummary for engine-level makespans.
func onlinePoolSummary(device gpu.DeviceSpec, makespans []float64, energyJ, cappedS float64, tasks int) metrics.RunSummary {
	var makespan float64
	for _, m := range makespans {
		if m > makespan {
			makespan = m
		}
	}
	for _, m := range makespans {
		energyJ += device.IdlePowerW * (makespan - m)
	}
	capped, avgPower := 0.0, 0.0
	if makespan > 0 {
		capped = cappedS / (makespan * float64(len(makespans)))
		avgPower = energyJ / makespan / float64(len(makespans))
	}
	return metrics.RunSummary{
		MakespanS:      makespan,
		EnergyJ:        energyJ,
		Tasks:          tasks,
		CappedFraction: capped,
		AvgPowerW:      avgPower,
	}
}
