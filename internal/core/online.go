package core

import (
	"fmt"
	"sort"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/interference"
	"gpushare/internal/metrics"
	"gpushare/internal/obs"
	"gpushare/internal/simtime"
	"gpushare/internal/workflow"
)

// Online scheduling extends the paper's offline queue model (§IV-B
// assumes "an entire queue of workflow tasks ... is known before workflow
// execution") to workflows arriving over time — the direction §VI's
// "comprehensive scheduling framework" points at. Dispatch decisions use
// the same interference rules, applied incrementally against what is
// already running on each GPU.

// Arrival is one workflow submission.
type Arrival struct {
	// At is the submission instant.
	At simtime.Time
	// Workflow is the submitted workflow.
	Workflow workflow.Workflow
}

// DispatchEvent records one scheduling decision for the event log.
type DispatchEvent struct {
	// At is the dispatch instant.
	At simtime.Time
	// Workflow is the dispatched workflow's name.
	Workflow string
	// GPU is the target device index.
	GPU int
	// WaitedS is the queueing delay in seconds.
	WaitedS float64
	// RunningAlongside names the workflows predicted to still be running
	// on that GPU at dispatch time.
	RunningAlongside []string
}

// OnlineOutcome is the result of an online-scheduling emulation.
type OnlineOutcome struct {
	// Dispatches is the decision log in dispatch order.
	Dispatches []DispatchEvent
	// Sharing and Sequential summarize the simulated executions; both
	// respect the arrival times.
	Sharing    metrics.RunSummary
	Sequential metrics.RunSummary
	// Relative holds the paper's metrics for sharing vs sequential.
	Relative metrics.Relative
	// MeanWaitS and MaxWaitS summarize queueing delay under sharing.
	MeanWaitS float64
	MaxWaitS  float64
}

// onlineResident tracks a dispatched workflow during planning.
type onlineResident struct {
	wp  *WorkflowProfile
	end simtime.Time
}

// queueWaitBoundsMs bucket online queueing delay in simulated
// milliseconds (the paper's workflows run seconds to minutes).
var queueWaitBoundsMs = []int64{0, 10, 100, 1_000, 10_000, 60_000, 600_000}

// ScheduleOnline emulates online operation: workflows are dispatched at or
// after their arrival, to the first GPU where the paper's rules admit them
// alongside the residents; otherwise they wait for a predicted completion.
// The resulting dispatch times are then executed faithfully by the
// simulator (one engine per GPU, clients at their dispatch instants), and
// compared against an arrival-respecting sequential baseline.
//
// Planning uses predicted (profile-derived) durations; execution reflects
// actual contention, so real completions can drift from the plan — as in
// a production scheduler.
func (s *Scheduler) ScheduleOnline(arrivals []Arrival, simCfg gpusim.Config) (*OnlineOutcome, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("core: no arrivals")
	}
	hub := obs.Active()
	defer hub.StartWall("scheduler", "ScheduleOnline").End()
	simCfg.Device = s.Device

	sorted := make([]Arrival, len(arrivals))
	copy(sorted, arrivals)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	profiles := make([]*WorkflowProfile, len(sorted))
	for i, a := range sorted {
		wp, err := BuildWorkflowProfile(s.Profiles, a.Workflow)
		if err != nil {
			return nil, err
		}
		profiles[i] = wp
	}

	cap := s.Policy.clientCap(s.Device.MaxMPSClients)
	residents := make([][]onlineResident, s.GPUs)
	out := &OnlineOutcome{}
	dispatchAt := make([]simtime.Time, len(sorted))
	dispatchGPU := make([]int, len(sorted))

	for i, a := range sorted {
		wp := profiles[i]
		now := a.At
		for {
			// Drop residents predicted to have finished by now.
			for g := range residents {
				live := residents[g][:0]
				for _, r := range residents[g] {
					if r.end > now {
						live = append(live, r)
					}
				}
				residents[g] = live
			}
			// First GPU whose residents admit the workflow.
			placed := -1
			for g := range residents {
				if len(residents[g])+1 > cap {
					continue
				}
				group := make([]*WorkflowProfile, 0, len(residents[g])+1)
				for _, r := range residents[g] {
					group = append(group, r.wp)
				}
				est := s.estimate(append(group, wp))
				admit := !est.Interferes
				if s.Policy.AllowInterferingPairs && !est.Has(interference.Capacity) {
					admit = true
				}
				if admit {
					placed = g
					break
				}
			}
			if placed >= 0 {
				var alongside []string
				for _, r := range residents[placed] {
					alongside = append(alongside, r.wp.Workflow.Name)
				}
				residents[placed] = append(residents[placed], onlineResident{
					wp:  wp,
					end: now.Add(simtime.FromSeconds(wp.TotalDurationS)),
				})
				dispatchAt[i] = now
				dispatchGPU[i] = placed
				out.Dispatches = append(out.Dispatches, DispatchEvent{
					At:               now,
					Workflow:         wp.Workflow.Name,
					GPU:              placed,
					WaitedS:          now.Sub(a.At).Seconds(),
					RunningAlongside: alongside,
				})
				// Dispatch telemetry: the decision loop is serial and
				// queue waits are sim-time durations, so all of this is
				// deterministic.
				hub.Counter("dispatch_total").Inc()
				hub.Counter("dispatch_waited_simns_total").Add(int64(now.Sub(a.At)))
				hub.Histogram("dispatch_queue_wait_ms", queueWaitBoundsMs).
					Observe(int64(now.Sub(a.At) / simtime.Millisecond))
				hub.Histogram("dispatch_collocated_clients", groupOccupancyBounds).
					Observe(int64(len(alongside) + 1))
				break
			}
			// Wait for the next predicted completion.
			next := simtime.Forever
			for g := range residents {
				for _, r := range residents[g] {
					if r.end > now && r.end < next {
						next = r.end
					}
				}
			}
			if next == simtime.Forever {
				return nil, fmt.Errorf("core: workflow %s cannot be admitted on any GPU (needs %d MiB)",
					wp.Workflow.Name, wp.MaxMemMiB)
			}
			now = next
		}
	}

	// Execute the plan: one engine per GPU, clients at dispatch times.
	sharing, err := s.runOnlinePlacement(sorted, dispatchAt, dispatchGPU, simCfg)
	if err != nil {
		return nil, err
	}
	out.Sharing = sharing

	// Sequential baseline: same arrivals, one workflow at a time per
	// GPU, earliest-available GPU, FIFO.
	seq, err := s.runOnlineSequential(sorted, profiles, simCfg)
	if err != nil {
		return nil, err
	}
	out.Sequential = seq

	rel, err := metrics.Compare(out.Sequential, out.Sharing)
	if err != nil {
		return nil, err
	}
	out.Relative = rel

	for _, d := range out.Dispatches {
		out.MeanWaitS += d.WaitedS
		if d.WaitedS > out.MaxWaitS {
			out.MaxWaitS = d.WaitedS
		}
	}
	out.MeanWaitS /= float64(len(out.Dispatches))
	return out, nil
}

// runOnlinePlacement executes the dispatch plan.
func (s *Scheduler) runOnlinePlacement(arrivals []Arrival, at []simtime.Time, gpuOf []int, simCfg gpusim.Config) (metrics.RunSummary, error) {
	engines := make([]*gpusim.Engine, s.GPUs)
	used := make([]bool, s.GPUs)
	for g := range engines {
		cfg := simCfg
		cfg.Seed = simCfg.Seed + uint64(g)*104729
		eng, err := gpusim.New(cfg)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		engines[g] = eng
	}
	for i, a := range arrivals {
		tasks, err := a.Workflow.BuildSpecs(s.Device)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		g := gpuOf[i]
		used[g] = true
		if err := engines[g].AddClient(gpusim.Client{
			ID:      fmt.Sprintf("online-%02d-%s", i, a.Workflow.Name),
			Arrival: at[i],
			Tasks:   tasks,
		}); err != nil {
			return metrics.RunSummary{}, err
		}
	}
	var makespans []float64
	var energy, cappedS float64
	tasks := 0
	for g, eng := range engines {
		if !used[g] {
			makespans = append(makespans, 0)
			continue
		}
		res, err := eng.Run()
		if err != nil {
			return metrics.RunSummary{}, err
		}
		makespans = append(makespans, res.Makespan.Seconds())
		energy += res.EnergyJ
		cappedS += res.CappedTime.Seconds()
		tasks += res.TasksCompleted()
	}
	return onlinePoolSummary(s.Device, makespans, energy, cappedS, tasks), nil
}

// runOnlineSequential executes the arrival-respecting no-collocation
// baseline: FIFO, one workflow at a time per GPU.
func (s *Scheduler) runOnlineSequential(arrivals []Arrival, profiles []*WorkflowProfile, simCfg gpusim.Config) (metrics.RunSummary, error) {
	free := make([]simtime.Time, s.GPUs)
	engines := make([]*gpusim.Engine, s.GPUs)
	used := make([]bool, s.GPUs)
	for g := range engines {
		cfg := simCfg
		cfg.Seed = simCfg.Seed + uint64(g)*7877 + 1
		eng, err := gpusim.New(cfg)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		engines[g] = eng
	}
	for i, a := range arrivals {
		best := 0
		for g := 1; g < s.GPUs; g++ {
			if free[g] < free[best] {
				best = g
			}
		}
		start := simtime.Max(a.At, free[best])
		free[best] = start.Add(simtime.FromSeconds(profiles[i].TotalDurationS))
		tasks, err := a.Workflow.BuildSpecs(s.Device)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		used[best] = true
		if err := engines[best].AddClient(gpusim.Client{
			ID:      fmt.Sprintf("seq-%02d-%s", i, a.Workflow.Name),
			Arrival: start,
			Tasks:   tasks,
		}); err != nil {
			return metrics.RunSummary{}, err
		}
	}
	var makespans []float64
	var energy, cappedS float64
	tasks := 0
	for g, eng := range engines {
		if !used[g] {
			makespans = append(makespans, 0)
			continue
		}
		res, err := eng.Run()
		if err != nil {
			return metrics.RunSummary{}, err
		}
		makespans = append(makespans, res.Makespan.Seconds())
		energy += res.EnergyJ
		cappedS += res.CappedTime.Seconds()
		tasks += res.TasksCompleted()
	}
	return onlinePoolSummary(s.Device, makespans, energy, cappedS, tasks), nil
}

// onlinePoolSummary mirrors poolSummary for engine-level makespans.
func onlinePoolSummary(device gpu.DeviceSpec, makespans []float64, energyJ, cappedS float64, tasks int) metrics.RunSummary {
	var makespan float64
	for _, m := range makespans {
		if m > makespan {
			makespan = m
		}
	}
	for _, m := range makespans {
		energyJ += device.IdlePowerW * (makespan - m)
	}
	capped, avgPower := 0.0, 0.0
	if makespan > 0 {
		capped = cappedS / (makespan * float64(len(makespans)))
		avgPower = energyJ / makespan / float64(len(makespans))
	}
	return metrics.RunSummary{
		MakespanS:      makespan,
		EnergyJ:        energyJ,
		Tasks:          tasks,
		CappedFraction: capped,
		AvgPowerW:      avgPower,
	}
}
