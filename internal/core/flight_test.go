package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"gpushare/internal/obs"
)

// flightBytes marshals a hub's flight snapshot for byte-level diffs.
func flightBytes(t *testing.T, h *obs.Hub) []byte {
	t.Helper()
	data, err := json.Marshal(h.Dump().Flight)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFlightShardCountIdentity is the provenance half of the shard
// identity pin: the decision trail — every arrival, probe, wait, and
// dispatch record — is byte-identical at any shard count, because
// records carry only shard-count-invariant decision properties (global
// GPU index, global wait instants, never a shard id, never
// retirements whose cross-shard order differs).
func TestFlightShardCountIdentity(t *testing.T) {
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{Workflows: 600, TargetGPUs: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prev := obs.Active()
	defer obs.SetActive(prev)

	run := func(shards int) []byte {
		hub := obs.NewHub(nil)
		obs.SetActive(hub)
		s := fleetScheduler(t, store, 8, shards)
		if _, err := s.PlanOnline(arrivals); err != nil {
			t.Fatal(err)
		}
		return flightBytes(t, hub)
	}
	ref := run(1)
	var refSnap obs.FlightSnapshot
	if err := json.Unmarshal(ref, &refSnap); err != nil {
		t.Fatal(err)
	}
	if refSnap.Total == 0 {
		t.Fatal("flat run recorded no flight records")
	}
	for _, shards := range []int{2, 5, 8} {
		if got := run(shards); !bytes.Equal(got, ref) {
			t.Fatalf("shards=%d: flight snapshot diverged from flat dispatcher", shards)
		}
	}
}

// TestStreamFlightResume extends the snapshot/resume identity to the
// flight ring: a run interrupted mid-stream and resumed on a fresh
// process (fresh hub, state through JSON) finishes with the
// uninterrupted run's flight snapshot and digest, byte for byte.
func TestStreamFlightResume(t *testing.T) {
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{Workflows: 500, TargetGPUs: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	prev := obs.Active()
	defer obs.SetActive(prev)

	// Uninterrupted reference run.
	refHub := obs.NewHub(nil)
	obs.SetActive(refHub)
	s := fleetScheduler(t, store, 8, 4)
	ref, err := s.NewStreamer(StreamConfig{RingCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		if _, err := ref.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	refDigest, err := ref.Finish()
	if err != nil {
		t.Fatal(err)
	}
	refFlight := flightBytes(t, refHub)

	// Interrupted run: ingest a prefix, snapshot (carrying the flight
	// ring), resume under a fresh hub.
	cut := len(arrivals)/2 + 3
	hubA := obs.NewHub(nil)
	obs.SetActive(hubA)
	sA := fleetScheduler(t, store, 8, 4)
	first, err := sA.NewStreamer(StreamConfig{RingCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals[:cut] {
		if _, err := first.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	state, err := first.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if state.Flight == nil || state.Flight.Total == 0 {
		t.Fatal("stream state did not capture the flight ring")
	}
	blob, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	var restored StreamState
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}

	hubB := obs.NewHub(nil)
	obs.SetActive(hubB)
	sB := fleetScheduler(t, store, 8, 4)
	second, err := sB.RestoreStreamer(StreamConfig{RingCapacity: 32}, &restored)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals[cut:] {
		if _, err := second.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	digest, err := second.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if digest != refDigest {
		t.Fatalf("resumed digest %s, want uninterrupted %s", digest, refDigest)
	}
	if got := flightBytes(t, hubB); !bytes.Equal(got, refFlight) {
		t.Fatal("resumed flight snapshot diverged from uninterrupted run")
	}
}

// TestStreamFlightDisabled pins the nil-hub path: with telemetry off,
// streaming runs record nothing and stream states carry no flight
// section — and restoring a state that has one under disabled telemetry
// is silently fine.
func TestStreamFlightDisabled(t *testing.T) {
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{Workflows: 60, TargetGPUs: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	prev := obs.SetActive(nil)
	defer obs.SetActive(prev)

	s := fleetScheduler(t, store, 4, 2)
	st, err := s.NewStreamer(StreamConfig{RingCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals[:30] {
		if _, err := st.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	state, err := st.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if state.Flight != nil {
		t.Fatal("disabled-telemetry stream state carries a flight section")
	}

	// A state saved with telemetry enabled restores under a disabled hub.
	state.Flight = &obs.FlightSnapshot{Total: 3, Records: []obs.FlightRecord{{Seq: 0, Kind: obs.FlightArrival, GPU: -1}}}
	s2 := fleetScheduler(t, store, 4, 2)
	resumed, err := s2.RestoreStreamer(StreamConfig{RingCapacity: 16}, state)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals[30:] {
		if _, err := resumed.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := resumed.Finish(); err != nil {
		t.Fatal(err)
	}
}
