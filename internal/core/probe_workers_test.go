package core

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"gpushare/internal/interference"
	"gpushare/internal/obs"
	"gpushare/internal/simtime"
)

// TestProbeWorkerIdentity is the worker-count half of the identity
// contract (DESIGN.md §16): dispatch decisions, the dispatch-log
// digest, admission stats (including the Probes counter, which the
// parallel merge must replay with serial early-exit semantics), the
// flight trail, and the metrics snapshot are byte-identical at any
// ProbeWorkers count.
func TestProbeWorkerIdentity(t *testing.T) {
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{Workflows: 2000, TargetGPUs: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	prev := obs.Active()
	defer obs.SetActive(prev)

	type result struct {
		dispatches []DispatchEvent
		digest     string
		stats      DispatchStats
		flight     []byte
		metrics    []byte
	}
	run := func(workers int) result {
		hub := obs.NewHub(nil)
		obs.SetActive(hub)
		s := fleetScheduler(t, store, 16, 8)
		s.ProbeWorkers = workers
		plan, err := s.PlanOnline(arrivals)
		if err != nil {
			t.Fatal(err)
		}
		_, digest := digestDispatches(t, plan.Dispatches)
		var prom bytes.Buffer
		if err := hub.Metrics.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		return result{
			dispatches: plan.Dispatches,
			digest:     digest,
			stats:      plan.Stats,
			flight:     flightBytes(t, hub),
			metrics:    prom.Bytes(),
		}
	}

	ref := run(1)
	if ref.stats.Waits == 0 {
		t.Fatal("fleet never exercised the wait loop; the identity check would be vacuous")
	}
	for _, workers := range []int{2, 4, 8, runtime.NumCPU()} {
		got := run(workers)
		if !reflect.DeepEqual(got.dispatches, ref.dispatches) {
			t.Fatalf("workers=%d: dispatch decisions diverged from serial scan", workers)
		}
		if got.digest != ref.digest {
			t.Fatalf("workers=%d: dispatch digest %s, serial %s", workers, got.digest, ref.digest)
		}
		if got.stats != ref.stats {
			t.Fatalf("workers=%d: stats %+v diverged from serial %+v", workers, got.stats, ref.stats)
		}
		if !bytes.Equal(got.flight, ref.flight) {
			t.Fatalf("workers=%d: flight trail diverged from serial scan", workers)
		}
		if !bytes.Equal(got.metrics, ref.metrics) {
			t.Fatalf("workers=%d: metrics snapshot diverged from serial scan", workers)
		}
	}
}

// TestStreamProbeWorkerIdentity extends the pin to the streaming path:
// a parallel-probing streamer's digest equals the serial plan's digest
// over the same arrivals.
func TestStreamProbeWorkerIdentity(t *testing.T) {
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{Workflows: 1500, TargetGPUs: 16, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	serial := fleetScheduler(t, store, 16, 8)
	plan, err := serial.PlanOnline(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	_, want := digestDispatches(t, plan.Dispatches)

	par := fleetScheduler(t, store, 16, 8)
	par.ProbeWorkers = 4
	st, err := par.NewStreamer(StreamConfig{RingCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		if _, err := st.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("parallel stream digest %s, serial plan digest %s", got, want)
	}
}

// TestDirtyLaterShardBeforeEarlierAdmit is the dedicated edge case for
// the wait-loop dirty-set protocol: one wait round retires residents in
// two shards, the earlier shard admits (ending the round before the
// later shard's dirty GPU is ever probed), and every shard's dirty mark
// is cleared. The cleared mark must not hide the later shard's freed
// GPU from the next arrival — fresh arrivals scan every GPU (first
// true), so the dirty set only ever narrows retry rounds of the same
// wait loop. The decision sequence and the Probes counter must be
// identical to the flat single-shard dispatcher, serial or parallel:
// the speculative parallel scan of the later shard is discarded by the
// merge, counters included.
func TestDirtyLaterShardBeforeEarlierAdmit(t *testing.T) {
	device := a100x()
	load := interference.Load{SMPct: 60, BWPct: 10, MemMiB: 1024}
	sec := simtime.FromSeconds
	at := func(s float64) simtime.Time { return simtime.Zero.Add(sec(s)) }

	type placement struct {
		gpu int
		at  simtime.Time
	}
	run := func(shards, workers int) ([]placement, DispatchStats) {
		var stats DispatchStats
		d := testDispatcherWorkers(device, 4, shards, workers, &stats)
		defer d.close()
		// Fill all four GPUs; GPU 0 (first shard) and GPU 3 (last shard)
		// both free up at t=10s, the others much later.
		ends := []simtime.Time{at(10), at(100), at(100), at(10)}
		for g, end := range ends {
			d.place(g, load, "filler", end)
		}
		var got []placement
		seq := int64(0)
		admit := func(at simtime.Time) {
			t.Helper()
			when, g, ok := d.admit(load, at, seq)
			if !ok {
				t.Fatal("admit failed: a completion always frees capacity")
			}
			seq++
			d.place(g, load, "w", when.Add(sec(1000)))
			got = append(got, placement{gpu: g, at: when})
		}
		// Arrival A at t=0: every GPU rejects, the wait round at t=10
		// retires GPU 0 and GPU 3 (dirtying both shards), and GPU 0 admits
		// before GPU 3 is probed.
		admit(simtime.Zero)
		// Arrival B right after: GPU 3 is free but its dirty mark was
		// cleared by A's round — the full first-true scan must find it.
		admit(at(11))
		return got, stats
	}

	wantPlacements := []placement{{gpu: 0, at: at(10)}, {gpu: 3, at: at(11)}}
	flat, flatStats := run(1, 1)
	if !reflect.DeepEqual(flat, wantPlacements) {
		t.Fatalf("flat dispatcher placed %+v, want %+v", flat, wantPlacements)
	}
	for _, cfg := range []struct{ shards, workers int }{{2, 1}, {4, 1}, {2, 2}, {4, 4}} {
		got, stats := run(cfg.shards, cfg.workers)
		if !reflect.DeepEqual(got, flat) {
			t.Fatalf("shards=%d workers=%d: placements %+v diverged from flat %+v",
				cfg.shards, cfg.workers, got, flat)
		}
		if stats != flatStats {
			t.Fatalf("shards=%d workers=%d: stats %+v diverged from flat %+v — the merge must discard speculative probe counts",
				cfg.shards, cfg.workers, stats, flatStats)
		}
	}
}

// TestDispatcherAdmitAllocsParallel extends the steady-state
// zero-allocation pin to the parallel scan path: the Gang handoff, the
// buffered per-shard scans, and the serial merge allocate nothing per
// arrival once warm — no per-arrival goroutine spawns.
func TestDispatcherAdmitAllocsParallel(t *testing.T) {
	device := a100x()
	var stats DispatchStats
	d := testDispatcherWorkers(device, 8, 4, 4, &stats)
	defer d.close()
	if d.pool == nil {
		t.Fatal("parallel pool not armed")
	}
	load := interference.Load{SMPct: 30, BWPct: 20, MemMiB: 1024}
	hold := simtime.FromSeconds(100)
	now := simtime.Zero
	seq := int64(0)
	place := func() {
		at, g, ok := d.admit(load, now, seq)
		if !ok {
			t.Fatal("admit failed: load should always fit eventually")
		}
		seq++
		d.place(g, load, "w", at.Add(hold))
		now = now.Add(simtime.FromSeconds(1))
	}
	for i := 0; i < 128; i++ { // warm freelists, heaps, trail capacity, worker stacks
		place()
	}
	allocs := testing.AllocsPerRun(200, func() { place() })
	if allocs != 0 {
		t.Fatalf("parallel admit+place allocated %.1f objects per arrival, want 0", allocs)
	}
	if stats.Waits == 0 || stats.Completions == 0 {
		t.Fatalf("pin never exercised the wait loop (waits=%d completions=%d)", stats.Waits, stats.Completions)
	}
}

// TestDispatcherAdmitAllocsParallelFlightEnabled adds the telemetry-on
// variant: buffered trails replayed into the flight ring, still zero
// allocations per arrival.
func TestDispatcherAdmitAllocsParallelFlightEnabled(t *testing.T) {
	prev := obs.SetActive(obs.NewHub(nil))
	defer obs.SetActive(prev)

	device := a100x()
	var stats DispatchStats
	d := testDispatcherWorkers(device, 8, 4, 4, &stats)
	defer d.close()
	if d.fl == nil {
		t.Fatal("dispatcher did not capture the active flight recorder")
	}
	load := interference.Load{SMPct: 30, BWPct: 20, MemMiB: 1024}
	hold := simtime.FromSeconds(100)
	now := simtime.Zero
	seq := int64(0)
	place := func() {
		at, g, ok := d.admit(load, now, seq)
		if !ok {
			t.Fatal("admit failed: load should always fit eventually")
		}
		seq++
		d.place(g, load, "w", at.Add(hold))
		now = now.Add(simtime.FromSeconds(1))
	}
	for i := 0; i < 128; i++ {
		place()
	}
	allocs := testing.AllocsPerRun(200, func() { place() })
	if allocs != 0 {
		t.Fatalf("parallel admit+place with flight recording allocated %.1f objects per arrival, want 0", allocs)
	}
	if d.fl.Snapshot().Total == 0 {
		t.Fatal("pin never recorded a flight record")
	}
}
