package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gpushare/internal/gpusim"
	"gpushare/internal/simtime"
	"gpushare/internal/workflow"
	"gpushare/internal/xrand"
)

// Golden pins for the scheduling decision path. The files under
// testdata/ were generated from the pre-aggregate implementation (the
// O(n²·k) rescan dispatcher); the incremental rewrite must reproduce
// them byte for byte — the paper's rules are additive, so the aggregate
// path is exactly as strict as full recomputation when the float
// operation order is preserved (DESIGN.md §11).
//
// Regenerate (only when intentionally changing decision semantics) with:
//
//	GOLDEN_UPDATE=1 go test -run TestGolden ./internal/core

// goldenGroup is one collocation group, flattened for JSON.
type goldenGroup struct {
	Members    []string  `json:"members"`
	Partitions []float64 `json:"partitions"`
	SMPct      float64   `json:"sm_pct"`
	BWPct      float64   `json:"bw_pct"`
	MemMiB     int64     `json:"mem_mib"`
	Types      []string  `json:"types,omitempty"`
	Severity   float64   `json:"severity"`
}

// goldenPlanCase is one BuildPlan scenario.
type goldenPlanCase struct {
	Name   string          `json:"name"`
	PerGPU [][]goldenGroup `json:"per_gpu"`
}

// goldenDispatchCase is one PlanOnline scenario. Suite cases embed the
// full log; fleet cases (thousands of dispatches) pin a SHA-256 over the
// marshalled log plus the dispatch count, keeping testdata reviewable.
type goldenDispatchCase struct {
	Name       string          `json:"name"`
	Dispatches []DispatchEvent `json:"dispatches,omitempty"`
	Count      int             `json:"count,omitempty"`
	SHA256     string          `json:"sha256,omitempty"`
}

func digestDispatches(t *testing.T, dispatches []DispatchEvent) (int, string) {
	t.Helper()
	data, err := json.Marshal(dispatches)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return len(dispatches), hex.EncodeToString(sum[:])
}

func flattenPlan(p *Plan) [][]goldenGroup {
	out := make([][]goldenGroup, len(p.PerGPU))
	for g, waves := range p.PerGPU {
		out[g] = []goldenGroup{}
		for _, grp := range waves {
			types := make([]string, len(grp.Estimate.Types))
			for i, t := range grp.Estimate.Types {
				types[i] = string(t)
			}
			out[g] = append(out[g], goldenGroup{
				Members:    grp.Names(),
				Partitions: grp.Partitions,
				SMPct:      grp.Estimate.CombinedSMUtilPct,
				BWPct:      grp.Estimate.CombinedBWUtilPct,
				MemMiB:     grp.Estimate.CombinedMaxMemMiB,
				Types:      types,
				Severity:   grp.Estimate.Severity,
			})
		}
	}
	return out
}

// mixedArrivals builds a deterministic suite-benchmark arrival stream in
// the style of the ext-online experiment.
func mixedArrivals(seed uint64, count int) []Arrival {
	mix := []struct {
		bench, size string
		iters       int
	}{
		{"AthenaPK", "4x", 2},
		{"Cholla-Gravity", "1x", 20},
		{"Kripke", "4x", 1},
		{"LAMMPS", "1x", 15},
		{"Cholla-MHD", "1x", 2},
		{"Kripke", "1x", 20},
		{"AthenaPK", "1x", 30},
	}
	rng := xrand.New(seed)
	arrivals := make([]Arrival, 0, count)
	now := simtime.Zero
	for i := 0; i < count; i++ {
		m := mix[rng.Intn(len(mix))]
		arrivals = append(arrivals, Arrival{
			At: now,
			Workflow: workflow.Workflow{
				Name: fmt.Sprintf("job-%03d-%s", i, m.bench),
				Tasks: []workflow.Task{
					{Benchmark: m.bench, Size: m.size, Iterations: m.iters},
				},
			},
		})
		now = now.Add(simtime.FromSeconds(5 + rng.Float64()*40))
	}
	return arrivals
}

// goldenCompare marshals got, then diffs or rewrites the golden file.
func goldenCompare(t *testing.T, file string, got any) {
	t.Helper()
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", file)
	if os.Getenv("GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with GOLDEN_UPDATE=1 to create): %v", path, err)
	}
	if !bytes.Equal(want, data) {
		t.Fatalf("%s diverged from the pre-rewrite decision path:\n--- want\n%s\n--- got\n%s",
			path, want, data)
	}
}

// TestGoldenPlans pins BuildPlan output (grouping, placement, partitions,
// estimates) across policies.
func TestGoldenPlans(t *testing.T) {
	store := suiteStore(t)
	mixed := []workflow.Workflow{
		wfOne("athena-a", "AthenaPK", "4x", 2),
		wfOne("athena-b", "AthenaPK", "1x", 6),
		wfOne("gravity", "Cholla-Gravity", "1x", 8),
		wfOne("kripke-a", "Kripke", "4x", 1),
		wfOne("kripke-b", "Kripke", "1x", 9),
		wfOne("lammps-a", "LAMMPS", "4x", 1),
		wfOne("lammps-b", "LAMMPS", "1x", 4),
		wfOne("mhd", "Cholla-MHD", "1x", 3),
		wfOne("gw", "BerkeleyGW", "1x", 5),
		wfOne("warpx", "WarpX", "1x", 1),
		wfOne("athena-c", "AthenaPK", "4x", 1),
		wfOne("kripke-c", "Kripke", "4x", 2),
	}
	rightsized := EnergyPolicy()
	rightsized.RightSizePartitions = true
	opposing := EnergyPolicy()
	opposing.PairOpposingPower = true
	interfering := EnergyPolicy()
	interfering.AllowInterferingPairs = true

	cases := []struct {
		name   string
		gpus   int
		policy Policy
	}{
		{"energy-1gpu", 1, EnergyPolicy()},
		{"energy-4gpu", 4, EnergyPolicy()},
		{"throughput-2gpu", 2, ThroughputPolicy()},
		{"rightsize-2gpu", 2, rightsized},
		{"opposing-power-1gpu", 1, opposing},
		{"allow-interfering-2gpu", 2, interfering},
	}
	var got []goldenPlanCase
	for _, c := range cases {
		s, err := NewScheduler(a100x(), c.gpus, store, c.policy)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := s.BuildPlan(queueOf(t, mixed...))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, goldenPlanCase{Name: c.name, PerGPU: flattenPlan(plan)})
	}
	goldenCompare(t, "golden_plans.json", got)
}

// TestGoldenDispatchLogs pins the online dispatcher's decision log:
// suite-benchmark streams across pool sizes and policies, plus synthetic
// fleet streams large enough to exercise the wait loop heavily.
func TestGoldenDispatchLogs(t *testing.T) {
	store := suiteStore(t)
	interfering := EnergyPolicy()
	interfering.AllowInterferingPairs = true

	var got []goldenDispatchCase
	suiteCases := []struct {
		name   string
		gpus   int
		policy Policy
		seed   uint64
		count  int
	}{
		{"energy-1gpu", 1, EnergyPolicy(), 11, 40},
		{"energy-4gpu", 4, EnergyPolicy(), 12, 80},
		{"throughput-2gpu", 2, ThroughputPolicy(), 13, 60},
		{"allow-interfering-2gpu", 2, interfering, 14, 60},
	}
	for _, c := range suiteCases {
		s, err := NewScheduler(a100x(), c.gpus, store, c.policy)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := s.planOnline(mixedArrivals(c.seed, c.count))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, goldenDispatchCase{Name: "suite-" + c.name, Dispatches: plan.Dispatches})
	}

	fleetCases := []struct {
		name      string
		workflows int
		gpus      int
		policy    Policy
		seed      uint64
	}{
		{"fleet-energy-2000x16", 2000, 16, EnergyPolicy(), 21},
		{"fleet-throughput-1500x32", 1500, 32, ThroughputPolicy(), 22},
	}
	for _, c := range fleetCases {
		arrivals, fstore, err := GenerateFleet(a100x(), FleetSpec{
			Workflows: c.workflows, TargetGPUs: c.gpus, Seed: c.seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheduler(a100x(), c.gpus, fstore, c.policy)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := s.planOnline(arrivals)
		if err != nil {
			t.Fatal(err)
		}
		count, digest := digestDispatches(t, plan.Dispatches)
		got = append(got, goldenDispatchCase{Name: c.name, Count: count, SHA256: digest})
	}
	goldenCompare(t, "golden_dispatch.json", got)
}

// TestGoldenOnlineOutcome pins one full ScheduleOnline run end to end —
// dispatch log plus executed summaries — so the planning/execution seam
// cannot drift.
func TestGoldenOnlineOutcome(t *testing.T) {
	store := suiteStore(t)
	s, err := NewScheduler(a100x(), 2, store, EnergyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.ScheduleOnline(mixedArrivals(31, 16), gpusim.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_online_outcome.json", out)
}
