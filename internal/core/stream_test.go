package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"gpushare/internal/profile"
	"gpushare/internal/workflow"
)

// fleetScheduler builds a scheduler over a generated fleet's store.
func fleetScheduler(t *testing.T, store *profile.Store, gpus, shards int) *Scheduler {
	t.Helper()
	s, err := NewScheduler(a100x(), gpus, store, EnergyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	s.Shards = shards
	return s
}

// TestFleetSourceMatchesGenerateFleet pins the lazy source to the
// materializing generator draw for draw: same spec, same arrivals, same
// store profiles.
func TestFleetSourceMatchesGenerateFleet(t *testing.T) {
	spec := FleetSpec{Workflows: 500, TargetGPUs: 8, Seed: 42}
	want, wantStore, err := GenerateFleet(a100x(), spec)
	if err != nil {
		t.Fatal(err)
	}
	src, store, err := NewFleetSource(a100x(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if src.Remaining() != len(want) {
		t.Fatalf("Remaining = %d, want %d", src.Remaining(), len(want))
	}
	var got []Arrival
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, a)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("lazy source diverged from GenerateFleet")
	}
	if src.Remaining() != 0 {
		t.Fatalf("Remaining after drain = %d", src.Remaining())
	}
	// Same archetype fabrication: an arbitrary archetype profile must
	// match bit for bit.
	p1, err1 := store.Lookup("fleet-a003", "1x")
	p2, err2 := wantStore.Lookup("fleet-a003", "1x")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("archetype profiles diverged")
	}
}

// TestShardCountIdentity is the tentpole's identity pin: the dispatch
// log — every decision byte, not a summary — is identical at shard
// counts 1, 4, 5 (uneven ranges), and 16, and so is the fleet digest.
func TestShardCountIdentity(t *testing.T) {
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{Workflows: 2000, TargetGPUs: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	base := fleetScheduler(t, store, 16, 1)
	ref, err := base.PlanOnline(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	refCount, refDigest := digestDispatches(t, ref.Dispatches)
	if refCount != len(arrivals) {
		t.Fatalf("dispatched %d of %d", refCount, len(arrivals))
	}
	for _, shards := range []int{4, 5, 16, 64 /* clamped to 16 */} {
		s := fleetScheduler(t, store, 16, shards)
		plan, err := s.PlanOnline(arrivals)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plan.Dispatches, ref.Dispatches) {
			t.Fatalf("shards=%d: dispatch log diverged from flat dispatcher", shards)
		}
		if _, digest := digestDispatches(t, plan.Dispatches); digest != refDigest {
			t.Fatalf("shards=%d: digest %s, want %s", shards, digest, refDigest)
		}
		if plan.Stats != ref.Stats {
			t.Fatalf("shards=%d: stats %+v, want %+v", shards, plan.Stats, ref.Stats)
		}
	}
}

// TestStreamDigestMatchesPlan pins the streaming frame format: digest
// over '[' e1 ',' ... ']' streamed one event at a time equals
// sha256(json.Marshal(dispatches)) of the materialized plan, and the
// JSONL spill holds exactly the plan's events in order.
func TestStreamDigestMatchesPlan(t *testing.T) {
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{Workflows: 1200, TargetGPUs: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s := fleetScheduler(t, store, 8, 4)
	plan, err := s.PlanOnline(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	_, wantDigest := digestDispatches(t, plan.Dispatches)

	var spill bytes.Buffer
	st, err := s.NewStreamer(StreamConfig{RingCapacity: 64, Spill: &spill})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		if _, err := st.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	if st.Events() != int64(len(arrivals)) {
		t.Fatalf("events = %d, want %d", st.Events(), len(arrivals))
	}
	digest, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if digest != wantDigest {
		t.Fatalf("stream digest %s, want plan digest %s", digest, wantDigest)
	}

	lines := strings.Split(strings.TrimSuffix(spill.String(), "\n"), "\n")
	if len(lines) != len(plan.Dispatches) {
		t.Fatalf("spill holds %d lines, want %d", len(lines), len(plan.Dispatches))
	}
	for i, line := range lines {
		var ev DispatchEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("spill line %d: %v", i, err)
		}
		if !reflect.DeepEqual(ev, plan.Dispatches[i]) {
			t.Fatalf("spill line %d = %+v, want %+v", i, ev, plan.Dispatches[i])
		}
	}
}

// TestStreamSnapshotResume pins deterministic resume: snapshot
// mid-stream, serialize the state through JSON (as a checkpoint file
// would), restore on a fresh scheduler, finish the stream — and land on
// the uninterrupted run's digest and spill, byte for byte.
func TestStreamSnapshotResume(t *testing.T) {
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{Workflows: 1500, TargetGPUs: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := fleetScheduler(t, store, 12, 5)

	// Uninterrupted reference run.
	var refSpill bytes.Buffer
	ref, err := s.NewStreamer(StreamConfig{RingCapacity: 32, Spill: &refSpill})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		if _, err := ref.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	refDigest, err := ref.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: snapshot at an uneven split.
	cut := len(arrivals)*2/3 + 1
	var spillA bytes.Buffer
	first, err := s.NewStreamer(StreamConfig{RingCapacity: 32, Spill: &spillA})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals[:cut] {
		if _, err := first.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	state, err := first.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	var restored StreamState
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}

	s2 := fleetScheduler(t, store, 12, 5)
	var spillB bytes.Buffer
	second, err := s2.RestoreStreamer(StreamConfig{RingCapacity: 32, Spill: &spillB}, &restored)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals[cut:] {
		if _, err := second.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	digest, err := second.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if digest != refDigest {
		t.Fatalf("resumed digest %s, want uninterrupted %s", digest, refDigest)
	}
	// The interrupted run's spill halves concatenate to the reference
	// spill: pre-snapshot evictions land in the first sink, everything
	// else (including the ring retained across the snapshot) in the
	// second.
	if got := spillA.String() + spillB.String(); got != refSpill.String() {
		t.Fatal("concatenated interrupted spill diverged from uninterrupted spill")
	}
	// The snapshot is a copy, not a handoff: the first streamer still
	// finishes on the reference digest.
	for _, a := range arrivals[cut:] {
		if _, err := first.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	if d, err := first.Finish(); err != nil || d != refDigest {
		t.Fatalf("original streamer after snapshot: digest %s err %v, want %s", d, err, refDigest)
	}
}

// TestStreamRestoreValidation exercises the snapshot compatibility
// checks: fleet shape, shard count, ring capacity, and serial order all
// gate a restore.
func TestStreamRestoreValidation(t *testing.T) {
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{Workflows: 200, TargetGPUs: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := fleetScheduler(t, store, 4, 2)
	st, err := s.NewStreamer(StreamConfig{RingCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		if _, err := st.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	state, err := st.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		sched  *Scheduler
		cfg    StreamConfig
		mutate func(*StreamState)
		want   string
	}{
		{"gpu mismatch", fleetScheduler(t, store, 8, 2), StreamConfig{RingCapacity: 16}, nil, "saved for 4 GPUs"},
		{"shard mismatch", fleetScheduler(t, store, 4, 4), StreamConfig{RingCapacity: 16}, nil, "saved with 2 shards"},
		{"ring too small", fleetScheduler(t, store, 4, 2), StreamConfig{RingCapacity: 2}, nil, "ring capacity"},
		{"resident gpu out of range", fleetScheduler(t, store, 4, 2), StreamConfig{RingCapacity: 16}, func(ss *StreamState) {
			if len(ss.Resident) > 0 {
				ss.Resident[0].GPU = 99
			}
		}, "on GPU 99"},
		{"serials not increasing", fleetScheduler(t, store, 4, 2), StreamConfig{RingCapacity: 16}, func(ss *StreamState) {
			if len(ss.Resident) > 1 {
				ss.Resident[1].Seq = ss.Resident[0].Seq
			}
		}, "strictly increasing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			clone := *state
			clone.Resident = append([]residentSave(nil), state.Resident...)
			if c.mutate != nil {
				c.mutate(&clone)
			}
			_, err := c.sched.RestoreStreamer(c.cfg, &clone)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
	if _, err := s.RestoreStreamer(StreamConfig{}, nil); err == nil {
		t.Fatal("nil state accepted")
	}
}

// TestStreamMisuse pins the ordering and lifecycle errors.
func TestStreamMisuse(t *testing.T) {
	store := suiteStore(t)
	s := fleetScheduler(t, store, 2, 1)
	st, err := s.NewStreamer(StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Ingest(Arrival{At: at(10), Workflow: wfOne("a", "AthenaPK", "1x", 1)}); err != nil {
		t.Fatal(err)
	}
	// Equal timestamps are legal (tie-break is ingest order)...
	if _, err := st.Ingest(Arrival{At: at(10), Workflow: wfOne("b", "AthenaPK", "1x", 1)}); err != nil {
		t.Fatal(err)
	}
	// ...but going backwards is not.
	if _, err := st.Ingest(Arrival{At: at(9), Workflow: wfOne("c", "AthenaPK", "1x", 1)}); err == nil ||
		!strings.Contains(err.Error(), "out-of-order") {
		t.Fatalf("out-of-order ingest: err = %v", err)
	}
	if _, err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Ingest(Arrival{At: at(20), Workflow: wfOne("d", "AthenaPK", "1x", 1)}); err == nil {
		t.Fatal("ingest after Finish accepted")
	}
	if _, err := st.Finish(); err == nil {
		t.Fatal("double Finish accepted")
	}
	if _, err := st.SaveState(); err == nil {
		t.Fatal("SaveState after Finish accepted")
	}
	if _, err := s.NewStreamer(StreamConfig{RingCapacity: -1}); err == nil {
		t.Fatal("negative ring capacity accepted")
	}
}

// TestStreamEmptyDigest pins the zero-event digest to the marshaled
// empty slice, matching a plan with no dispatches.
func TestStreamEmptyDigest(t *testing.T) {
	store := suiteStore(t)
	s := fleetScheduler(t, store, 1, 1)
	st, err := s.NewStreamer(StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	digest, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	_, want := digestDispatches(t, []DispatchEvent{})
	if digest != want {
		t.Fatalf("empty digest %s, want %s", digest, want)
	}
}

// TestPlanOnlineZeroGPUs pins the degenerate fleet: NewScheduler
// rejects it, and a hand-built zero-GPU scheduler reports the first
// arrival unadmittable instead of panicking in the shard arithmetic.
func TestPlanOnlineZeroGPUs(t *testing.T) {
	store := suiteStore(t)
	if _, err := NewScheduler(a100x(), 0, store, EnergyPolicy()); err == nil {
		t.Fatal("NewScheduler accepted zero GPUs")
	}
	s := &Scheduler{Device: a100x(), GPUs: 0, Profiles: store, Policy: EnergyPolicy()}
	_, err := s.PlanOnline([]Arrival{{At: at(0), Workflow: wfOne("w", "AthenaPK", "1x", 1)}})
	if err == nil || !strings.Contains(err.Error(), "cannot be admitted") {
		t.Fatalf("zero-GPU plan: err = %v", err)
	}
}

// TestPlanOnlineDuplicateArrivalTimes pins the tie-break for arrivals
// sharing a submission instant: submission order (the sort is stable,
// the dispatcher processes in order), so the dispatch log lists them in
// input order regardless of shard count.
func TestPlanOnlineDuplicateArrivalTimes(t *testing.T) {
	store := suiteStore(t)
	var arrivals []Arrival
	for i := 0; i < 8; i++ {
		arrivals = append(arrivals, Arrival{
			At:       at(float64(i/4) * 100), // two quads share an instant
			Workflow: wfOne(fmt.Sprintf("dup-%d", i), "AthenaPK", "4x", 1),
		})
	}
	var ref []DispatchEvent
	for _, shards := range []int{1, 2, 4} {
		s := fleetScheduler(t, store, 4, shards)
		plan, err := s.PlanOnline(arrivals)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range plan.Dispatches {
			if want := fmt.Sprintf("dup-%d", i); d.Workflow != want {
				t.Fatalf("shards=%d: dispatch %d is %s, want %s (tie-break must be submission order)",
					shards, i, d.Workflow, want)
			}
		}
		if ref == nil {
			ref = plan.Dispatches
		} else if !reflect.DeepEqual(plan.Dispatches, ref) {
			t.Fatalf("shards=%d: duplicate-timestamp log diverged", shards)
		}
	}
}

// TestStreamProfileRecycling pins the bounded-slab property: a stream
// drawing from a fixed archetype set keeps the profile slab's live set
// at the cache size, not the arrival count, and multi-task (uncached)
// profiles recycle through Put.
func TestStreamProfileRecycling(t *testing.T) {
	store := suiteStore(t)
	s := fleetScheduler(t, store, 2, 1)
	st, err := s.NewStreamer(StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	multi := workflow.Workflow{Name: "multi", Tasks: []workflow.Task{
		{Benchmark: "AthenaPK", Size: "1x", Iterations: 1},
		{Benchmark: "Kripke", Size: "1x", Iterations: 1},
	}}
	for i := 0; i < 200; i++ {
		a := Arrival{At: at(float64(i) * 50), Workflow: wfOne(fmt.Sprintf("s-%d", i), "AthenaPK", "1x", 1)}
		if i%3 == 0 {
			m := multi
			m.Name = fmt.Sprintf("multi-%d", i)
			a.Workflow = m
		}
		if _, err := st.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	// Live profiles: the one cached single-task profile; every multi-task
	// profile went back through Put.
	if live := st.mem.profiles.Len(); live != 1 {
		t.Fatalf("profile slab live set = %d, want 1", live)
	}
}

// TestStreamBoundedMemory is the million-arrival soak: 1M arrivals over
// 1024 GPUs streamed with a spill sink, asserting the heap stays bounded
// (a materializing plan at this scale retains hundreds of MiB). Skipped
// under -short and under the race detector.
func TestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("million-arrival soak skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation invalidates the heap ceiling")
	}
	const (
		workflows = 1_000_000
		gpus      = 1024
		// heapCeiling is far above the streamer's true live set (a few
		// MiB) but far below what retaining 1M events would cost, so the
		// assertion catches any O(arrivals) retention without flaking on
		// GC timing.
		heapCeiling = 256 << 20
	)
	src, store, err := NewFleetSource(a100x(), FleetSpec{Workflows: workflows, TargetGPUs: gpus, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := fleetScheduler(t, store, gpus, 16)
	var spilled countingWriter
	st, err := s.NewStreamer(StreamConfig{RingCapacity: 4096, Spill: &spilled})
	if err != nil {
		t.Fatal(err)
	}
	var ms runtime.MemStats
	var maxHeap uint64
	for n := 0; ; n++ {
		a, ok := src.Next()
		if !ok {
			break
		}
		if _, err := st.Ingest(a); err != nil {
			t.Fatal(err)
		}
		if n%100_000 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > maxHeap {
				maxHeap = ms.HeapAlloc
			}
		}
	}
	digest, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > maxHeap {
		maxHeap = ms.HeapAlloc
	}
	if st.Events() != workflows {
		t.Fatalf("dispatched %d of %d", st.Events(), workflows)
	}
	if digest == "" {
		t.Fatal("empty digest")
	}
	if spilled.lines != workflows {
		t.Fatalf("spilled %d lines, want %d", spilled.lines, workflows)
	}
	if maxHeap > heapCeiling {
		t.Fatalf("heap peaked at %d MiB, ceiling %d MiB: streaming retained per-arrival state",
			maxHeap>>20, heapCeiling>>20)
	}
	t.Logf("1M arrivals over %d GPUs: peak heap %d MiB, digest %s", gpus, maxHeap>>20, digest)
}

// countingWriter counts newline-terminated records without retaining
// them.
type countingWriter struct{ lines int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	for _, b := range p {
		if b == '\n' {
			w.lines++
		}
	}
	return len(p), nil
}

// TestPlanOnlineSteadyAllocs pins the full planning path's allocation
// budget per arrival: profile cache plus arena-backed outputs hold the
// whole decision-and-record pipeline to a small constant, two orders of
// magnitude under the pre-arena dispatcher (see BENCH_dispatcher.json).
func TestPlanOnlineSteadyAllocs(t *testing.T) {
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{Workflows: 4000, TargetGPUs: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := fleetScheduler(t, store, 16, 4)
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := s.planOnline(arrivals); err != nil {
			t.Fatal(err)
		}
	})
	perArrival := allocs / float64(len(arrivals))
	// The remaining per-arrival cost is the sorted copy plus amortized
	// arena chunk refills — well under one heap object per arrival.
	if perArrival > 0.5 {
		t.Fatalf("planOnline allocates %.2f objects per arrival, want <= 0.5", perArrival)
	}
}
