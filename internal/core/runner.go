package core

import (
	"fmt"

	"gpushare/internal/gpusim"
	"gpushare/internal/metrics"
	"gpushare/internal/mps"
	"gpushare/internal/obs"
	"gpushare/internal/parallel"
	"gpushare/internal/workflow"
)

// GroupResult is the simulated outcome of one collocation group.
type GroupResult struct {
	GPU    int
	Wave   int
	Group  *Group
	Result *gpusim.Result
}

// Outcome is the full evaluation of a plan: the sharing execution, the
// sequential baseline on the same pool, and the paper's relative metrics.
type Outcome struct {
	Plan       *Plan
	Groups     []GroupResult
	Sharing    metrics.RunSummary
	Sequential metrics.RunSummary
	Relative   metrics.Relative
	// ProductValue is the policy's product metric when applicable.
	ProductValue float64
}

// Execute simulates the plan and its sequential baseline and compares
// them. The sharing mechanism comes from simCfg.Mode (MPS or
// time-slicing); the device is forced to the plan's device.
func (s *Scheduler) Execute(plan *Plan, simCfg gpusim.Config) (*Outcome, error) {
	if plan == nil || plan.WorkflowCount() == 0 {
		return nil, fmt.Errorf("core: empty plan")
	}
	hub := obs.Active()
	defer hub.StartWall("scheduler", "Execute").End()
	simCfg.Device = plan.Device

	// An MPS control daemon per pool, one server per GPU: exercised here
	// so plans respect real client-connection semantics (limits,
	// partition-at-connect). Servers are created up front — the daemon is
	// not safe for concurrent mutation — and each GPU's wave sequence then
	// runs on the worker pool. Waves within a GPU stay serial: they share
	// one MPS server, and a GPU's client-connection window is exactly one
	// wave wide.
	daemon := mps.NewControlDaemon(plan.Device.MaxMPSClients)
	defer daemon.StopAll()
	servers := make([]*mps.Server, len(plan.PerGPU))
	for gpuIdx := range plan.PerGPU {
		servers[gpuIdx] = daemon.ServerFor(fmt.Sprintf("gpu%d", gpuIdx))
	}

	type gpuOutcome struct {
		groups   []GroupResult
		makespan float64
		energyJ  float64
		cappedS  float64
		tasks    int
	}
	perGPU, err := parallel.Map(s.Workers, len(plan.PerGPU), func(gpuIdx int) (gpuOutcome, error) {
		var o gpuOutcome
		for waveIdx, g := range plan.PerGPU[gpuIdx] {
			res, err := s.runGroup(servers[gpuIdx], g, simCfg, gpuIdx, waveIdx)
			if err != nil {
				return gpuOutcome{}, err
			}
			o.groups = append(o.groups, GroupResult{
				GPU: gpuIdx, Wave: waveIdx, Group: g, Result: res,
			})
			o.makespan += res.Makespan.Seconds()
			o.energyJ += res.EnergyJ
			o.cappedS += res.CappedTime.Seconds()
			o.tasks += res.TasksCompleted()
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}

	out := &Outcome{Plan: plan}
	gpuMakespans := make([]float64, len(plan.PerGPU))
	var totalEnergy, totalCappedS float64
	totalTasks := 0
	for gpuIdx, o := range perGPU {
		out.Groups = append(out.Groups, o.groups...)
		gpuMakespans[gpuIdx] = o.makespan
		totalEnergy += o.energyJ
		totalCappedS += o.cappedS
		totalTasks += o.tasks
	}

	out.Sharing = poolSummary(plan, gpuMakespans, totalEnergy, totalCappedS, totalTasks)

	seq, err := s.runSequentialBaseline(plan, simCfg)
	if err != nil {
		return nil, err
	}
	out.Sequential = seq

	rel, err := metrics.Compare(out.Sequential, out.Sharing)
	if err != nil {
		return nil, err
	}
	out.Relative = rel
	if plan.Policy.Objective == MaximizeProduct {
		out.ProductValue = plan.Policy.Product.Eval(rel)
	} else {
		out.ProductValue = metrics.EqualProduct().Eval(rel)
	}
	return out, nil
}

// runGroup executes one collocation group: each member workflow becomes
// one MPS client (or one time-sliced process).
func (s *Scheduler) runGroup(server *mps.Server, g *Group, simCfg gpusim.Config, gpuIdx, waveIdx int) (*gpusim.Result, error) {
	hub := obs.Active()
	hub.Counter("sched_waves_total").Inc()
	detail := ""
	if hub.SpansEnabled() {
		detail = fmt.Sprintf("gpu%d-wave%d", gpuIdx, waveIdx)
	}
	sp := hub.StartWall("scheduler", "runGroup")
	defer sp.EndDetail(detail)
	var mpsClients []*mps.Client
	var simClients []gpusim.Client
	for i, m := range g.Members {
		id := fmt.Sprintf("g%d-w%d-%s", gpuIdx, waveIdx, m.Workflow.Name)
		partition := 1.0
		if len(g.Partitions) == len(g.Members) {
			partition = g.Partitions[i]
		}
		if simCfg.Mode == gpusim.ShareMPS {
			mc, err := server.Connect(id, partition*100)
			if err != nil {
				for _, prev := range mpsClients {
					_ = server.Disconnect(prev)
				}
				return nil, fmt.Errorf("core: MPS connect %s: %w", id, err)
			}
			mpsClients = append(mpsClients, mc)
			partition = mc.Partition()
		}
		tasks, err := m.Workflow.BuildSpecs(s.Device)
		if err != nil {
			for _, prev := range mpsClients {
				_ = server.Disconnect(prev)
			}
			return nil, err
		}
		simClients = append(simClients, gpusim.Client{
			ID:        id,
			Partition: partition,
			Tasks:     tasks,
		})
	}
	res, err := s.Cache.RunClients(simCfg, simClients)
	for _, mc := range mpsClients {
		_ = server.Disconnect(mc)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runSequentialBaseline executes the paper's baseline: the same workflows
// in queue order, one at a time per GPU with no overlap, workflows placed
// on the earliest-available GPU.
func (s *Scheduler) runSequentialBaseline(plan *Plan, simCfg gpusim.Config) (metrics.RunSummary, error) {
	// Recover the workflow multiset from the plan in deterministic
	// (gpu, wave, member) order.
	var wfs []workflow.Workflow
	for _, g := range plan.Groups() {
		for _, m := range g.Members {
			wfs = append(wfs, m.Workflow)
		}
	}
	seqCfg := simCfg
	seqCfg.Mode = gpusim.ShareMPS // single client; mode is irrelevant

	// Each workflow's solo run is independent: fan them out on the worker
	// pool, seeding run i by SplitMix64 stream split from the base seed —
	// a function of the run index alone, so the derived jitter streams are
	// identical at any worker count (and well-separated between runs,
	// unlike consecutive raw seeds).
	results, err := parallel.Map(s.Workers, len(wfs), func(i int) (*gpusim.Result, error) {
		tasks, err := wfs[i].BuildSpecs(s.Device)
		if err != nil {
			return nil, err
		}
		cfg := seqCfg
		cfg.Seed = parallel.SplitSeed(seqCfg.Seed, i)
		return s.Cache.RunSequential(cfg, tasks)
	})
	if err != nil {
		return metrics.RunSummary{}, err
	}

	// Greedy earliest-available-GPU packing is inherently sequential in
	// queue order; fold the in-order results serially.
	gpuMakespans := make([]float64, len(plan.PerGPU))
	var totalEnergy, totalCappedS float64
	totalTasks := 0
	for _, res := range results {
		// Earliest-available GPU; ties to lowest index.
		best := 0
		for g := 1; g < len(gpuMakespans); g++ {
			if gpuMakespans[g] < gpuMakespans[best] {
				best = g
			}
		}
		gpuMakespans[best] += res.Makespan.Seconds()
		totalEnergy += res.EnergyJ
		totalCappedS += res.CappedTime.Seconds()
		totalTasks += res.TasksCompleted()
	}
	return poolSummary(plan, gpuMakespans, totalEnergy, totalCappedS, totalTasks), nil
}

// poolSummary folds per-GPU makespans into a cluster-level summary: the
// pool finishes when its slowest GPU does, and GPUs idling after their
// last wave still draw idle power until then.
func poolSummary(plan *Plan, gpuMakespans []float64, energyJ, cappedS float64, tasks int) metrics.RunSummary {
	var makespan float64
	for _, m := range gpuMakespans {
		if m > makespan {
			makespan = m
		}
	}
	for _, m := range gpuMakespans {
		energyJ += plan.Device.IdlePowerW * (makespan - m)
	}
	capped := 0.0
	if makespan > 0 {
		capped = cappedS / (makespan * float64(len(gpuMakespans)))
	}
	avgPower := 0.0
	if makespan > 0 {
		avgPower = energyJ / makespan / float64(len(gpuMakespans))
	}
	return metrics.RunSummary{
		MakespanS:      makespan,
		EnergyJ:        energyJ,
		Tasks:          tasks,
		CappedFraction: capped,
		AvgPowerW:      avgPower,
	}
}

// ScheduleAndRun is the one-call convenience: build the plan for a queue,
// execute it under MPS, and return the outcome.
func (s *Scheduler) ScheduleAndRun(q *workflow.Queue, simCfg gpusim.Config) (*Outcome, error) {
	plan, err := s.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	simCfg.Mode = gpusim.ShareMPS
	return s.Execute(plan, simCfg)
}
