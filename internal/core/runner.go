package core

import (
	"fmt"

	"gpushare/internal/gpusim"
	"gpushare/internal/metrics"
	"gpushare/internal/mps"
	"gpushare/internal/workflow"
)

// GroupResult is the simulated outcome of one collocation group.
type GroupResult struct {
	GPU    int
	Wave   int
	Group  *Group
	Result *gpusim.Result
}

// Outcome is the full evaluation of a plan: the sharing execution, the
// sequential baseline on the same pool, and the paper's relative metrics.
type Outcome struct {
	Plan       *Plan
	Groups     []GroupResult
	Sharing    metrics.RunSummary
	Sequential metrics.RunSummary
	Relative   metrics.Relative
	// ProductValue is the policy's product metric when applicable.
	ProductValue float64
}

// Execute simulates the plan and its sequential baseline and compares
// them. The sharing mechanism comes from simCfg.Mode (MPS or
// time-slicing); the device is forced to the plan's device.
func (s *Scheduler) Execute(plan *Plan, simCfg gpusim.Config) (*Outcome, error) {
	if plan == nil || plan.WorkflowCount() == 0 {
		return nil, fmt.Errorf("core: empty plan")
	}
	simCfg.Device = plan.Device

	// An MPS control daemon per pool, one server per GPU: exercised here
	// so plans respect real client-connection semantics (limits,
	// partition-at-connect).
	daemon := mps.NewControlDaemon(plan.Device.MaxMPSClients)
	defer daemon.StopAll()

	out := &Outcome{Plan: plan}
	gpuMakespans := make([]float64, len(plan.PerGPU))
	var totalEnergy, totalCappedS float64
	totalTasks := 0

	for gpuIdx, waves := range plan.PerGPU {
		server := daemon.ServerFor(fmt.Sprintf("gpu%d", gpuIdx))
		for waveIdx, g := range waves {
			res, err := s.runGroup(server, g, simCfg, gpuIdx, waveIdx)
			if err != nil {
				return nil, err
			}
			out.Groups = append(out.Groups, GroupResult{
				GPU: gpuIdx, Wave: waveIdx, Group: g, Result: res,
			})
			gpuMakespans[gpuIdx] += res.Makespan.Seconds()
			totalEnergy += res.EnergyJ
			totalCappedS += res.CappedTime.Seconds()
			totalTasks += res.TasksCompleted()
		}
	}

	out.Sharing = poolSummary(plan, gpuMakespans, totalEnergy, totalCappedS, totalTasks)

	seq, err := s.runSequentialBaseline(plan, simCfg)
	if err != nil {
		return nil, err
	}
	out.Sequential = seq

	rel, err := metrics.Compare(out.Sequential, out.Sharing)
	if err != nil {
		return nil, err
	}
	out.Relative = rel
	if plan.Policy.Objective == MaximizeProduct {
		out.ProductValue = plan.Policy.Product.Eval(rel)
	} else {
		out.ProductValue = metrics.EqualProduct().Eval(rel)
	}
	return out, nil
}

// runGroup executes one collocation group: each member workflow becomes
// one MPS client (or one time-sliced process).
func (s *Scheduler) runGroup(server *mps.Server, g *Group, simCfg gpusim.Config, gpuIdx, waveIdx int) (*gpusim.Result, error) {
	eng, err := gpusim.New(simCfg)
	if err != nil {
		return nil, err
	}
	var clients []*mps.Client
	for i, m := range g.Members {
		id := fmt.Sprintf("g%d-w%d-%s", gpuIdx, waveIdx, m.Workflow.Name)
		partition := 1.0
		if len(g.Partitions) == len(g.Members) {
			partition = g.Partitions[i]
		}
		if simCfg.Mode == gpusim.ShareMPS {
			mc, err := server.Connect(id, partition*100)
			if err != nil {
				return nil, fmt.Errorf("core: MPS connect %s: %w", id, err)
			}
			clients = append(clients, mc)
			partition = mc.Partition()
		}
		tasks, err := m.Workflow.BuildSpecs(s.Device)
		if err != nil {
			return nil, err
		}
		if err := eng.AddClient(gpusim.Client{
			ID:        id,
			Partition: partition,
			Tasks:     tasks,
		}); err != nil {
			return nil, err
		}
	}
	res, err := eng.Run()
	for _, mc := range clients {
		_ = server.Disconnect(mc)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runSequentialBaseline executes the paper's baseline: the same workflows
// in queue order, one at a time per GPU with no overlap, workflows placed
// on the earliest-available GPU.
func (s *Scheduler) runSequentialBaseline(plan *Plan, simCfg gpusim.Config) (metrics.RunSummary, error) {
	// Recover the workflow multiset from the plan in deterministic
	// (gpu, wave, member) order.
	var wfs []workflow.Workflow
	for _, g := range plan.Groups() {
		for _, m := range g.Members {
			wfs = append(wfs, m.Workflow)
		}
	}
	seqCfg := simCfg
	seqCfg.Mode = gpusim.ShareMPS // single client; mode is irrelevant

	gpuMakespans := make([]float64, len(plan.PerGPU))
	var totalEnergy, totalCappedS float64
	totalTasks := 0
	for i, w := range wfs {
		// Earliest-available GPU; ties to lowest index.
		best := 0
		for g := 1; g < len(gpuMakespans); g++ {
			if gpuMakespans[g] < gpuMakespans[best] {
				best = g
			}
		}
		tasks, err := w.BuildSpecs(s.Device)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		cfg := seqCfg
		cfg.Seed = seqCfg.Seed + uint64(i)
		res, err := gpusim.RunSequential(cfg, tasks)
		if err != nil {
			return metrics.RunSummary{}, err
		}
		gpuMakespans[best] += res.Makespan.Seconds()
		totalEnergy += res.EnergyJ
		totalCappedS += res.CappedTime.Seconds()
		totalTasks += res.TasksCompleted()
	}
	return poolSummary(plan, gpuMakespans, totalEnergy, totalCappedS, totalTasks), nil
}

// poolSummary folds per-GPU makespans into a cluster-level summary: the
// pool finishes when its slowest GPU does, and GPUs idling after their
// last wave still draw idle power until then.
func poolSummary(plan *Plan, gpuMakespans []float64, energyJ, cappedS float64, tasks int) metrics.RunSummary {
	var makespan float64
	for _, m := range gpuMakespans {
		if m > makespan {
			makespan = m
		}
	}
	for _, m := range gpuMakespans {
		energyJ += plan.Device.IdlePowerW * (makespan - m)
	}
	capped := 0.0
	if makespan > 0 {
		capped = cappedS / (makespan * float64(len(gpuMakespans)))
	}
	avgPower := 0.0
	if makespan > 0 {
		avgPower = energyJ / makespan / float64(len(gpuMakespans))
	}
	return metrics.RunSummary{
		MakespanS:      makespan,
		EnergyJ:        energyJ,
		Tasks:          tasks,
		CappedFraction: capped,
		AvgPowerW:      avgPower,
	}
}

// ScheduleAndRun is the one-call convenience: build the plan for a queue,
// execute it under MPS, and return the outcome.
func (s *Scheduler) ScheduleAndRun(q *workflow.Queue, simCfg gpusim.Config) (*Outcome, error) {
	plan, err := s.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	simCfg.Mode = gpusim.ShareMPS
	return s.Execute(plan, simCfg)
}
