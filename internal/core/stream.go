package core

import (
	"crypto/sha256"
	"encoding"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"sort"

	"gpushare/internal/arena"
	"gpushare/internal/interference"
	"gpushare/internal/obs"
	"gpushare/internal/simtime"
)

// Streaming ingest: the dispatcher's decision kernel applied to an
// unbounded, time-ordered arrival stream with bounded steady-state
// memory. PlanOnline materializes every arrival, profile, and dispatch
// record for the plan's lifetime; the Streamer instead recycles
// per-arrival storage the moment an event is framed, keeps only a
// fixed-capacity ring of recent events (older ones spill to a JSONL
// sink), and folds the log into a running SHA-256 digest framed exactly
// like json.Marshal of the full event slice — so a streamed run and a
// materialized plan over the same arrivals produce the same digest byte
// for byte (DESIGN.md §14).

// ArrivalSource yields a time-ordered arrival stream one element at a
// time. Implementations must yield non-decreasing At values; FleetSource
// is the synthetic-fleet implementation.
type ArrivalSource interface {
	Next() (Arrival, bool)
}

// StreamConfig parameterizes a streaming ingest run.
type StreamConfig struct {
	// RingCapacity bounds the retained tail of the event log; zero
	// selects 1024.
	RingCapacity int
	// Spill receives evicted event records, one JSON object per line,
	// oldest first; nil discards them. Finish drains the ring through
	// the same sink, so a run with a spill writer ends with the complete
	// log on it.
	Spill io.Writer
}

// defaultRingCapacity is the retained-event bound when the config does
// not choose one.
const defaultRingCapacity = 1024

// Streamer ingests arrivals one at a time through the sharded
// dispatcher. It is single-owner, like the dispatcher it drives; wrap
// it in a mutex to share (cmd/gpusched's serve mode does).
type Streamer struct {
	sched   *Scheduler
	d       *onlineDispatcher
	builder *profileBuilder
	mem     *planArena
	ring    *arena.Ring[string]
	spill   io.Writer

	digest hash.Hash
	n      int64 // events framed into the digest
	lastAt simtime.Time
	stats  DispatchStats

	finished bool
}

// NewStreamer returns a streaming ingest session against the
// scheduler's fleet (GPUs, shards, policy, profile store).
func (s *Scheduler) NewStreamer(cfg StreamConfig) (*Streamer, error) {
	if cfg.RingCapacity < 0 {
		return nil, fmt.Errorf("core: negative stream ring capacity %d", cfg.RingCapacity)
	}
	capacity := cfg.RingCapacity
	if capacity == 0 {
		capacity = defaultRingCapacity
	}
	st := &Streamer{
		sched:  s,
		mem:    &planArena{},
		ring:   arena.NewRing[string](capacity),
		spill:  cfg.Spill,
		digest: sha256.New(),
	}
	st.d = newOnlineDispatcher(s, &st.stats)
	st.builder = newProfileBuilder(s.Profiles, st.mem)
	return st, nil
}

// Ingest dispatches one arrival and frames its event into the digest,
// ring, and spill path. Arrivals must be non-decreasing in At — the
// dispatcher's decisions assume a time-ordered stream, and an
// out-of-order arrival would silently produce a log no sorted plan can
// reproduce.
func (st *Streamer) Ingest(a Arrival) (DispatchEvent, error) {
	if st.finished {
		return DispatchEvent{}, fmt.Errorf("core: ingest after Finish")
	}
	if st.n > 0 && a.At < st.lastAt {
		return DispatchEvent{}, fmt.Errorf("core: out-of-order arrival %s at %v (stream is at %v)",
			a.Workflow.Name, a.At, st.lastAt)
	}
	wp, err := st.builder.build(a.Workflow)
	if err != nil {
		return DispatchEvent{}, err
	}
	ev, err := st.d.dispatchOne(&a, wp, &st.mem.names)
	if err != nil {
		return DispatchEvent{}, err
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return DispatchEvent{}, err
	}
	// The event is framed; its name list and (uncached) profile are dead.
	// Recycling them here is what keeps steady-state memory independent
	// of the arrival count.
	st.builder.putUncached(a.Workflow, wp)
	st.mem.names.Reset()

	// Digest framing matches json.Marshal over the full event slice:
	// '[' e1 ',' e2 ... ']' (Finish writes the close bracket).
	if st.n == 0 {
		st.digest.Write([]byte{'['})
	} else {
		st.digest.Write([]byte{','})
	}
	st.digest.Write(line)

	if old, evicted := st.ring.Push(string(line)); evicted {
		if err := st.spillLine(old); err != nil {
			return DispatchEvent{}, err
		}
	}
	st.n++
	st.lastAt = a.At
	return ev, nil
}

// IngestAll drains a source through Ingest, returning the number of
// arrivals dispatched.
func (st *Streamer) IngestAll(src ArrivalSource) (int, error) {
	n := 0
	for {
		a, ok := src.Next()
		if !ok {
			return n, nil
		}
		if _, err := st.Ingest(a); err != nil {
			return n, err
		}
		n++
	}
}

func (st *Streamer) spillLine(line string) error {
	if st.spill == nil {
		return nil
	}
	if _, err := io.WriteString(st.spill, line); err != nil {
		return err
	}
	_, err := io.WriteString(st.spill, "\n")
	return err
}

// Events reports how many arrivals have been dispatched.
func (st *Streamer) Events() int64 { return st.n }

// Stats returns the admission path's work counters so far.
func (st *Streamer) Stats() DispatchStats { return st.stats }

// WaitedS reports the total simulated queueing delay across all
// dispatched arrivals, in seconds — the streaming counterpart of
// summing DispatchEvent.WaitedS over a plan's log, which the ring may
// no longer hold.
func (st *Streamer) WaitedS() float64 { return simtime.Time(st.d.waitedNS).Seconds() }

// Recent appends the retained tail of the event log (marshaled records,
// oldest first) to dst.
func (st *Streamer) Recent(dst []string) []string { return st.ring.Snapshot(dst) }

// Finish closes the stream: the ring's retained events drain to the
// spill sink, per-shard telemetry folds into the shared registry, and
// the digest is finalized and returned as hex. The digest equals
// sha256(json.Marshal(events)) over the full dispatch log — the same
// value digestDispatches computes for a materialized plan.
func (st *Streamer) Finish() (string, error) {
	if st.finished {
		return "", fmt.Errorf("core: Finish called twice")
	}
	st.finished = true
	st.d.close()
	for i := 0; i < st.ring.Len(); i++ {
		if err := st.spillLine(st.ring.At(i)); err != nil {
			return "", err
		}
	}
	if st.n == 0 {
		st.digest.Write([]byte("[]"))
	} else {
		st.digest.Write([]byte{']'})
	}
	st.d.mergeObs(obs.Active(), st.n)
	return hex.EncodeToString(st.digest.Sum(nil)), nil
}

// StreamState is a serializable snapshot of an in-flight streaming run:
// everything needed to resume dispatching on a fresh process and still
// produce the digest the uninterrupted run would have. Residents are
// saved in placement-serial order with the exact loads their aggregates
// fold over; restore re-folds by Add in that order, which reproduces
// every sum bit for bit (the aggregate invariant: sums equal the
// left-fold over the member list).
type StreamState struct {
	// GPUs and Shards pin the fleet shape; restore rejects a scheduler
	// with a different one.
	GPUs   int `json:"gpus"`
	Shards int `json:"shards"`

	Events   int64          `json:"events"`
	NextSeq  uint64         `json:"next_seq"`
	LastAt   simtime.Time   `json:"last_at"`
	Stats    DispatchStats  `json:"stats"`
	WaitedNS int64          `json:"waited_ns"`
	Digest   []byte         `json:"digest_state"`
	Ring     []string       `json:"ring"`
	Resident []residentSave `json:"residents"`
	Hists    []shardHists   `json:"shard_hists"`
	// Flight carries the decision-provenance ring when telemetry was
	// enabled at save time, so a resumed run's trail is byte-identical
	// to the uninterrupted one (nil when disabled).
	Flight *obs.FlightSnapshot `json:"flight,omitempty"`
}

// residentSave is one in-flight workflow in a stream snapshot.
type residentSave struct {
	GPU  int               `json:"gpu"`
	Name string            `json:"name"`
	End  simtime.Time      `json:"end"`
	Seq  uint64            `json:"seq"`
	Load interference.Load `json:"load"`
}

// shardHists is one shard's telemetry in a stream snapshot.
type shardHists struct {
	Wait    obs.HistogramSnapshot `json:"wait"`
	Depth   obs.HistogramSnapshot `json:"depth"`
	Service obs.HistogramSnapshot `json:"service"`
}

// SaveState snapshots the run. The streamer stays usable; a snapshot is
// a point-in-time copy, not a handoff.
func (st *Streamer) SaveState() (*StreamState, error) {
	if st.finished {
		return nil, fmt.Errorf("core: SaveState after Finish")
	}
	digestState, err := st.digest.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		return nil, err
	}
	state := &StreamState{
		GPUs:     st.sched.GPUs,
		Shards:   len(st.d.shards),
		Events:   st.n,
		NextSeq:  st.d.nextSeq,
		LastAt:   st.lastAt,
		Stats:    st.stats,
		WaitedNS: st.d.waitedNS,
		Digest:   digestState,
		Ring:     st.ring.Snapshot(nil),
	}
	for si := range st.d.shards {
		sh := &st.d.shards[si]
		for g := range sh.gpus {
			gd := &sh.gpus[g]
			for j := range gd.res {
				state.Resident = append(state.Resident, residentSave{
					GPU:  sh.lo + g,
					Name: gd.res[j].name,
					End:  gd.res[j].end,
					Seq:  gd.res[j].seq,
					Load: gd.agg.At(j),
				})
			}
		}
		state.Hists = append(state.Hists, shardHists{
			Wait:    sh.waitHist.Snapshot(),
			Depth:   sh.depthHist.Snapshot(),
			Service: sh.serviceHist.Snapshot(),
		})
	}
	if st.d.fl != nil {
		fs := st.d.fl.Snapshot()
		state.Flight = &fs
	}
	// Global placement-serial order: per shard, completion events must be
	// re-scheduled in their original schedule order so the heaps'
	// same-instant tie-breaks replay identically.
	sort.Slice(state.Resident, func(i, j int) bool {
		return state.Resident[i].Seq < state.Resident[j].Seq
	})
	return state, nil
}

// RestoreStreamer resumes a saved streaming run on this scheduler. The
// scheduler must present the same fleet shape (GPUs, shards after
// clamping) and profile store contents as the run that saved the state;
// continuing the resumed stream over the remaining arrivals produces
// byte-identical events — and the identical final digest — to the
// uninterrupted run (pinned by TestStreamSnapshotResume).
func (s *Scheduler) RestoreStreamer(cfg StreamConfig, state *StreamState) (*Streamer, error) {
	if state == nil {
		return nil, fmt.Errorf("core: nil stream state")
	}
	if state.GPUs != s.GPUs {
		return nil, fmt.Errorf("core: stream state saved for %d GPUs, scheduler has %d", state.GPUs, s.GPUs)
	}
	st, err := s.NewStreamer(cfg)
	if err != nil {
		return nil, err
	}
	if got := len(st.d.shards); got != state.Shards {
		return nil, fmt.Errorf("core: stream state saved with %d shards, scheduler resolves to %d", state.Shards, got)
	}
	if len(state.Ring) > st.ring.Cap() {
		return nil, fmt.Errorf("core: stream state retains %d events, ring capacity is %d", len(state.Ring), st.ring.Cap())
	}
	if len(state.Hists) != len(st.d.shards) {
		return nil, fmt.Errorf("core: stream state has %d shard histograms, want %d", len(state.Hists), len(st.d.shards))
	}

	var prevSeq uint64
	for i, r := range state.Resident {
		if r.GPU < 0 || r.GPU >= s.GPUs {
			return nil, fmt.Errorf("core: stream state resident %q on GPU %d, fleet has %d", r.Name, r.GPU, s.GPUs)
		}
		if r.Seq >= state.NextSeq || (i > 0 && r.Seq <= prevSeq) {
			return nil, fmt.Errorf("core: stream state resident serials not strictly increasing under next_seq")
		}
		prevSeq = r.Seq
		sh := st.d.shardFor(r.GPU)
		gd := &sh.gpus[r.GPU-sh.lo]
		gd.res = append(gd.res, onlineResident{name: r.Name, end: r.End, seq: r.Seq})
		gd.agg.Add(r.Load)
		k := sh.acquireKey()
		k.gpu = gd
		k.seq = r.Seq
		sh.completions.Schedule(r.End, 0, k)
	}
	for si := range st.d.shards {
		sh := &st.d.shards[si]
		if !sh.waitHist.Restore(state.Hists[si].Wait) || !sh.depthHist.Restore(state.Hists[si].Depth) {
			return nil, fmt.Errorf("core: stream state shard %d histogram bounds mismatch", si)
		}
		// Service histograms were added to the state after wait/depth;
		// restoring an older snapshot (zero-value section) is fine — the
		// bounds check only rejects a populated mismatched section.
		if len(state.Hists[si].Service.Bounds) > 0 && !sh.serviceHist.Restore(state.Hists[si].Service) {
			return nil, fmt.Errorf("core: stream state shard %d service histogram bounds mismatch", si)
		}
	}
	if state.Flight != nil && st.d.fl != nil {
		if err := st.d.fl.Restore(*state.Flight); err != nil {
			return nil, fmt.Errorf("core: stream state flight: %w", err)
		}
	}
	for _, line := range state.Ring {
		st.ring.Push(line)
	}
	if err := st.digest.(encoding.BinaryUnmarshaler).UnmarshalBinary(state.Digest); err != nil {
		return nil, fmt.Errorf("core: stream state digest: %w", err)
	}
	st.d.nextSeq = state.NextSeq
	st.d.waitedNS = state.WaitedNS
	// One flight/arrival sequence number per dispatched event: resume
	// continues the uninterrupted numbering.
	st.d.arrivalSeq = state.Events
	st.stats = state.Stats
	st.n = state.Events
	st.lastAt = state.LastAt
	return st, nil
}
