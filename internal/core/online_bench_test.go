package core

import (
	"testing"

	"gpushare/internal/workflow"
)

// Dispatcher benchmarks at fleet scale: tens of thousands of arrivals
// over hundreds of GPUs, planning only (execution is the simulator's
// cost, measured separately in gpusim). BENCH_dispatcher.json records
// before/after numbers for the incremental-aggregate rewrite.

// fleetBench builds a scheduler plus arrival stream for one configuration.
func fleetBench(b *testing.B, workflows, gpus int, policy Policy) (*Scheduler, []Arrival) {
	b.Helper()
	arrivals, store, err := GenerateFleet(a100x(), FleetSpec{
		Workflows:  workflows,
		TargetGPUs: gpus,
		Seed:       uint64(workflows)*31 + uint64(gpus),
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewScheduler(a100x(), gpus, store, policy)
	if err != nil {
		b.Fatal(err)
	}
	return s, arrivals
}

func BenchmarkScheduleOnline(b *testing.B) {
	configs := []struct {
		name      string
		workflows int
		gpus      int
	}{
		{"2k-16gpu", 2_000, 16},
		{"10k-64gpu", 10_000, 64},
		{"50k-256gpu", 50_000, 256},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			s, arrivals := fleetBench(b, c.workflows, c.gpus, EnergyPolicy())
			// Warm the profile cache: BuildWorkflowProfile allocates per
			// arrival regardless of the dispatcher, and the decision path
			// is what this benchmark isolates.
			if _, err := s.planOnline(arrivals); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := s.planOnline(arrivals)
				if err != nil {
					b.Fatal(err)
				}
				if len(plan.Dispatches) != c.workflows {
					b.Fatalf("dispatched %d of %d", len(plan.Dispatches), c.workflows)
				}
			}
			b.StopTimer()
			nsPerArrival := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(c.workflows)
			b.ReportMetric(nsPerArrival, "ns/arrival")
		})
	}
}

// BenchmarkProbeWorkers measures the parallel decision plane at
// large-fleet shapes: the same arrival stream planned with the serial
// shard scan (w1) and with the probe gang fanned over eight workers
// (w8). Decisions are byte-identical at every width — that is
// TestProbeWorkerIdentity's pin — so the only thing that may differ
// here is wall time. On a single-core host (GOMAXPROCS=1) w8 bounds
// the fan-out overhead instead of showing a speedup: speculative
// probing past the winner is already capped by the scanBest
// cooperative early-exit (shards above a published winner abandon
// after one atomic load), so the residual w8/w1 gap is the per-round
// scheduling cost of waking and draining the helper goroutines on a
// single P. The speedup itself scales with physical cores (up to
// min(workers, shards) once shards spread the probe work evenly).
func BenchmarkProbeWorkers(b *testing.B) {
	configs := []struct {
		name      string
		workflows int
		gpus      int
		shards    int
		workers   int
	}{
		{"200k-1024gpu-w1", 200_000, 1024, 32, 1},
		{"200k-1024gpu-w8", 200_000, 1024, 32, 8},
		{"500k-2048gpu-w1", 500_000, 2048, 64, 1},
		{"500k-2048gpu-w8", 500_000, 2048, 64, 8},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			s, arrivals := fleetBench(b, c.workflows, c.gpus, EnergyPolicy())
			s.Shards = c.shards
			s.ProbeWorkers = c.workers
			if _, err := s.planOnline(arrivals); err != nil { // warm the profile cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := s.planOnline(arrivals)
				if err != nil {
					b.Fatal(err)
				}
				if len(plan.Dispatches) != c.workflows {
					b.Fatalf("dispatched %d of %d", len(plan.Dispatches), c.workflows)
				}
			}
			b.StopTimer()
			nsPerArrival := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(c.workflows)
			b.ReportMetric(nsPerArrival, "ns/arrival")
		})
	}
}

func BenchmarkBuildPlan(b *testing.B) {
	configs := []struct {
		name      string
		workflows int
		gpus      int
	}{
		{"2k-16gpu", 2_000, 16},
		{"10k-64gpu", 10_000, 64},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			arrivals, store, err := GenerateFleet(a100x(), FleetSpec{
				Workflows:  c.workflows,
				TargetGPUs: c.gpus,
				Seed:       uint64(c.workflows)*17 + uint64(c.gpus),
			})
			if err != nil {
				b.Fatal(err)
			}
			wfs := make([]workflow.Workflow, len(arrivals))
			for i, a := range arrivals {
				wfs[i] = a.Workflow
			}
			q, err := workflow.NewPlanningQueue(wfs...)
			if err != nil {
				b.Fatal(err)
			}
			s, err := NewScheduler(a100x(), c.gpus, store, EnergyPolicy())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.BuildPlan(q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := s.BuildPlan(q)
				if err != nil {
					b.Fatal(err)
				}
				if plan.WorkflowCount() != c.workflows {
					b.Fatalf("planned %d of %d", plan.WorkflowCount(), c.workflows)
				}
			}
			b.StopTimer()
			nsPerWorkflow := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(c.workflows)
			b.ReportMetric(nsPerWorkflow, "ns/workflow")
		})
	}
}
