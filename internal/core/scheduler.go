package core

import (
	"fmt"
	"math"
	"sort"

	"gpushare/internal/floats"
	"gpushare/internal/gpu"
	"gpushare/internal/interference"
	"gpushare/internal/obs"
	"gpushare/internal/parallel"
	"gpushare/internal/profile"
	"gpushare/internal/workflow"
)

// Group is one collocation decision: workflows that share a GPU
// concurrently, each as one MPS client.
type Group struct {
	// Members are the collocated workflow profiles, in packing order.
	Members []*WorkflowProfile
	// Partitions are the MPS active-thread fractions per member (1.0
	// when right-sizing is off).
	Partitions []float64
	// Estimate is the interference prediction for the group.
	Estimate interference.Estimate
}

// Names returns the member workflow names.
func (g *Group) Names() []string {
	out := make([]string, len(g.Members))
	for i, m := range g.Members {
		out[i] = m.Workflow.Name
	}
	return out
}

// PredictedDurationS estimates the group's wall time: the longest member
// (members run concurrently), assuming interference-free collocation —
// which is what the packing rules enforce.
func (g *Group) PredictedDurationS() float64 {
	var d float64
	for _, m := range g.Members {
		if m.TotalDurationS > d {
			d = m.TotalDurationS
		}
	}
	return d
}

// Plan is a complete scheduling decision: per GPU, an ordered sequence of
// collocation groups (waves) executed back-to-back.
type Plan struct {
	Policy Policy
	Device gpu.DeviceSpec
	// PerGPU[g] is GPU g's wave sequence.
	PerGPU [][]*Group
}

// Groups returns all groups across GPUs in (gpu, wave) order.
func (p *Plan) Groups() []*Group {
	var out []*Group
	for _, waves := range p.PerGPU {
		out = append(out, waves...)
	}
	return out
}

// WorkflowCount returns the total workflows scheduled.
func (p *Plan) WorkflowCount() int {
	n := 0
	for _, g := range p.Groups() {
		n += len(g.Members)
	}
	return n
}

// Scheduler is the granularity- and interference-aware workflow scheduler.
type Scheduler struct {
	// Device is the GPU model of every device in the pool.
	Device gpu.DeviceSpec
	// GPUs is the pool size (the paper evaluates on small sets of
	// A100Xs); it must be at least 1.
	GPUs int
	// Profiles is the offline profiling campaign to schedule from.
	Profiles *profile.Store
	// Policy selects objective and knobs.
	Policy Policy
	// Workers bounds the worker pool Execute fans independent simulation
	// runs out on (per-GPU wave sequences, per-workflow baseline runs);
	// <= 0 selects GOMAXPROCS. Outcomes are byte-identical at any worker
	// count (DESIGN.md §8).
	Workers int
	// Shards splits the online dispatcher's admission state into that
	// many contiguous GPU ranges, each with its own completion heap and
	// dirty set; <= 0 selects 1 and values beyond GPUs are clamped.
	// Dispatch decisions are byte-identical at any shard count
	// (DESIGN.md §14).
	Shards int
	// ProbeWorkers widens the online dispatcher's per-arrival shard scan
	// over that many persistent workers; <= 1 — the default — scans
	// serially, and values beyond the shard count are clamped. Parallel
	// scanning needs at least two shards to engage. Dispatch decisions,
	// stats, flight trails, and stream digests are byte-identical at any
	// worker count (DESIGN.md §16).
	ProbeWorkers int
	// Cache optionally memoizes simulation runs across Execute calls;
	// nil runs uncached.
	Cache *parallel.Cache
}

// NewScheduler constructs a scheduler with validation.
func NewScheduler(device gpu.DeviceSpec, gpus int, store *profile.Store, policy Policy) (*Scheduler, error) {
	if device.Name == "" {
		device = gpu.MustLookup("A100X")
	}
	if err := device.Validate(); err != nil {
		return nil, err
	}
	if gpus < 1 {
		return nil, fmt.Errorf("core: scheduler needs at least one GPU, got %d", gpus)
	}
	if store == nil {
		return nil, fmt.Errorf("core: scheduler needs a profile store")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{Device: device, GPUs: gpus, Profiles: store, Policy: policy}, nil
}

// BuildPlan selects collocation groups for the queued workflows following
// §IV-B:
//
//  1. workflows with the lowest compute utilization are prioritized for
//     co-scheduling;
//  2. total compute utilization is kept under 100% combined;
//  3. combined maximum memory must fit device memory;
//  4. the client cap comes from the prioritized metric (2 for throughput,
//     the MPS maximum for energy efficiency).
//
// Groups are then placed on the least-loaded GPU (earliest predicted
// finish), and partitions are right-sized when the policy asks for it.
func (s *Scheduler) BuildPlan(q *workflow.Queue) (*Plan, error) {
	if q == nil || q.Len() == 0 {
		return nil, fmt.Errorf("core: empty workflow queue")
	}
	hub := obs.Active()
	defer hub.StartWall("scheduler", "BuildPlan").End()
	items := q.Items()
	profiles := make([]*WorkflowProfile, len(items))
	for i, w := range items {
		wp, err := BuildWorkflowProfile(s.Profiles, w)
		if err != nil {
			return nil, err
		}
		profiles[i] = wp
	}

	// Criterion 1: ascending compute utilization; ties broken by queue
	// position (stable sort) for determinism.
	order := make([]*WorkflowProfile, len(profiles))
	copy(order, profiles)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].AvgSMUtilPct < order[j].AvgSMUtilPct
	})

	// Candidate index: loads pre-extracted in packing order so every
	// admission probe is three additions against the group's aggregate
	// (no per-probe profile views, no Predict rescan).
	clientCap := s.Policy.clientCap(s.Device.MaxMPSClients)
	loads := make([]interference.Load, len(order))
	for i, wp := range order {
		loads[i] = wp.load()
	}
	assigned := make([]bool, len(order))
	// rejectedIn[j] marks the group (by id) that last rejected candidate
	// j: group sums only grow, so a rejection holds for the rest of that
	// group's construction (used by the opposing-power scan, which has no
	// cursor).
	rejectedIn := make([]int, len(order))
	for i := range rejectedIn {
		rejectedIn[i] = -1
	}
	agg := interference.NewAggregate(s.Device)
	var groups []*Group
	for seedIdx, seed := range order {
		if assigned[seedIdx] {
			continue
		}
		g := &Group{Members: []*WorkflowProfile{seed}}
		assigned[seedIdx] = true
		agg.Reset()
		agg.Add(loads[seedIdx])
		// First-fit cursor: everything before the seed is assigned, and a
		// candidate the growing group rejected once stays rejected, so the
		// scan never revisits an index within one group.
		cursor := seedIdx + 1
		groupID := len(groups)
		for len(g.Members) < clientCap {
			var cand int
			if s.Policy.PairOpposingPower {
				cand = s.pickOpposingPower(order, loads, assigned, rejectedIn, groupID, &agg, g.Members)
			} else {
				cand = s.pickFirstFit(loads, assigned, &agg, &cursor)
			}
			if cand < 0 {
				break
			}
			g.Members = append(g.Members, order[cand])
			assigned[cand] = true
			agg.Add(loads[cand])
		}
		g.Estimate = s.estimate(g.Members)
		s.rightSize(g)
		groups = append(groups, g)
	}

	// Place groups on the least-loaded GPU, longest groups first so the
	// pool balances (LPT heuristic); ties break on GPU index.
	sort.SliceStable(groups, func(i, j int) bool {
		return groups[i].PredictedDurationS() > groups[j].PredictedDurationS()
	})
	plan := &Plan{Policy: s.Policy, Device: s.Device, PerGPU: make([][]*Group, s.GPUs)}
	load := make([]float64, s.GPUs)
	for _, g := range groups {
		best := 0
		for i := 1; i < s.GPUs; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		plan.PerGPU[best] = append(plan.PerGPU[best], g)
		load[best] += g.PredictedDurationS()
	}

	// Collocation-group occupancy: how full the packer ran each group.
	// Group composition is a pure function of the queue and policy, so
	// these are deterministic.
	hub.Counter("sched_plans_total").Inc()
	hub.Counter("sched_groups_total").Add(int64(len(groups)))
	occ := hub.Histogram("sched_group_occupancy", groupOccupancyBounds)
	for _, g := range groups {
		occ.Observe(int64(len(g.Members)))
	}
	return plan, nil
}

// groupOccupancyBounds bucket collocation-group member counts (the MPS
// client limit is 48 on the paper's device).
var groupOccupancyBounds = []int64{1, 2, 3, 4, 6, 8, 16, 32}

// admits applies criteria 2 and 3 to an O(1) probe outcome: capacity
// violations (OOM) are never acceptable; other interference is tolerated
// only under AllowInterferingPairs. Identical to the retired fits()
// check, which recomputed the same sums with a full Predict rescan.
func (s *Scheduler) admits(out interference.Outcome) bool {
	if out.Capacity {
		return false // OOM is never acceptable
	}
	if s.Policy.AllowInterferingPairs {
		return true
	}
	return !out.Interferes()
}

// pickFirstFit selects the first (lowest-utilization) candidate the
// group's aggregate admits, resuming from cursor: rejections are final
// within a group (sums only grow), so each group scans the candidate
// index at most once end to end.
func (s *Scheduler) pickFirstFit(loads []interference.Load, assigned []bool, agg *interference.Aggregate, cursor *int) int {
	for j := *cursor; j < len(loads); j++ {
		if assigned[j] {
			continue
		}
		if s.admits(agg.Admit(loads[j])) {
			*cursor = j + 1
			return j
		}
	}
	*cursor = len(loads)
	return -1
}

// pickOpposingPower selects — under recommendation 3 — the fitting
// candidate whose predicted average power is farthest from the group's
// current mean ("pair workflows with opposing power profiles"). The scan
// order and strict-improvement tie-break match the retired pickCandidate
// exactly; rejectedIn only skips candidates this group already rejected.
func (s *Scheduler) pickOpposingPower(order []*WorkflowProfile, loads []interference.Load, assigned []bool, rejectedIn []int, groupID int, agg *interference.Aggregate, members []*WorkflowProfile) int {
	var groupPower float64
	for _, m := range members {
		groupPower += m.avgPowerW()
	}
	groupPower /= float64(len(members))
	best := -1
	bestDelta := -1.0
	for j := range order {
		if assigned[j] || rejectedIn[j] == groupID {
			continue
		}
		if !s.admits(agg.Admit(loads[j])) {
			rejectedIn[j] = groupID
			continue
		}
		delta := order[j].avgPowerW() - groupPower
		if delta < 0 {
			delta = -delta
		}
		if delta > bestDelta {
			best, bestDelta = j, delta
		}
	}
	return best
}

// estimate runs the interference predictor over a member set and counts
// the outcome. Prediction outcomes are pure functions of the profiles,
// so the counters are deterministic.
func (s *Scheduler) estimate(members []*WorkflowProfile) interference.Estimate {
	views := make([]*profile.TaskProfile, len(members))
	for i, m := range members {
		views[i] = m.profileView()
	}
	est := interference.Predict(s.Device, views)
	if hub := obs.Active(); hub != nil {
		hub.Counter("sched_predict_total").Inc()
		if est.Interferes {
			hub.Counter("sched_predict_interfering_total").Inc()
		}
		if est.Has(interference.Capacity) {
			hub.Counter("sched_predict_capacity_total").Inc()
		}
	}
	return est
}

// rightSize assigns each member an MPS partition covering its predicted
// peak active compute demand plus headroom, rounded up to the 10% steps
// the paper sweeps in Figure 1. Without right-sizing every member gets
// the full device.
func (s *Scheduler) rightSize(g *Group) {
	g.Partitions = make([]float64, len(g.Members))
	for i := range g.Partitions {
		g.Partitions[i] = 1
	}
	if !s.Policy.RightSizePartitions || len(g.Members) < 2 {
		return
	}
	headroom := s.Policy.PartitionHeadroom
	if floats.IsZero(headroom) {
		headroom = 1.2
	}
	for i, m := range g.Members {
		// A partition must cover both the compute demand and the
		// warp-slot fill of the member's kernels: below either, the
		// member dilates (Figure 1's red-circle region).
		need := math.Max(m.PeakActiveComputePct/100, m.PeakFillFraction) * headroom
		p := math.Ceil(need*10) / 10
		if p < 0.1 {
			p = 0.1
		}
		if p > 1 {
			p = 1
		}
		g.Partitions[i] = p
	}
}
