package core

import (
	"fmt"

	"gpushare/internal/gpusim"
	"gpushare/internal/metrics"
	"gpushare/internal/workflow"
)

// DAG scheduling: workflows with data dependencies execute level by
// level; within a level everything is independent and the usual
// interference-aware packing applies. Level boundaries are barriers
// across the whole pool (a dependent workflow's inputs come from its
// predecessors' outputs).

// DAGOutcome is the evaluation of a dependency-aware schedule.
type DAGOutcome struct {
	// LevelOutcomes holds each topological level's outcome in order.
	LevelOutcomes []*Outcome
	// Sharing and Sequential aggregate across levels (barrier semantics:
	// makespans add).
	Sharing    metrics.RunSummary
	Sequential metrics.RunSummary
	// Relative compares the aggregates.
	Relative metrics.Relative
}

// ScheduleDAG builds and executes an interference-aware plan per
// topological level, with a pool-wide barrier between levels, and
// compares against sequential execution of the same DAG (which is simply
// all workflows in topological order, one at a time).
func (s *Scheduler) ScheduleDAG(dag *workflow.DAG, simCfg gpusim.Config) (*DAGOutcome, error) {
	if dag == nil || dag.Len() == 0 {
		return nil, fmt.Errorf("core: empty DAG")
	}
	levels, err := dag.Levels()
	if err != nil {
		return nil, err
	}

	out := &DAGOutcome{}
	for i, level := range levels {
		q, err := workflow.NewQueue(level...)
		if err != nil {
			return nil, fmt.Errorf("core: DAG level %d: %w", i, err)
		}
		plan, err := s.BuildPlan(q)
		if err != nil {
			return nil, fmt.Errorf("core: DAG level %d: %w", i, err)
		}
		cfg := simCfg
		cfg.Seed = simCfg.Seed + uint64(i)*6151
		cfg.Mode = gpusim.ShareMPS
		lo, err := s.Execute(plan, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: DAG level %d: %w", i, err)
		}
		out.LevelOutcomes = append(out.LevelOutcomes, lo)

		out.Sharing.MakespanS += lo.Sharing.MakespanS
		out.Sharing.EnergyJ += lo.Sharing.EnergyJ
		out.Sharing.Tasks += lo.Sharing.Tasks
		out.Sharing.CappedFraction += lo.Sharing.CappedFraction * lo.Sharing.MakespanS
		out.Sequential.MakespanS += lo.Sequential.MakespanS
		out.Sequential.EnergyJ += lo.Sequential.EnergyJ
		out.Sequential.Tasks += lo.Sequential.Tasks
		out.Sequential.CappedFraction += lo.Sequential.CappedFraction * lo.Sequential.MakespanS
	}
	if out.Sharing.MakespanS > 0 {
		out.Sharing.CappedFraction /= out.Sharing.MakespanS
		out.Sharing.AvgPowerW = out.Sharing.EnergyJ / out.Sharing.MakespanS / float64(s.GPUs)
	}
	if out.Sequential.MakespanS > 0 {
		out.Sequential.CappedFraction /= out.Sequential.MakespanS
		out.Sequential.AvgPowerW = out.Sequential.EnergyJ / out.Sequential.MakespanS / float64(s.GPUs)
	}
	rel, err := metrics.Compare(out.Sequential, out.Sharing)
	if err != nil {
		return nil, err
	}
	out.Relative = rel
	return out, nil
}
