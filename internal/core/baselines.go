package core

import (
	"fmt"

	"gpushare/internal/gpusim"
	"gpushare/internal/workflow"
)

// Baseline planners the evaluation compares the interference-aware
// scheduler against.

// SequentialPlan builds the paper's sequential baseline as an explicit
// plan: every workflow is its own single-member group, in queue order —
// no collocation at all.
func (s *Scheduler) SequentialPlan(q *workflow.Queue) (*Plan, error) {
	if q == nil || q.Len() == 0 {
		return nil, fmt.Errorf("core: empty workflow queue")
	}
	plan := &Plan{Policy: s.Policy, Device: s.Device, PerGPU: make([][]*Group, s.GPUs)}
	load := make([]float64, s.GPUs)
	for _, w := range q.Items() {
		wp, err := BuildWorkflowProfile(s.Profiles, w)
		if err != nil {
			return nil, err
		}
		g := &Group{Members: []*WorkflowProfile{wp}, Partitions: []float64{1}}
		g.Estimate = s.estimate(g.Members)
		best := 0
		for i := 1; i < s.GPUs; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		plan.PerGPU[best] = append(plan.PerGPU[best], g)
		load[best] += wp.TotalDurationS
	}
	return plan, nil
}

// NaiveFIFOPlan builds the interference-oblivious baseline: consecutive
// queue entries are grouped in arrival order up to groupSize clients,
// with no utilization sorting and no SM/bandwidth interference checks.
// Memory capacity is still respected (a real launcher checks allocation
// size before dispatch); groups that cannot fit split greedily.
func (s *Scheduler) NaiveFIFOPlan(q *workflow.Queue, groupSize int) (*Plan, error) {
	if q == nil || q.Len() == 0 {
		return nil, fmt.Errorf("core: empty workflow queue")
	}
	if groupSize < 1 {
		return nil, fmt.Errorf("core: naive group size must be >= 1, got %d", groupSize)
	}
	if groupSize > s.Device.MaxMPSClients {
		groupSize = s.Device.MaxMPSClients
	}
	plan := &Plan{Policy: s.Policy, Device: s.Device, PerGPU: make([][]*Group, s.GPUs)}
	load := make([]float64, s.GPUs)
	var cur *Group
	var curMem int64
	flush := func() {
		if cur == nil {
			return
		}
		cur.Estimate = s.estimate(cur.Members)
		cur.Partitions = make([]float64, len(cur.Members))
		for i := range cur.Partitions {
			cur.Partitions[i] = 1
		}
		best := 0
		for i := 1; i < s.GPUs; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		plan.PerGPU[best] = append(plan.PerGPU[best], cur)
		load[best] += cur.PredictedDurationS()
		cur, curMem = nil, 0
	}
	for _, w := range q.Items() {
		wp, err := BuildWorkflowProfile(s.Profiles, w)
		if err != nil {
			return nil, err
		}
		if cur != nil &&
			(len(cur.Members) >= groupSize || curMem+wp.MaxMemMiB > s.Device.MemoryMiB) {
			flush()
		}
		if cur == nil {
			cur = &Group{}
		}
		cur.Members = append(cur.Members, wp)
		curMem += wp.MaxMemMiB
	}
	flush()
	return plan, nil
}

// ExecuteTimeSliced runs a plan under the default time-sliced scheduler
// instead of MPS — the second sharing mechanism of Figure 2.
func (s *Scheduler) ExecuteTimeSliced(plan *Plan, simCfg gpusim.Config) (*Outcome, error) {
	simCfg.Mode = gpusim.ShareTimeSlice
	return s.Execute(plan, simCfg)
}
