package core

import (
	"testing"

	"gpushare/internal/gpusim"
	"gpushare/internal/simtime"
)

func at(s float64) simtime.Time { return simtime.Zero.Add(simtime.FromSeconds(s)) }

func TestScheduleOnlineBasics(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("a", "AthenaPK", "4x", 1)},
		{At: at(5), Workflow: wfOne("b", "AthenaPK", "4x", 1)},
		{At: at(10), Workflow: wfOne("c", "Kripke", "4x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Dispatches) != 3 {
		t.Fatalf("dispatches = %d", len(out.Dispatches))
	}
	// All three are mutually compatible (30+30+63 > 100? 30.3+30.3+63.2
	// = 123.8 — the Kripke arrival must wait or... the rules admit only
	// ≤100%: a+b = 60.6, +c = 123.8 → c waits for a completion).
	last := out.Dispatches[2]
	if last.Workflow != "c" {
		t.Fatalf("dispatch order: %+v", out.Dispatches)
	}
	if last.WaitedS <= 0 {
		t.Fatal("Kripke should have queued behind the AthenaPK pair")
	}
	// Sharing must beat the arrival-respecting sequential baseline.
	if out.Relative.Throughput <= 1 {
		t.Fatalf("online sharing throughput %v", out.Relative.Throughput)
	}
	if out.Sharing.Tasks != 3 || out.Sequential.Tasks != 3 {
		t.Fatalf("task counts %d/%d", out.Sharing.Tasks, out.Sequential.Tasks)
	}
	if out.MaxWaitS < out.MeanWaitS {
		t.Fatal("wait stats inconsistent")
	}
}

func TestScheduleOnlineNoArrivals(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	if _, err := s.ScheduleOnline(nil, gpusim.Config{}); err == nil {
		t.Fatal("empty arrivals accepted")
	}
}

func TestScheduleOnlineRespectsArrivalTimes(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	arrivals := []Arrival{
		{At: at(100), Workflow: wfOne("late", "Cholla-Gravity", "1x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatches[0].At != at(100) {
		t.Fatalf("dispatched at %v, want arrival time", out.Dispatches[0].At)
	}
	if out.Sharing.MakespanS < 100 {
		t.Fatalf("makespan %v ignores arrival offset", out.Sharing.MakespanS)
	}
}

func TestScheduleOnlineInterferenceGating(t *testing.T) {
	// Two LAMMPS arrivals: the second must wait for the first (SM rule),
	// landing sequentially even though both arrive at t=0.
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("l1", "LAMMPS", "4x", 1)},
		{At: at(0), Workflow: wfOne("l2", "LAMMPS", "4x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatches[1].WaitedS <= 0 {
		t.Fatal("second LAMMPS dispatched immediately despite the SM rule")
	}
	if len(out.Dispatches[1].RunningAlongside) != 0 {
		t.Fatalf("second LAMMPS should run alone, alongside %v",
			out.Dispatches[1].RunningAlongside)
	}
}

func TestScheduleOnlineMultiGPU(t *testing.T) {
	// With two GPUs, the two LAMMPS workflows go to different devices
	// with no waiting.
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 2, store, EnergyPolicy())
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("l1", "LAMMPS", "4x", 1)},
		{At: at(0), Workflow: wfOne("l2", "LAMMPS", "4x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatches[0].GPU == out.Dispatches[1].GPU {
		t.Fatal("second GPU unused")
	}
	for _, d := range out.Dispatches {
		if d.WaitedS != 0 {
			t.Fatalf("waiting despite free GPU: %+v", d)
		}
	}
}

func TestScheduleOnlineCapacitySerializes(t *testing.T) {
	// Two 61 GiB WarpX workflows cannot coexist: the capacity rule must
	// serialize the second behind the first rather than deadlock.
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("w1", "WarpX", "1x", 1)},
		{At: at(0), Workflow: wfOne("w2", "WarpX", "1x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatches[1].WaitedS <= 0 {
		t.Fatal("second WarpX must wait for memory")
	}
	if out.Sharing.Tasks != 2 {
		t.Fatalf("tasks = %d", out.Sharing.Tasks)
	}
}
