package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/interference"
	"gpushare/internal/profile"
	"gpushare/internal/simtime"
)

func at(s float64) simtime.Time { return simtime.Zero.Add(simtime.FromSeconds(s)) }

func TestScheduleOnlineBasics(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("a", "AthenaPK", "4x", 1)},
		{At: at(5), Workflow: wfOne("b", "AthenaPK", "4x", 1)},
		{At: at(10), Workflow: wfOne("c", "Kripke", "4x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Dispatches) != 3 {
		t.Fatalf("dispatches = %d", len(out.Dispatches))
	}
	// All three are mutually compatible (30+30+63 > 100? 30.3+30.3+63.2
	// = 123.8 — the Kripke arrival must wait or... the rules admit only
	// ≤100%: a+b = 60.6, +c = 123.8 → c waits for a completion).
	last := out.Dispatches[2]
	if last.Workflow != "c" {
		t.Fatalf("dispatch order: %+v", out.Dispatches)
	}
	if last.WaitedS <= 0 {
		t.Fatal("Kripke should have queued behind the AthenaPK pair")
	}
	// Sharing must beat the arrival-respecting sequential baseline.
	if out.Relative.Throughput <= 1 {
		t.Fatalf("online sharing throughput %v", out.Relative.Throughput)
	}
	if out.Sharing.Tasks != 3 || out.Sequential.Tasks != 3 {
		t.Fatalf("task counts %d/%d", out.Sharing.Tasks, out.Sequential.Tasks)
	}
	if out.MaxWaitS < out.MeanWaitS {
		t.Fatal("wait stats inconsistent")
	}
}

func TestScheduleOnlineNoArrivals(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	if _, err := s.ScheduleOnline(nil, gpusim.Config{}); !errors.Is(err, ErrNoArrivals) {
		t.Fatalf("empty arrivals: err = %v, want ErrNoArrivals", err)
	}
}

// TestEmptyInputEdgeCases table-tests the planner and fleet generator on
// degenerate inputs: each must fail with its typed validation error —
// never panic, and never reach the wait-stat divisions with zero
// dispatches (which would emit NaN MeanWaitS/MaxWaitS).
func TestEmptyInputEdgeCases(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	cases := []struct {
		name string
		run  func() error
		want error
	}{
		{"PlanOnline zero arrivals", func() error {
			_, err := s.PlanOnline(nil)
			return err
		}, ErrNoArrivals},
		{"PlanOnline empty slice", func() error {
			_, err := s.PlanOnline([]Arrival{})
			return err
		}, ErrNoArrivals},
		{"GenerateFleet zero workflows", func() error {
			_, _, err := GenerateFleet(a100x(), FleetSpec{Workflows: 0})
			return err
		}, ErrFleetNoWorkflows},
		{"GenerateFleet negative GPU target", func() error {
			_, _, err := GenerateFleet(a100x(), FleetSpec{Workflows: 4, TargetGPUs: -1})
			return err
		}, ErrFleetNoGPUs},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.run(); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

// TestRetireIdentityWithCollidingEnds is the regression test for the
// same-instant retire ambiguity: several residents on one GPU share a
// quantized finish instant, and each completion event must remove
// exactly the resident it was scheduled for — not the first list entry
// with end <= now. The surviving resident set (and the re-folded
// aggregate) identify the removals.
func TestRetireIdentityWithCollidingEnds(t *testing.T) {
	var stats DispatchStats
	d := testDispatcher(a100x(), 1, 1, &stats)

	collide := at(10)
	// Three residents, two sharing the finish instant; the survivor sits
	// between the colliding pair, so a first-match index scan and
	// identity-based removal disagree on which entries remain if either
	// collided event retires the wrong resident.
	d.place(0, interference.Load{SMPct: 10, BWPct: 1, MemMiB: 100}, "early-a", collide)
	d.place(0, interference.Load{SMPct: 20, BWPct: 2, MemMiB: 200}, "late", at(50))
	d.place(0, interference.Load{SMPct: 30, BWPct: 3, MemMiB: 300}, "early-b", collide)

	d.retire(collide)
	gd := &d.shards[0].gpus[0]
	if len(gd.res) != 1 || gd.res[0].name != "late" {
		t.Fatalf("survivors after colliding retirement = %+v, want only %q", gd.res, "late")
	}
	if stats.Completions != 2 {
		t.Fatalf("completions = %d, want 2", stats.Completions)
	}
	// The aggregate must hold exactly the survivor's load, re-folded.
	if gd.agg.Len() != 1 || gd.agg.At(0) != (interference.Load{SMPct: 20, BWPct: 2, MemMiB: 200}) {
		t.Fatalf("aggregate after retirement holds %d members: %+v", gd.agg.Len(), gd.agg)
	}
	// And the popped events' payload keys must have been recycled.
	if len(d.shards[0].keyFree) != 2 {
		t.Fatalf("key freelist holds %d entries, want 2", len(d.shards[0].keyFree))
	}
}

// TestPlanOnlineCollidingEndsStream drives colliding completion instants
// through the public planner: identical workflows arriving together
// produce identical predicted ends on the same GPU. The plan must stay
// consistent (every arrival dispatched exactly once) — and the golden
// dispatch logs pin that the identity-based retire path reproduces the
// index-scan path byte for byte.
func TestPlanOnlineCollidingEndsStream(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	var arrivals []Arrival
	for i := 0; i < 6; i++ {
		// Three waves of two identical workflows: each wave's pair shares
		// an arrival instant and a duration, hence a finish instant.
		arrivals = append(arrivals, Arrival{
			At:       at(float64(i/2) * 5),
			Workflow: wfOne(fmt.Sprintf("twin-%d", i), "AthenaPK", "4x", 1),
		})
	}
	plan, err := s.PlanOnline(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Dispatches) != len(arrivals) {
		t.Fatalf("dispatches = %d, want %d", len(plan.Dispatches), len(arrivals))
	}
	seen := map[string]int{}
	for _, d := range plan.Dispatches {
		seen[d.Workflow]++
	}
	for _, a := range arrivals {
		if seen[a.Workflow.Name] != 1 {
			t.Fatalf("workflow %s dispatched %d times", a.Workflow.Name, seen[a.Workflow.Name])
		}
	}
}

func TestScheduleOnlineRespectsArrivalTimes(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	arrivals := []Arrival{
		{At: at(100), Workflow: wfOne("late", "Cholla-Gravity", "1x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatches[0].At != at(100) {
		t.Fatalf("dispatched at %v, want arrival time", out.Dispatches[0].At)
	}
	if out.Sharing.MakespanS < 100 {
		t.Fatalf("makespan %v ignores arrival offset", out.Sharing.MakespanS)
	}
}

func TestScheduleOnlineInterferenceGating(t *testing.T) {
	// Two LAMMPS arrivals: the second must wait for the first (SM rule),
	// landing sequentially even though both arrive at t=0.
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("l1", "LAMMPS", "4x", 1)},
		{At: at(0), Workflow: wfOne("l2", "LAMMPS", "4x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatches[1].WaitedS <= 0 {
		t.Fatal("second LAMMPS dispatched immediately despite the SM rule")
	}
	if len(out.Dispatches[1].RunningAlongside) != 0 {
		t.Fatalf("second LAMMPS should run alone, alongside %v",
			out.Dispatches[1].RunningAlongside)
	}
}

func TestScheduleOnlineMultiGPU(t *testing.T) {
	// With two GPUs, the two LAMMPS workflows go to different devices
	// with no waiting.
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 2, store, EnergyPolicy())
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("l1", "LAMMPS", "4x", 1)},
		{At: at(0), Workflow: wfOne("l2", "LAMMPS", "4x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatches[0].GPU == out.Dispatches[1].GPU {
		t.Fatal("second GPU unused")
	}
	for _, d := range out.Dispatches {
		if d.WaitedS != 0 {
			t.Fatalf("waiting despite free GPU: %+v", d)
		}
	}
}

func TestScheduleOnlineAllowInterferingPairs(t *testing.T) {
	// Under recommendation 2 the SM rule is advisory: two LAMMPS
	// workflows that the default policy serializes (see
	// TestScheduleOnlineInterferenceGating) collocate immediately.
	store := suiteStore(t)
	policy := EnergyPolicy()
	policy.AllowInterferingPairs = true
	s, _ := NewScheduler(a100x(), 1, store, policy)
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("l1", "LAMMPS", "4x", 1)},
		{At: at(0), Workflow: wfOne("l2", "LAMMPS", "4x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	second := out.Dispatches[1]
	if second.WaitedS != 0 {
		t.Fatalf("interference-tolerant dispatch still waited %vs", second.WaitedS)
	}
	if len(second.RunningAlongside) != 1 || second.RunningAlongside[0] != "l1" {
		t.Fatalf("second LAMMPS alongside %v, want [l1]", second.RunningAlongside)
	}
}

func TestPlanOnlineAllowInterferingNeverOOMs(t *testing.T) {
	// AllowInterferingPairs tolerates compute/bandwidth violations but
	// never capacity: two 61 GiB WarpX workflows still serialize.
	store := suiteStore(t)
	policy := EnergyPolicy()
	policy.AllowInterferingPairs = true
	s, _ := NewScheduler(a100x(), 1, store, policy)
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("w1", "WarpX", "1x", 1)},
		{At: at(0), Workflow: wfOne("w2", "WarpX", "1x", 1)},
	}
	plan, err := s.PlanOnline(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Dispatches[1].WaitedS <= 0 {
		t.Fatal("second WarpX must wait for memory even under AllowInterferingPairs")
	}
	if plan.Stats.Waits == 0 {
		t.Fatal("wait loop never ran")
	}
}

// oversizedStore profiles a well-behaved workload plus one whose memory
// footprint exceeds the device, for exercising the no-fit error path.
func oversizedStore(t *testing.T, device gpu.DeviceSpec) *profile.Store {
	t.Helper()
	store := profile.NewStore()
	for _, p := range []*profile.TaskProfile{
		{Workload: "small", Size: "1x", AvgSMUtilPct: 20, AvgBWUtilPct: 10,
			MaxMemMiB: 1024, DurationS: 30, EnergyJ: 3000},
		{Workload: "huge", Size: "1x", AvgSMUtilPct: 20, AvgBWUtilPct: 10,
			MaxMemMiB: device.MemoryMiB + 1, DurationS: 30, EnergyJ: 3000},
	} {
		if err := store.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func TestPlanOnlineNoFitMidQueue(t *testing.T) {
	// A workflow that cannot fit an empty GPU (solo capacity violation)
	// must fail the plan with a diagnostic, not spin the wait loop —
	// including mid-queue, after earlier arrivals dispatched fine.
	device := a100x()
	s, err := NewScheduler(device, 2, oversizedStore(t, device), EnergyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("ok-1", "small", "1x", 1)},
		{At: at(1), Workflow: wfOne("ok-2", "small", "1x", 1)},
		{At: at(2), Workflow: wfOne("doomed", "huge", "1x", 1)},
		{At: at(3), Workflow: wfOne("ok-3", "small", "1x", 1)},
	}
	_, err = s.PlanOnline(arrivals)
	if err == nil {
		t.Fatal("oversized workflow admitted")
	}
	if !strings.Contains(err.Error(), "doomed") ||
		!strings.Contains(err.Error(), "cannot be admitted") {
		t.Fatalf("error %q does not identify the doomed workflow", err)
	}
}

func TestScheduleOnlineCapacitySerializes(t *testing.T) {
	// Two 61 GiB WarpX workflows cannot coexist: the capacity rule must
	// serialize the second behind the first rather than deadlock.
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	arrivals := []Arrival{
		{At: at(0), Workflow: wfOne("w1", "WarpX", "1x", 1)},
		{At: at(0), Workflow: wfOne("w2", "WarpX", "1x", 1)},
	}
	out, err := s.ScheduleOnline(arrivals, gpusim.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatches[1].WaitedS <= 0 {
		t.Fatal("second WarpX must wait for memory")
	}
	if out.Sharing.Tasks != 2 {
		t.Fatalf("tasks = %d", out.Sharing.Tasks)
	}
}
