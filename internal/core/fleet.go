package core

import (
	"errors"
	"fmt"
	"math"

	"gpushare/internal/gpu"
	"gpushare/internal/profile"
	"gpushare/internal/simtime"
	"gpushare/internal/workflow"
	"gpushare/internal/xrand"
)

// Typed validation errors for fleet generation: a stream with no
// workflows or a non-positive GPU target has no meaningful output, and
// silently defaulting would hide caller bugs (a computed-zero shape is
// almost always an arithmetic mistake, not a request for the defaults).
var (
	// ErrFleetNoWorkflows rejects FleetSpec.Workflows < 1.
	ErrFleetNoWorkflows = errors.New("core: fleet needs at least one workflow")
	// ErrFleetNoGPUs rejects FleetSpec.TargetGPUs < 0 (zero still selects
	// the documented default of 64).
	ErrFleetNoGPUs = errors.New("core: fleet needs a non-negative GPU target")
)

// Fleet generation: a deterministic synthetic arrival stream sized for
// dispatcher benchmarks (tens of thousands of workflows over hundreds of
// GPUs). Real traces at that scale do not fit the repo, so the generator
// fabricates a small set of profile archetypes and draws single-task
// workflows from them with exponential inter-arrival gaps — the shape
// fleet admission control has to keep up with (arXiv:2105.10312,
// arXiv:2505.08562 both argue per-arrival decisions must stay cheap at
// exactly this scale).

// FleetSpec parameterizes a synthetic arrival stream.
type FleetSpec struct {
	// Workflows is the number of arrivals to generate (at least 1).
	Workflows int
	// Archetypes is the number of distinct synthetic task profiles the
	// stream draws from; zero selects 16.
	Archetypes int
	// MeanDurationS is the mean predicted solo duration; zero selects
	// 120 s (the paper's workflows run seconds to minutes).
	MeanDurationS float64
	// MeanGapS is the mean inter-arrival gap. Zero derives a gap that
	// keeps TargetGPUs devices at roughly 80% of their collocation
	// capacity under the energy policy (~3 residents per GPU).
	MeanGapS float64
	// TargetGPUs sizes the derived gap when MeanGapS is zero; zero
	// selects 64.
	TargetGPUs int
	// Seed drives the xrand stream; equal specs generate byte-identical
	// fleets.
	Seed uint64
}

// GenerateFleet fabricates a deterministic arrival stream plus the profile
// store the scheduler plans it from. The returned arrivals are sorted by
// arrival time (gaps are non-negative) and reference only profiles present
// in the store, so they feed PlanOnline directly. It is NewFleetSource
// drained into a slice; streaming callers that must not hold the whole
// fleet use the source directly (the two are byte-identical draw for
// draw, pinned by TestFleetSourceMatchesGenerateFleet).
func GenerateFleet(device gpu.DeviceSpec, spec FleetSpec) ([]Arrival, *profile.Store, error) {
	src, store, err := NewFleetSource(device, spec)
	if err != nil {
		return nil, nil, err
	}
	arrivals := make([]Arrival, 0, spec.Workflows)
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		arrivals = append(arrivals, a)
	}
	return arrivals, store, nil
}

// FleetSource lazily yields the arrival stream GenerateFleet would
// build, one arrival at a time, so a million-arrival ingest never holds
// more than the arrival in flight. The RNG draw order is exactly
// GenerateFleet's (archetype fabrication up front, then per arrival one
// Intn and one Float64), so equal specs yield byte-identical streams
// through either path.
type FleetSource struct {
	rng   *xrand.Source
	names []string
	gap   float64
	total int
	i     int
	now   simtime.Time
}

// NewFleetSource validates the spec, fabricates the archetype profile
// store, and returns the lazy arrival source.
func NewFleetSource(device gpu.DeviceSpec, spec FleetSpec) (*FleetSource, *profile.Store, error) {
	if spec.Workflows < 1 {
		return nil, nil, fmt.Errorf("%w, got %d", ErrFleetNoWorkflows, spec.Workflows)
	}
	if spec.TargetGPUs < 0 {
		return nil, nil, fmt.Errorf("%w, got %d", ErrFleetNoGPUs, spec.TargetGPUs)
	}
	if err := device.Validate(); err != nil {
		return nil, nil, err
	}
	archetypes := spec.Archetypes
	if archetypes <= 0 {
		archetypes = 16
	}
	meanDur := spec.MeanDurationS
	if meanDur <= 0 {
		meanDur = 120
	}
	gap := spec.MeanGapS
	if gap <= 0 {
		gpus := spec.TargetGPUs
		if gpus <= 0 {
			gpus = 64
		}
		// ~3 co-residents per GPU under the additive SM rule, at 80%
		// occupancy: concurrency = meanDur/gap = 3 * gpus * 0.8.
		gap = meanDur / (3 * float64(gpus) * 0.8)
	}

	rng := xrand.New(spec.Seed)
	store := profile.NewStore()
	names := make([]string, archetypes)
	for k := 0; k < archetypes; k++ {
		names[k] = fmt.Sprintf("fleet-a%03d", k)
		sm := 8 + 50*rng.Float64() // 8..58% SM: groups of 2-6 fit the rule
		bw := 5 + 40*rng.Float64() // 5..45% bandwidth
		mem := 2048 + int64(18432*rng.Float64())
		dur := meanDur * (0.3 + 1.4*rng.Float64())
		// Idle share consistent with the SM average: duty must cover it.
		idle := rng.Float64() * (90 - sm)
		power := device.IdlePowerW + 2.1*sm + 0.6*bw
		if err := store.Add(&profile.TaskProfile{
			Workload:          names[k],
			Size:              "1x",
			Device:            device.Name,
			DurationS:         dur,
			MaxMemMiB:         mem,
			AvgSMUtilPct:      sm,
			AvgBWUtilPct:      bw,
			AvgPowerW:         power,
			EnergyJ:           power * dur,
			GPUIdlePct:        idle,
			TheoreticalOccPct: 50,
			AchievedOccPct:    35,
			SizeFactor:        1,
		}); err != nil {
			return nil, nil, err
		}
	}

	return &FleetSource{
		rng:   rng,
		names: names,
		gap:   gap,
		total: spec.Workflows,
		now:   simtime.Zero,
	}, store, nil
}

// Next yields the next arrival; ok is false once the stream is
// exhausted.
func (f *FleetSource) Next() (a Arrival, ok bool) {
	if f.i >= f.total {
		return Arrival{}, false
	}
	k := f.rng.Intn(len(f.names))
	a = Arrival{
		At: f.now,
		Workflow: workflow.Workflow{
			Name: fmt.Sprintf("fleet-%06d-a%03d", f.i, k),
			Tasks: []workflow.Task{
				{Benchmark: f.names[k], Size: "1x", Iterations: 1},
			},
		},
	}
	// Exponential inter-arrival gap with mean gap seconds.
	u := f.rng.Float64()
	f.now = f.now.Add(simtime.FromSeconds(-f.gap * math.Log(1-u)))
	f.i++
	return a, true
}

// Remaining reports how many arrivals the source has yet to yield.
func (f *FleetSource) Remaining() int { return f.total - f.i }
