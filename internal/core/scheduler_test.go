package core

import (
	"strings"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/interference"
	"gpushare/internal/profile"
	"gpushare/internal/workflow"
)

func a100x() gpu.DeviceSpec { return gpu.MustLookup("A100X") }

// suiteStore profiles the benchmarks the tests schedule.
func suiteStore(t *testing.T) *profile.Store {
	t.Helper()
	pr := &profile.Profiler{Config: gpusim.Config{Seed: 1}}
	store, err := pr.ProfileSuite([]string{"1x", "4x"})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func wfOne(name, bench, size string, iters int) workflow.Workflow {
	return workflow.Workflow{
		Name:  name,
		Tasks: []workflow.Task{{Benchmark: bench, Size: size, Iterations: iters}},
	}
}

func queueOf(t *testing.T, wfs ...workflow.Workflow) *workflow.Queue {
	t.Helper()
	q, err := workflow.NewQueue(wfs...)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestBuildWorkflowProfile(t *testing.T) {
	store := suiteStore(t)
	w := workflow.Workflow{Name: "mixed", Tasks: []workflow.Task{
		{Benchmark: "AthenaPK", Size: "4x", Iterations: 2},
		{Benchmark: "LAMMPS", Size: "4x", Iterations: 1},
	}}
	wp, err := BuildWorkflowProfile(store, w)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := store.Get("AthenaPK", "4x")
	l, _ := store.Get("LAMMPS", "4x")
	wantDur := 2*a.DurationS + l.DurationS
	if rel := (wp.TotalDurationS - wantDur) / wantDur; rel > 0.001 || rel < -0.001 {
		t.Fatalf("duration %v vs %v", wp.TotalDurationS, wantDur)
	}
	// Duration-weighted SM average lies between the two tasks' values.
	if wp.AvgSMUtilPct <= a.AvgSMUtilPct || wp.AvgSMUtilPct >= l.AvgSMUtilPct {
		t.Fatalf("weighted SM %v outside (%v, %v)", wp.AvgSMUtilPct, a.AvgSMUtilPct, l.AvgSMUtilPct)
	}
	// Peak memory across tasks.
	want := a.MaxMemMiB
	if l.MaxMemMiB > want {
		want = l.MaxMemMiB
	}
	if wp.MaxMemMiB != want {
		t.Fatalf("max mem %v, want %v", wp.MaxMemMiB, want)
	}
	if wp.PeakActiveComputePct <= wp.AvgSMUtilPct {
		t.Fatal("peak active compute must exceed the time average")
	}
}

func TestBuildWorkflowProfileInfersMissingSizes(t *testing.T) {
	store := suiteStore(t)
	w := wfOne("w", "Kripke", "2x", 4) // 2x not profiled → inferred
	wp, err := BuildWorkflowProfile(store, w)
	if err != nil {
		t.Fatal(err)
	}
	if wp.TotalDurationS <= 0 {
		t.Fatal("inferred duration missing")
	}
}

func TestBuildWorkflowProfileUsesAliases(t *testing.T) {
	store := suiteStore(t)
	wp, err := BuildWorkflowProfile(store, wfOne("w", "MHD", "4x", 1))
	if err != nil {
		t.Fatal(err)
	}
	if wp.MaxMemMiB != 6753 {
		t.Fatalf("alias resolution failed: mem %v", wp.MaxMemMiB)
	}
}

func TestThroughputPolicyCapsGroupsAtTwo(t *testing.T) {
	store := suiteStore(t)
	s, err := NewScheduler(a100x(), 1, store, ThroughputPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var wfs []workflow.Workflow
	for i := 0; i < 6; i++ {
		wfs = append(wfs, wfOne(string(rune('a'+i)), "AthenaPK", "4x", 1))
	}
	plan, err := s.BuildPlan(queueOf(t, wfs...))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.Groups() {
		if len(g.Members) > 2 {
			t.Fatalf("throughput policy built a group of %d", len(g.Members))
		}
	}
	if plan.WorkflowCount() != 6 {
		t.Fatalf("plan covers %d workflows, want 6", plan.WorkflowCount())
	}
}

func TestEnergyPolicyPacksWider(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	var wfs []workflow.Workflow
	for i := 0; i < 6; i++ {
		wfs = append(wfs, wfOne(string(rune('a'+i)), "AthenaPK", "4x", 1))
	}
	plan, err := s.BuildPlan(queueOf(t, wfs...))
	if err != nil {
		t.Fatal(err)
	}
	// 6 × ~30% SM: rule 2 admits 3 per group → 2 groups of 3.
	groups := plan.Groups()
	if len(groups) != 2 {
		t.Fatalf("energy policy built %d groups: want 2 groups of 3", len(groups))
	}
	for _, g := range groups {
		if len(g.Members) != 3 {
			t.Fatalf("group size %d, want 3", len(g.Members))
		}
		if g.Estimate.Interferes {
			t.Fatalf("group predicted to interfere: %s", g.Estimate)
		}
	}
}

func TestPlanRespectsInterferenceRules(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	// Two high-utilization workflows must not collocate.
	plan, err := s.BuildPlan(queueOf(t,
		wfOne("l1", "LAMMPS", "4x", 1),
		wfOne("l2", "LAMMPS", "4x", 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.Groups() {
		if len(g.Members) != 1 {
			t.Fatalf("LAMMPS pair collocated despite SM rule: %v", g.Names())
		}
	}
}

func TestPlanRespectsMemoryCapacity(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	// Two WarpX workflows (61 GiB each) can never share.
	plan, err := s.BuildPlan(queueOf(t,
		wfOne("w1", "WarpX", "1x", 1),
		wfOne("w2", "WarpX", "1x", 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.Groups() {
		if len(g.Members) != 1 {
			t.Fatal("WarpX pair collocated despite capacity rule")
		}
	}
	// Even AllowInterferingPairs must not override capacity.
	pol := EnergyPolicy()
	pol.AllowInterferingPairs = true
	s2, _ := NewScheduler(a100x(), 1, store, pol)
	plan2, _ := s2.BuildPlan(queueOf(t,
		wfOne("w1", "WarpX", "1x", 1),
		wfOne("w2", "WarpX", "1x", 1),
	))
	for _, g := range plan2.Groups() {
		if len(g.Members) != 1 {
			t.Fatal("capacity rule overridden by AllowInterferingPairs")
		}
	}
}

func TestLowestUtilizationSeedsGroups(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	plan, err := s.BuildPlan(queueOf(t,
		wfOne("heavy", "LAMMPS", "4x", 1),
		wfOne("light", "AthenaPK", "4x", 1),
		wfOne("mid", "Kripke", "4x", 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	groups := plan.Groups()
	// Light (30%) + mid (63%) = 93% fit together; heavy (96%) is alone.
	var pairFound, heavyAlone bool
	for _, g := range groups {
		names := strings.Join(g.Names(), "+")
		if strings.Contains(names, "light") && strings.Contains(names, "mid") {
			pairFound = true
		}
		if names == "heavy" {
			heavyAlone = true
		}
	}
	if !pairFound || !heavyAlone {
		t.Fatalf("packing wrong: %v", planNames(plan))
	}
}

func planNames(p *Plan) [][]string {
	var out [][]string
	for _, g := range p.Groups() {
		out = append(out, g.Names())
	}
	return out
}

func TestMultiGPUBalancing(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 2, store, ThroughputPolicy())
	var wfs []workflow.Workflow
	for i := 0; i < 4; i++ {
		wfs = append(wfs, wfOne(string(rune('a'+i)), "LAMMPS", "4x", 1))
	}
	plan, err := s.BuildPlan(queueOf(t, wfs...))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PerGPU) != 2 {
		t.Fatalf("PerGPU = %d", len(plan.PerGPU))
	}
	// Four equal singleton groups → two per GPU.
	if len(plan.PerGPU[0]) != 2 || len(plan.PerGPU[1]) != 2 {
		t.Fatalf("imbalanced placement: %d vs %d", len(plan.PerGPU[0]), len(plan.PerGPU[1]))
	}
}

func TestRightSizing(t *testing.T) {
	store := suiteStore(t)
	pol := EnergyPolicy()
	pol.RightSizePartitions = true
	s, _ := NewScheduler(a100x(), 1, store, pol)
	plan, err := s.BuildPlan(queueOf(t,
		wfOne("a", "AthenaPK", "4x", 1),
		wfOne("b", "AthenaPK", "4x", 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	g := plan.Groups()[0]
	if len(g.Members) != 2 {
		t.Fatalf("expected one pair group, got %v", planNames(plan))
	}
	for i, p := range g.Partitions {
		if p <= 0 || p > 1 {
			t.Fatalf("partition %d = %v", i, p)
		}
		if p == 1 {
			t.Fatalf("right-sizing left partition %d at 100%%", i)
		}
		// 10% granularity.
		if r := p * 10; r != float64(int(r+0.5)) && (r-float64(int(r))) > 1e-9 {
			t.Fatalf("partition %v not on 10%% steps", p)
		}
	}
	// Singleton groups keep full partitions.
	plan2, _ := s.BuildPlan(queueOf(t, wfOne("solo", "LAMMPS", "4x", 1)))
	if plan2.Groups()[0].Partitions[0] != 1 {
		t.Fatal("singleton group should keep 100% partition")
	}
}

func TestSchedulerValidation(t *testing.T) {
	store := suiteStore(t)
	if _, err := NewScheduler(a100x(), 0, store, ThroughputPolicy()); err == nil {
		t.Fatal("zero GPUs accepted")
	}
	if _, err := NewScheduler(a100x(), 1, nil, ThroughputPolicy()); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := NewScheduler(a100x(), 1, store, Policy{Objective: Objective(99)}); err == nil {
		t.Fatal("bad objective accepted")
	}
	s, _ := NewScheduler(a100x(), 1, store, ThroughputPolicy())
	if _, err := s.BuildPlan(nil); err == nil {
		t.Fatal("nil queue accepted")
	}
	empty, _ := workflow.NewQueue()
	if _, err := s.BuildPlan(empty); err == nil {
		t.Fatal("empty queue accepted")
	}
}

func TestPolicyClientCaps(t *testing.T) {
	dev := a100x()
	if got := ThroughputPolicy().clientCap(dev.MaxMPSClients); got != 2 {
		t.Fatalf("throughput cap = %d", got)
	}
	if got := EnergyPolicy().clientCap(dev.MaxMPSClients); got != 48 {
		t.Fatalf("energy cap = %d", got)
	}
	p := ThroughputPolicy()
	p.ThroughputClientCap = 3
	if got := p.clientCap(dev.MaxMPSClients); got != 3 {
		t.Fatalf("override cap = %d", got)
	}
}

func TestEstimateViewsMatchInterferencePackage(t *testing.T) {
	store := suiteStore(t)
	s, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	wpA, _ := BuildWorkflowProfile(store, wfOne("a", "LAMMPS", "4x", 1))
	wpB, _ := BuildWorkflowProfile(store, wfOne("b", "LAMMPS", "4x", 1))
	est := s.estimate([]*WorkflowProfile{wpA, wpB})
	if !est.Interferes || !est.Has(interference.Compute) {
		t.Fatalf("estimate = %v", est)
	}
}

func TestPairOpposingPower(t *testing.T) {
	// Recommendation 3 of §VI: with the heuristic on, a low-power seed
	// prefers the fitting candidate with the most different power
	// profile, not the next-lowest-utilization one.
	store := suiteStore(t)
	pol := EnergyPolicy()
	pol.PairOpposingPower = true
	s, _ := NewScheduler(a100x(), 1, store, pol)
	// Seeds sort ascending by SM util: athena (30%) first. Candidates:
	// a second athena (89 W, closest power) and Kripke 4x (148 W,
	// opposing). Both fit (30+30 or 30+63 ≤ 100).
	plan, err := s.BuildPlan(queueOf(t,
		wfOne("athena-1", "AthenaPK", "4x", 1),
		wfOne("athena-2", "AthenaPK", "4x", 1),
		wfOne("kripke", "Kripke", "4x", 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	var seedGroup *Group
	for _, g := range plan.Groups() {
		for _, m := range g.Members {
			if m.Workflow.Name == "athena-1" {
				seedGroup = g
			}
		}
	}
	names := strings.Join(seedGroup.Names(), "+")
	if !strings.Contains(names, "kripke") {
		t.Fatalf("opposing-power pairing picked %q, want the Kripke partner", names)
	}

	// Heuristic off: the packer takes the next-lowest-utilization
	// candidate — the second AthenaPK.
	s2, _ := NewScheduler(a100x(), 1, store, EnergyPolicy())
	plan2, err := s2.BuildPlan(queueOf(t,
		wfOne("athena-1", "AthenaPK", "4x", 1),
		wfOne("athena-2", "AthenaPK", "4x", 1),
		wfOne("kripke", "Kripke", "4x", 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan2.Groups() {
		names := strings.Join(g.Names(), "+")
		if strings.Contains(names, "athena-1") && !strings.Contains(names, "athena-2") &&
			len(g.Members) > 1 {
			t.Fatalf("default packing should pair the athenas first, got %q", names)
		}
	}
}
