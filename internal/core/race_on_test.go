//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// the million-arrival soak skips under it (instrumented heap accounting
// would invalidate the memory ceiling, and the run takes minutes).
const raceEnabled = true
