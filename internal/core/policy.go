// Package core implements the paper's primary contribution: the
// granularity- and interference-aware scheduling approach of §IV. It
// consumes offline task profiles (package profile), predicts interference
// between queued workflows (package interference), selects collocation
// groups that maximize the prioritized metric, right-sizes MPS partitions,
// and executes plans on the simulated device (package gpusim) against the
// sequential baseline.
package core

import (
	"fmt"

	"gpushare/internal/metrics"
)

// Objective selects the metric the scheduler optimizes (§IV-C).
type Objective int

const (
	// MaximizeThroughput limits collocation cardinality (criterion 4:
	// "if throughput is prioritized, the number of clients is limited to
	// 2") and packs the least-utilizing workflows together first.
	MaximizeThroughput Objective = iota
	// MaximizeEnergyEfficiency uses the maximum number of MPS clients
	// available (criterion 4) to overlap as much work as possible.
	MaximizeEnergyEfficiency
	// MaximizeProduct balances the two via a weighted product metric.
	MaximizeProduct
)

func (o Objective) String() string {
	switch o {
	case MaximizeThroughput:
		return "throughput"
	case MaximizeEnergyEfficiency:
		return "energy-efficiency"
	case MaximizeProduct:
		return "product"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Policy configures the scheduling approach.
type Policy struct {
	// Objective is the prioritized metric.
	Objective Objective
	// Product is the weighting used when Objective is MaximizeProduct.
	Product metrics.Product
	// ThroughputClientCap overrides the client limit under
	// MaximizeThroughput; zero selects the paper's value of 2.
	ThroughputClientCap int
	// ProductClientCap overrides the client limit under MaximizeProduct;
	// zero selects a moderate default of 4 (between the throughput cap
	// and the device maximum, matching Figure 4's product-metric sweet
	// spot).
	ProductClientCap int
	// RightSizePartitions enables MPS partition right-sizing: each
	// collocated client gets an active-thread percentage covering its
	// predicted saturation point (Figure 1's granularity insight)
	// instead of the full device.
	RightSizePartitions bool
	// PartitionHeadroom is the multiplicative margin applied when
	// right-sizing (zero selects 1.2). Partitions are rounded up to 10%
	// steps, the granularity the paper sweeps in Figure 1.
	PartitionHeadroom float64
	// AllowInterferingPairs permits groups that violate the paper's
	// interference rules (used by ablations and the naive baseline);
	// capacity violations are never allowed.
	AllowInterferingPairs bool
	// PairOpposingPower applies the paper's recommendation 3 ("where
	// possible, pair workflows with opposing power profiles"): among
	// rule-compatible candidates, the packer picks the one whose average
	// power differs most from the group's, instead of the next-lowest-
	// utilization one.
	PairOpposingPower bool
}

// Validate checks the policy and resolves defaults.
func (p Policy) Validate() error {
	switch p.Objective {
	case MaximizeThroughput, MaximizeEnergyEfficiency:
	case MaximizeProduct:
		if err := p.Product.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown objective %d", int(p.Objective))
	}
	if p.ThroughputClientCap < 0 {
		return fmt.Errorf("core: ThroughputClientCap must be non-negative")
	}
	if p.ProductClientCap < 0 {
		return fmt.Errorf("core: ProductClientCap must be non-negative")
	}
	if p.PartitionHeadroom < 0 || p.PartitionHeadroom > 3 {
		return fmt.Errorf("core: PartitionHeadroom must be in [0,3], got %g", p.PartitionHeadroom)
	}
	return nil
}

// clientCap resolves the per-GPU client limit for the policy given the
// device's MPS maximum (criterion 4 of §IV-B).
func (p Policy) clientCap(deviceMax int) int {
	switch p.Objective {
	case MaximizeThroughput:
		if p.ThroughputClientCap > 0 {
			return min(p.ThroughputClientCap, deviceMax)
		}
		return min(2, deviceMax)
	case MaximizeProduct:
		if p.ProductClientCap > 0 {
			return min(p.ProductClientCap, deviceMax)
		}
		return min(4, deviceMax)
	default: // MaximizeEnergyEfficiency
		return deviceMax
	}
}

// ThroughputPolicy returns the paper's throughput-first configuration.
func ThroughputPolicy() Policy {
	return Policy{Objective: MaximizeThroughput, RightSizePartitions: false}
}

// EnergyPolicy returns the paper's energy-first configuration.
func EnergyPolicy() Policy {
	return Policy{Objective: MaximizeEnergyEfficiency, RightSizePartitions: false}
}

// ProductPolicy returns a product-balanced configuration.
func ProductPolicy(prod metrics.Product) Policy {
	return Policy{Objective: MaximizeProduct, Product: prod}
}
