package core

import (
	"testing"

	"gpushare/internal/interference"
	"gpushare/internal/obs"
	"gpushare/internal/simtime"
)

// TestDispatcherAdmitAllocs pins the dispatcher wait loop — admit and
// retire — at zero allocations per arrival in steady state: the runtime
// half of their //repro:hotpath annotations. The stream saturates four
// GPUs so every arrival exercises retirement, dirty-set re-probing and
// completion waits, not just the empty-fleet fast path.
func TestDispatcherAdmitAllocs(t *testing.T) {
	device := a100x()
	var stats DispatchStats
	d := testDispatcher(device, 4, 2, &stats)
	load := interference.Load{SMPct: 30, BWPct: 20, MemMiB: 1024}
	hold := simtime.FromSeconds(100)
	now := simtime.Zero
	seq := int64(0)
	place := func() {
		at, g, ok := d.admit(load, now, seq)
		if !ok {
			t.Fatal("admit failed: load should always fit eventually")
		}
		seq++
		d.place(g, load, "w", at.Add(hold))
		now = now.Add(simtime.FromSeconds(1))
	}
	for i := 0; i < 64; i++ { // warm freelist, heap, dirty-set capacity
		place()
	}
	allocs := testing.AllocsPerRun(200, func() { place() })
	if allocs != 0 {
		t.Fatalf("admit+place allocated %.1f objects per arrival, want 0", allocs)
	}
	if stats.Waits == 0 || stats.Completions == 0 {
		t.Fatalf("pin never exercised the wait loop (waits=%d completions=%d)", stats.Waits, stats.Completions)
	}
}

// TestDispatcherAdmitAllocsFlightEnabled extends the pin to the
// telemetry-on path: with a live flight recorder (no spill writer) the
// wait loop still allocates nothing — every probe/wait record lands in
// the preallocated ring.
func TestDispatcherAdmitAllocsFlightEnabled(t *testing.T) {
	prev := obs.SetActive(obs.NewHub(nil))
	defer obs.SetActive(prev)

	device := a100x()
	var stats DispatchStats
	d := testDispatcher(device, 4, 2, &stats)
	if d.fl == nil {
		t.Fatal("dispatcher did not capture the active flight recorder")
	}
	load := interference.Load{SMPct: 30, BWPct: 20, MemMiB: 1024}
	hold := simtime.FromSeconds(100)
	now := simtime.Zero
	seq := int64(0)
	place := func() {
		at, g, ok := d.admit(load, now, seq)
		if !ok {
			t.Fatal("admit failed: load should always fit eventually")
		}
		seq++
		d.place(g, load, "w", at.Add(hold))
		now = now.Add(simtime.FromSeconds(1))
	}
	for i := 0; i < 64; i++ {
		place()
	}
	allocs := testing.AllocsPerRun(200, func() { place() })
	if allocs != 0 {
		t.Fatalf("admit+place with flight recording allocated %.1f objects per arrival, want 0", allocs)
	}
	if d.fl.Snapshot().Total == 0 {
		t.Fatal("pin never recorded a flight record")
	}
}
