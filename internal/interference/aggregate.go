package interference

import (
	"gpushare/internal/gpu"
	"gpushare/internal/profile"
)

// Incremental interference aggregates. The paper's §IV-B rules are
// additive — summed average SM%, summed average BW%, summed maximum
// memory against device limits — so an admission decision for "group +
// candidate" needs only the group's running sums, not a rescan of every
// member. Aggregate maintains those sums with O(1) Admit/Add probes; the
// fleet dispatcher runs one per GPU so each arrival costs three
// comparisons per device instead of an O(residents) recomputation with
// allocations (the property arXiv:2105.10312 and arXiv:2505.08562 demand
// of per-arrival admission control at scale).
//
// Bit-identity contract: every sum Aggregate exposes is produced by the
// same left-to-right float64 fold Predict performs over the same member
// sequence. Add extends the fold by one term (exactly Predict's next
// loop iteration); Remove re-folds the remaining members in order rather
// than subtracting (float subtraction does not invert addition). The
// FuzzAggregateMatchesPredict target pins the equivalence bit for bit.

// Load is one member's contribution to the additive rules — the three
// Table II quantities Predict reads from a task profile.
type Load struct {
	// SMPct is the average SM utilization in percent.
	SMPct float64
	// BWPct is the average memory-bandwidth utilization in percent.
	BWPct float64
	// MemMiB is the maximum memory footprint.
	MemMiB int64
}

// ProfileLoad extracts a profile's contribution. A nil profile
// contributes zero, matching Predict's nil skip.
func ProfileLoad(p *profile.TaskProfile) Load {
	if p == nil {
		return Load{}
	}
	return Load{SMPct: p.AvgSMUtilPct, BWPct: p.AvgBWUtilPct, MemMiB: p.MaxMemMiB}
}

// Outcome is one admission probe's result: the combined utilizations the
// candidate group would have, and which rules it would violate. It is a
// plain value — probing allocates nothing.
type Outcome struct {
	CombinedSMUtilPct float64
	CombinedBWUtilPct float64
	CombinedMaxMemMiB int64
	DeviceMemMiB      int64

	// Compute, Bandwidth, Capacity report the violated rules, evaluated
	// with exactly Predict's comparisons.
	Compute   bool
	Bandwidth bool
	Capacity  bool
}

// Interferes is the paper's binary prediction: any rule violated.
func (o Outcome) Interferes() bool { return o.Compute || o.Bandwidth || o.Capacity }

// Aggregate holds the running sums for one collocation group (one GPU's
// residents, or one packing group under construction). The zero value is
// an empty group on a zero-memory device; use NewAggregate to bind a
// device.
type Aggregate struct {
	deviceMemMiB int64

	// loads holds the member sequence in insertion order — the fold
	// order, which Remove preserves.
	loads []Load

	smSum  float64
	bwSum  float64
	memSum int64
}

// NewAggregate returns an empty group on the given device.
func NewAggregate(device gpu.DeviceSpec) Aggregate {
	return Aggregate{deviceMemMiB: device.MemoryMiB}
}

// Reset empties the group, keeping allocated capacity.
func (a *Aggregate) Reset() {
	a.loads = a.loads[:0]
	a.smSum, a.bwSum, a.memSum = 0, 0, 0
}

// Len returns the member count.
func (a *Aggregate) Len() int { return len(a.loads) }

// At returns member i's load.
func (a *Aggregate) At(i int) Load { return a.loads[i] }

// outcome evaluates the rules for explicit combined sums.
func (a *Aggregate) outcome(sm, bw float64, mem int64) Outcome {
	return Outcome{
		CombinedSMUtilPct: sm,
		CombinedBWUtilPct: bw,
		CombinedMaxMemMiB: mem,
		DeviceMemMiB:      a.deviceMemMiB,
		Compute:           sm > 100,
		Bandwidth:         bw > 100,
		Capacity:          mem > a.deviceMemMiB,
	}
}

// Admit probes "group + candidate" in O(1): the combined sums are the
// group's fold extended by one term, exactly the value Predict computes
// over append(members, candidate). The group is not modified.
//
//repro:hotpath pinned by TestAggregateAdmitAllocs
func (a *Aggregate) Admit(l Load) Outcome {
	return a.outcome(a.smSum+l.SMPct, a.bwSum+l.BWPct, a.memSum+l.MemMiB)
}

// AdmitExcluding probes "group − skipped members + candidate" without
// mutating the group: the read-only form of the preemption what-if the
// cluster planner used to run as Save / RemoveAt×k / Admit / Restore.
// skip[i] true drops member i from the fold; indices past len(skip) are
// kept, and a nil skip is exactly Admit. Bit-identity holds by the fold
// contract: RemoveAt re-folds the survivors left to right, so the sums
// it would cache equal the left-to-right fold over the surviving
// subsequence computed here — same terms, same order, same rounding.
// O(members) with skip, O(1) without; never allocates, never writes, so
// concurrent AdmitExcluding probes over one aggregate are race-free.
//
//repro:hotpath pinned by TestAggregateAdmitAllocs
func (a *Aggregate) AdmitExcluding(l Load, skip []bool) Outcome {
	if skip == nil {
		return a.Admit(l)
	}
	var sm, bw float64
	var mem int64
	for i := range a.loads {
		if i < len(skip) && skip[i] {
			continue
		}
		sm += a.loads[i].SMPct
		bw += a.loads[i].BWPct
		mem += a.loads[i].MemMiB
	}
	return a.outcome(sm+l.SMPct, bw+l.BWPct, mem+l.MemMiB)
}

// Current evaluates the rules for the group as it stands.
func (a *Aggregate) Current() Outcome {
	return a.outcome(a.smSum, a.bwSum, a.memSum)
}

// Add appends a member, extending each running fold by one term.
//
//repro:hotpath pinned by TestAggregateMutateAllocs
func (a *Aggregate) Add(l Load) {
	//repro:allow:hotpathalloc member-list growth is amortized; Reset keeps the capacity
	a.loads = append(a.loads, l)
	a.smSum += l.SMPct
	a.bwSum += l.BWPct
	a.memSum += l.MemMiB
}

// RemoveAt deletes member i, preserving the order of the remaining
// members, and re-folds the sums from scratch: subtracting the departed
// member would drift from Predict's left-to-right fold over the new
// sequence, re-folding matches it bit for bit. O(members).
//
//repro:hotpath pinned by TestAggregateMutateAllocs
func (a *Aggregate) RemoveAt(i int) {
	copy(a.loads[i:], a.loads[i+1:])
	a.loads = a.loads[:len(a.loads)-1]
	a.smSum, a.bwSum, a.memSum = 0, 0, 0
	for _, l := range a.loads {
		a.smSum += l.SMPct
		a.bwSum += l.BWPct
		a.memSum += l.MemMiB
	}
}

// Snapshot is a saved Aggregate state for what-if exploration: the
// member sequence and its running sums, captured bit for bit. The
// cluster dispatcher snapshots a GPU's aggregate before tentatively
// evicting residents or placing gang members, probes the mutated state,
// and restores on rollback. The zero value is ready; Save reuses the
// snapshot's member capacity, so a snapshot buffer retained across
// attempts costs no steady-state allocations.
type Snapshot struct {
	loads  []Load
	smSum  float64
	bwSum  float64
	memSum int64
}

// Save copies the aggregate's state into s, reusing s's capacity.
//
//repro:hotpath pinned by TestAggregateMutateAllocs
func (a *Aggregate) Save(s *Snapshot) {
	//repro:allow:hotpathalloc snapshot-buffer growth is amortized; retained buffers make repeat saves allocation-free
	s.loads = append(s.loads[:0], a.loads...)
	s.smSum, s.bwSum, s.memSum = a.smSum, a.bwSum, a.memSum
}

// Restore copies s back into the aggregate, reusing the aggregate's
// capacity. The restored state is bit-identical to the one Save saw:
// sums are copied, not recomputed, so a save/restore round trip can
// never drift from the fold contract.
//
//repro:hotpath pinned by TestAggregateMutateAllocs
func (a *Aggregate) Restore(s *Snapshot) {
	//repro:allow:hotpathalloc member-list growth is amortized; restore into a previously sized aggregate is allocation-free
	a.loads = append(a.loads[:0], s.loads...)
	a.smSum, a.bwSum, a.memSum = s.smSum, s.bwSum, s.memSum
}

// Estimate renders the group as a full Estimate, identical to
// Predict(device, members) over the same sequence.
func (a *Aggregate) Estimate() Estimate {
	e := Estimate{
		CombinedSMUtilPct: a.smSum,
		CombinedBWUtilPct: a.bwSum,
		CombinedMaxMemMiB: a.memSum,
		DeviceMemMiB:      a.deviceMemMiB,
	}
	if e.CombinedSMUtilPct > 100 {
		e.Types = append(e.Types, Compute)
	}
	if e.CombinedBWUtilPct > 100 {
		e.Types = append(e.Types, Bandwidth)
	}
	if e.CombinedMaxMemMiB > a.deviceMemMiB {
		e.Types = append(e.Types, Capacity)
	}
	e.Interferes = len(e.Types) > 0
	e.Severity = severity(e)
	return e
}
