package interference

import (
	"math"
	"strconv"
	"strings"
)

// Typed rejection reasons. An admission probe's Outcome says *whether*
// the paper's rules reject a candidate; operating a long-running
// scheduling service also needs *which* rule fired and by how much
// ("why was this gang rejected on GPU 12?"). Reason encodes exactly
// that as a flat value: a bitmask of violated rules plus the violation
// magnitudes, integer-scaled so the encoding is a deterministic pure
// function of the (bit-identical) fold sums — no float formatting, no
// allocation, safe to record from the admission hot path.

// RuleMask is a bitmask of admission rules. The first three bits are
// the paper's §IV-B rules in their canonical order; MaskClientCap is
// the dispatcher-level MPS client cardinality cap, which Aggregate does
// not know about but dispatchers fold into the same mask.
type RuleMask uint8

const (
	// MaskCompute: combined average SM utilization exceeds 100%.
	MaskCompute RuleMask = 1 << iota
	// MaskBandwidth: combined average bandwidth utilization exceeds 100%.
	MaskBandwidth
	// MaskCapacity: combined maximum memory exceeds device (or instance)
	// capacity.
	MaskCapacity
	// MaskClientCap: the GPU already holds its maximum client count.
	MaskClientCap
)

// ruleNames orders the mask bits for rendering.
var ruleNames = [...]string{"compute", "bandwidth", "capacity", "client-cap"}

// String renders the mask as a stable comma-joined rule list ("ok" for
// an empty mask).
func (m RuleMask) String() string {
	if m == 0 {
		return "ok"
	}
	var b strings.Builder
	for i, name := range ruleNames {
		if m&(1<<i) == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
	}
	return b.String()
}

// Reason is one admission probe's typed verdict: the violated rules and
// how far over each limit the candidate group would land. Magnitudes
// are integer-scaled — milli-percentage-points over 100% for the
// utilization rules, MiB over capacity for the memory rule — so equal
// fold sums encode to equal Reasons bit for bit. The zero value means
// "admitted".
type Reason struct {
	// Rules is the violated-rule bitmask; zero means admitted.
	Rules RuleMask `json:"rules"`
	// SMExcessMilli is max(0, combined SM% - 100) in milli-percentage
	// points (132.5% encodes as 32500).
	SMExcessMilli int64 `json:"sm_excess_milli,omitempty"`
	// BWExcessMilli is max(0, combined BW% - 100) in milli-percentage
	// points.
	BWExcessMilli int64 `json:"bw_excess_milli,omitempty"`
	// MemExcessMiB is max(0, combined max memory - capacity) in MiB.
	MemExcessMiB int64 `json:"mem_excess_mib,omitempty"`
}

// Rejected reports whether any rule fired.
func (r Reason) Rejected() bool { return r.Rules != 0 }

// String renders a compact diagnosis, e.g.
// "reject[compute,capacity] sm+32500m mem+512MiB".
func (r Reason) String() string {
	if r.Rules == 0 {
		return "admit"
	}
	var b strings.Builder
	b.WriteString("reject[")
	b.WriteString(r.Rules.String())
	b.WriteByte(']')
	if r.SMExcessMilli > 0 {
		b.WriteString(" sm+")
		b.WriteString(strconv.FormatInt(r.SMExcessMilli, 10))
		b.WriteByte('m')
	}
	if r.BWExcessMilli > 0 {
		b.WriteString(" bw+")
		b.WriteString(strconv.FormatInt(r.BWExcessMilli, 10))
		b.WriteByte('m')
	}
	if r.MemExcessMiB > 0 {
		b.WriteString(" mem+")
		b.WriteString(strconv.FormatInt(r.MemExcessMiB, 10))
		b.WriteString("MiB")
	}
	return b.String()
}

// excessMilli converts a percentage excess to milli-percentage points.
// Rounding goes through math.Round so the mapping is the same on every
// platform; the input is a deterministic fold sum, so the output is a
// pure function of the member sequence.
func excessMilli(pct float64) int64 {
	if pct <= 0 {
		return 0
	}
	return int64(math.Round(pct * 1000))
}

// Reason derives the typed rejection reason from a probe outcome,
// evaluated with exactly the outcome's own rule verdicts. It allocates
// nothing.
//
//repro:hotpath pinned by TestOutcomeReasonAllocs
func (o Outcome) Reason() Reason {
	var r Reason
	if o.Compute {
		r.Rules |= MaskCompute
		r.SMExcessMilli = excessMilli(o.CombinedSMUtilPct - 100)
	}
	if o.Bandwidth {
		r.Rules |= MaskBandwidth
		r.BWExcessMilli = excessMilli(o.CombinedBWUtilPct - 100)
	}
	if o.Capacity {
		r.Rules |= MaskCapacity
		r.MemExcessMiB = o.CombinedMaxMemMiB - o.DeviceMemMiB
	}
	return r
}

// Digest folds the aggregate's exact state — device capacity, member
// count, every member's load bits, and the running sums — into a 64-bit
// FNV-1a value. Preemption what-ifs record it before and after a
// save/probe/restore round trip as provenance that the restore really
// was bit-identical. It allocates nothing.
//
//repro:hotpath pinned by TestAggregateDigestAllocs
func (a *Aggregate) Digest() uint64 {
	h := uint64(fnvOffset64)
	h = fnvFold(h, uint64(a.deviceMemMiB))
	h = fnvFold(h, uint64(len(a.loads)))
	for i := range a.loads {
		h = fnvFold(h, math.Float64bits(a.loads[i].SMPct))
		h = fnvFold(h, math.Float64bits(a.loads[i].BWPct))
		h = fnvFold(h, uint64(a.loads[i].MemMiB))
	}
	h = fnvFold(h, math.Float64bits(a.smSum))
	h = fnvFold(h, math.Float64bits(a.bwSum))
	h = fnvFold(h, uint64(a.memSum))
	return h
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvFold mixes one 64-bit word into an FNV-1a state, byte by byte.
//
//repro:hotpath pinned by TestAggregateDigestAllocs
func fnvFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}
