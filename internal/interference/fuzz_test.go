package interference

import (
	"math"
	"reflect"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/profile"
)

// FuzzPredictInterference feeds the predictor random profile pairs and
// checks the properties the scheduler relies on:
//
//   - Predict never panics, whatever the profile values (profiles come
//     from JSON stores and scaling inference, so garbage reaches it);
//   - the prediction is symmetric: interfere(a,b) == interfere(b,a) —
//     the matrix and the packing loop both assume order independence;
//   - severity stays in [0,1] and is 1 exactly when capacity is violated
//     (capacity interference means OOM, which is fatal, not a slowdown);
//   - the binary Interferes flag agrees with the violated-rule list.
func FuzzPredictInterference(f *testing.F) {
	f.Add(50.0, 30.0, int64(20000), 60.0, 80.0, int64(30000))
	f.Add(0.0, 0.0, int64(0), 0.0, 0.0, int64(0))
	f.Add(100.0, 100.0, int64(40960), 0.1, 0.1, int64(1))
	f.Add(-5.0, 200.0, int64(-100), math.MaxFloat64, 1e-300, int64(1<<40))
	f.Fuzz(func(t *testing.T, sm1, bw1 float64, mem1 int64, sm2, bw2 float64, mem2 int64) {
		device := gpu.MustLookup("A100X")
		a := &profile.TaskProfile{Workload: "a", Size: "s",
			AvgSMUtilPct: sm1, AvgBWUtilPct: bw1, MaxMemMiB: mem1}
		b := &profile.TaskProfile{Workload: "b", Size: "s",
			AvgSMUtilPct: sm2, AvgBWUtilPct: bw2, MaxMemMiB: mem2}

		ab := Predict(device, []*profile.TaskProfile{a, b})
		ba := Predict(device, []*profile.TaskProfile{b, a})

		if ab.Interferes != ba.Interferes {
			t.Fatalf("asymmetric Interferes: ab=%v ba=%v", ab.Interferes, ba.Interferes)
		}
		if !reflect.DeepEqual(ab.Types, ba.Types) {
			t.Fatalf("asymmetric Types: ab=%v ba=%v", ab.Types, ba.Types)
		}
		if ab.Severity != ba.Severity {
			t.Fatalf("asymmetric Severity: ab=%v ba=%v", ab.Severity, ba.Severity)
		}

		if math.IsNaN(ab.Severity) || ab.Severity < 0 || ab.Severity > 1 {
			t.Fatalf("severity out of range: %v", ab.Severity)
		}
		if ab.Has(Capacity) && ab.Severity != 1 {
			t.Fatalf("capacity violation must force severity 1, got %v", ab.Severity)
		}
		if ab.Interferes != (len(ab.Types) > 0) {
			t.Fatalf("Interferes=%v disagrees with Types=%v", ab.Interferes, ab.Types)
		}

		// Fits must agree with Predict on the same group.
		if got, want := Fits(device, []*profile.TaskProfile{a}, b), !ab.Interferes; got != want {
			t.Fatalf("Fits=%v disagrees with Predict.Interferes=%v", got, !want)
		}
	})
}
