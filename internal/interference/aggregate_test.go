package interference

import (
	"math"
	"reflect"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/profile"
)

func aggProfile(name string, sm, bw float64, mem int64) *profile.TaskProfile {
	return &profile.TaskProfile{Workload: name, Size: "s",
		AvgSMUtilPct: sm, AvgBWUtilPct: bw, MaxMemMiB: mem}
}

// requireEstimateBitEqual compares an Aggregate-derived estimate to
// Predict's, bit for bit on the float fields.
func requireEstimateBitEqual(t *testing.T, got, want Estimate) {
	t.Helper()
	if math.Float64bits(got.CombinedSMUtilPct) != math.Float64bits(want.CombinedSMUtilPct) {
		t.Fatalf("SM sum diverged: got %x want %x",
			math.Float64bits(got.CombinedSMUtilPct), math.Float64bits(want.CombinedSMUtilPct))
	}
	if math.Float64bits(got.CombinedBWUtilPct) != math.Float64bits(want.CombinedBWUtilPct) {
		t.Fatalf("BW sum diverged: got %x want %x",
			math.Float64bits(got.CombinedBWUtilPct), math.Float64bits(want.CombinedBWUtilPct))
	}
	if got.CombinedMaxMemMiB != want.CombinedMaxMemMiB {
		t.Fatalf("mem sum diverged: got %d want %d", got.CombinedMaxMemMiB, want.CombinedMaxMemMiB)
	}
	if got.DeviceMemMiB != want.DeviceMemMiB {
		t.Fatalf("device mem diverged: got %d want %d", got.DeviceMemMiB, want.DeviceMemMiB)
	}
	if got.Interferes != want.Interferes {
		t.Fatalf("Interferes diverged: got %v want %v", got.Interferes, want.Interferes)
	}
	if !reflect.DeepEqual(got.Types, want.Types) {
		t.Fatalf("Types diverged: got %v want %v", got.Types, want.Types)
	}
	if math.Float64bits(got.Severity) != math.Float64bits(want.Severity) {
		t.Fatalf("Severity diverged: got %v want %v", got.Severity, want.Severity)
	}
}

// TestAggregateMatchesPredict walks a member sequence through
// Add/RemoveAt and checks the aggregate's Estimate stays bit-identical
// to Predict over the surviving sequence at every step.
func TestAggregateMatchesPredict(t *testing.T) {
	device := gpu.MustLookup("A100X")
	members := []*profile.TaskProfile{
		aggProfile("a", 33.3, 21.7, 18000),
		aggProfile("b", 0.1, 0.2, 1),
		aggProfile("c", 66.6, 77.7, 60000),
		aggProfile("d", 12.5, 3.125, 4096),
		aggProfile("e", 99.999, 100.001, 81920),
	}

	agg := NewAggregate(device)
	var seq []*profile.TaskProfile
	for _, m := range members {
		// Probe before admitting: Admit must equal Predict over seq+m.
		out := agg.Admit(ProfileLoad(m))
		want := Predict(device, append(append([]*profile.TaskProfile{}, seq...), m))
		if out.Interferes() != want.Interferes {
			t.Fatalf("Admit(%s) Interferes=%v, Predict says %v", m.Workload, out.Interferes(), want.Interferes)
		}
		if math.Float64bits(out.CombinedSMUtilPct) != math.Float64bits(want.CombinedSMUtilPct) ||
			math.Float64bits(out.CombinedBWUtilPct) != math.Float64bits(want.CombinedBWUtilPct) ||
			out.CombinedMaxMemMiB != want.CombinedMaxMemMiB {
			t.Fatalf("Admit(%s) sums diverged from Predict", m.Workload)
		}
		agg.Add(ProfileLoad(m))
		seq = append(seq, m)
		requireEstimateBitEqual(t, agg.Estimate(), Predict(device, seq))
	}

	// Remove from the middle, front, and back; re-check after each.
	for _, i := range []int{2, 0, len(seq) - 1 - 2} {
		agg.RemoveAt(i)
		seq = append(seq[:i], seq[i+1:]...)
		requireEstimateBitEqual(t, agg.Estimate(), Predict(device, seq))
	}
	if agg.Len() != len(seq) {
		t.Fatalf("Len=%d want %d", agg.Len(), len(seq))
	}

	agg.Reset()
	if agg.Len() != 0 {
		t.Fatalf("Len after Reset = %d", agg.Len())
	}
	requireEstimateBitEqual(t, agg.Estimate(), Predict(device, nil))
}

// TestAggregateNilProfileLoad pins the nil-skip parity: Predict skips
// nil profiles, ProfileLoad maps nil to a zero load.
func TestAggregateNilProfileLoad(t *testing.T) {
	device := gpu.MustLookup("A100X")
	agg := NewAggregate(device)
	agg.Add(ProfileLoad(nil))
	agg.Add(ProfileLoad(aggProfile("a", 40, 50, 1000)))
	want := Predict(device, []*profile.TaskProfile{nil, aggProfile("a", 40, 50, 1000)})
	requireEstimateBitEqual(t, agg.Estimate(), want)
}

// TestAggregateOutcomeRules checks each rule flag fires on exactly its
// threshold semantics (> , not >=).
func TestAggregateOutcomeRules(t *testing.T) {
	device := gpu.MustLookup("A100X")
	agg := NewAggregate(device)
	agg.Add(Load{SMPct: 100, BWPct: 100, MemMiB: device.MemoryMiB})
	cur := agg.Current()
	if cur.Interferes() {
		t.Fatalf("exactly-at-limit group must not interfere: %+v", cur)
	}
	out := agg.Admit(Load{SMPct: 0.0001})
	if !out.Compute || out.Bandwidth || out.Capacity {
		t.Fatalf("want compute-only violation, got %+v", out)
	}
	out = agg.Admit(Load{MemMiB: 1})
	if !out.Capacity || out.Compute || out.Bandwidth {
		t.Fatalf("want capacity-only violation, got %+v", out)
	}
	out = agg.Admit(Load{BWPct: 0.5})
	if !out.Bandwidth || out.Compute || out.Capacity {
		t.Fatalf("want bandwidth-only violation, got %+v", out)
	}
}

// TestAggregateAdmitAllocs pins the zero-allocation admission probe —
// the property the fleet dispatcher's hot path depends on.
func TestAggregateAdmitAllocs(t *testing.T) {
	device := gpu.MustLookup("A100X")
	agg := NewAggregate(device)
	agg.Add(Load{SMPct: 30, BWPct: 20, MemMiB: 10000})
	agg.Add(Load{SMPct: 40, BWPct: 10, MemMiB: 20000})
	cand := Load{SMPct: 25, BWPct: 60, MemMiB: 30000}
	var sink bool
	allocs := testing.AllocsPerRun(100, func() {
		sink = agg.Admit(cand).Interferes()
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("Admit allocated %.1f objects per probe, want 0", allocs)
	}
}

// outcomesBitEqual compares two probe outcomes bit for bit on the float
// fields, so NaN-valued sums (reachable under fuzzing) compare equal to
// themselves.
func outcomesBitEqual(a, b Outcome) bool {
	return math.Float64bits(a.CombinedSMUtilPct) == math.Float64bits(b.CombinedSMUtilPct) &&
		math.Float64bits(a.CombinedBWUtilPct) == math.Float64bits(b.CombinedBWUtilPct) &&
		a.CombinedMaxMemMiB == b.CombinedMaxMemMiB &&
		a.DeviceMemMiB == b.DeviceMemMiB &&
		a.Compute == b.Compute && a.Bandwidth == b.Bandwidth && a.Capacity == b.Capacity
}

// TestAggregateAdmitExcludingMatchesMutatingWhatIf pins the read-only
// what-if against the mutating sequence it replaces: for every skip
// mask, AdmitExcluding must return bit-for-bit the Outcome of
// Save / RemoveAt(high→low) / Admit / Restore — and must leave the
// aggregate's digest untouched, which the mutating form only restores.
func TestAggregateAdmitExcludingMatchesMutatingWhatIf(t *testing.T) {
	device := gpu.MustLookup("A100X")
	agg := NewAggregate(device)
	members := []Load{
		{SMPct: 33.3, BWPct: 11.1, MemMiB: 20480},
		{SMPct: 0.1, BWPct: 66.6, MemMiB: 4096},
		{SMPct: 28.7, BWPct: 9.9, MemMiB: 30000},
		{SMPct: 12.5, BWPct: 3.125, MemMiB: 8192},
		{SMPct: 99.999, BWPct: 0.001, MemMiB: 1},
	}
	for _, l := range members {
		agg.Add(l)
	}
	cand := Load{SMPct: 30.0, BWPct: 10.0, MemMiB: 40960}

	var snap Snapshot
	for mask := 0; mask < 1<<len(members); mask++ {
		skip := make([]bool, len(members))
		for i := range skip {
			skip[i] = mask&(1<<i) != 0
		}
		before := agg.Digest()
		got := agg.AdmitExcluding(cand, skip)
		if d := agg.Digest(); d != before {
			t.Fatalf("mask %05b: AdmitExcluding mutated the aggregate: digest %016x -> %016x", mask, before, d)
		}

		// The mutating reference: remove skipped members high-to-low (the
		// planner's historical order), probe, restore.
		agg.Save(&snap)
		for i := len(members) - 1; i >= 0; i-- {
			if skip[i] {
				agg.RemoveAt(i)
			}
		}
		want := agg.Admit(cand)
		agg.Restore(&snap)

		if !outcomesBitEqual(got, want) {
			t.Fatalf("mask %05b: AdmitExcluding diverged from mutating what-if:\ngot  %+v\nwant %+v", mask, got, want)
		}
	}

	// nil skip is exactly Admit; a short mask keeps the unmasked tail.
	if got, want := agg.AdmitExcluding(cand, nil), agg.Admit(cand); !outcomesBitEqual(got, want) {
		t.Fatalf("AdmitExcluding(nil) = %+v, want Admit = %+v", got, want)
	}
	short := []bool{true}
	agg.Save(&snap)
	agg.RemoveAt(0)
	want := agg.Admit(cand)
	agg.Restore(&snap)
	if got := agg.AdmitExcluding(cand, short); !outcomesBitEqual(got, want) {
		t.Fatalf("AdmitExcluding(short mask) = %+v, want %+v", got, want)
	}
}

// TestAggregateAdmitExcludingAllocs pins the read-only what-if at zero
// allocations — the cluster planner runs one per (GPU, preemptor) pair,
// concurrently across nodes.
func TestAggregateAdmitExcludingAllocs(t *testing.T) {
	device := gpu.MustLookup("A100X")
	agg := NewAggregate(device)
	for i := 0; i < 16; i++ {
		agg.Add(Load{SMPct: 7, BWPct: 5, MemMiB: 4096})
	}
	skip := make([]bool, 16)
	for i := 0; i < 16; i += 3 {
		skip[i] = true
	}
	cand := Load{SMPct: 25, BWPct: 60, MemMiB: 30000}
	var sink bool
	allocs := testing.AllocsPerRun(100, func() {
		sink = agg.AdmitExcluding(cand, skip).Interferes()
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("AdmitExcluding allocated %.1f objects per probe, want 0", allocs)
	}
}

// FuzzAdmitExcludingMatchesRemove drives random members and skip masks
// through both what-if forms and requires bit-equal outcomes plus an
// unchanged digest on the read-only side.
func FuzzAdmitExcludingMatchesRemove(f *testing.F) {
	f.Add(50.0, 30.0, int64(20000), 60.0, 80.0, int64(30000), 10.0, 5.0, int64(100), uint8(3))
	f.Add(0.0, 0.0, int64(0), 0.0, 0.0, int64(0), 0.0, 0.0, int64(0), uint8(7))
	f.Add(-5.0, 200.0, int64(-100), math.MaxFloat64, 1e-300, int64(1<<40), 0.3, 0.7, int64(7), uint8(0))
	f.Fuzz(func(t *testing.T, sm1, bw1 float64, mem1 int64,
		sm2, bw2 float64, mem2 int64, sm3, bw3 float64, mem3 int64, mask uint8) {
		device := gpu.MustLookup("A100X")
		agg := NewAggregate(device)
		loads := []Load{
			{SMPct: sm1, BWPct: bw1, MemMiB: mem1},
			{SMPct: sm2, BWPct: bw2, MemMiB: mem2},
			{SMPct: sm3, BWPct: bw3, MemMiB: mem3},
		}
		for _, l := range loads {
			agg.Add(l)
		}
		skip := make([]bool, len(loads))
		for i := range skip {
			skip[i] = mask&(1<<i) != 0
		}
		cand := Load{SMPct: sm1 + sm3, BWPct: bw2, MemMiB: mem1}

		before := agg.Digest()
		got := agg.AdmitExcluding(cand, skip)
		if d := agg.Digest(); d != before {
			t.Fatalf("AdmitExcluding mutated the aggregate: %016x -> %016x", before, d)
		}

		var snap Snapshot
		agg.Save(&snap)
		for i := len(loads) - 1; i >= 0; i-- {
			if skip[i] {
				agg.RemoveAt(i)
			}
		}
		want := agg.Admit(cand)
		agg.Restore(&snap)
		if !outcomesBitEqual(got, want) {
			t.Fatalf("read-only what-if diverged:\ngot  %+v\nwant %+v", got, want)
		}
	})
}

// TestAggregateMutateAllocs pins Add and RemoveAt at zero allocations
// once capacity is warm: the runtime half of their //repro:hotpath
// annotations (Add's amortized growth is excused by warmed capacity,
// which Reset retains).
func TestAggregateMutateAllocs(t *testing.T) {
	device := gpu.MustLookup("A100X")
	agg := NewAggregate(device)
	for i := 0; i < 32; i++ {
		agg.Add(Load{SMPct: 1, BWPct: 1, MemMiB: 16})
	}
	agg.Reset()
	for i := 0; i < 16; i++ {
		agg.Add(Load{SMPct: 1, BWPct: 1, MemMiB: 16})
	}
	allocs := testing.AllocsPerRun(200, func() {
		agg.Add(Load{SMPct: 2, BWPct: 3, MemMiB: 64})
		agg.RemoveAt(7)
	})
	if allocs != 0 {
		t.Fatalf("Add+RemoveAt allocated %.1f objects per cycle, want 0", allocs)
	}

	// Save/Restore with a warmed snapshot buffer is also allocation-free:
	// the cluster dispatcher runs one what-if per admission attempt.
	var snap Snapshot
	agg.Save(&snap)
	allocs = testing.AllocsPerRun(200, func() {
		agg.Save(&snap)
		agg.RemoveAt(3)
		agg.RemoveAt(0)
		agg.Restore(&snap)
	})
	if allocs != 0 {
		t.Fatalf("Save+Restore what-if allocated %.1f objects per cycle, want 0", allocs)
	}
}

// TestAggregateSnapshotRoundTrip pins the what-if contract: mutate after
// Save, Restore, and every sum and member must be bit-identical to the
// saved state — including the admission decision that follows.
func TestAggregateSnapshotRoundTrip(t *testing.T) {
	device := gpu.MustLookup("A100X")
	agg := NewAggregate(device)
	members := []Load{
		{SMPct: 33.3, BWPct: 11.1, MemMiB: 20480},
		{SMPct: 0.1, BWPct: 66.6, MemMiB: 4096},
		{SMPct: 28.7, BWPct: 9.9, MemMiB: 30000},
	}
	for _, l := range members {
		agg.Add(l)
	}
	probe := Load{SMPct: 30.0, BWPct: 10.0, MemMiB: 1024}
	before := agg.Admit(probe)

	var snap Snapshot
	agg.Save(&snap)
	agg.RemoveAt(1)
	agg.Add(Load{SMPct: 99, BWPct: 99, MemMiB: 1 << 40})
	agg.Restore(&snap)

	if agg.Len() != len(members) {
		t.Fatalf("restored member count = %d, want %d", agg.Len(), len(members))
	}
	for i, want := range members {
		if agg.At(i) != want {
			t.Fatalf("restored member %d = %+v, want %+v", i, agg.At(i), want)
		}
	}
	after := agg.Admit(probe)
	if before != after {
		t.Fatalf("admission outcome drifted across save/restore:\nbefore %+v\nafter  %+v", before, after)
	}
}

// FuzzAggregateMatchesPredict drives random member sequences (with a
// removal in the middle) through the aggregate and requires bit-equal
// sums and identical decisions versus Predict over the same surviving
// sequence — the contract the golden dispatch logs rest on.
func FuzzAggregateMatchesPredict(f *testing.F) {
	f.Add(50.0, 30.0, int64(20000), 60.0, 80.0, int64(30000), 10.0, 5.0, int64(100), uint8(1))
	f.Add(0.0, 0.0, int64(0), 0.0, 0.0, int64(0), 0.0, 0.0, int64(0), uint8(0))
	f.Add(-5.0, 200.0, int64(-100), math.MaxFloat64, 1e-300, int64(1<<40), 0.3, 0.7, int64(7), uint8(2))
	f.Add(33.3, 66.6, int64(40960), 0.1, 0.2, int64(40961), 99.9, 0.05, int64(1), uint8(5))
	f.Fuzz(func(t *testing.T, sm1, bw1 float64, mem1 int64,
		sm2, bw2 float64, mem2 int64, sm3, bw3 float64, mem3 int64, drop uint8) {
		device := gpu.MustLookup("A100X")
		members := []*profile.TaskProfile{
			aggProfile("a", sm1, bw1, mem1),
			aggProfile("b", sm2, bw2, mem2),
			aggProfile("c", sm3, bw3, mem3),
		}

		agg := NewAggregate(device)
		for i, m := range members {
			out := agg.Admit(ProfileLoad(m))
			want := Predict(device, members[:i+1])
			if out.Interferes() != want.Interferes {
				t.Fatalf("step %d: Admit=%v Predict=%v", i, out.Interferes(), want.Interferes)
			}
			agg.Add(ProfileLoad(m))
			got := agg.Estimate()
			if math.Float64bits(got.CombinedSMUtilPct) != math.Float64bits(want.CombinedSMUtilPct) ||
				math.Float64bits(got.CombinedBWUtilPct) != math.Float64bits(want.CombinedBWUtilPct) ||
				got.CombinedMaxMemMiB != want.CombinedMaxMemMiB ||
				math.Float64bits(got.Severity) != math.Float64bits(want.Severity) ||
				!reflect.DeepEqual(got.Types, want.Types) {
				t.Fatalf("step %d: aggregate estimate diverged from Predict:\ngot  %+v\nwant %+v", i, got, want)
			}
		}

		// Remove one member and compare against Predict over the rest.
		i := int(drop) % len(members)
		agg.RemoveAt(i)
		rest := append(append([]*profile.TaskProfile{}, members[:i]...), members[i+1:]...)
		got := agg.Estimate()
		want := Predict(device, rest)
		if math.Float64bits(got.CombinedSMUtilPct) != math.Float64bits(want.CombinedSMUtilPct) ||
			math.Float64bits(got.CombinedBWUtilPct) != math.Float64bits(want.CombinedBWUtilPct) ||
			got.CombinedMaxMemMiB != want.CombinedMaxMemMiB ||
			math.Float64bits(got.Severity) != math.Float64bits(want.Severity) ||
			!reflect.DeepEqual(got.Types, want.Types) {
			t.Fatalf("after RemoveAt(%d): aggregate diverged from Predict:\ngot  %+v\nwant %+v", i, got, want)
		}
	})
}
