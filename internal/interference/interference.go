// Package interference implements the paper's interference predictor
// (§IV-B): "Two workflows are predicted to interfere if they have combined
// average SM utilization over 100%, combined average memory bandwidth
// utilization over 100%, or combined maximum memory utilization above the
// device memory capacity."
//
// It also implements the typed-interference extension the paper sketches
// as future work (§VI): a per-resource severity score distinguishing
// compute, bandwidth and capacity interference, used by the extended
// scheduler policy and the ablation benches.
package interference

import (
	"fmt"
	"sort"
	"strings"

	"gpushare/internal/gpu"
	"gpushare/internal/profile"
)

// Type labels one interference mechanism.
type Type string

const (
	// Compute: combined average SM utilization exceeds the device.
	Compute Type = "compute"
	// Bandwidth: combined average memory-bandwidth utilization exceeds
	// the device.
	Bandwidth Type = "memory-bandwidth"
	// Capacity: combined maximum memory footprints exceed device memory.
	// Unlike the other two, capacity interference is fatal (OOM), not a
	// slowdown.
	Capacity Type = "memory-capacity"
)

// Estimate is the prediction for one candidate collocation group.
type Estimate struct {
	// CombinedSMUtilPct is the sum of average SM utilizations (percent).
	CombinedSMUtilPct float64
	// CombinedBWUtilPct is the sum of average bandwidth utilizations.
	CombinedBWUtilPct float64
	// CombinedMaxMemMiB is the sum of maximum memory footprints.
	CombinedMaxMemMiB int64
	// DeviceMemMiB is the capacity the group was checked against.
	DeviceMemMiB int64

	// Interferes is the paper's binary prediction (any rule violated).
	Interferes bool
	// Types lists the violated rules, in Compute, Bandwidth, Capacity
	// order.
	Types []Type

	// Severity is the typed-interference extension: the predicted
	// fractional slowdown from resource oversubscription, 0 when no rule
	// is violated. Capacity violations force severity 1 (the group
	// cannot run).
	Severity float64
}

// Has reports whether the estimate includes the given interference type.
func (e Estimate) Has(t Type) bool {
	for _, x := range e.Types {
		if x == t {
			return true
		}
	}
	return false
}

// String renders a compact diagnosis.
func (e Estimate) String() string {
	if !e.Interferes {
		return fmt.Sprintf("no interference (SM %.1f%%, BW %.1f%%, mem %d/%d MiB)",
			e.CombinedSMUtilPct, e.CombinedBWUtilPct, e.CombinedMaxMemMiB, e.DeviceMemMiB)
	}
	parts := make([]string, len(e.Types))
	for i, t := range e.Types {
		parts[i] = string(t)
	}
	return fmt.Sprintf("interferes [%s] severity %.2f (SM %.1f%%, BW %.1f%%, mem %d/%d MiB)",
		strings.Join(parts, ","), e.Severity,
		e.CombinedSMUtilPct, e.CombinedBWUtilPct, e.CombinedMaxMemMiB, e.DeviceMemMiB)
}

// Predict applies the paper's rules to a candidate group of task profiles
// sharing one device.
func Predict(device gpu.DeviceSpec, group []*profile.TaskProfile) Estimate {
	var e Estimate
	e.DeviceMemMiB = device.MemoryMiB
	for _, p := range group {
		if p == nil {
			continue
		}
		e.CombinedSMUtilPct += p.AvgSMUtilPct
		e.CombinedBWUtilPct += p.AvgBWUtilPct
		e.CombinedMaxMemMiB += p.MaxMemMiB
	}

	if e.CombinedSMUtilPct > 100 {
		e.Types = append(e.Types, Compute)
	}
	if e.CombinedBWUtilPct > 100 {
		e.Types = append(e.Types, Bandwidth)
	}
	if e.CombinedMaxMemMiB > device.MemoryMiB {
		e.Types = append(e.Types, Capacity)
	}
	e.Interferes = len(e.Types) > 0
	e.Severity = severity(e)
	return e
}

// severity computes the typed-interference score: per slowdown resource,
// the oversubscription fraction excess/(excess+1); overall, the max across
// resources (slowdowns do not add — the binding resource dominates).
// Capacity violations are fatal.
func severity(e Estimate) float64 {
	if e.Has(Capacity) {
		return 1
	}
	var s float64
	if x := e.CombinedSMUtilPct/100 - 1; x > 0 {
		if v := x / (x + 1); v > s {
			s = v
		}
	}
	if x := e.CombinedBWUtilPct/100 - 1; x > 0 {
		if v := x / (x + 1); v > s {
			s = v
		}
	}
	return s
}

// Fits reports whether adding candidate to group keeps the paper's rules
// satisfied — the incremental check the scheduler's packing loop uses.
func Fits(device gpu.DeviceSpec, group []*profile.TaskProfile, candidate *profile.TaskProfile) bool {
	g := make([]*profile.TaskProfile, 0, len(group)+1)
	g = append(g, group...)
	g = append(g, candidate)
	return !Predict(device, g).Interferes
}

// Matrix computes the pairwise interference estimates across a set of
// profiles: entry (i,j) is the prediction for co-scheduling profiles i and
// j. The diagonal predicts self-collocation (two instances of the task).
type Matrix struct {
	Labels    []string
	Estimates [][]Estimate
}

// BuildMatrix constructs the pairwise matrix, ordering rows/columns by
// profile key for determinism.
func BuildMatrix(device gpu.DeviceSpec, profiles []*profile.TaskProfile) Matrix {
	sorted := make([]*profile.TaskProfile, len(profiles))
	copy(sorted, profiles)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key() < sorted[j].Key() })

	m := Matrix{
		Labels:    make([]string, len(sorted)),
		Estimates: make([][]Estimate, len(sorted)),
	}
	for i, p := range sorted {
		m.Labels[i] = p.Key()
		m.Estimates[i] = make([]Estimate, len(sorted))
		for j, q := range sorted {
			m.Estimates[i][j] = Predict(device, []*profile.TaskProfile{p, q})
		}
	}
	return m
}
