package interference

import (
	"testing"

	"gpushare/internal/gpu"
)

func reasonDevice() gpu.DeviceSpec {
	return gpu.DeviceSpec{Name: "test", SMCount: 108, MemoryMiB: 40960}
}

func TestOutcomeReason(t *testing.T) {
	a := NewAggregate(reasonDevice())

	// Admitted probe: zero-value reason.
	r := a.Admit(Load{SMPct: 40, BWPct: 30, MemMiB: 1024}).Reason()
	if r.Rejected() || r != (Reason{}) {
		t.Fatalf("admitted probe reason = %+v", r)
	}
	if got := r.String(); got != "admit" {
		t.Fatalf("admit String = %q", got)
	}

	// Compute + bandwidth violation with exact integer scaling.
	a.Add(Load{SMPct: 80, BWPct: 90, MemMiB: 1024})
	r = a.Admit(Load{SMPct: 52.5, BWPct: 20.25, MemMiB: 1024}).Reason()
	if r.Rules != MaskCompute|MaskBandwidth {
		t.Fatalf("rules = %v", r.Rules)
	}
	if r.SMExcessMilli != 32500 || r.BWExcessMilli != 10250 {
		t.Fatalf("excess = sm %d bw %d, want 32500 / 10250", r.SMExcessMilli, r.BWExcessMilli)
	}
	if r.MemExcessMiB != 0 {
		t.Fatalf("mem excess = %d on a fitting footprint", r.MemExcessMiB)
	}

	// Capacity violation in MiB.
	r = a.Admit(Load{SMPct: 1, BWPct: 1, MemMiB: 40960}).Reason()
	if r.Rules != MaskCapacity {
		t.Fatalf("rules = %v", r.Rules)
	}
	if r.MemExcessMiB != 1024 {
		t.Fatalf("mem excess = %d, want 1024", r.MemExcessMiB)
	}
}

func TestRuleMaskString(t *testing.T) {
	cases := map[RuleMask]string{
		0:                          "ok",
		MaskCompute:                "compute",
		MaskBandwidth:              "bandwidth",
		MaskCapacity:               "capacity",
		MaskClientCap:              "client-cap",
		MaskCompute | MaskCapacity: "compute,capacity",
		MaskBandwidth | MaskCapacity | MaskClientCap: "bandwidth,capacity,client-cap",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("RuleMask(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func TestReasonString(t *testing.T) {
	r := Reason{Rules: MaskCompute | MaskCapacity, SMExcessMilli: 32500, MemExcessMiB: 512}
	want := "reject[compute,capacity] sm+32500m mem+512MiB"
	if got := r.String(); got != want {
		t.Fatalf("Reason.String() = %q, want %q", got, want)
	}
}

// TestOutcomeReasonAllocs is the runtime half of Reason's
// //repro:hotpath annotation: deriving a typed reason from a probe
// outcome allocates nothing, so dispatchers can record provenance for
// every probe.
func TestOutcomeReasonAllocs(t *testing.T) {
	a := NewAggregate(reasonDevice())
	a.Add(Load{SMPct: 80, BWPct: 90, MemMiB: 1024})
	load := Load{SMPct: 52.5, BWPct: 20.25, MemMiB: 1 << 20}
	var sink Reason
	allocs := testing.AllocsPerRun(200, func() {
		sink = a.Admit(load).Reason()
	})
	if allocs != 0 {
		t.Fatalf("Outcome.Reason allocated %.1f objects, want 0", allocs)
	}
	if !sink.Rejected() {
		t.Fatal("pin never exercised a rejection")
	}
}

// TestAggregateDigestAllocs pins Digest allocation-free; the what-if
// provenance records call it twice per probe.
func TestAggregateDigestAllocs(t *testing.T) {
	a := NewAggregate(reasonDevice())
	for i := 0; i < 8; i++ {
		a.Add(Load{SMPct: float64(i), BWPct: float64(2 * i), MemMiB: int64(i) * 100})
	}
	var sink uint64
	allocs := testing.AllocsPerRun(200, func() { sink = a.Digest() })
	if allocs != 0 {
		t.Fatalf("Aggregate.Digest allocated %.1f objects, want 0", allocs)
	}
	_ = sink
}

// TestAggregateDigestTracksState pins the digest's provenance value: it
// is stable over save/probe/restore round trips and changes when the
// membership changes.
func TestAggregateDigestTracksState(t *testing.T) {
	a := NewAggregate(reasonDevice())
	a.Add(Load{SMPct: 30, BWPct: 20, MemMiB: 2048})
	a.Add(Load{SMPct: 40, BWPct: 10, MemMiB: 1024})
	before := a.Digest()

	var s Snapshot
	a.Save(&s)
	a.RemoveAt(0)
	if a.Digest() == before {
		t.Fatal("digest unchanged after membership change")
	}
	a.Restore(&s)
	if got := a.Digest(); got != before {
		t.Fatalf("digest after restore = %016x, want %016x", got, before)
	}
}
