package interference

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gpushare/internal/gpu"
	"gpushare/internal/profile"
)

func a100x() gpu.DeviceSpec { return gpu.MustLookup("A100X") }

func prof(name string, sm, bw float64, mem int64) *profile.TaskProfile {
	return &profile.TaskProfile{
		Workload: name, Size: "1x",
		AvgSMUtilPct: sm, AvgBWUtilPct: bw, MaxMemMiB: mem,
	}
}

func TestNoInterference(t *testing.T) {
	e := Predict(a100x(), []*profile.TaskProfile{
		prof("a", 40, 10, 1000),
		prof("b", 50, 20, 2000),
	})
	if e.Interferes || len(e.Types) != 0 || e.Severity != 0 {
		t.Fatalf("unexpected interference: %+v", e)
	}
	if e.CombinedSMUtilPct != 90 || e.CombinedBWUtilPct != 30 || e.CombinedMaxMemMiB != 3000 {
		t.Fatalf("sums wrong: %+v", e)
	}
	if !strings.Contains(e.String(), "no interference") {
		t.Fatalf("String = %q", e.String())
	}
}

func TestComputeRuleExactThreshold(t *testing.T) {
	// Exactly 100% does not interfere; the rule is "over 100%".
	e := Predict(a100x(), []*profile.TaskProfile{prof("a", 60, 0, 1), prof("b", 40, 0, 1)})
	if e.Interferes {
		t.Fatal("exactly 100% flagged")
	}
	e = Predict(a100x(), []*profile.TaskProfile{prof("a", 60, 0, 1), prof("b", 40.1, 0, 1)})
	if !e.Interferes || !e.Has(Compute) {
		t.Fatalf("100.1%% not flagged: %+v", e)
	}
}

func TestBandwidthRule(t *testing.T) {
	e := Predict(a100x(), []*profile.TaskProfile{prof("a", 10, 60, 1), prof("b", 10, 50, 1)})
	if !e.Interferes || !e.Has(Bandwidth) || e.Has(Compute) {
		t.Fatalf("bandwidth rule: %+v", e)
	}
}

func TestCapacityRule(t *testing.T) {
	cap := a100x().MemoryMiB
	e := Predict(a100x(), []*profile.TaskProfile{
		prof("a", 10, 1, cap/2+1), prof("b", 10, 1, cap/2+1),
	})
	if !e.Interferes || !e.Has(Capacity) {
		t.Fatalf("capacity rule: %+v", e)
	}
	if e.Severity != 1 {
		t.Fatalf("capacity severity = %v, want fatal 1", e.Severity)
	}
}

func TestSeverityMonotone(t *testing.T) {
	base := 0.0
	for _, sm := range []float64{110, 130, 160, 200} {
		e := Predict(a100x(), []*profile.TaskProfile{prof("a", sm/2, 0, 1), prof("b", sm/2, 0, 1)})
		if e.Severity <= base {
			t.Fatalf("severity not increasing at SM %v: %v <= %v", sm, e.Severity, base)
		}
		base = e.Severity
	}
	if base >= 1 {
		t.Fatalf("slowdown severity must stay below 1, got %v", base)
	}
}

func TestSeverityTakesBindingResource(t *testing.T) {
	e := Predict(a100x(), []*profile.TaskProfile{prof("a", 80, 90, 1), prof("b", 30, 60, 1)})
	// SM excess 0.10 → 0.0909; BW excess 0.50 → 0.333. Binding = BW.
	want := 0.5 / 1.5
	if math.Abs(e.Severity-want) > 1e-9 {
		t.Fatalf("severity = %v, want %v", e.Severity, want)
	}
}

func TestPredictIgnoresNil(t *testing.T) {
	e := Predict(a100x(), []*profile.TaskProfile{prof("a", 50, 1, 1), nil})
	if e.CombinedSMUtilPct != 50 {
		t.Fatalf("nil profile contaminated sums: %+v", e)
	}
}

func TestFits(t *testing.T) {
	group := []*profile.TaskProfile{prof("a", 50, 5, 1000)}
	if !Fits(a100x(), group, prof("b", 40, 5, 1000)) {
		t.Fatal("compatible candidate rejected")
	}
	if Fits(a100x(), group, prof("b", 60, 5, 1000)) {
		t.Fatal("SM-violating candidate accepted")
	}
	if Fits(a100x(), group, prof("b", 10, 5, a100x().MemoryMiB)) {
		t.Fatal("capacity-violating candidate accepted")
	}
	// Fits must not mutate the group.
	if len(group) != 1 {
		t.Fatal("Fits mutated the group")
	}
}

func TestMatrixDeterministicAndSymmetric(t *testing.T) {
	profiles := []*profile.TaskProfile{
		prof("z", 70, 5, 1000),
		prof("a", 20, 1, 500),
		prof("m", 50, 40, 2000),
	}
	m := BuildMatrix(a100x(), profiles)
	if len(m.Labels) != 3 || m.Labels[0] != "a/1x" || m.Labels[2] != "z/1x" {
		t.Fatalf("labels = %v", m.Labels)
	}
	for i := range m.Estimates {
		for j := range m.Estimates[i] {
			if m.Estimates[i][j].Interferes != m.Estimates[j][i].Interferes {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Diagonal = self-collocation: z+z = 140% SM → interferes.
	if !m.Estimates[2][2].Interferes {
		t.Fatal("z self-collocation should interfere")
	}
	if m.Estimates[0][0].Interferes {
		t.Fatal("a self-collocation should not interfere")
	}
}

func TestPredictEmptyGroup(t *testing.T) {
	e := Predict(a100x(), nil)
	if e.Interferes {
		t.Fatal("empty group interferes")
	}
}

func TestSeverityBoundsProperty(t *testing.T) {
	dev := a100x()
	f := func(sm1, sm2, bw1, bw2 uint8, mem1, mem2 uint16) bool {
		e := Predict(dev, []*profile.TaskProfile{
			prof("a", float64(sm1%100), float64(bw1%100), int64(mem1)),
			prof("b", float64(sm2%100), float64(bw2%100), int64(mem2)),
		})
		if e.Severity < 0 || e.Severity > 1 {
			return false
		}
		// Severity positive iff interfering.
		return e.Interferes == (e.Severity > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
