// Corpus for the floateq analyzer: exact equality on float operands is
// flagged in metric-bearing packages; integer comparisons, constant
// folding and the NaN idiom are not.
package corpus

func badEq(a, b float64) bool {
	return a == b // want "exact == comparison of floating-point values"
}

func badNeq(util float64) bool {
	return util != 0 // want "exact != comparison of floating-point values"
}

func badFloat32(x float32) bool {
	if x == 1.5 { // want "exact == comparison of floating-point values"
		return true
	}
	return false
}

// goodInt: integer equality is exact.
func goodInt(a, b int64) bool { return a == b }

// goodOrdering: <, <=, >, >= on floats are fine — thresholds are the
// intended float comparison.
func goodOrdering(a, b float64) bool { return a < b || a >= 2*b }

// goodConst: two constants fold at compile time.
func goodConst() bool { return 0.1+0.2 == 0.3 }

// goodNaN: x != x is the portable NaN test.
func goodNaN(x float64) bool { return x != x }
