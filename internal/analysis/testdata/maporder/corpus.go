// Corpus for the maporder analyzer: order-dependent effects inside
// map-range loops are flagged unless the collected slice is sorted
// afterwards in the same block.
package corpus

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// badAppend leaks map order into the returned slice.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends to \"keys\" with no sort afterwards"
		keys = append(keys, k)
	}
	return keys
}

// badWrite emits bytes in map order.
func badWrite(w io.Writer, m map[string]int) {
	for k, v := range m { // want "loop writes output directly"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// badBuilder accumulates rendered text in map order.
func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "loop writes output directly"
		b.WriteString(k)
	}
	return b.String()
}

// goodSortedAfter is the sanctioned collect-sort-iterate idiom.
func goodSortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortSlice also counts: the slice is ordered before anyone reads it.
func goodSortSlice(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// goodAggregate folds commutatively; no order escapes.
func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodLocalAppend restarts the slice each iteration, so no cross-key
// ordering survives the loop.
func goodLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// goodSliceRange ranges a slice, which is ordered; not a finding.
func goodSliceRange(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
