// Corpus for the floatfold analyzer. The package pretends to be a
// metric package, so order-nondeterministic float accumulation —
// folding in map iteration order, or reordering the reduction's
// operands — must be flagged, while slice-order left folds, integer
// sums and per-iteration accumulators stay allowed.
package corpus

func mapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation folds in map iteration order"
	}
	return sum
}

func mapSumExplicit(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want "float accumulation folds in map iteration order"
	}
	return sum
}

func mapProduct(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want "float accumulation folds in map iteration order"
	}
	return p
}

func reordered(xs []float64) float64 {
	var acc float64
	for _, x := range xs {
		acc = x + acc // want "float reduction reorders operands"
	}
	return acc
}

// good: slice-order left folds are deterministic.
func sliceSum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// good: integer addition is exact and associative; order cannot matter.
func intMapSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// good: an accumulator scoped to a single iteration never folds across
// the randomized order — only its slice-ordered inner loop.
func perKey(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, xs := range m {
		var s float64
		for _, x := range xs {
			s += x
		}
		out[k] = s
	}
	return out
}

// good: operand-swapped addition outside any loop is a plain sum, not a
// reduction.
func notALoop(acc, x float64) float64 {
	acc = x + acc
	return acc
}
