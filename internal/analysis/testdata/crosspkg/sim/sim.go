// Package sim pretends to be a simulator package. Every hazard below
// is rooted one package away, in the clockutil corpus package; the
// diagnostics must anchor here, at the launder points, with the root
// position carried in the message.
package sim

import "gpushare/internal/clockutil"

// stamp hides time.Now one package away.
func stamp() int64 {
	return clockutil.Stamp() // want "call to clockutil.Stamp reaches nondeterminism: calls time.Now"
}

// record is on the hot path; the unsized append it reaches lives in
// clockutil, so the finding anchors at the annotated function.
//
//repro:hotpath
func record(buf []float64, v float64) []float64 { // want "not allocation-free: via clockutil.Grow: append may grow the backing array"
	return clockutil.Grow(buf, v)
}

// meanLatency launders a map-order float fold across the package
// boundary.
func meanLatency(byClient map[string]float64) float64 {
	return clockutil.MeanOf(byClient) // want "call to clockutil.MeanOf reaches order-nondeterministic float accumulation"
}

// scaled calls a clean helper: cross-package edges alone must not
// produce findings.
//
//repro:hotpath
func scaled(x float64) float64 {
	return clockutil.Scale(x)
}
