// Package clockutil is a corpus helper package deliberately OUTSIDE
// every analyzer scope: nothing is reported here. Each hazard rooted
// below must instead surface at the in-scope call sites in the sibling
// corpus package, through the cross-package call-graph summaries.
package clockutil

import "time"

// Stamp launders the wall clock behind an innocent-looking call.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Grow launders an unsized append.
func Grow(s []float64, v float64) []float64 {
	return append(s, v)
}

// MeanOf launders a map-iteration-order float fold.
func MeanOf(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	if len(m) == 0 {
		return 0
	}
	return s / float64(len(m))
}

// Scale is clean: calling it must not taint anyone.
func Scale(x float64) float64 {
	return x * 2
}
