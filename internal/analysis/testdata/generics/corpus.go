// Corpus for analyzer behavior on generic code: instantiated calls
// (implicit and explicit, functions and methods) must resolve to their
// origin — no panic, no silent skip — facts must propagate through
// instantiation, and type-parameter interfaces must not be charged as
// boxing.
package corpus

// grow is generic; its unsized append is charged to hot-path callers
// of every instantiation.
func grow[T any](s []T, v T) []T {
	return append(s, v)
}

//repro:hotpath
func useGrow(s []float64) []float64 { // want "not allocation-free: via corpus.grow: append may grow the backing array"
	return grow(s, 1.0)
}

//repro:hotpath
func useGrowExplicit(s []int) []int { // want "not allocation-free: via corpus.grow: append may grow the backing array"
	return grow[int](s, 1)
}

// passThrough's parameter is a type parameter, not an interface: calls
// instantiated at int must not be charged as boxing.
func passThrough[T any](v T) T { return v }

//repro:hotpath
func usePassThrough(x int) int {
	return passThrough(x)
}

type ring[T any] struct{ buf []T }

func (r *ring[T]) push(v T) {
	r.buf = append(r.buf, v)
}

//repro:hotpath
func usePush(r *ring[int]) { // want "not allocation-free: via .*ring.*push: append may grow the backing array"
	r.push(1)
}

// mapSum is generic over the key type; the map-order fold is rooted —
// and, this corpus being in scope, flagged — right here.
func mapSum[K comparable](m map[K]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want "float accumulation folds in map iteration order"
	}
	return s
}

// useMapSum inherits the fold fact, but the root is in scope and
// already flagged: the call site must stay quiet.
func useMapSum(m map[string]float64) float64 {
	return mapSum(m)
}
