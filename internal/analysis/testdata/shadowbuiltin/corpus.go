// Corpus for the shadowbuiltin analyzer: declarations shadowing
// predeclared identifiers are flagged wherever they bind a scope name;
// struct fields and methods (reached through selectors) are not.
package corpus

func badLocal(limit int) int {
	cap := limit * 2 // want "declaration of \"cap\" shadows the predeclared identifier"
	return cap
}

func badParam(len int) int { // want "declaration of \"len\" shadows the predeclared identifier"
	return len + 1
}

func badShortRange() int {
	total := 0
	for _, max := range []int{1, 2, 3} { // want "declaration of \"max\" shadows the predeclared identifier"
		total += max
	}
	return total
}

var badPackageVar = 0 // just a name check below

// min shadows the predeclared min at package scope.
var min = badPackageVar // want "declaration of \"min\" shadows the predeclared identifier"

func badFunc() {}

// new shadows the builtin allocator for the whole package.
func copy() {} // want "declaration of \"copy\" shadows the predeclared identifier"

type badType struct {
	// goodField: fields are selected (x.cap), never bare, so they do not
	// shadow.
	cap int
	len int
}

// goodMethod: methods are reached through selectors too.
func (b badType) append() int { return b.cap + b.len }

func goodNames(clientCap, bufLen int) int {
	buf := make([]int, 0, clientCap)
	return bufLen + cap(buf)
}
