// Corpus for the errcheckio analyzer: statement-position writer calls
// whose error silently vanishes are flagged; in-memory buffers, stderr
// diagnostics and explicit acknowledgment are not.
package corpus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// table mimics the repo's report renderers.
type table struct{}

func (t *table) Render(w io.Writer) error    { _, err := io.WriteString(w, "t"); return err }
func (t *table) RenderCSV(w io.Writer) error { _, err := io.WriteString(w, "t"); return err }

func bad(w io.Writer, t *table) {
	fmt.Fprintf(w, "x=%d\n", 1)           // want "error from fmt.Fprintf is dropped"
	fmt.Fprintln(w, "done")               // want "error from fmt.Fprintln is dropped"
	io.WriteString(w, "raw")              // want "error from io.WriteString is dropped"
	t.Render(os.Stdout)                   // want "error from .*Render is dropped"
	t.RenderCSV(w)                        // want "error from .*RenderCSV is dropped"
	json.NewEncoder(w).Encode(struct{}{}) // want "error from .*Encode.* is dropped"
}

func good(w io.Writer, t *table) error {
	// In-memory builders never fail.
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d\n", 1)
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "done")
	// Best-effort diagnostics to stderr.
	fmt.Fprintln(os.Stderr, "warning: something")
	// Checked and returned.
	if err := t.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s", b.String()); err != nil {
		return err
	}
	// Explicit acknowledgment is visible in review; not a silent drop.
	_ = t.RenderCSV(w)
	return nil
}

// renderAll checks its own errors, but it (transitively) writes output
// and returns error: dropping ITS result is the same hazard with one
// wrapper layer in between.
func renderAll(w io.Writer, t *table) error {
	if err := t.Render(w); err != nil {
		return err
	}
	return nil
}

func wrapperBad(w io.Writer, t *table) {
	renderAll(w, t) // want "error from corpus.renderAll is dropped; it writes output via"
}

func wrapperGood(w io.Writer, t *table) error {
	return renderAll(w, t)
}
