// Corpus for the nodeterminism analyzer. The package pretends to be a
// simulator package (the test passes an internal/gpusim-style import
// path), so wall-clock and math/rand use must be flagged while pure
// time conversions stay allowed.
package corpus

import (
	"math/rand" // want "import of math/rand in a simulator package"
	"time"
)

// bad: wall-clock reads and timers leak host time into the simulation.
func bad() time.Duration {
	start := time.Now()          // want "call to time.Now in a simulator package"
	time.Sleep(time.Millisecond) // want "call to time.Sleep in a simulator package"
	_ = time.After(time.Second)  // want "call to time.After in a simulator package"
	_ = rand.Float64()
	return time.Since(start) // want "call to time.Since in a simulator package"
}

// good: duration constants, conversions and arithmetic carry no clock.
func good(d time.Duration) time.Duration {
	total := 2 * time.Second
	if d > time.Millisecond {
		total += d.Round(time.Microsecond)
	}
	return total
}
