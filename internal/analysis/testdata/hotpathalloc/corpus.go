// Corpus for the hotpathalloc analyzer. Only functions annotated
// //repro:hotpath are held to the allocation-free contract; each case
// below exercises one allocation heuristic (escape, closure, boxing,
// bare append, literals, make/new, string concat, goroutines, dynamic
// and external calls) plus the //repro:allow escape hatch and the
// call-graph propagation through unannotated wrappers.
package corpus

import "fmt"

type item struct{ a, b int }

// notHot allocates freely; without the annotation there is no contract.
func notHot() []*item {
	return []*item{{a: 1}, {b: 2}}
}

//repro:hotpath
func escapes() *item {
	return &item{a: 1} // want "not allocation-free: address of composite literal escapes to the heap"
}

//repro:hotpath
func closes(xs []int) int {
	f := func(x int) int { return x + 1 } // want "function literal allocates a closure"
	return f(1)                           // want "indirect call may allocate"
}

func anyArg(v interface{}) {}

//repro:hotpath
func boxes(x int) {
	anyArg(x) // want "argument boxed into interface"
}

//repro:hotpath
func bareAppend(s []int, v int) []int {
	return append(s, v) // want "append may grow the backing array"
}

//repro:hotpath
func literals() {
	m := map[int]int{} // want "map literal allocates"
	_ = m
	b := make([]byte, 16) // want "make allocates"
	_ = b
	p := new(item) // want "new allocates"
	_ = p
	s := []int{1, 2} // want "slice literal allocates its backing array"
	_ = s
}

//repro:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

func helperClean() {}

//repro:hotpath
func spawns() {
	go helperClean() // want "go statement allocates a goroutine"
}

//repro:hotpath
func external(x int) string {
	// Two facts on one line: the int boxed into Sprintf's variadic any
	// parameter, and the external call itself.
	return fmt.Sprintf("%d", x) // want "argument boxed into interface" "calls fmt.Sprintf, assumed to allocate"
}

type ticker interface{ Tick() }

//repro:hotpath
func dynamic(v ticker) {
	v.Tick() // want "dynamic call to .*Tick may allocate"
}

// growsHelper is not annotated, so its allocation is charged to its
// hot-path callers through the call-graph summary.
func growsHelper(s []int) []int {
	return append(s, 1)
}

//repro:hotpath
func wrapped(s []int) { // want "not allocation-free: via corpus.growsHelper: append may grow the backing array"
	_ = growsHelper(s)
}

func wrapsTwice(s []int) []int { return growsHelper(s) }

// deepWrapped inherits the fact two hops down; the via names the
// immediate callee, the position stays the root append.
//
//repro:hotpath
func deepWrapped(s []int) { // want "not allocation-free: via corpus.wrapsTwice: append may grow the backing array"
	_ = wrapsTwice(s)
}

//repro:hotpath
func leafHot() *item {
	return &item{} // want "not allocation-free: address of composite literal escapes to the heap"
}

// callsLeafHot must NOT repeat leafHot's finding: an annotated callee
// is flagged directly, not cascaded into every annotated caller.
//
//repro:hotpath
func callsLeafHot() {
	_ = leafHot()
}

// preallocated shows both halves of the sizing discipline: the one-time
// make is excused explicitly, and appends carrying its capacity
// evidence are not charged at all.
//
//repro:hotpath
func preallocated(n int) []int {
	out := make([]int, 0, n) //repro:allow:hotpathalloc one-time sizing allocation is the point of preallocating
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// allowedAbove uses the line-above directive placement.
//
//repro:hotpath
func allowedAbove() *item {
	//repro:allow:hotpathalloc freelist refill is the documented cold path
	return &item{}
}

// clean is on the hot path and genuinely allocation-free.
//
//repro:hotpath
func clean(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func hygiene() int {
	x := 1 //repro:allow:hotpathalloc nothing allocates here // want "unused //repro:allow:hotpathalloc suppression"
	return x
}

//repro:allow // want "malformed //repro:allow directive"
func malformedDirective() {}
