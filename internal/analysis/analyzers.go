package analysis

import "strings"

// simulatorPackages are the packages whose behavior feeds simulation
// results: any wall-clock or math/rand use here breaks run-to-run
// reproducibility.
var simulatorPackages = []string{
	"internal/arena",
	"internal/cluster",
	"internal/core",
	"internal/gpusim",
	"internal/eventq",
	"internal/experiments",
	"internal/interference",
	"internal/mps",
	"internal/obs",
	"internal/parallel",
}

// metricPackages carry float64 utilization/energy arithmetic where exact
// ==/!= comparison is a correctness hazard.
var metricPackages = []string{
	"internal/cluster",
	"internal/core",
	"internal/interference",
	"internal/metrics",
}

// writerPackages produce the harness's user-visible output; dropped write
// errors there silently truncate tables and figures.
var writerPackages = []string{
	"internal/report",
	"internal/experiments",
	"cmd/",
}

// matchSuffixes builds a Match function selecting import paths that
// contain any of the given module-relative fragments. Matching on
// fragments rather than exact paths keeps the scopes valid when the
// module is vendored or forked under a different module path, and lets
// the analysistest corpora opt into a scope by choosing a fake import
// path.
func matchSuffixes(fragments ...string) func(string) bool {
	return func(importPath string) bool {
		for _, f := range fragments {
			if strings.Contains(importPath, f) {
				return true
			}
		}
		return false
	}
}

// All returns the project's analyzers in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		MapOrder,
		FloatEq,
		ErrCheckIO,
		ShadowBuiltin,
		HotPathAlloc,
		FloatFold,
	}
}
