package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Interprocedural layer. The PR 1 analyzers were purely intraprocedural:
// a time.Now() or an allocating append laundered through one wrapper
// function escaped them entirely. This file builds, per package, a
// call graph over the declared functions and condenses it with Tarjan's
// SCC algorithm; per-function summaries (reaches-nondeterminism,
// may-allocate, unordered-float-fold, writes-output) are then computed
// as a fixpoint over the condensation — one bottom-up pass, since every
// SCC closes only after the SCCs it calls into. Cross-package edges
// resolve against summaries of already-processed packages (packages are
// visited in import topological order; Go forbids import cycles), keyed
// by types.Func full name so source-checked and export-data views of
// the same function unify.
//
// Summaries are deliberately optimistic at the module boundary in
// partial runs: a module-local callee whose package was not loaded
// contributes nothing. The enforced gate is the full-tree run
// (`make check` / CI analyze ./...), where every module package has a
// summary; single-package invocations degrade to same-package
// interprocedural precision instead of drowning in unknown-callee
// noise.

// maxFacts bounds each summary's fact list; hot-path diagnostics only
// ever cite the first fact, the rest exist so unions stay stable.
const maxFacts = 8

// Fact is one root cause recorded in a summary: the position is always
// the original site (the time.Now call, the composite literal), however
// many wrapper layers it propagated through. Via names the summarized
// function's immediate callee the fact arrived through ("" when the
// site is in the function itself).
type Fact struct {
	Desc string
	Via  string
	Pos  token.Position
}

// String renders the fact with its root position, e.g.
// "append grows the backing array (eventq.go:166)".
func (f Fact) String() string {
	s := f.Desc + " (" + filepath.Base(f.Pos.Filename) + ":" + fmt.Sprint(f.Pos.Line) + ")"
	if f.Via != "" {
		s = "via " + f.Via + ": " + s
	}
	return s
}

// FuncSummary is the interprocedural fixpoint result for one declared
// function: the invariant-relevant behaviors of the function and of
// everything it (transitively) calls inside the module.
type FuncSummary struct {
	FullName string
	PkgPath  string
	Hotpath  bool

	// Nondet holds wall-clock / math-rand reachability witnesses.
	Nondet []Fact
	// Allocs holds may-allocate witnesses (heap allocations, boxing,
	// closures, appends, calls assumed to allocate).
	Allocs []Fact
	// Folds holds order-nondeterministic float accumulation witnesses.
	Folds []Fact
	// WritesOutput reports that the function (transitively) performs
	// user-visible output writes; WriteRoot is one witness.
	WritesOutput bool
	WriteRoot    Fact
}

// SummarySet indexes every computed summary by function full name.
type SummarySet struct {
	byName map[string]*FuncSummary
}

// Of returns the summary for fn (resolving generic instances to their
// origin), or nil when fn was not part of the analyzed tree.
func (s *SummarySet) Of(fn *types.Func) *FuncSummary {
	if s == nil || fn == nil {
		return nil
	}
	return s.byName[fn.Origin().FullName()]
}

// Lookup returns the summary stored under a full name, for tests.
func (s *SummarySet) Lookup(fullName string) *FuncSummary {
	if s == nil {
		return nil
	}
	return s.byName[fullName]
}

// Len returns the number of summarized functions.
func (s *SummarySet) Len() int { return len(s.byName) }

// ComputeSummaries builds call-graph summaries for every function
// declared in pkgs. Facts whose site carries a matching //repro:allow
// directive are dropped at collection time, so a deliberately-allowed
// cold-path allocation does not taint its callers' summaries.
func ComputeSummaries(pkgs []*Package, allows *AllowIndex) *SummarySet {
	store := &SummarySet{byName: map[string]*FuncSummary{}}
	for _, pkg := range topoPackages(pkgs) {
		summarizePackage(pkg, store, allows)
	}
	return store
}

// topoPackages orders pkgs so that every package follows the packages
// it imports (among those given). Go rejects import cycles, so the
// depth-first traversal terminates.
func topoPackages(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	ordered := make([]*Package, 0, len(pkgs))
	seen := make(map[string]bool, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p.ImportPath] {
			return
		}
		seen[p.ImportPath] = true
		if p.Pkg != nil {
			for _, imp := range p.Pkg.Imports() {
				if q, ok := byPath[imp.Path()]; ok {
					visit(q)
				}
			}
		}
		ordered = append(ordered, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return ordered
}

// cgNode is one declared function during a package's fixpoint.
type cgNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	base *FuncSummary // direct facts + facts inherited across packages

	locals []*types.Func // same-package callees, deduped, stable order

	// Tarjan state.
	index, lowlink int
	onStack        bool
}

// summarizePackage collects per-function facts, condenses the local
// call graph, and stores the fixpoint summaries.
func summarizePackage(pkg *Package, store *SummarySet, allows *AllowIndex) {
	nodes := map[*types.Func]*cgNode{}
	var order []*cgNode
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pkg.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			n := collectFunc(pkg, fn, decl, store, allows)
			nodes[fn] = n
			order = append(order, n)
		}
	}

	for _, scc := range tarjanSCCs(order, nodes) {
		finalizeSCC(scc, nodes, store)
	}
}

// finalizeSCC unions the member base facts with the finalized summaries
// of callees outside the component and publishes one combined summary
// per member. Tarjan emits a component only after every component it
// calls into, so out-of-component callee summaries are already final.
func finalizeSCC(scc []*cgNode, nodes map[*types.Func]*cgNode, store *SummarySet) {
	inSCC := map[*types.Func]bool{}
	for _, n := range scc {
		inSCC[n.fn] = true
	}
	combined := &FuncSummary{}
	for _, n := range scc {
		mergeSummary(combined, n.base, "")
		for _, callee := range n.locals {
			if inSCC[callee] {
				continue // same component: its base merges in this loop
			}
			if cs := store.Of(callee); cs != nil {
				mergeSummary(combined, cs, displayName(callee))
			}
		}
	}
	sortFacts(combined)
	for _, n := range scc {
		s := &FuncSummary{
			FullName:     n.fn.FullName(),
			PkgPath:      n.base.PkgPath,
			Hotpath:      n.base.Hotpath,
			Nondet:       combined.Nondet,
			Allocs:       combined.Allocs,
			Folds:        combined.Folds,
			WritesOutput: combined.WritesOutput,
			WriteRoot:    combined.WriteRoot,
		}
		store.byName[n.fn.FullName()] = s
	}
}

// mergeSummary folds src's facts into dst. When via is non-empty the
// facts arrive through a call to via, which becomes the first hop
// recorded on each inherited fact. Allocation facts do not propagate
// out of a //repro:hotpath callee: that callee is checked (and flagged)
// directly by hotpathalloc, so repeating its facts at every caller
// would only cascade one root cause across the tree.
func mergeSummary(dst, src *FuncSummary, via string) {
	dst.Nondet = mergeFacts(dst.Nondet, src.Nondet, via)
	if via == "" || !src.Hotpath {
		dst.Allocs = mergeFacts(dst.Allocs, src.Allocs, via)
	}
	dst.Folds = mergeFacts(dst.Folds, src.Folds, via)
	if src.WritesOutput && !dst.WritesOutput {
		dst.WritesOutput = true
		dst.WriteRoot = reVia(src.WriteRoot, via)
	}
}

func reVia(f Fact, via string) Fact {
	if via != "" {
		f.Via = via
	}
	return f
}

func mergeFacts(dst, src []Fact, via string) []Fact {
	for _, f := range src {
		if len(dst) >= maxFacts {
			break
		}
		f = reVia(f, via)
		dup := false
		for _, g := range dst {
			if g.Desc == f.Desc && g.Pos == f.Pos {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, f)
		}
	}
	return dst
}

func sortFacts(s *FuncSummary) {
	for _, facts := range [][]Fact{s.Nondet, s.Allocs, s.Folds} {
		sort.Slice(facts, func(i, j int) bool {
			a, b := facts[i].Pos, facts[j].Pos
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Column < b.Column
		})
	}
}

// tarjanSCCs returns the strongly connected components of the local
// call graph in reverse topological order of the condensation (callees'
// components before callers'), which is exactly the order the fixpoint
// needs. Iterative to be safe on deep call chains.
func tarjanSCCs(order []*cgNode, nodes map[*types.Func]*cgNode) [][]*cgNode {
	index := 1
	var stack []*cgNode
	var sccs [][]*cgNode

	type frame struct {
		n    *cgNode
		edge int
	}
	for _, root := range order {
		if root.index != 0 {
			continue
		}
		work := []frame{{n: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			n := fr.n
			if fr.edge == 0 {
				n.index = index
				n.lowlink = index
				index++
				stack = append(stack, n)
				n.onStack = true
			}
			advanced := false
			for fr.edge < len(n.locals) {
				callee := nodes[n.locals[fr.edge]]
				fr.edge++
				if callee == nil {
					continue
				}
				if callee.index == 0 {
					work = append(work, frame{n: callee})
					advanced = true
					break
				}
				if callee.onStack && callee.index < n.lowlink {
					n.lowlink = callee.index
				}
			}
			if advanced {
				continue
			}
			// All edges explored: close the node.
			if n.lowlink == n.index {
				var scc []*cgNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					m.onStack = false
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].n
				if n.lowlink < parent.lowlink {
					parent.lowlink = n.lowlink
				}
			}
		}
	}
	return sccs
}

// moduleLocal reports whether callee belongs to the same module as the
// analyzing package: the leading path segment matches (the module name;
// corpus packages opt in by choosing a module-shaped fake import path).
func moduleLocal(callee *types.Func, selfPkgPath string) bool {
	p := callee.Pkg()
	if p == nil {
		return false
	}
	return firstSegment(p.Path()) == firstSegment(selfPkgPath)
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// displayName renders fn compactly for diagnostics: methods as
// "(*Engine).step", package functions as "gpusim.New".
func displayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
			ptr = "*"
		}
		switch tt := t.(type) {
		case *types.Named:
			return "(" + ptr + tt.Obj().Name() + ")." + fn.Name()
		case *types.Interface:
			return fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// externalMayAllocate classifies calls that leave the module. The
// allowlist is small and deliberate: pure arithmetic packages, the
// sort.Search family (the closure argument is charged separately),
// sync locking (mutexes allocate nothing after creation), and
// time.Duration's conversion methods (simtime interoperates with
// time.Duration by design; Duration.String does allocate).
func externalMayAllocate(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true
	}
	switch pkg.Path() {
	case "math", "math/bits":
		return false
	case "sort":
		switch fn.Name() {
		case "Search", "SearchInts", "SearchFloat64s", "SearchStrings":
			return false
		}
	case "sync":
		switch fn.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
			return false
		}
	case "sync/atomic":
		return false
	case "time":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if named, okn := t.(*types.Named); okn &&
				named.Obj().Name() == "Duration" && fn.Name() != "String" {
				return false
			}
		}
	}
	return true
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeOf resolves a call expression to the called *types.Func, or nil
// for indirect calls (function values) and builtins. Generic
// instantiations (F[T](...)) unwrap to their origin.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = unparen(f.X)
	case *ast.IndexListExpr:
		fun = unparen(f.X)
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.Origin()
	}
	return nil
}

// isConversion reports whether call is a type conversion, not a call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[unparen(call.Fun)]
	return ok && tv.IsType()
}

// builtinNameOf returns the name of the builtin being called, or "".
func builtinNameOf(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
