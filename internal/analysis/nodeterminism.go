package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// NoDeterminism forbids nondeterministic time and randomness sources in
// simulator packages.
//
// The discrete-event simulator must be bit-for-bit reproducible for a
// given seed: experiment tables and figures are regression-tested
// byte-for-byte, and the scheduler's collocation decisions must replay
// identically. Wall-clock reads (time.Now, time.Since, timers/tickers)
// and the math/rand generators (whose global seeding and algorithms are
// Go-version-dependent) both break that. Simulated time lives in
// internal/simtime; seeded deterministic randomness lives in
// internal/xrand.
var NoDeterminism = &Analyzer{
	Name:  "nodeterminism",
	Doc:   "forbid wall-clock and math/rand use in simulator packages (use internal/simtime and internal/xrand)",
	Match: matchSuffixes(simulatorPackages...),
	Run:   runNoDeterminism,
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Pure conversions and constants (time.Duration, time.Second, ...) stay
// allowed: simtime deliberately interoperates with time.Duration.
var forbiddenTimeFuncs = map[string]string{
	"Now":       "use simtime.Time carried by the event loop",
	"Since":     "use simtime.Time.Sub on event-loop instants",
	"Until":     "use simtime.Time.Sub on event-loop instants",
	"Sleep":     "schedule an event on the simulator queue instead",
	"Tick":      "schedule recurring events on the simulator queue instead",
	"NewTimer":  "schedule an event on the simulator queue instead",
	"NewTicker": "schedule recurring events on the simulator queue instead",
	"After":     "schedule an event on the simulator queue instead",
	"AfterFunc": "schedule an event on the simulator queue instead",
}

func runNoDeterminism(pass *Pass) error {
	reportLaundered := func(call *ast.CallExpr) {
		// Interprocedural: a helper in a non-simulator package that
		// wraps time.Now still injects wall-clock values when called
		// from here. The callee's own package is out of scope (or the
		// root site would be flagged there directly), so the finding
		// lands at the call site, citing the root via the summary.
		callee := calleeOf(pass.TypesInfo, call)
		if callee == nil || !moduleLocal(callee, pass.Pkg.Path()) {
			return
		}
		sum := pass.Summaries.Of(callee)
		if sum == nil || len(sum.Nondet) == 0 || pass.Analyzer.AppliesTo(sum.PkgPath) {
			return
		}
		pass.Reportf(call.Pos(),
			"call to %s reaches nondeterminism: %s", displayName(callee), sum.Nondet[0])
	}

	for _, file := range pass.Files {
		// Importing math/rand (v1 or v2) at all is a finding: even a
		// "locally seeded" generator drifts across Go versions, and the
		// import invites global-source use. xrand's SplitMix64 is the
		// sanctioned generator.
		for _, spec := range file.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(spec.Pos(),
					"import of %s in a simulator package; use internal/xrand for deterministic, version-stable randomness", path)
			}
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				reportLaundered(node)
			case *ast.SelectorExpr:
				obj := selectedPackageObject(pass.TypesInfo, node)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if obj.Pkg().Path() == "time" {
					if hint, bad := forbiddenTimeFuncs[obj.Name()]; bad {
						pass.Reportf(node.Pos(),
							"call to time.%s in a simulator package breaks reproducibility; %s", obj.Name(), hint)
					}
				}
			}
			return true
		})
	}
	return nil
}

// selectedPackageObject resolves pkg.Name selector uses to the named
// package-level object, or nil when sel is a field/method selection.
func selectedPackageObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isPkg := objectOf(info, id).(*types.PkgName); !isPkg {
		return nil
	}
	return objectOf(info, sel.Sel)
}
