// Package analysistest runs an analyzer over a golden corpus directory
// and checks its diagnostics against `// want "regexp"` comments, the
// same convention as golang.org/x/tools/go/analysis/analysistest —
// reimplemented on the repo's stdlib-only analysis framework.
//
// A corpus is one directory of Go files under testdata/. Each line that
// should trigger a diagnostic carries a trailing comment of the form
//
//	code() // want "pattern"
//
// where pattern is a regular expression matched against the diagnostic
// message. A line may carry several `// want` expectations. The test
// fails on any unmatched expectation and on any unexpected diagnostic,
// so every corpus exercises both positive and negative cases by
// construction.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"gpushare/internal/analysis"
)

// wantRe matches one `want` clause: `// want "a" "b" ...` registers one
// expectation per quoted pattern. quotedRe extracts the patterns.
var (
	wantRe   = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
	quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads dir as one package pretending to be asImportPath, applies the
// analyzer, and verifies diagnostics against the corpus expectations.
// asImportPath must satisfy the analyzer's scope, otherwise the corpus
// would vacuously pass; Run fails fast on that misconfiguration.
func Run(t *testing.T, dir string, a *analysis.Analyzer, asImportPath string) {
	t.Helper()
	if !a.AppliesTo(asImportPath) {
		t.Fatalf("analyzer %s is out of scope for %q; corpus would test nothing", a.Name, asImportPath)
	}
	pkg, err := analysis.LoadDir(dir, asImportPath)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}

	expects := collectExpectations(t, pkg)
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		if !claimExpectation(expects, d) {
			t.Errorf("%s: unexpected diagnostic: %s", posOf(d), d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// RunPackages loads several corpus directories as one package set (in
// order — later packages may import earlier ones by their pretend
// paths), applies every analyzer, and verifies the combined diagnostics
// against the expectations of all corpus files. This is the multi-
// package variant of Run, used to exercise cross-package summary
// propagation: a hazard rooted in one corpus package surfacing at a
// call site in another.
func RunPackages(t *testing.T, specs []analysis.DirSpec, analyzers []*analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.LoadDirs(specs...)
	if err != nil {
		t.Fatalf("loading corpora: %v", err)
	}
	for _, a := range analyzers {
		applies := false
		for _, p := range pkgs {
			if a.AppliesTo(p.ImportPath) {
				applies = true
				break
			}
		}
		if !applies {
			t.Fatalf("analyzer %s is out of scope for every corpus package; it would test nothing", a.Name)
		}
	}

	var expects []*expectation
	for _, pkg := range pkgs {
		expects = append(expects, collectExpectations(t, pkg)...)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	for _, d := range diags {
		if !claimExpectation(expects, d) {
			t.Errorf("%s: unexpected diagnostic: %s", posOf(d), d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// collectExpectations parses the `// want` comments of every corpus file.
func collectExpectations(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "// want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(c.Text, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range matches {
					for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(q[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q[1], err)
						}
						expects = append(expects, &expectation{
							file:    pos.Filename,
							line:    pos.Line,
							pattern: re,
						})
					}
				}
			}
		}
	}
	return expects
}

// claimExpectation marks the first unmatched expectation on the
// diagnostic's line whose pattern matches.
func claimExpectation(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

func posOf(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)
}
