package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the module packages matching the
// given patterns (e.g. "./..."), rooted at dir. Dependency types are read
// from compiler export data produced by `go list -export`, so loading
// works offline and never re-type-checks the standard library from
// source. Test files and testdata are excluded, matching `go vet`'s
// default unit of analysis.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	modPath := ""
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && modPath == "" {
			modPath = p.Module.Path
		}
	}

	// -deps lists the whole closure; targets are the non-standard module
	// packages. Re-list without -deps to find exactly what the patterns
	// matched (so `vetrepro ./internal/core` analyzes only core).
	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, exports)
	var pkgs []*Package
	for _, p := range targets {
		// Error first: broken patterns list as packages with Error set and
		// no GoFiles, and must not be skipped as empty.
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory of Go files outside
// the module build (the analysistest corpora live under testdata/, which
// the go tool ignores). asImportPath is the import path the package
// pretends to have, letting corpora exercise analyzer scoping. Only
// standard-library imports are resolvable from corpus files.
func LoadDir(dir, asImportPath string) (*Package, error) {
	pkgs, err := LoadDirs(DirSpec{Dir: dir, ImportPath: asImportPath})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// DirSpec names one corpus directory and the import path its package
// pretends to have. Order matters in LoadDirs: a package may import
// only packages listed before it.
type DirSpec struct {
	Dir        string
	ImportPath string
}

// LoadDirs parses and type-checks several corpus directories as one
// package set, in order, letting later packages import earlier ones by
// their pretend import paths. This is how the analysistest corpora
// exercise the cross-package summary propagation (a wrapper in one
// corpus package laundering a hazard into another): module-shaped fake
// paths (e.g. "gpushare/...") resolve against the already-checked
// corpus packages first, everything else against compiler export data.
func LoadDirs(specs ...DirSpec) ([]*Package, error) {
	fset := token.NewFileSet()
	local := map[string]*types.Package{}
	exports := map[string]string{}
	imp := &chainImporter{
		local:    local,
		fallback: exportDataImporter(fset, exports),
	}

	var pkgs []*Package
	for _, spec := range specs {
		files, stdImports, err := parseDir(fset, spec.Dir)
		if err != nil {
			return nil, err
		}
		// Resolve the imports that are not earlier corpus packages.
		var need []string
		for _, path := range stdImports {
			if _, ok := local[path]; !ok {
				if _, have := exports[path]; !have {
					need = append(need, path)
				}
			}
		}
		if len(need) > 0 {
			listed, err := goList(spec.Dir, append([]string{"-deps"}, need...))
			if err != nil {
				return nil, err
			}
			for _, p := range listed {
				if p.Export != "" {
					exports[p.ImportPath] = p.Export
				}
			}
		}

		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(spec.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", spec.Dir, err)
		}
		local[spec.ImportPath] = pkg
		pkgs = append(pkgs, &Package{
			ImportPath: spec.ImportPath,
			Dir:        spec.Dir,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}

// chainImporter resolves imports against the corpus packages loaded so
// far, falling back to compiler export data for the standard library.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

// parseDir parses every .go file of dir and returns the files plus the
// sorted set of import paths they mention.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	paths := make([]string, 0, len(importSet))
	for p := range importSet {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return files, paths, nil
}

// goList invokes `go list -e -export -json` and decodes the stream.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmdArgs := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error",
	}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v: %s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportDataImporter returns a go/types importer that resolves imports
// from the compiler export data files in exports (import path → file).
func exportDataImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
