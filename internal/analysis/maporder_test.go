package analysis_test

import (
	"testing"

	"gpushare/internal/analysis"
	"gpushare/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata/maporder", analysis.MapOrder, "gpushare/internal/gpusim")
}

func TestMapOrderAppliesEverywhere(t *testing.T) {
	// Map iteration order is nondeterministic in every package; the
	// analyzer is deliberately unscoped.
	for _, p := range []string{"gpushare", "gpushare/cmd/gpusched", "gpushare/internal/report"} {
		if !analysis.MapOrder.AppliesTo(p) {
			t.Errorf("maporder must apply to %s", p)
		}
	}
}
