package analysis

import (
	"go/types"
)

// ShadowBuiltin flags declarations that shadow a predeclared identifier
// (cap, len, min, max, new, copy, ...).
//
// Shadowing a builtin is legal Go, but inside the shadowing scope the
// builtin silently stops working — `cap := policy.clientCap(...)` turns
// every later `cap(buf)` in the function into a type error or, worse, a
// call of the local. The scheduler's decision path is exactly the kind
// of long, hot function where such a local lingers for years, so the
// convention is enforced mechanically: rename the local after what it
// holds (clientCap, bufLen) instead of what it resembles.
//
// Struct fields and methods are exempt — selectors like p.cap never
// compete with the builtin's scope.
var ShadowBuiltin = &Analyzer{
	Name: "shadowbuiltin",
	Doc:  "flag declarations (vars, params, funcs, types) that shadow predeclared identifiers",
	Run:  runShadowBuiltin,
}

func runShadowBuiltin(pass *Pass) error {
	// Defs holds every defining identifier in the package. Iteration
	// order is irrelevant: the driver sorts diagnostics by position.
	for ident, obj := range pass.TypesInfo.Defs {
		if obj == nil || ident.Name == "_" {
			continue
		}
		if types.Universe.Lookup(ident.Name) == nil {
			continue
		}
		switch o := obj.(type) {
		case *types.Var:
			if o.IsField() {
				continue // fields live behind selectors, not in scope
			}
		case *types.Func:
			if o.Type().(*types.Signature).Recv() != nil {
				continue // methods are selected, never bare identifiers
			}
		case *types.TypeName, *types.Const:
			// package-level or local; all shadow.
		default:
			continue // labels, imports: no scope competition with builtins
		}
		pass.Reportf(ident.Pos(),
			"declaration of %q shadows the predeclared identifier; rename it (e.g. clientCap for a client limit)", ident.Name)
	}
	return nil
}
