package analysis_test

import (
	"testing"

	"gpushare/internal/analysis"
	"gpushare/internal/analysis/analysistest"
)

func TestErrCheckIO(t *testing.T) {
	analysistest.Run(t, "testdata/errcheckio", analysis.ErrCheckIO, "gpushare/internal/report")
}

func TestErrCheckIOScope(t *testing.T) {
	for _, p := range []string{
		"gpushare/internal/report",
		"gpushare/internal/experiments",
		"gpushare/cmd/gpusched",
		"gpushare/cmd/mpsctl",
	} {
		if !analysis.ErrCheckIO.AppliesTo(p) {
			t.Errorf("errcheckio must apply to %s", p)
		}
	}
	if analysis.ErrCheckIO.AppliesTo("gpushare/internal/gpusim") {
		t.Fatalf("errcheckio must not apply to the simulator core")
	}
}
