package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sarifDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "/repo/internal/gpusim/engine.go", Line: 42, Column: 7},
			Analyzer: "hotpathalloc",
			Message:  "//repro:hotpath (*Engine).step is not allocation-free: make allocates (engine.go:42)",
		},
		{
			Pos:      token.Position{Filename: "/repo/internal/core/online.go", Line: 7, Column: 1},
			Analyzer: "nodeterminism",
			Message:  "call to time.Now in a simulator package",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 3, Column: 2},
			Analyzer: AllowAnalyzerName,
			Message:  "unused //repro:allow:floatfold suppression",
		},
	}
}

// TestWriteSARIFStructure validates the emitted log against the SARIF
// 2.1.0 structural requirements that renderers (and the upload action)
// depend on: version/$schema, a tool.driver with a name and a unique
// rule table, and results whose ruleId/ruleIndex agree with that table
// and whose locations carry %SRCROOT%-relative URIs.
func TestWriteSARIFStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sarifDiags(), All(), "/repo"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a 2.1.0 schema URI", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "vetrepro" {
		t.Errorf("driver name = %q, want vetrepro", run.Tool.Driver.Name)
	}

	ruleAt := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" {
			t.Errorf("rule %d has empty id", i)
		}
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has empty shortDescription", r.ID)
		}
		if _, dup := ruleAt[r.ID]; dup {
			t.Errorf("rule %s appears twice", r.ID)
		}
		ruleAt[r.ID] = i
	}
	for _, a := range All() {
		if _, ok := ruleAt[a.Name]; !ok {
			t.Errorf("analyzer %s missing from the rule table", a.Name)
		}
	}
	if _, ok := ruleAt[AllowAnalyzerName]; !ok {
		t.Errorf("pseudo-analyzer %s missing from the rule table", AllowAnalyzerName)
	}

	if len(run.Results) != len(sarifDiags()) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(sarifDiags()))
	}
	for i, r := range run.Results {
		at, ok := ruleAt[r.RuleID]
		if !ok {
			t.Errorf("result %d: ruleId %q has no rule entry", i, r.RuleID)
		} else if at != r.RuleIndex {
			t.Errorf("result %d: ruleIndex %d disagrees with rule table position %d", i, r.RuleIndex, at)
		}
		if r.Level != "error" {
			t.Errorf("result %d: level = %q, want error", i, r.Level)
		}
		if r.Message.Text == "" {
			t.Errorf("result %d: empty message", i)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d: locations = %d, want 1", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.Region.StartLine < 1 {
			t.Errorf("result %d: startLine = %d, want >= 1", i, loc.Region.StartLine)
		}
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("result %d: uriBaseId = %q", i, loc.ArtifactLocation.URIBaseID)
		}
	}

	// In-root files are relative with forward slashes; outside files
	// keep their absolute path.
	if uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/gpusim/engine.go" {
		t.Errorf("in-root uri = %q, want internal/gpusim/engine.go", uri)
	}
	if uri := run.Results[2].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/elsewhere/outside.go" {
		t.Errorf("outside-root uri = %q, want /elsewhere/outside.go", uri)
	}
}

// TestWriteSARIFEmpty pins the clean-run shape: results must be an
// empty array, not null — the upload action rejects null.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, All(), ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	runs := raw["runs"].([]any)
	results, ok := runs[0].(map[string]any)["results"].([]any)
	if !ok {
		t.Fatalf("results is not an array: %T", runs[0].(map[string]any)["results"])
	}
	if len(results) != 0 {
		t.Fatalf("results = %v, want empty", results)
	}
}
