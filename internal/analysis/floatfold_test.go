package analysis_test

import (
	"testing"

	"gpushare/internal/analysis"
	"gpushare/internal/analysis/analysistest"
)

func TestFloatFold(t *testing.T) {
	analysistest.Run(t, "testdata/floatfold", analysis.FloatFold, "gpushare/internal/metrics")
}

func TestFloatFoldScope(t *testing.T) {
	for _, p := range []string{
		"gpushare/internal/core",
		"gpushare/internal/gpusim",
		"gpushare/internal/interference",
		"gpushare/internal/metrics",
	} {
		if !analysis.FloatFold.AppliesTo(p) {
			t.Errorf("floatfold must apply to %s", p)
		}
	}
	// The sanctioned helpers and the CLI layer are out of scope.
	for _, p := range []string{
		"gpushare/internal/floats",
		"gpushare/cmd/gpusched",
	} {
		if analysis.FloatFold.AppliesTo(p) {
			t.Errorf("floatfold must not apply to %s", p)
		}
	}
}
