package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// collectFunc gathers one declared function's direct facts and call
// edges: the per-node input to the package fixpoint. Facts inherited
// from already-summarized packages are folded into the base summary
// here; same-package calls become graph edges resolved by the SCC
// fixpoint. Sites covered by a matching //repro:allow directive produce
// no fact at all — the suppression composes interprocedurally.
func collectFunc(pkg *Package, fn *types.Func, decl *ast.FuncDecl, store *SummarySet, allows *AllowIndex) *cgNode {
	c := &collector{
		pkg:    pkg,
		info:   pkg.TypesInfo,
		store:  store,
		allows: allows,
		node: &cgNode{
			fn:   fn,
			decl: decl,
			base: &FuncSummary{
				FullName: fn.FullName(),
				PkgPath:  pkg.ImportPath,
				Hotpath:  IsHotpath(decl),
			},
		},
		localSet: map[*types.Func]bool{},
		prealloc: map[types.Object]bool{},
		// The sanctioned float helpers may fold however they like; that
		// is the point of routing sums through them.
		floatsExempt: strings.Contains(pkg.ImportPath, "internal/floats"),
	}
	c.collectPreallocEvidence(decl.Body)
	c.walk(decl.Body)
	return c.node
}

type collector struct {
	pkg    *Package
	info   *types.Info
	store  *SummarySet
	allows *AllowIndex
	node   *cgNode

	localSet     map[*types.Func]bool
	prealloc     map[types.Object]bool
	floatsExempt bool
	stack        []ast.Node
}

func (c *collector) position(pos token.Pos) token.Position {
	return c.pkg.Fset.Position(pos)
}

func (c *collector) addAlloc(desc string, pos token.Pos) {
	p := c.position(pos)
	if c.allows.Suppresses("hotpathalloc", p) {
		return
	}
	c.node.base.Allocs = mergeFacts(c.node.base.Allocs, []Fact{{Desc: desc, Pos: p}}, "")
}

func (c *collector) addNondet(desc string, pos token.Pos) {
	p := c.position(pos)
	if c.allows.Suppresses("nodeterminism", p) {
		return
	}
	c.node.base.Nondet = mergeFacts(c.node.base.Nondet, []Fact{{Desc: desc, Pos: p}}, "")
}

func (c *collector) addFold(desc string, pos token.Pos) {
	if c.floatsExempt {
		return
	}
	p := c.position(pos)
	if c.allows.Suppresses("floatfold", p) {
		return
	}
	c.node.base.Folds = mergeFacts(c.node.base.Folds, []Fact{{Desc: desc, Pos: p}}, "")
}

// collectPreallocEvidence records objects assigned from make([]T, ...):
// appends onto them carry capacity evidence and are not charged as
// allocations (the issue is append with no sizing discipline at all).
func (c *collector) collectPreallocEvidence(body ast.Node) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || builtinNameOf(c.info, call) != "make" || len(call.Args) == 0 {
			return
		}
		if t := typeOf(c.info, call); t != nil {
			if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
				return
			}
		}
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		if obj := objectOf(c.info, id); obj != nil {
			c.prealloc[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Rhs {
					record(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Values {
					record(s.Names[i], s.Values[i])
				}
			}
		}
		return true
	})
}

func (c *collector) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			c.stack = c.stack[:len(c.stack)-1]
			return true
		}
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := unparen(node.X).(*ast.CompositeLit); ok {
					c.addAlloc("address of composite literal escapes to the heap", node.Pos())
				}
			}
		case *ast.CompositeLit:
			c.checkCompositeLit(node)
		case *ast.CallExpr:
			c.checkCall(node)
		case *ast.BinaryExpr:
			c.checkStringConcat(node)
		case *ast.FuncLit:
			c.addAlloc("function literal allocates a closure", node.Pos())
		case *ast.GoStmt:
			c.addAlloc("go statement allocates a goroutine", node.Pos())
		case *ast.AssignStmt:
			c.checkFloatFold(node)
		}
		c.stack = append(c.stack, n)
		return true
	})
}

// checkCompositeLit charges slice and map literals (their backing store
// is heap-allocated); plain struct value literals stay on the stack and
// are not charged. A literal directly under & was already charged by
// the UnaryExpr case.
func (c *collector) checkCompositeLit(lit *ast.CompositeLit) {
	if len(c.stack) > 0 {
		if u, ok := c.stack[len(c.stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			return
		}
	}
	t := typeOf(c.info, lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.addAlloc("slice literal allocates its backing array", lit.Pos())
	case *types.Map:
		c.addAlloc("map literal allocates", lit.Pos())
	}
}

func (c *collector) checkCall(call *ast.CallExpr) {
	if isConversion(c.info, call) {
		c.checkConversionBoxing(call)
		return
	}
	switch builtinNameOf(c.info, call) {
	case "":
		// Not a builtin; handled below.
	case "make":
		c.addAlloc("make allocates", call.Pos())
		return
	case "new":
		c.addAlloc("new allocates", call.Pos())
		return
	case "append":
		if len(call.Args) > 0 && !c.hasPreallocEvidence(call.Args[0]) {
			c.addAlloc("append may grow the backing array", call.Pos())
		}
		return
	default:
		return // len, cap, copy, delete, min, max, panic, ...: no heap effect
	}

	callee := calleeOf(c.info, call)
	if callee == nil {
		c.addAlloc("indirect call may allocate", call.Pos())
		return
	}

	// Nondeterminism sources, wherever the calling package sits: the
	// fact propagates and is judged at simulator-package call sites.
	if pkg := callee.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "time":
			if _, bad := forbiddenTimeFuncs[callee.Name()]; bad {
				c.addNondet("calls time."+callee.Name(), call.Pos())
			}
		case "math/rand", "math/rand/v2":
			c.addNondet("calls "+pkg.Path()+"."+callee.Name(), call.Pos())
		}
	}

	c.checkArgBoxing(call)

	if name, isWrite := droppedWriteError(c.info, call); isWrite && !c.node.base.WritesOutput {
		c.node.base.WritesOutput = true
		c.node.base.WriteRoot = Fact{Desc: "writes output via " + name, Pos: c.position(call.Pos())}
	}

	// Interface methods dispatch dynamically wherever the interface is
	// declared — including this package — so this check must precede the
	// local/module classification below.
	if isInterfaceMethod(callee) {
		c.addAlloc("dynamic call to "+displayName(callee)+" may allocate", call.Pos())
		return
	}

	switch {
	case callee.Pkg() == c.pkg.Pkg:
		if !c.localSet[callee] {
			c.localSet[callee] = true
			c.node.locals = append(c.node.locals, callee)
		}
	case moduleLocal(callee, c.pkg.ImportPath):
		// Cross-package: packages are summarized in import order, so a
		// loaded callee's summary is final. Unloaded module callees
		// (partial runs) contribute nothing — see the package comment.
		if cs := c.store.Of(callee); cs != nil {
			mergeSummary(c.node.base, cs, displayName(callee))
		}
	default:
		if externalMayAllocate(callee) {
			c.addAlloc("calls "+displayName(callee)+", assumed to allocate", call.Pos())
		}
	}
}

// checkArgBoxing charges arguments passed as interface parameters when
// the concrete value is not pointer-shaped: those conversions box on
// the heap. Pointers, interfaces and untyped constants (the runtime
// preboxes small values) pass freely. The instantiated signature is
// used, so generic calls are judged at their concrete types.
func (c *collector) checkArgBoxing(call *ast.CallExpr) {
	tv, ok := c.info.Types[unparen(call.Fun)]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			st, oks := params.At(params.Len() - 1).Type().(*types.Slice)
			if !oks {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if c.boxes(pt, arg) {
			c.addAlloc("argument boxed into interface "+types.TypeString(pt, shortQualifier), arg.Pos())
		}
	}
}

func (c *collector) checkConversionBoxing(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	t := typeOf(c.info, call)
	if t != nil && c.boxes(t, call.Args[0]) {
		c.addAlloc("conversion boxes value into interface "+types.TypeString(t, shortQualifier), call.Pos())
	}
}

// boxes reports whether storing arg into an interface of type pt heap-
// allocates: pt is a true interface (not a type parameter) and arg's
// concrete type is neither pointer-shaped nor already an interface, and
// arg is not a constant.
func (c *collector) boxes(pt types.Type, arg ast.Expr) bool {
	if pt == nil {
		return false
	}
	if _, isTP := pt.(*types.TypeParam); isTP {
		return false
	}
	if !types.IsInterface(pt) {
		return false
	}
	tv, ok := c.info.Types[arg]
	if !ok || tv.Value != nil { // constants are preboxed by the runtime
		return false
	}
	at := tv.Type
	if at == nil || types.IsInterface(at) {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		if at.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func (c *collector) checkStringConcat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv, ok := c.info.Types[b]
	if !ok || tv.Value != nil { // constant-folded concatenation
		return
	}
	if t, okb := tv.Type.Underlying().(*types.Basic); okb && t.Info()&types.IsString != 0 {
		c.addAlloc("string concatenation allocates", b.Pos())
	}
}

// checkFloatFold detects float accumulations whose result depends on
// iteration or operand order: a += fold under a map range (Go
// randomizes map order per run), and acc = x + acc reductions that swap
// the fold's operand order inside any loop.
func (c *collector) checkFloatFold(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		if len(as.Lhs) != 1 || !c.isFloat(as.Lhs[0]) {
			return
		}
		if rng := c.enclosingMapRange(); rng != nil && c.declaredOutside(as.Lhs[0], rng) {
			c.addFold("float accumulation folds in map iteration order", as.Pos())
		}
	case token.ASSIGN:
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			b, ok := unparen(as.Rhs[i]).(*ast.BinaryExpr)
			if !ok || b.Op != token.ADD || !c.isFloat(lhs) {
				continue
			}
			switch {
			case sameExpr(c.info, lhs, b.X):
				// Canonical left fold acc = acc + x: only the iteration
				// order can hurt it.
				if rng := c.enclosingMapRange(); rng != nil && c.declaredOutside(lhs, rng) {
					c.addFold("float accumulation folds in map iteration order", as.Pos())
				}
			case sameExpr(c.info, lhs, b.Y):
				if c.insideLoop() {
					c.addFold("float reduction reorders operands (acc = x + acc)", as.Pos())
				}
			}
		}
	}
}

func (c *collector) isFloat(e ast.Expr) bool {
	t := typeOf(c.info, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// enclosingMapRange returns the nearest enclosing `range` statement
// over a map, or nil.
func (c *collector) enclosingMapRange() *ast.RangeStmt {
	for i := len(c.stack) - 1; i >= 0; i-- {
		rng, ok := c.stack[i].(*ast.RangeStmt)
		if !ok {
			continue
		}
		if t := typeOf(c.info, rng.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return rng
			}
		}
	}
	return nil
}

func (c *collector) insideLoop() bool {
	for i := len(c.stack) - 1; i >= 0; i-- {
		switch c.stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// declaredOutside reports whether the accumulator e outlives the loop:
// an identifier declared before the range statement, or any field /
// indexed location (which always persists across iterations).
func (c *collector) declaredOutside(e ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return true
	}
	obj := objectOf(c.info, id)
	return obj != nil && obj.Pos() < rng.Pos()
}

func (c *collector) hasPreallocEvidence(first ast.Expr) bool {
	id, ok := unparen(first).(*ast.Ident)
	if !ok {
		return false
	}
	obj := objectOf(c.info, id)
	return obj != nil && c.prealloc[obj]
}

// sameExpr reports whether a and b are syntactically the same variable
// reference: identical identifiers (same object) or identical selector
// chains over the same base.
func sameExpr(info *types.Info, a, b ast.Expr) bool {
	a, b = unparen(a), unparen(b)
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao, bo := objectOf(info, ax), objectOf(info, bx)
		return ao != nil && ao == bo
	case *ast.SelectorExpr:
		bx, ok := b.(*ast.SelectorExpr)
		return ok && ax.Sel.Name == bx.Sel.Name && sameExpr(info, ax.X, bx.X)
	}
	return false
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// shortQualifier renders package-qualified type names with the bare
// package name, keeping diagnostics readable.
func shortQualifier(p *types.Package) string { return p.Name() }

// typeOf and objectOf are the info-level versions of Pass.TypeOf /
// Pass.ObjectOf, shared with the summary collector which runs without
// a Pass.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := objectOf(info, id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
