package analysis_test

import (
	"testing"

	"gpushare/internal/analysis"
	"gpushare/internal/analysis/analysistest"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata/floateq", analysis.FloatEq, "gpushare/internal/metrics")
}

func TestFloatEqScope(t *testing.T) {
	// The trace merger in gpusim compares successive operating points
	// exactly on purpose (identical points merge; nearly-identical points
	// are distinct observations), so gpusim stays out of scope.
	if analysis.FloatEq.AppliesTo("gpushare/internal/gpusim") {
		t.Fatalf("floateq must not apply to internal/gpusim")
	}
	for _, p := range []string{
		"gpushare/internal/core",
		"gpushare/internal/interference",
		"gpushare/internal/metrics",
	} {
		if !analysis.FloatEq.AppliesTo(p) {
			t.Errorf("floateq must apply to %s", p)
		}
	}
}
