package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags ==/!= between floating-point operands in the packages
// that carry utilization, energy and metric arithmetic.
//
// Utilization percentages and energy joules are accumulated through
// chains of float64 arithmetic; exact equality on such values compares
// rounding noise, so a scheduler decision or metric label can flip
// between platforms even when simulation inputs are identical. The
// sanctioned helpers live in internal/floats (AlmostEq / EqWithin /
// IsInt), which compare within a relative epsilon.
var FloatEq = &Analyzer{
	Name:  "floateq",
	Doc:   "flag ==/!= on float operands in metric-bearing packages (use internal/floats)",
	Match: matchSuffixes(metricPackages...),
	Run:   runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(bin.X)) || !isFloat(pass.TypeOf(bin.Y)) {
				return true
			}
			// Two untyped constants compare exactly at compile time.
			xv, xc := pass.TypesInfo.Types[bin.X]
			yv, yc := pass.TypesInfo.Types[bin.Y]
			if xc && yc && xv.Value != nil && yv.Value != nil {
				return true
			}
			// `x != x` is the portable NaN test; leave it alone.
			if bin.Op == token.NEQ && sameIdent(pass, bin.X, bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos,
				"exact %s comparison of floating-point values compares rounding noise; use floats.AlmostEq or floats.EqWithin", bin.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameIdent reports whether x and y are the same single variable.
func sameIdent(pass *Pass, x, y ast.Expr) bool {
	xi, ok1 := x.(*ast.Ident)
	yi, ok2 := y.(*ast.Ident)
	return ok1 && ok2 && pass.ObjectOf(xi) != nil && pass.ObjectOf(xi) == pass.ObjectOf(yi)
}
