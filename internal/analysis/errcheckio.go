package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheckIO flags silently dropped errors from output writes in the
// reporting layer and the CLI tools.
//
// The harness's deliverables are rendered tables, CSV files and charts;
// a failed write (full disk, closed pipe, broken redirect) that is
// silently ignored truncates an experiment artifact without any signal.
// The analyzer flags statement-position calls — the silent form — of
// fmt.Fprint*, io.WriteString, (*json.Encoder).Encode and the repo's
// Render/RenderCSV methods. Exemptions: writes into in-memory buffers
// (*strings.Builder, *bytes.Buffer never fail) and best-effort
// diagnostics to os.Stderr. An explicit `_ =` assignment also passes:
// it is a visible acknowledgment, not a silent drop.
var ErrCheckIO = &Analyzer{
	Name:  "errcheckio",
	Doc:   "flag dropped errors from writer calls (fmt.Fprint*, encoders, Render) in report and cmd packages",
	Match: matchSuffixes(writerPackages...),
	Run:   runErrCheckIO,
}

func runErrCheckIO(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, bad := droppedWriteError(pass.TypesInfo, call); bad {
				pass.Reportf(call.Pos(),
					"error from %s is dropped; output writes can fail — check or return it", name)
				return true
			}
			// Interprocedural: a module-local helper that (transitively)
			// writes output and returns an error is the same hazard with
			// one wrapper layer in between.
			callee := calleeOf(pass.TypesInfo, call)
			if callee == nil || !moduleLocal(callee, pass.Pkg.Path()) || !lastResultIsError(callee) {
				return true
			}
			if sum := pass.Summaries.Of(callee); sum != nil && sum.WritesOutput {
				pass.Reportf(call.Pos(),
					"error from %s is dropped; it %s — check or return it",
					displayName(callee), sum.WriteRoot)
			}
			return true
		})
	}
	return nil
}

// droppedWriteError reports whether call is a write whose error result
// the surrounding statement discards, returning a display name.
func droppedWriteError(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}

	if obj := selectedPackageObject(info, sel); obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt":
			switch obj.Name() {
			case "Fprint", "Fprintf", "Fprintln":
				if len(call.Args) > 0 && exemptWriter(info, call.Args[0]) {
					return "", false
				}
				return "fmt." + obj.Name(), true
			}
		case "io":
			if obj.Name() == "WriteString" {
				if len(call.Args) > 0 && exemptWriter(info, call.Args[0]) {
					return "", false
				}
				return "io.WriteString", true
			}
		}
		return "", false
	}

	// Method calls whose last result is error: the repo's renderers and
	// stream encoders.
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal || !lastResultIsError(s.Obj()) {
		return "", false
	}
	switch sel.Sel.Name {
	case "Render", "RenderCSV":
		return "(" + s.Recv().String() + ")." + sel.Sel.Name, true
	case "Encode":
		if named, ok := derefNamed(s.Recv()); ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "encoding/json" {
			return "(*json.Encoder).Encode", true
		}
	}
	return "", false
}

// exemptWriter reports whether the writer expression never meaningfully
// fails: in-memory builders/buffers, or the best-effort stderr stream.
func exemptWriter(info *types.Info, w ast.Expr) bool {
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if obj := selectedPackageObject(info, sel); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && obj.Name() == "Stderr" {
			return true
		}
	}
	if named, ok := derefNamed(typeOf(info, w)); ok {
		pkg := named.Obj().Pkg()
		if pkg == nil {
			return false
		}
		switch pkg.Path() + "." + named.Obj().Name() {
		case "strings.Builder", "bytes.Buffer":
			return true
		}
	}
	return false
}

// derefNamed unwraps pointers to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// lastResultIsError reports whether fn's final result type is error.
func lastResultIsError(fn types.Object) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
