// Package analysis is the reproduction's static-analysis layer: a small,
// dependency-free reimplementation of the go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) plus a package loader and driver.
//
// The repo's credibility rests on the simulator being bit-for-bit
// deterministic: collocation choices, interference predictions and
// figure/table output must reproduce run-to-run. The seed ships
// internal/simtime and internal/xrand instead of time/math-rand precisely
// for that — but conventions rot unless a tool enforces them. This package
// holds four project-specific analyzers that do:
//
//   - nodeterminism: forbids wall-clock and math/rand use in simulator
//     packages (use simtime / xrand);
//   - maporder: flags order-dependent effects inside map-range loops
//     (Go randomizes map iteration order) without a following sort;
//   - floateq: flags ==/!= on float operands in metric-bearing packages
//     (use internal/floats epsilon helpers);
//   - errcheckio: flags silently dropped errors from writer calls in the
//     reporting layer and the CLIs.
//
// The framework is built only on the standard library (go/ast, go/types,
// go/importer) so it works in hermetic builds with no module proxy:
// dependency type information comes from compiler export data located via
// `go list -export`. cmd/vetrepro is the multichecker driver, runnable
// standalone (`go run ./cmd/vetrepro ./...`) or as `go vet -vettool`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer is one static check. It mirrors golang.org/x/tools/go/analysis
// but carries an explicit package scope: project-specific invariants only
// hold in specific layers (e.g. wall-clock time is fine in cmd/, fatal in
// the simulator).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -flags.
	Name string
	// Doc is a one-paragraph description shown by `vetrepro help`.
	Doc string
	// Match reports whether the analyzer applies to the package with the
	// given import path. A nil Match applies everywhere.
	Match func(importPath string) bool
	// Run performs the check on one package and reports findings via
	// pass.Report.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer is in scope for importPath.
func (a *Analyzer) AppliesTo(importPath string) bool {
	return a.Match == nil || a.Match(importPath)
}

// Pass carries one analyzed package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Summaries holds the interprocedural call-graph summaries for the
	// whole run (every loaded package), keyed by function full name.
	// Analyzers consult it to see through wrapper layers.
	Summaries *SummarySet

	// report collects diagnostics; set by the driver.
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an already-resolved position — used by
// interprocedural analyzers whose witness positions come from summaries
// (possibly in another package's files).
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its types.Object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// Diagnostic is one finding, with a resolved file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// AnalyzerStat aggregates one analyzer's run over every package it
// applied to: finding count (post-suppression) and wall time.
type AnalyzerStat struct {
	Name     string
	Findings int
	Elapsed  time.Duration
}

// RunResult is a full driver run: sorted findings plus per-analyzer
// statistics in analyzer-list order.
type RunResult struct {
	Diagnostics []Diagnostic
	Stats       []AnalyzerStat
}

// RunAnalyzers applies every in-scope analyzer to every package and returns
// the findings sorted by (file, line, column, analyzer) so output is
// deterministic regardless of internal map iteration.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunAnalyzersStats(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunAnalyzersStats is the full driver: it collects //repro:allow
// directives, computes interprocedural summaries, runs every in-scope
// analyzer with suppression filtering and per-analyzer timing, and
// appends directive-hygiene findings (unused or malformed suppressions).
func RunAnalyzersStats(pkgs []*Package, analyzers []*Analyzer) (*RunResult, error) {
	allows := CollectAllows(pkgs)
	summaries := ComputeSummaries(pkgs, allows)

	stats := make([]AnalyzerStat, len(analyzers))
	ran := make(map[string]bool, len(analyzers)+1)
	var diags []Diagnostic
	for i, a := range analyzers {
		stats[i].Name = a.Name
		ran[a.Name] = true
		start := time.Now()
		for _, pkg := range pkgs {
			if !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				Summaries: summaries,
				report: func(d Diagnostic) {
					if allows.Suppresses(a.Name, d.Pos) {
						return
					}
					stats[i].Findings++
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		stats[i].Elapsed = time.Since(start)
	}

	// Directive hygiene rides along as a pseudo-analyzer: a suppression
	// that excused nothing is itself a finding.
	ran[AllowAnalyzerName] = true
	hygiene := allows.UnusedFindings(ran)
	if len(hygiene) > 0 {
		diags = append(diags, hygiene...)
		stats = append(stats, AnalyzerStat{Name: AllowAnalyzerName, Findings: len(hygiene)})
	}

	SortDiagnostics(diags)
	return &RunResult{Diagnostics: diags, Stats: stats}, nil
}

// SortDiagnostics orders findings by position then analyzer name.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
