package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF 2.1.0 output. CI uploads the log for inline PR annotations;
// only the properties that renderers actually consume are emitted
// (tool.driver with rules, results with ruleId/message/location), all
// required by and valid against the 2.1.0 schema. File URIs are
// emitted relative to the analysis root with the standard %SRCROOT%
// base, so the log is machine-independent.

const (
	sarifVersion   = "2.1.0"
	sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diags as one SARIF 2.1.0 run of the vetrepro
// driver. analyzers populates the rule table; diagnostics from
// pseudo-analyzers (directive hygiene) get a rule entry on the fly.
// root anchors relative file URIs.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, root string) error {
	driver := sarifDriver{
		Name:  "vetrepro",
		Rules: make([]sarifRule, 0, len(analyzers)+1),
	}
	ruleIndex := map[string]int{}
	addRule := func(id, doc string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: doc},
		})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule(AllowAnalyzerName, "report unused or malformed //repro:allow suppression directives")

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		addRule(d.Analyzer, d.Analyzer) // diagnostics never lack a rule
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relArtifactURI(root, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Version: sarifVersion,
		Schema:  sarifSchemaURI,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: driver},
			Results: results,
		}},
	})
}

// relArtifactURI renders filename relative to root with forward
// slashes; paths outside root (or unresolvable ones) stay absolute.
func relArtifactURI(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil &&
			rel != ".." && !filepath.IsAbs(rel) && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
