package analysis_test

import (
	"strings"
	"testing"

	"gpushare/internal/analysis"
)

// TestLoadExportData exercises the module loader's export-data path:
// the listed target is parsed and type-checked from source, while its
// module dependency (simtime) resolves from compiler export data —
// completely, so selections through it carry real types.
func TestLoadExportData(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./internal/eventq")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.ImportPath != "gpushare/internal/eventq" {
		t.Fatalf("ImportPath = %q", pkg.ImportPath)
	}
	if len(pkg.Files) == 0 || pkg.Pkg == nil || pkg.TypesInfo == nil {
		t.Fatalf("package not fully loaded: files=%d", len(pkg.Files))
	}
	var simtime bool
	for _, imp := range pkg.Pkg.Imports() {
		if imp.Path() == "gpushare/internal/simtime" {
			simtime = true
			if !imp.Complete() {
				t.Fatalf("export-data import %s is incomplete", imp.Path())
			}
		}
	}
	if !simtime {
		t.Fatalf("eventq's simtime dependency did not resolve via export data (imports: %v)", pkg.Pkg.Imports())
	}
	if len(pkg.TypesInfo.Defs) == 0 {
		t.Fatalf("TypesInfo not populated")
	}
}

// TestLoadMultiplePatterns pins the target selection: only the listed
// patterns are analyzed (not their dependency closure), in sorted
// import-path order.
func TestLoadMultiplePatterns(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./internal/simtime", "./internal/floats")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var got []string
	for _, p := range pkgs {
		got = append(got, p.ImportPath)
	}
	want := []string{"gpushare/internal/floats", "gpushare/internal/simtime"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("loaded %v, want %v", got, want)
	}
}

func TestLoadBadPattern(t *testing.T) {
	_, err := analysis.Load("../..", "./does/not/exist")
	if err == nil {
		t.Fatal("Load accepted a nonexistent pattern")
	}
	if !strings.Contains(err.Error(), "does/not/exist") {
		t.Fatalf("error does not name the bad pattern: %v", err)
	}
}
