package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// MapOrder flags order-dependent effects inside `for ... range m` loops
// over maps.
//
// Go randomizes map iteration order per run, so any loop that appends to
// a slice, writes output, or otherwise accumulates order-sensitive state
// while ranging a map produces different bytes on every execution — the
// classic hidden-nondeterminism leak that corrupts reproducible
// experiments. The sanctioned idiom is: collect keys, sort, then iterate
// the sorted slice. The analyzer recognizes that idiom: an append-only
// collection loop is exempt when the collected slice is passed to a
// sort.* / slices.* call later in the same block.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-dependent effects (appends, output writes) inside map-range loops without a following sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rng, parents)
			return true
		})
	}
	return nil
}

// checkMapRange inspects one map-range loop for order-sensitive sinks.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, parents map[ast.Node]ast.Node) {
	appendTargets := map[types.Object]bool{}
	wroteOutput := false

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(s.Lhs) {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.ObjectOf(id)
				// Appending to a variable declared inside the loop body
				// restarts every iteration and carries no order.
				if obj != nil && obj.Pos() < rng.Pos() {
					appendTargets[obj] = true
				}
			}
		case *ast.CallExpr:
			if isOutputWrite(pass, s) {
				wroteOutput = true
			}
		}
		return true
	})

	if wroteOutput {
		pass.Reportf(rng.Pos(),
			"map iteration order is nondeterministic: loop writes output directly; collect keys, sort, then iterate")
		return
	}
	if len(appendTargets) == 0 {
		return
	}
	// Report per unsorted target, ordered by declaration position so the
	// analyzer's own output is deterministic.
	bad := make([]types.Object, 0, len(appendTargets))
	for obj := range appendTargets {
		if !sortedAfter(pass, rng, parents, obj) {
			bad = append(bad, obj)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].Pos() < bad[j].Pos() })
	for _, obj := range bad {
		pass.Reportf(rng.Pos(),
			"map iteration order is nondeterministic: loop appends to %q with no sort afterwards; sort the slice before using it", obj.Name())
	}
}

// sortedAfter reports whether obj is passed to a sort.*/slices.* call in
// a statement following the range loop within its enclosing block.
func sortedAfter(pass *Pass, rng *ast.RangeStmt, parents map[ast.Node]ast.Node, obj types.Object) bool {
	block, idx := enclosingBlock(rng, parents)
	if block == nil {
		return false
	}
	for _, stmt := range block.List[idx+1:] {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// enclosingBlock climbs parents to find the block directly containing the
// statement chain of n, returning the block and n's statement index.
func enclosingBlock(n ast.Node, parents map[ast.Node]ast.Node) (*ast.BlockStmt, int) {
	child := n
	for p := parents[child]; p != nil; p = parents[child] {
		if block, ok := p.(*ast.BlockStmt); ok {
			for i, s := range block.List {
				if s == child {
					return block, i
				}
			}
			return nil, 0
		}
		child = p
	}
	return nil, 0
}

// buildParents records each node's parent within file.
func buildParents(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// isSortCall recognizes any function in package sort or slices.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := selectedPackageObject(pass.TypesInfo, sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "sort" || p == "slices"
}

// isOutputWrite recognizes calls that emit bytes whose order the reader
// observes: fmt.Fprint*, io.WriteString, and Write*/Add* builder methods
// on writer-like receivers.
func isOutputWrite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if obj := selectedPackageObject(pass.TypesInfo, sel); obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt":
			switch obj.Name() {
			case "Fprint", "Fprintf", "Fprintln":
				return true
			}
		case "io":
			return obj.Name() == "WriteString"
		}
		return false
	}
	// Method call: builder/report mutators whose call order shows in the
	// rendered output.
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune",
		"AddRow", "AddRowf", "AddSeries", "Add":
		return isMethodCall(pass, sel)
	}
	return false
}

// isMethodCall reports whether sel resolves to a method selection.
func isMethodCall(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}
