package analysis

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc proves //repro:hotpath-annotated functions statically
// allocation-free, through every module-local call they make.
//
// The reproduction's decision path is pinned at runtime to zero
// allocations per event (engine step/dispatch, eventq operations,
// Aggregate probes, the dispatcher admit loop): testing.AllocsPerRun
// catches regressions after the fact, on the inputs the benchmark
// happens to drive. This analyzer enforces the same contract at review
// time over all paths: escaping composite literals, closures, interface
// boxing, appends without preallocation evidence, string concatenation,
// make/new, goroutine launches, and calls to may-allocate callees —
// including allocations inherited through wrappers via the call-graph
// summaries. Deliberate cold-path allocations (freelist refills,
// amortized slice growth) are excused with //repro:allow:hotpathalloc
// and a reason, which also removes them from callers' summaries.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid heap allocations (direct or via callees) in //repro:hotpath-annotated functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || !IsHotpath(decl) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := pass.Summaries.Of(fn)
			if sum == nil {
				continue
			}
			name := displayName(fn)
			for _, f := range sum.Allocs {
				// Direct facts anchor at the offending site; inherited
				// facts anchor at the annotated function (their root
				// position may sit in another package's files).
				pos := f.Pos
				if f.Via != "" {
					pos = pass.Fset.Position(decl.Name.Pos())
				}
				pass.ReportAt(pos, "//repro:hotpath %s is not allocation-free: %s", name, f)
			}
		}
	}
	return nil
}
