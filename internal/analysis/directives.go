package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Source directives. Two comment forms tie the source tree to the
// analyzers:
//
//	//repro:hotpath [note]
//
// on a function's doc comment declares it part of the allocation-free
// hot path: the hotpathalloc analyzer proves it (and everything it
// calls) statically allocation-free. The annotated set is the canonical
// hot-path inventory (DESIGN.md §12) and every annotation must be
// backed by a runtime AllocsPerRun pin (TestHotpathAnnotationsPinned).
//
//	//repro:allow:<analyzer> <reason>
//
// on a finding's line (or the line directly above it) suppresses that
// analyzer's findings there, with a mandatory human-readable reason.
// Suppression is deliberately line-granular and analyzer-scoped: it
// also removes the matching facts from the enclosing function's
// interprocedural summary, so an allowed cold-path allocation (e.g. a
// freelist refill) does not taint every hot-path caller. A suppression
// that matches nothing is itself reported (analyzer "reproallow"), so
// stale exemptions cannot linger after the code they excused is gone.

// AllowAnalyzerName is the pseudo-analyzer under which directive
// hygiene findings (unused or malformed //repro:allow) are reported.
const AllowAnalyzerName = "reproallow"

// HotpathDirective is the doc-comment marker for hot-path functions.
const HotpathDirective = "//repro:hotpath"

var allowRe = regexp.MustCompile(`^//repro:allow:([A-Za-z0-9_-]+)(.*)$`)

// Allow is one parsed //repro:allow directive.
type Allow struct {
	Analyzer string
	Reason   string
	File     string
	Line     int

	used bool
}

// AllowIndex holds every //repro:allow directive of a run, indexed for
// line-level matching, plus the malformed ones (reported as findings).
type AllowIndex struct {
	byLine    map[string]map[int][]*Allow // file -> line -> directives
	all       []*Allow
	malformed []Diagnostic
}

// CollectAllows parses the //repro:allow directives of every file in
// pkgs. Directives with a missing reason are recorded as malformed.
func CollectAllows(pkgs []*Package) *AllowIndex {
	idx := &AllowIndex{byLine: map[string]map[int][]*Allow{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					idx.parse(pkg.Fset, c)
				}
			}
		}
	}
	return idx
}

func (idx *AllowIndex) parse(fset *token.FileSet, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, "//repro:allow") {
		return
	}
	pos := fset.Position(c.Pos())
	m := allowRe.FindStringSubmatch(text)
	if m == nil {
		idx.malformed = append(idx.malformed, Diagnostic{
			Pos:      pos,
			Analyzer: AllowAnalyzerName,
			Message:  "malformed //repro:allow directive: want //repro:allow:<analyzer> <reason>",
		})
		return
	}
	reason := strings.TrimSpace(m[2])
	if reason == "" {
		idx.malformed = append(idx.malformed, Diagnostic{
			Pos:      pos,
			Analyzer: AllowAnalyzerName,
			Message:  "//repro:allow:" + m[1] + " needs a reason: the suppression must explain itself",
		})
		return
	}
	a := &Allow{Analyzer: m[1], Reason: reason, File: pos.Filename, Line: pos.Line}
	idx.all = append(idx.all, a)
	lines := idx.byLine[a.File]
	if lines == nil {
		lines = map[int][]*Allow{}
		idx.byLine[a.File] = lines
	}
	lines[a.Line] = append(lines[a.Line], a)
}

// Suppresses reports whether an allow directive for analyzer covers the
// given position (same line, or the line directly above), marking the
// directive used.
func (idx *AllowIndex) Suppresses(analyzer string, pos token.Position) bool {
	if idx == nil {
		return false
	}
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, a := range lines[line] {
			if a.Analyzer == analyzer {
				a.used = true
				hit = true
			}
		}
	}
	return hit
}

// UnusedFindings returns one diagnostic per directive that suppressed
// nothing, restricted to the analyzers that actually ran (a partial run
// must not call the other analyzers' directives unused). Malformed
// directives are always included.
func (idx *AllowIndex) UnusedFindings(ran map[string]bool) []Diagnostic {
	diags := append([]Diagnostic(nil), idx.malformed...)
	for _, a := range idx.all {
		if a.used || !ran[a.Analyzer] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      token.Position{Filename: a.File, Line: a.Line, Column: 1},
			Analyzer: AllowAnalyzerName,
			Message:  "unused //repro:allow:" + a.Analyzer + " suppression (reason: " + a.Reason + "); remove it or re-justify",
		})
	}
	return diags
}

// IsHotpath reports whether decl's doc comment carries the
// //repro:hotpath directive.
func IsHotpath(decl *ast.FuncDecl) bool {
	_, ok := HotpathNote(decl)
	return ok
}

// HotpathNote returns the text following the //repro:hotpath marker on
// decl's doc comment ("" when the directive is bare) and whether the
// directive is present. The repo convention (enforced by
// TestHotpathAnnotationsPinned) is "pinned by TestXxx", naming the
// AllocsPerRun test that is the annotation's runtime half.
func HotpathNote(decl *ast.FuncDecl) (string, bool) {
	if decl == nil || decl.Doc == nil {
		return "", false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == HotpathDirective {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, HotpathDirective+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}
