package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func baselineDiag(file string, line int, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		baselineDiag("/repo/b.go", 9, "floatfold", "float accumulation folds in map iteration order"),
		baselineDiag("/repo/a.go", 3, "hotpathalloc", "make allocates"),
		// Same (analyzer, file, message) at another line: line numbers
		// are deliberately not part of the identity.
		baselineDiag("/repo/a.go", 30, "hotpathalloc", "make allocates"),
	}
	b := NewBaseline(diags, "/repo")
	if len(b.Findings) != 2 {
		t.Fatalf("findings = %d, want 2 (dedup by analyzer/file/message)", len(b.Findings))
	}
	if b.Findings[0].File != "a.go" || b.Findings[1].File != "b.go" {
		t.Fatalf("findings not sorted by file: %+v", b.Findings)
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(loaded.Findings) != len(b.Findings) || loaded.Version != baselineVersion {
		t.Fatalf("round trip changed the baseline: %+v", loaded)
	}

	// Filter drops the accepted findings — wherever their lines moved —
	// and keeps everything new.
	now := []Diagnostic{
		baselineDiag("/repo/a.go", 77, "hotpathalloc", "make allocates"),
		baselineDiag("/repo/b.go", 9, "floatfold", "float accumulation folds in map iteration order"),
		baselineDiag("/repo/c.go", 1, "nodeterminism", "call to time.Now in a simulator package"),
	}
	kept, suppressed := loaded.Filter(now, "/repo")
	if suppressed != 2 {
		t.Fatalf("suppressed = %d, want 2", suppressed)
	}
	if len(kept) != 1 || kept[0].Analyzer != "nodeterminism" {
		t.Fatalf("kept = %+v, want only the new nodeterminism finding", kept)
	}
}

func TestBaselineEmptyFilterPassthrough(t *testing.T) {
	b := &Baseline{Version: baselineVersion, Findings: []BaselineEntry{}}
	diags := []Diagnostic{baselineDiag("/repo/a.go", 1, "floateq", "x")}
	kept, suppressed := b.Filter(diags, "/repo")
	if suppressed != 0 || len(kept) != 1 {
		t.Fatalf("empty baseline must pass everything through: kept=%d suppressed=%d", len(kept), suppressed)
	}
	var nilb *Baseline
	kept, suppressed = nilb.Filter(diags, "/repo")
	if suppressed != 0 || len(kept) != 1 {
		t.Fatalf("nil baseline must pass everything through: kept=%d suppressed=%d", len(kept), suppressed)
	}
}

func TestBaselineVersionGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("LoadBaseline accepted an unsupported version")
	}
	if err := os.WriteFile(path, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("LoadBaseline accepted invalid JSON")
	}
}
