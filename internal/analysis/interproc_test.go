package analysis_test

import (
	"testing"

	"gpushare/internal/analysis"
	"gpushare/internal/analysis/analysistest"
)

// TestCrossPackageLaundering drives the multi-package corpus: hazards
// rooted in an out-of-scope helper package (wall-clock reads, unsized
// appends, map-order float folds) must surface at the in-scope call
// sites one package away, via the cross-package summaries.
func TestCrossPackageLaundering(t *testing.T) {
	analysistest.RunPackages(t,
		[]analysis.DirSpec{
			{Dir: "testdata/crosspkg/clockutil", ImportPath: "gpushare/internal/clockutil"},
			{Dir: "testdata/crosspkg/sim", ImportPath: "gpushare/internal/gpusim"},
		},
		[]*analysis.Analyzer{analysis.NoDeterminism, analysis.HotPathAlloc, analysis.FloatFold},
	)
}

// TestGenerics pins analyzer behavior on generic code: instantiated
// calls resolve to their origin (facts propagate, nothing panics) and
// type parameters are not mistaken for boxing interfaces.
func TestGenerics(t *testing.T) {
	analysistest.RunPackages(t,
		[]analysis.DirSpec{
			{Dir: "testdata/generics", ImportPath: "gpushare/internal/gpusim"},
		},
		[]*analysis.Analyzer{analysis.HotPathAlloc, analysis.FloatFold},
	)
}
