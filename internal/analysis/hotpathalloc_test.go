package analysis_test

import (
	"testing"

	"gpushare/internal/analysis"
	"gpushare/internal/analysis/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotpathalloc", analysis.HotPathAlloc, "gpushare/internal/gpusim")
}

func TestHotPathAllocScope(t *testing.T) {
	// The annotation, not the package, opts a function in: the analyzer
	// applies everywhere, including cmd/ tools.
	for _, p := range []string{
		"gpushare/internal/gpusim",
		"gpushare/internal/report",
		"gpushare/cmd/gpusched",
	} {
		if !analysis.HotPathAlloc.AppliesTo(p) {
			t.Errorf("hotpathalloc must apply to %s", p)
		}
	}
}
