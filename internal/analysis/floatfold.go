package analysis

import (
	"go/ast"
	"go/types"
)

// FloatFold requires float accumulation to be a deterministic left
// fold in the packages whose sums feed scheduling decisions or metric
// output.
//
// interference.Aggregate's bit-identity contract (DESIGN.md §10) holds
// only because every sum is the same left-to-right float64 fold over
// the same member sequence; float addition is not associative, so a
// sum folded in map-iteration order (randomized per run) or a
// reduction written acc = x + acc produces run-dependent low bits that
// golden tests then surface as spurious mismatches. The analyzer flags
// both shapes — including when the fold hides inside a module-local
// helper outside these packages, via the call-graph summaries. The
// approved home for shared folds is internal/floats (Sum, SumMap),
// which is exempt by construction.
var FloatFold = &Analyzer{
	Name:  "floatfold",
	Doc:   "forbid order-nondeterministic float accumulation (map-range sums, reordered reductions) in simulator and metric packages",
	Match: matchSuffixes(floatFoldPackages()...),
	Run:   runFloatFold,
}

// floatFoldPackages is the union of the simulator and metric scopes:
// anywhere a float sum can reach a scheduling decision or a reported
// metric.
func floatFoldPackages() []string {
	seen := map[string]bool{}
	var union []string
	for _, s := range [2][]string{simulatorPackages, metricPackages} {
		for _, p := range s {
			if !seen[p] {
				seen[p] = true
				union = append(union, p)
			}
		}
	}
	return union
}

func runFloatFold(pass *Pass) error {
	// Direct facts: report each distinct root site once. Published
	// summaries are shared across an SCC's members, so two mutually
	// recursive functions would otherwise repeat each other's facts.
	seen := map[string]bool{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := pass.Summaries.Of(fn)
			if sum == nil {
				continue
			}
			for _, f := range sum.Folds {
				if f.Via != "" {
					continue // inherited: handled at the call site below
				}
				key := f.Pos.String() + "\x00" + f.Desc
				if seen[key] {
					continue
				}
				seen[key] = true
				pass.ReportAt(f.Pos, "%s; use a slice fold or the internal/floats helpers", f.Desc)
			}
		}
	}

	// Interprocedural: calling a module-local helper that folds floats
	// nondeterministically launders the hazard only if the helper lives
	// outside this analyzer's scope — in scope, the helper is flagged
	// directly above.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pass.TypesInfo, call)
			if callee == nil || !moduleLocal(callee, pass.Pkg.Path()) {
				return true
			}
			sum := pass.Summaries.Of(callee)
			if sum == nil || len(sum.Folds) == 0 || pass.Analyzer.AppliesTo(sum.PkgPath) {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s reaches order-nondeterministic float accumulation: %s",
				displayName(callee), sum.Folds[0])
			return true
		})
	}
	return nil
}
