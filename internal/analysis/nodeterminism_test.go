package analysis_test

import (
	"testing"

	"gpushare/internal/analysis"
	"gpushare/internal/analysis/analysistest"
)

func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/nodeterminism", analysis.NoDeterminism, "gpushare/internal/gpusim")
}

func TestNoDeterminismScope(t *testing.T) {
	// Wall-clock use is legitimate outside the simulator: cmd/ tools may
	// time real work.
	if analysis.NoDeterminism.AppliesTo("gpushare/cmd/gpusched") {
		t.Fatalf("nodeterminism must not apply to cmd packages")
	}
	for _, p := range []string{
		"gpushare/internal/core",
		"gpushare/internal/gpusim",
		"gpushare/internal/eventq",
		"gpushare/internal/experiments",
		"gpushare/internal/interference",
		"gpushare/internal/mps",
		"gpushare/internal/obs",
		"gpushare/internal/parallel",
	} {
		if !analysis.NoDeterminism.AppliesTo(p) {
			t.Errorf("nodeterminism must apply to %s", p)
		}
	}
}
