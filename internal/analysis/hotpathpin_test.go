package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gpushare/internal/analysis"
)

// pinRe is the required note grammar: the annotation must name the
// AllocsPerRun test that is its runtime half.
var pinRe = regexp.MustCompile(`^pinned by (Test[A-Za-z0-9_]+)$`)

// TestHotpathAnnotationsPinned bridges the static and dynamic halves of
// the hot-path contract: every //repro:hotpath function in the module
// must carry a "pinned by TestXxx" note, and that test must exist in
// the same package's test files. An annotation without a runtime pin
// proves nothing about real allocation behavior (the analyzer is a
// conservative approximation); a pin without the annotation is caught
// the other way around, by hotpathalloc once the directive is added.
func TestHotpathAnnotationsPinned(t *testing.T) {
	root := "../.."
	type annotation struct {
		pos  string
		fn   string
		dir  string
		note string
	}
	var anns []annotation
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && name != "." && name != ".." {
				return fs.SkipDir
			}
			if name == "testdata" || name == "vendor" {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			note, ok := analysis.HotpathNote(fd)
			if !ok {
				continue
			}
			anns = append(anns, annotation{
				pos:  fset.Position(fd.Pos()).String(),
				fn:   fd.Name.Name,
				dir:  filepath.Dir(path),
				note: note,
			})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking module source: %v", err)
	}
	if len(anns) == 0 {
		t.Fatal("no //repro:hotpath annotations found; the hot-path inventory must not be empty")
	}

	pins := map[string]map[string]bool{} // dir -> test func names
	for _, a := range anns {
		m := pinRe.FindStringSubmatch(a.note)
		if m == nil {
			t.Errorf("%s: //repro:hotpath on %s has note %q; want \"pinned by TestXxx\" naming its AllocsPerRun pin",
				a.pos, a.fn, a.note)
			continue
		}
		if pins[a.dir] == nil {
			pins[a.dir] = testFuncsIn(t, a.dir)
		}
		if !pins[a.dir][m[1]] {
			t.Errorf("%s: //repro:hotpath on %s names %s, but no such test exists in %s",
				a.pos, a.fn, m[1], a.dir)
		}
	}
}

// testFuncsIn parses dir's _test.go files and returns the declared
// top-level test function names.
func testFuncsIn(t *testing.T, dir string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "Test") {
				names[fd.Name.Name] = true
			}
		}
	}
	return names
}
