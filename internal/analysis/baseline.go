package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is a checked-in set of accepted findings. The policy
// (DESIGN.md §12) is that it stays empty — real violations are fixed
// and intentional ones carry //repro:allow with a reason — but the
// mechanism exists so a future sweep that surfaces pre-existing debt
// can land incrementally: regenerate deliberately with
// `make lint-baseline`, burn entries down over time.
//
// Entries match on (analyzer, relative file, message) and not on line
// numbers: unrelated edits shift lines constantly, and a baseline that
// churns on every edit would be regenerated reflexively — exactly the
// rubber stamp the empty-baseline policy is meant to prevent.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// baselineVersion guards the file format.
const baselineVersion = 1

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: unsupported version %d (want %d)", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// NewBaseline captures diags as a baseline, with files rendered
// relative to root and entries deduplicated and sorted.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	seen := map[BaselineEntry]bool{}
	b := &Baseline{Version: baselineVersion, Findings: []BaselineEntry{}}
	for _, d := range diags {
		e := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     relArtifactURI(root, d.Pos.Filename),
			Message:  d.Message,
		}
		if !seen[e] {
			seen[e] = true
			b.Findings = append(b.Findings, e)
		}
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// Write renders the baseline as stable, human-diffable JSON.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diags into new findings and baseline-suppressed ones.
func (b *Baseline) Filter(diags []Diagnostic, root string) (kept []Diagnostic, suppressed int) {
	if b == nil || len(b.Findings) == 0 {
		return diags, 0
	}
	accepted := make(map[BaselineEntry]bool, len(b.Findings))
	for _, e := range b.Findings {
		accepted[e] = true
	}
	kept = diags[:0:0]
	for _, d := range diags {
		e := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     relArtifactURI(root, d.Pos.Filename),
			Message:  d.Message,
		}
		if accepted[e] {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
