package analysis_test

import (
	"testing"

	"gpushare/internal/analysis"
	"gpushare/internal/analysis/analysistest"
)

func TestShadowBuiltin(t *testing.T) {
	analysistest.Run(t, "testdata/shadowbuiltin", analysis.ShadowBuiltin, "gpushare/internal/core")
}

func TestShadowBuiltinScope(t *testing.T) {
	// Builtins can be shadowed anywhere, so the check has no package
	// scope: it applies to every layer.
	for _, p := range []string{
		"gpushare/internal/core",
		"gpushare/internal/gpusim",
		"gpushare/cmd/benchrepro",
	} {
		if !analysis.ShadowBuiltin.AppliesTo(p) {
			t.Errorf("shadowbuiltin must apply to %s", p)
		}
	}
}
