package floats

import (
	"cmp"
	"slices"
)

// Deterministic folds. Float addition is not associative, so the same
// multiset of terms summed in two different orders differs in the low
// bits — enough to flip a threshold comparison or a golden byte. These
// helpers are the sanctioned home for shared float accumulation (the
// floatfold analyzer directs here): each fixes one canonical order and
// folds left to right, so equal inputs give bit-equal sums everywhere.

// Sum is the strict left-to-right fold of xs. It is intentionally naive
// — no pairwise or compensated summation — because the reproduction's
// contract is bit-identity with the paper pipeline's plain loops, not
// minimal rounding error.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// SumMap folds m's values in ascending key order. Go randomizes map
// iteration order per run; sorting the keys first makes the fold order
// — and therefore every bit of the result — a function of the map's
// contents alone.
func SumMap[K cmp.Ordered](m map[K]float64) float64 {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}
