package floats

import (
	"math"
	"testing"
)

// foldTerms is a sequence whose sum is order-sensitive: alternating
// magnitudes make the low bits depend on fold order.
var foldTerms = []float64{1e16, 1.5, -1e16, 2.25, 1e-3, 0.7, 3e8, -3e8}

func TestSumIsLeftFold(t *testing.T) {
	var want float64
	for _, x := range foldTerms {
		want += x
	}
	if got := Sum(foldTerms); got != want {
		t.Fatalf("Sum = %v, want the left fold %v", got, want)
	}
	// Reversing the terms must (for this sequence) change the bits —
	// otherwise the test proves nothing about order sensitivity.
	rev := make([]float64, len(foldTerms))
	for i, x := range foldTerms {
		rev[len(foldTerms)-1-i] = x
	}
	if Sum(rev) == Sum(foldTerms) {
		t.Fatalf("fold-order test sequence is not order-sensitive; pick harder terms")
	}
}

func TestSumMapIsKeyOrderFold(t *testing.T) {
	m := map[string]float64{}
	keys := []string{"d", "a", "c", "b", "e", "f", "g", "h"}
	for i, k := range keys {
		m[k] = foldTerms[i]
	}
	// Expected: fold in ascending key order = a,b,c,d,... which maps to
	// terms[1], terms[3], terms[2], terms[0], terms[4..7].
	want := foldTerms[1] + foldTerms[3] + foldTerms[2] + foldTerms[0] +
		foldTerms[4] + foldTerms[5] + foldTerms[6] + foldTerms[7]
	for i := 0; i < 50; i++ { // map order is randomized; the fold must not be
		if got := SumMap(m); got != want {
			t.Fatalf("SumMap = %v, want sorted-key fold %v", got, want)
		}
	}
	if got := SumMap(map[int]float64(nil)); got != 0 {
		t.Fatalf("SumMap(nil) = %v, want 0", got)
	}
	if math.IsNaN(Sum(nil)) || Sum(nil) != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", Sum(nil))
	}
}
