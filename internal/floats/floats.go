// Package floats holds the sanctioned floating-point comparison helpers
// the floateq analyzer directs to.
//
// Utilization percentages, energy joules and metric products are built
// from chains of float64 arithmetic; exact ==/!= on such values compares
// accumulated rounding noise and can flip a scheduler decision or a
// metric label between platforms. These helpers compare within a
// relative epsilon instead, with an absolute floor near zero.
package floats

import "math"

// Eps is the default comparison tolerance. It is far looser than one ULP
// but far tighter than any physically meaningful difference in the
// simulator's percent/joule/second scales.
const Eps = 1e-9

// AlmostEq reports whether a and b are equal within the default
// tolerance: |a-b| <= Eps * max(1, |a|, |b|). The max(1, ...) term makes
// the test absolute near zero and relative for large magnitudes.
func AlmostEq(a, b float64) bool { return EqWithin(a, b, Eps) }

// EqWithin is AlmostEq with a caller-chosen tolerance.
func EqWithin(a, b, eps float64) bool {
	if a == b { // fast path: also handles shared infinities
		return true
	}
	// Distinct non-finite values are never close: without this guard the
	// eps*Inf bound below would call +Inf and -Inf equal.
	if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= eps*scale
}

// IsZero reports whether x is indistinguishable from zero.
func IsZero(x float64) bool { return math.Abs(x) <= Eps }

// IsInt reports whether x holds an integral value (within tolerance of
// its truncation), e.g. for deciding whether a metric exponent renders
// as "TxTxE" or falls back to "T^2.5*E^1".
func IsInt(x float64) bool { return AlmostEq(x, math.Trunc(x)) }
