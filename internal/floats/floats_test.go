package floats

import (
	"math"
	"testing"
)

func TestAlmostEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{0, 1e-12, true},                   // absolute floor near zero
		{0, 1e-6, false},                   //
		{1e9, 1e9 * (1 + 1e-12), true},     // relative at large magnitude
		{1e9, 1e9 * (1 + 1e-6), false},     //
		{0.1 + 0.2, 0.3, true},             // the classic
		{math.Inf(1), math.Inf(1), true},   // shared infinity via fast path
		{math.Inf(1), math.Inf(-1), false}, //
		{math.NaN(), math.NaN(), false},    // NaN equals nothing
		{-1, 1, false},
	}
	for _, c := range cases {
		if got := AlmostEq(c.a, c.b); got != c.want {
			t.Errorf("AlmostEq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqWithin(t *testing.T) {
	if !EqWithin(100, 101, 0.02) {
		t.Errorf("EqWithin(100, 101, 0.02) must hold (2%% of 101 > 1)")
	}
	if EqWithin(100, 101, 0.001) {
		t.Errorf("EqWithin(100, 101, 0.001) must not hold")
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(0) || !IsZero(1e-12) || !IsZero(-1e-12) {
		t.Errorf("IsZero must accept values within Eps of zero")
	}
	if IsZero(1e-6) || IsZero(-1) {
		t.Errorf("IsZero must reject clearly nonzero values")
	}
}

func TestIsInt(t *testing.T) {
	for _, x := range []float64{0, 1, 2, -3, 1e6} {
		if !IsInt(x) {
			t.Errorf("IsInt(%g) must hold", x)
		}
	}
	for _, x := range []float64{0.5, 1.1, -2.7} {
		if IsInt(x) {
			t.Errorf("IsInt(%g) must not hold", x)
		}
	}
	// The product weights arrive from flag parsing and arithmetic; a
	// value that drifted by rounding still renders as integral.
	if !IsInt(3.0000000000001e0 - 1e-13) {
		t.Errorf("IsInt must tolerate rounding drift")
	}
}
