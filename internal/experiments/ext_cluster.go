package experiments

import (
	"fmt"
	"io"

	"gpushare/internal/cluster"
	"gpushare/internal/core"
	"gpushare/internal/parallel"
	"gpushare/internal/report"
)

// ExtCluster scales the online dispatcher to a multi-node, multi-tenant
// fleet (DESIGN.md §13): one synthetic submission stream — gangs,
// priorities, three tenants — planned under three queue disciplines on
// the same mixed-mode cluster (MPS, MIG, and time-sliced nodes). The
// comparison shows what each control buys: FIFO's arrival order versus
// fair share's deficit order, and preemption trading victim makespan
// (lost partial runs plus restart overhead) for high-priority latency.
func ExtCluster(opts Options, w io.Writer) error {
	device := opts.device()
	count := 600
	if opts.Quick {
		count = 150
	}
	subs, store, err := cluster.GenerateStream(device, cluster.StreamSpec{
		Fleet:          core.FleetSpec{Workflows: count, TargetGPUs: 6, Seed: opts.Seed + 777},
		Tenants:        []string{"ares", "boreas", "chronos"},
		PriorityLevels: 3,
		GangFraction:   0.2,
		GangSize:       3,
		Seed:           opts.Seed + 778,
	})
	if err != nil {
		return err
	}

	baseSpec := func(q cluster.Discipline, preempt bool) cluster.Spec {
		return cluster.Spec{
			Nodes: []cluster.NodeSpec{
				{Name: "mps-a", Device: device, GPUs: 3, Mode: cluster.ModeMPS, ClientCap: 5},
				{Name: "mig-b", Device: device, GPUs: 1, Mode: cluster.ModeMIG, MIGInstances: 4},
				{Name: "ts-c", Device: device, GPUs: 1, Mode: cluster.ModeTimeSlice, TimeSliceCap: 3},
			},
			Tenants: []cluster.TenantSpec{
				{Name: "ares", Weight: 1},
				{Name: "boreas", Weight: 2},
				{Name: "chronos", Weight: 1},
			},
			Queue:      q,
			Preemption: preempt,
		}
	}
	variants := []struct {
		name string
		spec cluster.Spec
	}{
		{"fifo", baseSpec(cluster.FIFO, false)},
		{"fair-share", baseSpec(cluster.FairShare, false)},
		{"fair-share+preempt", baseSpec(cluster.FairShare, true)},
	}

	outs, err := parallel.Map(opts.workers(), len(variants), func(i int) (*cluster.Outcome, error) {
		p, err := cluster.NewPlanner(variants[i].spec, store)
		if err != nil {
			return nil, err
		}
		return p.Plan(subs)
	})
	if err != nil {
		return err
	}

	t := report.NewTable(
		fmt.Sprintf("Extension: cluster disciplines — %d submissions, 3 tenants, 5 GPUs (mps+mig+ts)", len(subs)),
		"Discipline", "Jobs", "Failed", "Preempted", "Makespan s", "Mean wait s", "Max wait s")
	for i, v := range variants {
		out := outs[i]
		var meanWait, maxWait float64
		for _, j := range out.Jobs {
			meanWait += j.WaitedS
			if j.WaitedS > maxWait {
				maxWait = j.WaitedS
			}
		}
		if len(out.Jobs) > 0 {
			meanWait /= float64(len(out.Jobs))
		}
		t.AddRowf(v.name, len(out.Jobs), len(out.Failed), out.Stats.GangsPreempted,
			out.MakespanS, meanWait, maxWait)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Per-tenant accounting under the full discipline: weighted deficit
	// order plus preemption.
	full := outs[2]
	tt := report.NewTable(
		"Per-tenant outcome under fair-share + preemption",
		"Tenant", "Weight", "Jobs", "Mean wait s", "Mean makespan s", "Preempted", "Service s")
	for _, ts := range full.Tenants {
		tt.AddRowf(ts.Tenant, ts.Weight, ts.Jobs, ts.MeanWaitS, ts.MeanMakespanS,
			ts.Preemptions, ts.ServiceS)
	}
	if err := tt.Render(w); err != nil {
		return err
	}

	// Preemption's cost lands in the victims' makespans: lost partial
	// runs plus the restart overhead charged on re-dispatch.
	var victims, untouched int
	var victimMakespan, untouchedMakespan, chargedOverheadS float64
	for _, j := range full.Jobs {
		if j.Preemptions > 0 {
			victims++
			victimMakespan += j.MakespanS
			chargedOverheadS += float64(j.Preemptions) * 10 // spec default overhead
		} else {
			untouched++
			untouchedMakespan += j.MakespanS
		}
	}
	if victims > 0 {
		victimMakespan /= float64(victims)
	}
	if untouched > 0 {
		untouchedMakespan /= float64(untouched)
	}
	_, err = fmt.Fprintf(w,
		"\npreemption cost: %d victim gangs, mean makespan %.1fs vs %.1fs untouched (%.0fs restart overhead charged, %d evictions)\n",
		victims, victimMakespan, untouchedMakespan, chargedOverheadS, full.Stats.Preemptions)
	return err
}

func init() {
	register(Experiment{
		ID:    "ext-cluster",
		Title: "Extension — multi-node fleet: tenant queues, gangs, preemption",
		Run:   ExtCluster,
	})
}
