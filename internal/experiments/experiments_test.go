package experiments

import (
	"io"
	"math"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 42, Quick: true} }

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestRegistry(t *testing.T) {
	all := All()
	wantIDs := []string{"ext-cluster", "ext-mechanisms", "ext-mig", "ext-online", "ext-powercap", "ext-recommend",
		"fig1", "fig2", "fig3", "fig4", "fig5", "table1", "table2", "table3"}
	if len(all) != len(wantIDs) {
		t.Fatalf("registry has %d experiments: %v", len(all), ids(all))
	}
	for i, e := range all {
		if e.ID != wantIDs[i] {
			t.Fatalf("registry order %v, want %v", ids(all), wantIDs)
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	e, err := Get("table3")
	if err != nil || e.ID != "table3" {
		t.Fatalf("Get(table3) = %v, %v", e.ID, err)
	}
}

func ids(es []Experiment) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		var sb strings.Builder
		if err := e.Run(quickOpts(), &sb); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if sb.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if relErr(r.AchievedPct, r.PaperAchievedPct) > 0.01 {
			t.Errorf("%s achieved %.2f vs paper %.2f", r.Benchmark, r.AchievedPct, r.PaperAchievedPct)
		}
		if relErr(r.TheoreticalPct, r.PaperTheoreticalPct) > 0.01 {
			t.Errorf("%s theoretical %.2f vs paper %.2f", r.Benchmark, r.TheoreticalPct, r.PaperTheoreticalPct)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 7 benchmarks, Epsilon only at 1x → 13 rows.
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(rows))
	}
	for _, r := range rows {
		if r.PaperPowerW == 0 {
			continue
		}
		if e := relErr(r.Measured.AvgPowerW, r.PaperPowerW); e > 0.03 {
			t.Errorf("%s/%s power %.1f vs paper %.1f", r.Benchmark, r.Size,
				r.Measured.AvgPowerW, r.PaperPowerW)
		}
		if e := relErr(r.Measured.AvgSMUtilPct, r.PaperSMPct); e > 0.05 {
			t.Errorf("%s/%s SM %.2f vs paper %.2f", r.Benchmark, r.Size,
				r.Measured.AvgSMUtilPct, r.PaperSMPct)
		}
		if e := relErr(r.Measured.EnergyJ, r.PaperEnergyJ); e > 0.05 {
			t.Errorf("%s/%s energy %.0f vs paper %.0f", r.Benchmark, r.Size,
				r.Measured.EnergyJ, r.PaperEnergyJ)
		}
	}
}

func TestFig1Shapes(t *testing.T) {
	series, err := Fig1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 7 {
		t.Fatalf("series = %d, want 7 panels-worth", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(Fig1Partitions(true)) {
			t.Fatalf("%s/%s has %d points", s.Benchmark, s.Size, len(s.Points))
		}
		// Throughput must rise (weakly) with partition size.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].TasksPerHour < s.Points[i-1].TasksPerHour*0.98 {
				t.Errorf("%s/%s throughput fell at partition %d%%",
					s.Benchmark, s.Size, s.Points[i].PartitionPct)
			}
		}
		// Non-linearity: the smallest partition must be worse than its
		// pro-rata share would suggest only below saturation; at minimum
		// the first point is clearly below the last.
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if first.TasksPerHour >= last.TasksPerHour*0.95 {
			t.Errorf("%s/%s shows no partition sensitivity", s.Benchmark, s.Size)
		}
	}
	// Granularity claim: larger problem sizes are more linear — the
	// relative throughput at a mid partition is lower for 4x than 1x
	// (1x saturates earlier). Check for WarpX, the paper's Figure 1c.
	rel := map[string]float64{}
	for _, s := range series {
		if s.Benchmark == "WarpX" {
			for _, p := range s.Points {
				if p.PartitionPct == 60 {
					rel[s.Size] = p.RelThroughput
				}
			}
		}
	}
	if rel["1x"] <= rel["4x"] {
		t.Errorf("WarpX rel@60%%: 1x %.3f should exceed 4x %.3f (earlier saturation)",
			rel["1x"], rel["4x"])
	}
}

func TestFig2Claims(t *testing.T) {
	results, err := RunCombos(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("combos = %d", len(results))
	}
	var best, worst float64 = 0, 99
	for _, r := range results {
		// "MPS outperforms time-slicing in every instance" (§V-D).
		if r.MPS.Throughput < r.TimeSlice.Throughput-0.01 {
			t.Errorf("combo %d: MPS %.2fx below time-slicing %.2fx",
				r.Combo.ID, r.MPS.Throughput, r.TimeSlice.Throughput)
		}
		// Throughput floor ≈ 0% gain (paper range 0%..147%).
		if r.MPS.Throughput < 0.97 {
			t.Errorf("combo %d: MPS throughput %.2fx below sequential", r.Combo.ID, r.MPS.Throughput)
		}
		best = math.Max(best, r.MPS.Throughput)
		worst = math.Min(worst, r.MPS.Throughput)
	}
	// Wide spread across combos, as the paper reports.
	if best < 1.5 {
		t.Errorf("best combo only %.2fx; expected some combo well above 1.5x", best)
	}
	if worst > 1.2 {
		t.Errorf("worst combo %.2fx; expected some combo near parity", worst)
	}
	// Efficiency floor: paper saw as low as a 2% decrease.
	for _, r := range results {
		if r.MPS.EnergyEfficiency < 0.90 {
			t.Errorf("combo %d efficiency %.2fx below plausible floor", r.Combo.ID, r.MPS.EnergyEfficiency)
		}
	}
}

func TestFig3Claims(t *testing.T) {
	results, err := RunCombos(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	anyCapping := false
	for _, r := range results {
		// Capping never decreases under MPS relative to sequential.
		if r.MPSCappedPct < r.SeqCappedPct-0.5 {
			t.Errorf("combo %d: MPS capping %.1f%% below sequential %.1f%%",
				r.Combo.ID, r.MPSCappedPct, r.SeqCappedPct)
		}
		if r.MPSCappedPct > 1 {
			anyCapping = true
		}
	}
	if !anyCapping {
		t.Error("no combination triggered SW power capping under MPS")
	}
}

func TestFig4Claims(t *testing.T) {
	points, err := Fig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byBench := map[string]map[int]ConfigPoint{}
	for _, p := range points {
		if byBench[p.Benchmark] == nil {
			byBench[p.Benchmark] = map[int]ConfigPoint{}
		}
		byBench[p.Benchmark][p.Parallel] = p
	}
	ath, lam := byBench["AthenaPK"], byBench["LAMMPS"]
	// Cardinality 1 is the sequential case: parity.
	if relErr(ath[1].Rel.Throughput, 1) > 0.02 || relErr(lam[1].Rel.Throughput, 1) > 0.02 {
		t.Errorf("cardinality-1 not at parity: %v / %v", ath[1].Rel.Throughput, lam[1].Rel.Throughput)
	}
	// The low-utilization workflow gains much more from collocation.
	if ath[4].Rel.Throughput <= lam[4].Rel.Throughput {
		t.Errorf("AthenaPK %vx should exceed LAMMPS %vx at cardinality 4",
			ath[4].Rel.Throughput, lam[4].Rel.Throughput)
	}
	// LAMMPS stays near parity at low cardinality (paper: ~6% peak) and
	// declines with more clients.
	if lam[4].Rel.Throughput > 1.2 {
		t.Errorf("LAMMPS gain %vx too large", lam[4].Rel.Throughput)
	}
	if lam[16].Rel.Throughput >= lam[4].Rel.Throughput {
		t.Errorf("LAMMPS throughput should decline with cardinality: %v → %v",
			lam[4].Rel.Throughput, lam[16].Rel.Throughput)
	}
	// AthenaPK energy efficiency grows from cardinality 1 to higher.
	if ath[16].Rel.EnergyEfficiency <= ath[1].Rel.EnergyEfficiency {
		t.Errorf("AthenaPK efficiency should rise with cardinality")
	}
}

func TestFig5Claims(t *testing.T) {
	points, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var athSingle, athWide *ConfigPoint
	for i := range points {
		p := &points[i]
		if p.Benchmark != "AthenaPK" {
			continue
		}
		if p.Parallel == 1 {
			athSingle = p
		}
		if p.Parallel == 12 {
			athWide = p
		}
	}
	if athSingle == nil || athWide == nil {
		t.Fatalf("missing config points: %+v", points)
	}
	// A single workflow is the sequential schedule.
	if relErr(athSingle.Rel.Throughput, 1) > 0.02 {
		t.Errorf("single-workflow config not parity: %v", athSingle.Rel.Throughput)
	}
	// Oversubscription boosts energy efficiency over the single
	// workflow ("maximizing oversubscription yields slightly more
	// benefit to energy efficiency").
	if athWide.Rel.EnergyEfficiency <= athSingle.Rel.EnergyEfficiency {
		t.Errorf("wide config efficiency %v not above single %v",
			athWide.Rel.EnergyEfficiency, athSingle.Rel.EnergyEfficiency)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := RunConfig(quickOpts(), "Nope", "1x", 1, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := RunConfig(quickOpts(), "Kripke", "1x", 0, 1); err == nil {
		t.Fatal("zero tasks accepted")
	}
}

func TestRenderersProduceTables(t *testing.T) {
	rows, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderTable1(rows, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "LAMMPS") {
		t.Fatal("table1 render missing rows")
	}
	sb.Reset()
	if err := RenderTable3(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Kripke/4x x11") {
		t.Fatalf("table3 render: %q", sb.String())
	}
}

func TestComboCache(t *testing.T) {
	a, err := RunCombos(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCombos(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("combo results not memoized")
	}
	// Different seed → fresh run.
	c, err := RunCombos(Options{Seed: 43, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] == &c[0] {
		t.Fatal("cache ignored the seed")
	}
}

var _ io.Writer = (*strings.Builder)(nil)
