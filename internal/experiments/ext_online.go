package experiments

import (
	"fmt"
	"io"

	"gpushare/internal/core"
	"gpushare/internal/report"
	"gpushare/internal/simtime"
	"gpushare/internal/workflow"
	"gpushare/internal/xrand"
)

// ExtOnline emulates online operation (§VI's "comprehensive scheduling
// framework"): a deterministic pseudo-random arrival stream of mixed
// workflows is dispatched incrementally under the paper's rules, against
// an arrival-respecting sequential baseline.
func ExtOnline(opts Options, w io.Writer) error {
	pr := opts.profiler()
	store, err := pr.ProfileSuite([]string{"1x", "4x"})
	if err != nil {
		return err
	}
	sched, err := core.NewScheduler(opts.device(), 2, store, core.EnergyPolicy())
	if err != nil {
		return err
	}

	// Deterministic arrival stream: mixed utilizations, exponential-ish
	// inter-arrival gaps in the tens of seconds.
	count := 16
	if opts.Quick {
		count = 8
	}
	mix := []struct {
		bench, size string
		iters       int
	}{
		{"AthenaPK", "4x", 2},
		{"Cholla-Gravity", "1x", 20},
		{"Kripke", "4x", 1},
		{"LAMMPS", "1x", 15},
		{"Cholla-MHD", "1x", 2},
		{"Kripke", "1x", 20},
	}
	rng := xrand.New(opts.Seed + 12345)
	var arrivals []core.Arrival
	now := simtime.Zero
	for i := 0; i < count; i++ {
		m := mix[rng.Intn(len(mix))]
		arrivals = append(arrivals, core.Arrival{
			At: now,
			Workflow: workflow.Workflow{
				Name: fmt.Sprintf("job-%02d-%s", i, m.bench),
				Tasks: []workflow.Task{
					{Benchmark: m.bench, Size: m.size, Iterations: m.iters},
				},
			},
		})
		gap := 10 + rng.Float64()*50
		now = now.Add(simtime.FromSeconds(gap))
	}

	out, err := sched.ScheduleOnline(arrivals, opts.simConfig())
	if err != nil {
		return err
	}

	t := report.NewTable(
		"Extension: online scheduling — dispatch log (2 GPUs, energy policy)",
		"Dispatch t", "Workflow", "GPU", "Waited s", "Alongside")
	for _, d := range out.Dispatches {
		alongside := ""
		for i, n := range d.RunningAlongside {
			if i > 0 {
				alongside += ", "
			}
			alongside += n
		}
		t.AddRowf(d.At.String(), d.Workflow, d.GPU, d.WaitedS, alongside)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nsharing:    makespan %8.1fs  energy %10.0f J\n",
		out.Sharing.MakespanS, out.Sharing.EnergyJ); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "sequential: makespan %8.1fs  energy %10.0f J\n",
		out.Sequential.MakespanS, out.Sequential.EnergyJ); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "throughput %.2fx  efficiency %.2fx  mean wait %.1fs  max wait %.1fs\n",
		out.Relative.Throughput, out.Relative.EnergyEfficiency, out.MeanWaitS, out.MaxWaitS)
	return err
}

func init() {
	register(Experiment{
		ID:    "ext-online",
		Title: "Extension — online arrivals under the interference rules",
		Run:   ExtOnline,
	})
}
