package experiments

import (
	"fmt"
	"io"

	"gpushare/internal/recommend"
	"gpushare/internal/report"
)

// ExtRecommend runs the future-work recommendation model (§VI) over the
// profiled suite: rank candidate pairs analytically, and show how kernel-
// similarity clustering shrinks the offline pairwise-analysis campaign.
func ExtRecommend(opts Options, w io.Writer) error {
	pr := opts.profiler()
	store, err := pr.ProfileSuite([]string{"1x", "4x"})
	if err != nil {
		return err
	}
	device := opts.device()

	recs, err := recommend.Recommend(device, store.All(), recommend.ByProduct, false)
	if err != nil {
		return err
	}
	limit := 12
	if len(recs) < limit {
		limit = len(recs)
	}
	t := report.NewTable(
		"Extension: top recommended collocations (analytic model, TxE objective)",
		"Rank", "Pair", "Pred thpt x", "Pred eff x", "Pred capped")
	for i := 0; i < limit; i++ {
		r := recs[i]
		t.AddRowf(i+1, r.Key(), r.Throughput, r.EnergyEfficiency, r.PredictedCapped)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	clusters, err := recommend.ClusterProfiles(store.All(), 0.97)
	if err != nil {
		return err
	}
	ct := report.NewTable(
		"Kernel-similarity clusters (threshold 0.97) — offline-analysis reduction",
		"Representative", "Members")
	for _, c := range clusters {
		members := ""
		for i, m := range c.Members {
			if i > 0 {
				members += ", "
			}
			members += m.Key()
		}
		ct.AddRow(c.Representative.Key(), members)
	}
	if err := ct.Render(w); err != nil {
		return err
	}
	full := store.Len() * (store.Len() + 1) / 2
	plan := recommend.AnalysisPlan(clusters)
	_, err = fmt.Fprintf(w, "\npairwise analyses: %d with clustering vs %d exhaustive (%.0f%% saved)\n",
		len(plan), full, 100*(1-float64(len(plan))/float64(full)))
	return err
}

func init() {
	register(Experiment{
		ID:    "ext-recommend",
		Title: "Extension — typed-interference recommendation model + kernel similarity",
		Run:   ExtRecommend,
	})
}
