package experiments

import (
	"io"

	"gpushare/internal/profile"
	"gpushare/internal/report"
	"gpushare/internal/workload"
)

// Table2Row is one row of Table II: utilization statistics for one
// workload at one problem size, measured by the offline profiler, with the
// paper's values alongside.
type Table2Row struct {
	Benchmark string
	Size      string
	Measured  *profile.TaskProfile
	// Paper values (zero when the paper does not report the size).
	PaperMaxMemMiB int64
	PaperBWPct     float64
	PaperSMPct     float64
	PaperPowerW    float64
	PaperEnergyJ   float64
}

// table2Sizes mirrors the paper's Table II rows: every benchmark at 1x,
// plus 4x for all but BerkeleyGW-Epsilon ("we didn't investigate scaling
// with this benchmark due to resource limitations").
func table2Sizes(bench string) []string {
	if bench == "BerkeleyGW-Epsilon" {
		return []string{"1x"}
	}
	return []string{"1x", "4x"}
}

// Table2 runs the offline profiling campaign over the suite.
func Table2(opts Options) ([]Table2Row, error) {
	pr := opts.profiler()
	var rows []Table2Row
	for _, name := range workload.Names() {
		w, err := workload.Get(name)
		if err != nil {
			return nil, err
		}
		for _, size := range table2Sizes(name) {
			task, err := w.BuildTaskSpec(size, opts.device())
			if err != nil {
				return nil, err
			}
			p, err := pr.ProfileTask(task)
			if err != nil {
				return nil, err
			}
			row := Table2Row{Benchmark: name, Size: size, Measured: p}
			if sp, err := w.Profile(size); err == nil && !sp.Derived {
				row.PaperMaxMemMiB = sp.MaxMemMiB
				row.PaperBWPct = sp.AvgBWPct
				row.PaperSMPct = sp.AvgSMPct
				row.PaperPowerW = sp.AvgPowerW
				row.PaperEnergyJ = sp.EnergyJ
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderTable2 prints the paper-style utilization table.
func RenderTable2(rows []Table2Row, w io.Writer) error {
	t := report.NewTable(
		"Table II: Utilization statistics for selected workflows (measured | paper)",
		"Benchmark", "Size", "MaxMem MiB", "BW %", "SM %", "Power W", "Energy J",
		"Paper BW %", "Paper SM %", "Paper Power W", "Paper Energy J")
	for _, r := range rows {
		t.AddRowf(r.Benchmark, r.Size,
			r.Measured.MaxMemMiB, r.Measured.AvgBWUtilPct, r.Measured.AvgSMUtilPct,
			r.Measured.AvgPowerW, r.Measured.EnergyJ,
			r.PaperBWPct, r.PaperSMPct, r.PaperPowerW, r.PaperEnergyJ)
	}
	return t.Render(w)
}

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Table II — utilization statistics for selected workflows",
		Run: func(opts Options, w io.Writer) error {
			rows, err := Table2(opts)
			if err != nil {
				return err
			}
			return RenderTable2(rows, w)
		},
	})
}
