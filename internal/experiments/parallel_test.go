package experiments

import (
	"bytes"
	"testing"

	"gpushare/internal/parallel"
)

// renderAll regenerates every registered experiment with the given worker
// count into one byte stream. Each invocation gets its own fresh
// simulation cache so the runs are real (not served from another
// invocation's memo), isolating the worker count as the only variable.
func renderAll(t *testing.T, workers int, cache *parallel.Cache) []byte {
	t.Helper()
	opts := Options{Seed: 42, Quick: true, Workers: workers, Cache: cache}
	var buf bytes.Buffer
	for _, e := range All() {
		if err := e.Run(opts, &buf); err != nil {
			t.Fatalf("experiment %s at -j %d: %v", e.ID, workers, err)
		}
	}
	return buf.Bytes()
}

// TestExperimentsByteIdenticalAcrossWorkerCounts is the determinism
// contract of the parallel runner (DESIGN.md §8): every experiment
// regenerator produces byte-identical output at -j 1, -j 4 and -j 16.
func TestExperimentsByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every experiment three times")
	}
	serial := renderAll(t, 1, parallel.NewCache())
	if len(serial) == 0 {
		t.Fatal("serial render produced no output")
	}
	for _, workers := range []int{4, 16} {
		got := renderAll(t, workers, parallel.NewCache())
		if !bytes.Equal(serial, got) {
			t.Errorf("-j %d output differs from -j 1: %d vs %d bytes, first divergence at byte %d",
				workers, len(got), len(serial), firstDiff(serial, got))
		}
	}
}

// TestExperimentsWarmCacheSameBytes reruns every experiment against the
// cache the first pass populated: the rerun must be served largely from
// memory (hits strictly increase) and still produce identical bytes — a
// warm cache changes timing, never output.
func TestExperimentsWarmCacheSameBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every experiment twice")
	}
	cache := parallel.NewCache()
	cold := renderAll(t, 4, cache)
	st := cache.Stats()
	if st.Misses == 0 {
		t.Fatal("cold pass recorded no cache misses; experiments are not routed through the cache")
	}
	warm := renderAll(t, 4, cache)
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm-cache rerun differs from cold run: %d vs %d bytes, first divergence at byte %d",
			len(warm), len(cold), firstDiff(cold, warm))
	}
	st2 := cache.Stats()
	if st2.Hits <= st.Hits {
		t.Errorf("warm rerun did not hit the cache: hits %d -> %d", st.Hits, st2.Hits)
	}
	if st2.Misses != st.Misses {
		t.Errorf("warm rerun recomputed %d configurations; want all served from cache", st2.Misses-st.Misses)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
