package experiments

import (
	"bytes"
	"testing"

	"gpushare/internal/obs"
	"gpushare/internal/parallel"
)

// renderWithHub regenerates every experiment at the given worker count
// under a fresh telemetry hub and returns (experiment output, metrics
// snapshot JSON). The cache is sized above the session's unique
// configuration count so no capacity bypasses occur: under capacity,
// hit/miss counts depend only on the request multiset, which is exactly
// the property the snapshot comparison pins.
func renderWithHub(t *testing.T, workers int) ([]byte, []byte) {
	t.Helper()
	hub := obs.NewHub(nil)
	prev := obs.SetActive(hub)
	defer obs.SetActive(prev)
	out := renderAll(t, workers, parallel.NewCacheSize(1<<14))
	var snap bytes.Buffer
	if err := hub.Metrics.WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	return out, snap.Bytes()
}

// TestMetricsSnapshotByteIdenticalAcrossWorkerCounts extends the
// determinism contract (DESIGN.md §8, §10) to the telemetry layer: the
// metrics snapshot — engine event and pool counters, cache hit/miss
// totals, scheduler histograms, worker-pool task counts — is
// byte-identical at -j 1, -j 4 and -j 16, not just the experiment output.
// Every registry value is an int64 folded through commutative updates,
// so worker interleaving cannot show up here.
func TestMetricsSnapshotByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every experiment three times")
	}
	serialOut, serialSnap := renderWithHub(t, 1)
	if len(serialSnap) == 0 || bytes.Equal(serialSnap, []byte("{}")) {
		t.Fatal("serial run recorded no metrics")
	}
	for _, workers := range []int{4, 16} {
		out, snap := renderWithHub(t, workers)
		if !bytes.Equal(serialOut, out) {
			t.Errorf("-j %d experiment output differs from -j 1 (first divergence at byte %d)",
				workers, firstDiff(serialOut, out))
		}
		if !bytes.Equal(serialSnap, snap) {
			t.Errorf("-j %d metrics snapshot differs from -j 1:\n-j 1:\n%s\n-j %d:\n%s",
				workers, serialSnap, workers, snap)
		}
	}
}

// TestExperimentOutputUnchangedByTelemetry pins the no-observer-effect
// contract: running with a live hub (counters folding, engine spans
// recording) produces byte-identical experiment output to running with
// telemetry disabled. Quick single-experiment form so it runs in -short.
func TestExperimentOutputUnchangedByTelemetry(t *testing.T) {
	run := func(hub *obs.Hub) []byte {
		prev := obs.SetActive(hub)
		defer obs.SetActive(prev)
		opts := Options{Seed: 42, Quick: true, Workers: 4, Cache: parallel.NewCache()}
		var buf bytes.Buffer
		for _, id := range []string{"table2", "fig1"} {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Run(opts, &buf); err != nil {
				t.Fatalf("experiment %s: %v", id, err)
			}
		}
		return buf.Bytes()
	}
	off := run(nil)
	on := run(obs.NewHub(nil))
	if !bytes.Equal(off, on) {
		t.Errorf("enabling telemetry changed experiment output (first divergence at byte %d)",
			firstDiff(off, on))
	}
}
