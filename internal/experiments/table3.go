package experiments

import (
	"fmt"
	"io"

	"gpushare/internal/report"
	"gpushare/internal/workflow"
)

// RenderTable3 prints the paper's Table III workflow combinations — the
// input configurations of Figures 2 and 3.
func RenderTable3(w io.Writer) error {
	t := report.NewTable(
		"Table III: Workflow combinations",
		"Comb. #", "Workflow 1", "Workflow 2", "Workflow 3", "Workflow 4")
	for _, c := range workflow.Combinations() {
		cells := []string{fmt.Sprint(c.ID)}
		for _, wfl := range c.Workflows {
			desc := ""
			for i, task := range wfl.Tasks {
				if i > 0 {
					desc += "; "
				}
				desc += task.String()
			}
			cells = append(cells, desc)
		}
		t.AddRow(cells...)
	}
	return t.Render(w)
}

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Table III — workflow combinations (input configurations)",
		Run: func(opts Options, w io.Writer) error {
			return RenderTable3(w)
		},
	})
}
