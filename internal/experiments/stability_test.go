package experiments

import (
	"testing"

	"gpushare/internal/gpu"
)

// TestClaimsStableAcrossSeeds guards the reproduction against jitter
// sensitivity: the paper-facing orderings must hold for any seed, not
// just the default.
func TestClaimsStableAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 97, 31337} {
		opts := Options{Seed: seed, Quick: true}
		results, err := RunCombos(opts)
		if err != nil {
			t.Fatal(err)
		}
		var athenaGravityPair, mhdLammpsPair float64
		for _, r := range results {
			if r.MPS.Throughput < r.TimeSlice.Throughput-0.02 {
				t.Errorf("seed %d combo %d: MPS below time-slicing", seed, r.Combo.ID)
			}
			switch r.Combo.ID {
			case 9:
				athenaGravityPair = r.MPS.Throughput
			case 10:
				mhdLammpsPair = r.MPS.Throughput
			}
		}
		// Low-utilization pairs always beat high-utilization ones.
		if athenaGravityPair <= mhdLammpsPair {
			t.Errorf("seed %d: combo 9 (%.2f) not above combo 10 (%.2f)",
				seed, athenaGravityPair, mhdLammpsPair)
		}
	}
}

// TestSuiteRunsOnOtherDevices checks device generality: the calibrated
// workloads must build and run on every registered device model (the
// kernel demands re-derive from each device's occupancy limits).
func TestSuiteRunsOnOtherDevices(t *testing.T) {
	for _, model := range gpu.Models() {
		spec, err := gpu.Lookup(model)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Seed: 5, Quick: true, Device: spec}
		rows, err := Table1(opts)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		for _, r := range rows {
			if r.TheoreticalPct <= 0 || r.TheoreticalPct > 100 {
				t.Errorf("%s: %s theoretical occupancy %v", model, r.Benchmark, r.TheoreticalPct)
			}
		}
		// One end-to-end pair on each device (memory permitting:
		// Kripke 1x + Gravity 1x fit everywhere).
		p, err := RunConfig(opts, "Kripke", "1x", 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if p.Rel.Throughput <= 0 {
			t.Errorf("%s: degenerate throughput %v", model, p.Rel.Throughput)
		}
	}
}
