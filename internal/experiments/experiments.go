// Package experiments regenerates every table and figure of the paper's
// evaluation (§III and §V) on the simulated substrate. Each experiment is
// a pure function returning structured rows (consumed by tests and the
// benchmark harness) plus a renderer that prints the paper-style artifact.
//
// The per-experiment index lives in DESIGN.md §5; measured-vs-paper values
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/parallel"
	"gpushare/internal/profile"
)

// Options configures an experiment run.
type Options struct {
	// Device is the GPU model; the zero value selects the paper's A100X.
	Device gpu.DeviceSpec
	// Seed drives the deterministic jitter streams.
	Seed uint64
	// Quick trims sweeps (fewer partitions/cardinalities, smaller
	// iteration counts) for fast test runs; full runs reproduce the
	// paper's exact configurations.
	Quick bool
	// Workers bounds the worker pool for independent simulation runs
	// within a sweep (the CLIs' -j flag); <= 0 selects GOMAXPROCS.
	// Output is byte-identical at any worker count (DESIGN.md §8).
	Workers int
	// Cache memoizes simulation runs across an experiment session so
	// repeated configurations (e.g. per-figure sequential baselines) are
	// computed once. Nil selects a process-wide shared cache; a warm
	// cache changes timing, never bytes.
	Cache *parallel.Cache
}

func (o Options) device() gpu.DeviceSpec {
	if o.Device.Name == "" {
		return gpu.MustLookup("A100X")
	}
	return o.Device
}

func (o Options) simConfig() gpusim.Config {
	return gpusim.Config{Device: o.device(), Seed: o.Seed}
}

// profiler returns an offline profiler on the experiment's device.
func (o Options) profiler() *profile.Profiler {
	return &profile.Profiler{Config: o.simConfig()}
}

// defaultCache is the process-wide simulation cache experiments share when
// Options.Cache is nil. Keys are content hashes of the full run
// configuration, so sharing across experiments (and across seeds) can
// never alias distinct runs.
var defaultCache = parallel.NewCache()

// workers returns the normalized worker-pool width.
func (o Options) workers() int { return parallel.Workers(o.Workers) }

// cache returns the simulation cache for this run.
func (o Options) cache() *parallel.Cache {
	if o.Cache != nil {
		return o.Cache
	}
	return defaultCache
}

// Experiment couples an artifact ID with its runner.
type Experiment struct {
	// ID is the artifact key: "table1".."table3", "fig1".."fig5",
	// "ablations".
	ID string
	// Title describes the paper artifact.
	Title string
	// Run regenerates the artifact and renders it to w.
	Run func(opts Options, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in ID order (tables first, then figures).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for k := range registry {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, ids)
	}
	return e, nil
}
