package experiments

import (
	"fmt"
	"io"

	"gpushare/internal/gpusim"
	"gpushare/internal/metrics"
	"gpushare/internal/mig"
	"gpushare/internal/parallel"
	"gpushare/internal/report"
	"gpushare/internal/workflow"
	"gpushare/internal/workload"
)

// Extension experiments: evaluations the paper names but defers to future
// work. They follow the same harness conventions as the paper artifacts.

// MIGComparisonRow compares sharing mechanisms for one two-workflow
// combination.
type MIGComparisonRow struct {
	ComboID   int
	Partition string
	MPS       metrics.Relative
	MIG       metrics.Relative
	// MIGInfeasible marks combinations no MIG partition can host —
	// e.g. WarpX's 61 GiB footprint leaves no memory partition for a
	// second instance. MPS has no such constraint (memory is shared),
	// which is exactly the flexibility §II-B credits it with.
	MIGInfeasible bool
}

// migCombos are the Table III combinations with exactly two workflows —
// the shape MIG's one-instance-per-tenant placement targets.
func migCombos() []int { return []int{1, 3, 4, 5, 6, 7} }

// ExtMIG compares MPS co-scheduling against best-fit MIG partitioning on
// the two-workflow combinations (§II-B: "MIG offers much better isolation
// than MPS" but "is less flexible").
func ExtMIG(opts Options) ([]MIGComparisonRow, error) {
	device := opts.device()
	ids := migCombos()
	return parallel.Map(opts.workers(), len(ids), func(i int) (MIGComparisonRow, error) {
		id := ids[i]
		c, err := workflow.Combo(id)
		if err != nil {
			return MIGComparisonRow{}, err
		}
		clients, allTasks, err := comboClients(opts, c)
		if err != nil {
			return MIGComparisonRow{}, err
		}

		// The sequential and MPS runs are the exact configurations
		// RunCombo evaluates for Figures 2/3, so a warm cache serves
		// both from memory here.
		seqRes, err := opts.cache().RunSequential(opts.simConfig(), allTasks)
		if err != nil {
			return MIGComparisonRow{}, err
		}
		seq := metrics.Summarize(seqRes)

		mpsCfg := opts.simConfig()
		mpsCfg.Mode = gpusim.ShareMPS
		mpsRes, err := opts.cache().RunClients(mpsCfg, clients)
		if err != nil {
			return MIGComparisonRow{}, err
		}
		relMPS, err := metrics.Compare(seq, metrics.Summarize(mpsRes))
		if err != nil {
			return MIGComparisonRow{}, err
		}

		flows := make([]mig.Tenant, len(clients))
		for i, cl := range clients {
			flows[i] = mig.Tenant{ID: cl.ID, Tasks: cl.Tasks}
		}
		row := MIGComparisonRow{ComboID: id, MPS: relMPS}
		part, tenants, err := mig.BestFit(device, flows)
		if err != nil {
			row.MIGInfeasible = true
			row.Partition = "infeasible (memory partitions)"
			return row, nil
		}
		migRes, err := mig.Run(opts.simConfig(), part, tenants)
		if err != nil {
			return MIGComparisonRow{}, fmt.Errorf("combo %d: %w", id, err)
		}
		relMIG, err := metrics.Compare(seq, migRes.Summary())
		if err != nil {
			return MIGComparisonRow{}, fmt.Errorf("combo %d: %w", id, err)
		}
		label := ""
		for i, in := range part.Instances {
			if i > 0 {
				label += "+"
			}
			label += in.Name
		}
		row.Partition = label
		row.MIG = relMIG
		return row, nil
	})
}

// RenderExtMIG prints the comparison.
func RenderExtMIG(rows []MIGComparisonRow, w io.Writer) error {
	t := report.NewTable(
		"Extension: MPS co-scheduling vs best-fit MIG partitioning (vs sequential)",
		"Combo", "MIG partition", "MPS thpt x", "MPS eff x", "MIG thpt x", "MIG eff x")
	for _, r := range rows {
		if r.MIGInfeasible {
			t.AddRowf(r.ComboID, r.Partition,
				r.MPS.Throughput, r.MPS.EnergyEfficiency, "-", "-")
			continue
		}
		t.AddRowf(r.ComboID, r.Partition,
			r.MPS.Throughput, r.MPS.EnergyEfficiency,
			r.MIG.Throughput, r.MIG.EnergyEfficiency)
	}
	return t.Render(w)
}

// PowerCapPoint is one observation of the power-threshold study the paper
// defers ("a more comprehensive study of the energy effects of power
// capping (with varying power thresholds) is left to future work", §V-C).
type PowerCapPoint struct {
	LimitW     float64
	Throughput float64
	Efficiency float64
	CappedPct  float64
	AvgPowerW  float64
}

// ExtPowerCap sweeps the SW power-cap threshold for the MHD+LAMMPS pair
// (combination 7's core, the heaviest-power pairing).
func ExtPowerCap(opts Options) ([]PowerCapPoint, error) {
	limits := []float64{240, 260, 280, 300, 320, 340}
	if opts.Quick {
		limits = []float64{240, 300, 340}
	}
	base := opts.device()
	mhd, err := workload.MustGet("Cholla-MHD").BuildTaskSpec("4x", base)
	if err != nil {
		return nil, err
	}
	lam, err := workload.MustGet("LAMMPS").BuildTaskSpec("4x", base)
	if err != nil {
		return nil, err
	}

	return parallel.Map(opts.workers(), len(limits), func(i int) (PowerCapPoint, error) {
		limit := limits[i]
		dev := base
		dev.PowerLimitW = limit
		if err := dev.Validate(); err != nil {
			return PowerCapPoint{}, err
		}
		cfg := gpusim.Config{Device: dev, Seed: opts.Seed}
		seqRes, err := opts.cache().RunSequential(cfg, []*workload.TaskSpec{mhd, lam})
		if err != nil {
			return PowerCapPoint{}, err
		}
		mpsCfg := cfg
		mpsCfg.Mode = gpusim.ShareMPS
		mpsRes, err := opts.cache().RunClients(mpsCfg, []gpusim.Client{
			{ID: "mhd", Tasks: []*workload.TaskSpec{mhd}},
			{ID: "lam", Tasks: []*workload.TaskSpec{lam}},
		})
		if err != nil {
			return PowerCapPoint{}, err
		}
		rel, err := metrics.Compare(metrics.Summarize(seqRes), metrics.Summarize(mpsRes))
		if err != nil {
			return PowerCapPoint{}, err
		}
		return PowerCapPoint{
			LimitW:     limit,
			Throughput: rel.Throughput,
			Efficiency: rel.EnergyEfficiency,
			CappedPct:  100 * mpsRes.CappedFraction,
			AvgPowerW:  mpsRes.AvgPowerW,
		}, nil
	})
}

// RenderExtPowerCap prints the sweep.
func RenderExtPowerCap(points []PowerCapPoint, w io.Writer) error {
	t := report.NewTable(
		"Extension: MHD+LAMMPS under MPS with varying SW power-cap thresholds",
		"Limit W", "Thpt x", "Eff x", "Capped %", "Avg power W")
	for _, p := range points {
		t.AddRowf(p.LimitW, p.Throughput, p.Efficiency, p.CappedPct, p.AvgPowerW)
	}
	return t.Render(w)
}

func init() {
	register(Experiment{
		ID:    "ext-mig",
		Title: "Extension — MPS vs MIG partitioning on two-workflow combinations",
		Run: func(opts Options, w io.Writer) error {
			rows, err := ExtMIG(opts)
			if err != nil {
				return err
			}
			return RenderExtMIG(rows, w)
		},
	})
	register(Experiment{
		ID:    "ext-powercap",
		Title: "Extension — energy effects of varying power-cap thresholds",
		Run: func(opts Options, w io.Writer) error {
			points, err := ExtPowerCap(opts)
			if err != nil {
				return err
			}
			return RenderExtPowerCap(points, w)
		},
	})
}
