package experiments

import (
	"fmt"
	"io"
	"sync"

	"gpushare/internal/gpusim"
	"gpushare/internal/metrics"
	"gpushare/internal/parallel"
	"gpushare/internal/report"
	"gpushare/internal/workflow"
	"gpushare/internal/workload"
)

// ComboResult is the evaluation of one Table III combination under both
// sharing mechanisms, relative to sequential scheduling — the data behind
// Figures 2 and 3.
type ComboResult struct {
	Combo workflow.Combination
	// Sequential is the baseline summary.
	Sequential metrics.RunSummary
	// MPS and TimeSlice are the relative results for each mechanism.
	MPS       metrics.Relative
	TimeSlice metrics.Relative
	// Capping percentages (share of makespan, in percent) per mechanism.
	SeqCappedPct float64
	MPSCappedPct float64
	TSCappedPct  float64
}

// quickIterations scales a task's iteration count down in Quick mode.
func quickIterations(iter int, quick bool) int {
	if !quick {
		return iter
	}
	q := iter / 4
	if q < 1 {
		q = 1
	}
	return q
}

// comboClients expands a combination into engine clients.
func comboClients(opts Options, c workflow.Combination) ([]gpusim.Client, []*workload.TaskSpec, error) {
	var clients []gpusim.Client
	var allTasks []*workload.TaskSpec
	for _, wfl := range c.Workflows {
		scaled := workflow.Workflow{Name: wfl.Name}
		for _, t := range wfl.Tasks {
			t.Iterations = quickIterations(t.Iterations, opts.Quick)
			scaled.Tasks = append(scaled.Tasks, t)
		}
		tasks, err := scaled.BuildSpecs(opts.device())
		if err != nil {
			return nil, nil, err
		}
		clients = append(clients, gpusim.Client{ID: scaled.Name, Tasks: tasks})
		allTasks = append(allTasks, tasks...)
	}
	return clients, allTasks, nil
}

// RunCombo evaluates one combination.
func RunCombo(opts Options, c workflow.Combination) (ComboResult, error) {
	clients, allTasks, err := comboClients(opts, c)
	if err != nil {
		return ComboResult{}, err
	}

	seqCfg := opts.simConfig()
	seqRes, err := opts.cache().RunSequential(seqCfg, allTasks)
	if err != nil {
		return ComboResult{}, fmt.Errorf("combo %d sequential: %w", c.ID, err)
	}
	seq := metrics.Summarize(seqRes)

	mpsCfg := opts.simConfig()
	mpsCfg.Mode = gpusim.ShareMPS
	mpsRes, err := opts.cache().RunClients(mpsCfg, clients)
	if err != nil {
		return ComboResult{}, fmt.Errorf("combo %d mps: %w", c.ID, err)
	}
	relMPS, err := metrics.Compare(seq, metrics.Summarize(mpsRes))
	if err != nil {
		return ComboResult{}, fmt.Errorf("combo %d mps: %w", c.ID, err)
	}

	tsCfg := opts.simConfig()
	tsCfg.Mode = gpusim.ShareTimeSlice
	tsRes, err := opts.cache().RunClients(tsCfg, clients)
	if err != nil {
		return ComboResult{}, fmt.Errorf("combo %d time-slicing: %w", c.ID, err)
	}
	relTS, err := metrics.Compare(seq, metrics.Summarize(tsRes))
	if err != nil {
		return ComboResult{}, fmt.Errorf("combo %d time-slicing: %w", c.ID, err)
	}

	return ComboResult{
		Combo:        c,
		Sequential:   seq,
		MPS:          relMPS,
		TimeSlice:    relTS,
		SeqCappedPct: 100 * seq.CappedFraction,
		MPSCappedPct: 100 * mpsRes.CappedFraction,
		TSCappedPct:  100 * tsRes.CappedFraction,
	}, nil
}

var comboCache sync.Map // cacheKey -> []ComboResult

type cacheKey struct {
	device string
	seed   uint64
	quick  bool
	// cache distinguishes sessions using different simulation caches:
	// tests that install a fresh Options.Cache to force real runs must
	// not be served the memo of another session (and vice versa), while
	// default-cache callers keep sharing one memo entry.
	cache *parallel.Cache
}

// RunCombos evaluates all Table III combinations in parallel. Results are
// memoized per (device, seed, quick, cache) so Figures 2 and 3 share one
// set of runs.
func RunCombos(opts Options) ([]ComboResult, error) {
	key := cacheKey{device: opts.device().Name, seed: opts.Seed, quick: opts.Quick, cache: opts.cache()}
	if v, ok := comboCache.Load(key); ok {
		return v.([]ComboResult), nil
	}
	combos := workflow.Combinations()
	out, err := parallel.Map(opts.workers(), len(combos), func(i int) (ComboResult, error) {
		return RunCombo(opts, combos[i])
	})
	if err != nil {
		return nil, err
	}
	comboCache.Store(key, out)
	return out, nil
}

// RenderFig2 prints throughput and energy efficiency per combination for
// MPS and time-slicing (the paper's Figure 2).
func RenderFig2(results []ComboResult, w io.Writer) error {
	thpt := report.NewBarChart("Fig 2a: Throughput vs sequential (|=parity)")
	eff := report.NewBarChart("Fig 2b: Energy efficiency vs sequential (|=parity)")
	for _, r := range results {
		label := fmt.Sprintf("combo-%d", r.Combo.ID)
		thpt.Add(label+" mps", r.MPS.Throughput)
		thpt.Add(label+" ts ", r.TimeSlice.Throughput)
		eff.Add(label+" mps", r.MPS.EnergyEfficiency)
		eff.Add(label+" ts ", r.TimeSlice.EnergyEfficiency)
	}
	if err := thpt.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := eff.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	t := report.NewTable("Fig 2 data",
		"Combo", "Tasks", "Seq makespan s", "MPS thpt x", "MPS eff x",
		"TS thpt x", "TS eff x")
	for _, r := range results {
		t.AddRowf(r.Combo.ID, r.Sequential.Tasks, r.Sequential.MakespanS,
			r.MPS.Throughput, r.MPS.EnergyEfficiency,
			r.TimeSlice.Throughput, r.TimeSlice.EnergyEfficiency)
	}
	return t.Render(w)
}

// RenderFig3 prints the SW power-capping comparison (the paper's
// Figure 3): percent of execution time under active capping, per
// mechanism, with the delta over sequential.
func RenderFig3(results []ComboResult, w io.Writer) error {
	chart := report.NewBarChart("Fig 3: % of time SW power capping active (MPS)")
	for _, r := range results {
		chart.Add(fmt.Sprintf("combo-%d", r.Combo.ID), r.MPSCappedPct)
	}
	if err := chart.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	t := report.NewTable("Fig 3 data",
		"Combo", "Seq capped %", "MPS capped %", "TS capped %",
		"MPS delta pp", "TS delta pp")
	for _, r := range results {
		t.AddRowf(r.Combo.ID, r.SeqCappedPct, r.MPSCappedPct, r.TSCappedPct,
			r.MPSCappedPct-r.SeqCappedPct, r.TSCappedPct-r.SeqCappedPct)
	}
	return t.Render(w)
}

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2 — throughput and energy efficiency for combinations 1-10",
		Run: func(opts Options, w io.Writer) error {
			results, err := RunCombos(opts)
			if err != nil {
				return err
			}
			return RenderFig2(results, w)
		},
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3 — SW power capping for combinations 1-10",
		Run: func(opts Options, w io.Writer) error {
			results, err := RunCombos(opts)
			if err != nil {
				return err
			}
			return RenderFig3(results, w)
		},
	})
}
