package experiments

import (
	"fmt"
	"io"

	"gpushare/internal/gpusim"
	"gpushare/internal/parallel"
	"gpushare/internal/report"
	"gpushare/internal/workload"
)

// Fig1Point is one observation of Figure 1: task throughput at one MPS SM
// partition percentage.
type Fig1Point struct {
	Benchmark    string
	Size         string
	PartitionPct int
	// TasksPerHour is absolute throughput (one task looped solo under
	// the partition).
	TasksPerHour float64
	// RelThroughput is throughput normalized to the 100% partition.
	RelThroughput float64
}

// Fig1Series is one curve: a benchmark/size swept across partitions.
type Fig1Series struct {
	Benchmark string
	Size      string
	Points    []Fig1Point
}

// fig1Cases mirrors the paper's Figure 1 panels: (a) BerkeleyGW-Epsilon,
// (b) Kripke at three input scales, (c) WarpX at three input scales.
func fig1Cases() []struct{ bench, size string } {
	return []struct{ bench, size string }{
		{"BerkeleyGW-Epsilon", "1x"},
		{"Kripke", "1x"}, {"Kripke", "2x"}, {"Kripke", "4x"},
		{"WarpX", "1x"}, {"WarpX", "2x"}, {"WarpX", "4x"},
	}
}

// Fig1Partitions returns the swept partition percentages (10–100 in steps
// of 10, as in the paper; Quick mode uses steps of 20).
func Fig1Partitions(quick bool) []int {
	step := 10
	if quick {
		step = 20
	}
	var out []int
	for p := step; p <= 100; p += step {
		out = append(out, p)
	}
	return out
}

// Fig1 sweeps MPS SM partition size for each panel benchmark and measures
// solo task throughput. Every (benchmark, partition) point is an
// independent simulation, so the full sweep fans out on the worker pool;
// each point's configuration embeds only opts.Seed, so output bytes are
// identical at any worker count.
func Fig1(opts Options) ([]Fig1Series, error) {
	cases := fig1Cases()
	partitions := Fig1Partitions(opts.Quick)

	type job struct {
		caseIdx int
		task    *workload.TaskSpec
		pct     int
	}
	var jobs []job
	for ci, c := range cases {
		w, err := workload.Get(c.bench)
		if err != nil {
			return nil, err
		}
		task, err := w.BuildTaskSpec(c.size, opts.device())
		if err != nil {
			return nil, err
		}
		for _, pct := range partitions {
			jobs = append(jobs, job{caseIdx: ci, task: task, pct: pct})
		}
	}

	points, err := parallel.Map(opts.workers(), len(jobs), func(i int) (Fig1Point, error) {
		j := jobs[i]
		c := cases[j.caseIdx]
		cfg := opts.simConfig()
		cfg.Mode = gpusim.ShareMPS
		res, err := opts.cache().RunClients(cfg, []gpusim.Client{{
			ID:        fmt.Sprintf("fig1-%s-%s-p%d", c.bench, c.size, j.pct),
			Partition: float64(j.pct) / 100,
			Tasks:     []*workload.TaskSpec{j.task},
		}})
		if err != nil {
			return Fig1Point{}, err
		}
		return Fig1Point{
			Benchmark: c.bench, Size: c.size, PartitionPct: j.pct,
			TasksPerHour: 3600 / res.Makespan.Seconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	series := make([]Fig1Series, len(cases))
	for ci, c := range cases {
		series[ci] = Fig1Series{Benchmark: c.bench, Size: c.size}
	}
	for i, p := range points {
		ci := jobs[i].caseIdx
		series[ci].Points = append(series[ci].Points, p)
	}
	for ci := range series {
		var at100 float64
		for _, p := range series[ci].Points {
			if p.PartitionPct == 100 {
				at100 = p.TasksPerHour
			}
		}
		for i := range series[ci].Points {
			if at100 > 0 {
				series[ci].Points[i].RelThroughput = series[ci].Points[i].TasksPerHour / at100
			}
		}
	}
	return series, nil
}

// RenderFig1 prints one chart per paper panel plus the underlying table.
func RenderFig1(series []Fig1Series, w io.Writer) error {
	panels := map[string][]Fig1Series{}
	var order []string
	for _, s := range series {
		if _, ok := panels[s.Benchmark]; !ok {
			order = append(order, s.Benchmark)
		}
		panels[s.Benchmark] = append(panels[s.Benchmark], s)
	}
	for _, bench := range order {
		chart := report.NewLineChart(
			fmt.Sprintf("Fig 1: %s throughput vs MPS SM partition", bench),
			"partition %", "tasks/hour")
		for _, s := range panels[bench] {
			var pts []report.Point
			for _, p := range s.Points {
				pts = append(pts, report.Point{X: float64(p.PartitionPct), Y: p.TasksPerHour})
			}
			chart.AddSeries(report.Series{Name: s.Size, Points: pts})
		}
		if err := chart.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}

	t := report.NewTable("Fig 1 data",
		"Benchmark", "Size", "Partition %", "Tasks/hour", "Rel. to 100%")
	for _, s := range series {
		for _, p := range s.Points {
			t.AddRowf(p.Benchmark, p.Size, p.PartitionPct, p.TasksPerHour, p.RelThroughput)
		}
	}
	return t.Render(w)
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1 — throughput vs MPS SM partition percentage",
		Run: func(opts Options, w io.Writer) error {
			series, err := Fig1(opts)
			if err != nil {
				return err
			}
			return RenderFig1(series, w)
		},
	})
}
