package experiments

import (
	"fmt"
	"io"

	"gpushare/internal/gpusim"
	"gpushare/internal/report"
	"gpushare/internal/workload"
)

// Fig1Point is one observation of Figure 1: task throughput at one MPS SM
// partition percentage.
type Fig1Point struct {
	Benchmark    string
	Size         string
	PartitionPct int
	// TasksPerHour is absolute throughput (one task looped solo under
	// the partition).
	TasksPerHour float64
	// RelThroughput is throughput normalized to the 100% partition.
	RelThroughput float64
}

// Fig1Series is one curve: a benchmark/size swept across partitions.
type Fig1Series struct {
	Benchmark string
	Size      string
	Points    []Fig1Point
}

// fig1Cases mirrors the paper's Figure 1 panels: (a) BerkeleyGW-Epsilon,
// (b) Kripke at three input scales, (c) WarpX at three input scales.
func fig1Cases() []struct{ bench, size string } {
	return []struct{ bench, size string }{
		{"BerkeleyGW-Epsilon", "1x"},
		{"Kripke", "1x"}, {"Kripke", "2x"}, {"Kripke", "4x"},
		{"WarpX", "1x"}, {"WarpX", "2x"}, {"WarpX", "4x"},
	}
}

// Fig1Partitions returns the swept partition percentages (10–100 in steps
// of 10, as in the paper; Quick mode uses steps of 20).
func Fig1Partitions(quick bool) []int {
	step := 10
	if quick {
		step = 20
	}
	var out []int
	for p := step; p <= 100; p += step {
		out = append(out, p)
	}
	return out
}

// Fig1 sweeps MPS SM partition size for each panel benchmark and measures
// solo task throughput.
func Fig1(opts Options) ([]Fig1Series, error) {
	var series []Fig1Series
	for _, c := range fig1Cases() {
		w, err := workload.Get(c.bench)
		if err != nil {
			return nil, err
		}
		task, err := w.BuildTaskSpec(c.size, opts.device())
		if err != nil {
			return nil, err
		}
		s := Fig1Series{Benchmark: c.bench, Size: c.size}
		var at100 float64
		for _, pct := range Fig1Partitions(opts.Quick) {
			cfg := opts.simConfig()
			cfg.Mode = gpusim.ShareMPS
			eng, err := gpusim.New(cfg)
			if err != nil {
				return nil, err
			}
			if err := eng.AddClient(gpusim.Client{
				ID:        fmt.Sprintf("fig1-%s-%s-p%d", c.bench, c.size, pct),
				Partition: float64(pct) / 100,
				Tasks:     []*workload.TaskSpec{task},
			}); err != nil {
				return nil, err
			}
			res, err := eng.Run()
			if err != nil {
				return nil, err
			}
			tph := 3600 / res.Makespan.Seconds()
			s.Points = append(s.Points, Fig1Point{
				Benchmark: c.bench, Size: c.size, PartitionPct: pct,
				TasksPerHour: tph,
			})
			if pct == 100 {
				at100 = tph
			}
		}
		for i := range s.Points {
			if at100 > 0 {
				s.Points[i].RelThroughput = s.Points[i].TasksPerHour / at100
			}
		}
		series = append(series, s)
	}
	return series, nil
}

// RenderFig1 prints one chart per paper panel plus the underlying table.
func RenderFig1(series []Fig1Series, w io.Writer) error {
	panels := map[string][]Fig1Series{}
	var order []string
	for _, s := range series {
		if _, ok := panels[s.Benchmark]; !ok {
			order = append(order, s.Benchmark)
		}
		panels[s.Benchmark] = append(panels[s.Benchmark], s)
	}
	for _, bench := range order {
		chart := report.NewLineChart(
			fmt.Sprintf("Fig 1: %s throughput vs MPS SM partition", bench),
			"partition %", "tasks/hour")
		for _, s := range panels[bench] {
			var pts []report.Point
			for _, p := range s.Points {
				pts = append(pts, report.Point{X: float64(p.PartitionPct), Y: p.TasksPerHour})
			}
			chart.AddSeries(report.Series{Name: s.Size, Points: pts})
		}
		if err := chart.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}

	t := report.NewTable("Fig 1 data",
		"Benchmark", "Size", "Partition %", "Tasks/hour", "Rel. to 100%")
	for _, s := range series {
		for _, p := range s.Points {
			t.AddRowf(p.Benchmark, p.Size, p.PartitionPct, p.TasksPerHour, p.RelThroughput)
		}
	}
	return t.Render(w)
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1 — throughput vs MPS SM partition percentage",
		Run: func(opts Options, w io.Writer) error {
			series, err := Fig1(opts)
			if err != nil {
				return err
			}
			return RenderFig1(series, w)
		},
	})
}
