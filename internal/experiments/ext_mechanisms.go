package experiments

import (
	"io"

	"gpushare/internal/gpusim"
	"gpushare/internal/metrics"
	"gpushare/internal/parallel"
	"gpushare/internal/report"
	"gpushare/internal/workload"
)

// MechanismRow compares the three concurrency mechanisms of §II-B on one
// workload pair.
type MechanismRow struct {
	Pair      string
	TimeSlice metrics.Relative
	MPS       metrics.Relative
	Streams   metrics.Relative
}

// ExtMechanisms evaluates time-slicing vs MPS vs CUDA streams on three
// representative pairs (low+low, low+high, high+high utilization).
// Streams model kernels submitted from one cooperative process: they keep
// MPS's overlap without its per-client server overhead, but offer no SM
// partitioning and no memory protection — the taxonomy §II-B lays out.
func ExtMechanisms(opts Options) ([]MechanismRow, error) {
	dev := opts.device()
	pairs := [][2]struct{ bench, size string }{
		{{"AthenaPK", "4x"}, {"AthenaPK", "4x"}},
		{{"AthenaPK", "4x"}, {"LAMMPS", "4x"}},
		{{"Cholla-MHD", "4x"}, {"LAMMPS", "4x"}},
	}
	return parallel.Map(opts.workers(), len(pairs), func(i int) (MechanismRow, error) {
		pair := pairs[i]
		ta, err := workload.MustGet(pair[0].bench).BuildTaskSpec(pair[0].size, dev)
		if err != nil {
			return MechanismRow{}, err
		}
		tb, err := workload.MustGet(pair[1].bench).BuildTaskSpec(pair[1].size, dev)
		if err != nil {
			return MechanismRow{}, err
		}
		seqRes, err := opts.cache().RunSequential(opts.simConfig(), []*workload.TaskSpec{ta, tb})
		if err != nil {
			return MechanismRow{}, err
		}
		seq := metrics.Summarize(seqRes)

		row := MechanismRow{Pair: pair[0].bench + "/" + pair[0].size + " + " + pair[1].bench + "/" + pair[1].size}
		for _, mode := range []gpusim.ShareMode{gpusim.ShareTimeSlice, gpusim.ShareMPS, gpusim.ShareStreams} {
			cfg := opts.simConfig()
			cfg.Mode = mode
			res, err := opts.cache().RunClients(cfg, []gpusim.Client{
				{ID: "a", Tasks: []*workload.TaskSpec{ta}},
				{ID: "b", Tasks: []*workload.TaskSpec{tb}},
			})
			if err != nil {
				return MechanismRow{}, err
			}
			rel, err := metrics.Compare(seq, metrics.Summarize(res))
			if err != nil {
				return MechanismRow{}, err
			}
			switch mode {
			case gpusim.ShareTimeSlice:
				row.TimeSlice = rel
			case gpusim.ShareMPS:
				row.MPS = rel
			case gpusim.ShareStreams:
				row.Streams = rel
			}
		}
		return row, nil
	})
}

// RenderExtMechanisms prints the comparison.
func RenderExtMechanisms(rows []MechanismRow, w io.Writer) error {
	t := report.NewTable(
		"Extension: concurrency mechanisms (§II-B) — throughput/efficiency vs sequential",
		"Pair", "TS thpt", "TS eff", "MPS thpt", "MPS eff", "Streams thpt", "Streams eff")
	for _, r := range rows {
		t.AddRowf(r.Pair,
			r.TimeSlice.Throughput, r.TimeSlice.EnergyEfficiency,
			r.MPS.Throughput, r.MPS.EnergyEfficiency,
			r.Streams.Throughput, r.Streams.EnergyEfficiency)
	}
	return t.Render(w)
}

func init() {
	register(Experiment{
		ID:    "ext-mechanisms",
		Title: "Extension — time-slicing vs MPS vs CUDA streams",
		Run: func(opts Options, w io.Writer) error {
			rows, err := ExtMechanisms(opts)
			if err != nil {
				return err
			}
			return RenderExtMechanisms(rows, w)
		},
	})
}
