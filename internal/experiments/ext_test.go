package experiments

import (
	"strings"
	"testing"
)

func TestExtMIGClaims(t *testing.T) {
	rows, err := ExtMIG(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want the 6 two-workflow combos", len(rows))
	}
	byCombo := map[int]MIGComparisonRow{}
	for _, r := range rows {
		byCombo[r.ComboID] = r
	}
	// The WarpX combinations cannot be MIG-partitioned (61 GiB tenant +
	// anything exceeds the fixed memory splits) — MIG's inflexibility.
	for _, id := range []int{3, 4} {
		if !byCombo[id].MIGInfeasible {
			t.Errorf("combo %d should be MIG-infeasible", id)
		}
	}
	// Where MIG is feasible, MPS's flexible sharing wins throughput on
	// the low-utilization combination (combo 1): MIG statically splits
	// what MPS overlaps.
	r1 := byCombo[1]
	if r1.MIGInfeasible {
		t.Fatal("combo 1 should be MIG-feasible")
	}
	if r1.MPS.Throughput <= r1.MIG.Throughput {
		t.Errorf("combo 1: MPS %.2fx should beat MIG %.2fx",
			r1.MPS.Throughput, r1.MIG.Throughput)
	}
	// MIG partitions carry profile names.
	if !strings.Contains(r1.Partition, "g.") {
		t.Errorf("partition label %q", r1.Partition)
	}
}

func TestExtPowerCapClaims(t *testing.T) {
	points, err := ExtPowerCap(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Capping time decreases as the threshold rises; average power and
	// throughput never decrease.
	for i := 1; i < len(points); i++ {
		if points[i].CappedPct > points[i-1].CappedPct+0.5 {
			t.Errorf("capping rose with a higher limit: %v", points)
		}
		if points[i].Throughput < points[i-1].Throughput-0.01 {
			t.Errorf("throughput fell with a higher limit: %v", points)
		}
		if points[i].AvgPowerW < points[i-1].AvgPowerW-0.5 {
			t.Errorf("avg power fell with a higher limit: %v", points)
		}
	}
	// The lowest threshold must actually throttle this pair.
	if points[0].CappedPct < 50 {
		t.Errorf("240 W threshold capped only %.1f%%", points[0].CappedPct)
	}
	// §V-C: throttling's latency increase cancels energy-efficiency
	// benefits — efficiency stays near flat across thresholds.
	for _, p := range points {
		if p.Efficiency < 0.9 || p.Efficiency > 1.15 {
			t.Errorf("efficiency %v at %v W outside the flat band", p.Efficiency, p.LimitW)
		}
	}
}

func TestExtMechanismsClaims(t *testing.T) {
	rows, err := ExtMechanisms(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Overlap mechanisms dominate time-slicing.
		if r.MPS.Throughput < r.TimeSlice.Throughput-0.01 {
			t.Errorf("%s: MPS %.2f below TS %.2f", r.Pair, r.MPS.Throughput, r.TimeSlice.Throughput)
		}
		// Streams never lose to MPS (no server overhead) and never gain
		// implausibly over it.
		if r.Streams.Throughput < r.MPS.Throughput-0.01 {
			t.Errorf("%s: streams %.2f below MPS %.2f", r.Pair, r.Streams.Throughput, r.MPS.Throughput)
		}
		if r.Streams.Throughput > r.MPS.Throughput*1.1 {
			t.Errorf("%s: streams %.2f implausibly above MPS %.2f", r.Pair, r.Streams.Throughput, r.MPS.Throughput)
		}
	}
	// The low-utilization pair benefits most from overlap.
	if rows[0].MPS.Throughput <= rows[2].MPS.Throughput {
		t.Errorf("low-util pair %.2f should beat high-util pair %.2f",
			rows[0].MPS.Throughput, rows[2].MPS.Throughput)
	}
}

func TestExtOnlineRuns(t *testing.T) {
	var sb strings.Builder
	if err := ExtOnline(quickOpts(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dispatch log", "throughput", "mean wait"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
