package experiments

import (
	"io"

	"gpushare/internal/kernel"
	"gpushare/internal/report"
	"gpushare/internal/workload"
)

// Table1Row is one row of Table I: warp occupancy metrics per benchmark at
// 1x problem size.
type Table1Row struct {
	Benchmark string
	// AchievedPct and TheoreticalPct are the measured (simulated)
	// occupancies.
	AchievedPct    float64
	TheoreticalPct float64
	// PctOfTheoretical is achieved/theoretical × 100.
	PctOfTheoretical float64
	// PaperAchievedPct / PaperTheoreticalPct are the paper's values for
	// side-by-side comparison.
	PaperAchievedPct    float64
	PaperTheoreticalPct float64
}

// Table1 computes warp occupancy for every benchmark via the occupancy
// calculator over the calibrated launch configurations.
func Table1(opts Options) ([]Table1Row, error) {
	spec := opts.device()
	var rows []Table1Row
	for _, name := range workload.Names() {
		w, err := workload.Get(name)
		if err != nil {
			return nil, err
		}
		p, err := w.Profile("1x")
		if err != nil {
			return nil, err
		}
		agg, err := kernel.AggregateDemand(spec, p.Classes)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Benchmark:           name,
			AchievedPct:         agg.AchievedOcc * 100,
			TheoreticalPct:      agg.TheoreticalOcc * 100,
			PaperAchievedPct:    w.AchievedOccPct,
			PaperTheoreticalPct: w.TheoreticalOccPct,
		}
		if row.TheoreticalPct > 0 {
			row.PctOfTheoretical = row.AchievedPct / row.TheoreticalPct * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 prints the paper-style table with paper values alongside.
func RenderTable1(rows []Table1Row, w io.Writer) error {
	t := report.NewTable(
		"Table I: Warp occupancy metrics per benchmark (1x problem size)",
		"Benchmark", "Achieved Occ %", "Theoretical Occ %", "% of Theoretical",
		"Paper Achieved %", "Paper Theoretical %")
	for _, r := range rows {
		t.AddRowf(r.Benchmark, r.AchievedPct, r.TheoreticalPct, r.PctOfTheoretical,
			r.PaperAchievedPct, r.PaperTheoreticalPct)
	}
	return t.Render(w)
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table I — warp occupancy metrics per benchmark",
		Run: func(opts Options, w io.Writer) error {
			rows, err := Table1(opts)
			if err != nil {
				return err
			}
			return RenderTable1(rows, w)
		},
	})
}
