package experiments

import (
	"io"

	"gpushare/internal/parallel"
)

// Fig5Configs returns the scheduling configurations of Figure 5: the
// total task count is held constant (48) while the split between
// sequential tasks per workflow and concurrent workflows varies —
// "whether to treat them as single sequential workflows or split them
// into multiple parallel workflows".
func Fig5Configs(quick bool) []struct{ SeqTasks, Parallel int } {
	if quick {
		return []struct{ SeqTasks, Parallel int }{
			{12, 1}, {6, 2}, {3, 4}, {1, 12},
		}
	}
	return []struct{ SeqTasks, Parallel int }{
		{48, 1}, {24, 2}, {12, 4}, {8, 6}, {6, 8}, {4, 12}, {2, 24}, {1, 48},
	}
}

// Fig5 runs the scheduling-configuration study over the same high- and
// low-utilization workloads as Figure 4. Configurations whose concurrent
// memory footprint cannot fit the device are skipped.
func Fig5(opts Options) ([]ConfigPoint, error) {
	type job struct {
		bench, size        string
		seqTasks, parallel int
	}
	var jobs []job
	for _, b := range fig4Benches() {
		maxClients, err := maxFeasibleClients(opts, b.bench, b.size)
		if err != nil {
			return nil, err
		}
		for _, cfg := range Fig5Configs(opts.Quick) {
			if cfg.Parallel > maxClients {
				continue
			}
			jobs = append(jobs, job{b.bench, b.size, cfg.SeqTasks, cfg.Parallel})
		}
	}
	return parallel.Map(opts.workers(), len(jobs), func(i int) (ConfigPoint, error) {
		j := jobs[i]
		return RunConfig(opts, j.bench, j.size, j.seqTasks, j.parallel)
	})
}

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5 — throughput/efficiency/product vs scheduling configuration",
		Run: func(opts Options, w io.Writer) error {
			points, err := Fig5(opts)
			if err != nil {
				return err
			}
			return renderConfigPoints("Fig 5", points, w)
		},
	})
}
