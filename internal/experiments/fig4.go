package experiments

import (
	"fmt"
	"io"

	"gpushare/internal/gpusim"
	"gpushare/internal/metrics"
	"gpushare/internal/parallel"
	"gpushare/internal/report"
	"gpushare/internal/workflow"
	"gpushare/internal/workload"
)

// ConfigPoint is one N×M workflow-set observation shared by Figures 4 and
// 5: M parallel workflows of N sequential tasks of the same benchmark,
// evaluated under MPS against sequential scheduling.
type ConfigPoint struct {
	Benchmark string
	Size      string
	// SeqTasks (N) and Parallel (M); the paper labels the set "NxM".
	SeqTasks int
	Parallel int
	// Rel holds throughput/efficiency vs sequential.
	Rel metrics.Relative
	// ProductTE and ProductTTE are the product metrics plotted in the
	// paper's third panels.
	ProductTE  float64
	ProductTTE float64
	// MPSCappedPct is the share of the MPS run under power capping.
	MPSCappedPct float64
}

// Label returns the paper-style "NxM" set label.
func (p ConfigPoint) Label() string { return fmt.Sprintf("%dx%d", p.SeqTasks, p.Parallel) }

// gpuShards is the MPI decomposition width of the paper's testbed: the
// benchmarks run across 2 GPUs (Table I), so Table II's "Max Memory" is an
// aggregate and each GPU holds half of a task's footprint. The cardinality
// and configuration studies (Figures 4 and 5) observe one GPU of the pair;
// per-GPU utilization profiles are unchanged (near-ideal weak scaling, as
// Cholla/LAMMPS report), only the resident footprint splits.
const gpuShards = 2

// RunConfig evaluates one N×M set of a single benchmark task.
func RunConfig(opts Options, bench, size string, seqTasks, parallel int) (ConfigPoint, error) {
	wfs, err := workflow.Uniform(bench, size, seqTasks, parallel)
	if err != nil {
		return ConfigPoint{}, err
	}
	dev := opts.device()
	var clients []gpusim.Client
	var allTasks []*workload.TaskSpec
	for _, wfl := range wfs {
		tasks, err := wfl.BuildSpecs(dev)
		if err != nil {
			return ConfigPoint{}, err
		}
		tasks = shardTasks(tasks)
		clients = append(clients, gpusim.Client{ID: wfl.Name, Tasks: tasks})
		allTasks = append(allTasks, tasks...)
	}

	seqRes, err := opts.cache().RunSequential(opts.simConfig(), allTasks)
	if err != nil {
		return ConfigPoint{}, err
	}
	mpsCfg := opts.simConfig()
	mpsCfg.Mode = gpusim.ShareMPS
	mpsRes, err := opts.cache().RunClients(mpsCfg, clients)
	if err != nil {
		return ConfigPoint{}, err
	}
	rel, err := metrics.Compare(metrics.Summarize(seqRes), metrics.Summarize(mpsRes))
	if err != nil {
		return ConfigPoint{}, err
	}
	return ConfigPoint{
		Benchmark:    bench,
		Size:         size,
		SeqTasks:     seqTasks,
		Parallel:     parallel,
		Rel:          rel,
		ProductTE:    metrics.EqualProduct().Eval(rel),
		ProductTTE:   metrics.ThroughputBiasedProduct().Eval(rel),
		MPSCappedPct: 100 * mpsRes.CappedFraction,
	}, nil
}

// shardTasks returns per-GPU copies of the tasks with the MPI-decomposed
// footprint (memory split across gpuShards GPUs).
func shardTasks(tasks []*workload.TaskSpec) []*workload.TaskSpec {
	out := make([]*workload.TaskSpec, len(tasks))
	for i, t := range tasks {
		shard := *t
		shard.MaxMemMiB = t.MaxMemMiB / gpuShards
		out[i] = &shard
	}
	return out
}

// fig4Benches are the paper's cardinality-study workloads: "LAMMPS is the
// most resource-intensive workload we tested and AthenaPK is the least."
func fig4Benches() []struct{ bench, size string } {
	return []struct{ bench, size string }{
		{"AthenaPK", "4x"},
		{"LAMMPS", "4x"},
	}
}

// Fig4Cardinalities returns the swept parallel-workflow counts ("we varied
// the number of MPS clients ... up to the 48-client maximum").
func Fig4Cardinalities(quick bool) []int {
	if quick {
		return []int{1, 4, 16}
	}
	return []int{1, 2, 4, 8, 16, 24, 32, 48}
}

// maxFeasibleClients returns how many concurrent clients of a task fit in
// device memory — the scheduler's capacity rule applied to a uniform set.
func maxFeasibleClients(opts Options, bench, size string) (int, error) {
	w, err := workload.Get(bench)
	if err != nil {
		return 0, err
	}
	p, err := w.Profile(size)
	if err != nil {
		return 0, err
	}
	if p.MaxMemMiB <= 0 {
		return opts.device().MaxMPSClients, nil
	}
	n := int(opts.device().MemoryMiB / (p.MaxMemMiB / gpuShards))
	if n > opts.device().MaxMPSClients {
		n = opts.device().MaxMPSClients
	}
	return n, nil
}

// Fig4 runs the cardinality study: 2 sequential tasks per workflow, an
// increasing number of concurrent workflows. Cardinalities whose combined
// memory footprint cannot fit the device are skipped, as the scheduler's
// capacity rule would never produce them.
func Fig4(opts Options) ([]ConfigPoint, error) {
	type job struct {
		bench, size string
		clients     int
	}
	var jobs []job
	for _, b := range fig4Benches() {
		maxClients, err := maxFeasibleClients(opts, b.bench, b.size)
		if err != nil {
			return nil, err
		}
		for _, n := range Fig4Cardinalities(opts.Quick) {
			if n > maxClients {
				continue
			}
			jobs = append(jobs, job{bench: b.bench, size: b.size, clients: n})
		}
	}
	return parallel.Map(opts.workers(), len(jobs), func(i int) (ConfigPoint, error) {
		j := jobs[i]
		return RunConfig(opts, j.bench, j.size, 2, j.clients)
	})
}

// renderConfigPoints renders the shared Fig 4/5 panel set.
func renderConfigPoints(title string, points []ConfigPoint, w io.Writer) error {
	byBench := map[string][]ConfigPoint{}
	var order []string
	for _, p := range points {
		if _, ok := byBench[p.Benchmark]; !ok {
			order = append(order, p.Benchmark)
		}
		byBench[p.Benchmark] = append(byBench[p.Benchmark], p)
	}
	for _, bench := range order {
		chart := report.NewBarChart(fmt.Sprintf("%s — %s (|=sequential parity)", title, bench))
		for _, p := range byBench[bench] {
			chart.Add(p.Label()+" thpt", p.Rel.Throughput)
			chart.Add(p.Label()+" eff ", p.Rel.EnergyEfficiency)
			chart.Add(p.Label()+" TxE ", p.ProductTE)
		}
		if err := chart.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	t := report.NewTable(title+" data",
		"Benchmark", "Config", "Clients", "Thpt x", "Eff x", "TxE", "TxTxE", "MPS capped %")
	for _, p := range points {
		t.AddRowf(p.Benchmark, p.Label(), p.Parallel, p.Rel.Throughput,
			p.Rel.EnergyEfficiency, p.ProductTE, p.ProductTTE, p.MPSCappedPct)
	}
	return t.Render(w)
}

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4 — throughput/efficiency/product vs cardinality",
		Run: func(opts Options, w io.Writer) error {
			points, err := Fig4(opts)
			if err != nil {
				return err
			}
			return renderConfigPoints("Fig 4", points, w)
		},
	})
}
