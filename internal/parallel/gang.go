package parallel

import "sync/atomic"

// Gang is a persistent fork/join pool for latency-critical fan-outs on
// a hot path: the decision plane probes every dispatcher shard (or every
// cluster node) per arrival, and spawning goroutines per arrival would
// dominate the probe cost it is trying to hide. A Gang spawns its helper
// goroutines once, parks them on buffered wake channels, and reuses them
// for every Run — the steady-state handoff is two zero-byte channel
// operations per helper and allocates nothing.
//
// Run(n, fn) executes fn(0..n-1) exactly once each, distributing indices
// over the helpers and the calling goroutine by an atomic work-stealing
// cursor. Which worker executes which index is nondeterministic; callers
// preserve the determinism contract (DESIGN.md §7) by making fn(i) write
// only to slot i's private state and merging the slots serially after
// Run returns — the merge order, not the execution order, is what the
// output can observe.
//
// A Gang is single-owner: Run and Close must be called from one
// goroutine at a time, and fn must not call Run on the same Gang.
type Gang struct {
	// fn and n are the current round's work, written by Run before the
	// helpers are woken; the channel send/receive pair orders the writes
	// before every helper read.
	fn func(int)
	n  int32

	// next is the work-stealing cursor: each worker claims index
	// next.Add(1)-1 until it passes n.
	next atomic.Int32

	// wake has one buffered channel per helper; closing them stops the
	// helpers. done is shared: each woken helper sends exactly one token
	// when the round's indices are exhausted.
	wake []chan struct{}
	done chan struct{}

	closed bool
}

// NewGang returns a pool of the given total width: workers-1 persistent
// helper goroutines plus the caller, who participates in every Run.
// Width is clamped to at least 1; a width-1 Gang has no helpers and Run
// degenerates to a serial loop. Close releases the helpers.
func NewGang(workers int) *Gang {
	if workers < 1 {
		workers = 1
	}
	g := &Gang{done: make(chan struct{}, workers-1)}
	for w := 1; w < workers; w++ {
		ch := make(chan struct{}, 1)
		g.wake = append(g.wake, ch)
		go g.serve(ch)
	}
	return g
}

// Workers returns the pool's total width including the caller.
func (g *Gang) Workers() int { return len(g.wake) + 1 }

// serve is one helper's loop: park on the wake channel, drain indices,
// report done. The channel receive orders this helper's reads of fn and
// n after Run's writes; the done send orders them before Run's return.
func (g *Gang) serve(wake chan struct{}) {
	for range wake {
		g.work()
		g.done <- struct{}{}
	}
}

// work drains the cursor until the round's indices are exhausted.
func (g *Gang) work() {
	n := g.n
	for {
		i := g.next.Add(1) - 1
		if i >= n {
			return
		}
		//repro:allow:hotpathalloc indirect fan-out target; callers pass prebuilt scan closures pinned allocation-free by their own tests
		g.fn(int(i))
	}
}

// Run executes fn(0..n-1) once each across the pool and returns when all
// n calls have completed. fn runs concurrently with itself; see the type
// comment for the determinism discipline. Steady-state Run performs no
// allocations: pass a prebuilt fn (a stored closure or method value),
// not a literal capturing per-call state.
//
//repro:hotpath pinned by TestGangRunAllocs
func (g *Gang) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if len(g.wake) == 0 || n == 1 {
		for i := 0; i < n; i++ {
			//repro:allow:hotpathalloc indirect fan-out target; callers pass prebuilt scan closures pinned allocation-free by their own tests
			fn(i)
		}
		return
	}
	g.fn, g.n = fn, int32(n)
	g.next.Store(0)
	for _, ch := range g.wake {
		ch <- struct{}{}
	}
	g.work()
	for range g.wake {
		<-g.done
	}
	g.fn = nil
}

// Close stops the helper goroutines. The Gang must not be used after
// Close; Close is idempotent. A Gang that is never closed leaks its
// parked helpers until process exit — owners with a lifecycle (the
// online dispatcher, the cluster planner) close on teardown.
func (g *Gang) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, ch := range g.wake {
		close(ch)
	}
}
