package parallel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/kernel"
	"gpushare/internal/obs"
	"gpushare/internal/simtime"
	"gpushare/internal/workload"
)

func testTask(t *testing.T) *workload.TaskSpec {
	t.Helper()
	w, err := workload.Get("AthenaPK")
	if err != nil {
		t.Fatal(err)
	}
	task, err := w.BuildTaskSpec("4x", gpu.MustLookup("A100X"))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func testConfig() gpusim.Config {
	return gpusim.Config{Device: gpu.MustLookup("A100X"), Seed: 7}
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	task := testTask(t)
	cfg := testConfig()
	clients := []gpusim.Client{{ID: "a", Tasks: []*workload.TaskSpec{task}}}

	k1, err := Key(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same inputs hash differently: %s vs %s", k1, k2)
	}

	cfg2 := cfg
	cfg2.Seed++
	if k, _ := Key(cfg2, clients); k == k1 {
		t.Fatal("seed change must change the key")
	}
	cfg3 := cfg
	cfg3.Mode = gpusim.ShareTimeSlice
	if k, _ := Key(cfg3, clients); k == k1 {
		t.Fatal("share-mode change must change the key")
	}
	renamed := []gpusim.Client{{ID: "b", Tasks: clients[0].Tasks}}
	if k, _ := Key(cfg, renamed); k == k1 {
		t.Fatal("client ID change must change the key")
	}
}

// TestKeyStableAcrossRefactors pins the canonical hash of a hand-built
// configuration. The key covers only run *inputs* (gpusim.Config and the
// client set), so engine-internal refactors — event representation, burst
// pooling, scratch buffers — must never move it: a change here means the
// content-addressed cache silently forgot every prior result (or worse,
// that an input-relevant field was dropped from the encoding).
func TestKeyStableAcrossRefactors(t *testing.T) {
	const want = "b9183f85bc36ee0f99a0ef19f8d69fb59e479c1e19f3a7d85171da488b3d1387"
	spec := &workload.TaskSpec{
		Workload: "pinned", Size: "1x",
		SoloDuration: 10 * simtime.Second,
		Duty:         0.5,
		MaxMemMiB:    2048,
		Phases: []workload.Phase{{
			Demand:     kernel.Demand{SMFootprint: 0.5, Fill: 0.25, Compute: 0.25, Saturation: 0.25, Bandwidth: 0.1, TheoreticalOcc: 0.5, AchievedOcc: 0.25},
			ActiveWork: 5 * simtime.Millisecond,
			GapAfter:   1 * simtime.Millisecond,
			DynPowerW:  25,
		}},
		Cycles: 100,
		Agg:    kernel.Demand{Compute: 0.25, Bandwidth: 0.1},
	}
	cfg := gpusim.Config{Device: gpu.MustLookup("A100X"), Mode: gpusim.ShareMPS, Seed: 42}
	clients := []gpusim.Client{
		{ID: "a", Partition: 0.5, Tasks: []*workload.TaskSpec{spec}},
		{ID: "b", Tasks: []*workload.TaskSpec{spec}},
	}
	got, err := Key(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("canonical cache key moved:\n got  %s\n want %s\nif the input encoding changed intentionally, update the pin and note it in DESIGN.md §8", got, want)
	}
}

func TestCacheHitReturnsIdenticalResult(t *testing.T) {
	task := testTask(t)
	cfg := testConfig()
	clients := []gpusim.Client{{ID: "c", Tasks: []*workload.TaskSpec{task}}}

	c := NewCache()
	r1, err := c.RunClients(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.RunClients(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second lookup must return the cached *Result pointer")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 entry", st)
	}

	// A cached result must be byte-identical to an uncached run.
	plain, err := gpusim.RunClients(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(r1)
	b, _ := json.Marshal(plain)
	if !bytes.Equal(a, b) {
		t.Fatal("cached result differs from direct gpusim.RunClients run")
	}
}

func TestCacheSequentialMatchesHelper(t *testing.T) {
	task := testTask(t)
	cfg := testConfig()
	tasks := []*workload.TaskSpec{task, task}

	c := NewCache()
	cached, err := c.RunSequential(cfg, tasks)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := gpusim.RunSequential(cfg, tasks)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(cached)
	b, _ := json.Marshal(plain)
	if !bytes.Equal(a, b) {
		t.Fatal("Cache.RunSequential differs from gpusim.RunSequential")
	}

	// The equivalent RunClients shape must hit the same entry.
	if _, err := c.RunClients(cfg, []gpusim.Client{{ID: "sequential", Tasks: tasks}}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want the client-shape lookup to hit the sequential entry", st)
	}
}

func TestCacheSoloMatchesHelper(t *testing.T) {
	task := testTask(t)
	cfg := testConfig()

	c := NewCache()
	cached, err := c.RunSolo(cfg, task)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := gpusim.RunSolo(cfg, task)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(cached)
	b, _ := json.Marshal(plain)
	if !bytes.Equal(a, b) {
		t.Fatal("Cache.RunSolo differs from gpusim.RunSolo")
	}
}

func TestNilCacheRunsUncached(t *testing.T) {
	task := testTask(t)
	cfg := testConfig()
	var c *Cache
	res, err := c.RunClients(cfg, []gpusim.Client{{ID: "n", Tasks: []*workload.TaskSpec{task}}})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil cache must still run the simulation")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

// TestCacheSingleflight hammers one key from many goroutines and asserts
// exactly one computation happened (one miss, the rest hits, all sharing
// one pointer).
func TestCacheSingleflight(t *testing.T) {
	task := testTask(t)
	cfg := testConfig()
	clients := []gpusim.Client{{ID: "sf", Tasks: []*workload.TaskSpec{task}}}

	c := NewCache()
	const callers = 16
	results := make([]*gpusim.Result, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			r, err := c.RunClients(cfg, clients)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers received different result pointers")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits on one entry", st, callers-1)
	}
}

// TestCacheFullBypasses fills a 1-entry cache and asserts the second key
// is computed uncached (a bypass) with correct output, while the first
// key still hits.
func TestCacheFullBypasses(t *testing.T) {
	task := testTask(t)
	cfg := testConfig()
	c1 := []gpusim.Client{{ID: "one", Tasks: []*workload.TaskSpec{task}}}
	c2 := []gpusim.Client{{ID: "two", Tasks: []*workload.TaskSpec{task}}}

	c := NewCacheSize(1)
	if _, err := c.RunClients(cfg, c1); err != nil {
		t.Fatal(err)
	}
	bypassed, err := c.RunClients(cfg, c2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := gpusim.RunClients(cfg, c2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(bypassed)
	b, _ := json.Marshal(plain)
	if !bytes.Equal(a, b) {
		t.Fatal("bypassed run differs from direct run")
	}
	if _, err := c.RunClients(cfg, c1); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Bypasses != 1 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 bypass, 1 entry", st)
	}
}

func TestCacheReset(t *testing.T) {
	task := testTask(t)
	cfg := testConfig()
	clients := []gpusim.Client{{ID: "r", Tasks: []*workload.TaskSpec{task}}}

	c := NewCache()
	if _, err := c.RunClients(cfg, clients); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries after Reset = %d, want 0", st.Entries)
	}
	if _, err := c.RunClients(cfg, clients); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("misses after Reset+rerun = %d, want 2", st.Misses)
	}
}

// TestCacheErrorMemoized: an erroring configuration is memoized too — the
// error is deterministic, so recomputing it would only waste work.
func TestCacheErrorMemoized(t *testing.T) {
	cfg := testConfig()
	c := NewCache()
	_, err1 := c.RunClients(cfg, nil)
	if err1 == nil {
		t.Fatal("empty client set should error")
	}
	_, err2 := c.RunClients(cfg, nil)
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("memoized error mismatch: %v vs %v", err1, err2)
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want the error entry to be memoized", st)
	}
}

// TestCacheWarmRunStats pins the accessor semantics the CLIs and the obs
// snapshot rely on: a cold pass over N distinct configurations records N
// misses; a warm second pass over the same configurations records hits
// equal to the first pass's misses and computes nothing new. Serial use
// never blocks on an in-flight computation, so InflightDedups stays 0.
func TestCacheWarmRunStats(t *testing.T) {
	task := testTask(t)
	cfg := testConfig()
	c := NewCache()
	const n = 5
	pass := func() {
		for i := 0; i < n; i++ {
			clients := []gpusim.Client{{ID: fmt.Sprintf("w%d", i), Tasks: []*workload.TaskSpec{task}}}
			if _, err := c.RunClients(cfg, clients); err != nil {
				t.Fatal(err)
			}
		}
	}
	pass()
	if c.Misses() != n || c.Hits() != 0 {
		t.Fatalf("cold pass: hits=%d misses=%d, want 0/%d", c.Hits(), c.Misses(), n)
	}
	cold := c.Misses()
	pass()
	if c.Hits() != cold {
		t.Fatalf("warm pass hits = %d, want the cold pass's %d misses", c.Hits(), cold)
	}
	if c.Misses() != cold {
		t.Fatalf("warm pass recomputed: misses %d -> %d", cold, c.Misses())
	}
	if c.InflightDedups() != 0 {
		t.Fatalf("serial use recorded %d inflight dedups, want 0", c.InflightDedups())
	}
}

// TestCacheMirrorsObsCounters checks the hit/miss/bypass totals mirrored
// into the active telemetry hub match the cache's own counters (the
// timing-dependent inflight split is deliberately not mirrored).
func TestCacheMirrorsObsCounters(t *testing.T) {
	hub := obs.NewHub(nil)
	prev := obs.SetActive(hub)
	defer obs.SetActive(prev)
	task := testTask(t)
	cfg := testConfig()
	c := NewCacheSize(1)
	mk := func(id string) []gpusim.Client {
		return []gpusim.Client{{ID: id, Tasks: []*workload.TaskSpec{task}}}
	}
	for _, id := range []string{"a", "a", "b", "a"} { // miss, hit, bypass, hit
		if _, err := c.RunClients(cfg, mk(id)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Bypasses != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 2 hits, 1 bypass", st)
	}
	for name, want := range map[string]int64{
		"simcache_misses_total":   st.Misses,
		"simcache_hits_total":     st.Hits,
		"simcache_bypasses_total": st.Bypasses,
	} {
		if got := hub.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
