package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestGangRunCoversAllIndices pins the contract: every index in 0..n-1
// is executed exactly once, at any pool width, across reused rounds.
func TestGangRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, runtime.NumCPU()} {
		g := NewGang(workers)
		for round := 0; round < 5; round++ {
			for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
				counts := make([]int32, n)
				g.Run(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
					}
				}
			}
		}
		g.Close()
	}
}

// TestGangWidth pins the clamp: width includes the caller and is at
// least 1.
func TestGangWidth(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{-3, 1}, {0, 1}, {1, 1}, {4, 4}} {
		g := NewGang(tc.in)
		if got := g.Workers(); got != tc.want {
			t.Errorf("NewGang(%d).Workers() = %d, want %d", tc.in, got, tc.want)
		}
		g.Close()
	}
}

// TestGangCloseIdempotent pins that Close can be called twice without
// panicking on the already-closed wake channels.
func TestGangCloseIdempotent(t *testing.T) {
	g := NewGang(4)
	g.Run(8, func(int) {})
	g.Close()
	g.Close()
}

// TestGangSlotWrites exercises the intended usage under the race
// detector: fn(i) writes only slot i, the caller merges serially after
// Run. Run's channel pairs must order the helper writes before the
// merge reads.
func TestGangSlotWrites(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	slots := make([]int, 256)
	for round := 1; round <= 3; round++ {
		r := round
		g.Run(len(slots), func(i int) { slots[i] = i * r })
		sum := 0
		for _, v := range slots {
			sum += v
		}
		want := r * (len(slots) - 1) * len(slots) / 2
		if sum != want {
			t.Fatalf("round %d: merged sum %d, want %d", round, sum, want)
		}
	}
}

// TestGangRunAllocs pins the steady-state handoff at zero allocations
// per Run: the helpers are persistent and the wake/done tokens are
// zero-byte channel operations. The fn is prebuilt, as the hot paths
// do — a capturing literal built per call would be the caller's
// allocation, not the Gang's.
func TestGangRunAllocs(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	slots := make([]int64, 64)
	fn := func(i int) { slots[i]++ }
	g.Run(len(slots), fn) // warm the cursor and helpers
	allocs := testing.AllocsPerRun(200, func() { g.Run(len(slots), fn) })
	if allocs != 0 {
		t.Fatalf("Gang.Run allocated %.1f times per run, want 0", allocs)
	}
}
