package parallel

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"gpushare/internal/gpusim"
	"gpushare/internal/obs"
	"gpushare/internal/workload"
)

// DefaultMaxEntries bounds a cache's resident result count. Simulation
// results retain their full device trace, so an unbounded cache inside a
// long benchmark loop would grow without limit; once full, further
// configurations are computed uncached (a bypass), which affects timing
// only — never output bytes, since recomputation is deterministic.
const DefaultMaxEntries = 512

// Cache is a content-addressed memoization cache for simulation runs,
// keyed by a canonical hash of the full run configuration (gpusim.Config
// including device, sharing mode, contention parameters and seed, plus
// the complete client set). Identical configurations — e.g. the
// sequential baseline a figure re-simulates per panel — are computed once
// and shared.
//
// A Cache is safe for concurrent use. Concurrent requests for the same
// key are deduplicated: one caller computes, the rest block and share the
// result. Returned results are shared between callers and MUST be treated
// as read-only; every existing consumer (metrics, nvml, report) only
// reads them.
//
// The key is conservative: configurations that normalize to the same
// effective run (zero contention fields vs explicit defaults, partition 0
// vs 1) hash differently and are computed separately. That costs duplicate
// work, never a wrong hit.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	max     int

	hits     atomic.Int64
	misses   atomic.Int64
	bypasses atomic.Int64
	inflight atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	done atomic.Bool
	res  *gpusim.Result
	err  error
}

// NewCache returns an empty cache bounded at DefaultMaxEntries results.
func NewCache() *Cache { return NewCacheSize(DefaultMaxEntries) }

// NewCacheSize returns an empty cache holding at most maxEntries
// results; maxEntries <= 0 selects DefaultMaxEntries.
func NewCacheSize(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{entries: make(map[string]*cacheEntry), max: maxEntries}
}

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	// Hits counts lookups served from an existing entry (including
	// lookups that blocked on an in-flight computation of the same key).
	Hits int64
	// Misses counts lookups that inserted and computed a new entry.
	Misses int64
	// Bypasses counts lookups computed uncached because the cache was
	// full.
	Bypasses int64
	// InflightDedups counts the subset of Hits that arrived while the
	// entry's computation was still in flight and blocked on it
	// (singleflight deduplication). Unlike Hits/Misses — which depend
	// only on the request multiset while the cache stays under capacity
	// — this split is timing-dependent (at one worker it is always
	// zero), so it is surfaced here but deliberately kept out of the
	// deterministic obs metrics snapshot.
	InflightDedups int64
	// Entries is the current resident result count.
	Entries int
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Bypasses:       c.bypasses.Load(),
		InflightDedups: c.inflight.Load(),
		Entries:        n,
	}
}

// Hits returns the lookups served from an existing entry.
func (c *Cache) Hits() int64 { return c.Stats().Hits }

// Misses returns the lookups that computed and inserted a new entry.
func (c *Cache) Misses() int64 { return c.Stats().Misses }

// InflightDedups returns the hits that blocked on an in-flight
// computation of the same key.
func (c *Cache) InflightDedups() int64 { return c.Stats().InflightDedups }

// Reset drops every cached result, keeping the counters.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = make(map[string]*cacheEntry)
	c.mu.Unlock()
}

// Key returns the canonical content hash of one run configuration. The
// encoding is deterministic: JSON over plain exported-field structs
// (encoding/json writes struct fields in declaration order), hashed with
// SHA-256. Everything that can change a run's outcome is covered — the
// device spec, sharing mode, contention parameters, seed, OOM policy,
// power-cap switch, and each client's ID, partition, arrival and full
// task content (phases, demands, cycles, memory footprint).
func Key(cfg gpusim.Config, clients []gpusim.Client) (string, error) {
	payload := struct {
		Config  gpusim.Config
		Clients []gpusim.Client
	}{cfg, clients}
	data, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("parallel: canonical cache key: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// RunClients is a memoized gpusim.RunClients: the first request for a
// configuration computes it, subsequent requests share the result. A nil
// *Cache is valid and simply runs uncached.
func (c *Cache) RunClients(cfg gpusim.Config, clients []gpusim.Client) (*gpusim.Result, error) {
	if c == nil {
		return gpusim.RunClients(cfg, clients)
	}
	key, err := Key(cfg, clients)
	if err != nil {
		return nil, err
	}
	// Hit/miss/bypass counts are mirrored into the active obs registry:
	// they depend only on the request multiset (an entry is inserted
	// under the lock before its computation starts, so every later
	// request for the key is a hit no matter how execution interleaves),
	// which keeps the metrics snapshot identical at any -j. The
	// inflight-dedup split is timing-dependent and stays out (see
	// CacheStats).
	hub := obs.Active()
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= c.max {
			c.mu.Unlock()
			c.bypasses.Add(1)
			hub.Counter("simcache_bypasses_total").Inc()
			sp := hub.StartWall("cache", "simulate")
			res, err := gpusim.RunClients(cfg, clients)
			sp.EndDetail("bypass")
			return res, err
		}
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses.Add(1)
		hub.Counter("simcache_misses_total").Inc()
	} else {
		c.hits.Add(1)
		hub.Counter("simcache_hits_total").Inc()
		if !e.done.Load() {
			c.inflight.Add(1)
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		sp := hub.StartWall("cache", "simulate")
		e.res, e.err = gpusim.RunClients(cfg, clients)
		e.done.Store(true)
		sp.EndDetail(key[:8])
	})
	return e.res, e.err
}

// RunSequential is a memoized gpusim.RunSequential (all tasks
// back-to-back under a single client). The client shape matches
// gpusim.RunSequential exactly, so a cached sequential baseline is
// byte-identical to an uncached one.
func (c *Cache) RunSequential(cfg gpusim.Config, tasks []*workload.TaskSpec) (*gpusim.Result, error) {
	if len(tasks) == 0 {
		return gpusim.RunSequential(cfg, tasks) // surface its validation error
	}
	return c.RunClients(cfg, []gpusim.Client{{ID: "sequential", Tasks: tasks}})
}

// RunSolo is a memoized gpusim.RunSolo (one task alone — the offline
// profiling configuration).
func (c *Cache) RunSolo(cfg gpusim.Config, task *workload.TaskSpec) (*gpusim.Result, error) {
	if task == nil {
		return gpusim.RunSolo(cfg, task) // surface its validation error
	}
	return c.RunClients(cfg, []gpusim.Client{{
		ID:    fmt.Sprintf("solo-%s-%s", task.Workload, task.Size),
		Tasks: []*workload.TaskSpec{task},
	}})
}
