// Package parallel is the bounded worker-pool execution layer for
// independent simulation runs.
//
// Every paper artifact is a fan-out of fully independent gpusim runs
// (partition sweeps, combination studies, cardinality sweeps), and the
// scheduler's sequential baseline is a fan-out of per-workflow solo runs.
// This package runs such fan-outs on a bounded number of workers while
// preserving the determinism contract (DESIGN.md §7): results are
// collected in submission order, per-run seeds derive only from the base
// seed and the run index (never from worker identity or scheduling
// order), so output is byte-identical to serial execution at any worker
// count.
//
// The package deliberately imports neither time nor math/rand: it is a
// simulator package under the nodeterminism analyzer.
package parallel

import (
	"runtime"
	"sync"

	"gpushare/internal/obs"
)

// DefaultWorkers returns the default worker-pool width: GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers normalizes a caller-supplied worker count: values <= 0 select
// DefaultWorkers.
func Workers(n int) int {
	if n <= 0 {
		return DefaultWorkers()
	}
	return n
}

// SplitSeed derives the seed of run index run from base by one SplitMix64
// mixing step — the same stream-splitting scheme xrand.Source.Fork uses
// for per-client jitter streams. Derived seeds depend only on (base, run),
// never on which worker executes the run or in what order runs complete,
// so a parallel sweep seeds its runs exactly as the serial sweep does.
func SplitSeed(base uint64, run int) uint64 {
	z := base + 0x9e3779b97f4a7c15*(uint64(run)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Map runs fn(0..n-1) on at most workers goroutines (workers <= 0 selects
// DefaultWorkers) and returns the results in index order.
//
// Error semantics match serial execution deterministically: if any fn
// returns an error, Map returns the error of the lowest failing index —
// the error a serial loop would have stopped on — regardless of worker
// count or completion order. All n calls are attempted (no early
// cancellation), so fn must be safe to run after a lower index has
// failed; simulation runs are pure, so this only costs wasted work on
// error paths.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	// Telemetry: task completions are counted per run index — never per
	// worker identity — so the aggregated totals are identical at any
	// worker count; the serial path below increments the same counters.
	// Wall-time spans (one per task, on the shared "workers" track) feed
	// the Chrome timeline only, never the metrics snapshot.
	hub := obs.Active()
	tasksTotal := hub.Counter("parallel_tasks_total")
	errsTotal := hub.Counter("parallel_task_errors_total")
	hub.Counter("parallel_map_calls_total").Inc()
	runTask := func(i int) (T, error) {
		sp := hub.StartWall("workers", "task")
		v, err := fn(i)
		sp.End()
		tasksTotal.Inc()
		if err != nil {
			errsTotal.Inc()
		}
		return v, err
	}

	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := runTask(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = runTask(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach is Map without results: it runs fn(0..n-1) on at most workers
// goroutines and returns the lowest-index error, if any.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
