package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != DefaultWorkers() {
		t.Fatalf("Workers(0) = %d, want DefaultWorkers() = %d", got, DefaultWorkers())
	}
	if got := Workers(-3); got != DefaultWorkers() {
		t.Fatalf("Workers(-3) = %d, want DefaultWorkers() = %d", got, DefaultWorkers())
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
}

func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	const base = 42
	seen := map[uint64]int{}
	for run := 0; run < 1000; run++ {
		s := SplitSeed(base, run)
		if again := SplitSeed(base, run); again != s {
			t.Fatalf("SplitSeed(%d, %d) not deterministic: %d vs %d", base, run, s, again)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("SplitSeed(%d, %d) collides with run %d: %d", base, run, prev, s)
		}
		seen[s] = run
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("SplitSeed must depend on the base seed")
	}
}

// TestSplitSeedMatchesXrandFork pins the derivation to the xrand.Source.Fork
// mixing constants so the two stream-splitting schemes cannot silently
// diverge.
func TestSplitSeedMatchesXrandFork(t *testing.T) {
	mix := func(base, label uint64) uint64 {
		z := base + 0x9e3779b97f4a7c15*(label+1)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for run := 0; run < 16; run++ {
		if got, want := SplitSeed(99, run), mix(99, uint64(run)); got != want {
			t.Fatalf("SplitSeed(99, %d) = %d, want SplitMix64 step %d", run, got, want)
		}
	}
}

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(4, 0) = %v, %v; want nil, nil", got, err)
	}
}

// TestMapLowestIndexError asserts the serial-equivalent error contract:
// whichever worker finishes first, the reported error is the one a serial
// loop would have stopped on.
func TestMapLowestIndexError(t *testing.T) {
	err3 := errors.New("fail at 3")
	err7 := errors.New("fail at 7")
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(workers, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, err3
			case 7:
				return 0, err7
			}
			return i, nil
		})
		if !errors.Is(err, err3) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, err3)
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(workers, 64, func(i int) (int, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer cur.Add(-1)
		// Busy-wait-free touch: just return; concurrency peak is still
		// observable because the dispatch channel is unbuffered.
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, worker bound is %d", p, workers)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	want := errors.New("boom")
	err := ForEach(4, 8, func(i int) error {
		if i == 2 {
			return fmt.Errorf("wrapped: %w", want)
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("ForEach err = %v, want %v", err, want)
	}
	if err := ForEach(4, 8, func(int) error { return nil }); err != nil {
		t.Fatalf("ForEach clean run: %v", err)
	}
}
