// Package trace exports simulation results as Chrome trace-event JSON
// (the about://tracing / Perfetto format), the reproduction's analog of an
// Nsight Systems timeline: per-client task spans plus device-level
// counters for power, utilization and clock state, optionally joined by
// the telemetry spans internal/obs records (engine bursts, scheduler
// decisions, cache lookups, worker-pool tasks) in one timeline.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gpushare/internal/gpusim"
	"gpushare/internal/obs"
)

// chromeEvent is one trace-event record. Only the fields the format
// requires are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Process-ID layout of a combined timeline. Each exported result claims
// two consecutive pids (device counters, client spans); the telemetry
// processes sit below them.
const (
	// PidObsSim and PidObsWall are the conventional processes for
	// sim-time and wall-time telemetry spans.
	PidObsSim  = 2
	PidObsWall = 3
	// PidResultBase is the first pid for per-group results in a combined
	// timeline; group i uses PidResultBase + 2*i.
	PidResultBase = 10
)

// Writer streams trace events as one JSON array. Every write error is
// latched: the first error is remembered, later events are skipped (so a
// partially written event is never followed by more data), and Close
// still attempts the closing bracket so a sink that recovers — or a
// truncated file a human opens — holds parseable JSON. All methods
// return the latched error.
type Writer struct {
	w       io.Writer
	err     error
	started bool
	closed  bool
}

// NewWriter returns a streaming trace writer over w. Call Close to
// terminate the JSON array.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write or encoding error, if any.
func (tw *Writer) Err() error { return tw.err }

// event appends one record. The array-open bracket (or the separating
// comma) and the event are written in a single Write call, so an
// all-or-nothing sink failure never leaves a dangling separator.
func (tw *Writer) event(e chromeEvent) {
	if tw.err != nil || tw.closed {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		tw.err = fmt.Errorf("trace: encode event %q: %w", e.Name, err)
		return
	}
	prefix := ",\n"
	if !tw.started {
		prefix = "[\n"
	}
	if _, err := tw.w.Write(append([]byte(prefix), data...)); err != nil {
		tw.err = fmt.Errorf("trace: write event %q: %w", e.Name, err)
		return
	}
	tw.started = true
}

// Close terminates the JSON array and returns the first error seen. It
// always attempts the closing bracket, even after an earlier write
// error, so the sink ends with well-formed JSON whenever it accepts the
// final write. Close is idempotent.
func (tw *Writer) Close() error {
	if tw.closed {
		return tw.err
	}
	tw.closed = true
	closing := "\n]\n"
	if !tw.started {
		closing = "[]\n"
	}
	if _, err := tw.w.Write([]byte(closing)); err != nil && tw.err == nil {
		tw.err = fmt.Errorf("trace: write closing bracket: %w", err)
	}
	return tw.err
}

// Result exports one simulation result: task executions become duration
// ('X') events on one thread per client under pid pidBase+1; device
// power, compute/bandwidth utilization, clock factor, resident-kernel
// count and memory become counter ('C') series under pid pidBase. label
// names the result's processes (e.g. "gpu0-wave1"); empty selects the
// sharing mode alone.
func (tw *Writer) Result(res *gpusim.Result, pidBase int, label string) error {
	if tw.err != nil {
		return tw.err
	}
	if res == nil {
		tw.err = fmt.Errorf("trace: nil result")
		return tw.err
	}
	pidDevice, pidClients := pidBase, pidBase+1
	name := "GPU (" + res.Mode.String() + ")"
	clientsName := "clients"
	if label != "" {
		name = label + " " + name
		clientsName = label + " clients"
	}
	tw.event(chromeEvent{
		Name: "process_name", Ph: "M", Pid: pidDevice,
		Args: map[string]any{"name": name},
	})
	tw.event(chromeEvent{
		Name: "process_name", Ph: "M", Pid: pidClients,
		Args: map[string]any{"name": clientsName},
	})

	// Thread metadata + task spans, clients in deterministic order.
	ids := make([]string, 0, len(res.Clients))
	for id := range res.Clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for tid, id := range ids {
		tw.event(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pidClients, Tid: tid,
			Args: map[string]any{"name": id},
		})
		cr := res.Clients[id]
		for _, task := range cr.Tasks {
			name := task.Workload + "/" + task.Size
			if task.OOM {
				name += " (OOM)"
			}
			dur := task.Duration().Seconds() * 1e6
			if dur <= 0 {
				dur = 1 // zero-length markers still render
			}
			tw.event(chromeEvent{
				Name: name, Ph: "X",
				Ts:  task.Start.Seconds() * 1e6,
				Dur: dur,
				Pid: pidClients, Tid: tid,
				Args: map[string]any{"oom": task.OOM},
			})
		}
	}

	// Device counters from the piecewise-constant trace.
	for _, tp := range res.Trace {
		ts := tp.At.Seconds() * 1e6
		tw.event(chromeEvent{Name: "power_w", Ph: "C", Ts: ts, Pid: pidDevice,
			Args: map[string]any{"watts": tp.PowerW}})
		tw.event(chromeEvent{Name: "compute_util", Ph: "C", Ts: ts, Pid: pidDevice,
			Args: map[string]any{"fraction": tp.ComputeUtil}})
		tw.event(chromeEvent{Name: "membw_util", Ph: "C", Ts: ts, Pid: pidDevice,
			Args: map[string]any{"fraction": tp.BWUtil}})
		tw.event(chromeEvent{Name: "clock_factor", Ph: "C", Ts: ts, Pid: pidDevice,
			Args: map[string]any{"factor": tp.ClockFactor}})
		tw.event(chromeEvent{Name: "resident_kernels", Ph: "C", Ts: ts, Pid: pidDevice,
			Args: map[string]any{"count": tp.ActiveKernels}})
		tw.event(chromeEvent{Name: "mem_used_mib", Ph: "C", Ts: ts, Pid: pidDevice,
			Args: map[string]any{"mib": tp.MemUsedMiB}})
	}
	return tw.err
}

// Spans exports telemetry spans recorded by internal/obs: sim-time spans
// (engine bursts, in simulated time) under pidSim, wall-time spans
// (scheduler phases, cache computes, worker-pool tasks) under pidWall.
// Each distinct track becomes one thread. Wall timestamps are normalized
// to the earliest wall span so both processes start near zero; sim
// instants are exported as-is, keeping them aligned with Result
// timelines (both simulated time).
func (tw *Writer) Spans(spans []obs.SpanData, pidSim, pidWall int) error {
	if tw.err != nil || len(spans) == 0 {
		return tw.err
	}
	tw.event(chromeEvent{
		Name: "process_name", Ph: "M", Pid: pidSim,
		Args: map[string]any{"name": "telemetry (sim time)"},
	})
	tw.event(chromeEvent{
		Name: "process_name", Ph: "M", Pid: pidWall,
		Args: map[string]any{"name": "telemetry (wall time)"},
	})

	// Stable track→tid assignment per mode: tracks in sorted order.
	tids := map[obs.TimeMode]map[string]int{
		obs.SimTime:  make(map[string]int),
		obs.WallTime: make(map[string]int),
	}
	var wallBase int64
	wallSeen := false
	for _, sd := range spans {
		if _, ok := tids[sd.Mode][sd.Track]; !ok {
			tids[sd.Mode][sd.Track] = 0
		}
		if sd.Mode == obs.WallTime && (!wallSeen || sd.Start < wallBase) {
			wallBase, wallSeen = sd.Start, true
		}
	}
	for mode, tracks := range tids {
		names := make([]string, 0, len(tracks))
		for t := range tracks {
			names = append(names, t)
		}
		sort.Strings(names)
		pid := pidSim
		if mode == obs.WallTime {
			pid = pidWall
		}
		for tid, t := range names {
			tracks[t] = tid
			tw.event(chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": t},
			})
		}
	}

	for _, sd := range spans {
		pid, start := pidSim, sd.Start
		end := sd.End
		if sd.Mode == obs.WallTime {
			pid = pidWall
			start -= wallBase
			end -= wallBase
		}
		dur := float64(end-start) / 1e3
		if dur <= 0 {
			dur = 1
		}
		var args map[string]any
		if sd.Detail != "" {
			args = map[string]any{"detail": sd.Detail}
		}
		tw.event(chromeEvent{
			Name: sd.Name, Ph: "X",
			Ts:  float64(start) / 1e3,
			Dur: dur,
			Pid: pid, Tid: tids[sd.Mode][sd.Track],
			Args: args,
		})
	}
	return tw.err
}

// WriteChrome serializes one result as a complete Chrome trace — the
// single-result convenience over Writer.
func WriteChrome(w io.Writer, res *gpusim.Result) error {
	tw := NewWriter(w)
	if err := tw.Result(res, 0, ""); err != nil {
		tw.Close() // still terminate the array for a parseable sink
		return err
	}
	return tw.Close()
}
