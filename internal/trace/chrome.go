// Package trace exports simulation results as Chrome trace-event JSON
// (the about://tracing / Perfetto format), the reproduction's analog of an
// Nsight Systems timeline: per-client task spans plus device-level
// counters for power, utilization and clock state.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gpushare/internal/gpusim"
)

// chromeEvent is one trace-event record. Only the fields the format
// requires are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Device-counter and client-span process IDs.
const (
	pidDevice  = 0
	pidClients = 1
)

// WriteChrome serializes the result as a Chrome trace. Task executions
// become duration ('X') events on one thread per client; device power,
// compute/bandwidth utilization, clock factor and resident-kernel count
// become counter ('C') series.
func WriteChrome(w io.Writer, res *gpusim.Result) error {
	if res == nil {
		return fmt.Errorf("trace: nil result")
	}
	var events []chromeEvent

	// Thread metadata + task spans, clients in deterministic order.
	ids := make([]string, 0, len(res.Clients))
	for id := range res.Clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for tid, id := range ids {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pidClients, Tid: tid,
			Args: map[string]any{"name": id},
		})
		cr := res.Clients[id]
		for _, task := range cr.Tasks {
			name := task.Workload + "/" + task.Size
			if task.OOM {
				name += " (OOM)"
			}
			dur := task.Duration().Seconds() * 1e6
			if dur <= 0 {
				dur = 1 // zero-length markers still render
			}
			events = append(events, chromeEvent{
				Name: name, Ph: "X",
				Ts:  task.Start.Seconds() * 1e6,
				Dur: dur,
				Pid: pidClients, Tid: tid,
				Args: map[string]any{"oom": task.OOM},
			})
		}
	}

	// Device counters from the piecewise-constant trace.
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pidDevice,
		Args: map[string]any{"name": "GPU (" + res.Mode.String() + ")"},
	})
	for _, tp := range res.Trace {
		ts := tp.At.Seconds() * 1e6
		events = append(events,
			chromeEvent{Name: "power_w", Ph: "C", Ts: ts, Pid: pidDevice,
				Args: map[string]any{"watts": tp.PowerW}},
			chromeEvent{Name: "compute_util", Ph: "C", Ts: ts, Pid: pidDevice,
				Args: map[string]any{"fraction": tp.ComputeUtil}},
			chromeEvent{Name: "membw_util", Ph: "C", Ts: ts, Pid: pidDevice,
				Args: map[string]any{"fraction": tp.BWUtil}},
			chromeEvent{Name: "clock_factor", Ph: "C", Ts: ts, Pid: pidDevice,
				Args: map[string]any{"factor": tp.ClockFactor}},
			chromeEvent{Name: "resident_kernels", Ph: "C", Ts: ts, Pid: pidDevice,
				Args: map[string]any{"count": tp.ActiveKernels}},
			chromeEvent{Name: "mem_used_mib", Ph: "C", Ts: ts, Pid: pidDevice,
				Args: map[string]any{"mib": tp.MemUsedMiB}},
		)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
