package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/workload"
)

func TestWriteChrome(t *testing.T) {
	dev := gpu.MustLookup("A100X")
	k, err := workload.MustGet("Kripke").BuildTaskSpec("1x", dev)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.MustGet("Cholla-Gravity").BuildTaskSpec("1x", dev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpusim.RunClients(gpusim.Config{Seed: 1, Mode: gpusim.ShareMPS}, []gpusim.Client{
		{ID: "kripke", Tasks: []*workload.TaskSpec{k}},
		{ID: "gravity", Tasks: []*workload.TaskSpec{g}},
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteChrome(&buf, res); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var spans, counters, meta int
	names := map[string]bool{}
	for _, e := range events {
		names[e["name"].(string)] = true
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"].(float64) <= 0 {
				t.Fatal("span with non-positive duration")
			}
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	if spans != 2 {
		t.Fatalf("spans = %d, want one per task", spans)
	}
	if counters == 0 {
		t.Fatal("no counter events")
	}
	if meta < 3 {
		t.Fatalf("metadata events = %d", meta)
	}
	for _, want := range []string{"Kripke/1x", "Cholla-Gravity/1x", "power_w", "compute_util"} {
		if !names[want] {
			t.Fatalf("missing event %q", want)
		}
	}
}

func TestWriteChromeOOMMarker(t *testing.T) {
	dev := gpu.MustLookup("A100X")
	wx, err := workload.MustGet("WarpX").BuildTaskSpec("1x", dev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpusim.RunClients(gpusim.Config{Seed: 1, Mode: gpusim.ShareMPS}, []gpusim.Client{
		{ID: "a", Tasks: []*workload.TaskSpec{wx}},
		{ID: "b", Tasks: []*workload.TaskSpec{wx}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("(OOM)")) {
		t.Fatal("OOM task not marked in trace")
	}
}

func TestWriteChromeNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err == nil {
		t.Fatal("nil result accepted")
	}
}
