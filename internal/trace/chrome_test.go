package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/obs"
	"gpushare/internal/workload"
)

func TestWriteChrome(t *testing.T) {
	dev := gpu.MustLookup("A100X")
	k, err := workload.MustGet("Kripke").BuildTaskSpec("1x", dev)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.MustGet("Cholla-Gravity").BuildTaskSpec("1x", dev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpusim.RunClients(gpusim.Config{Seed: 1, Mode: gpusim.ShareMPS}, []gpusim.Client{
		{ID: "kripke", Tasks: []*workload.TaskSpec{k}},
		{ID: "gravity", Tasks: []*workload.TaskSpec{g}},
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteChrome(&buf, res); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var spans, counters, meta int
	names := map[string]bool{}
	for _, e := range events {
		names[e["name"].(string)] = true
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"].(float64) <= 0 {
				t.Fatal("span with non-positive duration")
			}
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	if spans != 2 {
		t.Fatalf("spans = %d, want one per task", spans)
	}
	if counters == 0 {
		t.Fatal("no counter events")
	}
	if meta < 3 {
		t.Fatalf("metadata events = %d", meta)
	}
	for _, want := range []string{"Kripke/1x", "Cholla-Gravity/1x", "power_w", "compute_util"} {
		if !names[want] {
			t.Fatalf("missing event %q", want)
		}
	}
}

func TestWriteChromeOOMMarker(t *testing.T) {
	dev := gpu.MustLookup("A100X")
	wx, err := workload.MustGet("WarpX").BuildTaskSpec("1x", dev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpusim.RunClients(gpusim.Config{Seed: 1, Mode: gpusim.ShareMPS}, []gpusim.Client{
		{ID: "a", Tasks: []*workload.TaskSpec{wx}},
		{ID: "b", Tasks: []*workload.TaskSpec{wx}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("(OOM)")) {
		t.Fatal("OOM task not marked in trace")
	}
}

func TestWriteChromeNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err == nil {
		t.Fatal("nil result accepted")
	}
}

// failAfterWriter fails every Write once failAt bytes have passed, then
// recovers after recoverAfter failures.
type failAfterWriter struct {
	buf          bytes.Buffer
	failAt       int
	failures     int
	recoverAfter int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.buf.Len() >= w.failAt && w.failures < w.recoverAfter {
		w.failures++
		return 0, errors.New("sink full")
	}
	return w.buf.Write(p)
}

func traceResult(t *testing.T) *gpusim.Result {
	t.Helper()
	dev := gpu.MustLookup("A100X")
	k, err := workload.MustGet("Kripke").BuildTaskSpec("1x", dev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpusim.RunClients(gpusim.Config{Seed: 1, Mode: gpusim.ShareMPS}, []gpusim.Client{
		{ID: "kripke", Tasks: []*workload.TaskSpec{k}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriterPropagatesErrors(t *testing.T) {
	res := traceResult(t)
	w := &failAfterWriter{failAt: 0, recoverAfter: 1 << 30} // fails forever
	tw := NewWriter(w)
	if err := tw.Result(res, 0, ""); err == nil {
		t.Fatal("write error not propagated from Result")
	}
	if err := tw.Close(); err == nil {
		t.Fatal("write error not propagated from Close")
	}
	if err := WriteChrome(w, res); err == nil {
		t.Fatal("WriteChrome swallowed the write error")
	}
}

func TestWriterClosesArrayAfterError(t *testing.T) {
	res := traceResult(t)
	// Fail exactly once partway through, then recover: everything after
	// the failed event is skipped, but Close still lands the bracket and
	// the sink holds parseable JSON.
	w := &failAfterWriter{failAt: 200, recoverAfter: 1}
	tw := NewWriter(w)
	if err := tw.Result(res, 0, ""); err == nil {
		t.Fatal("write error not propagated")
	}
	if err := tw.Close(); err == nil {
		t.Fatal("Close dropped the latched error")
	}
	out := bytes.TrimSpace(w.buf.Bytes())
	if len(out) == 0 || out[len(out)-1] != ']' {
		t.Fatalf("output does not end with ']': %q", out)
	}
	var events []map[string]any
	if err := json.Unmarshal(out, &events); err != nil {
		t.Fatalf("truncated trace is not parseable JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events survived before the failure")
	}
}

func TestWriterEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty writer output = %q, want []", buf.Bytes())
	}
}

func TestWriterSpans(t *testing.T) {
	spans := []obs.SpanData{
		{Track: "engine:a", Name: "Kripke/1x", Detail: "a", Mode: obs.SimTime, Start: 0, End: 2_000_000},
		{Track: "engine:a", Name: "Kripke/1x", Mode: obs.SimTime, Start: 2_000_000, End: 3_000_000},
		{Track: "scheduler", Name: "BuildPlan", Mode: obs.WallTime, Start: 5_000, End: 9_000},
		{Track: "workers", Name: "task", Mode: obs.WallTime, Start: 6_000, End: 7_000},
	}
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	res := traceResult(t)
	if err := tw.Result(res, PidResultBase, "gpu0-wave0"); err != nil {
		t.Fatal(err)
	}
	if err := tw.Spans(spans, PidObsSim, PidObsWall); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("combined trace not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	wallZero := false
	for _, e := range events {
		pids[e["pid"].(float64)] = true
		if e["ph"] == "X" && e["pid"].(float64) == PidObsWall && e["ts"].(float64) == 0 {
			wallZero = true
		}
	}
	for _, want := range []float64{PidObsSim, PidObsWall, PidResultBase, PidResultBase + 1} {
		if !pids[want] {
			t.Fatalf("pid %v missing from combined timeline", want)
		}
	}
	if !wallZero {
		t.Fatal("wall-time spans not normalized to start at zero")
	}
}
