package obs

import "math"

// LocalHistogram is the single-owner counterpart of Histogram: the same
// int64 fixed-bucket shape, but plain fields instead of atomics, so a
// hot loop that owns the histogram (one dispatcher shard, one worker)
// can observe without synchronization or a registry lookup. At the end
// of the run the owner folds it into the shared registry with MergeInto
// — bucket counts are commutative sums, so merged totals and the JSON
// snapshot stay byte-identical at any -j and any merge order, exactly
// the registry histogram's contract (DESIGN.md §10).
//
// The zero value is unusable; construct with NewLocalHistogram. A nil
// *LocalHistogram is a no-op for Observe, like the registry types.
type LocalHistogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1; last is overflow
	count  int64
	sum    int64
}

// NewLocalHistogram returns a histogram with the given inclusive bucket
// upper bounds, which must be sorted ascending (matching the registry
// Histogram the owner will merge into).
func NewLocalHistogram(bounds []int64) *LocalHistogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &LocalHistogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
//
//repro:hotpath pinned by TestLocalHistogramObserveAllocs
func (h *LocalHistogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *LocalHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Quantile returns the p-quantile (0 < p <= 1) as the inclusive upper
// bound of the bucket holding the ceil(p*count)-th observation, oldest
// bucket first. The walk is pure integer comparison over commutative
// bucket sums, so the answer is deterministic at any merge order and
// ties always resolve to the lower bucket. Observations past the last
// bound saturate to that bound (the histogram cannot resolve further);
// an empty histogram returns 0.
func (h *LocalHistogram) Quantile(p float64) int64 {
	if h == nil {
		return 0
	}
	return bucketQuantile(h.bounds, h.counts, h.count, p)
}

// bucketQuantile is the shared exact-quantile walk over a fixed-bucket
// histogram state (counts has the trailing overflow bucket).
func bucketQuantile(bounds, counts []int64, count int64, p float64) int64 {
	if count <= 0 || len(bounds) == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(count)))
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1]
		}
	}
	return bounds[len(bounds)-1]
}

// Snapshot exports the histogram state in the registry's snapshot
// shape, including the standard latency quantiles.
func (h *LocalHistogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
	}
}

// Restore overwrites the histogram state from a snapshot with the same
// bounds (the streaming dispatcher reloads per-shard histograms from a
// saved run state). It reports false when the snapshot's bounds do not
// match.
func (h *LocalHistogram) Restore(s HistogramSnapshot) bool {
	if h == nil || len(s.Bounds) != len(h.bounds) || len(s.Counts) != len(h.counts) {
		return false
	}
	for i, b := range s.Bounds {
		if h.bounds[i] != b {
			return false
		}
	}
	copy(h.counts, s.Counts)
	h.count = s.Count
	h.sum = s.Sum
	return true
}

// MergeInto folds the local counts into a registry histogram created
// with identical bounds. Merging is a sum per bucket, so any number of
// local histograms can fold into one registry histogram in any order
// with a bit-identical result. A nil receiver or destination is a
// no-op; mismatched bounds are a programming error and panic (silently
// misbinning would corrupt the shared metric).
func (h *LocalHistogram) MergeInto(dst *Histogram) {
	if h == nil || dst == nil {
		return
	}
	if len(dst.bounds) != len(h.bounds) {
		panic("obs: LocalHistogram.MergeInto with mismatched bounds")
	}
	for i, b := range h.bounds {
		if dst.bounds[i] != b {
			panic("obs: LocalHistogram.MergeInto with mismatched bounds")
		}
	}
	for i, c := range h.counts {
		dst.counts[i].Add(c)
	}
	dst.count.Add(h.count)
	dst.sum.Add(h.sum)
}

// Reset zeroes every bucket.
func (h *LocalHistogram) Reset() {
	if h == nil {
		return
	}
	clear(h.counts)
	h.count, h.sum = 0, 0
}
