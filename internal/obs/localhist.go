package obs

// LocalHistogram is the single-owner counterpart of Histogram: the same
// int64 fixed-bucket shape, but plain fields instead of atomics, so a
// hot loop that owns the histogram (one dispatcher shard, one worker)
// can observe without synchronization or a registry lookup. At the end
// of the run the owner folds it into the shared registry with MergeInto
// — bucket counts are commutative sums, so merged totals and the JSON
// snapshot stay byte-identical at any -j and any merge order, exactly
// the registry histogram's contract (DESIGN.md §10).
//
// The zero value is unusable; construct with NewLocalHistogram. A nil
// *LocalHistogram is a no-op for Observe, like the registry types.
type LocalHistogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1; last is overflow
	count  int64
	sum    int64
}

// NewLocalHistogram returns a histogram with the given inclusive bucket
// upper bounds, which must be sorted ascending (matching the registry
// Histogram the owner will merge into).
func NewLocalHistogram(bounds []int64) *LocalHistogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &LocalHistogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
//
//repro:hotpath pinned by TestLocalHistogramObserveAllocs
func (h *LocalHistogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *LocalHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Snapshot exports the histogram state in the registry's snapshot
// shape.
func (h *LocalHistogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
}

// Restore overwrites the histogram state from a snapshot with the same
// bounds (the streaming dispatcher reloads per-shard histograms from a
// saved run state). It reports false when the snapshot's bounds do not
// match.
func (h *LocalHistogram) Restore(s HistogramSnapshot) bool {
	if h == nil || len(s.Bounds) != len(h.bounds) || len(s.Counts) != len(h.counts) {
		return false
	}
	for i, b := range s.Bounds {
		if h.bounds[i] != b {
			return false
		}
	}
	copy(h.counts, s.Counts)
	h.count = s.Count
	h.sum = s.Sum
	return true
}

// MergeInto folds the local counts into a registry histogram created
// with identical bounds. Merging is a sum per bucket, so any number of
// local histograms can fold into one registry histogram in any order
// with a bit-identical result. A nil receiver or destination is a
// no-op; mismatched bounds are a programming error and panic (silently
// misbinning would corrupt the shared metric).
func (h *LocalHistogram) MergeInto(dst *Histogram) {
	if h == nil || dst == nil {
		return
	}
	if len(dst.bounds) != len(h.bounds) {
		panic("obs: LocalHistogram.MergeInto with mismatched bounds")
	}
	for i, b := range h.bounds {
		if dst.bounds[i] != b {
			panic("obs: LocalHistogram.MergeInto with mismatched bounds")
		}
	}
	for i, c := range h.counts {
		dst.counts[i].Add(c)
	}
	dst.count.Add(h.count)
	dst.sum.Add(h.sum)
}

// Reset zeroes every bucket.
func (h *LocalHistogram) Reset() {
	if h == nil {
		return
	}
	clear(h.counts)
	h.count, h.sum = 0, 0
}
