package obs

import (
	"reflect"
	"testing"
)

// FuzzFlightRing drives the flight recorder against a plain-slice
// reference model: any record sequence must retain exactly the last
// `capacity` records, count every eviction as dropped (no spill
// installed), and survive a snapshot/restore round trip into a fresh
// recorder with a bit-identical snapshot — the property the streamer's
// resume path depends on.
func FuzzFlightRing(f *testing.F) {
	f.Add(uint8(4), []byte{1, 2, 3, 4, 5, 6})
	f.Add(uint8(1), []byte{9, 9, 9})
	f.Add(uint8(7), []byte{})
	f.Add(uint8(0), []byte{0, 255, 7, 7, 128, 3})
	f.Fuzz(func(t *testing.T, capacity uint8, ops []byte) {
		capN := int(capacity%16) + 1
		fl := NewFlight(capN)
		var model []FlightRecord
		var dropped int64
		for i, op := range ops {
			r := FlightRecord{
				Seq:           int64(i / 3),
				Kind:          FlightKind(op % 8),
				AtNS:          int64(i) * 100,
				GPU:           int32(op%5) - 1,
				Clients:       int32(op % 4),
				Rules:         op % 16,
				SMExcessMilli: int64(op) * 7,
				WaitNS:        int64(op%2) * 900,
			}
			fl.Record(r)
			model = append(model, r)
			if len(model) > capN {
				model = model[1:]
				dropped++
			}
		}
		s := fl.Snapshot()
		if s.Total != int64(len(ops)) || s.Dropped != dropped || s.Spilled != 0 {
			t.Fatalf("accounting = %+v, want total %d dropped %d", s, len(ops), dropped)
		}
		if len(s.Records) != len(model) {
			t.Fatalf("retained %d records, model %d", len(s.Records), len(model))
		}
		for i := range model {
			if s.Records[i] != model[i] {
				t.Fatalf("record %d = %+v, model %+v", i, s.Records[i], model[i])
			}
		}

		fresh := NewFlight(capN)
		if err := fresh.Restore(s); err != nil {
			t.Fatalf("restore: %v", err)
		}
		if !reflect.DeepEqual(fresh.Snapshot(), s) {
			t.Fatal("restore round trip diverged")
		}
		// The restored recorder must keep evicting like the original.
		extra := FlightRecord{Seq: 999, Kind: FlightDispatch, GPU: -1}
		fl.Record(extra)
		fresh.Record(extra)
		if !reflect.DeepEqual(fresh.Snapshot(), fl.Snapshot()) {
			t.Fatal("post-restore recording diverged from uninterrupted recorder")
		}
	})
}
