package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// promRegistry builds a registry with every metric family, inserting in
// a deliberately unsorted order so the golden pins the name-sorted
// output.
func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("zz_last").Add(3)
	r.Counter("dispatch_total").Add(42)
	r.Gauge("queue_depth").Set(7)
	r.Gauge("gpu_high_water").SetMax(12)
	h := r.Histogram("wait_ms", []int64{1, 10, 100})
	for _, v := range []int64{0, 5, 50, 500, 7} {
		h.Observe(v)
	}
	r.Histogram("empty_ms", []int64{5})
	return r
}

// TestWritePrometheusGolden pins the exposition bytes: family order
// (counters, gauges, histograms; name-sorted within each), cumulative
// le buckets, and the 0.0.4 framing. Regenerate (only when
// intentionally changing the format) with:
//
//	GOLDEN_UPDATE=1 go test -run TestWritePrometheusGolden ./internal/obs
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prom_golden.txt")
	if os.Getenv("GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with GOLDEN_UPDATE=1 to create): %v", path, err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("prometheus exposition diverged:\n--- want\n%s\n--- got\n%s", want, buf.Bytes())
	}

	// Byte-stability across repeated writes.
	var again bytes.Buffer
	if err := promRegistry().WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("exposition not byte-stable across registries with identical state")
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry exposition = %q", buf.String())
	}
}

// TestMetricsContentNegotiation pins the /metrics representation
// switch: JSON by default (the obs-smoke golden depends on it),
// Prometheus on explicit request.
func TestMetricsContentNegotiation(t *testing.T) {
	h := NewHub(nil)
	h.Counter("requests").Add(7)
	srv := httptest.NewServer(Handler(h))
	defer srv.Close()

	get := func(path, accept string) (string, string) {
		r, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		resp, err := srv.Client().Do(r)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), buf.String()
	}

	ct, body := get("/metrics", "")
	if !strings.Contains(ct, "application/json") || !strings.Contains(body, `"requests": 7`) {
		t.Fatalf("default /metrics = %q %q", ct, body)
	}
	ct, body = get("/metrics?format=prometheus", "")
	if ct != PromContentType || !strings.Contains(body, "requests 7") {
		t.Fatalf("?format=prometheus = %q %q", ct, body)
	}
	ct, body = get("/metrics", "text/plain")
	if ct != PromContentType || !strings.Contains(body, "# TYPE requests counter") {
		t.Fatalf("Accept: text/plain = %q %q", ct, body)
	}
	ct, _ = get("/metrics", "application/openmetrics-text; version=1.0.0")
	if ct != PromContentType {
		t.Fatalf("openmetrics Accept = %q", ct)
	}
}
