package obs

import (
	"sort"
	"sync"

	"gpushare/internal/simtime"
)

// TimeMode distinguishes the two span time bases.
type TimeMode uint8

const (
	// SimTime spans carry simulated nanoseconds (deterministic).
	SimTime TimeMode = iota
	// WallTime spans carry wall-clock nanoseconds from the recorder's
	// injected clock (non-deterministic; never exported to /metrics).
	WallTime
)

// SpanData is one completed span. Start and End are nanoseconds in the
// span's time base.
type SpanData struct {
	// Track groups related spans onto one timeline row, e.g.
	// "engine:g0-w0-Kripke", "scheduler", "cache", "workers".
	Track string
	// Name is the operation, e.g. "Kripke/4x", "BuildPlan", "simulate".
	Name string
	// Detail is an optional free-form annotation.
	Detail string
	Mode   TimeMode
	Start  int64
	End    int64
}

// defaultMaxSpans bounds a recorder's memory; past it, spans are counted
// as dropped instead of stored.
const defaultMaxSpans = 1 << 18

// SpanRecorder collects spans from concurrent producers. Sim-time spans
// are recorded with explicit instants; wall-time spans come from
// StartWall/End pairs against the injected clock. A nil *SpanRecorder is
// a no-op.
type SpanRecorder struct {
	clock func() int64
	max   int

	mu      sync.Mutex
	spans   []SpanData
	dropped int64
}

// NewSpanRecorder returns a recorder holding at most maxSpans spans
// (maxSpans <= 0 selects a default). clock supplies wall-clock
// nanoseconds for StartWall; a nil clock disables wall-time spans (they
// are silently skipped), which keeps packages under the nodeterminism
// analyzer free of any time source — the CLIs inject time.Now().UnixNano
// from outside the analyzer scope.
func NewSpanRecorder(clock func() int64, maxSpans int) *SpanRecorder {
	if maxSpans <= 0 {
		maxSpans = defaultMaxSpans
	}
	return &SpanRecorder{clock: clock, max: maxSpans}
}

// RecordSim records a completed sim-time span.
func (r *SpanRecorder) RecordSim(track, name, detail string, start, end simtime.Time) {
	if r == nil {
		return
	}
	r.add(SpanData{
		Track: track, Name: name, Detail: detail,
		Mode: SimTime, Start: int64(start), End: int64(end),
	})
}

// Span is an in-flight wall-time span; call End to record it. The zero
// Span (from a nil or clock-less recorder) is a no-op.
type Span struct {
	rec   *SpanRecorder
	track string
	name  string
	start int64
}

// StartWall opens a wall-time span. It returns the zero Span when the
// recorder is nil or has no clock.
func (r *SpanRecorder) StartWall(track, name string) Span {
	if r == nil || r.clock == nil {
		return Span{}
	}
	return Span{rec: r, track: track, name: name, start: r.clock()}
}

// End completes the span and records it.
func (s Span) End() { s.EndDetail("") }

// EndDetail completes the span with an annotation.
func (s Span) EndDetail(detail string) {
	if s.rec == nil {
		return
	}
	s.rec.add(SpanData{
		Track: s.track, Name: s.name, Detail: detail,
		Mode: WallTime, Start: s.start, End: s.rec.clock(),
	})
}

func (r *SpanRecorder) add(sd SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.max {
		r.dropped++
		return
	}
	//repro:allow:hotpathalloc span buffer growth is amortized and bounded by r.max
	r.spans = append(r.spans, sd)
}

// Dropped returns how many spans were discarded at the capacity bound.
func (r *SpanRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot returns a stable-ordered copy of the recorded spans: sorted by
// (Mode, Track, Start, Name, End, Detail). For sim-time spans the order —
// like the instants themselves — is independent of worker interleaving.
func (r *SpanRecorder) Snapshot() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]SpanData(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Mode != b.Mode {
			return a.Mode < b.Mode
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.Detail < b.Detail
	})
	return out
}
