package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func flightRec(seq int64, kind FlightKind, gpu int32) FlightRecord {
	return FlightRecord{Seq: seq, Kind: kind, AtNS: seq * 1000, GPU: gpu}
}

func TestFlightNilSafety(t *testing.T) {
	var f *Flight
	f.Record(flightRec(1, FlightProbe, 0))
	f.SetSpill(&bytes.Buffer{})
	if err := f.SpillErr(); err != nil {
		t.Fatalf("nil flight spill err: %v", err)
	}
	if err := f.Restore(FlightSnapshot{}); err != nil {
		t.Fatalf("nil flight restore: %v", err)
	}
	s := f.Snapshot()
	if s.Total != 0 || s.Records == nil || len(s.Records) != 0 {
		t.Fatalf("nil flight snapshot = %+v", s)
	}

	var h *Hub
	if h.FlightRecorder() != nil {
		t.Fatal("nil hub returned a recorder")
	}
	d := h.Dump()
	if d.Flight.Records == nil || d.Metrics.Counters == nil {
		t.Fatalf("nil hub dump has nil sections: %+v", d)
	}
}

func TestFlightRecordAndSnapshot(t *testing.T) {
	f := NewFlight(3)
	for seq := int64(1); seq <= 5; seq++ {
		f.Record(flightRec(seq, FlightProbe, int32(seq)))
	}
	s := f.Snapshot()
	if s.Capacity != 3 || s.Total != 5 || s.Dropped != 2 || s.Spilled != 0 {
		t.Fatalf("accounting = %+v", s)
	}
	if len(s.Records) != 3 || s.Records[0].Seq != 3 || s.Records[2].Seq != 5 {
		t.Fatalf("retained window = %+v", s.Records)
	}
}

func TestFlightSpillJSONL(t *testing.T) {
	f := NewFlight(2)
	var spill bytes.Buffer
	f.SetSpill(&spill)
	for seq := int64(1); seq <= 4; seq++ {
		f.Record(flightRec(seq, FlightDispatch, -1))
	}
	s := f.Snapshot()
	if s.Spilled != 2 || s.Dropped != 0 {
		t.Fatalf("accounting = %+v", s)
	}
	lines := strings.Split(strings.TrimSuffix(spill.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("spill lines = %q", lines)
	}
	for i, line := range lines {
		var r FlightRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("spill line %d not JSON: %v", i, err)
		}
		if r.Seq != int64(i+1) || r.Kind != FlightDispatch {
			t.Fatalf("spill line %d = %+v", i, r)
		}
	}
	if err := f.SpillErr(); err != nil {
		t.Fatal(err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("write refused") }

func TestFlightSpillError(t *testing.T) {
	f := NewFlight(1)
	f.SetSpill(failWriter{})
	f.Record(flightRec(1, FlightProbe, 0))
	f.Record(flightRec(2, FlightProbe, 0)) // evicts 1, spill fails
	f.Record(flightRec(3, FlightProbe, 0)) // evicts 2, spill disabled
	if err := f.SpillErr(); err == nil {
		t.Fatal("spill error not surfaced")
	}
	s := f.Snapshot()
	if s.Spilled != 0 || s.Dropped != 2 {
		t.Fatalf("accounting after spill failure = %+v", s)
	}
}

func TestFlightRestoreRoundTrip(t *testing.T) {
	f := NewFlight(4)
	for seq := int64(1); seq <= 6; seq++ {
		r := flightRec(seq, FlightProbe, int32(seq%3))
		r.Tenant = "tenant-a"
		r.Rules = 0x5
		r.SMExcessMilli = seq * 100
		f.Record(r)
	}
	snap := f.Snapshot()

	fresh := NewFlight(4)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Snapshot(), snap) {
		t.Fatalf("restored snapshot diverged:\n%+v\nvs\n%+v", fresh.Snapshot(), snap)
	}

	small := NewFlight(2)
	if err := small.Restore(snap); err == nil {
		t.Fatal("restore into a smaller ring did not fail")
	}
}

// TestFlightSnapshotBytesStable pins the golden-diff contract: the same
// decision stream marshals to the same bytes, and the record JSON field
// order is the struct order (no map anywhere in the dump).
func TestFlightSnapshotBytesStable(t *testing.T) {
	build := func() []byte {
		f := NewFlight(8)
		f.Record(FlightRecord{Seq: 1, Kind: FlightArrival, GPU: -1, Workflow: "cfd"})
		f.Record(FlightRecord{Seq: 1, Kind: FlightProbe, GPU: 0, Clients: 2, Rules: 1, SMExcessMilli: 1500})
		f.Record(FlightRecord{Seq: 1, Kind: FlightDispatch, GPU: 1, WaitNS: 250})
		data, err := json.Marshal(f.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot bytes unstable:\n%s\nvs\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"sm_excess_milli":1500`)) {
		t.Fatalf("snapshot missing reason fields: %s", a)
	}
}

func TestFlightKindString(t *testing.T) {
	cases := map[FlightKind]string{
		FlightArrival:  "arrival",
		FlightProbe:    "probe",
		FlightWait:     "wait",
		FlightDispatch: "dispatch",
		FlightReject:   "reject",
		FlightWhatIf:   "what-if",
		FlightEvict:    "evict",
		FlightHold:     "hold",
		FlightKind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("FlightKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestFlightRecordAllocs is the runtime half of Record's //repro:hotpath
// annotation: recording on a nil recorder (telemetry disabled) and on a
// live recorder without a spill writer both allocate nothing — even
// while the full ring is evicting on every push.
func TestFlightRecordAllocs(t *testing.T) {
	rec := flightRec(7, FlightProbe, 3)

	var disabled *Flight
	if allocs := testing.AllocsPerRun(200, func() { disabled.Record(rec) }); allocs != 0 {
		t.Fatalf("nil Record allocated %.1f objects, want 0", allocs)
	}

	f := NewFlight(16)
	for i := 0; i < 32; i++ { // saturate so every Record evicts
		f.Record(rec)
	}
	if allocs := testing.AllocsPerRun(200, func() { f.Record(rec) }); allocs != 0 {
		t.Fatalf("enabled Record allocated %.1f objects, want 0", allocs)
	}
}

func TestHubDump(t *testing.T) {
	h := NewHub(nil)
	h.Counter("decisions").Add(2)
	h.FlightRecorder().Record(flightRec(1, FlightDispatch, 0))
	d := h.Dump()
	if d.Flight.Total != 1 || d.Metrics.Counters["decisions"] != 2 {
		t.Fatalf("dump = %+v", d)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n") || !strings.Contains(buf.String(), `"flight"`) {
		t.Fatalf("dump JSON framing: %q", buf.String())
	}
}
