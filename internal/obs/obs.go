package obs

import (
	"sync/atomic"

	"gpushare/internal/simtime"
)

// Hub bundles the telemetry sinks one process shares: a metrics
// registry, a span recorder, and a flight recorder for decision
// provenance. Any field may be nil; every method is safe on a nil *Hub,
// so instrumented code reads the active hub once and calls through
// unconditionally.
type Hub struct {
	Metrics *Registry
	Spans   *SpanRecorder
	Flight  *Flight
}

// NewHub returns a hub with a fresh registry, span recorder, and a
// flight recorder at DefaultFlightCapacity. clock supplies wall-clock
// nanoseconds for wall-time spans (nil disables them); the CLIs pass
// time.Now().UnixNano from outside the nodeterminism analyzer scope.
func NewHub(clock func() int64) *Hub {
	return &Hub{
		Metrics: NewRegistry(),
		Spans:   NewSpanRecorder(clock, 0),
		Flight:  NewFlight(DefaultFlightCapacity),
	}
}

// Counter resolves a registry counter; nil when telemetry is off.
func (h *Hub) Counter(name string) *Counter {
	if h == nil {
		return nil
	}
	return h.Metrics.Counter(name)
}

// Gauge resolves a registry gauge; nil when telemetry is off.
func (h *Hub) Gauge(name string) *Gauge {
	if h == nil {
		return nil
	}
	return h.Metrics.Gauge(name)
}

// Histogram resolves a registry histogram; nil when telemetry is off.
func (h *Hub) Histogram(name string, bounds []int64) *Histogram {
	if h == nil {
		return nil
	}
	return h.Metrics.Histogram(name, bounds)
}

// SimSpan records a completed sim-time span.
func (h *Hub) SimSpan(track, name, detail string, start, end simtime.Time) {
	if h == nil {
		return
	}
	h.Spans.RecordSim(track, name, detail, start, end)
}

// StartWall opens a wall-time span (no-op Span when telemetry is off or
// no clock was injected).
func (h *Hub) StartWall(track, name string) Span {
	if h == nil {
		return Span{}
	}
	return h.Spans.StartWall(track, name)
}

// FlightRecorder resolves the hub's flight recorder; nil when telemetry
// is off. A nil *Flight is itself a no-op, so dispatchers capture it
// once at construction time and record unconditionally.
func (h *Hub) FlightRecorder() *Flight {
	if h == nil {
		return nil
	}
	return h.Flight
}

// SpansEnabled reports whether span recording is active — instrumented
// code uses it to skip building span arguments entirely.
func (h *Hub) SpansEnabled() bool {
	return h != nil && h.Spans != nil
}

// active is the process-wide hub. The default is nil: telemetry off, all
// instrumentation no-op, zero allocations on the simulator hot path.
var active atomic.Pointer[Hub]

// Active returns the process-wide hub, or nil when telemetry is
// disabled.
func Active() *Hub { return active.Load() }

// SetActive installs h as the process-wide hub and returns the previous
// one (for restore in tests). It is safe to call concurrently, but
// components capture the hub at construction time (e.g. gpusim.New), so
// install it before starting work you want observed.
func SetActive(h *Hub) *Hub { return active.Swap(h) }
