package obs

// MetricName joins a metric base name with a free-form label (tenant,
// node, experiment id) into one registry key: base + "_" + label with
// every character outside [a-z0-9_] lowered or replaced by '_'. Labels
// come from user-supplied specs, so the mapping must be total and
// deterministic — two labels may collide after sanitization, which is
// acceptable for telemetry and keeps names shell- and Prometheus-safe.
func MetricName(base, label string) string {
	b := make([]byte, 0, len(base)+1+len(label))
	b = append(b, base...)
	b = append(b, '_')
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_':
			b = append(b, c)
		case c >= 'A' && c <= 'Z':
			b = append(b, c+'a'-'A')
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}
