package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"gpushare/internal/arena"
)

// Flight is the decision-provenance recorder: an arena-backed ring of
// the last N scheduling decisions (arrivals, per-GPU probes with typed
// rejection reasons, wait spans, dispatches, preemption what-ifs). It
// answers "why was this gang rejected on GPU 12?" after the fact,
// without re-running the dispatch — the `gpusched explain` subcommand
// and GET /debug/flight read its snapshot.
//
// The recorder lives under the same determinism contract as the metrics
// registry (DESIGN.md §10/§15): records carry sim-time and integer-
// scaled magnitudes only, callers emit them in decision order, and the
// dispatchers record nothing whose order depends on the shard count —
// so the snapshot is byte-identical at any -j / -shards. Like every obs
// type, a nil *Flight is a no-op, and Record on a live recorder with no
// spill writer allocates nothing.

// FlightKind discriminates decision-trail records.
type FlightKind uint8

const (
	// FlightArrival marks a workload entering the dispatcher or a tenant
	// queue.
	FlightArrival FlightKind = iota
	// FlightProbe is one admission probe against one GPU, with the typed
	// rule verdict.
	FlightProbe
	// FlightWait marks the dispatcher blocking an arrival until the next
	// completion frees capacity.
	FlightWait
	// FlightDispatch is the final placement decision.
	FlightDispatch
	// FlightReject marks a decision that failed on every candidate in a
	// round (cluster gangs held for a later round record FlightHold
	// instead).
	FlightReject
	// FlightWhatIf is a preemption feasibility probe: victims removed
	// under a snapshot, candidate probed, state restored. Detail carries
	// the pre/post aggregate digests proving the restore.
	FlightWhatIf
	// FlightEvict marks a committed preemption (the victim gang's view).
	FlightEvict
	// FlightHold marks a gang parked in its tenant queue after a failed
	// placement round.
	FlightHold
)

// flightKindNames orders the kinds for rendering.
var flightKindNames = [...]string{
	"arrival", "probe", "wait", "dispatch", "reject", "what-if", "evict", "hold",
}

// String renders the kind for decision-trail output.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FlightRecord is one decision-trail entry. Every field is a fixed-
// layout integer or a small string, so records compare and marshal
// deterministically; the JSON field order is the struct order.
type FlightRecord struct {
	// Seq is the decision's arrival sequence number — the key `explain
	// -seq` groups a trail by. Cluster records use the gang sequence.
	Seq int64 `json:"seq"`
	// Kind discriminates the record.
	Kind FlightKind `json:"kind"`
	// AtNS is the sim-time of the decision step in nanoseconds.
	AtNS int64 `json:"at_ns"`
	// Tenant and Workflow name the subject (empty outside the cluster
	// layer / when not applicable).
	Tenant   string `json:"tenant,omitempty"`
	Workflow string `json:"workflow,omitempty"`
	// Node names the cluster node probed; empty on the single-pool path.
	Node string `json:"node,omitempty"`
	// GPU is the global GPU index probed or placed on; -1 when the
	// record is not about one GPU.
	GPU int32 `json:"gpu"`
	// Clients is the resident client count on the probed GPU at decision
	// time.
	Clients int32 `json:"clients,omitempty"`
	// Rules is the violated-rule bitmask (interference.RuleMask); zero
	// means the probe admitted.
	Rules uint8 `json:"rules,omitempty"`
	// SMExcessMilli / BWExcessMilli / MemExcessMiB are the integer-scaled
	// violation magnitudes from interference.Reason.
	SMExcessMilli int64 `json:"sm_excess_milli,omitempty"`
	BWExcessMilli int64 `json:"bw_excess_milli,omitempty"`
	MemExcessMiB  int64 `json:"mem_excess_mib,omitempty"`
	// WaitNS is the span covered by a wait record, or the total queue
	// wait carried on a dispatch record, in sim nanoseconds.
	WaitNS int64 `json:"wait_ns,omitempty"`
	// Detail carries kind-specific context (what-if digests, victim gang
	// ids). Producers must build it deterministically.
	Detail string `json:"detail,omitempty"`
}

// Flight records FlightRecords into a fixed-capacity ring; once full,
// the oldest record is either spilled as one JSONL line (streaming
// path) or counted as dropped. Safe for concurrent use — recording is
// serialized under one mutex so /debug/flight can snapshot while a
// dispatch runs.
type Flight struct {
	mu       sync.Mutex
	ring     *arena.Ring[FlightRecord]
	total    int64
	spilled  int64
	dropped  int64
	spill    io.Writer
	spillErr error
}

// DefaultFlightCapacity is the ring size NewHub installs.
const DefaultFlightCapacity = 4096

// NewFlight returns a recorder retaining the last capacity records.
// Capacity must be positive.
func NewFlight(capacity int) *Flight {
	return &Flight{ring: arena.NewRing[FlightRecord](capacity)}
}

// SetSpill installs w as the JSONL spill sink for evicted records (nil
// disables spilling; evictions are then counted as dropped). Not safe
// to change while recording.
func (f *Flight) SetSpill(w io.Writer) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.spill = w
	f.spillErr = nil
	f.mu.Unlock()
}

// SpillErr returns the first error the spill writer reported; spilling
// stops (and records drop) after the first failure.
func (f *Flight) SpillErr() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.spillErr
}

// Record appends one decision record. With no spill writer installed
// the call allocates nothing — the ring either has room or silently
// drops its oldest entry (counted) — so hot paths record
// unconditionally.
//
//repro:hotpath pinned by TestFlightRecordAllocs
func (f *Flight) Record(r FlightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	old, evicted := f.ring.Push(r)
	f.total++
	if evicted {
		if f.spill != nil && f.spillErr == nil {
			f.writeSpill(old)
		} else {
			f.dropped++
		}
	}
	f.mu.Unlock()
}

// writeSpill emits one evicted record as a JSONL line. Called with
// f.mu held and f.spill non-nil.
func (f *Flight) writeSpill(r FlightRecord) {
	data, err := json.Marshal(r) //repro:allow:hotpathalloc spill path is opt-in and off the 0-alloc contract
	if err != nil {
		f.spillErr = fmt.Errorf("obs: marshal flight record: %w", err) //repro:allow:hotpathalloc spill path is opt-in and off the 0-alloc contract
		f.dropped++
		return
	}
	data = append(data, '\n') //repro:allow:hotpathalloc spill path is opt-in and off the 0-alloc contract
	if _, err := f.spill.Write(data); err != nil {
		f.spillErr = fmt.Errorf("obs: spill flight record: %w", err) //repro:allow:hotpathalloc spill path is opt-in and off the 0-alloc contract
		f.dropped++
		return
	}
	f.spilled++
}

// FlightSnapshot is the exported recorder state: the retained records
// oldest-first plus the lifetime accounting. Identical decision
// streams produce identical snapshots, and json.Marshal of the struct
// is byte-stable, so snapshots diff exactly across shard counts.
type FlightSnapshot struct {
	Capacity int            `json:"capacity"`
	Total    int64          `json:"total"`
	Spilled  int64          `json:"spilled"`
	Dropped  int64          `json:"dropped"`
	Records  []FlightRecord `json:"records"`
}

// Snapshot copies the current state. A nil recorder yields a zero
// snapshot with an empty (non-nil) record slice so the JSON shape is
// stable.
func (f *Flight) Snapshot() FlightSnapshot {
	s := FlightSnapshot{Records: []FlightRecord{}}
	if f == nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s.Capacity = f.ring.Cap()
	s.Total = f.total
	s.Spilled = f.spilled
	s.Dropped = f.dropped
	s.Records = f.ring.Snapshot(s.Records)
	return s
}

// Restore overwrites the recorder from a snapshot (the streaming
// dispatcher reloads flight state on resume so an interrupted run's
// trail matches the uninterrupted one). The snapshot must fit the
// recorder's capacity.
func (f *Flight) Restore(s FlightSnapshot) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(s.Records) > f.ring.Cap() {
		return fmt.Errorf("obs: flight restore: %d records exceed capacity %d", len(s.Records), f.ring.Cap())
	}
	f.ring.Reset()
	for _, r := range s.Records {
		f.ring.Push(r)
	}
	f.total = s.Total
	f.spilled = s.Spilled
	f.dropped = s.Dropped
	return nil
}

// FlightDump is the wire format served by GET /debug/flight and written
// by the CLIs' -flight-out: the decision trail plus the metrics
// snapshot whose histograms carry the tenant latency quantiles.
type FlightDump struct {
	Flight  FlightSnapshot `json:"flight"`
	Metrics Snapshot       `json:"metrics"`
}

// WriteJSON writes the dump as indented JSON with a trailing newline,
// matching the registry snapshot framing.
func (d FlightDump) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal flight dump: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: write flight dump: %w", err)
	}
	return nil
}

// Dump captures the hub's flight snapshot and metrics snapshot
// together. Nil-safe like every hub method.
func (h *Hub) Dump() FlightDump {
	d := FlightDump{Flight: (*Flight)(nil).Snapshot()}
	if h == nil {
		d.Metrics = (*Registry)(nil).Snapshot()
		return d
	}
	d.Flight = h.Flight.Snapshot()
	d.Metrics = h.Metrics.Snapshot()
	return d
}
