package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gpushare/internal/simtime"
)

func TestNilSafety(t *testing.T) {
	// Every operation on nil handles must be a no-op, not a panic: this
	// is what keeps disabled telemetry free on the simulator hot path.
	var (
		r  *Registry
		c  *Counter
		g  *Gauge
		hi *Histogram
		sr *SpanRecorder
		h  *Hub
	)
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g.Set(5)
	g.SetMax(9)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	hi.Observe(7)
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	sr.RecordSim("t", "n", "", 0, 1)
	sr.StartWall("t", "n").End()
	if sr.Snapshot() != nil || sr.Dropped() != 0 {
		t.Fatal("nil recorder recorded")
	}
	h.SimSpan("t", "n", "", 0, 1)
	h.StartWall("t", "n").End()
	h.Counter("x").Inc()
	h.Gauge("x").Set(1)
	h.Histogram("x", []int64{1}).Observe(1)
	if h.SpansEnabled() {
		t.Fatal("nil hub reports spans enabled")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
}

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Add(2)
	c.Inc()
	if got := r.Counter("events").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("depth")
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax lowered the gauge: %d", g.Value())
	}
	g.Set(1)
	if g.Value() != 1 {
		t.Fatalf("Set did not store: %d", g.Value())
	}

	h := r.Histogram("wait", []int64{1, 10, 100})
	for _, v := range []int64{0, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["wait"]
	want := []int64{2, 2, 1, 1} // <=1:{0,1}, <=10:{2,10}, <=100:{11}, over:{1000}
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket counts %v, want %v", s.Counts, want)
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Fatalf("bucket counts %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 6 || s.Sum != 1024 {
		t.Fatalf("count=%d sum=%d, want 6/1024", s.Count, s.Sum)
	}

	// Re-requesting a histogram keeps the original bounds.
	if h2 := r.Histogram("wait", []int64{7}); h2 != h {
		t.Fatal("histogram identity not stable across lookups")
	}
}

// TestSnapshotBytesDeterministic pins the core determinism property: the
// same metric state yields the same bytes, regardless of the order and
// interleaving in which the metrics were built up.
func TestSnapshotBytesDeterministic(t *testing.T) {
	build := func(parallel bool) []byte {
		r := NewRegistry()
		var wg sync.WaitGroup
		add := func(i int) {
			defer wg.Done()
			r.Counter("a").Add(int64(i))
			r.Counter("b").Inc()
			r.Gauge("hw").SetMax(int64(i))
			r.Histogram("h", []int64{8, 64}).Observe(int64(i))
		}
		for i := 0; i < 32; i++ {
			wg.Add(1)
			if parallel {
				go add(i)
			} else {
				add(i)
			}
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := build(false)
	for i := 0; i < 4; i++ {
		if got := build(true); !bytes.Equal(got, serial) {
			t.Fatalf("concurrent build produced different snapshot bytes:\n%s\nvs\n%s", got, serial)
		}
	}
	if !strings.Contains(string(serial), "\"counters\"") {
		t.Fatalf("snapshot missing sections: %s", serial)
	}
}

func TestSpanRecorder(t *testing.T) {
	var fake atomic.Int64
	clock := func() int64 { return fake.Add(10) }
	sr := NewSpanRecorder(clock, 3)

	sr.RecordSim("engine", "burst", "c0", 100, 200)
	sp := sr.StartWall("cache", "simulate")
	sp.EndDetail("miss")
	sr.RecordSim("engine", "burst", "c1", 50, 80)
	sr.RecordSim("engine", "late", "", 300, 400) // over capacity
	if sr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", sr.Dropped())
	}

	spans := sr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Sim spans sort before wall spans; within a track, by start.
	if spans[0].Mode != SimTime || spans[0].Start != 50 {
		t.Fatalf("unexpected first span: %+v", spans[0])
	}
	if spans[2].Mode != WallTime || spans[2].Detail != "miss" || spans[2].End <= spans[2].Start {
		t.Fatalf("unexpected wall span: %+v", spans[2])
	}
}

func TestSpanRecorderNoClock(t *testing.T) {
	sr := NewSpanRecorder(nil, 0)
	sr.StartWall("cache", "simulate").End() // silently skipped
	sr.RecordSim("engine", "burst", "", 0, simtime.Time(5))
	spans := sr.Snapshot()
	if len(spans) != 1 || spans[0].Mode != SimTime {
		t.Fatalf("clock-less recorder: %+v", spans)
	}
}

func TestActiveHub(t *testing.T) {
	prev := SetActive(nil)
	defer SetActive(prev)
	if Active() != nil {
		t.Fatal("active hub not cleared")
	}
	h := NewHub(nil)
	if old := SetActive(h); old != nil {
		t.Fatal("SetActive returned wrong previous hub")
	}
	if Active() != h {
		t.Fatal("Active does not return the installed hub")
	}
	Active().Counter("x").Inc()
	if h.Metrics.Counter("x").Value() != 1 {
		t.Fatal("hub counter not shared")
	}
}

func TestHandler(t *testing.T) {
	h := NewHub(nil)
	h.Counter("requests").Add(7)
	srv := httptest.NewServer(Handler(h))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, `"requests": 7`) {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	// Byte-stability of the served snapshot.
	if _, again := get("/metrics"); again != body {
		t.Fatal("/metrics not byte-stable across requests")
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}
