package obs

import (
	"reflect"
	"testing"
)

func TestLocalHistogramObserveAndSnapshot(t *testing.T) {
	h := NewLocalHistogram([]int64{10, 100})
	for _, v := range []int64{0, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := HistogramSnapshot{
		Bounds: []int64{10, 100},
		Counts: []int64{2, 2, 2},
		Count:  6,
		Sum:    5222,
		// p50 = rank 3 of 6 → second bucket's bound; p90/p99 land in the
		// overflow bucket and saturate to the last finite bound.
		P50: 100, P90: 100, P99: 100,
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
	h.Reset()
	if h.Count() != 0 || h.Snapshot().Sum != 0 {
		t.Fatalf("after Reset: %+v", h.Snapshot())
	}

	var nilH *LocalHistogram
	nilH.Observe(1) // must not panic
	if nilH.Count() != 0 {
		t.Fatal("nil histogram count")
	}
}

// TestLocalHistogramMergeInto pins the merge contract: N local
// histograms folded into one registry histogram in any order produce
// exactly the registry histogram that observed every value directly.
func TestLocalHistogramMergeInto(t *testing.T) {
	bounds := []int64{1, 5, 25}
	reg := NewRegistry()
	direct := reg.Histogram("direct", bounds)
	merged := reg.Histogram("merged", bounds)

	locals := []*LocalHistogram{
		NewLocalHistogram(bounds),
		NewLocalHistogram(bounds),
		NewLocalHistogram(bounds),
	}
	vals := [][]int64{{0, 3, 7}, {26, 26, 1}, {5, 100}}
	for i, vs := range vals {
		for _, v := range vs {
			locals[i].Observe(v)
			direct.Observe(v)
		}
	}
	// Merge in reverse order: sums are commutative.
	for i := len(locals) - 1; i >= 0; i-- {
		locals[i].MergeInto(merged)
	}
	snap := reg.Snapshot()
	if !reflect.DeepEqual(snap.Histograms["direct"], snap.Histograms["merged"]) {
		t.Fatalf("merge diverged from direct observation:\n%+v\n%+v",
			snap.Histograms["direct"], snap.Histograms["merged"])
	}

	// Nil destination and nil receiver are no-ops.
	locals[0].MergeInto(nil)
	var nilH *LocalHistogram
	nilH.MergeInto(merged)

	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-bounds merge did not panic")
		}
	}()
	locals[0].MergeInto(reg.Histogram("other", []int64{1, 2}))
}

func TestLocalHistogramRestore(t *testing.T) {
	bounds := []int64{2, 4}
	h := NewLocalHistogram(bounds)
	for _, v := range []int64{1, 3, 5, 7} {
		h.Observe(v)
	}
	snap := h.Snapshot()

	fresh := NewLocalHistogram(bounds)
	if !fresh.Restore(snap) {
		t.Fatal("Restore rejected a matching snapshot")
	}
	if !reflect.DeepEqual(fresh.Snapshot(), snap) {
		t.Fatalf("restored snapshot %+v, want %+v", fresh.Snapshot(), snap)
	}
	other := NewLocalHistogram([]int64{9})
	if other.Restore(snap) {
		t.Fatal("Restore accepted mismatched bounds")
	}
}

// TestLocalHistogramObserveAllocs is the runtime half of Observe's
// //repro:hotpath annotation.
func TestLocalHistogramObserveAllocs(t *testing.T) {
	h := NewLocalHistogram([]int64{1, 10, 100, 1000})
	allocs := testing.AllocsPerRun(200, func() {
		for v := int64(0); v < 50; v++ {
			h.Observe(v * 37 % 2000)
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f objects, want 0", allocs)
	}
}
