package obs

import (
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler returns the live inspection endpoint for a hub:
//
//	/metrics        deterministic snapshot of the metrics registry —
//	                JSON by default, Prometheus text exposition when the
//	                request asks for it (?format=prometheus, or an
//	                Accept header naming text/plain or openmetrics)
//	/debug/flight   decision-provenance dump (flight ring + metrics)
//	/healthz        liveness probe ("ok")
//	/debug/pprof/*  net/http/pprof profiles
//
// The handler is read-only and safe to serve while simulations run. A nil
// hub (or nil registry) serves an empty snapshot.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var reg *Registry
		if h != nil {
			reg = h.Metrics
		}
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", PromContentType)
			_ = reg.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteJSON(w); err != nil {
			// The header is already out; nothing to do but drop the
			// connection, which WriteJSON's error already implies.
			return
		}
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = h.Dump().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// wantsPrometheus decides the /metrics representation. JSON stays the
// default (the obs-smoke golden and existing tooling diff it); scrapers
// opt in explicitly via ?format=prometheus or an Accept header naming a
// text exposition format.
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}
