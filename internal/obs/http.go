package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns the live inspection endpoint for a hub:
//
//	/metrics        deterministic JSON snapshot of the metrics registry
//	/healthz        liveness probe ("ok")
//	/debug/pprof/*  net/http/pprof profiles
//
// The handler is read-only and safe to serve while simulations run. A nil
// hub (or nil registry) serves an empty snapshot.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var reg *Registry
		if h != nil {
			reg = h.Metrics
		}
		if err := reg.WriteJSON(w); err != nil {
			// The header is already out; nothing to do but drop the
			// connection, which WriteJSON's error already implies.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
