package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus writes the registry state in Prometheus text
// exposition format 0.0.4, the content type PromContentType declares.
// Families are emitted counters-first, then gauges, then histograms,
// each name-sorted, so identical metric states produce identical bytes
// — the same golden-diff contract as the JSON snapshot. Metric names
// come from MetricName or string literals and are already restricted to
// [a-z0-9_], which is valid Prometheus syntax as-is.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b bytes.Buffer
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", name, strconv.FormatInt(bound, 10), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}
	if _, err := w.Write(b.Bytes()); err != nil {
		return fmt.Errorf("obs: write prometheus exposition: %w", err)
	}
	return nil
}

// PromContentType is the Content-Type for WritePrometheus output.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// sortedKeys returns a map's keys in ascending order — exposition
// iterates maps only through it (deterministic output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
