package obs

import (
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is the reference implementation the bucket walk must
// match: discretize every observation to its bucket's upper bound
// (saturating past the last bound), sort, and pick the ceil(p*n)-th
// element.
func refQuantile(bounds []int64, values []int64, p float64) int64 {
	if len(values) == 0 || len(bounds) == 0 {
		return 0
	}
	disc := make([]int64, len(values))
	for i, v := range values {
		b := bounds[len(bounds)-1]
		for _, bound := range bounds {
			if v <= bound {
				b = bound
				break
			}
		}
		disc[i] = b
	}
	sort.Slice(disc, func(i, j int) bool { return disc[i] < disc[j] })
	rank := int(float64(len(disc)) * p)
	if float64(rank) < float64(len(disc))*p {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(disc) {
		rank = len(disc)
	}
	return disc[rank-1]
}

func TestQuantileAgainstReferenceSort(t *testing.T) {
	bounds := []int64{1, 5, 10, 50, 100, 500}
	quantiles := []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0}

	// Deterministic pseudo-random workloads: uniform, skewed-low, and
	// all-overflow.
	rng := rand.New(rand.NewSource(42))
	workloads := [][]int64{
		{}, {3}, {1000}, {0, 0, 0, 0},
	}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			switch trial % 3 {
			case 0:
				vals[i] = int64(rng.Intn(600))
			case 1:
				vals[i] = int64(rng.Intn(8))
			default:
				vals[i] = 500 + int64(rng.Intn(100))
			}
		}
		workloads = append(workloads, vals)
	}

	for wi, vals := range workloads {
		h := NewLocalHistogram(bounds)
		for _, v := range vals {
			h.Observe(v)
		}
		for _, p := range quantiles {
			want := refQuantile(bounds, vals, p)
			if got := h.Quantile(p); got != want {
				t.Fatalf("workload %d (%d values) Quantile(%v) = %d, want %d",
					wi, len(vals), p, got, want)
			}
			if got := h.Snapshot().Quantile(p); got != want {
				t.Fatalf("workload %d snapshot Quantile(%v) = %d, want %d", wi, p, got, want)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *LocalHistogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile")
	}
	empty := NewLocalHistogram([]int64{1, 2})
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile")
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("zero snapshot quantile")
	}

	h := NewLocalHistogram([]int64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(99) // overflow saturates to the last bound
	if got := h.Quantile(1.0); got != 20 {
		t.Fatalf("overflow quantile = %d, want 20 (saturated)", got)
	}
	if got := h.Quantile(0.0001); got != 10 {
		t.Fatalf("tiny-p quantile = %d, want 10 (rank clamps to 1)", got)
	}
}

// TestSnapshotQuantiles pins the p50/p90/p99 fields the registry
// snapshot derives.
func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{1, 10, 100})
	for v := int64(0); v < 100; v++ {
		h.Observe(v) // 2 in <=1, 9 in <=10, 89 in <=100
	}
	s := r.Snapshot().Histograms["lat"]
	if s.P50 != 100 || s.P90 != 100 || s.P99 != 100 {
		t.Fatalf("quantiles = p50 %d p90 %d p99 %d", s.P50, s.P90, s.P99)
	}
	low := r.Histogram("low", []int64{1, 10, 100})
	for i := 0; i < 95; i++ {
		low.Observe(0)
	}
	for i := 0; i < 5; i++ {
		low.Observe(50)
	}
	ls := r.Snapshot().Histograms["low"]
	if ls.P50 != 1 || ls.P90 != 1 || ls.P99 != 100 {
		t.Fatalf("quantiles = p50 %d p90 %d p99 %d, want 1/1/100", ls.P50, ls.P90, ls.P99)
	}
}
