// Package obs is the deterministic observability layer: a metrics
// registry, span-based tracing, and a live inspection endpoint.
//
// The paper's method rests on measuring shared-GPU behaviour (Nsight
// timelines, nvidia-smi counters); this package is the reproduction's own
// measurement substrate. It is built under the same reproducibility
// contract as the simulator it observes (DESIGN.md §7/§10):
//
//   - Metric values are integers only. Counters and histogram bucket
//     counts are commutative sums, and gauges expose explicit
//     last-write/high-water semantics, so totals do not depend on worker
//     interleaving and the JSON snapshot is byte-identical across runs
//     and across -j worker counts.
//   - The snapshot contains no wall-clock-derived fields by construction:
//     the package does not import a clock. Wall time exists only in span
//     records, fed by an injected clock (set by the CLIs, which live
//     outside the nodeterminism analyzer scope), and spans are exported
//     to Chrome traces — never into /metrics.
//   - Everything is nil-safe: a nil *Registry, *Counter, *Gauge,
//     *Histogram, *SpanRecorder or *Hub is a no-op, so instrumented hot
//     paths pay one predictable branch when telemetry is disabled and
//     allocate nothing.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing sum. All operations on a nil
// Counter are no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current sum.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value. Set is last-write-wins (only
// deterministic from single-threaded contexts); SetMax is a commutative
// high-water update safe from any interleaving. All operations on a nil
// Gauge are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger (high-water mark). The
// update is commutative, so concurrent writers converge to the same value
// regardless of order.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add increments the gauge by delta (for resident counts).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts integer observations into fixed buckets. Bucket i
// counts observations v <= Bounds[i]; one implicit overflow bucket counts
// the rest. Count and Sum are integer totals, so every field of a
// histogram is a commutative sum and snapshots are interleaving-
// independent. All operations on a nil Histogram are no-ops.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is the exported state of a histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive bucket upper bounds; Counts has one extra
	// trailing overflow bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	// P50/P90/P99 are exact bucket-walk quantiles (see
	// LocalHistogram.Quantile): the upper bound of the bucket holding
	// the ceil(p*count)-th observation. Derived on snapshot; Restore
	// ignores them.
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
}

// Quantile recomputes the p-quantile from the snapshot's buckets, with
// LocalHistogram.Quantile's exact semantics. The CLIs use it to derive
// additional quantiles from a saved dump.
func (s HistogramSnapshot) Quantile(p float64) int64 {
	return bucketQuantile(s.Bounds, s.Counts, s.Count, p)
}

// Registry is a named collection of counters, gauges and histograms.
// Metric handles are created on first use and live for the registry's
// lifetime. A Registry is safe for concurrent use; a nil *Registry
// returns nil handles, which are themselves no-ops.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given inclusive upper bounds if needed. Bounds must be sorted
// ascending; an existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry. Maps
// marshal with sorted keys (encoding/json), and every value is an
// integer, so identical metric states produce identical bytes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current state of every metric. A nil registry
// yields an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		hs.P50 = hs.Quantile(0.50)
		hs.P90 = hs.Quantile(0.90)
		hs.P99 = hs.Quantile(0.99)
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline.
// The bytes are a pure function of the metric state: sorted keys, integer
// values, no timestamps.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: write snapshot: %w", err)
	}
	return nil
}
