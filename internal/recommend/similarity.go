package recommend

import (
	"fmt"
	"math"
	"sort"

	"gpushare/internal/profile"
)

// Kernel similarity (§VI): workloads whose kernels stress the same
// resources in the same proportions behave alike under collocation, so
// one member of a similarity cluster can stand in for the others in
// pairwise analysis — cutting the offline campaign from O(n²) to
// O(clusters²).

// featureVector embeds a profile in the resource-demand space the
// interference model cares about. Components are normalized to [0, 1].
func featureVector(p *profile.TaskProfile) []float64 {
	return []float64{
		p.AvgSMUtilPct / 100,
		p.AvgBWUtilPct / 100,
		p.AchievedOccPct / 100,
		p.TheoreticalOccPct / 100,
		1 - p.GPUIdlePct/100,
		math.Min(1, p.AvgPowerW/400),
	}
}

// KernelSimilarity returns the cosine similarity of two profiles'
// resource-demand vectors, in [0, 1] (all components are non-negative).
// 1 means the workloads stress resources in identical proportions.
func KernelSimilarity(a, b *profile.TaskProfile) float64 {
	if a == nil || b == nil {
		return 0
	}
	va, vb := featureVector(a), featureVector(b)
	var dot, na, nb float64
	for i := range va {
		dot += va[i] * vb[i]
		na += va[i] * va[i]
		nb += vb[i] * vb[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Cluster groups profiles whose pairwise similarity is at least
// threshold, greedily in key order (deterministic). Each cluster's first
// member is its representative.
type Cluster struct {
	Representative *profile.TaskProfile
	Members        []*profile.TaskProfile
}

// ClusterProfiles builds similarity clusters at the given threshold
// (sensible values are 0.95-0.995; higher means more, tighter clusters).
func ClusterProfiles(profiles []*profile.TaskProfile, threshold float64) ([]Cluster, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("recommend: similarity threshold must be in (0,1], got %g", threshold)
	}
	sorted := make([]*profile.TaskProfile, len(profiles))
	copy(sorted, profiles)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key() < sorted[j].Key() })

	var clusters []Cluster
	for _, p := range sorted {
		placed := false
		for i := range clusters {
			if KernelSimilarity(clusters[i].Representative, p) >= threshold {
				clusters[i].Members = append(clusters[i].Members, p)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, Cluster{Representative: p, Members: []*profile.TaskProfile{p}})
		}
	}
	return clusters, nil
}

// AnalysisPlan lists the pairwise analyses an offline campaign needs when
// similarity clustering stands representatives in for members: one entry
// per unordered representative pair (including self-pairs).
func AnalysisPlan(clusters []Cluster) [][2]*profile.TaskProfile {
	var out [][2]*profile.TaskProfile
	for i := 0; i < len(clusters); i++ {
		for j := i; j < len(clusters); j++ {
			out = append(out, [2]*profile.TaskProfile{
				clusters[i].Representative, clusters[j].Representative,
			})
		}
	}
	return out
}
