// Package recommend implements the scheduling model the paper describes
// as future work (§VI): "a model that takes into account different types
// of GPU interference between workflows — e.g., compute, memory, memory
// bandwidth — and recommends the best workflow combinations to optimize
// either throughput or energy efficiency", plus "a measure of
// computational kernel similarity between workflows to minimize offline
// analysis of all possible combinations".
//
// The predictor is analytic — it consumes only offline profiles, never
// the simulator — and mirrors the execution physics at workflow
// granularity: capacity sharing of compute and bandwidth, idle-power
// amortization, and power-cap throttling. Its fidelity is validated
// against simulation in the package tests (rank agreement over candidate
// pairs).
package recommend

import (
	"fmt"
	"math"
	"sort"

	"gpushare/internal/gpu"
	"gpushare/internal/interference"
	"gpushare/internal/profile"
)

// PairPrediction is the model's estimate for co-scheduling two profiled
// tasks as MPS clients.
type PairPrediction struct {
	A, B *profile.TaskProfile
	// Throughput and EnergyEfficiency are predicted relative to
	// sequential scheduling (the paper's metrics).
	Throughput       float64
	EnergyEfficiency float64
	// PredictedCapped reports whether the model expects SW power capping
	// during overlap.
	PredictedCapped bool
	// Estimate carries the rule-based interference verdict.
	Estimate interference.Estimate
}

// Key identifies the pair deterministically.
func (p PairPrediction) Key() string { return p.A.Key() + " + " + p.B.Key() }

// PredictPair runs the analytic model for two profiles on a device.
func PredictPair(device gpu.DeviceSpec, a, b *profile.TaskProfile) (PairPrediction, error) {
	if a == nil || b == nil {
		return PairPrediction{}, fmt.Errorf("recommend: nil profile")
	}
	if a.DurationS <= 0 || b.DurationS <= 0 {
		return PairPrediction{}, fmt.Errorf("recommend: profiles need positive durations")
	}
	pred := PairPrediction{A: a, B: b}
	pred.Estimate = interference.Predict(device, []*profile.TaskProfile{a, b})

	// Memory-capacity violations cannot run at all: predicted as
	// sequential (the scheduler would never launch them together).
	if pred.Estimate.Has(interference.Capacity) {
		pred.Throughput = 1
		pred.EnergyEfficiency = 1
		return pred, nil
	}

	short, long := a, b
	if short.DurationS > long.DurationS {
		short, long = long, short
	}
	overlap := short.DurationS
	tail := long.DurationS - short.DurationS

	// Compute and bandwidth dilation during overlap: aggregate
	// time-averaged demand over the device, shared proportionally.
	cSum := (a.AvgSMUtilPct + b.AvgSMUtilPct) / 100
	bSum := (a.AvgBWUtilPct + b.AvgBWUtilPct) / 100
	dilation := math.Max(1, math.Max(cSum, bSum))

	// Power model during overlap: capping is a burst-level phenomenon —
	// it hits when both workflows' kernels are simultaneously resident
	// (probability dutyA×dutyB under independent phases), drawing their
	// active dynamic powers scaled by the shared-capacity rate.
	dynA := activeDynW(device, a)
	dynB := activeDynW(device, b)
	dutyA := duty(a)
	dutyB := duty(b)
	cA := a.AvgSMUtilPct / 100 / dutyA
	cB := b.AvgSMUtilPct / 100 / dutyB
	// Effective shared capacity mirrors the engine's latency-hiding
	// bonus at its default setting.
	const capacityBonus = 1.1
	burstRate := math.Min(1, capacityBonus/(cA+cB))
	peakDemand := (dynA + dynB) * burstRate
	budget := device.PowerLimitW - device.IdlePowerW
	throttle := 1.0
	if peakDemand > budget*0.97 { // small margin: burst jitter spills over
		pred.PredictedCapped = true
		excess := math.Max(0, peakDemand/budget-1)
		// Throttling dilates only the doubly-active slices of the
		// overlap window.
		throttle = 1 + dutyA*dutyB*excess
	}

	makespan := overlap*dilation*throttle + tail
	seqMakespan := a.DurationS + b.DurationS
	pred.Throughput = seqMakespan / makespan

	// Energy: dynamic work is conserved (the same joules of computation
	// happen), idle power stops double-counting during overlap.
	seqEnergy := a.EnergyJ + b.EnergyJ
	dynEnergy := (a.EnergyJ - device.IdlePowerW*a.DurationS) +
		(b.EnergyJ - device.IdlePowerW*b.DurationS)
	mpsEnergy := device.IdlePowerW*makespan + dynEnergy
	if mpsEnergy <= 0 {
		return PairPrediction{}, fmt.Errorf("recommend: degenerate energy prediction")
	}
	pred.EnergyEfficiency = seqEnergy / mpsEnergy
	return pred, nil
}

func duty(p *profile.TaskProfile) float64 {
	d := 1 - p.GPUIdlePct/100
	if d < 0.05 {
		d = 0.05
	}
	if d > 1 {
		d = 1
	}
	return d
}

func activeDynW(device gpu.DeviceSpec, p *profile.TaskProfile) float64 {
	dyn := (p.AvgPowerW - device.IdlePowerW) / duty(p)
	if dyn < 0 {
		dyn = 0
	}
	return dyn
}

// Objective selects the ranking metric.
type Objective int

const (
	// ByThroughput ranks by predicted throughput.
	ByThroughput Objective = iota
	// ByEnergyEfficiency ranks by predicted efficiency.
	ByEnergyEfficiency
	// ByProduct ranks by predicted T×E.
	ByProduct
)

func (o Objective) score(p PairPrediction) float64 {
	switch o {
	case ByThroughput:
		return p.Throughput
	case ByEnergyEfficiency:
		return p.EnergyEfficiency
	default:
		return p.Throughput * p.EnergyEfficiency
	}
}

// Recommend ranks all feasible pairs from the profile set by the
// objective, best first. Pairs violating the paper's hard rules are
// excluded unless includeInterfering is set (capacity violations are
// always excluded). Self-pairs (two instances of the same task) are
// included — the paper's Figures 4/5 are exactly that case.
func Recommend(device gpu.DeviceSpec, profiles []*profile.TaskProfile, obj Objective, includeInterfering bool) ([]PairPrediction, error) {
	sorted := make([]*profile.TaskProfile, len(profiles))
	copy(sorted, profiles)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key() < sorted[j].Key() })

	var out []PairPrediction
	for i := 0; i < len(sorted); i++ {
		for j := i; j < len(sorted); j++ {
			p, err := PredictPair(device, sorted[i], sorted[j])
			if err != nil {
				return nil, err
			}
			if p.Estimate.Has(interference.Capacity) {
				continue
			}
			if p.Estimate.Interferes && !includeInterfering {
				continue
			}
			out = append(out, p)
		}
	}
	obj2 := obj
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := obj2.score(out[i]), obj2.score(out[j])
		if si != sj {
			return si > sj
		}
		return out[i].Key() < out[j].Key()
	})
	return out, nil
}
