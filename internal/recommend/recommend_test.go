package recommend

import (
	"math"
	"sort"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/interference"
	"gpushare/internal/metrics"
	"gpushare/internal/profile"
	"gpushare/internal/workload"
)

func a100x() gpu.DeviceSpec { return gpu.MustLookup("A100X") }

func suiteProfiles(t *testing.T) []*profile.TaskProfile {
	t.Helper()
	pr := &profile.Profiler{Config: gpusim.Config{Seed: 1}}
	store, err := pr.ProfileSuite([]string{"4x"})
	if err != nil {
		t.Fatal(err)
	}
	return store.All()
}

func getProfile(t *testing.T, ps []*profile.TaskProfile, name string) *profile.TaskProfile {
	t.Helper()
	for _, p := range ps {
		if p.Workload == name {
			return p
		}
	}
	t.Fatalf("profile %s missing", name)
	return nil
}

func TestPredictPairLowUtil(t *testing.T) {
	ps := suiteProfiles(t)
	ath := getProfile(t, ps, "AthenaPK")
	pred, err := PredictPair(a100x(), ath, ath)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Throughput < 1.5 || pred.Throughput > 2.05 {
		t.Errorf("AthenaPK self-pair predicted %vx, want ≈1.9x", pred.Throughput)
	}
	if pred.EnergyEfficiency < 1.2 {
		t.Errorf("AthenaPK self-pair efficiency %v", pred.EnergyEfficiency)
	}
}

func TestPredictPairHighUtil(t *testing.T) {
	ps := suiteProfiles(t)
	lam := getProfile(t, ps, "LAMMPS")
	pred, err := PredictPair(a100x(), lam, lam)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Throughput > 1.2 {
		t.Errorf("LAMMPS self-pair predicted %vx, want near parity", pred.Throughput)
	}
}

func TestPredictPairCapacityViolation(t *testing.T) {
	ps := suiteProfiles(t)
	wx := getProfile(t, ps, "WarpX")
	pred, err := PredictPair(a100x(), wx, wx)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Estimate.Has(interference.Capacity) {
		t.Fatal("WarpX self-pair should violate capacity")
	}
	if pred.Throughput != 1 || pred.EnergyEfficiency != 1 {
		t.Fatalf("capacity-violating pair must predict sequential: %+v", pred)
	}
}

func TestPredictPairCapping(t *testing.T) {
	ps := suiteProfiles(t)
	mhd := getProfile(t, ps, "Cholla-MHD")
	lam := getProfile(t, ps, "LAMMPS")
	pred, err := PredictPair(a100x(), mhd, lam)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.PredictedCapped {
		t.Error("MHD+LAMMPS should be predicted to cap")
	}
}

func TestPredictPairValidation(t *testing.T) {
	ps := suiteProfiles(t)
	if _, err := PredictPair(a100x(), nil, ps[0]); err == nil {
		t.Fatal("nil profile accepted")
	}
	bad := *ps[0]
	bad.DurationS = 0
	if _, err := PredictPair(a100x(), &bad, ps[0]); err == nil {
		t.Fatal("zero duration accepted")
	}
}

// TestPredictionsTrackSimulation validates the analytic model against the
// simulator: over candidate pairs, predicted and simulated throughput
// must agree in rank (the model's job is choosing combinations, not
// absolute accuracy).
func TestPredictionsTrackSimulation(t *testing.T) {
	ps := suiteProfiles(t)
	dev := a100x()
	pairs := [][2]string{
		{"AthenaPK", "AthenaPK"},
		{"AthenaPK", "Kripke"},
		{"AthenaPK", "LAMMPS"},
		{"Kripke", "Cholla-Gravity"},
		{"LAMMPS", "LAMMPS"},
		{"Cholla-MHD", "LAMMPS"},
	}
	var predicted, simulated []float64
	for _, pair := range pairs {
		a := getProfile(t, ps, pair[0])
		b := getProfile(t, ps, pair[1])
		pred, err := PredictPair(dev, a, b)
		if err != nil {
			t.Fatal(err)
		}
		predicted = append(predicted, pred.Throughput)

		ta, err := workload.MustGet(pair[0]).BuildTaskSpec("4x", dev)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := workload.MustGet(pair[1]).BuildTaskSpec("4x", dev)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := gpusim.RunSequential(gpusim.Config{Seed: 3}, []*workload.TaskSpec{ta, tb})
		if err != nil {
			t.Fatal(err)
		}
		mps, err := gpusim.RunClients(gpusim.Config{Seed: 3, Mode: gpusim.ShareMPS}, []gpusim.Client{
			{ID: "a", Tasks: []*workload.TaskSpec{ta}},
			{ID: "b", Tasks: []*workload.TaskSpec{tb}},
		})
		if err != nil {
			t.Fatal(err)
		}
		rel, err := metrics.Compare(metrics.Summarize(seq), metrics.Summarize(mps))
		if err != nil {
			t.Fatal(err)
		}
		simulated = append(simulated, rel.Throughput)
	}
	if rho := spearman(predicted, simulated); rho < 0.7 {
		t.Fatalf("prediction/simulation rank correlation %.2f too low\npred: %v\nsim:  %v",
			rho, predicted, simulated)
	}
	// Absolute agreement within 25% on every pair.
	for i := range predicted {
		if rel := math.Abs(predicted[i]-simulated[i]) / simulated[i]; rel > 0.25 {
			t.Errorf("pair %v: predicted %.2f vs simulated %.2f", pairs[i], predicted[i], simulated[i])
		}
	}
}

// spearman computes the rank correlation of two equal-length series.
func spearman(x, y []float64) float64 {
	rx, ry := ranks(x), ranks(y)
	n := float64(len(x))
	var d2 float64
	for i := range rx {
		d := rx[i] - ry[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, len(v))
	for rank, i := range idx {
		out[i] = float64(rank)
	}
	return out
}

func TestRecommendOrdering(t *testing.T) {
	ps := suiteProfiles(t)
	recs, err := Recommend(a100x(), ps, ByThroughput, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Throughput > recs[i-1].Throughput+1e-9 {
			t.Fatal("recommendations not sorted by throughput")
		}
	}
	// Rule-violating pairs are excluded by default.
	for _, r := range recs {
		if r.Estimate.Interferes {
			t.Fatalf("interfering pair recommended: %s", r.Key())
		}
	}
	// The top recommendation involves a low-utilization workload.
	top := recs[0]
	if top.A.Workload != "AthenaPK" && top.B.Workload != "AthenaPK" {
		t.Errorf("top recommendation %s should involve the lowest-util workload", top.Key())
	}
	// includeInterfering widens the candidate set.
	all, err := Recommend(a100x(), ps, ByThroughput, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= len(recs) {
		t.Fatal("includeInterfering did not widen the set")
	}
	// Capacity violations stay excluded even then.
	for _, r := range all {
		if r.Estimate.Has(interference.Capacity) {
			t.Fatalf("capacity-violating pair recommended: %s", r.Key())
		}
	}
}

func TestRecommendDeterministic(t *testing.T) {
	ps := suiteProfiles(t)
	a, _ := Recommend(a100x(), ps, ByProduct, false)
	b, _ := Recommend(a100x(), ps, ByProduct, false)
	if len(a) != len(b) {
		t.Fatal("nondeterministic recommendation count")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatal("nondeterministic recommendation order")
		}
	}
}

func TestKernelSimilarity(t *testing.T) {
	ps := suiteProfiles(t)
	lam := getProfile(t, ps, "LAMMPS")
	ath := getProfile(t, ps, "AthenaPK")
	mhd := getProfile(t, ps, "Cholla-MHD")

	if s := KernelSimilarity(lam, lam); math.Abs(s-1) > 1e-9 {
		t.Fatalf("self-similarity = %v", s)
	}
	if s1, s2 := KernelSimilarity(lam, ath), KernelSimilarity(ath, lam); s1 != s2 {
		t.Fatal("similarity not symmetric")
	}
	for _, pair := range [][2]*profile.TaskProfile{{lam, ath}, {lam, mhd}, {ath, mhd}} {
		s := KernelSimilarity(pair[0], pair[1])
		if s < 0 || s > 1 {
			t.Fatalf("similarity out of range: %v", s)
		}
	}
	// A compute-dense pair (LAMMPS vs Kripke) is more alike than LAMMPS
	// vs the bandwidth-heavy MHD in the bandwidth dimension; at minimum,
	// distinct workloads are less similar than identical ones.
	if KernelSimilarity(lam, ath) >= 1 {
		t.Fatal("distinct workloads fully similar")
	}
	if KernelSimilarity(nil, lam) != 0 {
		t.Fatal("nil similarity not 0")
	}
}

func TestClusterProfiles(t *testing.T) {
	ps := suiteProfiles(t)
	clusters, err := ClusterProfiles(ps, 0.995)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range clusters {
		if len(c.Members) == 0 || c.Representative == nil {
			t.Fatal("empty cluster")
		}
		total += len(c.Members)
	}
	if total != len(ps) {
		t.Fatalf("clusters cover %d of %d profiles", total, len(ps))
	}
	// A loose threshold merges more.
	loose, _ := ClusterProfiles(ps, 0.9)
	if len(loose) > len(clusters) {
		t.Fatal("looser threshold produced more clusters")
	}
	// The analysis plan shrinks quadratically with clustering.
	plan := AnalysisPlan(loose)
	full := len(ps) * (len(ps) + 1) / 2
	if len(plan) >= full {
		t.Fatalf("analysis plan %d not smaller than full %d", len(plan), full)
	}
	if _, err := ClusterProfiles(ps, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
}
