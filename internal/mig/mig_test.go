package mig

import (
	"math"
	"strings"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/workload"
)

func a100x() gpu.DeviceSpec { return gpu.MustLookup("A100X") }

func task(t *testing.T, bench, size string) *workload.TaskSpec {
	t.Helper()
	ts, err := workload.MustGet(bench).BuildTaskSpec(size, a100x())
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("profiles = %d", len(ps))
	}
	var sliceSum int
	for _, p := range ps {
		if p.Fraction() <= 0 || p.Fraction() > 1 {
			t.Errorf("%s fraction %v", p.Name, p.Fraction())
		}
		sliceSum += p.Slices
	}
	full, err := ProfileByName("7g.80gb")
	if err != nil || full.Fraction() != 1 || full.MemFraction != 1 {
		t.Fatalf("7g.80gb: %+v, %v", full, err)
	}
	if _, err := ProfileByName("9g.90gb"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestInstanceSpec(t *testing.T) {
	dev := a100x()
	p, _ := ProfileByName("3g.40gb")
	inst := p.InstanceSpec(dev)
	if inst.SMCount != 46 { // 108 × 3/7 ≈ 46.3 → 46
		t.Fatalf("instance SMs = %d", inst.SMCount)
	}
	if inst.MemoryMiB != dev.MemoryMiB/2 {
		t.Fatalf("instance mem = %d", inst.MemoryMiB)
	}
	if inst.MIGCapable {
		t.Fatal("instance must not be MIG-capable")
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("instance spec invalid: %v", err)
	}
	// Power envelope is apportioned.
	if inst.PowerLimitW >= dev.PowerLimitW || inst.IdlePowerW >= dev.IdlePowerW {
		t.Fatal("instance power not apportioned")
	}
}

func TestNewPartitionRules(t *testing.T) {
	dev := a100x()
	g3, _ := ProfileByName("3g.40gb")
	g4, _ := ProfileByName("4g.40gb")
	g7, _ := ProfileByName("7g.80gb")
	g1, _ := ProfileByName("1g.10gb")

	if _, err := NewPartition(dev, g4, g3); err != nil {
		t.Fatalf("4+3 rejected: %v", err)
	}
	if _, err := NewPartition(dev, g7, g1); err == nil {
		t.Fatal("8 slices accepted")
	}
	if _, err := NewPartition(dev, g4, g4); err == nil {
		t.Fatal("memory oversubscription accepted (4g+4g = 100% mem but 8 slices)")
	}
	if _, err := NewPartition(dev); err == nil {
		t.Fatal("empty partition accepted")
	}
	v100 := gpu.MustLookup("V100-SXM2-32GB")
	if _, err := NewPartition(v100, g1); err == nil {
		t.Fatal("non-MIG device accepted")
	}
	// Instances come back largest-first.
	part, _ := NewPartition(dev, g3, g4)
	if part.Instances[0].Slices != 4 {
		t.Fatal("instances not sorted largest-first")
	}
	if part.UsedSlices() != 7 || part.UnusedFraction() != 0 {
		t.Fatalf("slices %d unused %v", part.UsedSlices(), part.UnusedFraction())
	}
}

func TestEnumeratePartitions(t *testing.T) {
	parts := EnumeratePartitions(a100x(), 2)
	if len(parts) == 0 {
		t.Fatal("no partitions enumerated")
	}
	seen := map[string]bool{}
	for _, p := range parts {
		if len(p.Instances) > 2 {
			t.Fatalf("partition with %d instances", len(p.Instances))
		}
		if p.UsedSlices() > 7 {
			t.Fatal("slice budget violated")
		}
		var names []string
		for _, in := range p.Instances {
			names = append(names, in.Name)
		}
		key := strings.Join(names, "+")
		if seen[key] {
			t.Fatalf("duplicate partition %s", key)
		}
		seen[key] = true
	}
	// The canonical pairs must be present.
	for _, want := range []string{"7g.80gb", "4g.40gb+3g.40gb", "3g.40gb+3g.40gb"} {
		if !seen[want] {
			t.Errorf("missing partition %s (have %v)", want, keys(seen))
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestRetargetTaskDilates(t *testing.T) {
	ts := task(t, "LAMMPS", "4x") // saturation ≈ 0.99
	half, _ := ProfileByName("3g.40gb")
	rt, err := RetargetTask(ts, half)
	if err != nil {
		t.Fatal(err)
	}
	// A saturating task on a 3/7 instance dilates by ≈ 7/3 × saturation.
	ratio := rt.SoloDuration.Seconds() / ts.SoloDuration.Seconds()
	if ratio < 1.8 || ratio > 2.5 {
		t.Fatalf("dilation %v, want ≈ 2.3", ratio)
	}
	// Demands are re-expressed against the instance.
	if rt.Agg.Compute < 0.99 {
		t.Fatalf("instance-relative compute %v, want ≈1", rt.Agg.Compute)
	}
	// Gaps are host time: unchanged.
	if rt.Phases[0].GapAfter != ts.Phases[0].GapAfter {
		t.Fatal("gap changed")
	}
	// Power drops with the achieved rate.
	if rt.Phases[0].DynPowerW >= ts.Phases[0].DynPowerW {
		t.Fatal("dynamic power did not scale down")
	}
}

func TestRetargetTaskLowDemandUnchanged(t *testing.T) {
	ts := task(t, "AthenaPK", "1x") // saturation ≈ 0.35
	half, _ := ProfileByName("4g.40gb")
	rt, err := RetargetTask(ts, half)
	if err != nil {
		t.Fatal(err)
	}
	// Saturation 0.35 < 4/7: no dilation.
	if math.Abs(rt.SoloDuration.Seconds()-ts.SoloDuration.Seconds()) > 1e-6 {
		t.Fatalf("low-demand task dilated: %v vs %v", rt.SoloDuration, ts.SoloDuration)
	}
	if _, err := RetargetTask(nil, half); err == nil {
		t.Fatal("nil task accepted")
	}
}

func TestRunIsolation(t *testing.T) {
	// MHD and LAMMPS on separate instances: fully isolated — no shared
	// power capping, no contention; each dilated by its partition only.
	dev := a100x()
	g4, _ := ProfileByName("4g.40gb")
	g3, _ := ProfileByName("3g.40gb")
	part, err := NewPartition(dev, g4, g3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(gpusim.Config{Device: dev, Seed: 1}, part, [][]Tenant{
		{{ID: "lam", Tasks: []*workload.TaskSpec{task(t, "LAMMPS", "4x")}}},
		{{ID: "mhd", Tasks: []*workload.TaskSpec{task(t, "Cholla-MHD", "4x")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 2 {
		t.Fatalf("tasks = %d", res.Tasks)
	}
	if len(res.Instances) != 2 {
		t.Fatalf("instances = %d", len(res.Instances))
	}
	// Makespan is the slower (dilated MHD on 3 slices) instance.
	if res.Makespan.Seconds() < 486*7.0/3*0.9*0.9 {
		t.Fatalf("makespan %v too short for a 3-slice MHD", res.Makespan)
	}
	sum := res.Summary()
	if sum.Tasks != 2 || sum.EnergyJ <= 0 {
		t.Fatalf("summary: %+v", sum)
	}
}

func TestRunOOMOnInstance(t *testing.T) {
	// WarpX (61 GiB) cannot run on a 40 GiB instance.
	dev := a100x()
	g4, _ := ProfileByName("4g.40gb")
	part, err := NewPartition(dev, g4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(gpusim.Config{Device: dev, Seed: 1}, part, [][]Tenant{
		{{ID: "w", Tasks: []*workload.TaskSpec{task(t, "WarpX", "1x")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 0 {
		t.Fatalf("WarpX completed on a 40 GiB instance: %d tasks", res.Tasks)
	}
}

func TestRunValidation(t *testing.T) {
	dev := a100x()
	g7, _ := ProfileByName("7g.80gb")
	part, _ := NewPartition(dev, g7)
	if _, err := Run(gpusim.Config{Device: dev}, nil, nil); err == nil {
		t.Fatal("nil partition accepted")
	}
	if _, err := Run(gpusim.Config{Device: dev}, part, nil); err == nil {
		t.Fatal("mismatched tenant groups accepted")
	}
	if _, err := Run(gpusim.Config{}, part, [][]Tenant{{}}); err == nil {
		t.Fatal("missing device accepted")
	}
	if _, err := Run(gpusim.Config{Device: dev}, part, [][]Tenant{{}}); err == nil {
		t.Fatal("no tenants accepted")
	}
}

func TestBestFit(t *testing.T) {
	dev := a100x()
	flows := []Tenant{
		{ID: "heavy", Tasks: []*workload.TaskSpec{task(t, "Cholla-MHD", "4x")}},
		{ID: "light", Tasks: []*workload.TaskSpec{task(t, "AthenaPK", "1x")}},
	}
	part, tenants, err := BestFit(dev, flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Instances) != 2 || len(tenants) != 2 {
		t.Fatalf("partition: %+v", part)
	}
	// The heavy workflow lands on the larger instance.
	if tenants[0][0].ID != "heavy" {
		t.Fatalf("largest instance got %s", tenants[0][0].ID)
	}
	if part.Instances[0].Slices < part.Instances[1].Slices {
		t.Fatal("instances not largest-first")
	}
	// Infeasible: two WarpX tenants need 61 GiB each.
	_, _, err = BestFit(dev, []Tenant{
		{ID: "w1", Tasks: []*workload.TaskSpec{task(t, "WarpX", "1x")}},
		{ID: "w2", Tasks: []*workload.TaskSpec{task(t, "WarpX", "1x")}},
	})
	if err == nil {
		t.Fatal("infeasible placement accepted")
	}
	if _, _, err := BestFit(dev, nil); err == nil {
		t.Fatal("empty flows accepted")
	}
}

func TestMIGSoloMatchesFullDevice(t *testing.T) {
	// A 7g.80gb instance is the whole GPU: running there must match the
	// plain solo run.
	dev := a100x()
	g7, _ := ProfileByName("7g.80gb")
	part, _ := NewPartition(dev, g7)
	ts := task(t, "Kripke", "4x")
	res, err := Run(gpusim.Config{Device: dev, Seed: 1}, part, [][]Tenant{
		{{ID: "k", Tasks: []*workload.TaskSpec{ts}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := gpusim.RunSolo(gpusim.Config{Device: dev, Seed: 1}, ts)
	if err != nil {
		t.Fatal(err)
	}
	// Seeds differ per instance (cfg.Seed + i×7919, i=0 → same), so the
	// runs are directly comparable.
	if math.Abs(res.Makespan.Seconds()-solo.Makespan.Seconds())/solo.Makespan.Seconds() > 0.02 {
		t.Fatalf("7g instance %v vs full device %v", res.Makespan, solo.Makespan)
	}
}
