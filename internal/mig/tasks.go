package mig

import (
	"fmt"

	"gpushare/internal/simtime"
	"gpushare/internal/workload"
)

// RetargetTask maps a task calibrated on the full device onto a MIG
// instance of fraction f:
//
//   - Work dilates by max(1, saturation/f): a kernel whose resident
//     parallelism or compute demand needed more than the instance offers
//     runs proportionally longer (the same physics as an MPS partition of
//     the same size — MIG adds isolation, not speed).
//   - Demands are re-expressed relative to the instance: compute and
//     bandwidth fractions divide by f (clamped at 1), so the instance
//     looks saturated when the kernel uses its whole share.
//   - Active power scales with the achieved rate, bounded by the
//     instance's share of silicon.
//
// The instance's memory partition is enforced by the per-instance
// simulation (the task keeps its absolute footprint).
func RetargetTask(task *workload.TaskSpec, p Profile) (*workload.TaskSpec, error) {
	if task == nil {
		return nil, fmt.Errorf("mig: nil task")
	}
	f := p.Fraction()
	if f <= 0 || f > 1 {
		return nil, fmt.Errorf("mig: profile %s has invalid fraction %v", p.Name, f)
	}
	out := *task
	out.Phases = make([]workload.Phase, len(task.Phases))
	var total simtime.Duration
	for i, ph := range task.Phases {
		nd := ph.Demand
		dilation := 1.0
		if nd.Saturation > f {
			dilation = nd.Saturation / f
		}
		nd.Compute = clamp01(nd.Compute / f)
		nd.Bandwidth = clamp01(nd.Bandwidth / f)
		nd.SMFootprint = clamp01(nd.SMFootprint / f)
		nd.Fill = clamp01(nd.Fill / f)
		sat := nd.Fill
		if nd.Compute > sat {
			sat = nd.Compute
		}
		nd.Saturation = clamp01(sat)

		nph := ph
		nph.Demand = nd
		nph.ActiveWork = simtime.FromSeconds(ph.ActiveWork.Seconds() * dilation)
		// Achieved rate on the instance is 1/dilation of full speed, so
		// sustained dynamic power scales the same way (and can never
		// exceed the instance's silicon share).
		nph.DynPowerW = ph.DynPowerW / dilation
		if limit := ph.DynPowerW * f * 1.05; nph.DynPowerW > limit {
			nph.DynPowerW = limit
		}
		out.Phases[i] = nph
		total += nph.ActiveWork + nph.GapAfter
	}
	// Aggregate demand mirrors the per-phase rescale.
	agg := out.Agg
	agg.Compute = clamp01(agg.Compute / f)
	agg.Bandwidth = clamp01(agg.Bandwidth / f)
	agg.SMFootprint = clamp01(agg.SMFootprint / f)
	agg.Fill = clamp01(agg.Fill / f)
	sat := agg.Fill
	if agg.Compute > sat {
		sat = agg.Compute
	}
	agg.Saturation = clamp01(sat)
	out.Agg = agg
	out.SoloDuration = total * simtime.Duration(out.Cycles)
	return &out, nil
}

func clamp01(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}
