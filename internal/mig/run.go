package mig

import (
	"fmt"
	"sort"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/metrics"
	"gpushare/internal/simtime"
	"gpushare/internal/workload"
)

// Tenant is one process placed on a MIG instance. Tasks are full-device
// TaskSpecs; Run retargets them onto the instance.
type Tenant struct {
	ID    string
	Tasks []*workload.TaskSpec
}

// InstanceResult is one instance's isolated simulation outcome.
type InstanceResult struct {
	Profile Profile
	Result  *gpusim.Result
}

// Result aggregates a partitioned execution.
type Result struct {
	// Makespan is the slowest instance's makespan (instances run
	// concurrently and fully isolated).
	Makespan simtime.Duration
	// EnergyJ sums instance energies, instance idle tails, and the idle
	// power of unpartitioned slices over the makespan.
	EnergyJ float64
	// Tasks counts completed tasks across instances.
	Tasks int
	// CappedFraction is capped time over (makespan × instances).
	CappedFraction float64
	// Instances holds per-instance results in partition order.
	Instances []InstanceResult
}

// Summary converts to the metrics-layer view.
func (r *Result) Summary() metrics.RunSummary {
	avgPower := 0.0
	if r.Makespan > 0 {
		avgPower = r.EnergyJ / r.Makespan.Seconds()
	}
	return metrics.RunSummary{
		MakespanS:      r.Makespan.Seconds(),
		EnergyJ:        r.EnergyJ,
		Tasks:          r.Tasks,
		CappedFraction: r.CappedFraction,
		AvgPowerW:      avgPower,
	}
}

// Run executes tenants[i] on partition.Instances[i], each instance as a
// fully isolated simulation on its derived device spec — MIG's defining
// property ("complete partitioning of memory and compute resources").
func Run(cfg gpusim.Config, partition *Partition, tenants [][]Tenant) (*Result, error) {
	if partition == nil {
		return nil, fmt.Errorf("mig: nil partition")
	}
	if len(tenants) != len(partition.Instances) {
		return nil, fmt.Errorf("mig: %d tenant groups for %d instances",
			len(tenants), len(partition.Instances))
	}
	device := cfg.Device
	if device.Name == "" {
		return nil, fmt.Errorf("mig: config needs an explicit device")
	}

	out := &Result{}
	var cappedS float64
	for i, prof := range partition.Instances {
		if len(tenants[i]) == 0 {
			continue
		}
		icfg := cfg
		icfg.Device = prof.InstanceSpec(device)
		icfg.Seed = cfg.Seed + uint64(i)*7919
		eng, err := gpusim.New(icfg)
		if err != nil {
			return nil, err
		}
		for _, t := range tenants[i] {
			retargeted := make([]*workload.TaskSpec, len(t.Tasks))
			for j, task := range t.Tasks {
				rt, err := RetargetTask(task, prof)
				if err != nil {
					return nil, err
				}
				retargeted[j] = rt
			}
			if err := eng.AddClient(gpusim.Client{ID: t.ID, Tasks: retargeted}); err != nil {
				return nil, err
			}
		}
		res, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("mig: instance %s: %w", prof.Name, err)
		}
		out.Instances = append(out.Instances, InstanceResult{Profile: prof, Result: res})
		if res.Makespan > out.Makespan {
			out.Makespan = res.Makespan
		}
		out.EnergyJ += res.EnergyJ
		out.Tasks += res.TasksCompleted()
		cappedS += res.CappedTime.Seconds()
	}
	if len(out.Instances) == 0 {
		return nil, fmt.Errorf("mig: no tenants placed")
	}

	// Idle accounting: instances that finish early idle until the
	// slowest one does, and unpartitioned slices idle for the whole run.
	for _, ir := range out.Instances {
		tail := out.Makespan.Seconds() - ir.Result.Makespan.Seconds()
		if tail > 0 {
			out.EnergyJ += ir.Profile.InstanceSpec(device).IdlePowerW * tail
		}
	}
	// Instances with no tenants still hold their slices.
	for i, prof := range partition.Instances {
		if len(tenants[i]) == 0 {
			out.EnergyJ += prof.InstanceSpec(device).IdlePowerW * out.Makespan.Seconds()
		}
	}
	out.EnergyJ += device.IdlePowerW * partition.UnusedFraction() * out.Makespan.Seconds()

	if out.Makespan > 0 && len(out.Instances) > 0 {
		out.CappedFraction = cappedS / (out.Makespan.Seconds() * float64(len(out.Instances)))
	}
	return out, nil
}

// BestFit searches the partition space for the configuration minimizing
// predicted makespan with one workflow per instance. Feasibility requires
// each workflow's peak memory to fit its instance's memory partition; the
// score dilates each task by max(1, saturation/fraction), the same
// granularity physics as Figure 1. Workflows are matched to instances
// largest-predicted-work → most slices.
//
// This is the MIG analog of the paper's partition right-sizing: instead
// of choosing an MPS active-thread percentage, choose slice counts.
func BestFit(device gpu.DeviceSpec, flows []Tenant) (*Partition, [][]Tenant, error) {
	if len(flows) == 0 {
		return nil, nil, fmt.Errorf("mig: no workflows to place")
	}
	// Order workflows by descending solo work so flow i maps to
	// instance i (partitions keep instances largest-first).
	ordered := make([]Tenant, len(flows))
	copy(ordered, flows)
	sort.SliceStable(ordered, func(i, j int) bool {
		return tenantSoloSeconds(ordered[i]) > tenantSoloSeconds(ordered[j])
	})

	var best *Partition
	bestScore := 0.0
	for _, part := range EnumeratePartitions(device, len(flows)) {
		if len(part.Instances) != len(ordered) {
			continue
		}
		score, ok := placementScore(device, part, ordered)
		if !ok {
			continue
		}
		if best == nil || score < bestScore {
			best, bestScore = part, score
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("mig: no feasible partition for %d workflows", len(flows))
	}
	tenants := make([][]Tenant, len(best.Instances))
	for i := range best.Instances {
		tenants[i] = []Tenant{ordered[i]}
	}
	return best, tenants, nil
}

// tenantSoloSeconds is the tenant's full-device sequential duration.
func tenantSoloSeconds(t Tenant) float64 {
	var s float64
	for _, task := range t.Tasks {
		s += task.SoloDuration.Seconds()
	}
	return s
}

// placementScore predicts the makespan of placing ordered[i] on
// part.Instances[i]; ok is false when any workflow cannot fit its
// instance's memory.
func placementScore(device gpu.DeviceSpec, part *Partition, ordered []Tenant) (float64, bool) {
	var makespan float64
	for i, prof := range part.Instances {
		inst := prof.InstanceSpec(device)
		f := prof.Fraction()
		var dur float64
		for _, task := range ordered[i].Tasks {
			if task.MaxMemMiB > inst.MemoryMiB {
				return 0, false
			}
			dilation := 1.0
			if task.Agg.Saturation > f {
				dilation = task.Agg.Saturation / f
			}
			dur += task.SoloDuration.Seconds() * dilation
		}
		if dur > makespan {
			makespan = dur
		}
	}
	return makespan, true
}
