// Package mig models NVIDIA Multi-Instance GPU (§II-B of the paper):
// hardware partitioning of an Ampere-class GPU into up to 7 isolated
// instances, "each with a separate and isolated path through the entire
// memory system". MIG trades MPS's flexibility for isolation: instances
// cannot interfere, but the partition is static — the GPU must be idle to
// reconfigure — and capacity not covered by an instance is wasted.
//
// The paper leaves MIG evaluation to future work; this package implements
// it as the natural extension: instance profiles matching the A100's
// (1g.10gb … 7g.80gb), a partitioner enforcing MIG's configuration rules,
// task re-targeting onto instance-sized devices, and an executor that
// runs each instance as a fully isolated simulation.
package mig

import (
	"fmt"
	"sort"

	"gpushare/internal/gpu"
)

// Profile is one MIG instance profile. Slices are GPU compute slices (the
// A100 has 7); memory is partitioned in fixed fractions per profile.
type Profile struct {
	// Name is the NVIDIA profile name, e.g. "3g.40gb".
	Name string
	// Slices is the number of compute slices (1,2,3,4,7).
	Slices int
	// MemFraction is the share of device memory the instance owns.
	MemFraction float64
}

// A100-class instance profiles. Fractions follow the A100 80GB MIG
// geometry (memory is partitioned in eighths; the 7-slice profile owns
// the whole memory).
var profiles = []Profile{
	{Name: "1g.10gb", Slices: 1, MemFraction: 1.0 / 8},
	{Name: "2g.20gb", Slices: 2, MemFraction: 2.0 / 8},
	{Name: "3g.40gb", Slices: 3, MemFraction: 4.0 / 8},
	{Name: "4g.40gb", Slices: 4, MemFraction: 4.0 / 8},
	{Name: "7g.80gb", Slices: 7, MemFraction: 1},
}

// totalSlices on an A100-class part.
const totalSlices = 7

// Profiles returns the supported instance profiles, smallest first.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileByName looks up a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("mig: unknown profile %q", name)
}

// Fraction is the instance's share of device compute.
func (p Profile) Fraction() float64 { return float64(p.Slices) / totalSlices }

// InstanceSpec derives the device model an instance presents to its
// tenant: compute, bandwidth and power envelope scale with the slice
// fraction; memory follows the profile's fixed partition.
//
// Power apportioning is an approximation: real MIG shares one board power
// envelope across instances. Apportioning by slice fraction makes each
// instance's capping behaviour independent, which is conservative for the
// isolation comparison (a real device could let one instance borrow
// another's headroom).
func (p Profile) InstanceSpec(device gpu.DeviceSpec) gpu.DeviceSpec {
	f := p.Fraction()
	inst := device
	inst.Name = fmt.Sprintf("%s[MIG %s]", device.Name, p.Name)
	inst.SMCount = int(float64(device.SMCount)*f + 0.5)
	if inst.SMCount < 1 {
		inst.SMCount = 1
	}
	inst.MemoryMiB = int64(float64(device.MemoryMiB) * p.MemFraction)
	inst.MemoryBandwidthGBs = device.MemoryBandwidthGBs * f
	inst.IdlePowerW = device.IdlePowerW * f
	inst.PowerLimitW = inst.IdlePowerW + (device.PowerLimitW-device.IdlePowerW)*f
	inst.MaxDynamicPowerW = device.MaxDynamicPowerW * f
	// MPS can run inside a MIG instance, but the client budget is
	// per-instance.
	inst.MaxMPSClients = device.MaxMPSClients
	inst.MIGCapable = false
	inst.MaxMIGInstances = 0
	return inst
}

// Partition is a validated set of instance profiles on one GPU.
type Partition struct {
	Instances []Profile
}

// NewPartition validates a configuration against MIG's rules: total
// slices within the device budget and total memory within the device.
// (Real MIG has placement-geometry constraints; the slice and memory
// budgets capture the ones that matter for scheduling.)
func NewPartition(device gpu.DeviceSpec, instanceProfiles ...Profile) (*Partition, error) {
	if !device.MIGCapable {
		return nil, fmt.Errorf("mig: device %s is not MIG-capable", device.Name)
	}
	if len(instanceProfiles) == 0 {
		return nil, fmt.Errorf("mig: partition needs at least one instance")
	}
	if len(instanceProfiles) > device.MaxMIGInstances {
		return nil, fmt.Errorf("mig: %d instances exceed device limit %d",
			len(instanceProfiles), device.MaxMIGInstances)
	}
	slices := 0
	var mem float64
	for _, p := range instanceProfiles {
		if _, err := ProfileByName(p.Name); err != nil {
			return nil, err
		}
		slices += p.Slices
		mem += p.MemFraction
	}
	if slices > totalSlices {
		return nil, fmt.Errorf("mig: %d slices exceed the %d-slice budget", slices, totalSlices)
	}
	if mem > 1+1e-9 {
		return nil, fmt.Errorf("mig: memory fractions sum to %.2f > 1", mem)
	}
	sorted := make([]Profile, len(instanceProfiles))
	copy(sorted, instanceProfiles)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Slices > sorted[j].Slices })
	return &Partition{Instances: sorted}, nil
}

// UsedSlices is the sum of instance slices.
func (p *Partition) UsedSlices() int {
	n := 0
	for _, in := range p.Instances {
		n += in.Slices
	}
	return n
}

// UnusedFraction is the share of device compute no instance covers —
// MIG's static-partitioning waste.
func (p *Partition) UnusedFraction() float64 {
	return 1 - float64(p.UsedSlices())/totalSlices
}

// EnumeratePartitions returns every distinct multiset of profiles whose
// slices fit the budget and that has between 1 and maxInstances
// instances, largest-first within each partition. Used by the MIG
// placement search.
func EnumeratePartitions(device gpu.DeviceSpec, maxInstances int) []*Partition {
	if maxInstances <= 0 || maxInstances > device.MaxMIGInstances {
		maxInstances = device.MaxMIGInstances
	}
	var out []*Partition
	var cur []Profile
	var walk func(startIdx int, slicesLeft int, memLeft float64)
	walk = func(startIdx int, slicesLeft int, memLeft float64) {
		if len(cur) > 0 {
			if part, err := NewPartition(device, cur...); err == nil {
				out = append(out, part)
			}
		}
		if len(cur) >= maxInstances {
			return
		}
		for i := startIdx; i < len(profiles); i++ {
			p := profiles[i]
			if p.Slices > slicesLeft || p.MemFraction > memLeft+1e-9 {
				continue
			}
			cur = append(cur, p)
			walk(i, slicesLeft-p.Slices, memLeft-p.MemFraction)
			cur = cur[:len(cur)-1]
		}
	}
	walk(0, totalSlices, 1)
	return out
}
