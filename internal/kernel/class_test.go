package kernel

import (
	"math"
	"testing"
)

func validClass() Class {
	return Class{
		Name:      "k",
		Weight:    1,
		Launch:    LaunchConfig{ThreadsPerBlock: 128, RegistersPerThread: 64, GridBlocks: 864},
		Balance:   0.9,
		Intensity: 0.5,
		BWShare:   0.1,
	}
}

func TestClassValidate(t *testing.T) {
	spec := a100x()
	if err := validClass().Validate(spec); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Class)
	}{
		{"empty name", func(c *Class) { c.Name = "" }},
		{"zero weight", func(c *Class) { c.Weight = 0 }},
		{"negative weight", func(c *Class) { c.Weight = -1 }},
		{"zero intensity", func(c *Class) { c.Intensity = 0 }},
		{"intensity above 1", func(c *Class) { c.Intensity = 1.5 }},
		{"negative bw", func(c *Class) { c.BWShare = -0.1 }},
		{"bw above 1", func(c *Class) { c.BWShare = 1.1 }},
		{"balance above 1", func(c *Class) { c.Balance = 1.2 }},
		{"bad launch", func(c *Class) { c.Launch.ThreadsPerBlock = 0 }},
	}
	for _, tc := range cases {
		c := validClass()
		tc.mutate(&c)
		if err := c.Validate(spec); err == nil {
			t.Errorf("Validate accepted class with %s", tc.name)
		}
	}
}

func TestComputeDemand(t *testing.T) {
	spec := a100x()
	c := validClass()
	d, err := c.ComputeDemand(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 128t/64r → 8 blocks/SM, grid 864 = exactly one wave → fill 1,
	// coverage 1.
	if d.SMFootprint != 1 {
		t.Fatalf("footprint = %v", d.SMFootprint)
	}
	if math.Abs(d.Fill-1) > 1e-12 {
		t.Fatalf("fill = %v", d.Fill)
	}
	if math.Abs(d.Compute-0.5) > 1e-12 {
		t.Fatalf("compute = %v, want intensity × coverage = 0.5", d.Compute)
	}
	if math.Abs(d.Saturation-1) > 1e-12 {
		t.Fatalf("saturation = max(fill, compute) = %v, want 1", d.Saturation)
	}
	if d.Bandwidth != 0.1 {
		t.Fatalf("bandwidth = %v", d.Bandwidth)
	}
	if math.Abs(d.TheoreticalOcc-0.5) > 1e-12 {
		t.Fatalf("theo occ = %v", d.TheoreticalOcc)
	}
	if math.Abs(d.AchievedOcc-0.45) > 1e-12 {
		t.Fatalf("achieved occ = %v, want theo×fill×balance = 0.45", d.AchievedOcc)
	}
}

func TestSaturationUsesComputeWhenLarger(t *testing.T) {
	spec := a100x()
	c := validClass()
	c.Launch.GridBlocks = 432 // half wave → fill 0.5
	c.Intensity = 0.9         // compute 0.9 > fill 0.5
	d, err := c.ComputeDemand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Saturation-0.9) > 1e-12 {
		t.Fatalf("saturation = %v, want 0.9 (compute-bound)", d.Saturation)
	}
}

func TestNormalizeWeights(t *testing.T) {
	classes := []Class{
		{Name: "a", Weight: 2},
		{Name: "b", Weight: 6},
	}
	if err := NormalizeWeights(classes); err != nil {
		t.Fatal(err)
	}
	if math.Abs(classes[0].Weight-0.25) > 1e-12 || math.Abs(classes[1].Weight-0.75) > 1e-12 {
		t.Fatalf("weights = %v, %v", classes[0].Weight, classes[1].Weight)
	}
	if err := NormalizeWeights([]Class{{Name: "z", Weight: 0}}); err == nil {
		t.Fatal("zero total weight accepted")
	}
}

func TestAggregateDemand(t *testing.T) {
	spec := a100x()
	c1 := validClass()
	c2 := validClass()
	c2.Name = "k2"
	c2.Intensity = 0.9
	c2.BWShare = 0.3
	c2.Weight = 3

	agg, err := AggregateDemand(spec, []Class{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted average with weights 1:3.
	wantCompute := (0.5 + 3*0.9) / 4
	if math.Abs(agg.Compute-wantCompute) > 1e-12 {
		t.Fatalf("agg compute = %v, want %v", agg.Compute, wantCompute)
	}
	wantBW := (0.1 + 3*0.3) / 4
	if math.Abs(agg.Bandwidth-wantBW) > 1e-12 {
		t.Fatalf("agg bw = %v, want %v", agg.Bandwidth, wantBW)
	}
}

func TestAggregateDemandErrors(t *testing.T) {
	spec := a100x()
	if _, err := AggregateDemand(spec, nil); err == nil {
		t.Fatal("empty class list accepted")
	}
	bad := validClass()
	bad.Launch.ThreadsPerBlock = 0
	if _, err := AggregateDemand(spec, []Class{bad}); err == nil {
		t.Fatal("invalid class accepted in aggregate")
	}
}
