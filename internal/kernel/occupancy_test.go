package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"gpushare/internal/gpu"
)

func a100x() gpu.DeviceSpec { return gpu.MustLookup("A100X") }

// Hand-computed occupancy fixtures for the A100X (65536 regs/SM, 64
// warps/SM, 32 blocks/SM, 164 KiB smem, register granularity 256/warp).
// These are the configurations the workload suite is calibrated with.
func TestComputeOccupancyFixtures(t *testing.T) {
	cases := []struct {
		name       string
		cfg        LaunchConfig
		wantBlocks int
		wantWarps  int
		wantTheo   float64
		wantLimit  OccupancyLimiter
	}{
		// 64 threads (2 warps/block), 61 regs → 2048 regs/warp → 32
		// warps by regs → 16 blocks → 32 warps → 50%.
		{"64t/61r", LaunchConfig{64, 61, 0, 1080}, 16, 32, 0.50, LimitRegisters},
		// 64 threads, 56 regs → 1792 regs/warp → 36 warps → 18 blocks →
		// 36 warps → 56.25%.
		{"64t/56r", LaunchConfig{64, 56, 0, 1080}, 18, 36, 0.5625, LimitRegisters},
		// 64 threads, 80 regs → 2560/warp → 25 warps → 12 blocks → 24
		// warps → 37.5%.
		{"64t/80r", LaunchConfig{64, 80, 0, 1080}, 12, 24, 0.375, LimitRegisters},
		// 64 threads, 72 regs → 2304/warp → 28 warps → 14 blocks → 28
		// warps → 43.75%.
		{"64t/72r", LaunchConfig{64, 72, 0, 1080}, 14, 28, 0.4375, LimitRegisters},
		// 128 threads (4 w/b), 64 regs → 2048/warp → 32 warps → 8 blocks
		// → 50%.
		{"128t/64r", LaunchConfig{128, 64, 0, 864}, 8, 32, 0.50, LimitRegisters},
		// 256 threads (8 w/b), 32 regs → 1024/warp → 64 warps → 8 blocks
		// → 100% (warp-slot limited).
		{"256t/32r", LaunchConfig{256, 32, 0, 864}, 8, 64, 1.0, LimitWarps},
		// 256 threads, 40 regs → 1280/warp → 51 warps → 6 blocks → 48
		// warps → 75%.
		{"256t/40r", LaunchConfig{256, 40, 0, 648}, 6, 48, 0.75, LimitRegisters},
		// 512 threads (16 w/b), 128 regs → 4096/warp → 16 warps → 1
		// block → 25%.
		{"512t/128r", LaunchConfig{512, 128, 0, 108}, 1, 16, 0.25, LimitRegisters},
		// 128 threads, 56 KiB smem → 2 blocks by smem → 8 warps → 12.5%.
		{"128t/56KiB", LaunchConfig{128, 32, 56 * 1024, 216}, 2, 8, 0.125, LimitSharedMem},
		// 128 threads, 40 KiB smem → 4 blocks by smem → 16 warps → 25%.
		{"128t/40KiB", LaunchConfig{128, 32, 40 * 1024, 432}, 4, 16, 0.25, LimitSharedMem},
		// 32 threads (1 warp/block), no regs/smem pressure → block-count
		// limited: 32 blocks → 32 warps → 50%.
		{"32t/blocklimited", LaunchConfig{32, 16, 0, 3456}, 32, 32, 0.50, LimitBlocks},
	}
	spec := a100x()
	for _, c := range cases {
		occ, err := ComputeOccupancy(spec, c.cfg)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if occ.ActiveBlocksPerSM != c.wantBlocks {
			t.Errorf("%s: blocks = %d, want %d", c.name, occ.ActiveBlocksPerSM, c.wantBlocks)
		}
		if occ.ActiveWarpsPerSM != c.wantWarps {
			t.Errorf("%s: warps = %d, want %d", c.name, occ.ActiveWarpsPerSM, c.wantWarps)
		}
		if math.Abs(occ.Theoretical-c.wantTheo) > 1e-12 {
			t.Errorf("%s: theoretical = %v, want %v", c.name, occ.Theoretical, c.wantTheo)
		}
		if occ.Limiter != c.wantLimit {
			t.Errorf("%s: limiter = %v, want %v", c.name, occ.Limiter, c.wantLimit)
		}
	}
}

func TestComputeOccupancyValidation(t *testing.T) {
	spec := a100x()
	bad := []LaunchConfig{
		{0, 32, 0, 1},            // no threads
		{2048, 32, 0, 1},         // block too large
		{128, -1, 0, 1},          // negative regs
		{128, 300, 0, 1},         // regs above device cap
		{128, 32, -5, 1},         // negative smem
		{128, 32, 200 * 1024, 1}, // smem above SM capacity
		{128, 32, 0, 0},          // no blocks
	}
	for i, cfg := range bad {
		if _, err := ComputeOccupancy(spec, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestOccupancyBoundsProperty(t *testing.T) {
	spec := a100x()
	f := func(threads, regs uint8, smemKiB uint8, grid uint16) bool {
		cfg := LaunchConfig{
			ThreadsPerBlock:    int(threads%32+1) * 32,
			RegistersPerThread: int(regs%255) + 1,
			SharedMemPerBlock:  int(smemKiB%160) * 1024,
			GridBlocks:         int(grid) + 1,
		}
		occ, err := ComputeOccupancy(spec, cfg)
		if err != nil {
			return true // invalid configs are allowed to error
		}
		return occ.Theoretical > 0 && occ.Theoretical <= 1 &&
			occ.SMCoverage > 0 && occ.SMCoverage <= 1 &&
			occ.Waves > 0 &&
			occ.Fill() > 0 && occ.Fill() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWaves(t *testing.T) {
	spec := a100x()
	cfg := LaunchConfig{64, 61, 0, 16 * 108} // exactly one full wave
	occ, err := ComputeOccupancy(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(occ.Waves-1) > 1e-12 {
		t.Fatalf("waves = %v, want 1", occ.Waves)
	}
	if math.Abs(occ.Fill()-1) > 1e-12 {
		t.Fatalf("fill at exactly one wave = %v, want 1", occ.Fill())
	}
}

func TestFillSubWave(t *testing.T) {
	spec := a100x()
	cfg := LaunchConfig{64, 61, 0, 8 * 108} // half a wave
	occ, _ := ComputeOccupancy(spec, cfg)
	if math.Abs(occ.Fill()-0.5) > 1e-12 {
		t.Fatalf("half-wave fill = %v, want 0.5", occ.Fill())
	}
}

func TestFillTailEffect(t *testing.T) {
	spec := a100x()
	// 1.5 waves: tail formula (1 + 0.5²)/1.5 = 5/6.
	cfg := LaunchConfig{64, 61, 0, 16 * 108 * 3 / 2}
	occ, _ := ComputeOccupancy(spec, cfg)
	if math.Abs(occ.Fill()-5.0/6) > 1e-9 {
		t.Fatalf("1.5-wave fill = %v, want %v", occ.Fill(), 5.0/6)
	}
	// Many waves → fill approaches 1.
	cfg.GridBlocks = 16 * 108 * 40
	occ, _ = ComputeOccupancy(spec, cfg)
	if occ.Fill() < 0.99 {
		t.Fatalf("40-wave fill = %v, want ≈1", occ.Fill())
	}
}

func TestSMCoverage(t *testing.T) {
	spec := a100x()
	occ, _ := ComputeOccupancy(spec, LaunchConfig{64, 61, 0, 54})
	if math.Abs(occ.SMCoverage-0.5) > 1e-12 {
		t.Fatalf("54-block coverage = %v, want 0.5", occ.SMCoverage)
	}
	occ, _ = ComputeOccupancy(spec, LaunchConfig{64, 61, 0, 500})
	if occ.SMCoverage != 1 {
		t.Fatalf("500-block coverage = %v, want 1", occ.SMCoverage)
	}
}

func TestGridForFill(t *testing.T) {
	spec := a100x()
	occ, _ := ComputeOccupancy(spec, LaunchConfig{64, 61, 0, 1})
	for _, fill := range []float64{0.25, 0.5, 0.75, 1.0} {
		grid := occ.GridForFill(spec, fill)
		check, err := ComputeOccupancy(spec, LaunchConfig{64, 61, 0, grid})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(check.Waves-fill) > 0.01 {
			t.Errorf("GridForFill(%v) → grid %d → waves %v", fill, grid, check.Waves)
		}
	}
	if got := occ.GridForFill(spec, 0); got != 1 {
		t.Fatalf("GridForFill(0) = %d, want minimum 1", got)
	}
}

func TestAchievedOccupancy(t *testing.T) {
	spec := a100x()
	occ, _ := ComputeOccupancy(spec, LaunchConfig{64, 61, 0, 16 * 108})
	if got := AchievedOccupancy(occ, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("achieved at full wave, balance 1 = %v, want 0.5", got)
	}
	if got := AchievedOccupancy(occ, 0.8); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("achieved with balance 0.8 = %v, want 0.4", got)
	}
	// Out-of-range balance falls back to 1.
	if got := AchievedOccupancy(occ, 0); got != occ.Theoretical*occ.Fill() {
		t.Fatalf("achieved with balance 0 = %v", got)
	}
	if got := AchievedOccupancy(occ, 2); got != occ.Theoretical*occ.Fill() {
		t.Fatalf("achieved with balance 2 = %v", got)
	}
}

func TestAchievedNeverExceedsTheoreticalProperty(t *testing.T) {
	spec := a100x()
	f := func(regs uint8, grid uint16, balance float64) bool {
		cfg := LaunchConfig{128, int(regs%224) + 32, 0, int(grid) + 1}
		occ, err := ComputeOccupancy(spec, cfg)
		if err != nil {
			return true
		}
		b := math.Mod(math.Abs(balance), 1)
		return AchievedOccupancy(occ, b) <= occ.Theoretical+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
