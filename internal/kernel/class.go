package kernel

import (
	"fmt"

	"gpushare/internal/gpu"
)

// Class describes one recurring kernel type within a workload task: its
// launch configuration (for occupancy reporting) and its resource demands
// while resident (for the contention model). A task's active GPU time is a
// weighted round-robin over its classes.
//
// Demand semantics, all as fractions of the whole device:
//
//   - SMFootprint: fraction of SMs the kernel's grid can cover in one wave.
//     An MPS partition smaller than the footprint dilates the kernel by
//     footprint/partition — the granularity effect of Figure 1. A kernel
//     with a small footprint gains nothing from partitions beyond it.
//   - Intensity: fraction of the covered SMs' issue/compute throughput the
//     kernel consumes while resident. ComputeDemand = SMFootprint ×
//     Intensity is the instantaneous device-level compute demand the
//     scheduler's rule 2 ("total compute utilization under 100%") sums.
//   - BWShare: fraction of peak HBM bandwidth consumed while resident
//     (rule for memory-bandwidth interference).
type Class struct {
	// Name identifies the kernel, e.g. "chi_summation".
	Name string
	// Weight is this class's share of the task's active GPU time; weights
	// are normalized across a task's classes.
	Weight float64
	// Launch is the kernel's launch configuration.
	Launch LaunchConfig
	// Balance is the load-balance factor for achieved occupancy (0, 1].
	Balance float64
	// Intensity is per-covered-SM compute consumption in (0, 1].
	Intensity float64
	// BWShare is the fraction of peak memory bandwidth used while
	// resident, in [0, 1].
	BWShare float64
}

// Validate checks the class parameters against a device.
func (c Class) Validate(spec gpu.DeviceSpec) error {
	if c.Name == "" {
		return fmt.Errorf("kernel: class has empty name")
	}
	if c.Weight <= 0 {
		return fmt.Errorf("kernel: class %s: weight must be positive, got %g", c.Name, c.Weight)
	}
	if c.Intensity <= 0 || c.Intensity > 1 {
		return fmt.Errorf("kernel: class %s: intensity must be in (0,1], got %g", c.Name, c.Intensity)
	}
	if c.BWShare < 0 || c.BWShare > 1 {
		return fmt.Errorf("kernel: class %s: bw share must be in [0,1], got %g", c.Name, c.BWShare)
	}
	if c.Balance < 0 || c.Balance > 1 {
		return fmt.Errorf("kernel: class %s: balance must be in [0,1], got %g", c.Name, c.Balance)
	}
	if err := c.Launch.Validate(spec); err != nil {
		return fmt.Errorf("kernel: class %s: %w", c.Name, err)
	}
	return nil
}

// Demand is the instantaneous device-level resource demand of one kernel
// class, derived from its launch configuration and behavioural parameters.
type Demand struct {
	// SMFootprint is the SM-coverage fraction: SMs receiving ≥1 block.
	SMFootprint float64
	// Fill is the warp-slot fill level (see Occupancy.Fill) — the MPS
	// partition fraction at which this kernel's throughput saturates.
	Fill float64
	// Compute is SMFootprint × Intensity: whole-device compute demand
	// while the kernel is resident. The scheduler's rule 2 sums this.
	Compute float64
	// Saturation is the partition/allocation fraction below which the
	// kernel dilates: max(Fill, Compute) clamped to (0, 1].
	Saturation float64
	// Bandwidth is the HBM bandwidth demand fraction.
	Bandwidth float64
	// TheoreticalOcc and AchievedOcc are the per-SM warp occupancies for
	// profiler reporting (Table I).
	TheoreticalOcc float64
	AchievedOcc    float64
	// Limiter is the occupancy-limiting resource.
	Limiter OccupancyLimiter
}

// ComputeDemand evaluates the class on a device.
func (c Class) ComputeDemand(spec gpu.DeviceSpec) (Demand, error) {
	occ, err := ComputeOccupancy(spec, c.Launch)
	if err != nil {
		return Demand{}, fmt.Errorf("kernel: class %s: %w", c.Name, err)
	}
	fill := occ.Fill()
	d := Demand{
		SMFootprint:    occ.SMCoverage,
		Fill:           fill,
		Compute:        occ.SMCoverage * c.Intensity,
		Bandwidth:      c.BWShare,
		TheoreticalOcc: occ.Theoretical,
		AchievedOcc:    AchievedOccupancy(occ, c.Balance),
		Limiter:        occ.Limiter,
	}
	sat := fill
	if d.Compute > sat {
		sat = d.Compute
	}
	if sat > 1 {
		sat = 1
	}
	if sat <= 0 {
		sat = 0.01
	}
	d.Saturation = sat
	return d, nil
}

// NormalizeWeights rescales the classes' weights in place to sum to 1.
// It returns an error if the total weight is not positive.
func NormalizeWeights(classes []Class) error {
	var total float64
	for _, c := range classes {
		total += c.Weight
	}
	if total <= 0 {
		return fmt.Errorf("kernel: total class weight must be positive, got %g", total)
	}
	for i := range classes {
		classes[i].Weight /= total
	}
	return nil
}

// AggregateDemand returns the weighted averages of the classes' demands —
// the task-level view the scheduler profiles against.
func AggregateDemand(spec gpu.DeviceSpec, classes []Class) (Demand, error) {
	if len(classes) == 0 {
		return Demand{}, fmt.Errorf("kernel: no classes to aggregate")
	}
	var total float64
	for _, c := range classes {
		total += c.Weight
	}
	if total <= 0 {
		return Demand{}, fmt.Errorf("kernel: total class weight must be positive")
	}
	var agg Demand
	for _, c := range classes {
		d, err := c.ComputeDemand(spec)
		if err != nil {
			return Demand{}, err
		}
		w := c.Weight / total
		agg.SMFootprint += w * d.SMFootprint
		agg.Fill += w * d.Fill
		agg.Compute += w * d.Compute
		agg.Saturation += w * d.Saturation
		agg.Bandwidth += w * d.Bandwidth
		agg.TheoreticalOcc += w * d.TheoreticalOcc
		agg.AchievedOcc += w * d.AchievedOcc
	}
	return agg, nil
}
