package kernel

import (
	"fmt"
	"math"

	"gpushare/internal/gpu"
)

// OccupancyLimiter identifies which SM resource bounds theoretical
// occupancy for a launch configuration, matching the categories the CUDA
// occupancy calculator reports ("Limiting factors for theoretical occupancy
// include total warps, blocks, registers, and shared memory per SM", §II-C).
type OccupancyLimiter string

const (
	LimitWarps     OccupancyLimiter = "warps"
	LimitBlocks    OccupancyLimiter = "blocks"
	LimitRegisters OccupancyLimiter = "registers"
	LimitSharedMem OccupancyLimiter = "shared-memory"
)

// Occupancy is the result of the occupancy calculation for one kernel on
// one device.
type Occupancy struct {
	// ActiveBlocksPerSM is the number of co-resident blocks per SM.
	ActiveBlocksPerSM int
	// ActiveWarpsPerSM is the number of co-resident warps per SM.
	ActiveWarpsPerSM int
	// Theoretical is active warps over the SM's warp-slot capacity — the
	// "Average Theoretical Warp Occupancy" column of Table I.
	Theoretical float64
	// Limiter is the binding resource.
	Limiter OccupancyLimiter
	// SMCoverage is the fraction of the device's SMs that receive at
	// least one block: min(1, grid / SMCount).
	SMCoverage float64
	// Waves is the grid size relative to the device's co-residency
	// capacity: grid / (activeBlocks × SMCount). Waves < 1 means the
	// whole grid is resident at once and warp slots go unfilled.
	Waves float64
}

// Fill is the average fraction of the kernel's theoretical warp-slot level
// the grid actually sustains. For sub-wave grids (Waves < 1) it is Waves
// itself — the grid cannot fill the device. Beyond one wave it is the
// tail-effect average: with W waves the final partial wave runs at
// frac(W) residency for a frac(W)-sized slice of the runtime (uniform
// block durations), giving (floor(W) + frac(W)²) / W.
//
// Fill is also the MPS partition fraction at which the kernel's
// throughput saturates: a partition p < Fill cannot hold the resident
// warps the kernel sustains at full device, dilating it by Fill/p; a
// partition p ≥ Fill adds nothing. This is the granularity effect behind
// the paper's Figure 1.
func (o Occupancy) Fill() float64 {
	w := o.Waves
	if w <= 0 {
		return 0
	}
	if w <= 1 {
		return w
	}
	full := math.Floor(w)
	frac := w - full
	return (full + frac*frac) / w
}

// ComputeOccupancy runs the CUDA occupancy calculation for cfg on spec.
func ComputeOccupancy(spec gpu.DeviceSpec, cfg LaunchConfig) (Occupancy, error) {
	if err := cfg.Validate(spec); err != nil {
		return Occupancy{}, err
	}

	warpsPerBlock := cfg.WarpsPerBlock(spec)

	// Limit 1: warp slots (also covers the thread limit since
	// MaxThreadsPerSM = MaxWarpsPerSM × WarpSize on modeled parts).
	byWarps := spec.MaxWarpsPerSM / warpsPerBlock
	// Limit 2: resident blocks.
	byBlocks := spec.MaxBlocksPerSM
	// Limit 3: registers. Registers are allocated per warp in units of
	// RegisterAllocGranularity, as the occupancy calculator does.
	byRegs := math.MaxInt
	if cfg.RegistersPerThread > 0 {
		regsPerWarp := ceilTo(cfg.RegistersPerThread*spec.WarpSize, spec.RegisterAllocGranularity)
		warpsByRegs := spec.RegistersPerSM / regsPerWarp
		byRegs = warpsByRegs / warpsPerBlock
	}
	// Limit 4: shared memory, allocated in SharedMemAllocGranularity
	// units.
	bySmem := math.MaxInt
	if cfg.SharedMemPerBlock > 0 {
		smemPerBlock := ceilTo(cfg.SharedMemPerBlock, spec.SharedMemAllocGranularity)
		bySmem = spec.SharedMemPerSM / smemPerBlock
	}

	blocks := byWarps
	limiter := LimitWarps
	if byBlocks < blocks {
		blocks, limiter = byBlocks, LimitBlocks
	}
	if byRegs < blocks {
		blocks, limiter = byRegs, LimitRegisters
	}
	if bySmem < blocks {
		blocks, limiter = bySmem, LimitSharedMem
	}
	if blocks <= 0 {
		return Occupancy{}, fmt.Errorf(
			"kernel: launch config cannot fit a single block per SM (limiter %s)", limiter)
	}

	warps := blocks * warpsPerBlock
	occ := Occupancy{
		ActiveBlocksPerSM: blocks,
		ActiveWarpsPerSM:  warps,
		Theoretical:       float64(warps) / float64(spec.MaxWarpsPerSM),
		Limiter:           limiter,
	}

	firstWaveCapacity := blocks * spec.SMCount
	occ.Waves = float64(cfg.GridBlocks) / float64(firstWaveCapacity)
	if cfg.GridBlocks >= spec.SMCount {
		occ.SMCoverage = 1
	} else {
		occ.SMCoverage = float64(cfg.GridBlocks) / float64(spec.SMCount)
	}
	return occ, nil
}

// PartitionForFill returns the smallest grid size (in blocks) achieving the
// given fill level for this occupancy result on the given device. It is
// the calibration inverse of Fill for sub-wave grids and is used by the
// workload suite to size grids from Table I targets.
func (o Occupancy) GridForFill(spec gpu.DeviceSpec, fill float64) int {
	if fill < 0 {
		fill = 0
	}
	g := int(fill*float64(o.ActiveBlocksPerSM*spec.SMCount) + 0.5)
	if g < 1 {
		g = 1
	}
	return g
}

// AchievedOccupancy estimates average achieved warp occupancy for a kernel
// given its theoretical occupancy and grid shape — the "Average Achieved
// Warp Occupancy" column of Table I.
//
// Achieved occupancy falls short of theoretical for two modeled reasons:
//
//   - Grid fill: sub-wave grids leave warp slots empty, and multi-wave
//     grids lose residency in the tail wave (see Occupancy.Fill).
//   - Load imbalance: divergent block durations and launch gaps, summarized
//     by balance ∈ (0, 1], a per-kernel calibration input.
func AchievedOccupancy(occ Occupancy, balance float64) float64 {
	if balance <= 0 || balance > 1 {
		balance = 1
	}
	return occ.Theoretical * occ.Fill() * balance
}
