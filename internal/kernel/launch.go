// Package kernel models GPU kernels at the granularity the paper's
// scheduler observes: launch configurations (for the CUDA occupancy
// calculator that reproduces Table I) and resource-demand classes (SM
// footprint, compute intensity, memory-bandwidth share) that drive the
// simulator's contention and the non-linear partition-sweep behaviour of
// Figure 1.
package kernel

import (
	"fmt"

	"gpushare/internal/gpu"
)

// LaunchConfig is a CUDA kernel launch configuration plus the per-thread
// resource usage the compiler would report — exactly the inputs of the
// CUDA occupancy calculator.
type LaunchConfig struct {
	// ThreadsPerBlock is the block size.
	ThreadsPerBlock int
	// RegistersPerThread is the register allocation per thread.
	RegistersPerThread int
	// SharedMemPerBlock is static+dynamic shared memory per block, bytes.
	SharedMemPerBlock int
	// GridBlocks is the total number of thread blocks launched.
	GridBlocks int
}

// Validate checks the configuration against a device's hard limits.
func (c LaunchConfig) Validate(spec gpu.DeviceSpec) error {
	switch {
	case c.ThreadsPerBlock <= 0:
		return fmt.Errorf("kernel: ThreadsPerBlock must be positive, got %d", c.ThreadsPerBlock)
	case c.ThreadsPerBlock > spec.MaxThreadsPerBlock:
		return fmt.Errorf("kernel: ThreadsPerBlock %d exceeds device limit %d",
			c.ThreadsPerBlock, spec.MaxThreadsPerBlock)
	case c.RegistersPerThread < 0:
		return fmt.Errorf("kernel: RegistersPerThread must be non-negative, got %d", c.RegistersPerThread)
	case c.RegistersPerThread > spec.MaxRegistersPerThread:
		return fmt.Errorf("kernel: RegistersPerThread %d exceeds device limit %d",
			c.RegistersPerThread, spec.MaxRegistersPerThread)
	case c.SharedMemPerBlock < 0:
		return fmt.Errorf("kernel: SharedMemPerBlock must be non-negative, got %d", c.SharedMemPerBlock)
	case c.SharedMemPerBlock > spec.SharedMemPerSM:
		return fmt.Errorf("kernel: SharedMemPerBlock %d exceeds per-SM shared memory %d",
			c.SharedMemPerBlock, spec.SharedMemPerSM)
	case c.GridBlocks <= 0:
		return fmt.Errorf("kernel: GridBlocks must be positive, got %d", c.GridBlocks)
	}
	return nil
}

// WarpsPerBlock returns the number of warps one block occupies.
func (c LaunchConfig) WarpsPerBlock(spec gpu.DeviceSpec) int {
	return ceilDiv(c.ThreadsPerBlock, spec.WarpSize)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ceilTo rounds n up to the next multiple of unit.
func ceilTo(n, unit int) int {
	if unit <= 0 {
		return n
	}
	return ceilDiv(n, unit) * unit
}
