package workflow

import (
	"strings"
	"testing"
)

func node(name string) Workflow {
	return Workflow{Name: name, Tasks: []Task{{Benchmark: "Kripke", Size: "1x", Iterations: 1}}}
}

func buildDAG(t *testing.T, names []string, edges [][2]string) *DAG {
	t.Helper()
	d := NewDAG()
	for _, n := range names {
		if err := d.AddWorkflow(node(n)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := d.AddDependency(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func levelNames(levels [][]Workflow) []string {
	var out []string
	for _, level := range levels {
		var names []string
		for _, w := range level {
			names = append(names, w.Name)
		}
		out = append(out, strings.Join(names, "+"))
	}
	return out
}

func TestDAGDiamond(t *testing.T) {
	// A → {B, C} → D.
	d := buildDAG(t, []string{"A", "B", "C", "D"},
		[][2]string{{"B", "A"}, {"C", "A"}, {"D", "B"}, {"D", "C"}})
	levels, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	got := levelNames(levels)
	want := []string{"A", "B+C", "D"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("levels = %v, want %v", got, want)
		}
	}
}

func TestDAGIndependentNodesShareALevel(t *testing.T) {
	d := buildDAG(t, []string{"x", "y", "z"}, nil)
	levels, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 1 || len(levels[0]) != 3 {
		t.Fatalf("levels = %v", levelNames(levels))
	}
	// Deterministic order within the level.
	if levels[0][0].Name != "x" || levels[0][2].Name != "z" {
		t.Fatalf("level order = %v", levelNames(levels))
	}
}

func TestDAGCycleDetection(t *testing.T) {
	d := buildDAG(t, []string{"A", "B", "C"},
		[][2]string{{"B", "A"}, {"C", "B"}, {"A", "C"}})
	if _, err := d.Levels(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestDAGValidation(t *testing.T) {
	d := NewDAG()
	if err := d.AddWorkflow(Workflow{Name: "bad"}); err == nil {
		t.Fatal("invalid workflow accepted")
	}
	if err := d.AddWorkflow(node("A")); err != nil {
		t.Fatal(err)
	}
	if err := d.AddWorkflow(node("A")); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := d.AddDependency("A", "A"); err == nil {
		t.Fatal("self-dependency accepted")
	}
	if err := d.AddDependency("A", "ghost"); err == nil {
		t.Fatal("unknown dependency accepted")
	}
	if err := d.AddDependency("ghost", "A"); err == nil {
		t.Fatal("unknown dependent accepted")
	}
	if _, err := NewDAG().Levels(); err == nil {
		t.Fatal("empty DAG accepted")
	}
}

func TestDAGRedundantEdgeIdempotent(t *testing.T) {
	d := buildDAG(t, []string{"A", "B"}, [][2]string{{"B", "A"}, {"B", "A"}})
	levels, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 {
		t.Fatalf("levels = %v", levelNames(levels))
	}
}
