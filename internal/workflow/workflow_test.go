package workflow

import (
	"strings"
	"testing"

	"gpushare/internal/gpu"
)

func a100x() gpu.DeviceSpec { return gpu.MustLookup("A100X") }

func TestTaskValidate(t *testing.T) {
	good := Task{Benchmark: "Kripke", Size: "1x", Iterations: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Task{
		{Benchmark: "Nope", Size: "1x", Iterations: 1},
		{Benchmark: "Kripke", Size: "zz", Iterations: 1},
		{Benchmark: "Kripke", Size: "1x", Iterations: 0},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad task %d accepted", i)
		}
	}
	if got := good.String(); got != "Kripke/1x x2" {
		t.Fatalf("String = %q", got)
	}
}

func TestWorkflowValidateAndCount(t *testing.T) {
	w := Workflow{Name: "wf", Tasks: []Task{
		{Benchmark: "Kripke", Size: "1x", Iterations: 3},
		{Benchmark: "LAMMPS", Size: "1x", Iterations: 2},
	}}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.TaskCount() != 5 {
		t.Fatalf("TaskCount = %d", w.TaskCount())
	}
	if err := (Workflow{Name: "", Tasks: w.Tasks}).Validate(); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := (Workflow{Name: "x"}).Validate(); err == nil {
		t.Fatal("empty tasks accepted")
	}
}

func TestBuildSpecsExpandsIterations(t *testing.T) {
	w := Workflow{Name: "wf", Tasks: []Task{
		{Benchmark: "Kripke", Size: "1x", Iterations: 3},
		{Benchmark: "Gravity", Size: "1x", Iterations: 1},
	}}
	specs, err := w.BuildSpecs(a100x())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("specs = %d, want 4", len(specs))
	}
	if specs[0].Workload != "Kripke" || specs[3].Workload != "Cholla-Gravity" {
		t.Fatalf("order: %s .. %s", specs[0].Workload, specs[3].Workload)
	}
	// Iterations share one TaskSpec instance (immutable by the engine).
	if specs[0] != specs[1] {
		t.Fatal("iteration specs should be shared")
	}
}

func TestUniqueTasks(t *testing.T) {
	w := Workflow{Name: "wf", Tasks: []Task{
		{Benchmark: "Kripke", Size: "1x", Iterations: 3},
		{Benchmark: "Kripke", Size: "1x", Iterations: 5},
		{Benchmark: "Kripke", Size: "4x", Iterations: 1},
	}}
	u := w.UniqueTasks()
	if len(u) != 2 {
		t.Fatalf("unique = %v", u)
	}
}

func TestQueueFIFO(t *testing.T) {
	q, err := NewQueue(
		Workflow{Name: "a", Tasks: []Task{{Benchmark: "Kripke", Size: "1x", Iterations: 1}}},
		Workflow{Name: "b", Tasks: []Task{{Benchmark: "Kripke", Size: "1x", Iterations: 1}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	w, ok := q.Pop()
	if !ok || w.Name != "a" {
		t.Fatalf("Pop = %v, %v", w.Name, ok)
	}
	if q.Len() != 1 {
		t.Fatal("Pop did not shrink queue")
	}
	items := q.Items()
	items[0].Name = "mutated"
	if q.Items()[0].Name != "b" {
		t.Fatal("Items leaked internal storage")
	}
	q.Pop()
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
}

func TestQueueRejectsInvalid(t *testing.T) {
	if _, err := NewQueue(Workflow{Name: "bad"}); err == nil {
		t.Fatal("invalid workflow accepted")
	}
}

func TestUniform(t *testing.T) {
	wfs, err := Uniform("AthenaPK", "4x", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(wfs) != 3 {
		t.Fatalf("workflows = %d", len(wfs))
	}
	for _, w := range wfs {
		if w.TaskCount() != 2 {
			t.Fatalf("workflow %s has %d tasks", w.Name, w.TaskCount())
		}
		if !strings.Contains(w.Name, "2x3") {
			t.Fatalf("name %q missing config label", w.Name)
		}
	}
	if _, err := Uniform("AthenaPK", "4x", 0, 1); err == nil {
		t.Fatal("zero seq tasks accepted")
	}
	if _, err := Uniform("Nope", "4x", 1, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
