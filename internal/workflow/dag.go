package workflow

import (
	"fmt"
	"sort"
)

// DAG captures data dependencies between workflows: "an entire queue of
// workflow tasks as well as data dependencies between them is known
// before workflow execution" (§IV-B). A workflow may start only after all
// workflows it depends on have completed; workflows with no path between
// them are free to be co-scheduled.
type DAG struct {
	nodes map[string]Workflow
	// deps[w] lists the workflows w waits for.
	deps map[string]map[string]bool
}

// NewDAG returns an empty dependency graph.
func NewDAG() *DAG {
	return &DAG{
		nodes: make(map[string]Workflow),
		deps:  make(map[string]map[string]bool),
	}
}

// AddWorkflow inserts a node. Names must be unique.
func (d *DAG) AddWorkflow(w Workflow) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if _, dup := d.nodes[w.Name]; dup {
		return fmt.Errorf("workflow: duplicate DAG node %q", w.Name)
	}
	d.nodes[w.Name] = w
	d.deps[w.Name] = make(map[string]bool)
	return nil
}

// AddDependency declares that `after` must wait for `before`. Both nodes
// must exist; self-dependencies are rejected immediately, cycles at
// Levels time.
func (d *DAG) AddDependency(after, before string) error {
	if after == before {
		return fmt.Errorf("workflow: %q cannot depend on itself", after)
	}
	if _, ok := d.nodes[after]; !ok {
		return fmt.Errorf("workflow: unknown DAG node %q", after)
	}
	if _, ok := d.nodes[before]; !ok {
		return fmt.Errorf("workflow: unknown DAG node %q", before)
	}
	d.deps[after][before] = true
	return nil
}

// Len returns the node count.
func (d *DAG) Len() int { return len(d.nodes) }

// Levels computes the topological layering: level i contains every
// workflow whose dependencies all lie in levels < i. Workflows within one
// level are mutually independent — the collocation candidates the
// scheduler packs. An error reports a dependency cycle.
func (d *DAG) Levels() ([][]Workflow, error) {
	if len(d.nodes) == 0 {
		return nil, fmt.Errorf("workflow: empty DAG")
	}
	remaining := make(map[string]int, len(d.nodes))
	for name, deps := range d.deps {
		remaining[name] = len(deps)
	}
	dependents := make(map[string][]string)
	for name, deps := range d.deps {
		for dep := range deps {
			dependents[dep] = append(dependents[dep], name)
		}
	}

	var levels [][]Workflow
	frontier := make([]string, 0, len(d.nodes))
	for name, n := range remaining {
		if n == 0 {
			frontier = append(frontier, name)
		}
	}
	done := 0
	for len(frontier) > 0 {
		sort.Strings(frontier) // deterministic level ordering
		level := make([]Workflow, len(frontier))
		for i, name := range frontier {
			level[i] = d.nodes[name]
		}
		levels = append(levels, level)
		done += len(frontier)

		var next []string
		for _, name := range frontier {
			for _, dep := range dependents[name] {
				remaining[dep]--
				if remaining[dep] == 0 {
					next = append(next, dep)
				}
			}
		}
		frontier = next
	}
	if done != len(d.nodes) {
		var stuck []string
		for name, n := range remaining {
			if n > 0 {
				stuck = append(stuck, name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("workflow: dependency cycle involving %v", stuck)
	}
	return levels, nil
}
