package workflow

import "testing"

// TestCombinationsMatchTableIII pins the paper's Table III verbatim.
func TestCombinationsMatchTableIII(t *testing.T) {
	want := [][]Task{
		{{"AthenaPK", "4x", 5}, {"LAMMPS", "4x", 3}},
		{{"Epsilon", "1x", 1}, {"Athena", "8x", 1}, {"Athena", "4x", 14}},
		{{"Kripke", "4x", 11}, {"WarpX", "2x", 8}},
		{{"Kripke", "4x", 13}, {"WarpX", "4x", 2}},
		{{"Epsilon", "1x", 1}, {"MHD", "4x", 2}},
		{{"Gravity", "4x", 4}, {"Kripke", "2x", 48}},
		{{"MHD", "4x", 2}, {"LAMMPS", "4x", 8}},
		{{"Athena", "1x", 300}, {"Gravity", "1x", 50}, {"Athena", "1x", 300}, {"Gravity", "1x", 50}},
		{{"Athena", "1x", 300}, {"Gravity", "1x", 50}},
		{{"MHD", "4x", 1}, {"LAMMPS", "4x", 4}, {"MHD", "4x", 1}, {"LAMMPS", "4x", 4}},
	}
	combos := Combinations()
	if len(combos) != 10 {
		t.Fatalf("combinations = %d, want 10", len(combos))
	}
	for i, c := range combos {
		if c.ID != i+1 {
			t.Errorf("combo %d has ID %d", i, c.ID)
		}
		if len(c.Workflows) != len(want[i]) {
			t.Errorf("combo %d has %d workflows, want %d", c.ID, len(c.Workflows), len(want[i]))
			continue
		}
		for j, w := range c.Workflows {
			if len(w.Tasks) != 1 {
				t.Errorf("combo %d wf %d has %d tasks, want 1", c.ID, j, len(w.Tasks))
				continue
			}
			got := w.Tasks[0]
			exp := want[i][j]
			if got.Benchmark != exp.Benchmark || got.Size != exp.Size || got.Iterations != exp.Iterations {
				t.Errorf("combo %d wf %d = %v, want %v", c.ID, j, got, exp)
			}
			if err := w.Validate(); err != nil {
				t.Errorf("combo %d wf %d invalid: %v", c.ID, j, err)
			}
		}
	}
}

func TestComboLookup(t *testing.T) {
	c, err := Combo(6)
	if err != nil || c.ID != 6 {
		t.Fatalf("Combo(6) = %v, %v", c.ID, err)
	}
	if c.Name() != "combo-6" {
		t.Fatalf("Name = %q", c.Name())
	}
	for _, id := range []int{0, 11, -1} {
		if _, err := Combo(id); err == nil {
			t.Errorf("Combo(%d) accepted", id)
		}
	}
}

func TestComboTaskCount(t *testing.T) {
	c, _ := Combo(8)
	if got := c.TaskCount(); got != 700 {
		t.Fatalf("combo 8 task count = %d, want 700", got)
	}
	c, _ = Combo(5)
	if got := c.TaskCount(); got != 3 {
		t.Fatalf("combo 5 task count = %d, want 3", got)
	}
}

func TestCombosBuildable(t *testing.T) {
	// Every combination must expand to engine tasks (exercises the
	// derived sizes Athena 8x, WarpX 2x, Kripke 2x).
	spec := a100x()
	for _, c := range Combinations() {
		for _, w := range c.Workflows {
			if _, err := w.BuildSpecs(spec); err != nil {
				t.Errorf("combo %d workflow %s: %v", c.ID, w.Name, err)
			}
		}
	}
}
