package workflow

import "fmt"

// Gang is a set of workflows that must be scheduled all-or-nothing: every
// member is placed at the same instant, or the whole gang waits. It is the
// shape multi-task distributed workloads submit to the cluster layer —
// the podgroup model of gang schedulers (NVIDIA KAI-Scheduler's
// PodGroups, Volcano's gangs): partial placement of a tightly coupled job
// wastes the placed members' GPUs while they spin on the missing ones.
//
// A single-workflow gang degenerates to a plain submission; the cluster
// dispatcher treats both uniformly.
type Gang struct {
	// Name identifies the gang in dispatch and eviction logs.
	Name string
	// Members are the workflows admitted together, in placement order.
	Members []Workflow
}

// Single wraps one workflow as a degenerate gang named after it.
func Single(w Workflow) Gang {
	return Gang{Name: w.Name, Members: []Workflow{w}}
}

// ValidateShape checks the gang's structure without resolving benchmarks
// against the built-in workload registry (see Task.ValidateShape): a
// named, non-empty member set with structurally valid members and no
// duplicate member names — eviction and completion accounting key
// members by name within a gang.
func (g Gang) ValidateShape() error {
	if g.Name == "" {
		return fmt.Errorf("workflow: gang with empty name")
	}
	if len(g.Members) == 0 {
		return fmt.Errorf("workflow: gang %s: no members", g.Name)
	}
	seen := make(map[string]bool, len(g.Members))
	for _, m := range g.Members {
		if err := m.ValidateShape(); err != nil {
			return fmt.Errorf("workflow: gang %s: %w", g.Name, err)
		}
		if seen[m.Name] {
			return fmt.Errorf("workflow: gang %s: duplicate member %s", g.Name, m.Name)
		}
		seen[m.Name] = true
	}
	return nil
}

// Size returns the member count.
func (g Gang) Size() int { return len(g.Members) }

// TaskCount returns the total task executions across members.
func (g Gang) TaskCount() int {
	n := 0
	for _, m := range g.Members {
		n += m.TaskCount()
	}
	return n
}
