// Package workflow models HPC workflows the way the paper schedules them:
// a workflow is a sequence of tasks (benchmark runs at a problem size,
// each possibly iterated), workflows arrive in a queue known ahead of
// execution, and groups of workflows are co-scheduled on GPUs.
//
// It also defines the paper's Table III workflow combinations and the
// uniform N×M configurations of Figures 4 and 5.
package workflow

import (
	"fmt"

	"gpushare/internal/gpu"
	"gpushare/internal/workload"
)

// Task is one step of a workflow: a benchmark at a problem size, run for
// a number of iterations (each iteration is one full task execution, as in
// Table III's "# Iter." columns).
type Task struct {
	// Benchmark is the workload name or paper alias ("Epsilon", "MHD").
	Benchmark string
	// Size is the problem-size label ("1x", "4x").
	Size string
	// Iterations is the repeat count; it must be at least 1.
	Iterations int
}

// Validate checks the task and resolves the benchmark name.
func (t Task) Validate() error {
	if _, err := workload.Get(t.Benchmark); err != nil {
		return err
	}
	return t.ValidateShape()
}

// ValidateShape checks the task's structure without resolving the
// benchmark against the built-in workload registry. Profile-store-backed
// planning (core.BuildWorkflowProfile) accepts any benchmark the store
// can resolve — synthetic fleet archetypes in particular — so only the
// size label and iteration count are checked here; execution paths that
// build engine specs still require Validate.
func (t Task) ValidateShape() error {
	if t.Benchmark == "" {
		return fmt.Errorf("workflow: task with empty benchmark")
	}
	if _, err := workload.ParseSizeFactor(t.Size); err != nil {
		return err
	}
	if t.Iterations < 1 {
		return fmt.Errorf("workflow: task %s/%s: iterations must be >= 1, got %d",
			t.Benchmark, t.Size, t.Iterations)
	}
	return nil
}

func (t Task) String() string {
	return fmt.Sprintf("%s/%s x%d", t.Benchmark, t.Size, t.Iterations)
}

// Workflow is a named sequence of tasks executed in order.
type Workflow struct {
	Name  string
	Tasks []Task
}

// Validate checks the workflow.
func (w Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workflow: workflow with empty name")
	}
	if len(w.Tasks) == 0 {
		return fmt.Errorf("workflow %s: no tasks", w.Name)
	}
	for _, t := range w.Tasks {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("workflow %s: %w", w.Name, err)
		}
	}
	return nil
}

// ValidateShape checks the workflow's structure without requiring its
// benchmarks to exist in the workload registry (see Task.ValidateShape).
func (w Workflow) ValidateShape() error {
	if w.Name == "" {
		return fmt.Errorf("workflow: workflow with empty name")
	}
	if len(w.Tasks) == 0 {
		return fmt.Errorf("workflow %s: no tasks", w.Name)
	}
	for _, t := range w.Tasks {
		if err := t.ValidateShape(); err != nil {
			return fmt.Errorf("workflow %s: %w", w.Name, err)
		}
	}
	return nil
}

// TaskCount returns the total number of task executions (iterations
// expanded).
func (w Workflow) TaskCount() int {
	n := 0
	for _, t := range w.Tasks {
		n += t.Iterations
	}
	return n
}

// BuildSpecs expands the workflow into the engine's task sequence on the
// given device: one TaskSpec per iteration, in order.
func (w Workflow) BuildSpecs(spec gpu.DeviceSpec) ([]*workload.TaskSpec, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	var out []*workload.TaskSpec
	for _, t := range w.Tasks {
		wl, err := workload.Get(t.Benchmark)
		if err != nil {
			return nil, err
		}
		ts, err := wl.BuildTaskSpec(t.Size, spec)
		if err != nil {
			return nil, fmt.Errorf("workflow %s: %w", w.Name, err)
		}
		for i := 0; i < t.Iterations; i++ {
			out = append(out, ts)
		}
	}
	return out, nil
}

// UniqueTasks returns the distinct (benchmark, size) pairs of the
// workflow — the set the profiler must cover before scheduling.
func (w Workflow) UniqueTasks() []Task {
	seen := make(map[string]bool)
	var out []Task
	for _, t := range w.Tasks {
		k := t.Benchmark + "/" + t.Size
		if !seen[k] {
			seen[k] = true
			out = append(out, Task{Benchmark: t.Benchmark, Size: t.Size, Iterations: 1})
		}
	}
	return out
}

// Queue is the pre-existing queue of workflows the scheduler assumes
// (§IV-B): "an entire queue of workflow tasks ... is known before workflow
// execution."
type Queue struct {
	items []Workflow
}

// NewQueue builds a queue in arrival order.
func NewQueue(workflows ...Workflow) (*Queue, error) {
	q := &Queue{}
	for _, w := range workflows {
		if err := q.Push(w); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// NewPlanningQueue builds a queue validating only workflow shape
// (ValidateShape): profile-store-backed planning accepts benchmarks the
// built-in registry does not know, e.g. synthetic fleet archetypes.
// Execution paths resolve benchmarks through the registry and should use
// NewQueue.
func NewPlanningQueue(workflows ...Workflow) (*Queue, error) {
	q := &Queue{}
	for _, w := range workflows {
		if err := w.ValidateShape(); err != nil {
			return nil, err
		}
		q.items = append(q.items, w)
	}
	return q, nil
}

// Push appends a workflow.
func (q *Queue) Push(w Workflow) error {
	if err := w.Validate(); err != nil {
		return err
	}
	q.items = append(q.items, w)
	return nil
}

// Pop removes and returns the front workflow.
func (q *Queue) Pop() (Workflow, bool) {
	if len(q.items) == 0 {
		return Workflow{}, false
	}
	w := q.items[0]
	q.items = q.items[1:]
	return w, true
}

// Len returns the queue length.
func (q *Queue) Len() int { return len(q.items) }

// Items returns the queued workflows in order (copy).
func (q *Queue) Items() []Workflow {
	out := make([]Workflow, len(q.items))
	copy(out, q.items)
	return out
}

// Uniform builds the N×M workflow sets of Figures 4 and 5: parallel
// workflows each consisting of seqTasks sequential runs of the same
// benchmark task. The paper labels these "<seqTasks>x<parallel>".
func Uniform(benchmark, size string, seqTasks, parallel int) ([]Workflow, error) {
	if seqTasks < 1 || parallel < 1 {
		return nil, fmt.Errorf("workflow: uniform set needs positive dimensions, got %dx%d",
			seqTasks, parallel)
	}
	out := make([]Workflow, parallel)
	for i := range out {
		out[i] = Workflow{
			Name:  fmt.Sprintf("%s-%s-%dx%d-w%d", benchmark, size, seqTasks, parallel, i),
			Tasks: []Task{{Benchmark: benchmark, Size: size, Iterations: seqTasks}},
		}
		if err := out[i].Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
