package workflow

import "fmt"

// Combination is one row of the paper's Table III: a set of workflows
// evaluated together.
type Combination struct {
	ID        int
	Workflows []Workflow
}

// Name returns "combo-N".
func (c Combination) Name() string { return fmt.Sprintf("combo-%d", c.ID) }

// TaskCount is the total task executions across the combination.
func (c Combination) TaskCount() int {
	n := 0
	for _, w := range c.Workflows {
		n += w.TaskCount()
	}
	return n
}

// wf is a table-literal helper.
func wf(comboID, idx int, tasks ...Task) Workflow {
	return Workflow{Name: fmt.Sprintf("combo-%d-wf-%d", comboID, idx), Tasks: tasks}
}

// Combinations returns the paper's Table III workflow combinations 1–10,
// verbatim.
func Combinations() []Combination {
	return []Combination{
		{ID: 1, Workflows: []Workflow{
			wf(1, 1, Task{"AthenaPK", "4x", 5}),
			wf(1, 2, Task{"LAMMPS", "4x", 3}),
		}},
		{ID: 2, Workflows: []Workflow{
			wf(2, 1, Task{"Epsilon", "1x", 1}),
			wf(2, 2, Task{"Athena", "8x", 1}),
			wf(2, 3, Task{"Athena", "4x", 14}),
		}},
		{ID: 3, Workflows: []Workflow{
			wf(3, 1, Task{"Kripke", "4x", 11}),
			wf(3, 2, Task{"WarpX", "2x", 8}),
		}},
		{ID: 4, Workflows: []Workflow{
			wf(4, 1, Task{"Kripke", "4x", 13}),
			wf(4, 2, Task{"WarpX", "4x", 2}),
		}},
		{ID: 5, Workflows: []Workflow{
			wf(5, 1, Task{"Epsilon", "1x", 1}),
			wf(5, 2, Task{"MHD", "4x", 2}),
		}},
		{ID: 6, Workflows: []Workflow{
			wf(6, 1, Task{"Gravity", "4x", 4}),
			wf(6, 2, Task{"Kripke", "2x", 48}),
		}},
		{ID: 7, Workflows: []Workflow{
			wf(7, 1, Task{"MHD", "4x", 2}),
			wf(7, 2, Task{"LAMMPS", "4x", 8}),
		}},
		{ID: 8, Workflows: []Workflow{
			wf(8, 1, Task{"Athena", "1x", 300}),
			wf(8, 2, Task{"Gravity", "1x", 50}),
			wf(8, 3, Task{"Athena", "1x", 300}),
			wf(8, 4, Task{"Gravity", "1x", 50}),
		}},
		{ID: 9, Workflows: []Workflow{
			wf(9, 1, Task{"Athena", "1x", 300}),
			wf(9, 2, Task{"Gravity", "1x", 50}),
		}},
		{ID: 10, Workflows: []Workflow{
			wf(10, 1, Task{"MHD", "4x", 1}),
			wf(10, 2, Task{"LAMMPS", "4x", 4}),
			wf(10, 3, Task{"MHD", "4x", 1}),
			wf(10, 4, Task{"LAMMPS", "4x", 4}),
		}},
	}
}

// Combo returns Table III combination id (1-based).
func Combo(id int) (Combination, error) {
	combos := Combinations()
	if id < 1 || id > len(combos) {
		return Combination{}, fmt.Errorf("workflow: combination %d out of range [1,%d]", id, len(combos))
	}
	return combos[id-1], nil
}
