package workflow

import (
	"strings"
	"testing"
)

func gangWf(name string) Workflow {
	return Workflow{
		Name:  name,
		Tasks: []Task{{Benchmark: "fleet-a000", Size: "1x", Iterations: 1}},
	}
}

func TestGangValidateShape(t *testing.T) {
	g := Gang{Name: "train-4", Members: []Workflow{gangWf("w0"), gangWf("w1")}}
	if err := g.ValidateShape(); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 || g.TaskCount() != 2 {
		t.Fatalf("size/tasks = %d/%d", g.Size(), g.TaskCount())
	}
}

func TestGangValidateShapeRejects(t *testing.T) {
	cases := []struct {
		name string
		g    Gang
		want string
	}{
		{"empty name", Gang{Members: []Workflow{gangWf("w0")}}, "empty name"},
		{"no members", Gang{Name: "g"}, "no members"},
		{"bad member", Gang{Name: "g", Members: []Workflow{{Name: "w"}}}, "no tasks"},
		{"duplicate member", Gang{Name: "g", Members: []Workflow{gangWf("w0"), gangWf("w0")}}, "duplicate member"},
	}
	for _, c := range cases {
		err := c.g.ValidateShape()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestSingleGang(t *testing.T) {
	g := Single(gangWf("solo"))
	if err := g.ValidateShape(); err != nil {
		t.Fatal(err)
	}
	if g.Name != "solo" || g.Size() != 1 {
		t.Fatalf("single gang = %+v", g)
	}
}
