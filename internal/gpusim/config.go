// Package gpusim is the discrete-event execution engine: it runs sets of
// MPS clients (or time-sliced processes) over the device model in package
// gpu, resolving SM/bandwidth contention, MPS partition granularity and
// software power capping into per-task completion times and device energy.
//
// The engine uses a fluid model: between events, every resident kernel
// burst progresses at a piecewise-constant rate determined by the current
// contention and clock state; events are burst/gap boundaries and client
// arrivals. Simulations are deterministic for a given seed.
package gpusim

import (
	"fmt"

	"gpushare/internal/gpu"
	"gpushare/internal/simtime"
	"gpushare/internal/workload"
)

// ShareMode selects the GPU sharing mechanism (§II-B of the paper).
type ShareMode int

const (
	// ShareMPS runs clients concurrently under CUDA MPS semantics:
	// kernels from different clients are co-resident, partitions cap each
	// client's SMs, bandwidth and power are shared.
	ShareMPS ShareMode = iota
	// ShareTimeSlice runs clients under the default time-sliced
	// scheduler: kernels never overlap; the GPU round-robins between
	// runnable clients with a context-switch efficiency penalty.
	ShareTimeSlice
	// ShareStreams runs clients as CUDA streams of one process (§II-B):
	// kernels overlap like MPS but there is no MPS server (no per-client
	// overhead), no SM partitioning ("no SM performance isolation") and
	// no memory protection between the work queues.
	ShareStreams
)

func (m ShareMode) String() string {
	switch m {
	case ShareMPS:
		return "mps"
	case ShareTimeSlice:
		return "time-slicing"
	case ShareStreams:
		return "cuda-streams"
	default:
		return fmt.Sprintf("ShareMode(%d)", int(m))
	}
}

// OOMPolicy selects how the engine reacts when a task's memory reservation
// does not fit.
type OOMPolicy int

const (
	// OOMSkipTask records the failure and skips the task, like a real
	// job crashing with cudaErrorMemoryAllocation while the rest of the
	// combination continues.
	OOMSkipTask OOMPolicy = iota
	// OOMAbort stops the simulation with an error.
	OOMAbort
)

// ContentionParams tunes the sharing model. Zero values select defaults.
type ContentionParams struct {
	// OccupancyBonus models warp-level latency hiding between
	// co-resident kernels: unused warp slots let the SM scheduler fill
	// one kernel's stalls with another's warps, so the effective compute
	// capacity under co-residency is 1 + OccupancyBonus × (unfilled
	// achieved-occupancy headroom). This is what makes two high-duty
	// workloads co-scheduled under MPS slightly *better* than sequential
	// (the paper's ~6% LAMMPS-only gain) instead of strictly
	// proportional.
	OccupancyBonus float64
	// OversubMaxOverhead is the asymptotic extra slowdown when aggregate
	// compute demand far exceeds capacity (cache thrash, scheduler
	// pressure). The overhead applied is
	// OversubMaxOverhead × x/(x+OversubHalfK) with x = demand-capacity.
	OversubMaxOverhead float64
	// OversubHalfK is the half-saturation constant for the above.
	OversubHalfK float64
	// ClientOverhead is the per-additional-resident-client efficiency
	// loss under MPS: efficiency = 1/(1 + ClientOverhead×(n-1)). It
	// models host-side serialization through the shared MPS server
	// (launch proxying, scheduling hardware): the GPU sits idle during
	// these stalls, so the overhead reduces both progress and power —
	// unlike OversubMaxOverhead, whose thrashed cycles still burn energy.
	ClientOverhead float64
	// TimesliceOverhead is the fraction of each quantum lost to context
	// switching under the default time-sliced scheduler.
	TimesliceOverhead float64
	// JitterAmp is the relative amplitude of per-burst duration jitter
	// (deterministic per seed). Zero disables jitter.
	JitterAmp float64
}

// DefaultContention returns the calibrated defaults (see DESIGN.md §4 and
// the ablation benches).
func DefaultContention() ContentionParams {
	return ContentionParams{
		OccupancyBonus:     0.20,
		OversubMaxOverhead: 0.10,
		OversubHalfK:       2.0,
		ClientOverhead:     0.006,
		TimesliceOverhead:  0.06,
		JitterAmp:          0.02,
	}
}

func (p ContentionParams) withDefaults() ContentionParams {
	d := DefaultContention()
	if p.OccupancyBonus == 0 {
		p.OccupancyBonus = d.OccupancyBonus
	}
	if p.OversubMaxOverhead == 0 {
		p.OversubMaxOverhead = d.OversubMaxOverhead
	}
	if p.OversubHalfK == 0 {
		p.OversubHalfK = d.OversubHalfK
	}
	if p.ClientOverhead == 0 {
		p.ClientOverhead = d.ClientOverhead
	}
	if p.TimesliceOverhead == 0 {
		p.TimesliceOverhead = d.TimesliceOverhead
	}
	if p.JitterAmp == 0 {
		p.JitterAmp = d.JitterAmp
	}
	return p
}

// validate rejects out-of-range parameters.
func (p ContentionParams) validate() error {
	if p.OccupancyBonus < 0 || p.OccupancyBonus > 1 {
		return fmt.Errorf("gpusim: OccupancyBonus must be in [0,1], got %g", p.OccupancyBonus)
	}
	if p.OversubMaxOverhead < 0 || p.OversubMaxOverhead >= 1 {
		return fmt.Errorf("gpusim: OversubMaxOverhead must be in [0,1), got %g", p.OversubMaxOverhead)
	}
	if p.OversubHalfK < 0 {
		return fmt.Errorf("gpusim: OversubHalfK must be non-negative, got %g", p.OversubHalfK)
	}
	if p.ClientOverhead < 0 || p.ClientOverhead >= 1 {
		return fmt.Errorf("gpusim: ClientOverhead must be in [0,1), got %g", p.ClientOverhead)
	}
	if p.TimesliceOverhead < 0 || p.TimesliceOverhead >= 1 {
		return fmt.Errorf("gpusim: TimesliceOverhead must be in [0,1), got %g", p.TimesliceOverhead)
	}
	if p.JitterAmp < 0 || p.JitterAmp > 0.5 {
		return fmt.Errorf("gpusim: JitterAmp must be in [0,0.5], got %g", p.JitterAmp)
	}
	return nil
}

// NoOverhead returns contention parameters with every second-order
// overhead disabled — pure proportional sharing. Pair it with
// Config.ExactContention, otherwise the zero fields take defaults again.
// Used by the ablation benches.
func NoOverhead() ContentionParams {
	return ContentionParams{}
}

// Config configures one simulation run.
type Config struct {
	// Device is the GPU model; the zero value selects the A100X.
	Device gpu.DeviceSpec
	// Mode is the sharing mechanism.
	Mode ShareMode
	// Contention tunes the sharing model; zero fields take defaults.
	// Set ExactContention to use Contention verbatim (ablations).
	Contention      ContentionParams
	ExactContention bool
	// Seed drives the deterministic jitter streams.
	Seed uint64
	// OOM selects the out-of-memory policy.
	OOM OOMPolicy
	// DisablePowerCap turns the SW power-cap governor off (ablation).
	DisablePowerCap bool
}

// Client is one simulated process: a workflow executing its tasks
// sequentially under a single MPS client (or time-slice process).
type Client struct {
	// ID is unique within a run; it is also the MPS client identity and
	// memory-allocation owner.
	ID string
	// Partition is the MPS active-thread fraction in (0, 1]. Ignored
	// under time-slicing. Zero means 1.0 (no partition).
	Partition float64
	// Arrival is when the client connects and starts its first task.
	Arrival simtime.Time
	// Tasks run back-to-back; each reserves its memory for its duration.
	Tasks []*workload.TaskSpec
}

func (c *Client) validate() error {
	if c.ID == "" {
		return fmt.Errorf("gpusim: client with empty ID")
	}
	if c.Partition < 0 || c.Partition > 1 {
		return fmt.Errorf("gpusim: client %s: partition must be in [0,1], got %g", c.ID, c.Partition)
	}
	if c.Arrival < 0 {
		return fmt.Errorf("gpusim: client %s: negative arrival", c.ID)
	}
	if len(c.Tasks) == 0 {
		return fmt.Errorf("gpusim: client %s: no tasks", c.ID)
	}
	for i, t := range c.Tasks {
		if t == nil || len(t.Phases) == 0 || t.Cycles <= 0 {
			return fmt.Errorf("gpusim: client %s: task %d is empty", c.ID, i)
		}
	}
	return nil
}
