package gpusim

import (
	"fmt"

	"gpushare/internal/workload"
)

// RunSolo simulates a single task alone on the device — the offline
// profiling configuration (§IV-A).
func RunSolo(cfg Config, task *workload.TaskSpec) (*Result, error) {
	eng, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.AddClient(Client{
		ID:    fmt.Sprintf("solo-%s-%s", task.Workload, task.Size),
		Tasks: []*workload.TaskSpec{task},
	}); err != nil {
		return nil, err
	}
	return eng.Run()
}

// RunSequential simulates the paper's sequential-scheduling baseline:
// "jobs are scheduled individually on GPUs in queue order with no parallel
// overlap" (§IV-C). All tasks run back-to-back under a single client.
func RunSequential(cfg Config, tasks []*workload.TaskSpec) (*Result, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("gpusim: sequential run needs at least one task")
	}
	eng, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.AddClient(Client{ID: "sequential", Tasks: tasks}); err != nil {
		return nil, err
	}
	return eng.Run()
}

// RunClients simulates a set of concurrent clients (one MPS client or
// time-sliced process per entry).
func RunClients(cfg Config, clients []Client) (*Result, error) {
	eng, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range clients {
		if err := eng.AddClient(c); err != nil {
			return nil, err
		}
	}
	return eng.Run()
}
