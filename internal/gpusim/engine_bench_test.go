package gpusim

// Steady-state hot-path benchmarks and the zero-allocation regression
// test. These are white-box on purpose: they drive the engine through
// start/step directly so that per-run setup (client registration, buffer
// preallocation) is excluded and the measurement covers exactly the
// event-loop steady state — pop, advance, dispatch, recompute.

import (
	"fmt"
	"testing"

	"gpushare/internal/kernel"
	"gpushare/internal/obs"
	"gpushare/internal/simtime"
	"gpushare/internal/workload"
)

// steadySpec is a synthetic single-phase task: a 10 ms kernel burst
// followed by a 2 ms host gap, repeated cycles times. One cycle costs the
// engine exactly two events (burst finish, gap end), which makes ns/event
// accounting exact.
func steadySpec(cycles int) *workload.TaskSpec {
	d := kernel.Demand{
		SMFootprint: 0.6, Fill: 0.35, Compute: 0.30, Saturation: 0.35,
		Bandwidth: 0.20, TheoreticalOcc: 0.5, AchievedOcc: 0.25,
	}
	return &workload.TaskSpec{
		Workload: "steady", Size: "1x",
		MaxMemMiB: 1024,
		Phases: []workload.Phase{{
			Demand:     d,
			ActiveWork: 10 * simtime.Millisecond,
			GapAfter:   2 * simtime.Millisecond,
			DynPowerW:  30,
		}},
		Cycles: cycles,
	}
}

// steadyEngine builds and starts an n-client MPS engine over steadySpec
// and warms the hot path (event/burst freelists, queue heap) with a few
// hundred steps.
func steadyEngine(tb testing.TB, nClients, cycles int, seed uint64) *Engine {
	tb.Helper()
	ts := steadySpec(cycles)
	eng, err := New(Config{Seed: seed, Mode: ShareMPS})
	if err != nil {
		tb.Fatal(err)
	}
	for c := 0; c < nClients; c++ {
		if err := eng.AddClient(Client{
			ID:    fmt.Sprintf("c%02d", c),
			Tasks: []*workload.TaskSpec{ts},
		}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := eng.start(); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if ok, err := eng.step(); err != nil || !ok {
			tb.Fatalf("warmup step %d: ok=%v err=%v", i, ok, err)
		}
	}
	return eng
}

// BenchmarkEngineSteadyState measures the per-event cost of the hot path
// under an 8-client MPS co-schedule with a long cycle count. Each
// iteration is one event, so ns/op is ns/event; allocs/op must be 0 in
// steady state (see BENCH_engine.json for the recorded before/after).
func BenchmarkEngineSteadyState(b *testing.B) {
	const nClients, cycles = 8, 4000
	seed := uint64(1)
	eng := steadyEngine(b, nClients, cycles, seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := eng.step()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			// Simulation drained: rebuild off the clock.
			b.StopTimer()
			seed++
			eng = steadyEngine(b, nClients, cycles, seed)
			b.StartTimer()
		}
	}
}

// TestSteadyStateZeroAllocs is the allocation regression net for the hot
// path: once the engine is warm, stepping the event loop must not allocate
// at all — events and bursts come from freelists, rate slices are engine
// scratch, and the trace buffer is preallocated from the cycle count.
func TestSteadyStateZeroAllocs(t *testing.T) {
	eng := steadyEngine(t, 8, 4000, 1)
	avg := testing.AllocsPerRun(4000, func() {
		ok, err := eng.step()
		if err != nil || !ok {
			t.Fatalf("step: ok=%v err=%v", ok, err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state step allocates %.2f times per event, want 0", avg)
	}
}

// TestStepDrainsLikeRun pins the step/Run split: driving the engine via
// step until drain must leave every client done, with the same makespan a
// Run-driven twin produces.
func TestStepDrainsLikeRun(t *testing.T) {
	stepped := steadyEngine(t, 4, 50, 7)
	for {
		ok, err := stepped.step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	for _, cs := range stepped.clients {
		if cs.phase != phaseDone {
			t.Fatalf("client %s not done after drain", cs.spec.ID)
		}
	}

	ran, err := New(Config{Seed: 7, Mode: ShareMPS})
	if err != nil {
		t.Fatal(err)
	}
	ts := steadySpec(50)
	for c := 0; c < 4; c++ {
		if err := ran.AddClient(Client{
			ID: fmt.Sprintf("c%02d", c), Tasks: []*workload.TaskSpec{ts},
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ran.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := simtime.Duration(stepped.now); got != res.Makespan {
		t.Fatalf("step-driven makespan %v != Run makespan %v", got, res.Makespan)
	}
	if stepped.events != ran.events {
		t.Fatalf("step-driven events %d != Run events %d", stepped.events, ran.events)
	}
}

// TestSteadyStateZeroAllocsTelemetryDisabled pins the telemetry
// instrumentation's disabled-path cost at exactly zero allocations: with
// no active hub (the default), the added counters are plain integer
// fields and the span branches never taken, so the steady-state step
// remains allocation-free. Kept separate from TestSteadyStateZeroAllocs
// so a future change that installs a process-default hub cannot silently
// weaken the pin.
func TestSteadyStateZeroAllocsTelemetryDisabled(t *testing.T) {
	prev := obs.SetActive(nil)
	defer obs.SetActive(prev)
	eng := steadyEngine(t, 8, 4000, 1)
	avg := testing.AllocsPerRun(4000, func() {
		ok, err := eng.step()
		if err != nil || !ok {
			t.Fatalf("step: ok=%v err=%v", ok, err)
		}
	})
	if avg != 0 {
		t.Fatalf("telemetry-disabled steady-state step allocates %.2f times per event, want 0", avg)
	}
}

// BenchmarkEngineSteadyStateObs is BenchmarkEngineSteadyState with a live
// telemetry hub: hot-path counters still only bump engine-local integers
// (folded into the registry once per Run), but every finished burst now
// records a sim-time span, so the delta against the base benchmark is the
// full enabled-telemetry overhead (recorded in BENCH_engine.json).
func BenchmarkEngineSteadyStateObs(b *testing.B) {
	prev := obs.SetActive(obs.NewHub(nil))
	defer obs.SetActive(prev)
	const nClients, cycles = 8, 4000
	seed := uint64(1)
	eng := steadyEngine(b, nClients, cycles, seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := eng.step()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.StopTimer()
			seed++
			eng = steadyEngine(b, nClients, cycles, seed)
			b.StartTimer()
		}
	}
}
