package gpusim

import (
	"fmt"
	"math"
	"sort"

	"gpushare/internal/eventq"
	"gpushare/internal/gpu"
	"gpushare/internal/kernel"
	"gpushare/internal/obs"
	"gpushare/internal/simtime"
	"gpushare/internal/xrand"
)

// TaskRecord is the outcome of one task execution within a client.
type TaskRecord struct {
	Workload string
	Size     string
	Start    simtime.Time
	End      simtime.Time
	// OOM marks a task skipped because its memory reservation failed.
	OOM bool
}

// Duration returns the task's wall time.
func (r TaskRecord) Duration() simtime.Duration { return r.End.Sub(r.Start) }

// ClientResult is the outcome of one client.
type ClientResult struct {
	ID    string
	Start simtime.Time
	End   simtime.Time
	Tasks []TaskRecord
}

// CompletedTasks counts non-OOM task executions.
func (c *ClientResult) CompletedTasks() int {
	n := 0
	for _, t := range c.Tasks {
		if !t.OOM {
			n++
		}
	}
	return n
}

// TracePoint is one piecewise-constant interval of device state; the trace
// is what the simulated NVML samplers and the profiler consume.
type TracePoint struct {
	// At is the interval start; the interval extends to the next point
	// (or the makespan for the last point).
	At simtime.Time
	// PowerW is board power during the interval.
	PowerW float64
	// ClockFactor is the applied clock multiplier.
	ClockFactor float64
	// Capped reports active SW power capping.
	Capped bool
	// ActiveKernels is the number of resident kernel bursts.
	ActiveKernels int
	// ComputeUtil is instantaneous device compute utilization in [0,1]
	// (the Table II "SM utilization" integrand).
	ComputeUtil float64
	// BWUtil is instantaneous memory-bandwidth utilization in [0,1].
	BWUtil float64
	// MemUsedMiB is the current device-memory reservation total.
	MemUsedMiB int64
}

// Result is the outcome of a simulation run.
type Result struct {
	Mode     ShareMode
	Makespan simtime.Duration
	// EnergyJ is total board energy over the makespan (incl. idle).
	EnergyJ float64
	// AvgPowerW and PeakPowerW summarize the power trace.
	AvgPowerW  float64
	PeakPowerW float64
	// CappedFraction is the share of the makespan under SW power capping
	// (Figure 3's quantity).
	CappedFraction float64
	// CappedTime is the absolute time under capping.
	CappedTime simtime.Duration
	// Clients holds per-client outcomes keyed by client ID.
	Clients map[string]*ClientResult
	// OOMFailures lists "client/workload" strings for skipped tasks.
	OOMFailures []string
	// Trace is the piecewise-constant device-state trace.
	Trace []TracePoint
	// PeakConcurrency is the maximum number of simultaneously resident
	// kernel bursts observed.
	PeakConcurrency int
}

// TasksCompleted counts non-OOM tasks across all clients.
func (r *Result) TasksCompleted() int {
	n := 0
	for _, c := range r.Clients {
		n += c.CompletedTasks()
	}
	return n
}

// clientPhase is the per-client execution position.
type clientPhase int

const (
	phaseWaiting clientPhase = iota // before arrival
	phaseActive                     // a burst is resident
	phaseGap                        // host-side gap
	phaseDone
)

// Event kinds dispatched by the engine loop. The operand type is fixed per
// kind; see dispatch.
const (
	// evTaskStart fires at a client's arrival instant. Data: *clientState.
	evTaskStart eventq.Kind = iota
	// evBurstFinish fires when a resident burst's work reaches zero at the
	// current rates. Data: *burst.
	evBurstFinish
	// evGapEnd fires at the end of a host-side gap. Data: *clientState.
	evGapEnd
)

// burst is one resident kernel burst in the fluid model. bursts are pooled
// on the engine: acquireBurst/releaseBurst recycle them so steady-state
// execution allocates nothing.
type burst struct {
	client    *clientState
	demand    kernel.Demand
	dynPowerW float64
	remaining float64 // solo-rate seconds of work left
	rate      float64 // current achieved rate (updated each recompute)
	finishEv  *eventq.Event
	// capShare is the MPS partition cap on this burst's rate (1 outside
	// MPS or above saturation); capCompute is demand.Compute × capShare.
	// Both are fixed for the burst's lifetime and hoisted out of
	// preThrottleRates, which would otherwise redo the division on every
	// recompute.
	capShare   float64
	capCompute float64
	// startedAt is the residency instant, kept for the burst's telemetry
	// span (one store per burst; recorded only when spans are enabled).
	startedAt simtime.Time
}

// clientState is the engine-side state machine for one client.
type clientState struct {
	spec     Client
	idx      int
	rng      *xrand.Source
	phase    clientPhase
	taskIdx  int
	cycleIdx int
	phaseIdx int
	burst    *burst
	result   *ClientResult
	taskRec  *TaskRecord
}

// Engine runs one simulation. Create with New, add clients, then Run.
type Engine struct {
	cfg     Config
	params  ContentionParams
	power   gpu.PowerModel
	mem     *gpu.MemAllocator
	queue   eventq.Queue
	clients []*clientState
	active  []*burst

	now          simtime.Time
	lastAdvance  simtime.Time
	decision     gpu.GovernorDecision
	computeUtil  float64
	bwUtil       float64
	meter        gpu.EnergyMeter
	trace        []TracePoint
	oomFailures  []string
	peakResident int
	events       int
	ran          bool
	fatalErr     error

	// Reusable hot-path scratch: preThrottleRates' two per-call rate
	// slices and the burst freelist. Sized once in start.
	powerScratch    []float64
	progressScratch []float64
	burstFree       []*burst

	// Telemetry. The hot loop maintains plain integer counters only
	// (always on: one instruction each, no allocation); hub/spans are
	// captured from obs.Active at New and consulted on cold paths — the
	// counters are folded into the registry once at Run end, and burst
	// spans are recorded per retired burst only when a recorder is
	// attached. With telemetry disabled (nil hub, the default) the
	// steady state stays at 0 allocs/op; see TestSteadyStateZeroAllocs.
	hub           *obs.Hub
	spans         *obs.SpanRecorder
	spanTrack     string
	reschedSkips  int64
	reschedTakes  int64
	burstReuses   int64
	burstAllocs   int64
	heapHighWater int
}

// New creates an engine for cfg.
func New(cfg Config) (*Engine, error) {
	if cfg.Device.Name == "" {
		cfg.Device = gpu.MustLookup("A100X")
	}
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	params := cfg.Contention
	if !cfg.ExactContention {
		params = params.withDefaults()
	}
	if err := params.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		params: params,
		power:  gpu.PowerModel{Spec: cfg.Device},
		mem:    gpu.NewMemAllocator(cfg.Device.Name, cfg.Device.MemoryMiB),
		hub:    obs.Active(),
	}
	if e.hub != nil {
		e.spans = e.hub.Spans
	}
	return e, nil
}

// AddClient registers a client before Run.
func (e *Engine) AddClient(c Client) error {
	if e.ran {
		return fmt.Errorf("gpusim: AddClient after Run")
	}
	if err := c.validate(); err != nil {
		return err
	}
	for _, existing := range e.clients {
		if existing.spec.ID == c.ID {
			return fmt.Errorf("gpusim: duplicate client ID %q", c.ID)
		}
	}
	if c.Partition == 0 {
		c.Partition = 1
	}
	if e.cfg.Mode == ShareMPS && len(e.clients) >= e.cfg.Device.MaxMPSClients {
		return fmt.Errorf("gpusim: client %s exceeds MPS client limit %d",
			c.ID, e.cfg.Device.MaxMPSClients)
	}
	cs := &clientState{
		spec: c,
		idx:  len(e.clients),
		rng:  xrand.New(e.cfg.Seed).Fork(uint64(len(e.clients)) + 1),
		result: &ClientResult{
			ID:    c.ID,
			Start: c.Arrival,
		},
	}
	e.clients = append(e.clients, cs)
	return nil
}

// maxTracePrealloc caps the trace buffer's up-front capacity; longer
// traces fall back to amortized append growth.
const maxTracePrealloc = 1 << 16

// start validates the client set, preallocates the per-run buffers and
// schedules the arrival events. It is the prologue of Run, split out so
// white-box benchmarks can drive the loop step by step.
func (e *Engine) start() error {
	if e.ran {
		return fmt.Errorf("gpusim: Run called twice")
	}
	e.ran = true
	if len(e.clients) == 0 {
		return fmt.Errorf("gpusim: no clients")
	}

	// Preallocate everything the steady state would otherwise grow by
	// repeated append: the rate scratch slices (at most one resident
	// burst per client), each client's task records (exactly one record
	// per task, OOM or not), and the trace buffer (at most one merged
	// point per burst/gap boundary, plus arrivals and slack).
	n := len(e.clients)
	e.powerScratch = make([]float64, n)
	e.progressScratch = make([]float64, n)
	traceEst := 4
	for _, cs := range e.clients {
		cs.result.Tasks = make([]TaskRecord, 0, len(cs.spec.Tasks))
		traceEst += 2
		for _, t := range cs.spec.Tasks {
			traceEst += 2*t.Cycles*len(t.Phases) + 2
		}
	}
	if traceEst > maxTracePrealloc {
		traceEst = maxTracePrealloc
	}
	e.trace = make([]TracePoint, 0, traceEst)

	// The span track labels this engine's timeline row; the first
	// client's ID is deterministic and unique enough across the runs a
	// session traces (scheduler groups name clients g<gpu>-w<wave>-...).
	if e.spans != nil {
		e.spanTrack = "engine:" + e.clients[0].spec.ID
	}

	e.decision = e.power.Decide(0)
	for _, cs := range e.clients {
		e.queue.Schedule(cs.spec.Arrival, evTaskStart, cs)
	}
	return nil
}

// step pops and dispatches one event. It returns false when the queue is
// drained or an error occurred.
//
//repro:hotpath pinned by TestSteadyStateZeroAllocs
func (e *Engine) step() (bool, error) {
	if n := e.queue.Len(); n > e.heapHighWater {
		e.heapHighWater = n
	}
	ev, ok := e.queue.Pop()
	if !ok {
		return false, nil
	}
	if ev.At < e.now {
		//repro:allow:hotpathalloc fatal-error path: the simulation is over, one formatted error is fine
		return false, fmt.Errorf("gpusim: time went backwards: %v -> %v", e.now, ev.At)
	}
	e.advance(ev.At)
	e.dispatch(ev)
	e.queue.Free(ev)
	if e.fatalErr != nil {
		return false, e.fatalErr
	}
	e.recompute()
	e.events++
	return true, nil
}

// dispatch routes a popped event to its handler by kind.
//
//repro:hotpath pinned by TestSteadyStateZeroAllocs
func (e *Engine) dispatch(ev *eventq.Event) {
	switch ev.Kind {
	case evTaskStart:
		e.startNextTask(ev.Data.(*clientState))
	case evBurstFinish:
		e.finishBurst(ev.Data.(*burst), ev)
	case evGapEnd:
		e.finishBurstAdvance(ev.Data.(*clientState))
	default:
		//repro:allow:hotpathalloc fatal-error path: unknown kinds abort the run
		e.fatalErr = fmt.Errorf("gpusim: unknown event kind %d", ev.Kind)
	}
}

// Run executes the simulation to completion and returns the result. Run
// may be called once per Engine.
func (e *Engine) Run() (*Result, error) {
	if err := e.start(); err != nil {
		return nil, err
	}

	const maxEvents = 200_000_000 // defensive bound; never hit in practice
	for {
		if e.events > maxEvents {
			return nil, fmt.Errorf("gpusim: event budget exceeded (livelock?)")
		}
		ok, err := e.step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}

	for _, cs := range e.clients {
		if cs.phase != phaseDone {
			return nil, fmt.Errorf("gpusim: client %s did not finish (stuck in phase %d)",
				cs.spec.ID, cs.phase)
		}
	}

	// OOM failures accumulate in event-firing order; sort so Result is
	// independent of tie-breaking between simultaneous reservations.
	sort.Strings(e.oomFailures)
	res := &Result{
		Mode:            e.cfg.Mode,
		Makespan:        simtime.Duration(e.now),
		EnergyJ:         e.meter.EnergyJ(),
		AvgPowerW:       e.meter.AveragePowerW(),
		PeakPowerW:      e.meter.PeakPowerW(),
		CappedFraction:  e.meter.CappedFraction(),
		CappedTime:      e.meter.CappedTime(),
		Clients:         make(map[string]*ClientResult, len(e.clients)),
		OOMFailures:     e.oomFailures,
		Trace:           e.trace,
		PeakConcurrency: e.peakResident,
	}
	for _, cs := range e.clients {
		res.Clients[cs.spec.ID] = cs.result
	}
	e.flushObs()
	return res, nil
}

// flushObs folds the engine's plain hot-loop counters into the active
// metrics registry. It runs once per completed Run — a cold path — so
// the event loop itself never touches the registry. Every value is a
// commutative integer aggregate, so totals across concurrently running
// engines are independent of worker count and interleaving (DESIGN.md
// §10).
func (e *Engine) flushObs() {
	h := e.hub
	if h == nil || h.Metrics == nil {
		return
	}
	m := h.Metrics
	m.Counter("engine_runs_total").Inc()
	m.Counter("engine_events_total").Add(int64(e.events))
	m.Counter("engine_resched_skipped_total").Add(e.reschedSkips)
	m.Counter("engine_resched_taken_total").Add(e.reschedTakes)
	m.Counter("engine_burst_pool_reuse_total").Add(e.burstReuses)
	m.Counter("engine_burst_pool_alloc_total").Add(e.burstAllocs)
	m.Counter("engine_oom_failures_total").Add(int64(len(e.oomFailures)))
	m.Gauge("engine_heap_depth_max").SetMax(int64(e.heapHighWater))
	qs := e.queue.Stats()
	m.Counter("eventq_acquires_total").Add(int64(qs.Acquires))
	m.Counter("eventq_freelist_hits_total").Add(int64(qs.FreelistHits))
}

// advance integrates burst progress and energy from lastAdvance to now
// under the current decision/rates.
func (e *Engine) advance(now simtime.Time) {
	dt := now.Sub(e.lastAdvance)
	if dt > 0 {
		e.meter.Accumulate(dt, e.decision)
		secs := dt.Seconds()
		for _, b := range e.active {
			b.remaining -= b.rate * secs
			if b.remaining < 0 {
				b.remaining = 0
			}
		}
	}
	e.lastAdvance = now
	e.now = now
}

// recompute re-resolves contention, power and finish events after a state
// change. It must run with e.now current.
func (e *Engine) recompute() {
	n := len(e.active)
	if n > e.peakResident {
		e.peakResident = n
	}

	var rawDynW, cUtil, bUtil float64
	if n > 0 {
		powerRates, progressRates := e.preThrottleRates()
		for i, b := range e.active {
			rawDynW += b.dynPowerW * powerRates[i]
		}
		dec := e.power.Decide(rawDynW)
		if e.cfg.DisablePowerCap && dec.Capped {
			dec.ClockFactor = 1
			dec.Capped = false
			dec.Reasons = gpu.ThrottleNone
			dec.PowerW = e.power.Spec.IdlePowerW + dec.DemandW
		}
		e.decision = dec
		for i, b := range e.active {
			b.rate = progressRates[i] * dec.ClockFactor
			if b.rate < 1e-9 {
				b.rate = 1e-9
			}
			cUtil += b.demand.Compute * b.rate
			bUtil += b.demand.Bandwidth * b.rate
		}
	} else {
		e.decision = e.power.Decide(0)
	}
	e.computeUtil = math.Min(cUtil, 1)
	e.bwUtil = math.Min(bUtil, 1)

	// Refresh finish events at the new rates. Reschedule-skip: when the
	// recomputed finish instant equals the already-scheduled one — the
	// common case whenever an event leaves a burst's rate unchanged —
	// the pending event is kept as is. Fire times are byte-identical to
	// unconditional rescheduling by construction, because the skip
	// triggers only on exact equality of the quantized instant.
	for _, b := range e.active {
		delay := simtime.FromSeconds(b.remaining / b.rate)
		if delay < 0 {
			delay = 0
		}
		at := e.now.Add(delay)
		if b.finishEv != nil {
			if b.finishEv.At == at {
				e.reschedSkips++
				continue
			}
			e.queue.Cancel(b.finishEv)
		}
		e.reschedTakes++
		b.finishEv = e.queue.Schedule(at, evBurstFinish, b)
	}

	e.appendTrace()
}

// preThrottleRates computes each active burst's achieved rate before clock
// throttling. It returns two aligned slices (engine-owned scratch, valid
// until the next call):
//
//   - powerRates drive the power model: partition caps, capacity sharing
//     and bandwidth stalls included, but not the second-order efficiency
//     losses (thrashed cycles still burn energy);
//   - progressRates additionally include oversubscription and per-client
//     overheads and drive actual task progress.
func (e *Engine) preThrottleRates() (powerRates, progressRates []float64) {
	n := len(e.active)
	if cap(e.powerScratch) < n {
		//repro:allow:hotpathalloc scratch growth happens only when the active set reaches a new high-water mark
		e.powerScratch = make([]float64, n)
		//repro:allow:hotpathalloc scratch growth happens only when the active set reaches a new high-water mark
		e.progressScratch = make([]float64, n)
	}
	powerRates = e.powerScratch[:n]
	progressRates = e.progressScratch[:n]

	if e.cfg.Mode == ShareTimeSlice {
		// Round-robin fluid approximation: each runnable process gets an
		// equal share of the timeline, minus context-switch overhead when
		// actually sharing. Within its slice a kernel runs solo at its
		// full rate, so partitions are irrelevant and there is no
		// latency-hiding bonus — kernels never overlap.
		share := 1.0 / float64(n)
		eff := 1.0
		if n > 1 {
			eff = 1 - e.params.TimesliceOverhead
		}
		for i := range powerRates {
			powerRates[i] = share
			progressRates[i] = share * eff
		}
		return powerRates, progressRates
	}

	// MPS / CUDA-streams path: co-resident kernels share capacity.
	// Partition cap: a partition smaller than the kernel's saturation
	// fraction dilates it (Figure 1's granularity effect). Streams have
	// no partitioning — "there is no SM performance isolation" (§II-B).
	// The per-burst cap and its compute-demand product are computed once
	// at startBurst (burst.capShare / burst.capCompute).
	var computeDemand, occSum float64
	for i, b := range e.active {
		powerRates[i] = b.capShare
		computeDemand += b.capCompute
		occSum += b.demand.AchievedOcc
	}

	// Effective compute capacity: free warp slots let co-resident
	// kernels hide each other's stalls, raising throughput beyond the
	// strict sum of solo demands.
	capacity := 1.0
	if n > 1 {
		headroom := 1 - occSum
		if headroom > 0 {
			capacity = 1 + e.params.OccupancyBonus*headroom
		}
	}

	// Proportional sharing of the effective capacity.
	shareScale := 1.0
	if computeDemand > capacity {
		shareScale = capacity / computeDemand
	}
	for i := range powerRates {
		powerRates[i] *= shareScale
	}

	// Shared memory bandwidth: if aggregate demand at the current rates
	// exceeds the device, everyone stalls proportionally (bandwidth is
	// not partitioned by MPS).
	var bwDemand float64
	for i, b := range e.active {
		bwDemand += b.demand.Bandwidth * powerRates[i]
	}
	if bwDemand > 1 {
		scale := 1 / bwDemand
		for i := range powerRates {
			powerRates[i] *= scale
		}
	}

	// Host-side MPS server serialization: the GPU idles during these
	// stalls, so both power and progress scale down. Streams submit from
	// one process and pay none of it.
	if e.cfg.Mode == ShareMPS && n > 1 && e.params.ClientOverhead > 0 {
		eff := 1 / (1 + e.params.ClientOverhead*float64(n-1))
		for i := range powerRates {
			powerRates[i] *= eff
		}
	}

	// Oversubscription thrash (cache/TLB pressure beyond capacity):
	// wasted cycles that still burn energy — progress drops, power
	// demand does not.
	thrash := 1.0
	if x := computeDemand - capacity; x > 0 && e.params.OversubMaxOverhead > 0 {
		thrash = 1 - e.params.OversubMaxOverhead*x/(x+e.params.OversubHalfK)
	}
	for i := range powerRates {
		progressRates[i] = powerRates[i] * thrash
	}
	return powerRates, progressRates
}

// appendTrace records the current operating point, merging with the
// previous point when nothing observable changed.
func (e *Engine) appendTrace() {
	tp := TracePoint{
		At:            e.now,
		PowerW:        e.decision.PowerW,
		ClockFactor:   e.decision.ClockFactor,
		Capped:        e.decision.Capped,
		ActiveKernels: len(e.active),
		ComputeUtil:   e.computeUtil,
		BWUtil:        e.bwUtil,
		MemUsedMiB:    e.mem.UsedMiB(),
	}
	if k := len(e.trace); k > 0 {
		prev := e.trace[k-1]
		if prev.At == tp.At {
			e.trace[k-1] = tp
			return
		}
		if samePoint(prev, tp) {
			return
		}
	}
	//repro:allow:hotpathalloc trace buffer growth is amortized and only on distinct samples
	e.trace = append(e.trace, tp)
}

func samePoint(a, b TracePoint) bool {
	return a.PowerW == b.PowerW && a.ClockFactor == b.ClockFactor &&
		a.Capped == b.Capped && a.ActiveKernels == b.ActiveKernels &&
		a.ComputeUtil == b.ComputeUtil && a.BWUtil == b.BWUtil &&
		a.MemUsedMiB == b.MemUsedMiB
}

// startNextTask begins the client's next task, or finishes the client.
func (e *Engine) startNextTask(cs *clientState) {
	for cs.taskIdx < len(cs.spec.Tasks) {
		task := cs.spec.Tasks[cs.taskIdx]
		err := e.mem.Alloc(cs.spec.ID, task.MaxMemMiB)
		if err != nil {
			//repro:allow:hotpathalloc OOM path: failures are rare and each is worth a record
			key := fmt.Sprintf("%s/%s-%s", cs.spec.ID, task.Workload, task.Size)
			//repro:allow:hotpathalloc OOM path: failures are rare and each is worth a record
			e.oomFailures = append(e.oomFailures, key)
			//repro:allow:hotpathalloc task-boundary bookkeeping: one record per task, not per event
			cs.result.Tasks = append(cs.result.Tasks, TaskRecord{
				Workload: task.Workload, Size: task.Size,
				Start: e.now, End: e.now, OOM: true,
			})
			if e.cfg.OOM == OOMAbort {
				cs.phase = phaseDone
				cs.result.End = e.now
				e.fatalErr = err
				return
			}
			cs.taskIdx++
			continue
		}
		//repro:allow:hotpathalloc task-boundary bookkeeping: one record per task, not per event
		cs.result.Tasks = append(cs.result.Tasks, TaskRecord{
			Workload: task.Workload, Size: task.Size, Start: e.now,
		})
		cs.taskRec = &cs.result.Tasks[len(cs.result.Tasks)-1]
		cs.cycleIdx = 0
		cs.phaseIdx = 0
		e.startBurst(cs)
		return
	}
	cs.phase = phaseDone
	cs.result.End = e.now
}

// acquireBurst takes a burst from the engine freelist or allocates one.
func (e *Engine) acquireBurst() *burst {
	if n := len(e.burstFree); n > 0 {
		e.burstReuses++
		b := e.burstFree[n-1]
		e.burstFree[n-1] = nil
		e.burstFree = e.burstFree[:n-1]
		return b
	}
	e.burstAllocs++
	//repro:allow:hotpathalloc freelist refill: cold path, amortized away once bursts recycle
	return &burst{}
}

// releaseBurst recycles a retired burst. The caller must have unlinked it
// from the active set, its client, and its finish event.
func (e *Engine) releaseBurst(b *burst) {
	*b = burst{}
	//repro:allow:hotpathalloc freelist growth is amortized; capacity is retained for the run's lifetime
	e.burstFree = append(e.burstFree, b)
}

// startBurst makes the client's current phase resident.
func (e *Engine) startBurst(cs *clientState) {
	task := cs.spec.Tasks[cs.taskIdx]
	ph := task.Phases[cs.phaseIdx]
	work := ph.ActiveWork.Seconds() * cs.rng.Jitter(e.params.JitterAmp)
	if work <= 0 {
		// Zero-length burst (degenerate calibration): skip straight to
		// the gap.
		e.finishBurstAdvance(cs)
		return
	}
	b := e.acquireBurst()
	b.client = cs
	b.demand = ph.Demand
	b.dynPowerW = ph.DynPowerW
	b.remaining = work
	b.rate = 1
	b.startedAt = e.now
	b.capShare = 1
	if e.cfg.Mode == ShareMPS {
		if p := cs.spec.Partition; p < ph.Demand.Saturation {
			b.capShare = p / ph.Demand.Saturation
		}
	}
	b.capCompute = ph.Demand.Compute * b.capShare
	cs.burst = b
	cs.phase = phaseActive
	e.insertActive(b)
}

// insertActive inserts b into the active set, which is kept sorted by
// client index (each client has at most one resident burst, so indices are
// unique). Binary-search insertion replaces the sort.SliceStable the
// engine used to run after every append.
func (e *Engine) insertActive(b *burst) {
	idx := b.client.idx
	//repro:allow:hotpathalloc sort.Search's predicate does not escape and is inlined; pinned by TestSteadyStateZeroAllocs
	i := sort.Search(len(e.active), func(i int) bool {
		return e.active[i].client.idx > idx
	})
	//repro:allow:hotpathalloc active-set growth is amortized; capacity is retained across bursts
	e.active = append(e.active, nil)
	copy(e.active[i+1:], e.active[i:])
	e.active[i] = b
}

// removeActive removes b from the sorted active set.
func (e *Engine) removeActive(b *burst) {
	idx := b.client.idx
	//repro:allow:hotpathalloc sort.Search's predicate does not escape and is inlined; pinned by TestSteadyStateZeroAllocs
	i := sort.Search(len(e.active), func(i int) bool {
		return e.active[i].client.idx >= idx
	})
	if i < len(e.active) && e.active[i] == b {
		copy(e.active[i:], e.active[i+1:])
		e.active[len(e.active)-1] = nil
		e.active = e.active[:len(e.active)-1]
	}
}

// finishBurst retires a completed burst and moves the client to its gap.
// ev is the firing event; the event-identity guard (b.finishEv == ev) is
// exact — unlike the former remaining-work epsilon, it cannot mis-fire for
// bursts shorter than the epsilon, and it costs one pointer compare.
func (e *Engine) finishBurst(b *burst, ev *eventq.Event) {
	if b.finishEv != ev {
		// Stale: ev is no longer the burst's scheduled finish event.
		// Unreachable while cancelled events never fire; kept as
		// defense in depth for the pooled-event lifecycle.
		return
	}
	b.finishEv = nil
	cs := b.client
	e.removeActive(b)
	cs.burst = nil
	if e.spans != nil {
		t := cs.spec.Tasks[cs.taskIdx]
		//repro:allow:hotpathalloc span tracing is opt-in (e.spans != nil) and excluded from the 0-alloc pin
		e.spans.RecordSim(e.spanTrack, t.Workload+"/"+t.Size, cs.spec.ID,
			b.startedAt, e.now)
	}
	e.releaseBurst(b)

	task := cs.spec.Tasks[cs.taskIdx]
	gap := task.Phases[cs.phaseIdx].GapAfter
	if gap > 0 {
		gap = simtime.FromSeconds(gap.Seconds() * cs.rng.Jitter(e.params.JitterAmp))
	}
	if gap <= 0 {
		e.finishBurstAdvance(cs)
		return
	}
	cs.phase = phaseGap
	e.queue.Schedule(e.now.Add(gap), evGapEnd, cs)
}

// finishBurstAdvance moves the client past the current phase's gap to the
// next phase, cycle, or task.
func (e *Engine) finishBurstAdvance(cs *clientState) {
	task := cs.spec.Tasks[cs.taskIdx]
	cs.phaseIdx++
	if cs.phaseIdx < len(task.Phases) {
		e.startBurst(cs)
		return
	}
	cs.phaseIdx = 0
	cs.cycleIdx++
	if cs.cycleIdx < task.Cycles {
		e.startBurst(cs)
		return
	}
	// Task complete.
	e.mem.Free(cs.spec.ID)
	cs.taskRec.End = e.now
	cs.taskRec = nil
	cs.taskIdx++
	e.startNextTask(cs)
}
