package gpusim

import (
	"math"
	"strings"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/simtime"
	"gpushare/internal/workload"
)

func a100x() gpu.DeviceSpec { return gpu.MustLookup("A100X") }

func task(t *testing.T, bench, size string) *workload.TaskSpec {
	t.Helper()
	w, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := w.BuildTaskSpec(size, a100x())
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestSoloCalibration is the engine's ground-truth check: a solo run of
// every calibrated workload must reproduce the paper's Table II duration,
// average power and energy within 2%.
func TestSoloCalibration(t *testing.T) {
	for _, name := range workload.Names() {
		w, _ := workload.Get(name)
		for _, size := range w.Sizes() {
			ts := task(t, name, size)
			res, err := RunSolo(Config{Seed: 1}, ts)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, size, err)
			}
			p := ts.Profile
			if e := relErr(res.Makespan.Seconds(), p.SoloDuration().Seconds()); e > 0.02 {
				t.Errorf("%s/%s duration %v vs %v (err %.1f%%)",
					name, size, res.Makespan.Seconds(), p.SoloDuration().Seconds(), e*100)
			}
			if e := relErr(res.AvgPowerW, p.AvgPowerW); e > 0.02 {
				t.Errorf("%s/%s power %v vs %v", name, size, res.AvgPowerW, p.AvgPowerW)
			}
			if e := relErr(res.EnergyJ, p.EnergyJ); e > 0.03 {
				t.Errorf("%s/%s energy %v vs %v", name, size, res.EnergyJ, p.EnergyJ)
			}
			if res.CappedFraction != 0 {
				t.Errorf("%s/%s solo run capped %.1f%%: Table II powers are below the limit",
					name, size, 100*res.CappedFraction)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := RunClients(Config{Seed: 99, Mode: ShareMPS}, []Client{
			{ID: "a", Tasks: []*workload.TaskSpec{task(t, "AthenaPK", "4x")}},
			{ID: "b", Tasks: []*workload.TaskSpec{task(t, "Kripke", "4x")}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Makespan != r2.Makespan {
		t.Fatalf("same seed, different makespans: %v vs %v", r1.Makespan, r2.Makespan)
	}
	if r1.EnergyJ != r2.EnergyJ {
		t.Fatalf("same seed, different energy: %v vs %v", r1.EnergyJ, r2.EnergyJ)
	}
	if len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("same seed, different trace lengths: %d vs %d", len(r1.Trace), len(r2.Trace))
	}
}

func TestSeedChangesJitter(t *testing.T) {
	run := func(seed uint64) *Result {
		res, err := RunSolo(Config{Seed: seed}, task(t, "Kripke", "1x"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if run(1).Makespan == run(2).Makespan {
		t.Fatal("different seeds produced identical makespans (jitter dead?)")
	}
}

func TestLowUtilPairNearlyDoubles(t *testing.T) {
	// Two AthenaPK 4x tasks: the paper's headline case — ~2x throughput,
	// ~1.4-1.6x energy efficiency.
	a := task(t, "AthenaPK", "4x")
	seq, err := RunSequential(Config{Seed: 5}, []*workload.TaskSpec{a, a})
	if err != nil {
		t.Fatal(err)
	}
	mps, err := RunClients(Config{Seed: 5, Mode: ShareMPS}, []Client{
		{ID: "c0", Tasks: []*workload.TaskSpec{a}},
		{ID: "c1", Tasks: []*workload.TaskSpec{a}},
	})
	if err != nil {
		t.Fatal(err)
	}
	thpt := seq.Makespan.Seconds() / mps.Makespan.Seconds()
	if thpt < 1.7 || thpt > 2.05 {
		t.Errorf("low-util pair throughput %vx, want ≈1.9x", thpt)
	}
	eff := seq.EnergyJ / mps.EnergyJ
	if eff < 1.25 || eff > 1.65 {
		t.Errorf("low-util pair efficiency %vx, want ≈1.4x", eff)
	}
}

func TestHighUtilPairGainsLittle(t *testing.T) {
	// Two LAMMPS 4x tasks: the paper's ~6% case.
	l := task(t, "LAMMPS", "4x")
	seq, _ := RunSequential(Config{Seed: 5}, []*workload.TaskSpec{l, l})
	mps, err := RunClients(Config{Seed: 5, Mode: ShareMPS}, []Client{
		{ID: "c0", Tasks: []*workload.TaskSpec{l}},
		{ID: "c1", Tasks: []*workload.TaskSpec{l}},
	})
	if err != nil {
		t.Fatal(err)
	}
	thpt := seq.Makespan.Seconds() / mps.Makespan.Seconds()
	if thpt < 0.98 || thpt > 1.2 {
		t.Errorf("high-util pair throughput %vx, want ≈1.05-1.1x", thpt)
	}
}

func TestMPSBeatsTimeSlicing(t *testing.T) {
	// "MPS outperforms time-slicing in every instance" (§V-D).
	pairs := [][2]*workload.TaskSpec{
		{task(t, "AthenaPK", "4x"), task(t, "Kripke", "4x")},
		{task(t, "LAMMPS", "4x"), task(t, "Cholla-MHD", "4x")},
		{task(t, "Cholla-Gravity", "4x"), task(t, "WarpX", "1x")},
	}
	for i, pair := range pairs {
		clients := []Client{
			{ID: "c0", Tasks: []*workload.TaskSpec{pair[0]}},
			{ID: "c1", Tasks: []*workload.TaskSpec{pair[1]}},
		}
		mps, err := RunClients(Config{Seed: 7, Mode: ShareMPS}, clients)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := RunClients(Config{Seed: 7, Mode: ShareTimeSlice}, clients)
		if err != nil {
			t.Fatal(err)
		}
		if mps.Makespan > ts.Makespan {
			t.Errorf("pair %d: MPS makespan %v slower than time-slicing %v",
				i, mps.Makespan, ts.Makespan)
		}
	}
}

func TestPartitionDilatesBelowSaturation(t *testing.T) {
	// Figure 1's granularity effect: throughput rises with partition and
	// saturates.
	ts := task(t, "WarpX", "1x")
	var prev float64
	durations := map[int]float64{}
	for _, pct := range []int{10, 30, 50, 70, 100} {
		eng, err := New(Config{Seed: 3, Mode: ShareMPS})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.AddClient(Client{
			ID: "p", Partition: float64(pct) / 100, Tasks: []*workload.TaskSpec{ts},
		}); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		d := res.Makespan.Seconds()
		durations[pct] = d
		if prev != 0 && d > prev*1.03 {
			t.Errorf("duration increased with larger partition: %d%% → %vs (prev %vs)", pct, d, prev)
		}
		prev = d
	}
	if durations[10] < durations[100]*2 {
		t.Errorf("10%% partition should be much slower than 100%%: %v vs %v",
			durations[10], durations[100])
	}
	// Saturation: beyond the workload's fill point, no further gain.
	if relErr(durations[70], durations[100]) > 0.03 {
		t.Errorf("WarpX 1x should saturate by 70%%: %v vs %v", durations[70], durations[100])
	}
}

func TestPowerCappingTriggersAndAccounts(t *testing.T) {
	// MHD + LAMMPS co-resident exceed the 300 W budget and must cap.
	m, l := task(t, "Cholla-MHD", "4x"), task(t, "LAMMPS", "4x")
	res, err := RunClients(Config{Seed: 2, Mode: ShareMPS}, []Client{
		{ID: "mhd", Tasks: []*workload.TaskSpec{m}},
		{ID: "lammps", Tasks: []*workload.TaskSpec{l}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CappedFraction <= 0 {
		t.Fatal("expected SW power capping for MHD+LAMMPS")
	}
	if res.PeakPowerW > a100x().PowerLimitW+1e-6 {
		t.Fatalf("peak power %v exceeded the %v W limit", res.PeakPowerW, a100x().PowerLimitW)
	}
	// Disabling the governor must remove capping and raise peak power.
	unc, err := RunClients(Config{Seed: 2, Mode: ShareMPS, DisablePowerCap: true}, []Client{
		{ID: "mhd", Tasks: []*workload.TaskSpec{m}},
		{ID: "lammps", Tasks: []*workload.TaskSpec{l}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if unc.CappedFraction != 0 {
		t.Fatal("DisablePowerCap still reported capping")
	}
	if unc.PeakPowerW <= a100x().PowerLimitW {
		t.Fatalf("uncapped peak %v should exceed the limit", unc.PeakPowerW)
	}
	if unc.Makespan >= res.Makespan {
		t.Fatal("uncapped run should be faster (no clock throttling)")
	}
}

func TestOOMSkipPolicy(t *testing.T) {
	// Two WarpX tasks (61 GiB each) cannot share an 80 GiB device.
	w := task(t, "WarpX", "1x")
	res, err := RunClients(Config{Seed: 1, Mode: ShareMPS, OOM: OOMSkipTask}, []Client{
		{ID: "w0", Tasks: []*workload.TaskSpec{w}},
		{ID: "w1", Tasks: []*workload.TaskSpec{w}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OOMFailures) != 1 {
		t.Fatalf("OOM failures = %v, want exactly one", res.OOMFailures)
	}
	if res.TasksCompleted() != 1 {
		t.Fatalf("completed = %d, want 1", res.TasksCompleted())
	}
	if !strings.Contains(res.OOMFailures[0], "WarpX") {
		t.Fatalf("OOM record %q should name the workload", res.OOMFailures[0])
	}
}

func TestOOMAbortPolicy(t *testing.T) {
	w := task(t, "WarpX", "1x")
	_, err := RunClients(Config{Seed: 1, Mode: ShareMPS, OOM: OOMAbort}, []Client{
		{ID: "w0", Tasks: []*workload.TaskSpec{w}},
		{ID: "w1", Tasks: []*workload.TaskSpec{w}},
	})
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("want OOM abort error, got %v", err)
	}
}

func TestMemoryFreedBetweenSequentialTasks(t *testing.T) {
	// Sequential WarpX tasks must both run: memory is released at task
	// end.
	w := task(t, "WarpX", "1x")
	res, err := RunSequential(Config{Seed: 1}, []*workload.TaskSpec{w, w})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted() != 2 || len(res.OOMFailures) != 0 {
		t.Fatalf("sequential reuse failed: %d tasks, OOM %v",
			res.TasksCompleted(), res.OOMFailures)
	}
}

func TestArrivalDelaysClient(t *testing.T) {
	a := task(t, "Kripke", "1x")
	late, err := RunClients(Config{Seed: 1, Mode: ShareMPS}, []Client{
		{ID: "onTime", Tasks: []*workload.TaskSpec{a}},
		{ID: "late", Arrival: simtime.Zero.Add(100 * simtime.Second), Tasks: []*workload.TaskSpec{a}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if late.Makespan.Seconds() < 100 {
		t.Fatalf("makespan %v ignores the late arrival", late.Makespan)
	}
	lc := late.Clients["late"]
	if lc.Tasks[0].Start.Seconds() < 100 {
		t.Fatalf("late client started at %v", lc.Tasks[0].Start)
	}
}

func TestTraceMonotoneAndConsistent(t *testing.T) {
	res, err := RunClients(Config{Seed: 4, Mode: ShareMPS}, []Client{
		{ID: "a", Tasks: []*workload.TaskSpec{task(t, "Kripke", "1x")}},
		{ID: "b", Tasks: []*workload.TaskSpec{task(t, "Cholla-Gravity", "1x")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].At < res.Trace[i-1].At {
			t.Fatalf("trace time went backwards at %d", i)
		}
	}
	for i, tp := range res.Trace {
		if tp.PowerW < a100x().IdlePowerW-1e-9 || tp.PowerW > a100x().PowerLimitW+1e-6 {
			t.Fatalf("trace[%d] power %v out of range", i, tp.PowerW)
		}
		if tp.ComputeUtil < 0 || tp.ComputeUtil > 1 || tp.BWUtil < 0 || tp.BWUtil > 1 {
			t.Fatalf("trace[%d] utilization out of range", i)
		}
		if tp.ClockFactor <= 0 || tp.ClockFactor > 1 {
			t.Fatalf("trace[%d] clock factor %v", i, tp.ClockFactor)
		}
	}
	if res.PeakConcurrency != 2 {
		t.Fatalf("peak concurrency = %d, want 2", res.PeakConcurrency)
	}
}
