package gpusim

import (
	"fmt"
	"testing"
	"testing/quick"

	"gpushare/internal/workload"
)

// Physics invariants that must hold for ANY client mix. Exercised with
// testing/quick over random subsets of the benchmark suite at 1x.

// invariantFixture builds the shared task pool once (profile-building is
// deterministic, so sharing is safe).
type invariantFixture struct {
	tasks []*workload.TaskSpec
}

func newInvariantFixture(t *testing.T) *invariantFixture {
	t.Helper()
	fix := &invariantFixture{}
	// 1x tasks, excluding the 56-minute Epsilon and the 61 GiB WarpX so
	// random mixes stay fast and memory-feasible.
	for _, name := range []string{"AthenaPK", "Cholla-Gravity", "Kripke", "Cholla-MHD", "LAMMPS"} {
		ts, err := workload.MustGet(name).BuildTaskSpec("1x", a100x())
		if err != nil {
			t.Fatal(err)
		}
		fix.tasks = append(fix.tasks, ts)
	}
	return fix
}

// buildClients maps a random byte string to a client mix of 1-6 clients.
func (f *invariantFixture) buildClients(picks []uint8) []Client {
	n := len(picks)
	if n == 0 {
		n = 1
		picks = []uint8{0}
	}
	if n > 6 {
		n = 6
		picks = picks[:6]
	}
	clients := make([]Client, n)
	for i, p := range picks {
		clients[i] = Client{
			ID:    fmt.Sprintf("c%d", i),
			Tasks: []*workload.TaskSpec{f.tasks[int(p)%len(f.tasks)]},
		}
	}
	return clients
}

func TestInvariantsUnderRandomMixes(t *testing.T) {
	fix := newInvariantFixture(t)
	spec := a100x()
	check := func(picks []uint8, seed uint16) bool {
		clients := fix.buildClients(picks)
		res, err := RunClients(Config{Seed: uint64(seed), Mode: ShareMPS}, clients)
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}

		// 1. Every task completes (the pool is memory-feasible in
		// aggregate worst case: 6 × 2321 MiB < 80 GiB).
		if res.TasksCompleted() != len(clients) || len(res.OOMFailures) != 0 {
			t.Logf("tasks %d/%d oom %v", res.TasksCompleted(), len(clients), res.OOMFailures)
			return false
		}

		var maxSolo, sumSolo float64
		for _, c := range clients {
			d := c.Tasks[0].SoloDuration.Seconds()
			sumSolo += d
			if d > maxSolo {
				maxSolo = d
			}
		}
		m := res.Makespan.Seconds()

		// 2. No task finishes faster than ~solo speed (sharing can add
		// capacity, never raise one client's own rate above 1+jitter).
		for id, cr := range res.Clients {
			solo := 0.0
			for _, c := range clients {
				if c.ID == id {
					solo = c.Tasks[0].SoloDuration.Seconds()
				}
			}
			if got := cr.Tasks[0].Duration().Seconds(); got < solo*0.95 {
				t.Logf("%s ran faster than solo: %v < %v", id, got, solo)
				return false
			}
		}

		// 3. Makespan bounded below by the slowest solo task and above
		// by strictly-sequential execution with a generous slack for
		// contention overheads.
		if m < maxSolo*0.95 {
			t.Logf("makespan %v below max solo %v", m, maxSolo)
			return false
		}
		if m > sumSolo*1.6+1 {
			t.Logf("makespan %v above sequential bound %v", m, sumSolo*1.6)
			return false
		}

		// 4. Energy bracketed by idle and limit power over the makespan.
		if res.EnergyJ < spec.IdlePowerW*m*0.999 {
			t.Logf("energy %v below idle floor", res.EnergyJ)
			return false
		}
		if res.EnergyJ > spec.PowerLimitW*m*1.001 {
			t.Logf("energy %v above power-limit ceiling", res.EnergyJ)
			return false
		}

		// 5. Average power consistent with energy/makespan.
		if m > 0 {
			want := res.EnergyJ / m
			if diff := res.AvgPowerW - want; diff > 1e-6 || diff < -1e-6 {
				t.Logf("avg power %v vs energy/makespan %v", res.AvgPowerW, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreClientsNeverReduceTotalThroughput(t *testing.T) {
	// Adding an independent client must not shorten any existing
	// client's... it may slow them, but aggregate work rate must not
	// drop: makespan(n+1 clients) ≥ makespan(n clients) and
	// ≤ makespan(n) + solo(n+1) (the new work fits in the worst case
	// sequentially after).
	fix := newInvariantFixture(t)
	base := fix.buildClients([]uint8{0, 1})
	resBase, err := RunClients(Config{Seed: 9, Mode: ShareMPS}, base)
	if err != nil {
		t.Fatal(err)
	}
	extended := fix.buildClients([]uint8{0, 1, 2})
	resExt, err := RunClients(Config{Seed: 9, Mode: ShareMPS}, extended)
	if err != nil {
		t.Fatal(err)
	}
	if resExt.Makespan < resBase.Makespan {
		// The added client cannot make the originals finish earlier.
		t.Fatalf("adding a client shortened the makespan: %v -> %v",
			resBase.Makespan, resExt.Makespan)
	}
	bound := resBase.Makespan.Seconds() + extended[2].Tasks[0].SoloDuration.Seconds()*1.6
	if resExt.Makespan.Seconds() > bound {
		t.Fatalf("extended makespan %v above additive bound %v", resExt.Makespan.Seconds(), bound)
	}
}

func TestTimeSliceFairness(t *testing.T) {
	// Under time-slicing, two identical clients must finish within a
	// whisker of each other (round-robin fairness).
	fix := newInvariantFixture(t)
	clients := fix.buildClients([]uint8{2, 2})
	res, err := RunClients(Config{Seed: 4, Mode: ShareTimeSlice}, clients)
	if err != nil {
		t.Fatal(err)
	}
	d0 := res.Clients["c0"].Tasks[0].Duration().Seconds()
	d1 := res.Clients["c1"].Tasks[0].Duration().Seconds()
	if diff := d0 - d1; diff > d0*0.1 || diff < -d0*0.1 {
		t.Fatalf("time-sliced twins diverged: %v vs %v", d0, d1)
	}
}
