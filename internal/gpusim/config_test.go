package gpusim

import (
	"fmt"
	"strings"
	"testing"

	"gpushare/internal/workload"
)

func TestShareModeString(t *testing.T) {
	if ShareMPS.String() != "mps" || ShareTimeSlice.String() != "time-slicing" {
		t.Fatal("mode strings wrong")
	}
	if !strings.Contains(ShareMode(9).String(), "9") {
		t.Fatal("unknown mode string should carry the value")
	}
}

func TestContentionDefaults(t *testing.T) {
	d := DefaultContention()
	if err := d.validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	// Zero fields take defaults.
	p := ContentionParams{OccupancyBonus: 0.5}
	p = p.withDefaults()
	if p.OccupancyBonus != 0.5 {
		t.Fatal("explicit field overridden")
	}
	if p.ClientOverhead != d.ClientOverhead || p.JitterAmp != d.JitterAmp {
		t.Fatal("zero fields not defaulted")
	}
}

func TestContentionValidation(t *testing.T) {
	bad := []ContentionParams{
		{OccupancyBonus: -0.1},
		{OccupancyBonus: 1.5},
		{OversubMaxOverhead: 1},
		{OversubMaxOverhead: -0.1},
		{OversubHalfK: -1},
		{ClientOverhead: 1},
		{TimesliceOverhead: 1},
		{JitterAmp: 0.6},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestNoOverheadExact(t *testing.T) {
	// NoOverhead + ExactContention → pure proportional sharing.
	if _, err := New(Config{Contention: NoOverhead(), ExactContention: true}); err != nil {
		t.Fatal(err)
	}
}

func TestClientValidation(t *testing.T) {
	ts, err := workload.MustGet("Kripke").BuildTaskSpec("1x", a100x())
	if err != nil {
		t.Fatal(err)
	}
	good := Client{ID: "c", Tasks: []*workload.TaskSpec{ts}}
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Client{
		{ID: "", Tasks: good.Tasks},
		{ID: "c", Partition: -0.1, Tasks: good.Tasks},
		{ID: "c", Partition: 1.1, Tasks: good.Tasks},
		{ID: "c", Arrival: -1, Tasks: good.Tasks},
		{ID: "c"},
		{ID: "c", Tasks: []*workload.TaskSpec{nil}},
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("bad client %d accepted", i)
		}
	}
}

func TestEngineMisuse(t *testing.T) {
	ts, _ := workload.MustGet("Kripke").BuildTaskSpec("1x", a100x())
	eng, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("Run with no clients accepted")
	}
	eng2, _ := New(Config{})
	c := Client{ID: "c", Tasks: []*workload.TaskSpec{ts}}
	if err := eng2.AddClient(c); err != nil {
		t.Fatal(err)
	}
	if err := eng2.AddClient(c); err == nil {
		t.Fatal("duplicate client ID accepted")
	}
	if _, err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
	if err := eng2.AddClient(Client{ID: "later", Tasks: c.Tasks}); err == nil {
		t.Fatal("AddClient after Run accepted")
	}
}

func TestMPSClientLimitEnforced(t *testing.T) {
	ts, _ := workload.MustGet("AthenaPK").BuildTaskSpec("1x", a100x())
	eng, _ := New(Config{Mode: ShareMPS})
	var lastErr error
	n := 0
	for i := 0; i < 60; i++ {
		lastErr = eng.AddClient(Client{
			ID: string(rune('a'+i/26)) + string(rune('a'+i%26)), Tasks: []*workload.TaskSpec{ts},
		})
		if lastErr != nil {
			break
		}
		n++
	}
	if n != a100x().MaxMPSClients {
		t.Fatalf("admitted %d clients, want %d", n, a100x().MaxMPSClients)
	}
	if lastErr == nil || !strings.Contains(lastErr.Error(), "MPS client limit") {
		t.Fatalf("limit error = %v", lastErr)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := New(Config{Contention: ContentionParams{JitterAmp: 0.9}, ExactContention: true}); err == nil {
		t.Fatal("invalid contention accepted")
	}
	bad := a100x()
	bad.SMCount = 0
	if _, err := New(Config{Device: bad}); err == nil {
		t.Fatal("invalid device accepted")
	}
}

func TestStreamsMode(t *testing.T) {
	ts, _ := workload.MustGet("AthenaPK").BuildTaskSpec("4x", a100x())
	mk := func(mode ShareMode) *Result {
		res, err := RunClients(Config{Seed: 6, Mode: mode}, []Client{
			{ID: "a", Partition: 0.3, Tasks: []*workload.TaskSpec{ts}},
			{ID: "b", Tasks: []*workload.TaskSpec{ts}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	streams := mk(ShareStreams)
	mps := mk(ShareMPS)
	// Streams skip the MPS server overhead: never slower than MPS.
	if streams.Makespan > mps.Makespan {
		t.Fatalf("streams %v slower than MPS %v", streams.Makespan, mps.Makespan)
	}
	// Streams ignore partitions ("no SM performance isolation"): the
	// 30%-partitioned client matters under MPS, not under streams.
	soloDur := ts.SoloDuration.Seconds()
	sa := streams.Clients["a"].Tasks[0].Duration().Seconds()
	if sa > soloDur*1.25 {
		t.Fatalf("streams client dilated by a partition it should ignore: %v vs solo %v", sa, soloDur)
	}
	if ShareStreams.String() != "cuda-streams" {
		t.Fatalf("mode string %q", ShareStreams.String())
	}
	// Streams are not subject to the 48-client MPS limit.
	eng, _ := New(Config{Mode: ShareStreams})
	for i := 0; i < 50; i++ {
		if err := eng.AddClient(Client{
			ID:    fmt.Sprintf("s%02d", i),
			Tasks: []*workload.TaskSpec{ts},
		}); err != nil {
			t.Fatalf("stream %d rejected: %v", i, err)
		}
	}
}
