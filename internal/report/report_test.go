package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Fatalf("separator = %q", lines[2])
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Fatalf("rows missing: %q", out)
	}
	// Columns align: "alpha" and "beta " pad to the same width.
	idxAlpha := strings.Index(lines[3], "1")
	idxBeta := strings.Index(lines[4], "2.50")
	if idxAlpha != idxBeta {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idxAlpha, idxBeta, out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-a")
	tb.AddRow("a", "b", "dropped-extra")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "dropped-extra") {
		t.Fatal("extra cell rendered")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "name", "note")
	tb.AddRow("x", `say "hi", ok`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,note\nx,\"say \"\"hi\"\", ok\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Bars")
	c.Add("small", 0.5)
	c.Add("big", 2.0)
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Bars") || !strings.Contains(out, "small") {
		t.Fatalf("chart output: %q", out)
	}
	// Parity marker appears since max > 1.
	if !strings.ContainsAny(out, "|+") {
		t.Fatal("parity marker missing")
	}
	// Bigger value → longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	count := func(s string) int { return strings.Count(s, "#") }
	if count(lines[1]) >= count(lines[2]) {
		t.Fatalf("bar lengths wrong:\n%s", out)
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	var sb strings.Builder
	if err := NewBarChart("Empty").Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty chart must say so")
	}
	c := NewBarChart("Zeros")
	c.Add("z", 0)
	sb.Reset()
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestLineChart(t *testing.T) {
	c := NewLineChart("Curve", "x", "y")
	c.AddSeries(Series{Name: "s1", Points: []Point{{0, 0}, {50, 5}, {100, 10}}})
	c.AddSeries(Series{Name: "s2", Points: []Point{{0, 10}, {100, 0}}})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Curve") || !strings.Contains(out, "legend") {
		t.Fatalf("chart output missing pieces: %q", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("series marks missing")
	}
	if !strings.Contains(out, "s1") || !strings.Contains(out, "s2") {
		t.Fatal("legend entries missing")
	}
}

func TestLineChartEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewLineChart("E", "x", "y").Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty line chart must say so")
	}
}

func TestLineChartDegenerateRanges(t *testing.T) {
	// Single point: min == max on both axes must not divide by zero.
	c := NewLineChart("One", "x", "y")
	c.AddSeries(Series{Name: "p", Points: []Point{{5, 5}}})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
}
