package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// BarChart renders labeled horizontal bars — the harness's stand-in for
// the paper's grouped bar figures (Figures 2-5).
type BarChart struct {
	Title string
	// Width is the bar area width in characters (default 50).
	Width int
	items []barItem
}

type barItem struct {
	label string
	value float64
}

// NewBarChart creates a chart.
func NewBarChart(title string) *BarChart { return &BarChart{Title: title, Width: 50} }

// Add appends a labeled value.
func (c *BarChart) Add(label string, value float64) {
	c.items = append(c.items, barItem{label: label, value: value})
}

// Render writes the chart. Bars are scaled to the maximum value; a marker
// column at 1.0 shows the sequential-baseline parity line when values
// straddle it.
func (c *BarChart) Render(w io.Writer) error {
	if len(c.items) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	labelW := 0
	for _, it := range c.items {
		if it.value > maxVal {
			maxVal = it.value
		}
		if len(it.label) > labelW {
			labelW = len(it.label)
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	parity := -1
	if maxVal > 1 {
		parity = int(1 / maxVal * float64(width))
	}
	for _, it := range c.items {
		n := int(math.Round(it.value / maxVal * float64(width)))
		if n < 0 {
			n = 0
		}
		bar := strings.Repeat("#", n) + strings.Repeat(" ", width-n)
		if parity >= 0 && parity < len(bar) {
			mark := byte('|')
			if bar[parity] == '#' {
				mark = '+'
			}
			bar = bar[:parity] + string(mark) + bar[parity+1:]
		}
		fmt.Fprintf(&b, "%-*s %s %8.3f\n", labelW, it.label, bar, it.value)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one line of an XY chart.
type Series struct {
	Name   string
	Points []Point
}

// Point is one XY observation.
type Point struct{ X, Y float64 }

// LineChart renders multiple series as an ASCII scatter grid — the
// harness's stand-in for the paper's Figure 1 throughput-vs-partition
// curves.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height of the plot area in characters (defaults 60×16).
	Width, Height int
	series        []Series
}

// NewLineChart creates a chart.
func NewLineChart(title, xlabel, ylabel string) *LineChart {
	return &LineChart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 60, Height: 16}
}

// AddSeries appends a named series.
func (c *LineChart) AddSeries(s Series) { c.series = append(c.series, s) }

var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render writes the chart.
func (c *LineChart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 10 {
		width = 60
	}
	if height <= 4 {
		height = 16
	}
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range c.series {
		for _, p := range s.Points {
			if first {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if first {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		mark := seriesMarks[si%len(seriesMarks)]
		for _, p := range s.Points {
			x := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			y := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = mark
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for i, row := range grid {
		yVal := maxY - (maxY-minY)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.2f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%8s  %s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*.2f%*.2f  (%s)\n", "", width/2, minX, width-width/2, maxX, c.XLabel)
	// Legend in series order.
	legend := make([]string, len(c.series))
	for i, s := range c.series {
		legend[i] = fmt.Sprintf("%c=%s", seriesMarks[i%len(seriesMarks)], s.Name)
	}
	sort.Strings(legend)
	fmt.Fprintf(&b, "%8s  y: %s   legend: %s\n", "", c.YLabel, strings.Join(legend, "  "))
	_, err := io.WriteString(w, b.String())
	return err
}
