// Package report renders experiment results in the three forms the
// reproduction harness emits: aligned ASCII tables (terminal), CSV
// (plotting pipelines), and ASCII charts (quick shape checks of the
// paper's figures without a plotting stack).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells are blank, keeping rendering total.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v, floats with 2 decimals.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case float32:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (headers first). Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
