package gpu

import "strings"

// ThrottleReason is a bitmask of reasons the SM clock is below the
// requested/boost frequency, mirroring NVML's nvmlClocksEventReasons. The
// paper's Figure 3 is built from the SwPowerCap bit.
type ThrottleReason uint64

const (
	// ThrottleGPUIdle: clocks are low because nothing is running.
	ThrottleGPUIdle ThrottleReason = 1 << iota
	// ThrottleAppClocks: an application clock setting limits frequency.
	ThrottleAppClocks
	// ThrottleSwPowerCap: the SW power-scaling algorithm is reducing
	// clocks because board power would exceed the power limit.
	ThrottleSwPowerCap
	// ThrottleHwSlowdown: hardware slowdown (thermal/power brake) engaged.
	ThrottleHwSlowdown
	// ThrottleSyncBoost: clocks held down to match another GPU in a sync
	// boost group.
	ThrottleSyncBoost
	// ThrottleSwThermal: software thermal slowdown engaged.
	ThrottleSwThermal
	// ThrottleDisplayClock: display clock setting limits frequency.
	ThrottleDisplayClock

	// ThrottleNone means the GPU is running at requested clocks.
	ThrottleNone ThrottleReason = 0
)

var throttleNames = []struct {
	bit  ThrottleReason
	name string
}{
	{ThrottleGPUIdle, "GpuIdle"},
	{ThrottleAppClocks, "ApplicationsClocksSetting"},
	{ThrottleSwPowerCap, "SwPowerCap"},
	{ThrottleHwSlowdown, "HwSlowdown"},
	{ThrottleSyncBoost, "SyncBoost"},
	{ThrottleSwThermal, "SwThermalSlowdown"},
	{ThrottleDisplayClock, "DisplayClockSetting"},
}

// Has reports whether all bits in mask are set in r.
func (r ThrottleReason) Has(mask ThrottleReason) bool { return r&mask == mask }

// String renders the mask as NVML-style names joined by '|', or "None".
func (r ThrottleReason) String() string {
	if r == ThrottleNone {
		return "None"
	}
	var parts []string
	for _, tn := range throttleNames {
		if r&tn.bit != 0 {
			parts = append(parts, tn.name)
		}
	}
	if len(parts) == 0 {
		return "Unknown"
	}
	return strings.Join(parts, "|")
}

// ClockState is the instantaneous clock domain state of a device.
type ClockState struct {
	// SMClockMHz is the current SM frequency.
	SMClockMHz int
	// Factor is SMClockMHz relative to boost, in (0, 1].
	Factor float64
	// Reasons is the active throttle-reason mask.
	Reasons ThrottleReason
}
