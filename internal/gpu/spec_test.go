package gpu

import (
	"strings"
	"testing"
)

func TestRegistryValid(t *testing.T) {
	for _, key := range Models() {
		spec, err := Lookup(key)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", key, err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("registered spec %q invalid: %v", key, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("RTX-9090")
	if err == nil || !strings.Contains(err.Error(), "unknown device") {
		t.Fatalf("Lookup unknown = %v", err)
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of unknown key did not panic")
		}
	}()
	MustLookup("nope")
}

func TestA100XMatchesPaperTestbed(t *testing.T) {
	spec := MustLookup("A100X")
	if spec.PowerLimitW != 300 {
		t.Errorf("A100X power limit = %v, paper states 300 W", spec.PowerLimitW)
	}
	if spec.MaxMPSClients != 48 {
		t.Errorf("A100X MPS client limit = %d, paper states 48", spec.MaxMPSClients)
	}
	if spec.SMCount != 108 {
		t.Errorf("A100X SM count = %d, want 108 (GA100)", spec.SMCount)
	}
	if spec.MemoryMiB != 80*1024 {
		t.Errorf("A100X memory = %d MiB, want 80 GiB", spec.MemoryMiB)
	}
	if !spec.MIGCapable || spec.MaxMIGInstances != 7 {
		t.Error("A100X must be MIG-capable with 7 instances")
	}
}

func TestTotalWarpSlots(t *testing.T) {
	spec := MustLookup("A100X")
	if got := spec.TotalWarpSlots(); got != 108*64 {
		t.Fatalf("TotalWarpSlots = %d, want %d", got, 108*64)
	}
}

func TestMemoryBytes(t *testing.T) {
	spec := MustLookup("V100-SXM2-32GB")
	if got := spec.MemoryBytes(); got != 32*1024*1024*1024 {
		t.Fatalf("MemoryBytes = %d", got)
	}
}

func TestMinClockFactor(t *testing.T) {
	spec := MustLookup("A100X")
	want := 210.0 / 1410.0
	if got := spec.MinClockFactor(); got != want {
		t.Fatalf("MinClockFactor = %v, want %v", got, want)
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*DeviceSpec)
	}{
		{"empty name", func(s *DeviceSpec) { s.Name = "" }},
		{"zero SMs", func(s *DeviceSpec) { s.SMCount = 0 }},
		{"zero warps", func(s *DeviceSpec) { s.MaxWarpsPerSM = 0 }},
		{"zero warp size", func(s *DeviceSpec) { s.WarpSize = 0 }},
		{"thread limits inverted", func(s *DeviceSpec) { s.MaxThreadsPerSM = 512 }},
		{"zero memory", func(s *DeviceSpec) { s.MemoryMiB = 0 }},
		{"zero bandwidth", func(s *DeviceSpec) { s.MemoryBandwidthGBs = 0 }},
		{"limit below idle", func(s *DeviceSpec) { s.PowerLimitW = s.IdlePowerW }},
		{"zero max dynamic", func(s *DeviceSpec) { s.MaxDynamicPowerW = 0 }},
		{"boost below base", func(s *DeviceSpec) { s.BoostClockMHz = s.BaseClockMHz - 1 }},
		{"min clock above base", func(s *DeviceSpec) { s.MinClockMHz = s.BaseClockMHz + 1 }},
		{"zero MPS clients", func(s *DeviceSpec) { s.MaxMPSClients = 0 }},
	}
	for _, c := range cases {
		spec := MustLookup("A100X")
		c.mutate(&spec)
		if err := Register("bad-test-device", spec); err == nil {
			t.Errorf("Register accepted spec with %s", c.name)
		}
	}
}

func TestRegisterAndLookupCustom(t *testing.T) {
	spec := MustLookup("A100X")
	spec.Name = "Custom Part"
	if err := Register("custom-test", spec); err != nil {
		t.Fatal(err)
	}
	got, err := Lookup("custom-test")
	if err != nil || got.Name != "Custom Part" {
		t.Fatalf("Lookup custom = %v, %v", got.Name, err)
	}
}
