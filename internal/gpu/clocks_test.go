package gpu

import (
	"strings"
	"testing"
)

func TestThrottleReasonString(t *testing.T) {
	cases := []struct {
		r    ThrottleReason
		want string
	}{
		{ThrottleNone, "None"},
		{ThrottleGPUIdle, "GpuIdle"},
		{ThrottleSwPowerCap, "SwPowerCap"},
		{ThrottleSwPowerCap | ThrottleHwSlowdown, "SwPowerCap|HwSlowdown"},
		{ThrottleSwThermal, "SwThermalSlowdown"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%#x.String() = %q, want %q", uint64(c.r), got, c.want)
		}
	}
}

func TestThrottleReasonHas(t *testing.T) {
	r := ThrottleSwPowerCap | ThrottleGPUIdle
	if !r.Has(ThrottleSwPowerCap) || !r.Has(ThrottleGPUIdle) {
		t.Fatal("Has missed set bits")
	}
	if r.Has(ThrottleHwSlowdown) {
		t.Fatal("Has reported unset bit")
	}
	if !r.Has(ThrottleSwPowerCap | ThrottleGPUIdle) {
		t.Fatal("Has must match full masks")
	}
	if r.Has(ThrottleSwPowerCap | ThrottleHwSlowdown) {
		t.Fatal("Has must require all bits of the mask")
	}
}

func TestThrottleStringOrderStable(t *testing.T) {
	r := ThrottleDisplayClock | ThrottleGPUIdle | ThrottleAppClocks
	s := r.String()
	if !strings.HasPrefix(s, "GpuIdle|") {
		t.Fatalf("expected canonical bit order, got %q", s)
	}
}
