package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"gpushare/internal/simtime"
)

func testModel() PowerModel { return PowerModel{Spec: MustLookup("A100X")} }

func TestDecideIdle(t *testing.T) {
	m := testModel()
	d := m.Decide(0)
	if d.PowerW != m.Spec.IdlePowerW {
		t.Fatalf("idle power = %v, want %v", d.PowerW, m.Spec.IdlePowerW)
	}
	if !d.Reasons.Has(ThrottleGPUIdle) || d.Capped {
		t.Fatal("idle decision must carry GpuIdle reason and no cap")
	}
	if d.ClockFactor != 1 {
		t.Fatalf("idle clock factor = %v", d.ClockFactor)
	}
}

func TestDecideUnderBudget(t *testing.T) {
	m := testModel()
	d := m.Decide(200) // budget is 300-55=245
	if d.Capped {
		t.Fatal("200 W demand must not cap")
	}
	if d.PowerW != m.Spec.IdlePowerW+200 {
		t.Fatalf("power = %v", d.PowerW)
	}
	if d.ClockFactor != 1 {
		t.Fatalf("clock factor = %v", d.ClockFactor)
	}
}

func TestDecideCapsAtLimit(t *testing.T) {
	m := testModel()
	d := m.Decide(300)
	if !d.Capped || !d.Reasons.Has(ThrottleSwPowerCap) {
		t.Fatal("300 W demand must trigger SW power cap")
	}
	if math.Abs(d.PowerW-m.Spec.PowerLimitW) > 1e-9 {
		t.Fatalf("capped power = %v, want exactly the %v W limit", d.PowerW, m.Spec.PowerLimitW)
	}
	wantFactor := (m.Spec.PowerLimitW - m.Spec.IdlePowerW) / 300
	if math.Abs(d.ClockFactor-wantFactor) > 1e-9 {
		t.Fatalf("clock factor = %v, want %v", d.ClockFactor, wantFactor)
	}
}

func TestDecideClampsAtMaxDynamic(t *testing.T) {
	m := testModel()
	d := m.Decide(10000)
	if d.DemandW != m.Spec.MaxDynamicPowerW {
		t.Fatalf("demand clamped to %v, want %v", d.DemandW, m.Spec.MaxDynamicPowerW)
	}
}

func TestDecideClockFloor(t *testing.T) {
	m := testModel()
	m.Spec.MinClockMHz = 1200 // artificially high floor
	d := m.Decide(m.Spec.MaxDynamicPowerW)
	if d.ClockFactor < m.Spec.MinClockFactor()-1e-12 {
		t.Fatalf("clock factor %v below floor %v", d.ClockFactor, m.Spec.MinClockFactor())
	}
	// At the floor the device may exceed the limit slightly.
	if d.PowerW <= m.Spec.PowerLimitW {
		t.Fatalf("expected floor-limited power above limit, got %v", d.PowerW)
	}
}

func TestDecidePowerNeverExceedsLimitProperty(t *testing.T) {
	m := testModel()
	f := func(demand uint16) bool {
		d := m.Decide(float64(demand))
		// Power stays at or under the limit whenever the clock floor is
		// not binding (the A100X floor is far below any real demand).
		return d.PowerW <= m.Spec.PowerLimitW+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecideMonotoneInDemand(t *testing.T) {
	m := testModel()
	prev := -1.0
	for demand := 0.0; demand <= 500; demand += 7 {
		d := m.Decide(demand)
		if d.PowerW < prev-1e-9 {
			t.Fatalf("power not monotone at demand %v: %v < %v", demand, d.PowerW, prev)
		}
		prev = d.PowerW
	}
}

func TestClockMHz(t *testing.T) {
	m := testModel()
	if got := m.ClockMHz(1); got != m.Spec.BoostClockMHz {
		t.Fatalf("ClockMHz(1) = %d", got)
	}
	if got := m.ClockMHz(0); got != m.Spec.MinClockMHz {
		t.Fatalf("ClockMHz(0) = %d, want floor", got)
	}
	if got := m.ClockMHz(2); got != m.Spec.BoostClockMHz {
		t.Fatalf("ClockMHz(2) = %d, want boost clamp", got)
	}
}

func TestEnergyMeter(t *testing.T) {
	m := testModel()
	var e EnergyMeter
	e.Accumulate(10*simtime.Second, m.Decide(0))   // idle: 55 W
	e.Accumulate(10*simtime.Second, m.Decide(100)) // active: 155 W
	e.Accumulate(10*simtime.Second, m.Decide(400)) // capped: 300 W

	wantEnergy := 10*55.0 + 10*155 + 10*300
	if math.Abs(e.EnergyJ()-wantEnergy) > 1e-6 {
		t.Fatalf("energy = %v, want %v", e.EnergyJ(), wantEnergy)
	}
	if got := e.CappedFraction(); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("capped fraction = %v, want 1/3", got)
	}
	if got := e.ActiveFraction(); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("active fraction = %v, want 2/3", got)
	}
	if got := e.AveragePowerW(); math.Abs(got-wantEnergy/30) > 1e-9 {
		t.Fatalf("avg power = %v", got)
	}
	if got := e.PeakPowerW(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("peak power = %v", got)
	}
	if e.Elapsed() != 30*simtime.Second {
		t.Fatalf("elapsed = %v", e.Elapsed())
	}
	if e.CappedTime() != 10*simtime.Second {
		t.Fatalf("capped time = %v", e.CappedTime())
	}
}

func TestEnergyMeterIgnoresNonPositiveIntervals(t *testing.T) {
	m := testModel()
	var e EnergyMeter
	e.Accumulate(0, m.Decide(100))
	e.Accumulate(-simtime.Second, m.Decide(100))
	if e.EnergyJ() != 0 || e.Elapsed() != 0 {
		t.Fatal("non-positive intervals must not accumulate")
	}
}

func TestEnergyMeterReset(t *testing.T) {
	m := testModel()
	var e EnergyMeter
	e.Accumulate(simtime.Second, m.Decide(100))
	e.Reset()
	if e.EnergyJ() != 0 || e.Elapsed() != 0 || e.PeakPowerW() != 0 {
		t.Fatal("Reset did not clear the meter")
	}
}
