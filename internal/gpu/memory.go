package gpu

import (
	"fmt"
	"sort"
)

// ErrOutOfMemory is returned when an allocation exceeds remaining device
// memory. The scheduler's interference rule 3 (combined maximum memory
// must fit in device capacity) exists precisely to avoid this.
type ErrOutOfMemory struct {
	Device    string
	WantMiB   int64
	FreeMiB   int64
	TotalMiB  int64
	Requester string
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("gpu %s: out of memory: %s requested %d MiB, %d of %d MiB free",
		e.Device, e.Requester, e.WantMiB, e.FreeMiB, e.TotalMiB)
}

// MemAllocator tracks per-owner device memory reservations. It models the
// coarse, task-granularity footprint the paper schedules against (each
// task's maximum resident set), not CUDA's sub-allocation behaviour —
// the scheduler never observes anything finer.
//
// MemAllocator is not safe for concurrent use; the simulation loop is
// single-threaded.
type MemAllocator struct {
	device   string
	totalMiB int64
	usedMiB  int64
	owners   map[string]int64
}

// NewMemAllocator returns an allocator for a device with the given
// capacity.
func NewMemAllocator(device string, totalMiB int64) *MemAllocator {
	return &MemAllocator{
		device:   device,
		totalMiB: totalMiB,
		owners:   make(map[string]int64),
	}
}

// Alloc reserves mib MiB for owner. Multiple allocations by the same owner
// accumulate. It fails with *ErrOutOfMemory if the reservation does not
// fit.
func (a *MemAllocator) Alloc(owner string, mib int64) error {
	if mib < 0 {
		//repro:allow:hotpathalloc error path: a malformed reservation aborts the task, not the steady state
		return fmt.Errorf("gpu %s: negative allocation %d MiB by %s", a.device, mib, owner)
	}
	if a.usedMiB+mib > a.totalMiB {
		//repro:allow:hotpathalloc error path: OOM is recorded per task and is off the steady-state path
		return &ErrOutOfMemory{
			Device:    a.device,
			WantMiB:   mib,
			FreeMiB:   a.totalMiB - a.usedMiB,
			TotalMiB:  a.totalMiB,
			Requester: owner,
		}
	}
	a.usedMiB += mib
	a.owners[owner] += mib
	return nil
}

// Free releases all memory held by owner and returns the amount released.
func (a *MemAllocator) Free(owner string) int64 {
	mib, ok := a.owners[owner]
	if !ok {
		return 0
	}
	delete(a.owners, owner)
	a.usedMiB -= mib
	return mib
}

// UsedMiB returns current total reservations.
func (a *MemAllocator) UsedMiB() int64 { return a.usedMiB }

// FreeMiB returns remaining capacity.
func (a *MemAllocator) FreeMiB() int64 { return a.totalMiB - a.usedMiB }

// TotalMiB returns the device capacity.
func (a *MemAllocator) TotalMiB() int64 { return a.totalMiB }

// OwnerMiB returns the reservation held by owner (0 if none).
func (a *MemAllocator) OwnerMiB(owner string) int64 { return a.owners[owner] }

// Owners returns the current owners in sorted order, for deterministic
// diagnostics.
func (a *MemAllocator) Owners() []string {
	out := make([]string, 0, len(a.owners))
	for o := range a.owners {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}
