package gpu

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMemAllocatorBasics(t *testing.T) {
	a := NewMemAllocator("gpu0", 1000)
	if err := a.Alloc("t1", 400); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc("t2", 500); err != nil {
		t.Fatal(err)
	}
	if a.UsedMiB() != 900 || a.FreeMiB() != 100 {
		t.Fatalf("used/free = %d/%d", a.UsedMiB(), a.FreeMiB())
	}
	if got := a.OwnerMiB("t1"); got != 400 {
		t.Fatalf("owner t1 = %d", got)
	}
	if got := a.Free("t1"); got != 400 {
		t.Fatalf("Free returned %d", got)
	}
	if a.UsedMiB() != 500 {
		t.Fatalf("used after free = %d", a.UsedMiB())
	}
}

func TestMemAllocatorOOM(t *testing.T) {
	a := NewMemAllocator("gpu0", 1000)
	if err := a.Alloc("t1", 800); err != nil {
		t.Fatal(err)
	}
	err := a.Alloc("t2", 300)
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if oom.WantMiB != 300 || oom.FreeMiB != 200 || oom.TotalMiB != 1000 || oom.Requester != "t2" {
		t.Fatalf("OOM fields: %+v", oom)
	}
	if oom.Error() == "" {
		t.Fatal("empty OOM message")
	}
	// Failed allocation must not change accounting.
	if a.UsedMiB() != 800 {
		t.Fatalf("used after OOM = %d", a.UsedMiB())
	}
}

func TestMemAllocatorNegative(t *testing.T) {
	a := NewMemAllocator("gpu0", 1000)
	if err := a.Alloc("t1", -1); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestMemAllocatorAccumulatesPerOwner(t *testing.T) {
	a := NewMemAllocator("gpu0", 1000)
	_ = a.Alloc("t1", 100)
	_ = a.Alloc("t1", 150)
	if got := a.OwnerMiB("t1"); got != 250 {
		t.Fatalf("accumulated owner = %d, want 250", got)
	}
	if got := a.Free("t1"); got != 250 {
		t.Fatalf("Free = %d, want 250", got)
	}
}

func TestMemAllocatorFreeUnknownOwner(t *testing.T) {
	a := NewMemAllocator("gpu0", 1000)
	if got := a.Free("ghost"); got != 0 {
		t.Fatalf("Free(ghost) = %d", got)
	}
}

func TestMemAllocatorOwnersSorted(t *testing.T) {
	a := NewMemAllocator("gpu0", 1000)
	_ = a.Alloc("zeta", 1)
	_ = a.Alloc("alpha", 1)
	_ = a.Alloc("mid", 1)
	owners := a.Owners()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if owners[i] != want[i] {
			t.Fatalf("owners = %v", owners)
		}
	}
}

func TestMemAllocatorConservationProperty(t *testing.T) {
	// Invariant: used = Σ owner reservations, and used ≤ total, across
	// arbitrary alloc/free sequences.
	f := func(ops []uint8) bool {
		a := NewMemAllocator("gpu0", 500)
		owners := []string{"a", "b", "c"}
		for i, op := range ops {
			owner := owners[int(op)%3]
			if op%2 == 0 {
				_ = a.Alloc(owner, int64(op)%97)
			} else if i%5 == 0 {
				a.Free(owner)
			}
			var sum int64
			for _, o := range a.Owners() {
				sum += a.OwnerMiB(o)
			}
			if sum != a.UsedMiB() || a.UsedMiB() > a.TotalMiB() || a.UsedMiB() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
