// Package gpu models the NVIDIA-style GPU device the paper's evaluation
// ran on: streaming multiprocessors with warp-slot/register/shared-memory
// occupancy limits, HBM capacity and bandwidth, clock domains, and the
// idle+dynamic power model with the 300 W software power-cap governor that
// drives the paper's Figure 3.
//
// The model is calibrated to the NVIDIA A100X converged accelerator used in
// the paper (GA100, 108 SMs, 80 GiB HBM2e, 300 W board power limit). Other
// device generations are included in the registry so schedulers and tests
// can exercise heterogeneous clusters.
package gpu

import (
	"fmt"
	"sort"
)

// DeviceSpec describes the static capabilities of one GPU model. All
// occupancy-relevant limits follow the CUDA occupancy calculator's inputs
// for the corresponding compute capability.
type DeviceSpec struct {
	// Name is the marketing name, e.g. "NVIDIA A100X".
	Name string
	// ComputeCapability in major.minor form, e.g. "8.0".
	ComputeCapability string

	// SMCount is the number of streaming multiprocessors.
	SMCount int
	// MaxWarpsPerSM is the warp-slot capacity of one SM.
	MaxWarpsPerSM int
	// MaxThreadsPerSM is the resident-thread capacity of one SM.
	MaxThreadsPerSM int
	// MaxBlocksPerSM is the resident-block capacity of one SM.
	MaxBlocksPerSM int
	// MaxThreadsPerBlock is the largest legal block size.
	MaxThreadsPerBlock int
	// RegistersPerSM is the size of one SM's register file (32-bit regs).
	RegistersPerSM int
	// MaxRegistersPerThread is the per-thread register allocation cap.
	MaxRegistersPerThread int
	// RegisterAllocGranularity is the unit registers are allocated in
	// (per warp), matching the occupancy calculator.
	RegisterAllocGranularity int
	// SharedMemPerSM is the shared memory usable per SM, in bytes.
	SharedMemPerSM int
	// SharedMemAllocGranularity is the shared-memory allocation unit in
	// bytes.
	SharedMemAllocGranularity int
	// WarpSize is the number of threads per warp (32 on all NVIDIA parts).
	WarpSize int

	// MemoryMiB is the device memory capacity in MiB.
	MemoryMiB int64
	// MemoryBandwidthGBs is the peak HBM bandwidth in GB/s.
	MemoryBandwidthGBs float64

	// BaseClockMHz and BoostClockMHz bound the SM clock domain.
	BaseClockMHz  int
	BoostClockMHz int
	// MinClockMHz is the floor the SW power-cap governor may throttle to.
	MinClockMHz int

	// IdlePowerW is the board power drawn with no kernels resident.
	IdlePowerW float64
	// PowerLimitW is the software power cap (300 W on the A100X): the
	// governor throttles clocks so board power stays at or below it.
	PowerLimitW float64
	// MaxDynamicPowerW bounds the dynamic (above-idle) power the silicon
	// can draw at boost clocks before the governor intervenes. Raw demand
	// beyond this saturates: a fully packed device cannot draw more.
	MaxDynamicPowerW float64

	// MaxMPSClients is the hardware/driver limit on concurrent MPS client
	// processes (48 on Volta+ MPS).
	MaxMPSClients int
	// MIGCapable reports whether the device supports Multi-Instance GPU
	// partitioning (Ampere and later).
	MIGCapable bool
	// MaxMIGInstances is the largest number of MIG slices (7 on A100).
	MaxMIGInstances int
}

// Validate checks internal consistency of the spec.
func (s *DeviceSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("gpu: spec has empty name")
	case s.SMCount <= 0:
		return fmt.Errorf("gpu: %s: SMCount must be positive, got %d", s.Name, s.SMCount)
	case s.MaxWarpsPerSM <= 0:
		return fmt.Errorf("gpu: %s: MaxWarpsPerSM must be positive, got %d", s.Name, s.MaxWarpsPerSM)
	case s.WarpSize <= 0:
		return fmt.Errorf("gpu: %s: WarpSize must be positive, got %d", s.Name, s.WarpSize)
	case s.MaxThreadsPerSM < s.MaxThreadsPerBlock:
		return fmt.Errorf("gpu: %s: MaxThreadsPerSM %d < MaxThreadsPerBlock %d",
			s.Name, s.MaxThreadsPerSM, s.MaxThreadsPerBlock)
	case s.MemoryMiB <= 0:
		return fmt.Errorf("gpu: %s: MemoryMiB must be positive, got %d", s.Name, s.MemoryMiB)
	case s.MemoryBandwidthGBs <= 0:
		return fmt.Errorf("gpu: %s: MemoryBandwidthGBs must be positive", s.Name)
	case s.IdlePowerW < 0 || s.PowerLimitW <= s.IdlePowerW:
		return fmt.Errorf("gpu: %s: power limit %.0f W must exceed idle %.0f W",
			s.Name, s.PowerLimitW, s.IdlePowerW)
	case s.MaxDynamicPowerW <= 0:
		return fmt.Errorf("gpu: %s: MaxDynamicPowerW must be positive", s.Name)
	case s.BaseClockMHz <= 0 || s.BoostClockMHz < s.BaseClockMHz:
		return fmt.Errorf("gpu: %s: boost clock %d MHz must be >= base %d MHz",
			s.Name, s.BoostClockMHz, s.BaseClockMHz)
	case s.MinClockMHz <= 0 || s.MinClockMHz > s.BaseClockMHz:
		return fmt.Errorf("gpu: %s: min clock %d MHz must be in (0, base %d]",
			s.Name, s.MinClockMHz, s.BaseClockMHz)
	case s.MaxMPSClients <= 0:
		return fmt.Errorf("gpu: %s: MaxMPSClients must be positive", s.Name)
	}
	return nil
}

// TotalWarpSlots is the device-wide warp-slot capacity.
func (s *DeviceSpec) TotalWarpSlots() int { return s.SMCount * s.MaxWarpsPerSM }

// MemoryBytes returns the capacity in bytes.
func (s *DeviceSpec) MemoryBytes() int64 { return s.MemoryMiB << 20 }

// MinClockFactor is the lowest clock multiplier the governor can apply,
// relative to boost.
func (s *DeviceSpec) MinClockFactor() float64 {
	return float64(s.MinClockMHz) / float64(s.BoostClockMHz)
}

// Registry of known device models. A100X is the paper's evaluation device;
// the calibration constants (idle power, max dynamic power) are chosen so
// the simulator reproduces Table II's solo power/energy figures and the
// capping behaviour in Figure 3.
var registry = map[string]DeviceSpec{
	"A100X": {
		Name:                      "NVIDIA A100X",
		ComputeCapability:         "8.0",
		SMCount:                   108,
		MaxWarpsPerSM:             64,
		MaxThreadsPerSM:           2048,
		MaxBlocksPerSM:            32,
		MaxThreadsPerBlock:        1024,
		RegistersPerSM:            65536,
		MaxRegistersPerThread:     255,
		RegisterAllocGranularity:  256,
		SharedMemPerSM:            164 * 1024,
		SharedMemAllocGranularity: 128,
		WarpSize:                  32,
		MemoryMiB:                 80 * 1024,
		MemoryBandwidthGBs:        1935,
		BaseClockMHz:              1065,
		BoostClockMHz:             1410,
		MinClockMHz:               210,
		IdlePowerW:                55,
		PowerLimitW:               300,
		MaxDynamicPowerW:          380,
		MaxMPSClients:             48,
		MIGCapable:                true,
		MaxMIGInstances:           7,
	},
	"A100-SXM4-40GB": {
		Name:                      "NVIDIA A100-SXM4-40GB",
		ComputeCapability:         "8.0",
		SMCount:                   108,
		MaxWarpsPerSM:             64,
		MaxThreadsPerSM:           2048,
		MaxBlocksPerSM:            32,
		MaxThreadsPerBlock:        1024,
		RegistersPerSM:            65536,
		MaxRegistersPerThread:     255,
		RegisterAllocGranularity:  256,
		SharedMemPerSM:            164 * 1024,
		SharedMemAllocGranularity: 128,
		WarpSize:                  32,
		MemoryMiB:                 40 * 1024,
		MemoryBandwidthGBs:        1555,
		BaseClockMHz:              1095,
		BoostClockMHz:             1410,
		MinClockMHz:               210,
		IdlePowerW:                52,
		PowerLimitW:               400,
		MaxDynamicPowerW:          450,
		MaxMPSClients:             48,
		MIGCapable:                true,
		MaxMIGInstances:           7,
	},
	"V100-SXM2-32GB": {
		Name:                      "NVIDIA V100-SXM2-32GB",
		ComputeCapability:         "7.0",
		SMCount:                   80,
		MaxWarpsPerSM:             64,
		MaxThreadsPerSM:           2048,
		MaxBlocksPerSM:            32,
		MaxThreadsPerBlock:        1024,
		RegistersPerSM:            65536,
		MaxRegistersPerThread:     255,
		RegisterAllocGranularity:  256,
		SharedMemPerSM:            96 * 1024,
		SharedMemAllocGranularity: 256,
		WarpSize:                  32,
		MemoryMiB:                 32 * 1024,
		MemoryBandwidthGBs:        900,
		BaseClockMHz:              1290,
		BoostClockMHz:             1530,
		MinClockMHz:               135,
		IdlePowerW:                48,
		PowerLimitW:               300,
		MaxDynamicPowerW:          330,
		MaxMPSClients:             48,
		MIGCapable:                false,
		MaxMIGInstances:           0,
	},
	"H100-SXM5-80GB": {
		Name:                      "NVIDIA H100-SXM5-80GB",
		ComputeCapability:         "9.0",
		SMCount:                   132,
		MaxWarpsPerSM:             64,
		MaxThreadsPerSM:           2048,
		MaxBlocksPerSM:            32,
		MaxThreadsPerBlock:        1024,
		RegistersPerSM:            65536,
		MaxRegistersPerThread:     255,
		RegisterAllocGranularity:  256,
		SharedMemPerSM:            228 * 1024,
		SharedMemAllocGranularity: 128,
		WarpSize:                  32,
		MemoryMiB:                 80 * 1024,
		MemoryBandwidthGBs:        3350,
		BaseClockMHz:              1590,
		BoostClockMHz:             1980,
		MinClockMHz:               210,
		IdlePowerW:                70,
		PowerLimitW:               700,
		MaxDynamicPowerW:          760,
		MaxMPSClients:             48,
		MIGCapable:                true,
		MaxMIGInstances:           7,
	},
}

// Lookup returns the spec registered under key (e.g. "A100X").
func Lookup(key string) (DeviceSpec, error) {
	s, ok := registry[key]
	if !ok {
		return DeviceSpec{}, fmt.Errorf("gpu: unknown device model %q (known: %v)", key, Models())
	}
	return s, nil
}

// MustLookup is Lookup for statically known keys; it panics on a miss.
func MustLookup(key string) DeviceSpec {
	s, err := Lookup(key)
	if err != nil {
		panic(err)
	}
	return s
}

// Models returns the registered model keys in sorted order.
func Models() []string {
	keys := make([]string, 0, len(registry))
	for k := range registry {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Register adds or replaces a device spec under key. It returns an error if
// the spec is invalid. Register is intended for tests and for users
// modelling custom parts.
func Register(key string, s DeviceSpec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	registry[key] = s
	return nil
}
