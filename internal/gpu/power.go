package gpu

import (
	"math"

	"gpushare/internal/simtime"
)

// PowerModel computes instantaneous board power and the software power-cap
// governor response for one device.
//
// The model is a superposition calibrated against the paper's Table II:
// each resident kernel k contributes ActiveDynamicW(k) × rate(k) watts of
// dynamic power, where rate is the kernel's achieved execution rate
// relative to solo full speed at boost clock. Aggregate dynamic demand is
// clamped at MaxDynamicPowerW — a fully packed device cannot draw more —
// and the governor then scales the clock factor so that
//
//	idle + factor × dynamicDemand ≤ PowerLimitW.
//
// Because execution rate is proportional to clock, throttling by the
// governor simultaneously reduces power and dilates kernel time, which is
// exactly the feedback the paper observes ("the resulting increase in task
// latency from clock throttling seems to cancel out any energy efficiency
// benefits", §V-C).
type PowerModel struct {
	Spec DeviceSpec
}

// GovernorDecision is the power/clock operating point chosen for an
// interval during which the set of resident kernels is unchanged.
type GovernorDecision struct {
	// DemandW is the raw dynamic power demand at full boost clock (after
	// the physical MaxDynamicPowerW clamp), excluding idle power.
	DemandW float64
	// PowerW is the resulting board power (idle + throttled dynamic).
	PowerW float64
	// ClockFactor is the applied clock multiplier in (0, 1].
	ClockFactor float64
	// Capped reports whether the SW power cap actively throttled clocks.
	Capped bool
	// Reasons is the throttle-reason mask for the interval.
	Reasons ThrottleReason
}

// Decide computes the operating point for a given raw dynamic power demand
// (sum over resident kernels of active dynamic watts × allocation share,
// evaluated at boost clock).
func (m *PowerModel) Decide(rawDynamicW float64) GovernorDecision {
	d := GovernorDecision{ClockFactor: 1, Reasons: ThrottleNone}
	if rawDynamicW <= 0 {
		d.PowerW = m.Spec.IdlePowerW
		d.Reasons = ThrottleGPUIdle
		return d
	}
	demand := math.Min(rawDynamicW, m.Spec.MaxDynamicPowerW)
	d.DemandW = demand

	budget := m.Spec.PowerLimitW - m.Spec.IdlePowerW
	if demand <= budget {
		d.PowerW = m.Spec.IdlePowerW + demand
		return d
	}

	// SW power capping: throttle the clock so power meets the limit. The
	// clock factor has a floor (MinClockMHz); if even the floor cannot
	// meet the budget the device runs at the floor slightly above the
	// limit, which matches observed NVML behaviour under extreme load.
	factor := budget / demand
	if floor := m.Spec.MinClockFactor(); factor < floor {
		factor = floor
	}
	d.ClockFactor = factor
	d.PowerW = m.Spec.IdlePowerW + factor*demand
	d.Capped = true
	d.Reasons = ThrottleSwPowerCap
	return d
}

// ClockMHz converts a clock factor to an SM frequency for reporting.
func (m *PowerModel) ClockMHz(factor float64) int {
	mhz := int(factor*float64(m.Spec.BoostClockMHz) + 0.5)
	if mhz < m.Spec.MinClockMHz {
		mhz = m.Spec.MinClockMHz
	}
	if mhz > m.Spec.BoostClockMHz {
		mhz = m.Spec.BoostClockMHz
	}
	return mhz
}

// EnergyMeter integrates board energy and capped time across piecewise-
// constant operating intervals. The zero value is ready to use.
type EnergyMeter struct {
	energyJ    float64
	cappedTime simtime.Duration
	activeTime simtime.Duration
	totalTime  simtime.Duration
	peakPowerW float64
}

// Accumulate adds an interval of length dt spent at decision d.
func (e *EnergyMeter) Accumulate(dt simtime.Duration, d GovernorDecision) {
	if dt <= 0 {
		return
	}
	e.energyJ += d.PowerW * dt.Seconds()
	e.totalTime += dt
	if d.Capped {
		e.cappedTime += dt
	}
	if d.DemandW > 0 {
		e.activeTime += dt
	}
	if d.PowerW > e.peakPowerW {
		e.peakPowerW = d.PowerW
	}
}

// EnergyJ returns total integrated board energy in joules.
func (e *EnergyMeter) EnergyJ() float64 { return e.energyJ }

// CappedFraction returns the fraction of elapsed time the SW power cap was
// actively throttling, the quantity plotted in the paper's Figure 3.
func (e *EnergyMeter) CappedFraction() float64 {
	if e.totalTime <= 0 {
		return 0
	}
	return e.cappedTime.Seconds() / e.totalTime.Seconds()
}

// ActiveFraction returns the fraction of elapsed time any kernel was
// resident (the nvidia-smi "GPU utilization" analog at device level).
func (e *EnergyMeter) ActiveFraction() float64 {
	if e.totalTime <= 0 {
		return 0
	}
	return e.activeTime.Seconds() / e.totalTime.Seconds()
}

// AveragePowerW returns time-averaged board power.
func (e *EnergyMeter) AveragePowerW() float64 {
	if e.totalTime <= 0 {
		return 0
	}
	return e.energyJ / e.totalTime.Seconds()
}

// PeakPowerW returns the highest instantaneous board power observed.
func (e *EnergyMeter) PeakPowerW() float64 { return e.peakPowerW }

// Elapsed returns the total integrated time.
func (e *EnergyMeter) Elapsed() simtime.Duration { return e.totalTime }

// CappedTime returns the total time under active SW power capping.
func (e *EnergyMeter) CappedTime() simtime.Duration { return e.cappedTime }

// Reset clears the meter.
func (e *EnergyMeter) Reset() { *e = EnergyMeter{} }
