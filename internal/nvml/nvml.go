// Package nvml emulates the slice of the NVIDIA Management Library (and
// nvidia-smi / DCGM counters) the paper's profiling methodology consumes:
// periodic sampling of power draw, utilization, memory use, SM clocks and
// clocks-event (throttle) reasons, including the SwPowerCap reason that
// Figure 3 is built from.
//
// Samples are produced by resampling a gpusim trace at a fixed interval,
// exactly as `nvidia-smi --query-gpu=... --loop-ms=100` would observe a
// real device.
package nvml

import (
	"fmt"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/simtime"
)

// DefaultSampleInterval matches the paper's SMI polling granularity.
const DefaultSampleInterval = 100 * simtime.Millisecond

// Sample is one polling observation of device state.
type Sample struct {
	// At is the sampling instant.
	At simtime.Time
	// PowerW is instantaneous board power draw
	// (nvmlDeviceGetPowerUsage).
	PowerW float64
	// GPUUtilPct is the nvidia-smi "utilization.gpu" analog: percent of
	// recent time at least one kernel was resident (0 or 100 at an
	// instant in the fluid model).
	GPUUtilPct float64
	// SMActivityPct is the DCGM SM_ACTIVE analog: percent of device
	// compute throughput in use — the Table II "Avg SM Utilization"
	// integrand.
	SMActivityPct float64
	// MemBWUtilPct is percent of peak memory bandwidth in use.
	MemBWUtilPct float64
	// MemUsedMiB is the device memory reservation
	// (nvmlDeviceGetMemoryInfo.used).
	MemUsedMiB int64
	// SMClockMHz is the SM clock (nvmlDeviceGetClockInfo).
	SMClockMHz int
	// Reasons is the clocks-event-reasons bitmask
	// (nvmlDeviceGetCurrentClocksEventReasons).
	Reasons gpu.ThrottleReason
	// ResidentKernels is the number of co-resident kernel bursts (the
	// per-process view MPS accounting would give).
	ResidentKernels int
}

// SampleTrace polls a simulation trace at the given interval from time 0
// through end (inclusive of the final partial interval). The trace must be
// time-ordered, as gpusim produces it.
func SampleTrace(spec gpu.DeviceSpec, trace []gpusim.TracePoint, end simtime.Time, interval simtime.Duration) ([]Sample, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("nvml: sample interval must be positive, got %v", interval)
	}
	if end < 0 {
		return nil, fmt.Errorf("nvml: negative trace end %v", end)
	}
	pm := gpu.PowerModel{Spec: spec}
	var samples []Sample
	idx := 0
	for at := simtime.Zero; ; at = at.Add(interval) {
		if at > end {
			break
		}
		// Advance to the trace interval containing `at`.
		for idx+1 < len(trace) && trace[idx+1].At <= at {
			idx++
		}
		s := Sample{At: at, SMClockMHz: spec.BoostClockMHz, PowerW: spec.IdlePowerW,
			Reasons: gpu.ThrottleGPUIdle}
		if len(trace) > 0 && trace[idx].At <= at {
			tp := trace[idx]
			s.PowerW = tp.PowerW
			s.SMActivityPct = tp.ComputeUtil * 100
			s.MemBWUtilPct = tp.BWUtil * 100
			s.MemUsedMiB = tp.MemUsedMiB
			s.SMClockMHz = pm.ClockMHz(tp.ClockFactor)
			s.ResidentKernels = tp.ActiveKernels
			if tp.ActiveKernels > 0 {
				s.GPUUtilPct = 100
				s.Reasons = gpu.ThrottleNone
			} else {
				s.Reasons = gpu.ThrottleGPUIdle
			}
			if tp.Capped {
				s.Reasons |= gpu.ThrottleSwPowerCap
			}
		}
		samples = append(samples, s)
	}
	return samples, nil
}

// Summary aggregates a sample series the way the paper's methodology does.
type Summary struct {
	// Duration covered by the samples.
	Duration simtime.Duration
	// AvgPowerW and PeakPowerW over the series.
	AvgPowerW  float64
	PeakPowerW float64
	// EnergyJ integrated with the sampling rectangle rule (what a real
	// SMI-polling harness computes).
	EnergyJ float64
	// AvgGPUUtilPct is average kernel-resident time percentage.
	AvgGPUUtilPct float64
	// AvgSMActivityPct is the Table II "Avg SM Utilization" figure.
	AvgSMActivityPct float64
	// AvgMemBWUtilPct is the Table II "Avg Memory BW Utilization" figure.
	AvgMemBWUtilPct float64
	// MaxMemUsedMiB is the Table II "Max Memory" figure.
	MaxMemUsedMiB int64
	// SwPowerCapPct is the percentage of samples with the SwPowerCap
	// clocks-event reason — Figure 3's y-axis.
	SwPowerCapPct float64
	// AvgSMClockMHz is the mean SM frequency.
	AvgSMClockMHz float64
	// IdlePct is the percentage of samples with no resident kernel.
	IdlePct float64
}

// Summarize reduces a sample series. An empty series reduces to the zero
// Summary: a zero-makespan run produces no samples, and dividing by the
// zero sample count would poison every averaged field with NaN.
func Summarize(samples []Sample, interval simtime.Duration) (Summary, error) {
	if interval <= 0 {
		return Summary{}, fmt.Errorf("nvml: sample interval must be positive, got %v", interval)
	}
	if len(samples) == 0 {
		return Summary{}, nil
	}
	var sum Summary
	var capped, idle int
	for _, s := range samples {
		sum.AvgPowerW += s.PowerW
		if s.PowerW > sum.PeakPowerW {
			sum.PeakPowerW = s.PowerW
		}
		sum.AvgGPUUtilPct += s.GPUUtilPct
		sum.AvgSMActivityPct += s.SMActivityPct
		sum.AvgMemBWUtilPct += s.MemBWUtilPct
		if s.MemUsedMiB > sum.MaxMemUsedMiB {
			sum.MaxMemUsedMiB = s.MemUsedMiB
		}
		sum.AvgSMClockMHz += float64(s.SMClockMHz)
		if s.Reasons.Has(gpu.ThrottleSwPowerCap) {
			capped++
		}
		if s.ResidentKernels == 0 {
			idle++
		}
	}
	n := float64(len(samples))
	sum.AvgPowerW /= n
	sum.AvgGPUUtilPct /= n
	sum.AvgSMActivityPct /= n
	sum.AvgMemBWUtilPct /= n
	sum.AvgSMClockMHz /= n
	sum.SwPowerCapPct = 100 * float64(capped) / n
	sum.IdlePct = 100 * float64(idle) / n
	sum.Duration = simtime.Duration(int64(interval) * int64(len(samples)))
	sum.EnergyJ = sum.AvgPowerW * sum.Duration.Seconds()
	return sum, nil
}

// IntegrateTrace reduces a simulation trace by exact piecewise-constant
// integration — the Nsight Systems analog: trace-based and free of the
// polling aliasing SampleTrace exhibits on sub-interval kernel bursts. The
// paper's methodology pairs Nsight (utilization, precise) with SMI polling
// (power, capping); the profiler uses this for the utilization columns.
//
// A zero end (an empty or zero-makespan run) integrates to the zero
// Summary rather than dividing by zero time; a negative end is still a
// caller bug and errors.
func IntegrateTrace(spec gpu.DeviceSpec, trace []gpusim.TracePoint, end simtime.Time) (Summary, error) {
	if end < 0 {
		return Summary{}, fmt.Errorf("nvml: negative trace end %v", end)
	}
	if end == 0 {
		return Summary{}, nil
	}
	var sum Summary
	sum.Duration = simtime.Duration(end)
	total := end.Seconds()
	pm := gpu.PowerModel{Spec: spec}

	var idleS, cappedS, activeS float64
	if len(trace) == 0 {
		sum.AvgPowerW = spec.IdlePowerW
		sum.PeakPowerW = spec.IdlePowerW
		sum.EnergyJ = spec.IdlePowerW * total
		sum.IdlePct = 100
		sum.AvgSMClockMHz = float64(spec.BoostClockMHz)
		return sum, nil
	}
	for i, tp := range trace {
		start := tp.At
		stop := end
		if i+1 < len(trace) {
			stop = trace[i+1].At
		}
		if stop > end {
			stop = end
		}
		dt := stop.Sub(start).Seconds()
		if dt <= 0 {
			continue
		}
		sum.EnergyJ += tp.PowerW * dt
		sum.AvgSMActivityPct += tp.ComputeUtil * 100 * dt
		sum.AvgMemBWUtilPct += tp.BWUtil * 100 * dt
		sum.AvgSMClockMHz += float64(pm.ClockMHz(tp.ClockFactor)) * dt
		if tp.MemUsedMiB > sum.MaxMemUsedMiB {
			sum.MaxMemUsedMiB = tp.MemUsedMiB
		}
		if tp.PowerW > sum.PeakPowerW {
			sum.PeakPowerW = tp.PowerW
		}
		if tp.Capped {
			cappedS += dt
		}
		if tp.ActiveKernels == 0 {
			idleS += dt
		} else {
			activeS += dt
		}
	}
	sum.AvgPowerW = sum.EnergyJ / total
	sum.AvgSMActivityPct /= total
	sum.AvgMemBWUtilPct /= total
	sum.AvgSMClockMHz /= total
	sum.SwPowerCapPct = 100 * cappedS / total
	sum.IdlePct = 100 * idleS / total
	sum.AvgGPUUtilPct = 100 * activeS / total
	return sum, nil
}
