package nvml

import (
	"math"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/gpusim"
	"gpushare/internal/simtime"
	"gpushare/internal/workload"
)

func a100x() gpu.DeviceSpec { return gpu.MustLookup("A100X") }

// fakeTrace builds a two-interval trace: 1 s active at 200 W, then 1 s
// idle.
func fakeTrace() []gpusim.TracePoint {
	return []gpusim.TracePoint{
		{At: 0, PowerW: 200, ClockFactor: 1, ActiveKernels: 2, ComputeUtil: 0.6, BWUtil: 0.2, MemUsedMiB: 4096},
		{At: simtime.Zero.Add(simtime.Second), PowerW: 55, ClockFactor: 1, ActiveKernels: 0},
	}
}

func TestSampleTraceBasics(t *testing.T) {
	samples, err := SampleTrace(a100x(), fakeTrace(), simtime.Zero.Add(2*simtime.Second), 100*simtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// 0 ms .. 2000 ms inclusive → 21 samples.
	if len(samples) != 21 {
		t.Fatalf("samples = %d, want 21", len(samples))
	}
	first := samples[0]
	if first.PowerW != 200 || first.GPUUtilPct != 100 || first.SMActivityPct != 60 ||
		first.MemBWUtilPct != 20 || first.MemUsedMiB != 4096 || first.ResidentKernels != 2 {
		t.Fatalf("first sample: %+v", first)
	}
	last := samples[len(samples)-1]
	if last.PowerW != 55 || last.GPUUtilPct != 0 {
		t.Fatalf("last sample: %+v", last)
	}
	if !last.Reasons.Has(gpu.ThrottleGPUIdle) {
		t.Fatal("idle sample missing GpuIdle reason")
	}
}

func TestSampleTraceCapping(t *testing.T) {
	trace := []gpusim.TracePoint{
		{At: 0, PowerW: 300, ClockFactor: 0.7, Capped: true, ActiveKernels: 2, ComputeUtil: 1},
	}
	samples, err := SampleTrace(a100x(), trace, simtime.Zero.Add(simtime.Second), 250*simtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if !s.Reasons.Has(gpu.ThrottleSwPowerCap) {
			t.Fatalf("capped sample missing SwPowerCap: %+v", s)
		}
		if s.SMClockMHz >= a100x().BoostClockMHz {
			t.Fatalf("capped sample at boost clock: %d", s.SMClockMHz)
		}
	}
}

func TestSampleTraceValidation(t *testing.T) {
	if _, err := SampleTrace(a100x(), nil, 0, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := SampleTrace(a100x(), nil, -1, simtime.Second); err == nil {
		t.Fatal("negative end accepted")
	}
	// Empty trace: samples report idle defaults.
	samples, err := SampleTrace(a100x(), nil, simtime.Zero.Add(simtime.Second), simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[0].PowerW != a100x().IdlePowerW {
		t.Fatalf("empty-trace samples: %+v", samples)
	}
}

func TestSummarize(t *testing.T) {
	samples, _ := SampleTrace(a100x(), fakeTrace(), simtime.Zero.Add(2*simtime.Second), 100*simtime.Millisecond)
	sum, err := Summarize(samples, 100*simtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Intervals are [At_i, At_{i+1}): 10 active samples at 200 W
	// (0..900 ms) + 11 idle at 55 W (1000..2000 ms).
	wantAvg := (10*200.0 + 11*55) / 21
	if math.Abs(sum.AvgPowerW-wantAvg) > 1e-9 {
		t.Fatalf("avg power %v, want %v", sum.AvgPowerW, wantAvg)
	}
	if sum.PeakPowerW != 200 {
		t.Fatalf("peak %v", sum.PeakPowerW)
	}
	if sum.MaxMemUsedMiB != 4096 {
		t.Fatalf("max mem %v", sum.MaxMemUsedMiB)
	}
	wantIdle := 100 * 11.0 / 21
	if math.Abs(sum.IdlePct-wantIdle) > 1e-9 {
		t.Fatalf("idle %v, want %v", sum.IdlePct, wantIdle)
	}
	if sum.SwPowerCapPct != 0 {
		t.Fatalf("capped %v, want 0", sum.SwPowerCapPct)
	}
	if sum.Duration != simtime.Duration(21)*100*simtime.Millisecond {
		t.Fatalf("duration %v", sum.Duration)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize([]Sample{{}}, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

// TestSummarizeEmptySeries is the zero-makespan regression: an empty
// series must reduce to the zero Summary, not NaN-poisoned averages.
func TestSummarizeEmptySeries(t *testing.T) {
	sum, err := Summarize(nil, simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sum != (Summary{}) {
		t.Fatalf("empty series summary = %+v, want zero Summary", sum)
	}
	if math.IsNaN(sum.AvgPowerW) || math.IsNaN(sum.SwPowerCapPct) || math.IsNaN(sum.IdlePct) {
		t.Fatalf("empty series summary contains NaN: %+v", sum)
	}
}

func TestSummaryAgainstEngineMeter(t *testing.T) {
	// Sampling a real engine trace must agree with the engine's own
	// integrated power within sampling error.
	ts, err := workloadTask()
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpusim.RunSolo(gpusim.Config{Seed: 1}, ts)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := SampleTrace(a100x(), res.Trace, simtime.Zero.Add(res.Makespan), DefaultSampleInterval)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(samples, DefaultSampleInterval)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.AvgPowerW-res.AvgPowerW)/res.AvgPowerW > 0.02 {
		t.Fatalf("sampled power %v vs integrated %v", sum.AvgPowerW, res.AvgPowerW)
	}
}

func TestSystem(t *testing.T) {
	sys, err := NewSystem("A100X", "A100X")
	if err != nil {
		t.Fatal(err)
	}
	if sys.DeviceCount() != 2 {
		t.Fatalf("count = %d", sys.DeviceCount())
	}
	d, err := sys.DeviceByIndex(1)
	if err != nil || d.Index() != 1 {
		t.Fatalf("DeviceByIndex: %v %v", d, err)
	}
	if _, err := sys.DeviceByIndex(2); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if d.Name() != "NVIDIA A100X" || d.MemoryTotalMiB() != 80*1024 ||
		d.PowerManagementLimitW() != 300 || d.MultiprocessorCount() != 108 ||
		d.MaxClocksMHz() != 1410 || !d.MIGCapable() {
		t.Fatalf("device getters wrong: %+v", d.Spec())
	}
	if _, err := NewSystem(); err == nil {
		t.Fatal("empty system accepted")
	}
	if _, err := NewSystem("bogus"); err == nil {
		t.Fatal("bogus model accepted")
	}
}

// workloadTask builds a short suite task for the end-to-end sampling test.
func workloadTask() (*workload.TaskSpec, error) {
	w, err := workload.Get("Kripke")
	if err != nil {
		return nil, err
	}
	return w.BuildTaskSpec("1x", a100x())
}

func TestIntegrateTraceExact(t *testing.T) {
	sum, err := IntegrateTrace(a100x(), fakeTrace(), simtime.Zero.Add(2*simtime.Second))
	if err != nil {
		t.Fatal(err)
	}
	// Exact integration: 1 s at 200 W + 1 s at 55 W over 2 s.
	if math.Abs(sum.AvgPowerW-127.5) > 1e-9 {
		t.Fatalf("avg power %v, want 127.5", sum.AvgPowerW)
	}
	if math.Abs(sum.EnergyJ-255) > 1e-9 {
		t.Fatalf("energy %v, want 255", sum.EnergyJ)
	}
	if math.Abs(sum.AvgSMActivityPct-30) > 1e-9 { // 60% for half the time
		t.Fatalf("SM activity %v, want 30", sum.AvgSMActivityPct)
	}
	if math.Abs(sum.IdlePct-50) > 1e-9 {
		t.Fatalf("idle %v, want 50", sum.IdlePct)
	}
	if sum.MaxMemUsedMiB != 4096 || sum.PeakPowerW != 200 {
		t.Fatalf("peaks: %+v", sum)
	}
}

func TestIntegrateTraceEmptyAndInvalid(t *testing.T) {
	sum, err := IntegrateTrace(a100x(), nil, simtime.Zero.Add(simtime.Second))
	if err != nil {
		t.Fatal(err)
	}
	if sum.AvgPowerW != a100x().IdlePowerW || sum.IdlePct != 100 {
		t.Fatalf("empty trace summary: %+v", sum)
	}
	if _, err := IntegrateTrace(a100x(), nil, -1); err == nil {
		t.Fatal("negative end accepted")
	}
}

// TestIntegrateTraceZeroEnd is the zero-makespan regression: integrating
// over zero time must yield the zero Summary, not AvgPowerW = 0/0 = NaN
// (which previously poisoned downstream CappedFraction-style metrics).
func TestIntegrateTraceZeroEnd(t *testing.T) {
	for _, trace := range [][]gpusim.TracePoint{nil, fakeTrace()} {
		sum, err := IntegrateTrace(a100x(), trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sum != (Summary{}) {
			t.Fatalf("zero-end summary = %+v, want zero Summary", sum)
		}
		if math.IsNaN(sum.AvgPowerW) || math.IsNaN(sum.SwPowerCapPct) || math.IsNaN(sum.AvgGPUUtilPct) {
			t.Fatalf("zero-end summary contains NaN: %+v", sum)
		}
	}
}

func TestIntegrateTraceAgreesWithEngineMeter(t *testing.T) {
	ts, err := workloadTask()
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpusim.RunSolo(gpusim.Config{Seed: 8}, ts)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := IntegrateTrace(a100x(), res.Trace, simtime.Zero.Add(res.Makespan))
	if err != nil {
		t.Fatal(err)
	}
	// Exact integration must match the engine's own meter tightly.
	if math.Abs(sum.EnergyJ-res.EnergyJ)/res.EnergyJ > 0.001 {
		t.Fatalf("integrated energy %v vs engine %v", sum.EnergyJ, res.EnergyJ)
	}
	if math.Abs(sum.SwPowerCapPct/100-res.CappedFraction) > 0.001 {
		t.Fatalf("capped %v vs engine %v", sum.SwPowerCapPct/100, res.CappedFraction)
	}
}
