package nvml

import (
	"fmt"
	"sort"

	"gpushare/internal/gpu"
)

// System emulates an NVML session over a node's GPUs: the handle-by-index
// query surface schedulers and CLI tools use (nvmlDeviceGetCount,
// nvmlDeviceGetHandleByIndex, and the static property getters).
type System struct {
	devices []*Device
}

// Device is one GPU handle.
type Device struct {
	index int
	spec  gpu.DeviceSpec
}

// NewSystem creates a session over the given device models, e.g.
// NewSystem("A100X", "A100X") for the paper's two-GPU node.
func NewSystem(models ...string) (*System, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("nvml: system needs at least one device")
	}
	s := &System{}
	for i, m := range models {
		spec, err := gpu.Lookup(m)
		if err != nil {
			return nil, err
		}
		s.devices = append(s.devices, &Device{index: i, spec: spec})
	}
	return s, nil
}

// DeviceCount mirrors nvmlDeviceGetCount.
func (s *System) DeviceCount() int { return len(s.devices) }

// DeviceByIndex mirrors nvmlDeviceGetHandleByIndex.
func (s *System) DeviceByIndex(i int) (*Device, error) {
	if i < 0 || i >= len(s.devices) {
		return nil, fmt.Errorf("nvml: device index %d out of range [0,%d)", i, len(s.devices))
	}
	return s.devices[i], nil
}

// Devices returns all handles in index order.
func (s *System) Devices() []*Device {
	out := make([]*Device, len(s.devices))
	copy(out, s.devices)
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out
}

// Index returns the device's NVML index.
func (d *Device) Index() int { return d.index }

// Name mirrors nvmlDeviceGetName.
func (d *Device) Name() string { return d.spec.Name }

// Spec exposes the full device model.
func (d *Device) Spec() gpu.DeviceSpec { return d.spec }

// MemoryTotalMiB mirrors nvmlDeviceGetMemoryInfo.total.
func (d *Device) MemoryTotalMiB() int64 { return d.spec.MemoryMiB }

// PowerManagementLimitW mirrors nvmlDeviceGetPowerManagementLimit.
func (d *Device) PowerManagementLimitW() float64 { return d.spec.PowerLimitW }

// MaxClocksMHz mirrors nvmlDeviceGetMaxClockInfo for the SM domain.
func (d *Device) MaxClocksMHz() int { return d.spec.BoostClockMHz }

// MultiprocessorCount mirrors the CUDA device attribute query MPS sizing
// uses.
func (d *Device) MultiprocessorCount() int { return d.spec.SMCount }

// MIGCapable reports Multi-Instance GPU support.
func (d *Device) MIGCapable() bool { return d.spec.MIGCapable }
