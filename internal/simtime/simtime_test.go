package simtime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestAddSub(t *testing.T) {
	base := Zero.Add(3 * Second)
	if got := base.Sub(Zero); got != 3*Second {
		t.Fatalf("Sub = %v, want 3s", got)
	}
	if got := base.Add(-1 * Second); got != Zero.Add(2*Second) {
		t.Fatalf("Add negative = %v, want 2s", got)
	}
}

func TestAddOverflowSaturates(t *testing.T) {
	almost := Time(math.MaxInt64 - 10)
	if got := almost.Add(Hour); got != Forever {
		t.Fatalf("overflowing Add = %v, want Forever", got)
	}
	if got := Forever.Add(Second); got != Forever {
		t.Fatalf("Forever.Add = %v, want Forever", got)
	}
}

func TestBeforeAfter(t *testing.T) {
	a, b := Zero.Add(Second), Zero.Add(2*Second)
	if !a.Before(b) || b.Before(a) {
		t.Fatal("Before ordering wrong")
	}
	if !b.After(a) || a.After(b) {
		t.Fatal("After ordering wrong")
	}
	if a.Before(a) || a.After(a) {
		t.Fatal("Before/After must be strict")
	}
}

func TestSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Duration.Seconds = %v, want 1.5", got)
	}
	if got := Zero.Add(250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Time.Seconds = %v, want 0.25", got)
	}
}

func TestFromSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want Duration
	}{
		{0, 0},
		{1, Second},
		{1.5, 1500 * Millisecond},
		{-2, -2 * Second},
		{1e-9, Nanosecond},
	}
	for _, c := range cases {
		if got := FromSeconds(c.in); got != c.want {
			t.Errorf("FromSeconds(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFromSecondsRoundTripProperty(t *testing.T) {
	f := func(ms int32) bool {
		d := Duration(ms) * Millisecond
		return FromSeconds(d.Seconds()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(base int64, delta int32) bool {
		// Keep values well inside the representable range.
		tm := Time(base % (1 << 40))
		d := Duration(delta)
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	if got := Zero.Add(1500 * Millisecond).String(); got != "1.500000s" {
		t.Fatalf("Time.String = %q", got)
	}
	if got := Forever.String(); got != "forever" {
		t.Fatalf("Forever.String = %q", got)
	}
	if got := (90 * Second).String(); got != "1m30s" {
		t.Fatalf("Duration.String = %q", got)
	}
}

func TestStdConversion(t *testing.T) {
	if got := (2 * Second).Std(); got != 2*time.Second {
		t.Fatalf("Std = %v", got)
	}
	if got := FromStd(3 * time.Millisecond); got != 3*Millisecond {
		t.Fatalf("FromStd = %v", got)
	}
}

func TestMinMaxClamp(t *testing.T) {
	a, b := Zero.Add(Second), Zero.Add(2*Second)
	if Min(a, b) != a || Min(b, a) != a {
		t.Fatal("Min wrong")
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Fatal("Max wrong")
	}
	if got := Clamp(5*Second, Second, 3*Second); got != 3*Second {
		t.Fatalf("Clamp above = %v", got)
	}
	if got := Clamp(0, Second, 3*Second); got != Second {
		t.Fatalf("Clamp below = %v", got)
	}
	if got := Clamp(2*Second, Second, 3*Second); got != 2*Second {
		t.Fatalf("Clamp inside = %v", got)
	}
}
