// Package simtime provides the time base for the discrete-event GPU
// simulator.
//
// Simulated time is a monotonically increasing nanosecond counter starting
// at zero when a simulation begins. Using integer nanoseconds (rather than
// float64 seconds) keeps event ordering exact and makes simulations
// bit-for-bit reproducible across runs and platforms, which the experiment
// harness relies on.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant in simulated time, expressed as nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is layout- and
// semantics-compatible with time.Duration so the two convert freely.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Zero is the origin of simulated time.
const Zero Time = 0

// Forever is a sentinel instant later than any reachable simulation time.
// It is used as the horizon for "no deadline".
const Forever Time = Time(1<<63 - 1)

// Add returns the instant d after t. Additions that would overflow saturate
// at Forever; the simulator treats that as "never".
func (t Time) Add(d Duration) Time {
	s := Time(int64(t) + int64(d))
	if d > 0 && s < t {
		return Forever
	}
	return s
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(int64(t) - int64(u)) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the instant as a floating-point number of seconds since
// the simulation origin.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with microsecond precision, e.g.
// "12.345678s". The fixed precision keeps log output diff-stable.
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts the simulated duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration like time.Duration does.
func (d Duration) String() string { return time.Duration(d).String() }

// FromSeconds converts floating-point seconds to a Duration, rounding to
// the nearest nanosecond. Negative inputs are preserved (callers validate).
func FromSeconds(s float64) Duration {
	if s >= 0 {
		return Duration(s*float64(Second) + 0.5)
	}
	return Duration(s*float64(Second) - 0.5)
}

// FromStd converts a time.Duration to a simulated Duration.
func FromStd(d time.Duration) Duration { return Duration(d) }

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clamp limits d to the inclusive range [lo, hi].
func Clamp(d, lo, hi Duration) Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
