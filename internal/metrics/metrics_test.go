package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCompare(t *testing.T) {
	seq := RunSummary{MakespanS: 200, EnergyJ: 40000, Tasks: 10, CappedFraction: 0.0}
	sh := RunSummary{MakespanS: 100, EnergyJ: 25000, Tasks: 10, CappedFraction: 0.2}
	rel, err := Compare(seq, sh)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel.Throughput-2) > 1e-12 {
		t.Fatalf("throughput = %v, want 2", rel.Throughput)
	}
	if math.Abs(rel.EnergyEfficiency-1.6) > 1e-12 {
		t.Fatalf("efficiency = %v, want 1.6", rel.EnergyEfficiency)
	}
	if math.Abs(rel.CappingDeltaPct-20) > 1e-12 {
		t.Fatalf("capping delta = %v, want 20", rel.CappingDeltaPct)
	}
	if rel.Baseline != seq || rel.Shared != sh {
		t.Fatal("summaries not carried")
	}
}

func TestCompareErrors(t *testing.T) {
	ok := RunSummary{MakespanS: 1, EnergyJ: 1, Tasks: 1}
	bad := []struct {
		name    string
		seq, sh RunSummary
	}{
		{"zero tasks", RunSummary{MakespanS: 1, EnergyJ: 1}, ok},
		{"zero makespan", RunSummary{EnergyJ: 1, Tasks: 1}, ok},
		{"zero energy", RunSummary{MakespanS: 1, Tasks: 1}, ok},
		{"task mismatch", RunSummary{MakespanS: 1, EnergyJ: 1, Tasks: 2}, ok},
	}
	for _, c := range bad {
		if _, err := Compare(c.seq, c.sh); err == nil {
			t.Errorf("Compare accepted %s", c.name)
		}
	}
}

func TestCompareIdentityProperty(t *testing.T) {
	// Comparing a run against itself must give exactly 1.0 on both
	// metrics.
	f := func(makespan, energy uint16, tasks uint8) bool {
		s := RunSummary{
			MakespanS: float64(makespan) + 1,
			EnergyJ:   float64(energy) + 1,
			Tasks:     int(tasks) + 1,
		}
		rel, err := Compare(s, s)
		if err != nil {
			return false
		}
		return rel.Throughput == 1 && rel.EnergyEfficiency == 1 && rel.CappingDeltaPct == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProducts(t *testing.T) {
	rel := Relative{Throughput: 2, EnergyEfficiency: 1.5}
	if got := EqualProduct().Eval(rel); math.Abs(got-3) > 1e-12 {
		t.Fatalf("TxE = %v, want 3", got)
	}
	if got := ThroughputBiasedProduct().Eval(rel); math.Abs(got-6) > 1e-12 {
		t.Fatalf("TxTxE = %v, want 6", got)
	}
	if got := EfficiencyBiasedProduct().Eval(rel); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("TxExE = %v, want 4.5", got)
	}
}

func TestProductValidate(t *testing.T) {
	if err := EqualProduct().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Product{ThroughputWeight: -1, EfficiencyWeight: 1}).Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := (Product{}).Validate(); err == nil {
		t.Fatal("zero weights accepted")
	}
}

func TestProductString(t *testing.T) {
	cases := []struct {
		p    Product
		want string
	}{
		{EqualProduct(), "TxE"},
		{ThroughputBiasedProduct(), "TxTxE"},
		{EfficiencyBiasedProduct(), "TxExE"},
		{Product{ThroughputWeight: 1.5, EfficiencyWeight: 1}, "T^1.5*E^1"},
		{Product{ThroughputWeight: 4, EfficiencyWeight: 4}, "T^4*E^4"}, // too long for TxE form
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProductMonotoneProperty(t *testing.T) {
	// Higher throughput at equal efficiency must never lower a product
	// metric with positive weights.
	f := func(t1, t2, e uint8) bool {
		lo := float64(t1%100)/50 + 0.1
		hi := lo + float64(t2%100)/50 + 0.01
		eff := float64(e%100)/50 + 0.1
		p := ThroughputBiasedProduct()
		return p.Eval(Relative{Throughput: hi, EnergyEfficiency: eff}) >
			p.Eval(Relative{Throughput: lo, EnergyEfficiency: eff})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
