// Package metrics implements the paper's evaluation metrics (§IV-C):
// throughput and energy efficiency relative to sequential scheduling, and
// the weighted product metrics used to trade them off.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"gpushare/internal/floats"
	"gpushare/internal/gpusim"
)

// RunSummary is the metric-relevant reduction of one simulation result.
type RunSummary struct {
	// MakespanS is total wall time in seconds.
	MakespanS float64
	// EnergyJ is total board energy.
	EnergyJ float64
	// Tasks is the number of completed (non-OOM) task executions.
	Tasks int
	// CappedFraction is the share of time under SW power capping.
	CappedFraction float64
	// AvgPowerW is the time-averaged board power.
	AvgPowerW float64
}

// Summarize reduces a gpusim result.
func Summarize(r *gpusim.Result) RunSummary {
	return RunSummary{
		MakespanS:      r.Makespan.Seconds(),
		EnergyJ:        r.EnergyJ,
		Tasks:          r.TasksCompleted(),
		CappedFraction: r.CappedFraction,
		AvgPowerW:      r.AvgPowerW,
	}
}

// Relative is the paper's headline comparison: a sharing run measured
// against the sequential baseline on the same task set.
type Relative struct {
	// Throughput is tasks-per-time relative to sequential: >1 means the
	// sharing mechanism completed the same work faster ("number of tasks
	// completed in a given time ... calculated relative to sequential
	// scheduling").
	Throughput float64
	// EnergyEfficiency is sequential energy over sharing energy: >1
	// means the sharing mechanism used less total GPU energy ("the
	// reduction in total GPU energy with MPS over sequential
	// scheduling").
	EnergyEfficiency float64
	// CappingDeltaPct is the increase in percent-of-time under SW power
	// capping versus sequential (Figure 3's quantity).
	CappingDeltaPct float64
	// Baseline and Shared keep the underlying summaries for reporting.
	Baseline RunSummary
	Shared   RunSummary
}

// Compare computes the relative metrics of shared vs sequential. It
// returns an error when the runs completed different task counts (the
// comparison would be meaningless) or the baseline is degenerate.
func Compare(sequential, shared RunSummary) (Relative, error) {
	if sequential.Tasks == 0 || shared.Tasks == 0 {
		return Relative{}, fmt.Errorf("metrics: cannot compare runs with zero completed tasks")
	}
	if sequential.MakespanS <= 0 || shared.MakespanS <= 0 {
		return Relative{}, fmt.Errorf("metrics: cannot compare runs with non-positive makespan")
	}
	if sequential.EnergyJ <= 0 || shared.EnergyJ <= 0 {
		return Relative{}, fmt.Errorf("metrics: cannot compare runs with non-positive energy")
	}
	if sequential.Tasks != shared.Tasks {
		return Relative{}, fmt.Errorf("metrics: task count mismatch: sequential %d vs shared %d",
			sequential.Tasks, shared.Tasks)
	}
	seqRate := float64(sequential.Tasks) / sequential.MakespanS
	shRate := float64(shared.Tasks) / shared.MakespanS
	return Relative{
		Throughput:       shRate / seqRate,
		EnergyEfficiency: sequential.EnergyJ / shared.EnergyJ,
		CappingDeltaPct:  100 * (shared.CappedFraction - sequential.CappedFraction),
		Baseline:         sequential,
		Shared:           shared,
	}, nil
}

// Product is the paper's configurable product metric: throughput^tw ×
// efficiency^ew, generalizing [throughput×efficiency] and
// [throughput×throughput×efficiency] (§IV-C).
type Product struct {
	// ThroughputWeight and EfficiencyWeight are the exponents; both must
	// be non-negative and not both zero.
	ThroughputWeight float64
	EfficiencyWeight float64
}

// EqualProduct weights throughput and efficiency equally (T×E).
func EqualProduct() Product { return Product{ThroughputWeight: 1, EfficiencyWeight: 1} }

// ThroughputBiasedProduct is the paper's T×T×E example.
func ThroughputBiasedProduct() Product { return Product{ThroughputWeight: 2, EfficiencyWeight: 1} }

// EfficiencyBiasedProduct is the symmetric T×E×E variant.
func EfficiencyBiasedProduct() Product { return Product{ThroughputWeight: 1, EfficiencyWeight: 2} }

// Validate checks the weights.
func (p Product) Validate() error {
	if p.ThroughputWeight < 0 || p.EfficiencyWeight < 0 {
		return fmt.Errorf("metrics: product weights must be non-negative, got (%g, %g)",
			p.ThroughputWeight, p.EfficiencyWeight)
	}
	if floats.IsZero(p.ThroughputWeight) && floats.IsZero(p.EfficiencyWeight) {
		return fmt.Errorf("metrics: product weights must not both be zero")
	}
	return nil
}

// Eval computes the product metric for a relative result.
func (p Product) Eval(r Relative) float64 {
	return math.Pow(r.Throughput, p.ThroughputWeight) *
		math.Pow(r.EnergyEfficiency, p.EfficiencyWeight)
}

// String renders the product as the paper writes it, e.g. "TxTxE" for
// integral weights, falling back to exponent notation otherwise.
func (p Product) String() string {
	tw, ew := p.ThroughputWeight, p.EfficiencyWeight
	if floats.IsInt(tw) && floats.IsInt(ew) && tw+ew > 0 && tw+ew <= 6 {
		var parts []string
		for i := 0; i < int(tw); i++ {
			parts = append(parts, "T")
		}
		for i := 0; i < int(ew); i++ {
			parts = append(parts, "E")
		}
		return strings.Join(parts, "x")
	}
	return fmt.Sprintf("T^%g*E^%g", tw, ew)
}
