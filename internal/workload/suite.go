package workload

import (
	"fmt"
	"math"
	"sort"

	"gpushare/internal/gpu"
	"gpushare/internal/kernel"
)

// calibrationDevice is the device the suite's launch configurations and
// grid sizes are calibrated against — the paper's NVIDIA A100X. Demands
// are re-evaluated against whatever device a TaskSpec is built for, but
// grid-size calibration (warp-slot fill targets from Table I) is expressed
// in A100X terms, like the paper's measurements.
var calibrationDevice = gpu.MustLookup("A100X")

// classTmpl is the per-benchmark kernel-class template; grids and demand
// scales are resolved per problem size.
type classTmpl struct {
	name    string
	weight  float64
	threads int
	regs    int
	smem    int
	// fill1x is the warp-slot fill (waves) at 1x; it scales linearly
	// with the problem-size factor (more cells/particles → more blocks).
	fill1x float64
	// balance is the load-balance factor for achieved occupancy.
	balance float64
	// iota1x is the per-covered-SM compute intensity at 1x, before
	// per-size normalization against Table II.
	iota1x float64
	// bw1x is the memory-bandwidth share at 1x, before normalization.
	bw1x float64
}

// sizeCal is one table-backed calibration row (Table II plus the duty
// cycle chosen for the benchmark's host-side behaviour).
type sizeCal struct {
	maxMemMiB int64
	bwPct     float64
	smPct     float64
	powerW    float64
	energyJ   float64
	duty      float64
}

// benchDef is the full calibrated definition of one benchmark.
type benchDef struct {
	name        string
	aliases     []string
	desc        string
	theoOccPct  float64
	achOccPct   float64
	scalingNote string
	// durExp and memExp are fallback scaling exponents used when only a
	// single calibrated size exists (BerkeleyGW-Epsilon).
	durExp  float64
	memExp  float64
	classes []classTmpl
	cal     map[float64]sizeCal
}

// duration returns the solo duration in seconds for a calibration row.
func (c sizeCal) duration() float64 { return c.energyJ / c.powerW }

// suite is the calibrated benchmark suite. Numbers quoted from the paper:
// theo/ach occupancy from Table I; mem/bw/sm/power/energy from Table II.
// Duty cycles, intensities, fills and balances are this reproduction's
// calibration (documented in DESIGN.md §4): duty × intensity must equal
// Table II's SM utilization and fill × balance must map theoretical to
// achieved occupancy per Table I.
var suite = []*benchDef{
	{
		name:    "AthenaPK",
		aliases: []string{"Athena"},
		desc: "Astrophysical AMR (magneto)hydrodynamics on Parthenon+Kokkos; " +
			"test problem: 3D hydro linear-wave convergence.",
		theoOccPct:  51.32,
		achOccPct:   13.3,
		scalingNote: "runtime ≈ factor^2.28 (from Table II 1x→4x); memory ≈ factor^0.95",
		classes: []classTmpl{
			{name: "hydro_flux", weight: 0.55, threads: 64, regs: 61, fill1x: 0.32, balance: 0.81, iota1x: 0.28, bw1x: 0.0004},
			{name: "riemann_solve", weight: 0.25, threads: 64, regs: 61, fill1x: 0.32, balance: 0.81, iota1x: 0.45, bw1x: 0.0004},
			{name: "amr_prolong", weight: 0.20, threads: 64, regs: 56, fill1x: 0.32, balance: 0.81, iota1x: 0.18, bw1x: 0.0004},
		},
		cal: map[float64]sizeCal{
			1: {maxMemMiB: 563, bwPct: 0.01, smPct: 7.54, powerW: 90.09, energyJ: 234.24, duty: 0.25},
			4: {maxMemMiB: 2093, bwPct: 1.78, smPct: 30.29, powerW: 88.86, energyJ: 5407.36, duty: 0.62},
		},
	},
	{
		name:    "BerkeleyGW-Epsilon",
		aliases: []string{"Epsilon", "BerkeleyGW"},
		desc: "Dielectric-function (epsilon) module of BerkeleyGW; complexity " +
			"grows O(N^4) with atom count.",
		theoOccPct:  41.67,
		achOccPct:   23.97,
		scalingNote: "runtime ∝ factor^4 (paper: O(N^4)); memory ∝ factor^2",
		durExp:      4,
		memExp:      2,
		classes: []classTmpl{
			{name: "mtxel", weight: 1.0 / 3, threads: 512, regs: 128, fill1x: 0.68, balance: 0.85, iota1x: 0.25, bw1x: 0.05},
			{name: "chi_summation", weight: 1.0 / 2, threads: 128, regs: 64, fill1x: 0.68, balance: 0.85, iota1x: 0.35, bw1x: 0.10},
			{name: "epsilon_inversion", weight: 1.0 / 6, threads: 128, regs: 64, fill1x: 0.68, balance: 0.85, iota1x: 0.26, bw1x: 0.12},
		},
		cal: map[float64]sizeCal{
			1: {maxMemMiB: 30157, bwPct: 2.63, smPct: 9.04, powerW: 94.41, energyJ: 319448.05, duty: 0.30},
		},
	},
	{
		name:    "Cholla-Gravity",
		aliases: []string{"Gravity"},
		desc: "GPU-native 3D hydrodynamics with self-gravity; test problem: " +
			"gravitational collapse of a spherical overdensity.",
		theoOccPct:  37.5,
		achOccPct:   31.45,
		scalingNote: "runtime ≈ factor^3.02; memory ≈ factor^1.52 (from Table II 1x→4x)",
		classes: []classTmpl{
			{name: "hydro_sweep", weight: 0.6, threads: 64, regs: 80, fill1x: 0.93, balance: 0.90, iota1x: 0.30, bw1x: 0.013},
			{name: "poisson_fft", weight: 0.4, threads: 64, regs: 80, fill1x: 0.93, balance: 0.90, iota1x: 0.40, bw1x: 0.013},
		},
		cal: map[float64]sizeCal{
			1: {maxMemMiB: 615, bwPct: 0.51, smPct: 13.6, powerW: 88.43, energyJ: 309.51, duty: 0.40},
			4: {maxMemMiB: 5063, bwPct: 4.45, smPct: 45.16, powerW: 138.75, energyJ: 20285.8, duty: 0.75},
		},
	},
	{
		name:    "Kripke",
		aliases: nil,
		desc: "LLNL deterministic Sn particle-transport mini-app (ARDRA proxy); " +
			"Discrete Ordinates + Diamond Difference Boltzmann solve.",
		theoOccPct:  43.63,
		achOccPct:   32.61,
		scalingNote: "runtime ≈ factor^2.38; memory ≈ factor^1.57 (from Table II 1x→4x)",
		classes: []classTmpl{
			{name: "ltimes", weight: 0.4, threads: 64, regs: 72, fill1x: 1.00, balance: 0.88, iota1x: 0.45, bw1x: 0.005},
			{name: "scattering", weight: 0.3, threads: 64, regs: 72, fill1x: 0.95, balance: 0.88, iota1x: 0.50, bw1x: 0.005},
			{name: "sweep", weight: 0.3, threads: 64, regs: 72, fill1x: 0.55, balance: 0.88, iota1x: 0.50, bw1x: 0.005},
		},
		cal: map[float64]sizeCal{
			1: {maxMemMiB: 621, bwPct: 0.27, smPct: 26.56, powerW: 123.3, energyJ: 382.24, duty: 0.55},
			4: {maxMemMiB: 5481, bwPct: 3.78, smPct: 63.21, powerW: 148.16, energyJ: 12467.54, duty: 0.85},
		},
	},
	{
		name:    "Cholla-MHD",
		aliases: []string{"MHD"},
		desc: "Magnetohydrodynamic extension of Cholla; test problem: 3D " +
			"advecting field loop (constrained transport).",
		theoOccPct:  19.32,
		achOccPct:   17.72,
		scalingNote: "runtime ≈ factor^1.84; memory ≈ factor^0.82 (from Table II 1x→4x)",
		classes: []classTmpl{
			{name: "ct_update", weight: 0.4544, threads: 128, regs: 32, smem: 56 * 1024, fill1x: 0.96, balance: 0.955, iota1x: 0.76, bw1x: 0.30},
			{name: "mhd_flux", weight: 0.5456, threads: 128, regs: 32, smem: 40 * 1024, fill1x: 0.96, balance: 0.955, iota1x: 0.845, bw1x: 0.38},
		},
		cal: map[float64]sizeCal{
			1: {maxMemMiB: 2175, bwPct: 31.01, smPct: 72.58, powerW: 234.24, energyJ: 9849.99, duty: 0.90},
			4: {maxMemMiB: 6753, bwPct: 41.29, smPct: 88.58, powerW: 261.64, energyJ: 127249.21, duty: 0.95},
		},
	},
	{
		name:    "LAMMPS",
		aliases: nil,
		desc: "Molecular-dynamics simulation (Kokkos backend), the " +
			"performance-critical component of ParSplice workflows.",
		theoOccPct:  35.0,
		achOccPct:   32.7,
		scalingNote: "runtime ≈ factor^2.83; memory ≈ factor^0.55 (from Table II 1x→4x)",
		classes: []classTmpl{
			{name: "pair_force", weight: 0.8, threads: 64, regs: 80, fill1x: 0.97, balance: 0.963, iota1x: 0.82, bw1x: 0.050},
			{name: "neighbor_build", weight: 0.2, threads: 256, regs: 128, fill1x: 0.97, balance: 0.963, iota1x: 0.66, bw1x: 0.065},
		},
		cal: map[float64]sizeCal{
			1: {maxMemMiB: 2321, bwPct: 4.24, smPct: 63.0, powerW: 196.79, energyJ: 580.54, duty: 0.80},
			4: {maxMemMiB: 4977, bwPct: 7.13, smPct: 96.28, powerW: 258.38, energyJ: 29390.48, duty: 0.98},
		},
	},
	{
		name:    "WarpX",
		aliases: nil,
		desc: "Electromagnetic particle-in-cell code; test problem: beam-driven " +
			"plasma-wakefield accelerator (PWFA).",
		theoOccPct: 92.55,
		achOccPct:  24.81,
		scalingNote: "runtime ≈ factor^2.00 (from Table II 1x→4x); memory constant " +
			"(pre-allocated 61453 MiB at both reported sizes)",
		classes: []classTmpl{
			{name: "particle_push", weight: 0.5, threads: 256, regs: 32, fill1x: 0.33, balance: 0.81, iota1x: 0.60, bw1x: 0.0007},
			{name: "current_deposit", weight: 0.2, threads: 256, regs: 32, fill1x: 0.33, balance: 0.81, iota1x: 0.55, bw1x: 0.0007},
			{name: "field_solve", weight: 0.3, threads: 256, regs: 40, fill1x: 0.33, balance: 0.81, iota1x: 0.48, bw1x: 0.0007},
		},
		cal: map[float64]sizeCal{
			1: {maxMemMiB: 61453, bwPct: 0.04, smPct: 33.29, powerW: 117.14, energyJ: 2588.8, duty: 0.60},
			4: {maxMemMiB: 61453, bwPct: 19.75, smPct: 77.28, powerW: 244.32, energyJ: 85756.49, duty: 0.92},
		},
	},
}

var (
	byName = map[string]*benchDef{}
	// workloads caches constructed Workload values per canonical name.
	workloads = map[string]*Workload{}
)

func init() {
	for _, d := range suite {
		byName[d.name] = d
		for _, a := range d.aliases {
			byName[a] = d
		}
	}
}

// Names returns the canonical benchmark names in the paper's order.
func Names() []string {
	out := make([]string, len(suite))
	for i, d := range suite {
		out[i] = d.name
	}
	return out
}

// Canonical resolves a benchmark name or alias to its canonical suite
// name. It is the allocation-free existence probe for hot paths that
// only need the name mapping: Get builds (and caches) the whole
// Workload and, on a miss, allocates a descriptive error listing every
// known benchmark — at fleet scale the scheduler resolves store-only
// archetype names once per arrival, where that miss cost dominated the
// decision path's allocation profile (BENCH_dispatcher.json).
func Canonical(name string) (string, bool) {
	d, ok := byName[name]
	if !ok {
		return "", false
	}
	return d.name, true
}

// Get returns the workload for a benchmark name or alias (the paper's
// Table III uses short names like "Epsilon", "MHD", "Gravity", "Athena").
func Get(name string) (*Workload, error) {
	d, ok := byName[name]
	if !ok {
		known := make([]string, 0, len(byName))
		for k := range byName {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, known)
	}
	if w, ok := workloads[d.name]; ok {
		return w, nil
	}
	w := &Workload{
		Name:              d.name,
		Description:       d.desc,
		TheoreticalOccPct: d.theoOccPct,
		AchievedOccPct:    d.achOccPct,
		ScalingNote:       d.scalingNote,
		def:               d,
		sizes:             make(map[string]*SizeProfile),
	}
	for f, cal := range d.cal {
		label := sizeLabel(f)
		p, err := d.buildProfile(label, f, cal, false)
		if err != nil {
			return nil, fmt.Errorf("workload %s/%s: %w", d.name, label, err)
		}
		w.sizes[label] = p
	}
	workloads[d.name] = w
	return w, nil
}

// MustGet is Get for statically known names; it panics on a miss.
func MustGet(name string) *Workload {
	w, err := Get(name)
	if err != nil {
		panic(err)
	}
	return w
}

func sizeLabel(f float64) string {
	if f == math.Trunc(f) {
		return fmt.Sprintf("%dx", int(f))
	}
	return fmt.Sprintf("%gx", f)
}

// buildProfile resolves a calibration row into a SizeProfile with
// normalized kernel classes.
func (d *benchDef) buildProfile(label string, factor float64, cal sizeCal, derived bool) (*SizeProfile, error) {
	classes, err := d.resolveClasses(factor, cal)
	if err != nil {
		return nil, err
	}
	return &SizeProfile{
		Size:      label,
		Factor:    factor,
		MaxMemMiB: cal.maxMemMiB,
		AvgBWPct:  cal.bwPct,
		AvgSMPct:  cal.smPct,
		AvgPowerW: cal.powerW,
		EnergyJ:   cal.energyJ,
		Duty:      cal.duty,
		Classes:   classes,
		Derived:   derived,
	}, nil
}

// resolveClasses instantiates the class templates for a problem-size
// factor: grids scale with the factor (fill1x × factor waves) and
// intensity/bandwidth are normalized so the duty-weighted aggregates hit
// the calibration row's Table II targets.
func (d *benchDef) resolveClasses(factor float64, cal sizeCal) ([]kernel.Class, error) {
	spec := calibrationDevice
	classes := make([]kernel.Class, 0, len(d.classes))
	for _, t := range d.classes {
		cfg := kernel.LaunchConfig{
			ThreadsPerBlock:    t.threads,
			RegistersPerThread: t.regs,
			SharedMemPerBlock:  t.smem,
			GridBlocks:         1, // placeholder; sized below
		}
		occ, err := kernel.ComputeOccupancy(spec, cfg)
		if err != nil {
			return nil, fmt.Errorf("class %s: %w", t.name, err)
		}
		cfg.GridBlocks = occ.GridForFill(spec, t.fill1x*factor)
		classes = append(classes, kernel.Class{
			Name:      t.name,
			Weight:    t.weight,
			Launch:    cfg,
			Balance:   t.balance,
			Intensity: t.iota1x,
			BWShare:   t.bw1x,
		})
	}

	if cal.duty <= 0 || cal.duty > 1 {
		return nil, fmt.Errorf("duty %g out of (0,1]", cal.duty)
	}
	targetCompute := cal.smPct / 100 / cal.duty
	targetBW := cal.bwPct / 100 / cal.duty
	if err := normalizeIntensity(spec, classes, targetCompute); err != nil {
		return nil, err
	}
	if err := normalizeBandwidth(classes, targetBW); err != nil {
		return nil, err
	}
	return classes, nil
}

// maxIntensity caps per-class intensity during normalization: a real
// kernel never sustains 100% of issue slots.
const maxIntensity = 0.995

// normalizeIntensity rescales class intensities (respecting the per-class
// cap) so the weighted device-level compute demand matches target.
func normalizeIntensity(spec gpu.DeviceSpec, classes []kernel.Class, target float64) error {
	if target <= 0 {
		return fmt.Errorf("workload: compute target must be positive, got %g", target)
	}
	for iter := 0; iter < 12; iter++ {
		agg, err := kernel.AggregateDemand(spec, classes)
		if err != nil {
			return err
		}
		if agg.Compute <= 0 {
			return fmt.Errorf("workload: zero aggregate compute during normalization")
		}
		ratio := target / agg.Compute
		if math.Abs(ratio-1) < 1e-9 {
			return nil
		}
		moved := false
		for i := range classes {
			ni := classes[i].Intensity * ratio
			if ni > maxIntensity {
				ni = maxIntensity
			}
			if ni < 1e-4 {
				ni = 1e-4
			}
			if ni != classes[i].Intensity {
				classes[i].Intensity = ni
				moved = true
			}
		}
		if !moved {
			break // all classes pinned at a bound; accept closest fit
		}
	}
	return nil
}

// normalizeBandwidth rescales class bandwidth shares to match target.
func normalizeBandwidth(classes []kernel.Class, target float64) error {
	if target < 0 {
		return fmt.Errorf("workload: bandwidth target must be non-negative, got %g", target)
	}
	for iter := 0; iter < 12; iter++ {
		var cur, wsum float64
		for _, c := range classes {
			cur += c.Weight * c.BWShare
			wsum += c.Weight
		}
		cur /= wsum
		if cur <= 0 {
			if target == 0 {
				return nil
			}
			for i := range classes {
				classes[i].BWShare = target
			}
			continue
		}
		ratio := target / cur
		if math.Abs(ratio-1) < 1e-9 {
			return nil
		}
		moved := false
		for i := range classes {
			nb := classes[i].BWShare * ratio
			if nb > 0.98 {
				nb = 0.98
			}
			if nb != classes[i].BWShare {
				classes[i].BWShare = nb
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return nil
}
