// Package workload defines the HPC benchmark suite the paper evaluates —
// AthenaPK, BerkeleyGW-Epsilon, Cholla-Gravity, Cholla-MHD, Kripke, LAMMPS
// and WarpX — as calibrated workload descriptors.
//
// The real codes cannot run here (no GPUs, no CUDA); per the reproduction's
// substitution rule each benchmark is replaced by a synthetic task whose
// observable profile matches the paper exactly where the paper reports it:
//
//   - Table I: average theoretical and achieved warp occupancy at 1x, via
//     per-kernel launch configurations fed through the occupancy
//     calculator in package kernel;
//   - Table II: maximum memory footprint, average memory-bandwidth
//     utilization, average SM utilization, average power and energy at the
//     reported problem sizes, via duty cycles and kernel-class demand
//     parameters.
//
// Problem sizes the paper uses but does not profile (e.g. Kripke 2x,
// AthenaPK 8x) are derived by power-law interpolation between the reported
// sizes, matching the paper's observation that "scaling is well-understood
// for a vast majority of HPC codes" (§IV-A).
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gpushare/internal/gpu"
	"gpushare/internal/kernel"
	"gpushare/internal/simtime"
)

// SizeProfile is the calibrated profile of one benchmark at one problem
// size — the simulator's ground truth and the quantity the offline
// profiler (package profile) re-measures.
type SizeProfile struct {
	// Size is the label, e.g. "1x", "4x".
	Size string
	// Factor is the numeric problem-size multiplier (1, 2, 4, 8).
	Factor float64
	// MaxMemMiB is the task's maximum resident device memory.
	MaxMemMiB int64
	// AvgBWPct is average memory-bandwidth utilization in percent
	// (Table II).
	AvgBWPct float64
	// AvgSMPct is average SM utilization in percent (Table II).
	AvgSMPct float64
	// AvgPowerW is average board power during a solo run (Table II).
	AvgPowerW float64
	// EnergyJ is total board energy of a solo run (Table II).
	EnergyJ float64
	// Duty is the fraction of wall time a kernel is resident; the
	// remainder is host-side gaps (AMR regridding, MPI, I/O).
	Duty float64
	// Classes are the task's kernel classes with resolved launch
	// configurations and demands for this size.
	Classes []kernel.Class
	// Derived marks profiles interpolated from neighbouring sizes rather
	// than backed by a Table II row.
	Derived bool
}

// SoloDuration is the wall time of one solo task run at boost clock:
// energy divided by average power, per the paper's measurement definition.
func (p *SizeProfile) SoloDuration() simtime.Duration {
	if p.AvgPowerW <= 0 {
		return 0
	}
	return simtime.FromSeconds(p.EnergyJ / p.AvgPowerW)
}

// ActiveDynPowerW is the dynamic (above-idle) board power while a kernel
// is resident, at full execution rate: calibrated so that
// idle + Duty × ActiveDynPowerW equals AvgPowerW.
func (p *SizeProfile) ActiveDynPowerW(spec gpu.DeviceSpec) float64 {
	if p.Duty <= 0 {
		return 0
	}
	dyn := (p.AvgPowerW - spec.IdlePowerW) / p.Duty
	if dyn < 0 {
		dyn = 0
	}
	return dyn
}

// Workload is one benchmark of the suite across its problem sizes.
type Workload struct {
	// Name is the benchmark name as the paper uses it, e.g. "LAMMPS".
	Name string
	// Description summarizes what the real code computes.
	Description string
	// TheoreticalOccPct / AchievedOccPct are the Table I calibration
	// targets at 1x, in percent.
	TheoreticalOccPct float64
	AchievedOccPct    float64
	// ScalingNote documents the size-scaling law used for derived sizes.
	ScalingNote string

	def   *benchDef
	sizes map[string]*SizeProfile
}

// Sizes returns the labels of table-backed (non-derived) sizes, sorted by
// factor.
func (w *Workload) Sizes() []string {
	out := make([]string, 0, len(w.sizes))
	for s, p := range w.sizes {
		if !p.Derived {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		fi, _ := ParseSizeFactor(out[i])
		fj, _ := ParseSizeFactor(out[j])
		return fi < fj
	})
	return out
}

// Profile returns the profile for a size label, deriving and caching it by
// scaling-law interpolation when the size is not table-backed.
func (w *Workload) Profile(size string) (*SizeProfile, error) {
	if p, ok := w.sizes[size]; ok {
		return p, nil
	}
	p, err := w.def.derive(size)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	w.sizes[size] = p
	return p, nil
}

// ParseSizeFactor converts a size label like "4x" to its numeric factor.
func ParseSizeFactor(size string) (float64, error) {
	s := strings.TrimSuffix(strings.TrimSpace(size), "x")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f <= 0 {
		return 0, fmt.Errorf("workload: invalid size label %q (want e.g. \"4x\")", size)
	}
	return f, nil
}

// Phase is one kernel-class burst within a task's repeating cycle.
type Phase struct {
	// Class is the kernel class executed in this burst.
	Class kernel.Class
	// Demand is the class's resolved device-level demand.
	Demand kernel.Demand
	// ActiveWork is the burst's solo duration per cycle at boost clock
	// and full allocation; contention and throttling dilate it.
	ActiveWork simtime.Duration
	// GapAfter is the host-side gap following the burst; gaps are wall
	// time and are unaffected by GPU contention.
	GapAfter simtime.Duration
	// DynPowerW is the dynamic board power while this burst runs at full
	// rate, apportioned from the task's calibrated active power by the
	// class's compute demand.
	DynPowerW float64
}

// TaskSpec is the engine-facing description of one task run: a repeating
// cycle of kernel bursts and gaps whose aggregate reproduces the calibrated
// profile.
type TaskSpec struct {
	// Workload and Size identify the benchmark task.
	Workload string
	Size     string
	// SoloDuration is the calibrated solo wall time.
	SoloDuration simtime.Duration
	// Duty is the calibrated kernel-resident fraction.
	Duty float64
	// MaxMemMiB is the device memory the task reserves for its lifetime.
	MaxMemMiB int64
	// Phases is one cycle; the task executes Cycles repetitions.
	Phases []Phase
	// Cycles is the number of cycle repetitions per task run.
	Cycles int
	// Agg is the weighted-average demand across classes, the quantity
	// offline profiling exposes to the scheduler.
	Agg kernel.Demand
	// Profile is the calibrated profile this spec was built from.
	Profile *SizeProfile
}

// TotalActiveWork returns the solo active GPU time of the whole task.
func (t *TaskSpec) TotalActiveWork() simtime.Duration {
	var per simtime.Duration
	for _, ph := range t.Phases {
		per += ph.ActiveWork
	}
	return per * simtime.Duration(t.Cycles)
}

// cycleTarget controls TaskSpec cycle granularity: enough cycles that
// co-scheduled tasks interleave smoothly, few enough that event counts stay
// manageable for hour-scale simulated runs.
const (
	cycleTargetPeriod = 500 * simtime.Millisecond
	minCycles         = 8
	maxCycles         = 4000
)

// BuildTaskSpec resolves a workload size into an executable TaskSpec on
// the given device.
func (w *Workload) BuildTaskSpec(size string, spec gpu.DeviceSpec) (*TaskSpec, error) {
	p, err := w.Profile(size)
	if err != nil {
		return nil, err
	}
	if len(p.Classes) == 0 {
		return nil, fmt.Errorf("workload %s/%s: no kernel classes", w.Name, size)
	}
	dur := p.SoloDuration()
	if dur <= 0 {
		return nil, fmt.Errorf("workload %s/%s: non-positive solo duration", w.Name, size)
	}

	cycles := int(dur / cycleTargetPeriod)
	if cycles < minCycles {
		cycles = minCycles
	}
	if cycles > maxCycles {
		cycles = maxCycles
	}
	period := dur / simtime.Duration(cycles)
	activePerCycle := simtime.FromSeconds(period.Seconds() * p.Duty)
	gapPerCycle := period - activePerCycle

	agg, err := kernel.AggregateDemand(spec, p.Classes)
	if err != nil {
		return nil, fmt.Errorf("workload %s/%s: %w", w.Name, size, err)
	}

	var totalW float64
	for _, c := range p.Classes {
		totalW += c.Weight
	}
	dynTotal := p.ActiveDynPowerW(spec)

	phases := make([]Phase, 0, len(p.Classes))
	for _, c := range p.Classes {
		d, err := c.ComputeDemand(spec)
		if err != nil {
			return nil, fmt.Errorf("workload %s/%s: %w", w.Name, size, err)
		}
		frac := c.Weight / totalW
		dyn := dynTotal
		if agg.Compute > 0 {
			// Apportion power by compute demand so compute-heavy
			// phases draw proportionally more, preserving the
			// time-averaged calibration.
			dyn = dynTotal * d.Compute / agg.Compute
		}
		phases = append(phases, Phase{
			Class:      c,
			Demand:     d,
			ActiveWork: simtime.FromSeconds(activePerCycle.Seconds() * frac),
			GapAfter:   simtime.FromSeconds(gapPerCycle.Seconds() * frac),
			DynPowerW:  dyn,
		})
	}

	return &TaskSpec{
		Workload:     w.Name,
		Size:         size,
		SoloDuration: dur,
		Duty:         p.Duty,
		MaxMemMiB:    p.MaxMemMiB,
		Phases:       phases,
		Cycles:       cycles,
		Agg:          agg,
		Profile:      p,
	}, nil
}
