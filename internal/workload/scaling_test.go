package workload

import (
	"testing"
)

func TestDerivedSizesInterpolate(t *testing.T) {
	w := MustGet("Kripke")
	p1, _ := w.Profile("1x")
	p2, err := w.Profile("2x")
	if err != nil {
		t.Fatal(err)
	}
	p4, _ := w.Profile("4x")
	if !p2.Derived {
		t.Fatal("2x must be marked derived")
	}
	// Interpolated quantities must fall between the calibrated
	// endpoints.
	checks := []struct {
		name      string
		v1, v, v4 float64
	}{
		{"mem", float64(p1.MaxMemMiB), float64(p2.MaxMemMiB), float64(p4.MaxMemMiB)},
		{"sm", p1.AvgSMPct, p2.AvgSMPct, p4.AvgSMPct},
		{"bw", p1.AvgBWPct, p2.AvgBWPct, p4.AvgBWPct},
		{"power", p1.AvgPowerW, p2.AvgPowerW, p4.AvgPowerW},
		{"duty", p1.Duty, p2.Duty, p4.Duty},
		{"duration", p1.SoloDuration().Seconds(), p2.SoloDuration().Seconds(), p4.SoloDuration().Seconds()},
	}
	for _, c := range checks {
		lo, hi := c.v1, c.v4
		if lo > hi {
			lo, hi = hi, lo
		}
		if c.v < lo || c.v > hi {
			t.Errorf("Kripke 2x %s = %v outside [%v, %v]", c.name, c.v, lo, hi)
		}
	}
}

func TestDerivedExtrapolation(t *testing.T) {
	w := MustGet("AthenaPK")
	p4, _ := w.Profile("4x")
	p8, err := w.Profile("8x")
	if err != nil {
		t.Fatal(err)
	}
	if !p8.Derived {
		t.Fatal("8x must be derived")
	}
	if p8.SoloDuration() <= p4.SoloDuration() {
		t.Error("8x must run longer than 4x")
	}
	if p8.MaxMemMiB <= p4.MaxMemMiB {
		t.Error("8x must use more memory than 4x")
	}
	if p8.AvgSMPct <= p4.AvgSMPct {
		t.Error("8x must utilize more than 4x")
	}
	// Physical ceilings.
	if p8.AvgSMPct > maxSMPct || p8.AvgBWPct > maxBWPct ||
		p8.Duty > maxDuty || p8.AvgPowerW > maxPowerW {
		t.Errorf("8x exceeds ceilings: SM %v BW %v duty %v P %v",
			p8.AvgSMPct, p8.AvgBWPct, p8.Duty, p8.AvgPowerW)
	}
	// SM utilization can never exceed the duty cycle.
	if p8.AvgSMPct > p8.Duty*100+1e-9 {
		t.Errorf("8x SM %v%% exceeds duty %v", p8.AvgSMPct, p8.Duty)
	}
}

func TestDerivedProfileCached(t *testing.T) {
	w := MustGet("Cholla-Gravity")
	a, err := w.Profile("2x")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := w.Profile("2x")
	if a != b {
		t.Fatal("derived profiles must be cached")
	}
}

func TestEpsilonSinglePointScaling(t *testing.T) {
	// BerkeleyGW-Epsilon has one calibrated size; derivation must use
	// its documented O(N^4) exponent.
	w := MustGet("BerkeleyGW-Epsilon")
	p1, _ := w.Profile("1x")
	p2, err := w.Profile("2x")
	if err != nil {
		t.Fatal(err)
	}
	ratio := p2.SoloDuration().Seconds() / p1.SoloDuration().Seconds()
	// Power is also scaled slightly, so the duration ratio is close to
	// but not exactly 2^4 = 16.
	if ratio < 14 || ratio > 18 {
		t.Fatalf("Epsilon 2x/1x duration ratio = %v, want ≈16 (O(N^4))", ratio)
	}
	if p2.MaxMemMiB <= p1.MaxMemMiB {
		t.Fatal("Epsilon 2x memory must exceed 1x")
	}
}

func TestWarpXMemoryConstantAcrossSizes(t *testing.T) {
	// Table II reports the same 61453 MiB at 1x and 4x (pre-allocated
	// particle buffers); interpolation must preserve that.
	w := MustGet("WarpX")
	p2, err := w.Profile("2x")
	if err != nil {
		t.Fatal(err)
	}
	if p2.MaxMemMiB != 61453 {
		t.Fatalf("WarpX 2x mem = %d, want 61453", p2.MaxMemMiB)
	}
}

func TestDerivedSizesUsedByCombos(t *testing.T) {
	// The Table III combinations need Athena 8x, WarpX 2x, Kripke 2x.
	for _, c := range []struct{ bench, size string }{
		{"AthenaPK", "8x"}, {"WarpX", "2x"}, {"Kripke", "2x"},
	} {
		w := MustGet(c.bench)
		if _, err := w.Profile(c.size); err != nil {
			t.Errorf("%s/%s not derivable: %v", c.bench, c.size, err)
		}
	}
}

func TestBracket(t *testing.T) {
	sorted := []float64{1, 4, 8}
	cases := []struct{ f, lo, hi float64 }{
		{2, 1, 4},
		{4, 1, 4}, // exact endpoint: first enclosing interval wins
		{6, 4, 8},
		{0.5, 1, 4},
		{10, 4, 8},
	}
	for _, c := range cases {
		lo, hi := bracket(sorted, c.f)
		if lo != c.lo || hi != c.hi {
			t.Errorf("bracket(%v) = %v,%v want %v,%v", c.f, lo, hi, c.lo, c.hi)
		}
	}
}

func TestPowerLaw(t *testing.T) {
	// Through (1,10) and (4,160): v = 10·f^2.
	if got := powerLaw(10, 160, 1, 4, 2); relErr(got, 40) > 1e-9 {
		t.Fatalf("powerLaw(2) = %v, want 40", got)
	}
	// Zero endpoint falls back to linear.
	if got := powerLaw(0, 10, 1, 4, 2.5); relErr(got, 5) > 1e-9 {
		t.Fatalf("powerLaw linear fallback = %v, want 5", got)
	}
	// Degenerate interval.
	if got := powerLaw(7, 9, 3, 3, 5); got != 7 {
		t.Fatalf("powerLaw degenerate = %v, want 7", got)
	}
}
