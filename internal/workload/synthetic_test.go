package workload

import (
	"testing"

	"gpushare/internal/kernel"
)

func TestNewSynthetic(t *testing.T) {
	w, err := NewSynthetic(SyntheticParams{
		Name:      "test-synth",
		DurationS: 10,
		MaxMemMiB: 1024,
		AvgSMPct:  40,
		AvgBWPct:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Profile("1x")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(p.SoloDuration().Seconds(), 10) > 1e-6 {
		t.Fatalf("duration = %v", p.SoloDuration().Seconds())
	}
	spec := a100x()
	agg, err := kernel.AggregateDemand(spec, p.Classes)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(agg.Compute*p.Duty*100, 40) > 0.02 {
		t.Fatalf("synthetic SM util = %v, want 40", agg.Compute*p.Duty*100)
	}
	task, err := w.BuildTaskSpec("1x", spec)
	if err != nil {
		t.Fatal(err)
	}
	if task.MaxMemMiB != 1024 {
		t.Fatalf("task mem = %d", task.MaxMemMiB)
	}
	// Derived size works through the generic exponents.
	if _, err := w.Profile("2x"); err != nil {
		t.Fatalf("synthetic 2x: %v", err)
	}
}

func TestNewSyntheticDefaultsPower(t *testing.T) {
	w, err := NewSynthetic(SyntheticParams{
		Name: "test-synth-power", DurationS: 5, MaxMemMiB: 100, AvgSMPct: 50, AvgBWPct: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := w.Profile("1x")
	want := a100x().IdlePowerW + 2.1*50 + 0.6*10
	if relErr(p.AvgPowerW, want) > 1e-9 {
		t.Fatalf("default power = %v, want %v", p.AvgPowerW, want)
	}
}

func TestNewSyntheticValidation(t *testing.T) {
	base := SyntheticParams{Name: "v", DurationS: 1, MaxMemMiB: 10, AvgSMPct: 50}
	cases := []func(*SyntheticParams){
		func(p *SyntheticParams) { p.Name = "" },
		func(p *SyntheticParams) { p.Name = "LAMMPS" }, // suite collision
		func(p *SyntheticParams) { p.DurationS = 0 },
		func(p *SyntheticParams) { p.AvgSMPct = 0 },
		func(p *SyntheticParams) { p.AvgSMPct = 100 },
		func(p *SyntheticParams) { p.AvgBWPct = 101 },
		func(p *SyntheticParams) { p.MaxMemMiB = 0 },
		func(p *SyntheticParams) { p.Duty = 0.2 },     // duty < SM%
		func(p *SyntheticParams) { p.AvgPowerW = 10 }, // below idle
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if _, err := NewSynthetic(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestFitLaunchConfig(t *testing.T) {
	spec := a100x()
	for _, target := range []float64{0.125, 0.25, 0.375, 0.5, 0.75, 1.0} {
		cfg, occ, err := FitLaunchConfig(spec, target)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if relErr(occ.Theoretical, target) > 0.05 {
			t.Errorf("target %v: fit %v (cfg %+v)", target, occ.Theoretical, cfg)
		}
	}
	if _, _, err := FitLaunchConfig(spec, 0); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, _, err := FitLaunchConfig(spec, 1.5); err == nil {
		t.Fatal("target > 1 accepted")
	}
}

func TestFitLaunchConfigDeterministic(t *testing.T) {
	spec := a100x()
	a, _, _ := FitLaunchConfig(spec, 0.4)
	b, _, _ := FitLaunchConfig(spec, 0.4)
	if a != b {
		t.Fatalf("FitLaunchConfig not deterministic: %+v vs %+v", a, b)
	}
}
