package workload

import (
	"fmt"
	"sort"
)

// DNN workload presets. The paper's motivation covers "most scientific
// and HPC-scale DNN applications" (§Abstract) and contrasts its
// task-level approach with kernel-level DNN schedulers like Orion (§II-B,
// §III); these presets let users model such workloads without the HPC
// suite's calibration data. Parameters follow the public utilization
// characteristics of the respective workload classes on A100-class parts.
var dnnPresets = map[string]SyntheticParams{
	// Training: long compute-dense steps, high occupancy, steady power.
	"dnn-train-large": {
		Name:              "dnn-train-large",
		DurationS:         240,
		MaxMemMiB:         38000,
		AvgSMPct:          92,
		AvgBWPct:          35,
		AvgPowerW:         285,
		Duty:              0.97,
		TheoreticalOccPct: 50,
		FillFraction:      0.95,
		Balance:           0.95,
	},
	// Fine-tuning: moderate batches, some input-pipeline gaps.
	"dnn-train-small": {
		Name:              "dnn-train-small",
		DurationS:         90,
		MaxMemMiB:         12000,
		AvgSMPct:          55,
		AvgBWPct:          18,
		AvgPowerW:         190,
		Duty:              0.80,
		TheoreticalOccPct: 50,
		FillFraction:      0.70,
		Balance:           0.92,
	},
	// Batch inference: short kernels, request gaps, low utilization —
	// the class of workload MPS sharing benefits most (§III: "on the
	// client side, applications are often optimized for minimal latency
	// rather than GPU utilization").
	"dnn-infer-batch": {
		Name:              "dnn-infer-batch",
		DurationS:         30,
		MaxMemMiB:         6000,
		AvgSMPct:          22,
		AvgBWPct:          8,
		AvgPowerW:         120,
		Duty:              0.45,
		TheoreticalOccPct: 37.5,
		FillFraction:      0.40,
		Balance:           0.85,
	},
	// Interactive inference: sparse requests, mostly idle.
	"dnn-infer-online": {
		Name:              "dnn-infer-online",
		DurationS:         60,
		MaxMemMiB:         4000,
		AvgSMPct:          8,
		AvgBWPct:          3,
		AvgPowerW:         85,
		Duty:              0.20,
		TheoreticalOccPct: 37.5,
		FillFraction:      0.25,
		Balance:           0.80,
	},
}

// DNNPresetNames lists the available DNN presets, sorted.
func DNNPresetNames() []string {
	names := make([]string, 0, len(dnnPresets))
	for n := range dnnPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewDNNWorkload builds one of the DNN preset workloads. Unlike suite
// benchmarks, preset instances are not cached: each call returns a fresh
// workload (so callers may mutate derived profiles freely).
func NewDNNWorkload(preset string) (*Workload, error) {
	p, ok := dnnPresets[preset]
	if !ok {
		return nil, fmt.Errorf("workload: unknown DNN preset %q (known: %v)",
			preset, DNNPresetNames())
	}
	return NewSynthetic(p)
}
