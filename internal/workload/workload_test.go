package workload

import (
	"math"
	"testing"

	"gpushare/internal/gpu"
	"gpushare/internal/kernel"
)

func a100x() gpu.DeviceSpec { return gpu.MustLookup("A100X") }

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// paperTable1 pins Table I of the paper (1x problem size).
var paperTable1 = map[string]struct{ achieved, theoretical float64 }{
	"AthenaPK":           {13.3, 51.32},
	"BerkeleyGW-Epsilon": {23.97, 41.67},
	"Cholla-Gravity":     {31.45, 37.5},
	"Kripke":             {32.61, 43.63},
	"Cholla-MHD":         {17.72, 19.32},
	"LAMMPS":             {32.7, 35.0},
	"WarpX":              {24.81, 92.55},
}

func TestTableICalibration(t *testing.T) {
	spec := a100x()
	for name, want := range paperTable1 {
		w := MustGet(name)
		p, err := w.Profile("1x")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		agg, err := kernel.AggregateDemand(spec, p.Classes)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e := relErr(agg.TheoreticalOcc*100, want.theoretical); e > 0.01 {
			t.Errorf("%s theoretical occupancy %.2f%% vs paper %.2f%% (err %.1f%%)",
				name, agg.TheoreticalOcc*100, want.theoretical, e*100)
		}
		if e := relErr(agg.AchievedOcc*100, want.achieved); e > 0.01 {
			t.Errorf("%s achieved occupancy %.2f%% vs paper %.2f%% (err %.1f%%)",
				name, agg.AchievedOcc*100, want.achieved, e*100)
		}
	}
}

// paperTable2 pins Table II of the paper.
var paperTable2 = map[string]map[string]struct {
	memMiB  int64
	bwPct   float64
	smPct   float64
	powerW  float64
	energyJ float64
}{
	"AthenaPK": {
		"1x": {563, 0.01, 7.54, 90.09, 234.24},
		"4x": {2093, 1.78, 30.29, 88.86, 5407.36},
	},
	"BerkeleyGW-Epsilon": {
		"1x": {30157, 2.63, 9.04, 94.41, 319448.05},
	},
	"Cholla-Gravity": {
		"1x": {615, 0.51, 13.6, 88.43, 309.51},
		"4x": {5063, 4.45, 45.16, 138.75, 20285.8},
	},
	"Kripke": {
		"1x": {621, 0.27, 26.56, 123.3, 382.24},
		"4x": {5481, 3.78, 63.21, 148.16, 12467.54},
	},
	"Cholla-MHD": {
		"1x": {2175, 31.01, 72.58, 234.24, 9849.99},
		"4x": {6753, 41.29, 88.58, 261.64, 127249.21},
	},
	"LAMMPS": {
		"1x": {2321, 4.24, 63.0, 196.79, 580.54},
		"4x": {4977, 7.13, 96.28, 258.38, 29390.48},
	},
	"WarpX": {
		"1x": {61453, 0.04, 33.29, 117.14, 2588.8},
		"4x": {61453, 19.75, 77.28, 244.32, 85756.49},
	},
}

func TestTableIICalibration(t *testing.T) {
	spec := a100x()
	for name, sizes := range paperTable2 {
		w := MustGet(name)
		for size, want := range sizes {
			p, err := w.Profile(size)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, size, err)
			}
			if p.MaxMemMiB != want.memMiB {
				t.Errorf("%s/%s mem %d vs paper %d", name, size, p.MaxMemMiB, want.memMiB)
			}
			if p.AvgPowerW != want.powerW {
				t.Errorf("%s/%s power %v vs paper %v", name, size, p.AvgPowerW, want.powerW)
			}
			if p.EnergyJ != want.energyJ {
				t.Errorf("%s/%s energy %v vs paper %v", name, size, p.EnergyJ, want.energyJ)
			}
			// Demand aggregates must reproduce the table's utilization
			// columns through the class normalization (2% tolerance for
			// intensity-clamp residue).
			agg, err := kernel.AggregateDemand(spec, p.Classes)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, size, err)
			}
			if e := relErr(agg.Compute*p.Duty*100, want.smPct); e > 0.02 {
				t.Errorf("%s/%s SM util %.2f%% vs paper %.2f%%",
					name, size, agg.Compute*p.Duty*100, want.smPct)
			}
			if want.bwPct > 0.1 {
				if e := relErr(agg.Bandwidth*p.Duty*100, want.bwPct); e > 0.02 {
					t.Errorf("%s/%s BW util %.2f%% vs paper %.2f%%",
						name, size, agg.Bandwidth*p.Duty*100, want.bwPct)
				}
			}
		}
	}
}

func TestSoloDurationMatchesEnergyOverPower(t *testing.T) {
	for name, sizes := range paperTable2 {
		w := MustGet(name)
		for size, want := range sizes {
			p, _ := w.Profile(size)
			wantDur := want.energyJ / want.powerW
			if e := relErr(p.SoloDuration().Seconds(), wantDur); e > 1e-6 {
				t.Errorf("%s/%s solo duration %v vs %v", name, size, p.SoloDuration().Seconds(), wantDur)
			}
		}
	}
}

func TestActiveDynPowerConsistency(t *testing.T) {
	// idle + duty × activeDyn must reproduce the table's average power.
	spec := a100x()
	for _, name := range Names() {
		w := MustGet(name)
		for _, size := range w.Sizes() {
			p, _ := w.Profile(size)
			reconstructed := spec.IdlePowerW + p.Duty*p.ActiveDynPowerW(spec)
			if e := relErr(reconstructed, p.AvgPowerW); e > 1e-9 {
				t.Errorf("%s/%s power reconstruction %v vs %v", name, size, reconstructed, p.AvgPowerW)
			}
		}
	}
}

func TestAliases(t *testing.T) {
	aliases := map[string]string{
		"Athena":     "AthenaPK",
		"Epsilon":    "BerkeleyGW-Epsilon",
		"BerkeleyGW": "BerkeleyGW-Epsilon",
		"Gravity":    "Cholla-Gravity",
		"MHD":        "Cholla-MHD",
	}
	for alias, canonical := range aliases {
		w, err := Get(alias)
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		if w.Name != canonical {
			t.Errorf("alias %q resolved to %q, want %q", alias, w.Name, canonical)
		}
	}
	if _, err := Get("NotABenchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestGetReturnsSameInstance(t *testing.T) {
	a := MustGet("Kripke")
	b := MustGet("Kripke")
	if a != b {
		t.Fatal("Get must cache workload instances")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("suite has %d benchmarks, want 7", len(names))
	}
	if names[0] != "AthenaPK" || names[6] != "WarpX" {
		t.Fatalf("unexpected order: %v", names)
	}
}

func TestParseSizeFactor(t *testing.T) {
	good := map[string]float64{"1x": 1, "2x": 2, "4x": 4, "8x": 8, "1.5x": 1.5, " 4x ": 4}
	for in, want := range good {
		got, err := ParseSizeFactor(in)
		if err != nil || got != want {
			t.Errorf("ParseSizeFactor(%q) = %v, %v", in, got, err)
		}
	}
	for _, in := range []string{"", "x", "0x", "-2x", "abc"} {
		if _, err := ParseSizeFactor(in); err == nil {
			t.Errorf("ParseSizeFactor(%q) accepted", in)
		}
	}
}

func TestBuildTaskSpec(t *testing.T) {
	spec := a100x()
	w := MustGet("LAMMPS")
	task, err := w.BuildTaskSpec("4x", spec)
	if err != nil {
		t.Fatal(err)
	}
	if task.Workload != "LAMMPS" || task.Size != "4x" {
		t.Fatalf("identity: %s/%s", task.Workload, task.Size)
	}
	if task.Cycles < minCycles || task.Cycles > maxCycles {
		t.Fatalf("cycles = %d out of [%d,%d]", task.Cycles, minCycles, maxCycles)
	}
	// Sum of phase durations × cycles must equal the solo duration.
	var perCycle float64
	for _, ph := range task.Phases {
		perCycle += ph.ActiveWork.Seconds() + ph.GapAfter.Seconds()
	}
	total := perCycle * float64(task.Cycles)
	if e := relErr(total, task.SoloDuration.Seconds()); e > 0.001 {
		t.Fatalf("phase sum %v vs solo duration %v", total, task.SoloDuration.Seconds())
	}
	// Active share must equal the duty cycle.
	var activePerCycle float64
	for _, ph := range task.Phases {
		activePerCycle += ph.ActiveWork.Seconds()
	}
	if e := relErr(activePerCycle/perCycle, task.Duty); e > 0.001 {
		t.Fatalf("active share %v vs duty %v", activePerCycle/perCycle, task.Duty)
	}
}

func TestTaskSpecPhasePowerAveragesToCalibration(t *testing.T) {
	// The duty-weighted phase power must reconstruct Table II's average:
	// Σ_phases dynPower×activeTime / totalTime + idle = avg power.
	spec := a100x()
	for _, name := range Names() {
		w := MustGet(name)
		for _, size := range w.Sizes() {
			task, err := w.BuildTaskSpec(size, spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, size, err)
			}
			var energyPerCycle, timePerCycle float64
			for _, ph := range task.Phases {
				energyPerCycle += ph.DynPowerW * ph.ActiveWork.Seconds()
				timePerCycle += ph.ActiveWork.Seconds() + ph.GapAfter.Seconds()
			}
			avg := spec.IdlePowerW + energyPerCycle/timePerCycle
			if e := relErr(avg, task.Profile.AvgPowerW); e > 0.02 {
				t.Errorf("%s/%s reconstructed power %v vs calibrated %v",
					name, size, avg, task.Profile.AvgPowerW)
			}
		}
	}
}

func TestTotalActiveWork(t *testing.T) {
	spec := a100x()
	task, _ := MustGet("Kripke").BuildTaskSpec("1x", spec)
	want := task.SoloDuration.Seconds() * task.Duty
	if e := relErr(task.TotalActiveWork().Seconds(), want); e > 0.001 {
		t.Fatalf("total active work %v vs duty×duration %v",
			task.TotalActiveWork().Seconds(), want)
	}
}

func TestBuildTaskSpecUnknownSize(t *testing.T) {
	spec := a100x()
	if _, err := MustGet("Kripke").BuildTaskSpec("bogus", spec); err == nil {
		t.Fatal("bogus size accepted")
	}
}
