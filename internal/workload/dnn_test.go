package workload

import (
	"testing"
)

func TestDNNPresets(t *testing.T) {
	names := DNNPresetNames()
	if len(names) != 4 {
		t.Fatalf("presets = %v", names)
	}
	spec := a100x()
	for _, name := range names {
		w, err := NewDNNWorkload(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		task, err := w.BuildTaskSpec("1x", spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if task.SoloDuration <= 0 || task.MaxMemMiB <= 0 {
			t.Fatalf("%s: degenerate task %+v", name, task)
		}
	}
	if _, err := NewDNNWorkload("dnn-magic"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestDNNInferenceIsMPSFriendly(t *testing.T) {
	// The inference presets are the low-utilization class the paper's
	// motivation targets: two of them must pass the interference rules
	// (combined SM well under 100%) while two large trainers must not.
	infer, err := NewDNNWorkload("dnn-infer-batch")
	if err != nil {
		t.Fatal(err)
	}
	train, err := NewDNNWorkload("dnn-train-large")
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := infer.Profile("1x")
	pt, _ := train.Profile("1x")
	if pi.AvgSMPct*2 > 100 {
		t.Fatalf("inference pair should fit: 2×%.1f%%", pi.AvgSMPct)
	}
	if pt.AvgSMPct*2 < 100 {
		t.Fatalf("training pair should violate the SM rule: 2×%.1f%%", pt.AvgSMPct)
	}
}

func TestDNNWorkloadsFreshInstances(t *testing.T) {
	a, _ := NewDNNWorkload("dnn-infer-online")
	b, _ := NewDNNWorkload("dnn-infer-online")
	if a == b {
		t.Fatal("presets must not be cached (mutable derived profiles)")
	}
}
