package workload

import (
	"fmt"
	"math"

	"gpushare/internal/gpu"
	"gpushare/internal/kernel"
)

// SyntheticParams describes a synthetic workload for tests, ablations and
// users modelling their own codes. All utilization quantities follow
// Table II semantics (time-averaged, percent of device).
type SyntheticParams struct {
	// Name labels the workload; it must not collide with suite names.
	Name string
	// DurationS is the solo run time in seconds.
	DurationS float64
	// MaxMemMiB is the device-memory footprint.
	MaxMemMiB int64
	// AvgSMPct is the average SM utilization in percent (0, 100).
	AvgSMPct float64
	// AvgBWPct is the average memory-bandwidth utilization in percent.
	AvgBWPct float64
	// AvgPowerW is the average solo board power; if zero, it is derived
	// from utilization via a generic linear model.
	AvgPowerW float64
	// Duty is the kernel-resident wall-time fraction; if zero it
	// defaults to min(0.98, AvgSMPct/100 + 0.25).
	Duty float64
	// TheoreticalOccPct is the target theoretical warp occupancy; if
	// zero, 50% is used.
	TheoreticalOccPct float64
	// FillFraction is the warp-slot fill (Figure 1 saturation partition);
	// if zero, 0.9 is used.
	FillFraction float64
	// Balance is the achieved-occupancy load-balance factor; if zero,
	// 0.9 is used.
	Balance float64
}

// NewSynthetic builds a single-size ("1x") workload from params on the
// calibration device. The generic power model used when AvgPowerW is zero
// is idle + 2.1·SM% + 0.6·BW% watts, a least-squares fit over Table II.
func NewSynthetic(params SyntheticParams) (*Workload, error) {
	p := params
	if p.Name == "" {
		return nil, fmt.Errorf("workload: synthetic needs a name")
	}
	if _, taken := byName[p.Name]; taken {
		return nil, fmt.Errorf("workload: synthetic name %q collides with suite benchmark", p.Name)
	}
	if p.DurationS <= 0 {
		return nil, fmt.Errorf("workload: synthetic %s: duration must be positive", p.Name)
	}
	if p.AvgSMPct <= 0 || p.AvgSMPct >= 100 {
		return nil, fmt.Errorf("workload: synthetic %s: AvgSMPct must be in (0,100), got %g", p.Name, p.AvgSMPct)
	}
	if p.AvgBWPct < 0 || p.AvgBWPct > 100 {
		return nil, fmt.Errorf("workload: synthetic %s: AvgBWPct must be in [0,100], got %g", p.Name, p.AvgBWPct)
	}
	if p.MaxMemMiB <= 0 {
		return nil, fmt.Errorf("workload: synthetic %s: MaxMemMiB must be positive", p.Name)
	}
	spec := calibrationDevice
	if p.Duty == 0 {
		p.Duty = math.Min(0.98, p.AvgSMPct/100+0.25)
	}
	if p.Duty <= 0 || p.Duty > 1 || p.Duty*100 < p.AvgSMPct {
		return nil, fmt.Errorf("workload: synthetic %s: duty %g inconsistent with SM%% %g",
			p.Name, p.Duty, p.AvgSMPct)
	}
	if p.AvgPowerW == 0 {
		p.AvgPowerW = spec.IdlePowerW + 2.1*p.AvgSMPct + 0.6*p.AvgBWPct
	}
	if p.AvgPowerW < spec.IdlePowerW {
		return nil, fmt.Errorf("workload: synthetic %s: power %.1f W below idle %.1f W",
			p.Name, p.AvgPowerW, spec.IdlePowerW)
	}
	if p.TheoreticalOccPct == 0 {
		p.TheoreticalOccPct = 50
	}
	if p.FillFraction == 0 {
		p.FillFraction = 0.9
	}
	if p.Balance == 0 {
		p.Balance = 0.9
	}

	cfg, occ, err := FitLaunchConfig(spec, p.TheoreticalOccPct/100)
	if err != nil {
		return nil, fmt.Errorf("workload: synthetic %s: %w", p.Name, err)
	}
	cfg.GridBlocks = occ.GridForFill(spec, p.FillFraction)

	d := &benchDef{
		name:        p.Name,
		desc:        "synthetic workload",
		theoOccPct:  occ.Theoretical * 100,
		achOccPct:   occ.Theoretical * 100 * math.Min(p.FillFraction, 1) * p.Balance,
		scalingNote: "synthetic: runtime ∝ factor^2, memory ∝ factor",
		durExp:      2,
		memExp:      1,
		classes: []classTmpl{{
			name:    "synthetic_kernel",
			weight:  1,
			threads: cfg.ThreadsPerBlock,
			regs:    cfg.RegistersPerThread,
			smem:    cfg.SharedMemPerBlock,
			fill1x:  p.FillFraction,
			balance: p.Balance,
			iota1x:  math.Min(maxIntensity, p.AvgSMPct/100/p.Duty),
			bw1x:    p.AvgBWPct / 100 / p.Duty,
		}},
		cal: map[float64]sizeCal{
			1: {
				maxMemMiB: p.MaxMemMiB,
				bwPct:     p.AvgBWPct,
				smPct:     p.AvgSMPct,
				powerW:    p.AvgPowerW,
				energyJ:   p.AvgPowerW * p.DurationS,
				duty:      p.Duty,
			},
		},
	}
	w := &Workload{
		Name:              d.name,
		Description:       d.desc,
		TheoreticalOccPct: d.theoOccPct,
		AchievedOccPct:    d.achOccPct,
		ScalingNote:       d.scalingNote,
		def:               d,
		sizes:             make(map[string]*SizeProfile),
	}
	prof, err := d.buildProfile("1x", 1, d.cal[1], false)
	if err != nil {
		return nil, err
	}
	w.sizes["1x"] = prof
	return w, nil
}

// FitLaunchConfig searches for a launch configuration whose theoretical
// occupancy is as close as possible to target (a fraction in (0, 1]). The
// search is deterministic: block sizes {64, 128, 256, 512} crossed with
// register counts in steps of 8, smallest block size winning ties.
func FitLaunchConfig(spec gpu.DeviceSpec, target float64) (kernel.LaunchConfig, kernel.Occupancy, error) {
	if target <= 0 || target > 1 {
		return kernel.LaunchConfig{}, kernel.Occupancy{}, fmt.Errorf(
			"workload: occupancy target must be in (0,1], got %g", target)
	}
	best := kernel.LaunchConfig{}
	var bestOcc kernel.Occupancy
	bestErr := math.Inf(1)
	for _, threads := range []int{64, 128, 256, 512} {
		for regs := 32; regs <= 248; regs += 8 {
			cfg := kernel.LaunchConfig{
				ThreadsPerBlock:    threads,
				RegistersPerThread: regs,
				GridBlocks:         spec.SMCount, // placeholder
			}
			occ, err := kernel.ComputeOccupancy(spec, cfg)
			if err != nil {
				continue
			}
			e := math.Abs(occ.Theoretical - target)
			if e < bestErr-1e-12 {
				bestErr = e
				best = cfg
				bestOcc = occ
			}
		}
	}
	if math.IsInf(bestErr, 1) {
		return kernel.LaunchConfig{}, kernel.Occupancy{}, fmt.Errorf(
			"workload: no launch configuration found for occupancy %.2f", target)
	}
	return best, bestOcc, nil
}
