package workload

import (
	"fmt"
	"math"
	"sort"
)

// Size derivation for problem sizes the paper schedules but does not
// profile (AthenaPK 8x in combination 2, Kripke 2x in combination 6, WarpX
// 2x in combination 3). The paper's approach explicitly sanctions this:
// "because scaling is well-understood for a vast majority of HPC codes, it
// is possible to infer the utilization characteristics of larger problem
// sizes from profiling information gathered with smaller workloads"
// (§IV-A).
//
// Each scalar profile quantity is modeled as a power law v(f) = v0·f^α
// with α fitted from the two nearest table-backed sizes (or taken from the
// benchmark's documented exponents when only one size is calibrated, as
// for BerkeleyGW-Epsilon). Saturating quantities (SM%, BW%, duty, power)
// are clamped to physical ceilings.

// Physical ceilings for extrapolated quantities.
const (
	maxSMPct  = 97.0  // device never reports sustained 100%
	maxBWPct  = 95.0  // HBM efficiency ceiling
	maxDuty   = 0.99  // some host activity always remains
	maxPowerW = 295.0 // solo runs stay below the 300 W cap (Table II does)
)

// derive builds a SizeProfile for a non-calibrated size label.
func (d *benchDef) derive(label string) (*SizeProfile, error) {
	f, err := ParseSizeFactor(label)
	if err != nil {
		return nil, err
	}
	factors := make([]float64, 0, len(d.cal))
	for k := range d.cal {
		factors = append(factors, k)
	}
	sort.Float64s(factors)

	var cal sizeCal
	switch len(factors) {
	case 0:
		return nil, fmt.Errorf("no calibrated sizes to derive %q from", label)
	case 1:
		base := d.cal[factors[0]]
		rel := f / factors[0]
		durExp := d.durExp
		if durExp == 0 {
			durExp = 2 // generic 3D stencil default
		}
		memExp := d.memExp
		if memExp == 0 {
			memExp = 1
		}
		// Utilization and power grow sub-linearly from a single point:
		// square-root growth is the conservative default, clamped below.
		cal = sizeCal{
			maxMemMiB: int64(float64(base.maxMemMiB)*math.Pow(rel, memExp) + 0.5),
			bwPct:     math.Min(base.bwPct*math.Sqrt(rel), maxBWPct),
			smPct:     math.Min(base.smPct*math.Sqrt(rel), maxSMPct),
			powerW:    math.Min(base.powerW*math.Pow(rel, 0.25), maxPowerW),
			duty:      math.Min(base.duty*math.Pow(rel, 0.25), maxDuty),
		}
		dur := base.duration() * math.Pow(rel, durExp)
		cal.energyJ = dur * cal.powerW
	default:
		// Fit each quantity between the two bracketing (or nearest two)
		// calibrated factors.
		lo, hi := bracket(factors, f)
		a, b := d.cal[lo], d.cal[hi]
		cal = sizeCal{
			maxMemMiB: int64(powerLaw(float64(a.maxMemMiB), float64(b.maxMemMiB), lo, hi, f) + 0.5),
			bwPct:     math.Min(powerLaw(a.bwPct, b.bwPct, lo, hi, f), maxBWPct),
			smPct:     math.Min(powerLaw(a.smPct, b.smPct, lo, hi, f), maxSMPct),
			powerW:    math.Min(powerLaw(a.powerW, b.powerW, lo, hi, f), maxPowerW),
			duty:      math.Min(powerLaw(a.duty, b.duty, lo, hi, f), maxDuty),
		}
		dur := powerLaw(a.duration(), b.duration(), lo, hi, f)
		cal.energyJ = dur * cal.powerW
	}
	if cal.duty <= 0 {
		cal.duty = 0.05
	}
	// SM utilization can never exceed the duty cycle (a kernel must be
	// resident to use SMs); keep the pair consistent after clamping.
	if cal.smPct > cal.duty*100 {
		cal.duty = math.Min(maxDuty, cal.smPct/100/0.95)
	}
	return d.buildProfile(label, f, cal, true)
}

// bracket returns the two calibrated factors to interpolate between: the
// tightest pair enclosing f, or the nearest two for extrapolation.
func bracket(sorted []float64, f float64) (lo, hi float64) {
	lo, hi = sorted[0], sorted[len(sorted)-1]
	for i := 0; i+1 < len(sorted); i++ {
		if f >= sorted[i] && f <= sorted[i+1] {
			return sorted[i], sorted[i+1]
		}
	}
	if f < sorted[0] {
		return sorted[0], sorted[1]
	}
	return sorted[len(sorted)-2], sorted[len(sorted)-1]
}

// powerLaw evaluates the power law through (f1,v1) and (f2,v2) at f.
// Degenerate inputs (zero or equal values) fall back gracefully.
func powerLaw(v1, v2, f1, f2, f float64) float64 {
	if v1 <= 0 || v2 <= 0 {
		// Linear interpolation handles zero endpoints (e.g. a 0.01% BW
		// reading) without log blowups.
		t := (f - f1) / (f2 - f1)
		v := v1 + t*(v2-v1)
		if v < 0 {
			v = 0
		}
		return v
	}
	if f1 == f2 {
		return v1
	}
	alpha := math.Log(v2/v1) / math.Log(f2/f1)
	return v1 * math.Pow(f/f1, alpha)
}
