package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	// Forking must not disturb the parent stream.
	p1 := New(7)
	p1.Fork(1)
	p1.Fork(2)
	if parent.Uint64() != p1.Uint64() {
		t.Fatal("Fork mutated parent state")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling forks produced identical first values")
	}
	// Same label from same state → same stream.
	c1b := New(7).Fork(1)
	c1c := New(7).Fork(1)
	for i := 0; i < 100; i++ {
		if c1b.Uint64() != c1c.Uint64() {
			t.Fatal("same-label forks diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(42)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnRangeProperty(t *testing.T) {
	s := New(9)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestJitter(t *testing.T) {
	s := New(5)
	if got := s.Jitter(0); got != 1 {
		t.Fatalf("Jitter(0) = %v, want 1", got)
	}
	if got := s.Jitter(-1); got != 1 {
		t.Fatalf("Jitter(-1) = %v, want 1", got)
	}
	for i := 0; i < 10000; i++ {
		v := s.Jitter(0.1)
		if v < 0.9 || v > 1.1 {
			t.Fatalf("Jitter(0.1) out of range: %v", v)
		}
	}
	// Excessive amplitude is clamped to keep factors positive.
	for i := 0; i < 1000; i++ {
		if v := s.Jitter(5); v <= 0 {
			t.Fatalf("Jitter(5) non-positive: %v", v)
		}
	}
}

func TestJitterMeanNearOne(t *testing.T) {
	s := New(77)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Jitter(0.2)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.005 {
		t.Fatalf("Jitter mean = %v, want ≈1", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ≈10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ≈2", math.Sqrt(variance))
	}
}

func TestPermIsPermutationProperty(t *testing.T) {
	s := New(3)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := s.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
