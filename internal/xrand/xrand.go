// Package xrand provides a small deterministic pseudo-random source for the
// simulator.
//
// The experiment harness requires bit-identical output for a given seed, so
// the simulator does not use math/rand's global source (whose seeding and
// algorithm are version-dependent). Instead it uses SplitMix64, a tiny,
// well-studied generator with excellent statistical quality for the modest
// jitter workloads here (kernel duration noise, arrival perturbation).
package xrand

import "math"

// Source is a deterministic SplitMix64 PRNG. The zero value is a valid
// generator seeded with 0. Source is not safe for concurrent use; each
// simulated client owns its own Source (see gpusim) so streams never
// interleave nondeterministically.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Fork derives an independent child generator from the current state and a
// stream label, so that per-client streams are stable regardless of the
// order clients draw numbers.
func (s *Source) Fork(label uint64) *Source {
	// Mix the label through one SplitMix64 step of a copy, leaving the
	// parent's state untouched.
	z := s.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &Source{state: z ^ (z >> 31)}
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits → [0,1) with full double precision.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Jitter returns a multiplicative factor uniform in [1-amp, 1+amp], used to
// perturb kernel durations. amp is clamped to [0, 0.99].
func (s *Source) Jitter(amp float64) float64 {
	if amp <= 0 {
		return 1
	}
	if amp > 0.99 {
		amp = 0.99
	}
	return 1 + amp*(2*s.Float64()-1)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (s *Source) Normal(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
