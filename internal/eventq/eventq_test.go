package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"gpushare/internal/simtime"
)

func at(s float64) simtime.Time { return simtime.Zero.Add(simtime.FromSeconds(s)) }

// drainData pops every event and returns the *int payloads in pop order.
func drainData(q *Queue) []int {
	var fired []int
	for {
		ev, ok := q.Pop()
		if !ok {
			return fired
		}
		fired = append(fired, *ev.Data.(*int))
		q.Free(ev)
	}
}

func TestPopOrder(t *testing.T) {
	var q Queue
	ids := make([]int, 4)
	for i, sec := range []float64{3, 1, 2, 0.5} {
		ids[i] = i
		q.Schedule(at(sec), 0, &ids[i])
	}
	fired := drainData(&q)
	want := []int{3, 1, 2, 0}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired order %v, want %v", fired, want)
		}
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	var q Queue
	ids := make([]int, 100)
	for i := 0; i < 100; i++ {
		ids[i] = i
		q.Schedule(at(1), 0, &ids[i])
	}
	fired := drainData(&q)
	for i := range fired {
		if fired[i] != i {
			t.Fatalf("same-time events fired out of schedule order: %v", fired[:10])
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	one, two := 1, 2
	e1 := q.Schedule(at(1), 0, &one)
	q.Schedule(at(2), 0, &two)
	q.Cancel(e1)
	if !e1.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	if q.Len() != 1 {
		t.Fatalf("Len after cancel = %d, want 1", q.Len())
	}
	fired := drainData(&q)
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired %v, want [2]", fired)
	}
}

func TestCancelIdempotentAndNil(t *testing.T) {
	var q Queue
	e := q.Schedule(at(1), 0, nil)
	q.Cancel(e)
	q.Cancel(e) // second cancel is a no-op
	q.Cancel(nil)
	q.Free(nil)
	if !q.Empty() {
		t.Fatal("queue should be empty after cancel")
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue returned ok")
	}
	e1 := q.Schedule(at(5), 0, nil)
	q.Schedule(at(7), 0, nil)
	if got, ok := q.PeekTime(); !ok || got != at(5) {
		t.Fatalf("PeekTime = %v,%v want %v", got, ok, at(5))
	}
	q.Cancel(e1)
	if got, ok := q.PeekTime(); !ok || got != at(7) {
		t.Fatalf("PeekTime after cancel = %v,%v want %v", got, ok, at(7))
	}
}

func TestRescheduleViaCancel(t *testing.T) {
	// The engine's pattern: cancel the old finish event, schedule a new
	// one at a different time.
	var q Queue
	e := q.Schedule(at(10), 0, nil)
	q.Cancel(e)
	q.Schedule(at(4), 0, nil)
	var firedAt []simtime.Time
	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		firedAt = append(firedAt, ev.At)
		q.Free(ev)
	}
	if len(firedAt) != 1 || firedAt[0] != at(4) {
		t.Fatalf("firedAt = %v", firedAt)
	}
}

func TestKindAndDataSurviveRecycling(t *testing.T) {
	// Drive the freelist hard: every retired event must come back with
	// the kind and payload of its latest Schedule, not a stale one.
	var q Queue
	vals := []int{10, 20, 30}
	for round := 0; round < 50; round++ {
		for i := range vals {
			q.Schedule(at(float64(i)), Kind(i), &vals[i])
		}
		for i := 0; i < len(vals); i++ {
			ev, ok := q.Pop()
			if !ok {
				t.Fatal("queue drained early")
			}
			if ev.Kind != Kind(i) || *ev.Data.(*int) != vals[i] {
				t.Fatalf("round %d: got kind %d data %v, want kind %d data %d",
					round, ev.Kind, ev.Data, i, vals[i])
			}
			q.Free(ev)
		}
	}
	if len(q.free) == 0 {
		t.Fatal("freelist never populated")
	}
	if got := len(q.free); got > len(vals) {
		t.Fatalf("freelist grew to %d events, want ≤ %d (recycling broken)", got, len(vals))
	}
}

func TestFreeOfScheduledEventPanics(t *testing.T) {
	var q Queue
	e := q.Schedule(at(1), 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Free of a scheduled event did not panic")
		}
	}()
	q.Free(e)
}

func TestLenIsLive(t *testing.T) {
	var q Queue
	events := make([]*Event, 0, 10)
	for i := 0; i < 10; i++ {
		events = append(events, q.Schedule(at(float64(i)), 0, nil))
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	q.Cancel(events[3])
	q.Cancel(events[7])
	if q.Len() != 8 {
		t.Fatalf("Len after cancels = %d, want 8", q.Len())
	}
	if ev, ok := q.Pop(); !ok || ev.At != at(0) {
		t.Fatalf("Pop = %v,%v", ev, ok)
	} else {
		q.Free(ev)
	}
	if q.Len() != 7 {
		t.Fatalf("Len after pop = %d, want 7", q.Len())
	}
}

func TestPopSortedProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		for _, ms := range times {
			q.Schedule(simtime.Zero.Add(simtime.Duration(ms)*simtime.Millisecond), 0, nil)
		}
		var popped []simtime.Time
		for {
			ev, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, ev.At)
			q.Free(ev)
		}
		if len(popped) != len(times) {
			return false
		}
		return sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
