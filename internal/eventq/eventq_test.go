package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"gpushare/internal/simtime"
)

func at(s float64) simtime.Time { return simtime.Zero.Add(simtime.FromSeconds(s)) }

func TestPopOrder(t *testing.T) {
	var q Queue
	var fired []int
	for i, sec := range []float64{3, 1, 2, 0.5} {
		i := i
		q.Schedule(at(sec), func(simtime.Time) { fired = append(fired, i) })
	}
	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		ev.Fire(ev.At)
	}
	want := []int{3, 1, 2, 0}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired order %v, want %v", fired, want)
		}
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(at(1), func(simtime.Time) { fired = append(fired, i) })
	}
	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		ev.Fire(ev.At)
	}
	for i := range fired {
		if fired[i] != i {
			t.Fatalf("same-time events fired out of schedule order: %v", fired[:10])
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := 0
	e1 := q.Schedule(at(1), func(simtime.Time) { fired++ })
	q.Schedule(at(2), func(simtime.Time) { fired++ })
	q.Cancel(e1)
	if !e1.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	if q.Len() != 1 {
		t.Fatalf("Len after cancel = %d, want 1", q.Len())
	}
	n := 0
	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		ev.Fire(ev.At)
		n++
	}
	if n != 1 || fired != 1 {
		t.Fatalf("popped %d fired %d, want 1/1", n, fired)
	}
}

func TestCancelIdempotentAndNil(t *testing.T) {
	var q Queue
	e := q.Schedule(at(1), func(simtime.Time) {})
	q.Cancel(e)
	q.Cancel(e) // second cancel is a no-op
	q.Cancel(nil)
	if !q.Empty() {
		t.Fatal("queue should be empty after cancel")
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue returned ok")
	}
	e1 := q.Schedule(at(5), func(simtime.Time) {})
	q.Schedule(at(7), func(simtime.Time) {})
	if got, ok := q.PeekTime(); !ok || got != at(5) {
		t.Fatalf("PeekTime = %v,%v want %v", got, ok, at(5))
	}
	q.Cancel(e1)
	if got, ok := q.PeekTime(); !ok || got != at(7) {
		t.Fatalf("PeekTime after cancel = %v,%v want %v", got, ok, at(7))
	}
}

func TestRescheduleViaCancel(t *testing.T) {
	// The engine's pattern: cancel the old finish event, schedule a new
	// one at a different time.
	var q Queue
	var firedAt []simtime.Time
	e := q.Schedule(at(10), func(now simtime.Time) { firedAt = append(firedAt, now) })
	q.Cancel(e)
	q.Schedule(at(4), func(now simtime.Time) { firedAt = append(firedAt, now) })
	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		ev.Fire(ev.At)
	}
	if len(firedAt) != 1 || firedAt[0] != at(4) {
		t.Fatalf("firedAt = %v", firedAt)
	}
}

func TestPopSortedProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		for _, ms := range times {
			q.Schedule(simtime.Zero.Add(simtime.Duration(ms)*simtime.Millisecond), func(simtime.Time) {})
		}
		var popped []simtime.Time
		for {
			ev, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, ev.At)
		}
		if len(popped) != len(times) {
			return false
		}
		return sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
