package eventq

import (
	"testing"
)

// TestQueueOpsZeroAllocs pins the steady-state queue operations —
// Schedule, Cancel, Pop, Free — at zero allocations per cycle: the
// runtime half of the //repro:hotpath annotations on those methods
// (the static half is the hotpathalloc analyzer).
func TestQueueOpsZeroAllocs(t *testing.T) {
	var q Queue
	warm := make([]*Event, 0, 64)
	for i := 0; i < 64; i++ {
		warm = append(warm, q.Schedule(at(float64(i)), 0, nil))
	}
	for _, e := range warm {
		q.Cancel(e)
	}
	allocs := testing.AllocsPerRun(200, func() {
		keep := q.Schedule(at(1), 0, nil)
		drop := q.Schedule(at(2), 0, nil)
		q.Cancel(drop)
		ev, ok := q.Pop()
		if !ok || ev != keep {
			panic("eventq: pop order broken in alloc pin")
		}
		q.Free(ev)
	})
	if allocs != 0 {
		t.Fatalf("Schedule/Cancel/Pop/Free allocated %.1f objects per cycle, want 0", allocs)
	}
}
