package eventq

import (
	"testing"

	"gpushare/internal/simtime"
)

// FuzzEventQueue drives the queue with an arbitrary operation tape and
// checks the invariant the simulator's causality depends on: popped
// events are nondecreasing in time, and events at equal instants fire in
// scheduling order (the (time, seq) total order that makes runs
// reproducible). Popped events are returned through Free, so the tape also
// exercises freelist recycling: a recycled Event must carry its latest
// payload, never a stale one.
//
// The tape is consumed two bytes at a time: the first selects the
// operation (schedule / cancel / pop), the second parameterizes it
// (firing delay or cancel target). Schedules are relative to the last
// popped instant, mirroring the simulator loop's monotone-time guard —
// the queue itself is time-agnostic and would happily accept (and
// immediately surface) an event in the past.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x05, 0x00, 0x03, 0x80, 0x00, 0x80, 0x00})
	f.Add([]byte{0x00, 0x01, 0x40, 0x00, 0x00, 0x01, 0x80, 0x00})
	f.Add([]byte{0x00, 0xff, 0x00, 0x00, 0x40, 0x01, 0x00, 0xff, 0x80, 0x00})
	f.Fuzz(func(t *testing.T, tape []byte) {
		var q Queue
		type scheduled struct {
			ev  *Event
			at  simtime.Time
			seq int
		}
		var live []scheduled
		nextSeq := 0
		lastAt := simtime.Zero
		lastSeq := -1

		popOne := func() {
			ev, ok := q.Pop()
			if !ok {
				if len(live) != 0 {
					t.Fatalf("Pop reported empty with %d live events", len(live))
				}
				return
			}
			// Find the popped event among the live records. Handles are
			// recycled only after Cancel/Free removes them from live, so
			// pointer identity is unambiguous here.
			idx := -1
			for i, s := range live {
				if s.ev == ev {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Fatalf("popped unknown or cancelled event at %v", ev.At)
			}
			s := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			if ev.At != s.at {
				t.Fatalf("event time mutated: scheduled %v, popped %v", s.at, ev.At)
			}
			if got := *ev.Data.(*int); got != s.seq {
				t.Fatalf("event payload mutated: scheduled seq %d, popped %d", s.seq, got)
			}
			if ev.At < lastAt {
				t.Fatalf("pop order regressed in time: %v after %v", ev.At, lastAt)
			}
			if ev.At == lastAt && s.seq < lastSeq {
				t.Fatalf("equal-time events fired out of scheduling order: seq %d after %d", s.seq, lastSeq)
			}
			lastAt, lastSeq = ev.At, s.seq
			q.Free(ev)
		}

		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i], tape[i+1]
			switch {
			case op < 0x40: // schedule at now + delay (possibly duplicate times)
				at := lastAt.Add(simtime.Duration(arg))
				id := new(int)
				*id = nextSeq
				ev := q.Schedule(at, Kind(arg), id)
				live = append(live, scheduled{ev: ev, at: at, seq: nextSeq})
				nextSeq++
			case op < 0x80: // cancel an arbitrary live event
				if len(live) > 0 {
					idx := int(arg) % len(live)
					q.Cancel(live[idx].ev)
					live = append(live[:idx], live[idx+1:]...)
				}
			default: // pop
				popOne()
			}
			if got := q.Len(); got != len(live) {
				t.Fatalf("Len=%d, want %d live events", got, len(live))
			}
		}

		// Drain: the tail must also come out in order.
		for len(live) > 0 {
			popOne()
		}
		if _, ok := q.Pop(); ok {
			t.Fatalf("Pop returned an event from a drained queue")
		}
	})
}
