// Package eventq implements the priority queue at the heart of the
// discrete-event simulator.
//
// Events are ordered by (time, sequence): two events scheduled for the same
// instant fire in the order they were scheduled. The secondary key makes
// simulations deterministic — Go's container/heap alone gives no stable
// order for equal priorities, and nondeterministic tie-breaking would make
// experiment output irreproducible.
package eventq

import (
	"container/heap"

	"gpushare/internal/simtime"
)

// Event is a unit of scheduled work. The callback runs when simulated time
// reaches At.
type Event struct {
	At   simtime.Time
	Fire func(now simtime.Time)

	seq      uint64
	index    int // position in the heap, -1 if popped or cancelled
	canceled bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.canceled }

// Queue is a deterministic event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulation loop is single-
// threaded by design (see gpusim).
type Queue struct {
	h       eventHeap
	nextSeq uint64
}

// Len returns the number of pending (non-cancelled) events.
func (q *Queue) Len() int {
	n := 0
	for _, e := range q.h {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Empty reports whether no live events remain.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Schedule enqueues fn to run at instant at and returns a handle that can
// be cancelled. Scheduling in the past is a programming error guarded by
// the simulator loop, not here: the queue itself is time-agnostic.
func (q *Queue) Schedule(at simtime.Time, fn func(now simtime.Time)) *Event {
	e := &Event{At: at, Fire: fn, seq: q.nextSeq}
	q.nextSeq++
	heap.Push(&q.h, e)
	return e
}

// Cancel removes the event from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&q.h, e.index)
}

// PeekTime returns the firing time of the earliest live event. ok is false
// when the queue is empty.
func (q *Queue) PeekTime() (at simtime.Time, ok bool) {
	q.drainCancelled()
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest live event. ok is false when the
// queue is empty.
func (q *Queue) Pop() (e *Event, ok bool) {
	q.drainCancelled()
	if len(q.h) == 0 {
		return nil, false
	}
	ev := heap.Pop(&q.h).(*Event)
	return ev, true
}

func (q *Queue) drainCancelled() {
	for len(q.h) > 0 && q.h[0].canceled {
		heap.Pop(&q.h)
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
