// Package eventq implements the priority queue at the heart of the
// discrete-event simulator.
//
// Events are ordered by (time, sequence): two events scheduled for the same
// instant fire in the order they were scheduled. The secondary key makes
// simulations deterministic — a binary heap alone gives no stable order for
// equal priorities, and nondeterministic tie-breaking would make experiment
// output irreproducible.
//
// The queue is built for a zero-allocation steady state. Events carry a
// typed payload (Kind + Data) instead of a closure, so scheduling captures
// no environment, and retired events are recycled through an internal
// freelist. Every event ends its life through exactly one path — Cancel for
// events still in the heap, Free for events handed out by Pop — so the
// freelist can neither leak events nor receive one twice.
package eventq

import "gpushare/internal/simtime"

// Kind tags an event's payload so the owner of the queue can dispatch it
// without a per-event closure. The queue itself never interprets it.
type Kind uint8

// Event is a unit of scheduled work, dispatched by the queue's owner on
// (Kind, Data) when simulated time reaches At.
//
// Event handles are pooled: a handle is valid from Schedule until the event
// is cancelled (Cancel) or retired after firing (Free), after which the
// queue may reuse the same Event for a future Schedule. Holding a handle
// past retirement and cancelling it later would cancel an unrelated event —
// owners must drop or overwrite handles at retirement.
type Event struct {
	At   simtime.Time
	Kind Kind
	// Data is the dispatch operand. Store pointers (or nil): a pointer
	// boxed in an interface does not allocate.
	Data any

	seq      uint64
	index    int // position in the heap, -1 if popped or cancelled
	canceled bool
}

// Cancelled reports whether the event was cancelled before firing. Only
// meaningful until the queue reuses the handle.
func (e *Event) Cancelled() bool { return e.canceled }

// Queue is a deterministic event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulation loop is single-
// threaded by design (see gpusim).
type Queue struct {
	h       []*Event
	free    []*Event
	nextSeq uint64

	// Telemetry counters (plain integers: the queue is single-threaded
	// and the increments cost one instruction each, so they are always
	// on). The engine folds them into the obs registry at run end.
	acquires     uint64
	freelistHits uint64
}

// Stats reports the queue's freelist effectiveness: Acquires counts every
// Schedule; FreelistHits counts those served by a recycled Event rather
// than a fresh allocation. In steady state the hit rate converges to 1.
type Stats struct {
	Acquires     uint64
	FreelistHits uint64
}

// Stats returns the current counter values.
func (q *Queue) Stats() Stats {
	return Stats{Acquires: q.acquires, FreelistHits: q.freelistHits}
}

// Len returns the number of pending events in O(1). Cancelled events are
// removed from the heap eagerly, so the heap length is exact.
func (q *Queue) Len() int { return len(q.h) }

// Empty reports whether no live events remain.
func (q *Queue) Empty() bool { return len(q.h) == 0 }

// Schedule enqueues an event firing at instant at and returns its handle,
// which stays valid until the event is cancelled or freed. Scheduling in
// the past is a programming error guarded by the simulator loop, not here:
// the queue itself is time-agnostic.
//
//repro:hotpath pinned by TestQueueOpsZeroAllocs
func (q *Queue) Schedule(at simtime.Time, kind Kind, data any) *Event {
	e := q.acquire()
	e.At = at
	e.Kind = kind
	e.Data = data
	e.seq = q.nextSeq
	q.nextSeq++
	q.push(e)
	return e
}

// Cancel removes the event from the queue and recycles it. Cancelling nil,
// an already-cancelled event, or an event already handed out by Pop is a
// no-op (a popped event is retired by its new owner via Free).
//
//repro:hotpath pinned by TestQueueOpsZeroAllocs
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index < 0 {
		return // popped: the Pop caller owns retirement
	}
	q.remove(e.index)
	q.release(e)
}

// PeekTime returns the firing time of the earliest event. ok is false when
// the queue is empty.
func (q *Queue) PeekTime() (at simtime.Time, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest event. ok is false when the queue
// is empty. Ownership of the handle transfers to the caller, who must
// return it with Free once dispatched (or let it leak to the GC).
//
//repro:hotpath pinned by TestQueueOpsZeroAllocs
func (q *Queue) Pop() (e *Event, ok bool) {
	if len(q.h) == 0 {
		return nil, false
	}
	return q.popMin(), true
}

// Free retires an event obtained from Pop, returning it to the freelist.
// Freeing nil is a no-op. Freeing an event still in the heap is a
// programming error and panics: it would let the queue hand the same Event
// out twice.
//
//repro:hotpath pinned by TestQueueOpsZeroAllocs
func (q *Queue) Free(e *Event) {
	if e == nil {
		return
	}
	if e.index >= 0 {
		panic("eventq: Free of an event still in the queue")
	}
	q.release(e)
}

// acquire takes an Event from the freelist (or allocates one) and resets
// it for reuse.
func (q *Queue) acquire() *Event {
	q.acquires++
	if n := len(q.free); n > 0 {
		q.freelistHits++
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.canceled = false
		return e
	}
	//repro:allow:hotpathalloc freelist refill: cold path, amortized away once the steady state recycles handles
	return &Event{index: -1}
}

// release is the single retirement path: every cancelled or freed event
// passes through here exactly once.
func (q *Queue) release(e *Event) {
	e.Data = nil // drop the payload reference for the GC
	//repro:allow:hotpathalloc freelist growth is amortized; capacity is retained for the run's lifetime
	q.free = append(q.free, e)
}

// --- binary heap on (At, seq), hand-rolled to keep the hot path free of
// interface dispatch ---

func (q *Queue) less(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) push(e *Event) {
	e.index = len(q.h)
	//repro:allow:hotpathalloc heap growth is amortized; capacity is retained across pops
	q.h = append(q.h, e)
	q.up(e.index)
}

func (q *Queue) popMin() *Event {
	e := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[0].index = 0
	q.h[n] = nil
	q.h = q.h[:n]
	if n > 0 {
		q.down(0)
	}
	e.index = -1
	return e
}

func (q *Queue) remove(i int) {
	e := q.h[i]
	n := len(q.h) - 1
	if i != n {
		q.h[i] = q.h[n]
		q.h[i].index = i
	}
	q.h[n] = nil
	q.h = q.h[:n]
	if i < n {
		if !q.down(i) {
			q.up(i)
		}
	}
	e.index = -1
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		q.h[i].index = i
		q.h[parent].index = parent
		i = parent
	}
}

// down sifts the element at i toward the leaves and reports whether it
// moved.
func (q *Queue) down(i int) bool {
	n := len(q.h)
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && q.less(q.h[right], q.h[left]) {
			least = right
		}
		if !q.less(q.h[least], q.h[i]) {
			break
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		q.h[i].index = i
		q.h[least].index = least
		i = least
	}
	return i > start
}
