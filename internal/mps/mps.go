// Package mps models the CUDA Multi-Process Service control surface the
// paper's scheduler drives: a control daemon, one server per GPU, client
// connections (at most 48 concurrent), and SM partitioning via the active
// thread percentage (the granularity knob swept in Figure 1).
//
// The model reproduces MPS semantics at the level the scheduler observes:
//
//   - Logical SM partitions per client (execution-resource provisioning),
//     while memory bandwidth, caches and memory capacity remain shared —
//     partition only caps a client's compute, never reserves bandwidth.
//   - Memory protection: each client's allocations are isolated and
//     accounted separately (delegated to the device allocator).
//   - The active thread percentage is fixed at client creation, matching
//     CUDA_MPS_ACTIVE_THREAD_PERCENTAGE behaviour (set in the client's
//     environment before the CUDA context is created).
package mps

import (
	"fmt"
	"sort"
)

// DefaultActiveThreadPct is the partition a client receives when neither
// the server default nor a per-client value is set: all SMs.
const DefaultActiveThreadPct = 100.0

// HardClientLimit is the MPS limit on concurrently connected client
// processes per server (48 on Volta and later).
const HardClientLimit = 48

// ErrTooManyClients is returned when a connection would exceed the client
// limit.
type ErrTooManyClients struct {
	Device string
	Limit  int
}

func (e *ErrTooManyClients) Error() string {
	return fmt.Sprintf("mps: server for %s at client limit (%d)", e.Device, e.Limit)
}

// ErrServerStopped is returned for operations on a stopped server.
type ErrServerStopped struct{ Device string }

func (e *ErrServerStopped) Error() string {
	return fmt.Sprintf("mps: server for %s is not running", e.Device)
}

// Client is one connected MPS client process.
type Client struct {
	// ID is the caller-supplied identity (the simulator uses task IDs).
	ID string
	// ActiveThreadPct is the client's SM partition in (0, 100].
	ActiveThreadPct float64
	server          *Server
	connected       bool
}

// Partition returns the client's SM partition as a fraction in (0, 1].
func (c *Client) Partition() float64 { return c.ActiveThreadPct / 100 }

// Connected reports whether the client is still connected.
func (c *Client) Connected() bool { return c.connected }

// Server is the MPS server process for one GPU.
type Server struct {
	device          string
	limit           int
	defaultPct      float64
	running         bool
	clients         map[string]*Client
	peakClients     int
	totalConnects   int
	rejectedConnect int
}

// NewServer creates a server for the named device with the given client
// limit (use HardClientLimit or the device spec's MaxMPSClients).
func NewServer(device string, clientLimit int) *Server {
	if clientLimit <= 0 || clientLimit > HardClientLimit {
		clientLimit = HardClientLimit
	}
	return &Server{
		device:     device,
		limit:      clientLimit,
		defaultPct: DefaultActiveThreadPct,
		running:    true,
		clients:    make(map[string]*Client),
	}
}

// Device returns the device this server manages.
func (s *Server) Device() string { return s.device }

// Running reports whether the server accepts connections.
func (s *Server) Running() bool { return s.running }

// SetDefaultActiveThreadPct sets the partition applied to clients that do
// not specify their own (the control daemon's
// set_default_active_thread_percentage command). It affects only future
// connections, as real MPS does.
func (s *Server) SetDefaultActiveThreadPct(pct float64) error {
	if pct <= 0 || pct > 100 {
		return fmt.Errorf("mps: default active thread percentage must be in (0,100], got %g", pct)
	}
	s.defaultPct = pct
	return nil
}

// DefaultActiveThreadPct returns the server default partition.
func (s *Server) DefaultActiveThreadPct() float64 { return s.defaultPct }

// Connect attaches a new client. pct ≤ 0 means "use the server default".
// The partition is immutable for the client's lifetime.
func (s *Server) Connect(id string, pct float64) (*Client, error) {
	if !s.running {
		return nil, &ErrServerStopped{Device: s.device}
	}
	if id == "" {
		return nil, fmt.Errorf("mps: client id must be non-empty")
	}
	if _, dup := s.clients[id]; dup {
		return nil, fmt.Errorf("mps: client %q already connected to %s", id, s.device)
	}
	if len(s.clients) >= s.limit {
		s.rejectedConnect++
		return nil, &ErrTooManyClients{Device: s.device, Limit: s.limit}
	}
	if pct <= 0 {
		pct = s.defaultPct
	}
	if pct > 100 {
		return nil, fmt.Errorf("mps: active thread percentage must be in (0,100], got %g", pct)
	}
	c := &Client{ID: id, ActiveThreadPct: pct, server: s, connected: true}
	s.clients[id] = c
	s.totalConnects++
	if len(s.clients) > s.peakClients {
		s.peakClients = len(s.clients)
	}
	return c, nil
}

// Disconnect detaches the client. Disconnecting twice is an error to catch
// lifecycle bugs in callers.
func (s *Server) Disconnect(c *Client) error {
	if c == nil || !c.connected || c.server != s {
		return fmt.Errorf("mps: disconnect of unknown or already-disconnected client")
	}
	delete(s.clients, c.ID)
	c.connected = false
	return nil
}

// ClientCount returns the number of connected clients.
func (s *Server) ClientCount() int { return len(s.clients) }

// PeakClients returns the high-water mark of concurrent clients.
func (s *Server) PeakClients() int { return s.peakClients }

// RejectedConnects returns how many connections the limit refused.
func (s *Server) RejectedConnects() int { return s.rejectedConnect }

// Clients returns the connected clients sorted by ID (deterministic).
func (s *Server) Clients() []*Client {
	out := make([]*Client, 0, len(s.clients))
	for _, c := range s.clients {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stop shuts the server down. Connected clients are disconnected, as
// happens when the real control daemon quits.
func (s *Server) Stop() {
	for _, c := range s.clients {
		c.connected = false
	}
	s.clients = make(map[string]*Client)
	s.running = false
}

// ControlDaemon manages one MPS server per device, mirroring
// nvidia-cuda-mps-control.
type ControlDaemon struct {
	servers map[string]*Server
	limit   int
}

// NewControlDaemon creates a daemon whose servers use the given per-server
// client limit.
func NewControlDaemon(clientLimit int) *ControlDaemon {
	return &ControlDaemon{servers: make(map[string]*Server), limit: clientLimit}
}

// ServerFor returns the running server for device, starting one if needed.
func (d *ControlDaemon) ServerFor(device string) *Server {
	if s, ok := d.servers[device]; ok && s.running {
		return s
	}
	s := NewServer(device, d.limit)
	d.servers[device] = s
	return s
}

// StopAll stops every server.
func (d *ControlDaemon) StopAll() {
	for _, s := range d.servers {
		s.Stop()
	}
}

// Devices returns the devices with servers, sorted.
func (d *ControlDaemon) Devices() []string {
	out := make([]string, 0, len(d.servers))
	for dev := range d.servers {
		out = append(out, dev)
	}
	sort.Strings(out)
	return out
}
