package mps

import (
	"errors"
	"testing"
)

func TestConnectDisconnect(t *testing.T) {
	s := NewServer("gpu0", 48)
	c, err := s.Connect("task-a", 50)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Connected() || c.ActiveThreadPct != 50 || c.Partition() != 0.5 {
		t.Fatalf("client state: %+v", c)
	}
	if s.ClientCount() != 1 {
		t.Fatalf("count = %d", s.ClientCount())
	}
	if err := s.Disconnect(c); err != nil {
		t.Fatal(err)
	}
	if c.Connected() || s.ClientCount() != 0 {
		t.Fatal("disconnect did not detach client")
	}
	if err := s.Disconnect(c); err == nil {
		t.Fatal("double disconnect accepted")
	}
}

func TestClientLimit(t *testing.T) {
	s := NewServer("gpu0", 3)
	for i := 0; i < 3; i++ {
		if _, err := s.Connect(string(rune('a'+i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Connect("overflow", 0)
	var tooMany *ErrTooManyClients
	if !errors.As(err, &tooMany) {
		t.Fatalf("want ErrTooManyClients, got %v", err)
	}
	if tooMany.Limit != 3 {
		t.Fatalf("limit = %d", tooMany.Limit)
	}
	if s.RejectedConnects() != 1 {
		t.Fatalf("rejected = %d", s.RejectedConnects())
	}
}

func TestHardLimitApplied(t *testing.T) {
	// Limits outside (0, 48] collapse to the MPS hard limit.
	for _, limit := range []int{0, -5, 100} {
		s := NewServer("gpu0", limit)
		n := 0
		for i := 0; i < 60; i++ {
			if _, err := s.Connect(string(rune('A'+i)), 0); err != nil {
				break
			}
			n++
		}
		if n != HardClientLimit {
			t.Fatalf("limit %d admitted %d clients, want %d", limit, n, HardClientLimit)
		}
	}
}

func TestDefaultPartition(t *testing.T) {
	s := NewServer("gpu0", 48)
	c, _ := s.Connect("a", 0)
	if c.ActiveThreadPct != 100 {
		t.Fatalf("default partition = %v", c.ActiveThreadPct)
	}
	if err := s.SetDefaultActiveThreadPct(25); err != nil {
		t.Fatal(err)
	}
	// Existing client unchanged, new clients get the new default — as
	// real MPS behaves.
	if c.ActiveThreadPct != 100 {
		t.Fatal("existing client partition changed")
	}
	c2, _ := s.Connect("b", 0)
	if c2.ActiveThreadPct != 25 {
		t.Fatalf("new client partition = %v", c2.ActiveThreadPct)
	}
}

func TestSetDefaultValidation(t *testing.T) {
	s := NewServer("gpu0", 48)
	for _, pct := range []float64{0, -10, 101} {
		if err := s.SetDefaultActiveThreadPct(pct); err == nil {
			t.Errorf("default %v accepted", pct)
		}
	}
}

func TestConnectValidation(t *testing.T) {
	s := NewServer("gpu0", 48)
	if _, err := s.Connect("", 50); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := s.Connect("a", 150); err == nil {
		t.Fatal("partition > 100 accepted")
	}
	if _, err := s.Connect("a", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Connect("a", 50); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestClientsSorted(t *testing.T) {
	s := NewServer("gpu0", 48)
	for _, id := range []string{"zz", "aa", "mm"} {
		s.Connect(id, 0)
	}
	clients := s.Clients()
	if clients[0].ID != "aa" || clients[1].ID != "mm" || clients[2].ID != "zz" {
		t.Fatalf("clients not sorted: %v %v %v", clients[0].ID, clients[1].ID, clients[2].ID)
	}
}

func TestPeakClients(t *testing.T) {
	s := NewServer("gpu0", 48)
	a, _ := s.Connect("a", 0)
	b, _ := s.Connect("b", 0)
	s.Disconnect(a)
	s.Disconnect(b)
	s.Connect("c", 0)
	if s.PeakClients() != 2 {
		t.Fatalf("peak = %d, want 2", s.PeakClients())
	}
	if s.ClientCount() != 1 {
		t.Fatalf("count = %d", s.ClientCount())
	}
}

func TestStop(t *testing.T) {
	s := NewServer("gpu0", 48)
	c, _ := s.Connect("a", 0)
	s.Stop()
	if s.Running() {
		t.Fatal("server still running")
	}
	if c.Connected() {
		t.Fatal("client survived server stop")
	}
	_, err := s.Connect("b", 0)
	var stopped *ErrServerStopped
	if !errors.As(err, &stopped) {
		t.Fatalf("connect after stop: %v", err)
	}
}

func TestControlDaemon(t *testing.T) {
	d := NewControlDaemon(48)
	s0 := d.ServerFor("gpu0")
	s1 := d.ServerFor("gpu1")
	if s0 == s1 {
		t.Fatal("distinct devices share a server")
	}
	if d.ServerFor("gpu0") != s0 {
		t.Fatal("ServerFor not idempotent")
	}
	devs := d.Devices()
	if len(devs) != 2 || devs[0] != "gpu0" || devs[1] != "gpu1" {
		t.Fatalf("devices = %v", devs)
	}
	// A stopped server is transparently replaced, like restarting the
	// control daemon.
	s0.Stop()
	s0b := d.ServerFor("gpu0")
	if s0b == s0 || !s0b.Running() {
		t.Fatal("stopped server not replaced")
	}
	d.StopAll()
	if d.ServerFor("gpu1").Running() != true {
		t.Fatal("ServerFor after StopAll must start fresh")
	}
}
