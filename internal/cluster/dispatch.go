package cluster

import (
	"fmt"
	"sort"

	"gpushare/internal/eventq"
	"gpushare/internal/interference"
	"gpushare/internal/obs"
	"gpushare/internal/simtime"
)

// The cluster admission loop. One event loop advances simulated time
// over arrivals and completions; at every instant a dispatch round
// drains as many queued gangs as fit. Gang placement is a journal
// transaction over per-GPU aggregates: members place one by one
// (evicting lower-priority gangs when preemption is on), and the first
// member that cannot be placed rolls the whole attempt back — admission
// is all-or-nothing by construction.

// run drives the event loop to completion.
func (st *planner) run() {
	now := simtime.Zero
	next := 0
	for {
		for next < len(st.jobs) && st.jobs[next].at <= now {
			st.enqueue(st.jobs[next])
			next++
		}
		st.dispatchRound(now)

		hasArr := next < len(st.jobs)
		var tArr simtime.Time
		if hasArr {
			tArr = st.jobs[next].at
		}
		tComp, hasComp := st.completions.PeekTime()
		if !hasArr && !hasComp {
			return
		}
		if st.queuedAny() {
			st.stats.Waits++
		}
		if hasComp && (!hasArr || tComp <= tArr) {
			now = tComp
			// Retire every completion at this instant before the next
			// round. Aggregate removal re-folds the survivors in
			// insertion order, so the post-batch state is independent of
			// pop order within the batch.
			for {
				pt, ok := st.completions.PeekTime()
				if !ok || pt != now {
					break
				}
				ev, _ := st.completions.Pop()
				st.retire(ev, now)
			}
		} else {
			now = tArr
		}
	}
}

// enqueue appends a job to its tenant's queue.
func (st *planner) enqueue(j *job) {
	t := j.tenant
	t.queue = append(t.queue, j)
	if len(t.queue) > t.maxDepth {
		t.maxDepth = len(t.queue)
	}
	if st.fl != nil {
		st.fl.Record(obs.FlightRecord{
			Seq:      int64(j.seq),
			Kind:     obs.FlightArrival,
			AtNS:     int64(j.at),
			Tenant:   t.spec.Name,
			Workflow: j.sub.Gang.Name,
			GPU:      -1,
		})
	}
}

// queuedAny reports whether any tenant has waiting jobs.
func (st *planner) queuedAny() bool {
	for _, t := range st.tenants {
		if len(t.queue) > 0 {
			return true
		}
	}
	return false
}

// clusterIdle reports whether no resident is placed anywhere.
func (st *planner) clusterIdle() bool {
	for i := range st.nodes {
		for g := range st.nodes[i].gpus {
			if len(st.nodes[i].gpus[g].res) > 0 {
				return false
			}
		}
	}
	return true
}

// retire removes one completed member. The event payload is the
// resident pointer, so retirement is identity-based: a cancelled
// (evicted) resident can never be confused with a survivor that happens
// to share its end instant.
func (st *planner) retire(ev *eventq.Event, now simtime.Time) {
	r := ev.Data.(*resident)
	st.completions.Free(ev)
	g := &r.node.gpus[r.gpuIx]
	st.removeResident(g, r)
	st.stats.Completions++

	j := r.job
	j.liveCount--
	st.releaseResident(r)
	if j.liveCount > 0 {
		return
	}
	sum := JobSummary{
		Tenant:      j.tenant.spec.Name,
		Gang:        j.sub.Gang.Name,
		ArrivalS:    j.at.Seconds(),
		CompletionS: now.Seconds(),
		MakespanS:   now.Sub(j.at).Seconds(),
		WaitedS:     j.lastWaitS,
		Preemptions: j.preemptions,
	}
	st.out.Jobs = append(st.out.Jobs, sum)
	ts := &j.tenant.stat
	ts.Jobs++
	ts.MeanWaitS += sum.WaitedS // divided by Jobs in finish
	if sum.WaitedS > ts.MaxWaitS {
		ts.MaxWaitS = sum.WaitedS
	}
	ts.MeanMakespanS += sum.MakespanS
	// Service time is the resident phase of the makespan: completion
	// minus arrival minus the final dispatch's queueing delay.
	j.tenant.serviceHist.Observe(int64((sum.MakespanS - sum.WaitedS) * 1000))
}

// removeResident unlinks r from its GPU, keeping the aggregate's fold
// sequence parallel to the resident slice.
func (st *planner) removeResident(g *gpuState, r *resident) {
	for i := range g.res {
		if g.res[i] == r {
			g.agg.RemoveAt(i)
			g.res = append(g.res[:i], g.res[i+1:]...)
			return
		}
	}
	panic("cluster: resident missing from its GPU")
}

// dispatchRound places queued gangs until no eligible tenant's head
// fits. A tenant whose head fails placement is blocked for the round
// (head-of-line order within a tenant is strict), but other tenants keep
// going — the round is work-conserving.
func (st *planner) dispatchRound(now simtime.Time) {
	for _, t := range st.tenants {
		t.blocked = false
	}
	for {
		t := st.pickTenant()
		if t == nil {
			return
		}
		// Pop the head before attempting: a successful placement may
		// requeue evicted victims at the front of this same queue, so a
		// pop afterwards could remove the wrong job.
		j := t.queue[0]
		t.queue = t.queue[:copy(t.queue, t.queue[1:])]
		if st.tryPlaceGang(j, now) {
			continue
		}
		if st.clusterIdle() {
			// The gang fails against a fully idle cluster: it can never
			// be admitted. Fail it permanently instead of wedging the
			// tenant's queue forever.
			t.stat.Failed++
			st.out.Failed = append(st.out.Failed, FailedJob{
				Tenant: t.spec.Name,
				Gang:   j.sub.Gang.Name,
				Reason: "does not fit an idle cluster",
			})
			if st.fl != nil {
				st.fl.Record(obs.FlightRecord{
					Seq:      int64(j.seq),
					Kind:     obs.FlightReject,
					AtNS:     int64(now),
					Tenant:   t.spec.Name,
					Workflow: j.sub.Gang.Name,
					GPU:      -1,
					Detail:   "does not fit an idle cluster",
				})
			}
			continue
		}
		// Held: back to the front of the queue, tenant blocked for the
		// round.
		t.queue = append(t.queue, nil)
		copy(t.queue[1:], t.queue)
		t.queue[0] = j
		t.blocked = true
		st.stats.GangHolds++
		if st.fl != nil {
			st.fl.Record(obs.FlightRecord{
				Seq:      int64(j.seq),
				Kind:     obs.FlightHold,
				AtNS:     int64(now),
				Tenant:   t.spec.Name,
				Workflow: j.sub.Gang.Name,
				GPU:      -1,
			})
		}
	}
}

// pickTenant selects the next tenant to serve, or nil when no tenant is
// eligible. Under FairShare the pick minimizes weight-normalized
// accumulated service, compared exactly by cross-multiplication; the
// tenant scan runs in sorted-name order, so equal deficits resolve to
// the lexicographically first tenant (tenant names are unique, making
// the head-sequence tie-break unreachable; it is documented for the
// discipline's contract, not the code path). Under FIFO the pick
// minimizes the head job's arrival sequence — global arrival order
// across tenants.
func (st *planner) pickTenant() *tenantState {
	var best *tenantState
	for _, t := range st.tenants {
		if len(t.queue) == 0 || t.blocked {
			continue
		}
		if best == nil {
			best = t
			continue
		}
		switch st.spec.Queue {
		case FIFO:
			if t.queue[0].seq < best.queue[0].seq {
				best = t
			}
		default: // FairShare
			// t ahead of best iff t.served/t.weight < best.served/best.weight.
			if t.servedUS*best.weight < best.servedUS*t.weight {
				best = t
			}
		}
	}
	return best
}

// tryPlaceGang attempts an all-or-nothing placement of j's members at
// now. It runs as a journal transaction: GPU aggregates and resident
// lists mutate in place behind lazy per-GPU snapshots, and failure
// restores every touched GPU bit-for-bit (interference.Snapshot restores
// the fold sums, not a recomputation). Completion events are only
// scheduled — and victim events only cancelled — at commit, so an
// aborted what-if leaves the event queue untouched.
func (st *planner) tryPlaceGang(j *job, now simtime.Time) bool {
	for i := range j.members {
		g := st.findFit(j, &j.members[i], now)
		if g == nil && st.spec.Preemption {
			g = st.evictForMember(j, &j.members[i], now)
		}
		if g == nil {
			st.rollback()
			return false
		}
		st.placeMember(j, i, g, now)
	}
	st.commit(j, now)
	return true
}

// scanNodes runs one scan round over the nodes (fit probes or
// preemption what-ifs, per st.scanWhatIf) and returns how many nodes
// hold valid verdicts. Serial mode scans in spec order with cross-node
// early exit; parallel mode forks every node's scan over the pool —
// speculative work past the eventual winner, discarded by the caller's
// merge.
//
//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) scanNodes() int {
	if st.pool != nil {
		st.scanBest.Store(int32(len(st.nodes)))
		st.pool.Run(len(st.nodes), st.scanFn)
		return len(st.nodes)
	}
	for n := range st.nodes {
		st.scanNode(n)
		if st.nodes[n].probe.fitGPU >= 0 {
			return n + 1
		}
	}
	return len(st.nodes)
}

// scanNode fills one node's buffered verdict for the current round. It
// is read-only over shared planner state — aggregates, resident lists,
// and job marks mutate only between rounds, in the serial phases — and
// writes nothing but its own node's probe slot, which is what makes
// concurrent node scans race-free. Every probed GPU leaves a trail
// record; the trail is worker-count invariant because it is replayed
// serially in node order by the merge.
//
// Parallel rounds bound their speculation through scanBest — the
// lowest node index holding a fit so far. A node above it abandons its
// scan (the merge stops strictly before its slot) and a node that
// finds a fit publishes its index with a CAS-min; nodes at or below
// the final winner always complete, so the merged counters and trail
// cannot observe the abandonment.
//
//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) scanNode(n int) {
	node := &st.nodes[n]
	pr := &node.probe
	pr.fitGPU = -1
	pr.probes = 0
	record := st.fl != nil
	if record {
		pr.trail = pr.trail[:0]
	}
	par := st.pool != nil
	j, m := st.scanJob, st.scanMember
	if st.scanWhatIf {
		for g := range node.gpus {
			if par && st.scanBest.Load() < int32(n) {
				return
			}
			gs := &node.gpus[g]
			var fits bool
			if !record {
				fits = st.canFitAfterEviction(gs, j, m, pr)
			} else {
				// What-if provenance: the digest pair proves the probe left
				// the aggregate untouched — `restored` must equal `digest`,
				// and with the read-only fold there is no mutation to
				// restore from in the first place.
				digest := gs.agg.Digest()
				fits = st.canFitAfterEviction(gs, j, m, pr)
				restored := gs.agg.Digest()
				//repro:allow:hotpathalloc what-if provenance formats the digest pair; telemetry-off scans never reach this branch
				detail := fmt.Sprintf("fit=%t digest=%016x restored=%016x", fits, digest, restored)
				//repro:allow:hotpathalloc trail growth is bounded by the node's GPU count; capacity is retained
				pr.trail = append(pr.trail, obs.FlightRecord{
					Seq:      int64(j.seq),
					Kind:     obs.FlightWhatIf,
					AtNS:     int64(st.scanNow),
					Tenant:   j.tenant.spec.Name,
					Workflow: m.profile.Workflow.Name,
					Node:     node.spec.Name,
					GPU:      int32(g),
					Clients:  int32(len(gs.res)),
					Detail:   detail,
				})
			}
			if fits {
				pr.fitGPU = g
				if par {
					st.publishBest(n)
				}
				return
			}
		}
		return
	}
	for g := range node.gpus {
		if par && st.scanBest.Load() < int32(n) {
			return
		}
		gs := &node.gpus[g]
		pr.probes++
		ok, reason := st.probeReason(gs, m, len(gs.res))
		if record {
			//repro:allow:hotpathalloc trail growth is bounded by the node's GPU count; capacity is retained
			pr.trail = append(pr.trail, obs.FlightRecord{
				Seq:           int64(j.seq),
				Kind:          obs.FlightProbe,
				AtNS:          int64(st.scanNow),
				Tenant:        j.tenant.spec.Name,
				Workflow:      m.profile.Workflow.Name,
				Node:          node.spec.Name,
				GPU:           int32(g),
				Clients:       int32(len(gs.res)),
				Rules:         uint8(reason.Rules),
				SMExcessMilli: reason.SMExcessMilli,
				BWExcessMilli: reason.BWExcessMilli,
				MemExcessMiB:  reason.MemExcessMiB,
			})
		}
		if ok {
			pr.fitGPU = g
			if par {
				st.publishBest(n)
			}
			return
		}
	}
}

// publishBest CAS-mins this node's index into scanBest so concurrent
// workers can abandon nodes the merge will never reach.
//
//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) publishBest(n int) {
	for {
		best := st.scanBest.Load()
		if best <= int32(n) || st.scanBest.CompareAndSwap(best, int32(n)) {
			return
		}
	}
}

// mergeScan walks the scanned nodes in spec order, folds each node's
// probe count into the stats, replays its trail into the flight
// recorder, and stops at the first node holding a fit — the serial
// scan's visit order, so counters and trails are byte-identical at any
// worker count, with everything past the winner discarded exactly as
// if it were never scanned.
//
//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) mergeScan(scanned int) *gpuState {
	for n := 0; n < scanned; n++ {
		node := &st.nodes[n]
		st.stats.Probes += node.probe.probes
		if st.fl != nil {
			for i := range node.probe.trail {
				st.fl.Record(node.probe.trail[i])
			}
		}
		if node.probe.fitGPU >= 0 {
			return &node.gpus[node.probe.fitGPU]
		}
	}
	return nil
}

// findFit scans nodes in spec order and GPUs in index order for the
// first device that admits the member under the node's sharing mode.
// Every probe — hit or miss — lands in the flight recorder with its
// per-rule verdict when telemetry is on.
//
//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) findFit(j *job, m *member, now simtime.Time) *gpuState {
	st.scanJob, st.scanMember, st.scanNow, st.scanWhatIf = j, m, now, false
	return st.mergeScan(st.scanNodes())
}

// admits probes one GPU under its node's sharing mode.
//
//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) admits(g *gpuState, m *member) bool {
	return st.admitsAt(g, m, len(g.res))
}

// admitsAt probes with an explicit resident count, so a preemption
// what-if can ask "would the member fit with the victims gone" while the
// resident list still holds them.
//
//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) admitsAt(g *gpuState, m *member, residents int) bool {
	ok, _ := st.probeReason(g, m, residents)
	return ok
}

// probeReason is the single source of per-mode admission semantics: it
// probes with an explicit resident count and returns both the verdict
// and the typed per-rule rejection reason. Only the rules the mode
// actually consults are reported — a time-sliced node may "interfere"
// spatially, but only capacity decides there, so only capacity shows.
//
//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) probeReason(g *gpuState, m *member, residents int) (bool, interference.Reason) {
	return st.probeReasonExcluding(g, m, residents, nil)
}

// probeReasonExcluding is probeReason with a victim mask: skip[i] true
// folds resident i out of the spatial admission sums, so a preemption
// what-if can probe the post-eviction state without mutating the live
// aggregate. A nil mask is exactly probeReason (AdmitExcluding(nil)
// degenerates to Admit's O(1) cached-sum path).
//
//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) probeReasonExcluding(g *gpuState, m *member, residents int, skip []bool) (bool, interference.Reason) {
	node := g.node
	if residents >= node.cap {
		return false, interference.Reason{Rules: interference.MaskClientCap}
	}
	switch node.spec.Mode {
	case ModeMIG:
		// Isolated equal instances: capacity is per-instance memory;
		// no cross-instance interference.
		if m.load.MemMiB <= node.instanceMemMiB {
			return true, interference.Reason{}
		}
		return false, interference.Reason{
			Rules:        interference.MaskCapacity,
			MemExcessMiB: m.load.MemMiB - node.instanceMemMiB,
		}
	case ModeTimeSlice:
		// Temporal sharing: no spatial interference rules, but the
		// residents still share device memory.
		out := g.agg.AdmitExcluding(m.load, skip)
		if !out.Capacity {
			return true, interference.Reason{}
		}
		r := out.Reason()
		return false, interference.Reason{
			Rules:        interference.MaskCapacity,
			MemExcessMiB: r.MemExcessMiB,
		}
	default: // ModeMPS
		l := m.load
		if node.threadCapPct < 100 && l.SMPct > node.threadCapPct {
			// The active-thread cap bounds the SM pressure one client
			// can exert; bandwidth and memory are not partitioned.
			l.SMPct = node.threadCapPct
		}
		out := g.agg.AdmitExcluding(l, skip)
		if !out.Interferes() {
			return true, interference.Reason{}
		}
		return false, out.Reason()
	}
}

// placeMember commits one member to a GPU inside the transaction.
func (st *planner) placeMember(j *job, memberIx int, g *gpuState, now simtime.Time) {
	st.saveGPU(g)
	m := &j.members[memberIx]
	r := st.acquireResident()
	r.job = j
	r.memberIx = memberIx
	r.node = g.node
	r.gpuIx = g.index
	r.start = now

	durS := m.profile.TotalDurationS + j.penaltyS/float64(len(j.members))
	load := m.load
	if g.node.spec.Mode == ModeTimeSlice {
		// Predicted duration dilates with the co-resident count at
		// dispatch (including this member). Earlier residents keep
		// their original predictions — the model charges slowdown to
		// the arriving member, which keeps completions immutable once
		// scheduled.
		durS *= float64(len(g.res) + 1)
	} else if g.node.spec.Mode == ModeMPS && g.node.threadCapPct < 100 && load.SMPct > g.node.threadCapPct {
		// The SM cap throttles the member: it runs at threadCap/SMPct
		// of its solo speed, and contributes only the capped pressure.
		durS *= load.SMPct / g.node.threadCapPct
		load.SMPct = g.node.threadCapPct
	}
	r.end = now.Add(simtime.FromSeconds(durS))

	g.res = append(g.res, r)
	g.agg.Add(load)
	st.txPlaced = append(st.txPlaced, r)
}

// evictForMember frees room for one member by preempting on the first
// GPU (node spec order, then index order) where a what-if probe shows
// the member would fit with every strictly-lower-priority resident gone.
// The what-if sweep is a scan round like findFit's — read-only, so the
// pool can fan it across nodes — and only the merged winner proceeds to
// the serial eviction loop: whole victim gangs — lowest priority first,
// youngest placement first (least lost work), latest arrival last-resort
// tie-break — are evicted until the member actually fits, and the GPU is
// returned; nil when no GPU's victim set suffices. Targeting one GPU
// keeps preemption minimal: a commit never strands an eviction that did
// not make room for the preemptor (victim gangs may still lose members
// on other GPUs — gang eviction is all-or-nothing, mirroring gang
// admission).
func (st *planner) evictForMember(j *job, m *member, now simtime.Time) *gpuState {
	st.scanJob, st.scanMember, st.scanNow, st.scanWhatIf = j, m, now, true
	gs := st.mergeScan(st.scanNodes())
	if gs == nil {
		return nil
	}
	for !st.admits(gs, m) {
		v := st.pickVictimOn(gs, j)
		if v == nil {
			// Unreachable: the what-if removed exactly the gangs
			// pickVictimOn iterates.
			panic("cluster: what-if fit without available victims")
		}
		st.evictGang(v)
	}
	return gs
}

// victimable reports whether v may be evicted for preemptor: strictly
// lower priority, not already evicted this transaction, and fully
// resident — a gang with completed members is nearly done, so evicting
// it wastes more work than it frees, and whole-gang accounting (members
// x preemptions) stays exact.
func victimable(v, preemptor *job) bool {
	return !v.evicting && v != preemptor &&
		v.priority < preemptor.priority && v.liveCount == len(v.members)
}

// canFitAfterEviction is the preemption what-if: would m fit on g if
// every strictly-lower-priority resident left? It is a pure read: the
// victim mask marks the hypothetical evictees and AdmitExcluding folds
// the survivors without touching the live aggregate — the cached sums
// are always the left-fold over the member list, so the masked fold is
// bit-identical to the old save/remove/probe/restore sequence. Being
// read-only is what lets scanNodes fan what-ifs across nodes, and what
// the digest pair in scanNode's provenance record now proves trivially.
//
//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) canFitAfterEviction(g *gpuState, preemptor *job, m *member, pr *nodeProbe) bool {
	pr.probes++
	mask := pr.skip[:0]
	removed := 0
	for i := range g.res {
		v := victimable(g.res[i].job, preemptor)
		//repro:allow:hotpathalloc mask growth is bounded by the GPU's resident count; capacity is retained
		mask = append(mask, v)
		if v {
			removed++
		}
	}
	pr.skip = mask
	if removed == 0 {
		return false
	}
	ok, _ := st.probeReasonExcluding(g, m, len(g.res)-removed, mask)
	return ok
}

// pickVictimOn selects the next victim gang resident on g: strictly
// lower priority than the preemptor, lowest priority first, then
// youngest placement, then latest arrival.
func (st *planner) pickVictimOn(g *gpuState, preemptor *job) *job {
	var best *job
	var bestStart simtime.Time
	for _, r := range g.res {
		v := r.job
		if !victimable(v, preemptor) {
			continue
		}
		if best == nil ||
			v.priority < best.priority ||
			(v.priority == best.priority && (r.start > bestStart ||
				(r.start == bestStart && v.seq > best.seq))) {
			best = v
			bestStart = r.start
		}
	}
	return best
}

// evictGang removes every resident of v from the transaction's view of
// the cluster and marks it evicting. Event cancellation and requeueing
// happen at commit; rollback simply restores the GPUs.
func (st *planner) evictGang(v *job) {
	v.evicting = true
	for n := range st.nodes {
		node := &st.nodes[n]
		for g := range node.gpus {
			gs := &node.gpus[g]
			for i := 0; i < len(gs.res); {
				r := gs.res[i]
				if r.job != v {
					i++
					continue
				}
				st.saveGPU(gs)
				gs.agg.RemoveAt(i)
				gs.res = append(gs.res[:i], gs.res[i+1:]...)
				st.txEvicted = append(st.txEvicted, r)
			}
		}
	}
}

// saveGPU lazily snapshots a GPU the first time the transaction touches
// it.
func (st *planner) saveGPU(g *gpuState) {
	if g.saved {
		return
	}
	g.agg.Save(&g.savedAgg)
	g.savedRes = append(g.savedRes[:0], g.res...)
	g.saved = true
	st.txTouched = append(st.txTouched, g)
}

// rollback restores every touched GPU and releases tx-placed residents.
// Evicted residents stay untouched: their events were never cancelled
// and the restored resident lists still reference them — but their
// gangs' evicting marks must clear, or a later transaction's victim
// scan would skip them while the what-if still counts them.
func (st *planner) rollback() {
	for _, g := range st.txTouched {
		g.agg.Restore(&g.savedAgg)
		g.res = append(g.res[:0], g.savedRes...)
		g.saved = false
	}
	for _, r := range st.txPlaced {
		st.releaseResident(r)
	}
	for _, r := range st.txEvicted {
		r.job.evicting = false
	}
	st.clearTx()
}

// commit finalizes a successful gang placement: victims' events are
// cancelled and their gangs requeued with the restart penalty, placed
// members get completion events and dispatch records, and the tenant's
// deficit counter is charged.
func (st *planner) commit(j *job, now simtime.Time) {
	for _, g := range st.txTouched {
		g.saved = false
	}

	// Victims: whole gangs, requeued at the front of their tenant queue
	// in arrival order with the restart penalty charged.
	if len(st.txEvicted) > 0 {
		victims := make(map[*job]bool, 2)
		for _, r := range st.txEvicted {
			v := r.job
			st.completions.Cancel(r.ev)
			st.out.Evictions = append(st.out.Evictions, Eviction{
				At:        now,
				Tenant:    v.tenant.spec.Name,
				Gang:      v.sub.Gang.Name,
				Workflow:  v.members[r.memberIx].profile.Workflow.Name,
				Node:      r.node.spec.Name,
				GPU:       r.gpuIx,
				Preemptor: j.sub.Gang.Name,
				LostS:     now.Sub(r.start).Seconds(),
				OverheadS: st.overheadS(),
			})
			st.stats.Preemptions++
			if st.fl != nil {
				st.fl.Record(obs.FlightRecord{
					Seq:      int64(v.seq),
					Kind:     obs.FlightEvict,
					AtNS:     int64(now),
					Tenant:   v.tenant.spec.Name,
					Workflow: v.members[r.memberIx].profile.Workflow.Name,
					Node:     r.node.spec.Name,
					GPU:      int32(r.gpuIx),
					Detail:   "preempted by " + j.sub.Gang.Name,
				})
			}
			victims[v] = true
			v.liveCount--
			st.releaseResident(r)
		}
		// Distinct victim gangs in deterministic (arrival) order.
		order := make([]*job, 0, len(victims))
		for v := range victims {
			order = append(order, v)
		}
		sort.Slice(order, func(i, k int) bool { return order[i].seq < order[k].seq })
		// Prepend in reverse so the queue front ends up in ascending
		// arrival order; a victim predates everything still queued
		// behind it, so head-of-line order stays consistent.
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			v.evicting = false
			v.preemptions++
			v.penaltyS += st.overheadS()
			v.tenant.stat.Preemptions++
			st.stats.GangsPreempted++
			v.tenant.queue = append(v.tenant.queue, nil)
			copy(v.tenant.queue[1:], v.tenant.queue)
			v.tenant.queue[0] = v
			if len(v.tenant.queue) > v.tenant.maxDepth {
				v.tenant.maxDepth = len(v.tenant.queue)
			}
		}
	}

	waited := now.Sub(j.at).Seconds()
	j.lastWaitS = waited
	j.tenant.waitHist.Observe(int64(waited * 1000))
	for _, r := range st.txPlaced {
		r.ev = st.completions.Schedule(r.end, 0, r)
		j.liveCount++
		st.out.Dispatches = append(st.out.Dispatches, Dispatch{
			At:          now,
			Tenant:      j.tenant.spec.Name,
			Gang:        j.sub.Gang.Name,
			Workflow:    j.members[r.memberIx].profile.Workflow.Name,
			Node:        r.node.spec.Name,
			GPU:         r.gpuIx,
			WaitedS:     waited,
			Preemptions: j.preemptions,
		})
		if st.fl != nil {
			g := &r.node.gpus[r.gpuIx]
			st.fl.Record(obs.FlightRecord{
				Seq:      int64(j.seq),
				Kind:     obs.FlightDispatch,
				AtNS:     int64(now),
				Tenant:   j.tenant.spec.Name,
				Workflow: j.members[r.memberIx].profile.Workflow.Name,
				Node:     r.node.spec.Name,
				GPU:      int32(r.gpuIx),
				Clients:  int32(len(g.res)),
				WaitNS:   int64(now.Sub(j.at)),
			})
		}
	}
	// Deficit charge: the predicted work dispatched, including the
	// restart penalty a re-dispatched victim repays.
	j.tenant.servedUS += int64((j.durationS + j.penaltyS) * 1e6)
	st.clearTx()
}

func (st *planner) clearTx() {
	st.txPlaced = st.txPlaced[:0]
	st.txEvicted = st.txEvicted[:0]
	st.txTouched = st.txTouched[:0]
}

// Resident pooling keeps the admit/retire hot path allocation-free once
// the pool is warm.

//repro:hotpath pinned by TestClusterAdmitAllocs
func (st *planner) acquireResident() *resident {
	if n := len(st.resFree); n > 0 {
		r := st.resFree[n-1]
		st.resFree = st.resFree[:n-1]
		return r
	}
	//repro:allow:hotpathalloc pool growth is amortized; steady state reuses freed residents
	return &resident{}
}

func (st *planner) releaseResident(r *resident) {
	*r = resident{}
	st.resFree = append(st.resFree, r)
}
