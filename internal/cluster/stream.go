package cluster

import (
	"fmt"

	"gpushare/internal/core"
	"gpushare/internal/gpu"
	"gpushare/internal/profile"
	"gpushare/internal/workflow"
	"gpushare/internal/xrand"
)

// StreamSpec parameterizes a synthetic multi-tenant submission stream:
// core.GenerateFleet's arrival stream, bundled into gangs and assigned
// tenants and priorities deterministically.
type StreamSpec struct {
	// Fleet shapes the underlying arrival stream (count, durations,
	// inter-arrival gaps). Fleet.Seed drives the workload draw; Seed
	// below drives the tenant/priority/gang assignment so the two vary
	// independently.
	Fleet core.FleetSpec
	// Tenants are the tenant names submissions draw from uniformly; it
	// must be non-empty and should match the cluster spec's tenants.
	Tenants []string
	// PriorityLevels is the number of priority classes; submissions draw
	// uniformly from [0, PriorityLevels). Zero selects 1 (all equal).
	PriorityLevels int
	// GangFraction is the probability that an arrival opens a gang of
	// GangSize members (consuming the following arrivals as co-members,
	// re-timed to the opener's instant). Zero keeps every submission a
	// single-workflow gang.
	GangFraction float64
	// GangSize is the member count of a bundled gang; zero selects 4.
	GangSize int
	// Seed drives tenant, priority, and gang draws.
	Seed uint64
}

// GenerateStream fabricates a deterministic submission stream plus the
// profile store it plans from. Equal specs generate byte-identical
// streams.
func GenerateStream(device gpu.DeviceSpec, spec StreamSpec) ([]Submission, *profile.Store, error) {
	if len(spec.Tenants) == 0 {
		return nil, nil, fmt.Errorf("cluster: stream needs at least one tenant name")
	}
	if spec.GangFraction < 0 || spec.GangFraction > 1 {
		return nil, nil, fmt.Errorf("cluster: gang fraction %g outside [0,1]", spec.GangFraction)
	}
	arrivals, store, err := core.GenerateFleet(device, spec.Fleet)
	if err != nil {
		return nil, nil, err
	}
	levels := spec.PriorityLevels
	if levels <= 0 {
		levels = 1
	}
	gangSize := spec.GangSize
	if gangSize <= 0 {
		gangSize = 4
	}

	rng := xrand.New(spec.Seed)
	subs := make([]Submission, 0, len(arrivals))
	for i := 0; i < len(arrivals); {
		tenant := spec.Tenants[rng.Intn(len(spec.Tenants))]
		prio := 0
		if levels > 1 {
			prio = rng.Intn(levels)
		}
		size := 1
		if spec.GangFraction > 0 && rng.Float64() < spec.GangFraction {
			size = gangSize
			if rest := len(arrivals) - i; size > rest {
				size = rest
			}
		}
		var g workflow.Gang
		if size == 1 {
			g = workflow.Single(arrivals[i].Workflow)
		} else {
			g.Name = fmt.Sprintf("gang-%06d", len(subs))
			for k := 0; k < size; k++ {
				g.Members = append(g.Members, arrivals[i+k].Workflow)
			}
		}
		subs = append(subs, Submission{
			At:       arrivals[i].At,
			Tenant:   tenant,
			Priority: prio,
			Gang:     g,
		})
		i += size
	}
	// GenerateFleet sorts by arrival; bundling keeps opener instants, so
	// the stream stays sorted.
	for i := 1; i < len(subs); i++ {
		if subs[i].At < subs[i-1].At {
			return nil, nil, fmt.Errorf("cluster: stream out of order at %d", i)
		}
	}
	return subs, store, nil
}
